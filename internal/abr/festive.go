package abr

import (
	"ecavs/internal/netsim"
)

// FESTIVE is the throughput-based baseline of Jiang et al. (IEEE/ACM
// ToN 2014), as the paper describes it in Section V-A: it estimates
// bandwidth as the harmonic mean of the last 20 per-segment
// throughputs and requests the highest rung just below the estimate.
// For stability it also moves at most one rung per decision — FESTIVE's
// gradual-switching rule — which the paper's own online algorithm
// mirrors.
//
// Construct with NewFESTIVE; the zero value is unusable.
type FESTIVE struct {
	est     *netsim.HarmonicMeanEstimator
	window  int
	gradual bool
}

var _ Algorithm = (*FESTIVE)(nil)

// FESTIVEOption customises the baseline.
type FESTIVEOption func(*FESTIVE)

// WithFESTIVEWindow overrides the 20-sample harmonic-mean window.
func WithFESTIVEWindow(k int) FESTIVEOption {
	return func(f *FESTIVE) {
		if k >= 1 {
			f.window = k
		}
	}
}

// WithoutGradualSwitching disables the one-rung-per-step stability
// rule (pure "highest below estimate", as the paper's one-line summary
// reads).
func WithoutGradualSwitching() FESTIVEOption {
	return func(f *FESTIVE) { f.gradual = false }
}

// NewFESTIVE returns the FESTIVE baseline.
func NewFESTIVE(opts ...FESTIVEOption) *FESTIVE {
	f := &FESTIVE{window: netsim.DefaultHarmonicWindow, gradual: true}
	for _, o := range opts {
		o(f)
	}
	f.est = netsim.NewHarmonicMeanEstimator(f.window)
	return f
}

// Name implements Algorithm.
func (f *FESTIVE) Name() string { return "FESTIVE" }

// ChooseRung implements Algorithm.
func (f *FESTIVE) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	bw, ok := f.est.Estimate()
	if !ok {
		// Startup: begin at the bottom rung.
		return ctx.Ladder.Lowest().Index, nil
	}
	target := ctx.Ladder.HighestBelow(bw).Index
	if !f.gradual || ctx.PrevRung < 0 {
		return target, nil
	}
	// Gradual switching: move at most one rung towards the target.
	switch {
	case target > ctx.PrevRung:
		return ctx.PrevRung + 1, nil
	case target < ctx.PrevRung:
		return ctx.PrevRung - 1, nil
	default:
		return target, nil
	}
}

// ObserveDownload implements Algorithm.
func (f *FESTIVE) ObserveDownload(thMbps float64) { f.est.Push(thMbps) }

// Reset implements Algorithm.
func (f *FESTIVE) Reset() { f.est.Reset() }
