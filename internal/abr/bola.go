package abr

import (
	"errors"
	"math"
)

// BOLA is the Lyapunov buffer-based algorithm of Spiteri, Urgaonkar
// and Sitaraman (INFOCOM 2016), cited by the paper as reference [5].
// BOLA-BASIC maximises, per segment, the drift-plus-penalty score
//
//	(V*(u_j + gp) - Q/p) / s_j
//
// where u_j = ln(s_j / s_min) is the rung's utility, Q the buffer
// level, p the segment duration, s_j the rung size, and V, gp the
// Lyapunov control parameters. V is derived from the buffer target so
// the top rung is reached just below the threshold.
//
// Construct with NewBOLA; the zero value is unusable.
type BOLA struct {
	// gp is the gamma*p utility offset (controls how strongly BOLA
	// avoids rebuffering).
	gp float64
}

var _ Algorithm = (*BOLA)(nil)

// BOLAOption customises the algorithm.
type BOLAOption func(*BOLA)

// WithBOLAGP overrides the gamma*p parameter (default 5.0, mirroring
// the reference player's stable default).
func WithBOLAGP(gp float64) BOLAOption {
	return func(b *BOLA) { b.gp = gp }
}

// ErrBadBOLAGP is returned for non-positive gp.
var ErrBadBOLAGP = errors.New("abr: BOLA gp must be positive")

// NewBOLA returns the BOLA-BASIC baseline.
func NewBOLA(opts ...BOLAOption) (*BOLA, error) {
	b := &BOLA{gp: 5}
	for _, o := range opts {
		o(b)
	}
	if b.gp <= 0 {
		return nil, ErrBadBOLAGP
	}
	return b, nil
}

// Name implements Algorithm.
func (b *BOLA) Name() string { return "BOLA" }

// ChooseRung implements Algorithm.
func (b *BOLA) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	sizes := ctx.SegmentSizesMB
	if len(sizes) != len(ctx.Ladder) {
		// Fall back to nominal sizes when the manifest is not supplied.
		sizes = make([]float64, len(ctx.Ladder))
		dur := ctx.SegmentDurationSec
		if dur <= 0 {
			dur = 2
		}
		for i, rep := range ctx.Ladder {
			sizes[i] = rep.BitrateMbps / 8 * dur
		}
	}
	p := ctx.SegmentDurationSec
	if p <= 0 {
		p = 2
	}
	beta := ctx.BufferThresholdSec
	if beta <= 0 {
		beta = 30
	}

	sMin := sizes[0]
	if sMin <= 0 {
		return 0, errors.New("abr: BOLA requires positive segment sizes")
	}
	uMax := math.Log(sizes[len(sizes)-1] / sMin)
	// V such that the top rung's score turns positive once the buffer
	// is comfortably below the threshold: at Q = beta - p, the top rung
	// should break even.
	v := (beta/p - 1) / (uMax + b.gp)
	q := ctx.BufferSec / p // buffer in segments

	best := 0
	bestScore := math.Inf(-1)
	for j, s := range sizes {
		u := math.Log(s / sMin)
		score := (v*(u+b.gp) - q) / s
		if score > bestScore {
			bestScore = score
			best = j
		}
	}
	return best, nil
}

// ObserveDownload implements Algorithm (BOLA-BASIC ignores throughput).
func (b *BOLA) ObserveDownload(float64) {}

// Reset implements Algorithm.
func (b *BOLA) Reset() {}
