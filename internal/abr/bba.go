package abr

import (
	"errors"

	"ecavs/internal/netsim"
)

// BBA is the buffer-based baseline of Huang et al. (SIGCOMM 2014) as
// the paper describes it: throughput-driven during startup, then — once
// the buffer reaches the steady state — a linear map from buffer
// occupancy to bitrate between a reservoir and a cushion, requesting
// the top rung whenever the buffer exceeds the cushion (the
// "aggressive after steady state" behaviour the paper calls out).
//
// Construct with NewBBA; the zero value is unusable.
type BBA struct {
	// reservoirFrac and cushionFrac position the linear region within
	// the buffer threshold: reservoir = reservoirFrac x beta,
	// cushion top = cushionFrac x beta.
	reservoirFrac float64
	cushionFrac   float64

	est    *netsim.LastSampleEstimator
	steady bool
}

var _ Algorithm = (*BBA)(nil)

// BBAOption customises the baseline.
type BBAOption func(*BBA)

// WithBBARegion overrides the reservoir/cushion fractions of the
// buffer threshold (defaults 0.25 and 0.9).
func WithBBARegion(reservoirFrac, cushionFrac float64) BBAOption {
	return func(b *BBA) {
		b.reservoirFrac = reservoirFrac
		b.cushionFrac = cushionFrac
	}
}

// ErrBadBBARegion is returned when the reservoir/cushion fractions are
// not 0 < reservoir < cushion <= 1.
var ErrBadBBARegion = errors.New("abr: BBA region must satisfy 0 < reservoir < cushion <= 1")

// NewBBA returns the BBA baseline.
func NewBBA(opts ...BBAOption) (*BBA, error) {
	b := &BBA{
		reservoirFrac: 0.25,
		cushionFrac:   0.9,
		est:           netsim.NewLastSampleEstimator(),
	}
	for _, o := range opts {
		o(b)
	}
	if b.reservoirFrac <= 0 || b.cushionFrac <= b.reservoirFrac || b.cushionFrac > 1 {
		return nil, ErrBadBBARegion
	}
	return b, nil
}

// Name implements Algorithm.
func (b *BBA) Name() string { return "BBA" }

// ChooseRung implements Algorithm.
func (b *BBA) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	beta := ctx.BufferThresholdSec
	if beta <= 0 {
		beta = 30
	}
	reservoir := b.reservoirFrac * beta
	cushionTop := b.cushionFrac * beta

	// Startup phase: follow throughput until the buffer first clears
	// the reservoir.
	if !b.steady {
		if ctx.BufferSec >= reservoir {
			b.steady = true
		} else {
			bw, ok := b.est.Estimate()
			if !ok {
				return ctx.Ladder.Lowest().Index, nil
			}
			return ctx.Ladder.HighestBelow(bw).Index, nil
		}
	}

	switch {
	case ctx.BufferSec <= reservoir:
		return ctx.Ladder.Lowest().Index, nil
	case ctx.BufferSec >= cushionTop:
		return ctx.Ladder.Highest().Index, nil
	default:
		// Linear interpolation across rungs.
		frac := (ctx.BufferSec - reservoir) / (cushionTop - reservoir)
		idx := int(frac * float64(len(ctx.Ladder)-1))
		if idx >= len(ctx.Ladder) {
			idx = len(ctx.Ladder) - 1
		}
		return idx, nil
	}
}

// ObserveDownload implements Algorithm.
func (b *BBA) ObserveDownload(thMbps float64) { b.est.Push(thMbps) }

// Reset implements Algorithm.
func (b *BBA) Reset() {
	b.est.Reset()
	b.steady = false
}
