package abr

import (
	"errors"
	"testing"
	"testing/quick"

	"ecavs/internal/dash"
)

func bolaCtx(t *testing.T, bufferSec float64) Context {
	t.Helper()
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, rep := range ladder {
		sizes[i] = rep.BitrateMbps / 8 * 2
	}
	return Context{
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		BufferSec:          bufferSec,
		BufferThresholdSec: 30,
		PrevRung:           -1,
	}
}

func TestNewBOLAValidation(t *testing.T) {
	if _, err := NewBOLA(WithBOLAGP(0)); !errors.Is(err, ErrBadBOLAGP) {
		t.Errorf("err = %v, want ErrBadBOLAGP", err)
	}
	if _, err := NewBOLA(WithBOLAGP(-2)); !errors.Is(err, ErrBadBOLAGP) {
		t.Errorf("err = %v, want ErrBadBOLAGP", err)
	}
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "BOLA" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestBOLALowBufferPicksLowRung(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	rung, err := b.ChooseRung(bolaCtx(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rung != 0 {
		t.Errorf("rung at empty buffer = %d, want 0", rung)
	}
}

func TestBOLAFullBufferPicksTopRung(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	rung, err := b.ChooseRung(bolaCtx(t, 29))
	if err != nil {
		t.Fatal(err)
	}
	if rung != 13 {
		t.Errorf("rung just below threshold = %d, want 13 (top)", rung)
	}
}

// BOLA's choice is monotone non-decreasing in buffer level.
func TestBOLAMonotoneInBuffer(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for buf := 0.0; buf <= 30; buf += 0.5 {
		rung, err := b.ChooseRung(bolaCtx(t, buf))
		if err != nil {
			t.Fatal(err)
		}
		if rung < prev {
			t.Fatalf("rung decreased from %d to %d at buffer %.1f", prev, rung, buf)
		}
		prev = rung
	}
}

// BOLA never panics or errors across random buffer/threshold configs.
func TestBOLAQuick(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	f := func(bufRaw, betaRaw uint8) bool {
		ctx := bolaCtx(t, float64(bufRaw%60))
		ctx.BufferThresholdSec = float64(betaRaw%50) + 5
		rung, err := b.ChooseRung(ctx)
		return err == nil && rung >= 0 && rung < len(ctx.Ladder)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBOLAFallbackSizes(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	ctx := bolaCtx(t, 10)
	ctx.SegmentSizesMB = nil // missing manifest sizes
	if _, err := b.ChooseRung(ctx); err != nil {
		t.Errorf("fallback sizes failed: %v", err)
	}
	ctx.SegmentDurationSec = 0 // default duration kicks in
	if _, err := b.ChooseRung(ctx); err != nil {
		t.Errorf("default duration failed: %v", err)
	}
}

func TestBOLAErrors(t *testing.T) {
	b, err := NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
	ctx := bolaCtx(t, 10)
	ctx.SegmentSizesMB = make([]float64, len(ctx.Ladder)) // zero sizes
	if _, err := b.ChooseRung(ctx); err == nil {
		t.Error("zero sizes accepted")
	}
	b.ObserveDownload(5) // no-op
	b.Reset()            // no-op
}
