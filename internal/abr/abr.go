// Package abr defines the bitrate-adaptation interface the streaming
// simulator drives, plus the baseline algorithms the paper compares
// against (Section V-A): fixed top-bitrate streaming ("Youtube"),
// throughput-based FESTIVE, and buffer-based BBA. The paper's own
// online and optimal algorithms live in internal/core.
package abr

import (
	"errors"
	"fmt"

	"ecavs/internal/dash"
	"ecavs/internal/netsim"
)

// Context is everything an algorithm may observe when choosing the
// bitrate for the next segment. Baselines use the network/buffer
// fields; the paper's context-aware algorithm additionally uses the
// signal strength and vibration level.
type Context struct {
	// SegmentIndex is the segment about to be downloaded (0-based).
	SegmentIndex int
	// Ladder is the available bitrate ladder.
	Ladder dash.Ladder
	// SegmentSizesMB holds this segment's payload per ladder rung.
	SegmentSizesMB []float64
	// SegmentDurationSec is the segment's playback duration.
	SegmentDurationSec float64
	// PrevRung is the previously selected rung, or -1 for the first
	// segment.
	PrevRung int
	// BufferSec is the currently buffered playback time.
	BufferSec float64
	// BufferThresholdSec is the download-pacing threshold (beta).
	BufferThresholdSec float64
	// SignalDBm is the current cellular signal strength.
	SignalDBm float64
	// VibrationLevel is the current Eq. 5 vibration estimate.
	VibrationLevel float64
}

// Algorithm selects a ladder rung per segment.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// ChooseRung returns the ladder rung index for the next segment.
	ChooseRung(ctx Context) (int, error)
	// ObserveDownload feeds the measured throughput (Mbps) of the
	// just-completed segment download back to the algorithm.
	ObserveDownload(throughputMbps float64)
	// Reset clears per-session state so the algorithm can be reused.
	Reset()
}

// ErrEmptyContext is returned when a Context lacks a ladder.
var ErrEmptyContext = errors.New("abr: context has no ladder")

// Fixed always requests the same rung; with Rung = -1 it requests the
// top rung, which is the paper's "Youtube" baseline (constant 5.8 Mbps
// / 1080p).
type Fixed struct {
	// Rung is the rung to request; -1 means the ladder's top rung.
	Rung int
}

var _ Algorithm = (*Fixed)(nil)

// NewYoutube returns the paper's fixed-1080p baseline.
func NewYoutube() *Fixed { return &Fixed{Rung: -1} }

// Name implements Algorithm.
func (f *Fixed) Name() string {
	if f.Rung < 0 {
		return "Youtube"
	}
	return fmt.Sprintf("Fixed(%d)", f.Rung)
}

// ChooseRung implements Algorithm.
func (f *Fixed) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	if f.Rung < 0 {
		return ctx.Ladder.Highest().Index, nil
	}
	if f.Rung >= len(ctx.Ladder) {
		return ctx.Ladder.Highest().Index, nil
	}
	return f.Rung, nil
}

// ObserveDownload implements Algorithm.
func (f *Fixed) ObserveDownload(float64) {}

// Reset implements Algorithm.
func (f *Fixed) Reset() {}

// RateBased is the naive throughput-matching strawman: it requests the
// highest rung below the last observed throughput.
type RateBased struct {
	est *netsim.LastSampleEstimator
}

var _ Algorithm = (*RateBased)(nil)

// NewRateBased returns a last-sample rate-matching algorithm.
func NewRateBased() *RateBased {
	return &RateBased{est: netsim.NewLastSampleEstimator()}
}

// Name implements Algorithm.
func (r *RateBased) Name() string { return "RateBased" }

// ChooseRung implements Algorithm.
func (r *RateBased) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	bw, ok := r.est.Estimate()
	if !ok {
		return ctx.Ladder.Lowest().Index, nil
	}
	return ctx.Ladder.HighestBelow(bw).Index, nil
}

// ObserveDownload implements Algorithm.
func (r *RateBased) ObserveDownload(thMbps float64) { r.est.Push(thMbps) }

// Reset implements Algorithm.
func (r *RateBased) Reset() { r.est.Reset() }
