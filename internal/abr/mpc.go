package abr

import (
	"errors"
	"math"

	"ecavs/internal/netsim"
)

// MPC is the model-predictive-control algorithm of Yin, Jindal, Sekar
// and Sinopoli (SIGCOMM 2015), cited by the paper as reference [17]:
// it plans a short horizon ahead against a bandwidth prediction,
// maximising a linear QoE objective (average bitrate, minus rebuffer
// time, minus bitrate switches) and commits only the first step. The
// RobustMPC variant discounts the prediction by its recent error.
//
// The horizon search runs as dynamic programming over (step, rung)
// with a discretised buffer state, which keeps the 14-rung ladder
// tractable.
//
// Construct with NewMPC; the zero value is unusable.
type MPC struct {
	horizon     int
	robust      bool
	lambdaRebuf float64
	muSwitch    float64

	est     *netsim.HarmonicMeanEstimator
	lastErr *netsim.EWMAEstimator // tracks relative prediction error
	lastBW  float64
}

var _ Algorithm = (*MPC)(nil)

// MPCOption customises the algorithm.
type MPCOption func(*MPC)

// WithMPCHorizon overrides the planning horizon (default 5 segments).
func WithMPCHorizon(h int) MPCOption {
	return func(m *MPC) { m.horizon = h }
}

// WithoutRobustness disables the RobustMPC prediction discount.
func WithoutRobustness() MPCOption {
	return func(m *MPC) { m.robust = false }
}

// ErrBadHorizon is returned for non-positive horizons.
var ErrBadHorizon = errors.New("abr: MPC horizon must be positive")

// NewMPC returns the (Robust)MPC baseline.
func NewMPC(opts ...MPCOption) (*MPC, error) {
	m := &MPC{
		horizon:     5,
		robust:      true,
		lambdaRebuf: 4.3, // rebuffer weight, as in the MPC paper's setup
		muSwitch:    1.0,
		est:         netsim.NewHarmonicMeanEstimator(5),
		lastErr:     netsim.NewEWMAEstimator(0.3),
	}
	for _, o := range opts {
		o(m)
	}
	if m.horizon <= 0 {
		return nil, ErrBadHorizon
	}
	return m, nil
}

// Name implements Algorithm.
func (m *MPC) Name() string {
	if m.robust {
		return "RobustMPC"
	}
	return "MPC"
}

// bufferBins discretises the buffer for the DP (0.25 s resolution).
const (
	mpcBufStep = 0.25
	mpcBufMax  = 60.0
)

func bufToBin(buf float64) int {
	if buf < 0 {
		buf = 0
	}
	if buf > mpcBufMax {
		buf = mpcBufMax
	}
	return int(buf / mpcBufStep)
}

func binToBuf(bin int) float64 { return float64(bin) * mpcBufStep }

// ChooseRung implements Algorithm.
func (m *MPC) ChooseRung(ctx Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, ErrEmptyContext
	}
	bw, ok := m.est.Estimate()
	if !ok {
		return ctx.Ladder.Lowest().Index, nil
	}
	if m.robust {
		// Discount by the tracked relative prediction error.
		if errEst, primed := m.lastErr.Estimate(); primed && errEst > 0 {
			bw /= 1 + errEst
		}
	}
	if bw <= 0 {
		return ctx.Ladder.Lowest().Index, nil
	}

	k := len(ctx.Ladder)
	dur := ctx.SegmentDurationSec
	if dur <= 0 {
		dur = 2
	}
	// Per-rung download time of one segment at the predicted rate.
	dl := make([]float64, k)
	for j, rep := range ctx.Ladder {
		size := rep.BitrateMbps / 8 * dur
		if len(ctx.SegmentSizesMB) == k {
			size = ctx.SegmentSizesMB[j]
		}
		dl[j] = size / (bw / 8)
	}

	// DP over (step, rung, bufferBin) maximising the MPC QoE:
	//   sum bitrate - lambda*rebuffer - mu*|bitrate switch|
	type state struct {
		rung int
		bin  int
	}
	prevBitrate := 0.0
	if ctx.PrevRung >= 0 && ctx.PrevRung < k {
		prevBitrate = ctx.Ladder[ctx.PrevRung].BitrateMbps
	}

	// value[state] = best objective achievable from this state onward;
	// computed backwards. To bound the state space we memoise per step.
	memo := make([]map[state]float64, m.horizon+1)
	for i := range memo {
		memo[i] = make(map[state]float64)
	}
	var visit func(step int, st state) float64
	visit = func(step int, st state) float64 {
		if step == m.horizon {
			return 0
		}
		if v, done := memo[step][st]; done {
			return v
		}
		best := math.Inf(-1)
		buf := binToBuf(st.bin)
		for j := 0; j < k; j++ {
			rebuf := dl[j] - buf
			nextBuf := buf - dl[j]
			if rebuf < 0 {
				rebuf = 0
			}
			if nextBuf < 0 {
				nextBuf = 0
			}
			nextBuf += dur
			prevBR := prevBitrate
			if st.rung >= 0 {
				prevBR = ctx.Ladder[st.rung].BitrateMbps
			}
			br := ctx.Ladder[j].BitrateMbps
			gain := br - m.lambdaRebuf*rebuf - m.muSwitch*math.Abs(br-prevBR)
			total := gain + visit(step+1, state{rung: j, bin: bufToBin(nextBuf)})
			if total > best {
				best = total
			}
		}
		memo[step][st] = best
		return best
	}

	// Choose the first step maximising gain + future value.
	start := state{rung: ctx.PrevRung, bin: bufToBin(ctx.BufferSec)}
	if start.rung >= k {
		start.rung = k - 1
	}
	bestRung := 0
	bestTotal := math.Inf(-1)
	buf := ctx.BufferSec
	for j := 0; j < k; j++ {
		rebuf := dl[j] - buf
		nextBuf := buf - dl[j]
		if rebuf < 0 {
			rebuf = 0
		}
		if nextBuf < 0 {
			nextBuf = 0
		}
		nextBuf += dur
		br := ctx.Ladder[j].BitrateMbps
		gain := br - m.lambdaRebuf*rebuf - m.muSwitch*math.Abs(br-prevBitrate)
		total := gain + visit(1, state{rung: j, bin: bufToBin(nextBuf)})
		if total > bestTotal {
			bestTotal = total
			bestRung = j
		}
	}
	return bestRung, nil
}

// ObserveDownload implements Algorithm.
func (m *MPC) ObserveDownload(thMbps float64) {
	if pred, ok := m.est.Estimate(); ok && thMbps > 0 {
		relErr := math.Abs(pred-thMbps) / thMbps
		m.lastErr.Push(relErr)
	}
	m.est.Push(thMbps)
	m.lastBW = thMbps
}

// Reset implements Algorithm.
func (m *MPC) Reset() {
	m.est.Reset()
	m.lastErr = netsim.NewEWMAEstimator(0.3)
	m.lastBW = 0
}
