package abr

import (
	"errors"
	"testing"

	"ecavs/internal/dash"
)

func ctxWith(t *testing.T, mut func(*Context)) Context {
	t.Helper()
	ctx := Context{
		SegmentIndex:       5,
		Ladder:             dash.EvalLadder(),
		SegmentDurationSec: 2,
		PrevRung:           -1,
		BufferSec:          10,
		BufferThresholdSec: 30,
		SignalDBm:          -95,
	}
	if mut != nil {
		mut(&ctx)
	}
	return ctx
}

func TestYoutubeAlwaysTopRung(t *testing.T) {
	y := NewYoutube()
	if y.Name() != "Youtube" {
		t.Errorf("Name = %q", y.Name())
	}
	ctx := ctxWith(t, nil)
	for i := 0; i < 5; i++ {
		rung, err := y.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rung != len(ctx.Ladder)-1 {
			t.Errorf("rung = %d, want top %d", rung, len(ctx.Ladder)-1)
		}
		y.ObserveDownload(0.1) // must not affect the choice
	}
}

func TestFixedSpecificRung(t *testing.T) {
	f := &Fixed{Rung: 3}
	if f.Name() != "Fixed(3)" {
		t.Errorf("Name = %q", f.Name())
	}
	rung, err := f.ChooseRung(ctxWith(t, nil))
	if err != nil || rung != 3 {
		t.Errorf("rung = %d, %v; want 3", rung, err)
	}
	// Out-of-range fixed rung falls back to top.
	f = &Fixed{Rung: 99}
	rung, err = f.ChooseRung(ctxWith(t, nil))
	if err != nil || rung != 13 {
		t.Errorf("rung = %d, %v; want 13", rung, err)
	}
	f.Reset() // no-op, must not panic
}

func TestFixedEmptyLadder(t *testing.T) {
	f := NewYoutube()
	if _, err := f.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
}

func TestRateBased(t *testing.T) {
	r := NewRateBased()
	if r.Name() != "RateBased" {
		t.Errorf("Name = %q", r.Name())
	}
	// Before any sample: lowest rung.
	rung, err := r.ChooseRung(ctxWith(t, nil))
	if err != nil || rung != 0 {
		t.Errorf("startup rung = %d, %v; want 0", rung, err)
	}
	r.ObserveDownload(3.1)
	rung, err = r.ChooseRung(ctxWith(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctxWith(t, nil).Ladder[rung].BitrateMbps; got != 3.0 {
		t.Errorf("rung bitrate = %v, want 3.0 (highest below 3.1)", got)
	}
	r.Reset()
	rung, _ = r.ChooseRung(ctxWith(t, nil))
	if rung != 0 {
		t.Errorf("rung after Reset = %d, want 0", rung)
	}
	if _, err := r.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
}

func TestFESTIVEStartupAndEstimate(t *testing.T) {
	f := NewFESTIVE()
	if f.Name() != "FESTIVE" {
		t.Errorf("Name = %q", f.Name())
	}
	// Startup: bottom rung.
	rung, err := f.ChooseRung(ctxWith(t, nil))
	if err != nil || rung != 0 {
		t.Errorf("startup rung = %d, %v; want 0", rung, err)
	}
	// Feed stable 6 Mbps throughput; estimate approaches 6, so the
	// target is 5.8, reached gradually one rung at a time.
	prev := 0
	for i := 0; i < 20; i++ {
		f.ObserveDownload(6.0)
		ctx := ctxWith(t, func(c *Context) { c.PrevRung = prev })
		rung, err = f.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rung > prev+1 {
			t.Fatalf("jumped %d -> %d, gradual switching violated", prev, rung)
		}
		prev = rung
	}
	if got := ctxWith(t, nil).Ladder[prev].BitrateMbps; got != 5.8 {
		t.Errorf("steady-state bitrate = %v, want 5.8", got)
	}
}

func TestFESTIVEHarmonicMeanDampsSpikes(t *testing.T) {
	f := NewFESTIVE(WithoutGradualSwitching())
	// Mostly 1 Mbps with one huge spike: harmonic mean stays low.
	for i := 0; i < 19; i++ {
		f.ObserveDownload(1.0)
	}
	f.ObserveDownload(100.0)
	rung, err := f.ChooseRung(ctxWith(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctxWith(t, nil).Ladder[rung].BitrateMbps; got > 1.0 {
		t.Errorf("bitrate after spike = %v, want <= 1.0", got)
	}
}

func TestFESTIVEWindowOption(t *testing.T) {
	f := NewFESTIVE(WithFESTIVEWindow(2), WithoutGradualSwitching())
	f.ObserveDownload(0.2)
	f.ObserveDownload(4.0)
	f.ObserveDownload(4.0) // window of 2: the 0.2 sample evicted
	rung, err := f.ChooseRung(ctxWith(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctxWith(t, nil).Ladder[rung].BitrateMbps; got != 3.6 {
		t.Errorf("bitrate = %v, want 3.6 (highest below 4.0)", got)
	}
	// Invalid window is ignored.
	f2 := NewFESTIVE(WithFESTIVEWindow(0))
	f2.ObserveDownload(1)
	if _, err := f2.ChooseRung(ctxWith(t, nil)); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestFESTIVEGradualDown(t *testing.T) {
	f := NewFESTIVE()
	for i := 0; i < 20; i++ {
		f.ObserveDownload(0.3)
	}
	ctx := ctxWith(t, func(c *Context) { c.PrevRung = 10 })
	rung, err := f.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rung != 9 {
		t.Errorf("rung = %d, want 9 (one step down)", rung)
	}
}

func TestFESTIVEReset(t *testing.T) {
	f := NewFESTIVE()
	f.ObserveDownload(6)
	f.Reset()
	rung, err := f.ChooseRung(ctxWith(t, nil))
	if err != nil || rung != 0 {
		t.Errorf("rung after Reset = %d, %v; want 0", rung, err)
	}
	if _, err := f.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
}

func TestNewBBAValidation(t *testing.T) {
	if _, err := NewBBA(WithBBARegion(0, 0.9)); !errors.Is(err, ErrBadBBARegion) {
		t.Errorf("err = %v, want ErrBadBBARegion", err)
	}
	if _, err := NewBBA(WithBBARegion(0.5, 0.4)); !errors.Is(err, ErrBadBBARegion) {
		t.Errorf("err = %v, want ErrBadBBARegion", err)
	}
	if _, err := NewBBA(WithBBARegion(0.5, 1.1)); !errors.Is(err, ErrBadBBARegion) {
		t.Errorf("err = %v, want ErrBadBBARegion", err)
	}
}

func TestBBAStartupFollowsThroughput(t *testing.T) {
	b, err := NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "BBA" {
		t.Errorf("Name = %q", b.Name())
	}
	// Empty buffer, no sample: lowest.
	ctx := ctxWith(t, func(c *Context) { c.BufferSec = 0 })
	rung, err := b.ChooseRung(ctx)
	if err != nil || rung != 0 {
		t.Errorf("rung = %d, %v; want 0", rung, err)
	}
	// Startup with an observed throughput: highest below it.
	b.ObserveDownload(2.5)
	ctx = ctxWith(t, func(c *Context) { c.BufferSec = 2 })
	rung, err = b.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.Ladder[rung].BitrateMbps; got != 2.3 {
		t.Errorf("startup bitrate = %v, want 2.3", got)
	}
}

func TestBBASteadyStateMap(t *testing.T) {
	b, err := NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	// Reach steady state: buffer above the reservoir (7.5 s of 30 s).
	ctx := ctxWith(t, func(c *Context) { c.BufferSec = 10 })
	if _, err := b.ChooseRung(ctx); err != nil {
		t.Fatal(err)
	}
	// Above the cushion (27 s): top rung — BBA's aggressive region.
	ctx = ctxWith(t, func(c *Context) { c.BufferSec = 28 })
	rung, err := b.ChooseRung(ctx)
	if err != nil || rung != 13 {
		t.Errorf("rung at full buffer = %d, %v; want 13", rung, err)
	}
	// Back below the reservoir: bottom rung (steady state persists).
	ctx = ctxWith(t, func(c *Context) { c.BufferSec = 5 })
	rung, err = b.ChooseRung(ctx)
	if err != nil || rung != 0 {
		t.Errorf("rung at low buffer = %d, %v; want 0", rung, err)
	}
	// Mid-cushion: intermediate rung, monotone in buffer.
	prev := -1
	for _, buf := range []float64{9, 12, 15, 18, 21, 24, 26} {
		ctx = ctxWith(t, func(c *Context) { c.BufferSec = buf })
		rung, err = b.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rung < prev {
			t.Errorf("BBA map not monotone at buffer %v", buf)
		}
		prev = rung
	}
}

func TestBBADefaultThreshold(t *testing.T) {
	b, err := NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	// Zero threshold falls back to 30 s.
	ctx := ctxWith(t, func(c *Context) { c.BufferThresholdSec = 0; c.BufferSec = 29 })
	rung, err := b.ChooseRung(ctx)
	if err != nil || rung != 13 {
		t.Errorf("rung = %d, %v; want 13", rung, err)
	}
}

func TestBBAReset(t *testing.T) {
	b, err := NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxWith(t, func(c *Context) { c.BufferSec = 10 })
	if _, err := b.ChooseRung(ctx); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	// After reset, startup phase again: no sample -> lowest even at
	// mid buffer below reservoir.
	ctx = ctxWith(t, func(c *Context) { c.BufferSec = 2 })
	rung, err := b.ChooseRung(ctx)
	if err != nil || rung != 0 {
		t.Errorf("rung after Reset = %d, %v; want 0", rung, err)
	}
	if _, err := b.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
}
