package abr

import (
	"errors"
	"testing"

	"ecavs/internal/dash"
)

func mpcCtx(t *testing.T, bufferSec float64, prevRung int) Context {
	t.Helper()
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, rep := range ladder {
		sizes[i] = rep.BitrateMbps / 8 * 2
	}
	return Context{
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		BufferSec:          bufferSec,
		BufferThresholdSec: 30,
		PrevRung:           prevRung,
	}
}

func TestNewMPCValidation(t *testing.T) {
	if _, err := NewMPC(WithMPCHorizon(0)); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("err = %v, want ErrBadHorizon", err)
	}
	m, err := NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "RobustMPC" {
		t.Errorf("Name = %q, want RobustMPC", m.Name())
	}
	plain, err := NewMPC(WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Name() != "MPC" {
		t.Errorf("Name = %q, want MPC", plain.Name())
	}
}

func TestMPCStartupAtBottom(t *testing.T) {
	m, err := NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	rung, err := m.ChooseRung(mpcCtx(t, 0, -1))
	if err != nil || rung != 0 {
		t.Errorf("startup rung = %d, %v; want 0", rung, err)
	}
}

func TestMPCHighBandwidthPicksHighRung(t *testing.T) {
	m, err := NewMPC(WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.ObserveDownload(40)
	}
	rung, err := m.ChooseRung(mpcCtx(t, 25, 13))
	if err != nil {
		t.Fatal(err)
	}
	if rung < 12 {
		t.Errorf("rung = %d, want near top with 40 Mbps and full buffer", rung)
	}
}

func TestMPCLowBandwidthAvoidsRebuffering(t *testing.T) {
	m, err := NewMPC(WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.ObserveDownload(1.0)
	}
	// Tiny buffer: picking a high rung would cost lambda * rebuffer.
	rung, err := m.ChooseRung(mpcCtx(t, 2, 13))
	if err != nil {
		t.Fatal(err)
	}
	if got := mpcCtx(t, 2, 13).Ladder[rung].BitrateMbps; got > 1.0 {
		t.Errorf("bitrate = %v Mbps at 1 Mbps prediction and 2 s buffer, want <= 1.0", got)
	}
}

func TestMPCSwitchPenaltySmoothsChoices(t *testing.T) {
	// With a moderate estimate, MPC at prev=top steps down but not to
	// the floor in one go (the switch penalty is linear so it won't
	// crash unless rebuffering forces it).
	m, err := NewMPC(WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.ObserveDownload(6.0)
	}
	rung, err := m.ChooseRung(mpcCtx(t, 28, 13))
	if err != nil {
		t.Fatal(err)
	}
	if rung < 10 {
		t.Errorf("rung = %d: dropped too far with 6 Mbps prediction and a full buffer", rung)
	}
}

func TestMPCRobustnessDiscountsPrediction(t *testing.T) {
	robust, err := NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMPC(WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	// Feed an erratic history: prediction error accumulates.
	for _, th := range []float64{20, 2, 25, 3, 22, 2.5} {
		robust.ObserveDownload(th)
		plain.ObserveDownload(th)
	}
	ctx := mpcCtx(t, 12, 7)
	r1, err := robust.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plain.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > r2 {
		t.Errorf("robust rung %d exceeds plain rung %d under erratic history", r1, r2)
	}
}

func TestMPCReset(t *testing.T) {
	m, err := NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveDownload(30)
	m.Reset()
	rung, err := m.ChooseRung(mpcCtx(t, 10, 5))
	if err != nil || rung != 0 {
		t.Errorf("rung after Reset = %d, %v; want 0", rung, err)
	}
}

func TestMPCEmptyLadder(t *testing.T) {
	m, err := NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ChooseRung(Context{}); !errors.Is(err, ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
}

func TestMPCHorizonOption(t *testing.T) {
	m, err := NewMPC(WithMPCHorizon(2), WithoutRobustness())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.ObserveDownload(10)
	}
	if _, err := m.ChooseRung(mpcCtx(t, 15, 7)); err != nil {
		t.Errorf("short horizon failed: %v", err)
	}
}
