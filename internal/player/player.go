// Package player models the DASH client's playback buffer: startup,
// real-time draining across queued segments, stall (rebuffer)
// accounting, and the buffer-threshold download pacing of the paper's
// setup (downloads pause once beta = 30 s of content is buffered).
package player

import "errors"

// DefaultBufferThresholdSec is the paper's buffer threshold beta.
const DefaultBufferThresholdSec = 30.0

// Queued is one buffered segment awaiting playback.
type Queued struct {
	// DurationSec is the segment's remaining playback time.
	DurationSec float64
	// BitrateMbps is the segment's encoded bitrate (used to attribute
	// decode power while it plays).
	BitrateMbps float64
}

// Played reports a contiguous stretch of playback at one bitrate,
// returned by Drain so the caller can integrate decode power.
type Played struct {
	// DurationSec is how long this stretch played.
	DurationSec float64
	// BitrateMbps is the bitrate that was decoding.
	BitrateMbps float64
}

// Player is the client buffer. The zero value is not usable; construct
// with New.
//
// The queue is a compacting ring: consumed segments advance a head
// index instead of re-slicing the front off (which would pin the
// consumed prefix's backing array for the whole session), and the
// live tail is periodically copied back to the array start so the
// backing capacity stays bounded by the deepest simultaneous queue,
// not by the number of segments ever enqueued.
type Player struct {
	thresholdSec float64
	queue        []Queued
	head         int
	started      bool

	playedSec  float64
	stallSec   float64
	startupSec float64
}

// ErrBadThreshold is returned for non-positive buffer thresholds.
var ErrBadThreshold = errors.New("player: buffer threshold must be positive")

// New returns a player that pauses downloads once the buffer exceeds
// thresholdSec.
func New(thresholdSec float64) (*Player, error) {
	if thresholdSec <= 0 {
		return nil, ErrBadThreshold
	}
	return &Player{thresholdSec: thresholdSec}, nil
}

// BufferSec returns the buffered playback time.
func (p *Player) BufferSec() float64 {
	var sum float64
	for _, q := range p.queue[p.head:] {
		sum += q.DurationSec
	}
	return sum
}

// QueueCap reports the queue's backing-array capacity (test hook for
// the bounded-growth guarantee).
func (p *Player) QueueCap() int { return cap(p.queue) }

// ThresholdSec returns the download-pacing threshold.
func (p *Player) ThresholdSec() float64 { return p.thresholdSec }

// ShouldDownload reports whether the next segment download should
// start now (buffer below the threshold).
func (p *Player) ShouldDownload() bool { return p.BufferSec() < p.thresholdSec }

// Started reports whether playback has begun (first segment arrived).
func (p *Player) Started() bool { return p.started }

// OnSegment enqueues a downloaded segment and starts playback if this
// is the first one. Non-positive durations are ignored.
func (p *Player) OnSegment(durationSec, bitrateMbps float64) {
	if durationSec <= 0 {
		return
	}
	p.queue = append(p.queue, Queued{DurationSec: durationSec, BitrateMbps: bitrateMbps})
	p.started = true
}

// Drain advances playback by dt wall-clock seconds. It returns the
// playback stretches consumed (for decode-power attribution) and the
// stall time within dt. Time before the first segment arrives counts
// as startup, not stall.
//
// Drain allocates the returned slice; hot loops should use DrainInto.
func (p *Player) Drain(dt float64) (played []Played, stallSec float64) {
	stallSec = p.DrainInto(dt, func(st Played) {
		played = append(played, st)
	})
	return played, stallSec
}

// DrainInto is Drain without the allocation: each maximal contiguous
// stretch of playback at one bitrate is passed to emit (which may be
// nil) in playback order. The stretches and the returned stall are
// identical to Drain's.
func (p *Player) DrainInto(dt float64, emit func(Played)) (stallSec float64) {
	if dt <= 0 {
		return 0
	}
	if !p.started {
		p.startupSec += dt
		return 0
	}
	remaining := dt
	var cur Played
	haveCur := false
	for remaining > 1e-12 && p.head < len(p.queue) {
		q := &p.queue[p.head]
		consume := q.DurationSec
		if consume > remaining {
			consume = remaining
		}
		q.DurationSec -= consume
		remaining -= consume
		p.playedSec += consume
		if haveCur && cur.BitrateMbps == q.BitrateMbps {
			cur.DurationSec += consume
		} else {
			if haveCur && emit != nil {
				emit(cur)
			}
			cur = Played{DurationSec: consume, BitrateMbps: q.BitrateMbps}
			haveCur = true
		}
		if q.DurationSec <= 1e-12 {
			p.pop()
		}
	}
	if haveCur && emit != nil {
		emit(cur)
	}
	if remaining > 1e-12 {
		p.stallSec += remaining
		stallSec = remaining
	}
	return stallSec
}

// pop consumes the head segment, compacting the ring so the backing
// array never grows past roughly twice the deepest live queue.
func (p *Player) pop() {
	p.head++
	if p.head == len(p.queue) {
		p.queue = p.queue[:0]
		p.head = 0
		return
	}
	if p.head >= 16 && p.head*2 >= len(p.queue) {
		n := copy(p.queue, p.queue[p.head:])
		p.queue = p.queue[:n]
		p.head = 0
	}
}

// FinishRemaining plays out whatever is buffered and returns the
// stretches, leaving the buffer empty. Used after the last download.
func (p *Player) FinishRemaining() []Played {
	var played []Played
	p.FinishRemainingInto(func(st Played) { played = append(played, st) })
	return played
}

// FinishRemainingInto is FinishRemaining without the allocation: the
// stretches are passed to emit (which may be nil) in playback order.
func (p *Player) FinishRemainingInto(emit func(Played)) {
	p.DrainInto(p.BufferSec()+1e-9, emit)
	// The epsilon overshoot must not register as a stall.
	if p.stallSec > 0 && p.stallSec < 1e-6 {
		p.stallSec = 0
	}
}

// PlayedSec returns total playback time so far.
func (p *Player) PlayedSec() float64 { return p.playedSec }

// StallSec returns total mid-stream stall time so far.
func (p *Player) StallSec() float64 { return p.stallSec }

// StartupSec returns time spent waiting for the first segment.
func (p *Player) StartupSec() float64 { return p.startupSec }
