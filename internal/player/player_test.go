package player

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New(0); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("err = %v, want ErrBadThreshold", err)
	}
	if _, err := New(-5); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("err = %v, want ErrBadThreshold", err)
	}
	p, err := New(DefaultBufferThresholdSec)
	if err != nil {
		t.Fatal(err)
	}
	if p.ThresholdSec() != 30 {
		t.Errorf("ThresholdSec = %v, want 30", p.ThresholdSec())
	}
}

func TestStartupAccounting(t *testing.T) {
	p, _ := New(30)
	if p.Started() {
		t.Error("fresh player claims started")
	}
	played, stall := p.Drain(3)
	if played != nil || stall != 0 {
		t.Errorf("pre-start drain = %v, %v; want nil, 0", played, stall)
	}
	if p.StartupSec() != 3 {
		t.Errorf("StartupSec = %v, want 3", p.StartupSec())
	}
	p.OnSegment(2, 1.5)
	if !p.Started() {
		t.Error("player did not start after first segment")
	}
	// Startup time does not count as stall.
	if p.StallSec() != 0 {
		t.Errorf("StallSec = %v, want 0", p.StallSec())
	}
}

func TestDrainAcrossSegments(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(2, 1.5)
	p.OnSegment(2, 3.0)
	played, stall := p.Drain(3)
	if stall != 0 {
		t.Errorf("stall = %v, want 0", stall)
	}
	if len(played) != 2 {
		t.Fatalf("played stretches = %d, want 2", len(played))
	}
	if played[0].BitrateMbps != 1.5 || !almostEqual(played[0].DurationSec, 2, 1e-9) {
		t.Errorf("stretch 0 = %+v, want 2 s @ 1.5", played[0])
	}
	if played[1].BitrateMbps != 3.0 || !almostEqual(played[1].DurationSec, 1, 1e-9) {
		t.Errorf("stretch 1 = %+v, want 1 s @ 3.0", played[1])
	}
	if !almostEqual(p.BufferSec(), 1, 1e-9) {
		t.Errorf("BufferSec = %v, want 1", p.BufferSec())
	}
}

func TestDrainMergesEqualBitrates(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(2, 1.5)
	p.OnSegment(2, 1.5)
	played, _ := p.Drain(4)
	if len(played) != 1 {
		t.Fatalf("played stretches = %d, want 1 (merged)", len(played))
	}
	if !almostEqual(played[0].DurationSec, 4, 1e-9) {
		t.Errorf("merged duration = %v, want 4", played[0].DurationSec)
	}
}

func TestStallWhenBufferEmpties(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(2, 1.5)
	_, stall := p.Drain(5)
	if !almostEqual(stall, 3, 1e-9) {
		t.Errorf("stall = %v, want 3", stall)
	}
	if !almostEqual(p.StallSec(), 3, 1e-9) {
		t.Errorf("StallSec = %v, want 3", p.StallSec())
	}
	if !almostEqual(p.PlayedSec(), 2, 1e-9) {
		t.Errorf("PlayedSec = %v, want 2", p.PlayedSec())
	}
}

func TestShouldDownloadThreshold(t *testing.T) {
	p, _ := New(4)
	if !p.ShouldDownload() {
		t.Error("empty buffer should download")
	}
	p.OnSegment(2, 1)
	if !p.ShouldDownload() {
		t.Error("buffer below threshold should download")
	}
	p.OnSegment(2, 1)
	if p.ShouldDownload() {
		t.Error("buffer at threshold should pause downloads")
	}
	p.Drain(1)
	if !p.ShouldDownload() {
		t.Error("buffer drained below threshold should resume")
	}
}

func TestOnSegmentIgnoresNonPositive(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(0, 1)
	p.OnSegment(-2, 1)
	if p.Started() || p.BufferSec() != 0 {
		t.Error("non-positive segments were enqueued")
	}
}

func TestDrainNonPositive(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(2, 1)
	played, stall := p.Drain(0)
	if played != nil || stall != 0 {
		t.Error("Drain(0) did something")
	}
	played, stall = p.Drain(-1)
	if played != nil || stall != 0 {
		t.Error("Drain(-1) did something")
	}
}

func TestFinishRemaining(t *testing.T) {
	p, _ := New(30)
	p.OnSegment(2, 1.5)
	p.OnSegment(2, 3.0)
	p.Drain(1)
	played := p.FinishRemaining()
	var total float64
	for _, st := range played {
		total += st.DurationSec
	}
	if !almostEqual(total, 3, 1e-6) {
		t.Errorf("FinishRemaining played %v s, want 3", total)
	}
	if p.BufferSec() > 1e-9 {
		t.Errorf("buffer not empty: %v", p.BufferSec())
	}
	if p.StallSec() != 0 {
		t.Errorf("FinishRemaining registered stall: %v", p.StallSec())
	}
}

// Conservation: enqueued duration = played + buffered, and stall only
// accrues when the buffer is empty.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(opsRaw uint8) bool {
		p, err := New(30)
		if err != nil {
			return false
		}
		ops := int(opsRaw%40) + 1
		var enqueued float64
		for i := 0; i < ops; i++ {
			if rng.Float64() < 0.5 {
				d := rng.Float64()*3 + 0.1
				enqueued += d
				p.OnSegment(d, 1.5)
			} else {
				p.Drain(rng.Float64() * 4)
			}
		}
		return almostEqual(enqueued, p.PlayedSec()+p.BufferSec(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQueueCapacityBounded guards the ring-buffer fix: a steady-state
// session (enqueue one segment, drain one segment, thousands of times)
// must not grow the queue's backing array with the number of segments
// ever enqueued. The old p.queue = p.queue[1:] implementation retained
// every consumed entry's slot and failed this test.
func TestQueueCapacityBounded(t *testing.T) {
	p, err := New(30)
	if err != nil {
		t.Fatal(err)
	}
	const (
		segments = 20_000
		depth    = 8 // live queue depth held during the run
	)
	for i := 0; i < depth; i++ {
		p.OnSegment(2, 1.5)
	}
	for i := 0; i < segments; i++ {
		p.OnSegment(2, float64(i%3)+1)
		if _, stall := p.Drain(2); stall != 0 {
			t.Fatalf("unexpected stall at segment %d", i)
		}
	}
	if got := p.QueueCap(); got > 4*depth+16 {
		t.Errorf("queue capacity grew to %d for a depth-%d session; want bounded", got, depth)
	}
	if want := float64(depth * 2); math.Abs(p.BufferSec()-want) > 1e-6 {
		t.Errorf("BufferSec = %v, want %v", p.BufferSec(), want)
	}
}

// TestDrainIntoMatchesDrain pins the callback API to the allocating
// one: same stretches, same stall, same player state.
func TestDrainIntoMatchesDrain(t *testing.T) {
	build := func() *Player {
		p, err := New(30)
		if err != nil {
			t.Fatal(err)
		}
		p.OnSegment(2, 1)
		p.OnSegment(2, 1)
		p.OnSegment(2, 3)
		p.OnSegment(1, 2)
		return p
	}
	a, b := build(), build()
	for _, dt := range []float64{0.5, 3.2, 1.1, 9} {
		played, stallA := a.Drain(dt)
		var viaEmit []Played
		stallB := b.DrainInto(dt, func(st Played) { viaEmit = append(viaEmit, st) })
		if stallA != stallB {
			t.Fatalf("stall mismatch at dt=%v: %v vs %v", dt, stallA, stallB)
		}
		if len(played) != len(viaEmit) {
			t.Fatalf("stretch count mismatch at dt=%v: %v vs %v", dt, played, viaEmit)
		}
		for i := range played {
			if played[i] != viaEmit[i] {
				t.Fatalf("stretch %d mismatch at dt=%v: %v vs %v", i, dt, played[i], viaEmit[i])
			}
		}
	}
	if a.PlayedSec() != b.PlayedSec() || a.StallSec() != b.StallSec() || a.BufferSec() != b.BufferSec() {
		t.Errorf("diverged state: played %v/%v stall %v/%v buffer %v/%v",
			a.PlayedSec(), b.PlayedSec(), a.StallSec(), b.StallSec(), a.BufferSec(), b.BufferSec())
	}
}
