// Package edgecache is the in-memory segment cache behind the httpdash
// edge tier: a byte-capped store sharded across power-of-two LRU
// shards, keyed by a splitmix64 hash of the segment path
// ("<rung>/<segment>"), with lock-free hit/miss/fill/evict counters.
// Each shard owns an intrusive LRU list under its own mutex, so
// concurrent requests for different keys rarely contend, and the
// per-shard byte budget bounds total memory no matter what the
// workload looks like. Entries are immutable after Fill: a cache hit
// hands back the shared payload slice and the serving path writes it
// without copying.
package edgecache

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShards is the shard count used when Config leaves it zero:
// enough to keep a 16-worker load off any single mutex without
// fragmenting the byte budget into uselessly small slices.
const DefaultShards = 16

// Config sizes a Cache.
type Config struct {
	// CapacityBytes is the total payload budget across all shards
	// (required, > 0). Each shard gets an equal slice; an entry larger
	// than its shard's slice is served but never cached.
	CapacityBytes int64
	// Shards is the shard count (power of two; 0 = DefaultShards).
	Shards int
}

func (c Config) validate() error {
	if c.CapacityBytes <= 0 {
		return errors.New("edgecache: CapacityBytes must be positive")
	}
	if c.Shards < 0 || (c.Shards != 0 && c.Shards&(c.Shards-1) != 0) {
		return errors.New("edgecache: Shards must be a power of two")
	}
	return nil
}

// Entry is one cached segment. Data and the pre-rendered response
// headers are immutable after the entry is filled; FilledAt anchors the
// edge's freshness/staleness policy.
type Entry struct {
	// Key is the cache key ("<repID>/<segment>.m4s" at the edge).
	Key string
	// Data is the payload, shared with every reader — never mutate it.
	Data []byte
	// ContentType and ContentLength are the response headers, rendered
	// once at fill time so the hit path never formats integers.
	ContentType   string
	ContentLength string
	// FilledAt is when the entry was (re)filled from the origin.
	FilledAt time.Time

	// Intrusive LRU links, owned by the shard mutex.
	prev, next *Entry
}

// Stats is a point-in-time copy of the cache counters. Counters are
// sampled one atomic load at a time: totals are never torn within one
// counter but may be approximate across counters mid-traffic.
type Stats struct {
	// Hits and Misses classify Get calls (a stale entry is still a hit
	// at this layer — freshness is the edge's policy, not the cache's).
	Hits, Misses int64
	// Fills counts Fill calls that stored an entry; Evictions counts
	// entries displaced to make room.
	Fills, Evictions int64
	// Uncacheable counts Fill calls whose payload exceeded a shard's
	// byte budget and was served without being stored.
	Uncacheable int64
	// Bytes and Entries describe current residency.
	Bytes, Entries int64
}

// Cache is the sharded store. Construct with New; the zero value is
// unusable.
type Cache struct {
	shards []shard
	mask   uint64

	hits, misses, fills, evictions, uncacheable atomic.Int64
}

// shard is one LRU slice of the byte budget. The sentinel head makes
// list surgery branch-free: head.next is most recent, head.prev least.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*Entry
	head     Entry // sentinel
	bytes    int64
	capacity int64
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Shards
	if n == 0 {
		n = DefaultShards
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := cfg.CapacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.entries = make(map[string]*Entry)
		s.capacity = per
		s.head.prev, s.head.next = &s.head, &s.head
	}
	return c, nil
}

// hashKey folds the key bytes through the repo's splitmix64 finalizer
// — the same generator the fault planner, backoff jitter, and tracer
// IDs use — so shard assignment is deterministic, well mixed, and free
// of any per-process seed.
func hashKey(key string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(key); i++ {
		h += uint64(key[i]) + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[hashKey(key)&c.mask]
}

// Get returns the entry for key (freshest first in its shard's LRU) or
// nil. A non-nil return counts as a hit even when the entry is stale by
// the caller's policy: the cache tracks residency, the edge tracks
// freshness.
func (c *Cache) Get(key string) *Entry {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.entries[key]
	if e != nil {
		// Move to front: most recently used sits at head.next.
		e.unlink()
		s.pushFront(e)
	}
	s.mu.Unlock()
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e
}

// Fill stores a freshly fetched payload under key, evicting from the
// shard's LRU tail until it fits, and returns the stored entry. A
// payload larger than the shard's byte budget is returned as an
// unstored entry (cached == false) — the caller can still serve it,
// it just will not be a future hit. Refilling an existing key replaces
// the entry in place in the accounting.
func (c *Cache) Fill(key string, data []byte, contentType, contentLength string, now time.Time) (e *Entry, cached bool) {
	e = &Entry{
		Key:           key,
		Data:          data,
		ContentType:   contentType,
		ContentLength: contentLength,
		FilledAt:      now,
	}
	s := c.shardFor(key)
	size := int64(len(data))
	if size > s.capacity {
		c.uncacheable.Add(1)
		return e, false
	}
	s.mu.Lock()
	if old := s.entries[key]; old != nil {
		old.unlink()
		s.bytes -= int64(len(old.Data))
		delete(s.entries, key)
	}
	for s.bytes+size > s.capacity {
		lru := s.head.prev // least recently used
		lru.unlink()
		s.bytes -= int64(len(lru.Data))
		delete(s.entries, lru.Key)
		c.evictions.Add(1)
	}
	s.entries[key] = e
	s.bytes += size
	s.pushFront(e)
	s.mu.Unlock()
	c.fills.Add(1)
	return e, true
}

// Remove drops key if present — the edge uses it to retire an entry
// whose staleness window ran out on a failed revalidation.
func (c *Cache) Remove(key string) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		e.unlink()
		s.bytes -= int64(len(e.Data))
		delete(s.entries, key)
	}
	s.mu.Unlock()
}

// Stats samples the counters and current residency.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Fills:       c.fills.Load(),
		Evictions:   c.evictions.Load(),
		Uncacheable: c.uncacheable.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

func (e *Entry) unlink() {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) pushFront(e *Entry) {
	e.prev = &s.head
	e.next = s.head.next
	s.head.next.prev = e
	s.head.next = e
}
