package edgecache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{CapacityBytes: 100, Shards: 3}); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if _, err := New(Config{CapacityBytes: 100, Shards: -2}); err == nil {
		t.Error("negative shard count accepted")
	}
	c := mustNew(t, Config{CapacityBytes: 100})
	if len(c.shards) != DefaultShards {
		t.Errorf("default shards = %d, want %d", len(c.shards), DefaultShards)
	}
}

func TestFillGetRoundTrip(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 4})
	now := time.Unix(100, 0)
	if got := c.Get("r0/0.m4s"); got != nil {
		t.Fatalf("cold Get returned %v", got)
	}
	e, cached := c.Fill("r0/0.m4s", []byte("payload"), "video/iso.segment", "7", now)
	if !cached {
		t.Fatal("small entry not cached")
	}
	got := c.Get("r0/0.m4s")
	if got != e || string(got.Data) != "payload" || got.ContentLength != "7" || !got.FilledAt.Equal(now) {
		t.Fatalf("Get returned %+v, want the filled entry", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 || st.Entries != 1 || st.Bytes != 7 {
		t.Errorf("stats %+v after one miss, one fill, one hit", st)
	}
}

func TestRefillReplacesInPlace(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 1 << 10, Shards: 1})
	c.Fill("k", make([]byte, 100), "t", "100", time.Unix(1, 0))
	c.Fill("k", make([]byte, 200), "t", "200", time.Unix(2, 0))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 200 {
		t.Errorf("after refill: entries %d bytes %d, want 1/200", st.Entries, st.Bytes)
	}
	if e := c.Get("k"); len(e.Data) != 200 || !e.FilledAt.Equal(time.Unix(2, 0)) {
		t.Errorf("refill did not replace the entry: %+v", e)
	}
}

// One shard, byte cap for exactly three 100-byte entries: filling a
// fourth must evict the least recently used, and a Get in between must
// protect its entry from that eviction.
func TestLRUEvictionOrder(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 300, Shards: 1})
	now := time.Unix(1, 0)
	for i := 0; i < 3; i++ {
		c.Fill(fmt.Sprintf("k%d", i), make([]byte, 100), "t", "100", now)
	}
	c.Get("k0") // refresh k0: k1 becomes LRU
	c.Fill("k3", make([]byte, 100), "t", "100", now)
	if c.Get("k1") != nil {
		t.Error("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.Get(k) == nil {
			t.Errorf("%s evicted out of LRU order", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 300 || st.Entries != 3 {
		t.Errorf("stats %+v, want 1 eviction, 300 bytes, 3 entries", st)
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 64, Shards: 2}) // 32 bytes per shard
	e, cached := c.Fill("big", make([]byte, 100), "t", "100", time.Unix(1, 0))
	if cached || e == nil || len(e.Data) != 100 {
		t.Fatalf("oversize fill: cached=%v entry=%v", cached, e)
	}
	if c.Get("big") != nil {
		t.Error("oversize entry was stored")
	}
	if st := c.Stats(); st.Uncacheable != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats %+v, want 1 uncacheable and empty residency", st)
	}
}

func TestRemove(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 1 << 10, Shards: 1})
	c.Fill("k", make([]byte, 10), "t", "10", time.Unix(1, 0))
	c.Remove("k")
	c.Remove("k") // idempotent
	if c.Get("k") != nil {
		t.Error("entry survived Remove")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("residency %+v after Remove", st)
	}
}

func TestShardingSpreadsKeys(t *testing.T) {
	c := mustNew(t, Config{CapacityBytes: 1 << 20, Shards: 8})
	for i := 0; i < 256; i++ {
		c.Fill(fmt.Sprintf("r%d/%d.m4s", i%10, i), []byte{0}, "t", "1", time.Unix(1, 0))
	}
	occupied := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		if len(c.shards[i].entries) > 0 {
			occupied++
		}
		c.shards[i].mu.Unlock()
	}
	if occupied < len(c.shards)/2 {
		t.Errorf("256 keys landed in only %d of %d shards — hash is not spreading", occupied, len(c.shards))
	}
}

// TestEdgeCacheHammer is the 16-goroutine concurrency storm the chaos
// suite runs under -race: concurrent hits, misses, fills, refills,
// removals, and evictions (the byte cap is far smaller than the
// working set) on overlapping keys. Afterwards the counters must
// balance — every Get is a hit or a miss — and residency must respect
// the byte cap.
func TestEdgeCacheHammer(t *testing.T) {
	const (
		goroutines = 16
		iterations = 2000
		keys       = 64
	)
	c := mustNew(t, Config{CapacityBytes: 16 * 100, Shards: 4}) // ~16 of 64 keys fit
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Unix(int64(g), 0)
			for i := 0; i < iterations; i++ {
				key := fmt.Sprintf("r%d/%d.m4s", (g+i)%4, (g*7+i)%keys)
				if e := c.Get(key); e == nil {
					c.Fill(key, make([]byte, 100), "t", "100", now)
				} else if len(e.Data) != 100 {
					t.Errorf("torn entry: %d bytes", len(e.Data))
					return
				}
				if i%97 == 0 {
					c.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iterations {
		t.Errorf("hits %d + misses %d != %d gets", st.Hits, st.Misses, goroutines*iterations)
	}
	if st.Bytes > 16*100 {
		t.Errorf("residency %d bytes exceeds the %d cap", st.Bytes, 16*100)
	}
	if st.Entries*100 != st.Bytes {
		t.Errorf("entries %d inconsistent with bytes %d", st.Entries, st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("hammer never evicted despite capacity pressure")
	}
	// The LRU lists must still be coherent: every resident entry
	// reachable from its shard's sentinel, and vice versa.
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := 0
		for e := s.head.next; e != &s.head; e = e.next {
			if s.entries[e.Key] != e {
				t.Errorf("shard %d: listed entry %q not in map", i, e.Key)
			}
			n++
		}
		if n != len(s.entries) {
			t.Errorf("shard %d: list has %d entries, map has %d", i, n, len(s.entries))
		}
		s.mu.Unlock()
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c, err := New(Config{CapacityBytes: 1 << 20, Shards: 16})
	if err != nil {
		b.Fatal(err)
	}
	c.Fill("r0/0.m4s", make([]byte, 1024), "t", "1024", time.Unix(1, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Get("r0/0.m4s") == nil {
			b.Fatal("lost entry")
		}
	}
}
