// Package multisim co-simulates several DASH clients sharing one
// bottleneck link — the setting FESTIVE (the paper's reference [2]) was
// designed for: when players adapt independently on a shared cell,
// throughput-greedy policies oscillate and starve each other, and the
// interesting metrics are fairness (Jain's index across players) and
// stability (switch counts) rather than a single session's energy.
//
// The engine advances a global clock in fixed steps; at each step the
// bottleneck capacity is split evenly among the clients that are
// actively downloading (processor sharing, the standard TCP-fairness
// idealisation).
package multisim

import (
	"errors"
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/player"
)

// Client is one player in the shared-link simulation.
type Client struct {
	// Name labels the client in results.
	Name string
	// Manifest is the video it streams.
	Manifest *dash.Manifest
	// Algorithm adapts its bitrate.
	Algorithm abr.Algorithm
	// StartOffsetSec delays the client's join (staggered arrivals).
	StartOffsetSec float64
}

// Config describes the shared-link scenario.
type Config struct {
	// Clients are the competing players.
	Clients []Client
	// CapacityMbps is the bottleneck capacity, split evenly among
	// active downloaders.
	CapacityMbps float64
	// BufferThresholdSec paces each client's downloads (default 30 s).
	BufferThresholdSec float64
	// StepSec is the engine step (default 0.1 s).
	StepSec float64
	// MaxSimSec bounds the simulation (default: generous multiple of
	// the longest video).
	MaxSimSec float64
}

// ClientResult summarises one client's session.
type ClientResult struct {
	// Name echoes the client label.
	Name string
	// MeanBitrateMbps is the duration-weighted mean selected bitrate.
	MeanBitrateMbps float64
	// Switches counts rung changes.
	Switches int
	// RebufferSec is total stalling.
	RebufferSec float64
	// DownloadedMB is the payload fetched.
	DownloadedMB float64
	// Rungs logs the per-segment choices.
	Rungs []int
}

// Result is the scenario outcome.
type Result struct {
	// Clients holds per-player results, in Config order.
	Clients []ClientResult
	// JainFairness is Jain's index over the clients' mean bitrates
	// (1 = perfectly fair).
	JainFairness float64
	// DurationSec is the simulated span.
	DurationSec float64
}

// Config validation errors.
var (
	ErrNoClients   = errors.New("multisim: no clients")
	ErrBadCapacity = errors.New("multisim: capacity must be positive")
)

// clientState is the engine's per-client bookkeeping.
type clientState struct {
	cfg    Client
	pl     *player.Player
	seg    int  // next segment to request
	done   bool // all segments fetched
	joined bool

	// in-flight download
	downloading bool
	rung        int
	remainMB    float64
	sizeMB      float64
	startedAt   float64
	segDur      float64

	prevRung int
	result   ClientResult
	brSum    float64
	durSum   float64
}

// Run executes the scenario.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Clients) == 0 {
		return nil, ErrNoClients
	}
	if cfg.CapacityMbps <= 0 {
		return nil, ErrBadCapacity
	}
	threshold := cfg.BufferThresholdSec
	if threshold <= 0 {
		threshold = player.DefaultBufferThresholdSec
	}
	step := cfg.StepSec
	if step <= 0 {
		step = 0.1
	}
	var longest float64
	states := make([]*clientState, 0, len(cfg.Clients))
	for i, c := range cfg.Clients {
		if c.Manifest == nil || c.Algorithm == nil {
			return nil, fmt.Errorf("multisim: client %d missing manifest or algorithm", i)
		}
		pl, err := player.New(threshold)
		if err != nil {
			return nil, err
		}
		c.Algorithm.Reset()
		if d := c.Manifest.Video().DurationSec + c.StartOffsetSec; d > longest {
			longest = d
		}
		states = append(states, &clientState{
			cfg:      c,
			pl:       pl,
			prevRung: -1,
			result:   ClientResult{Name: c.Name},
		})
	}
	maxSim := cfg.MaxSimSec
	if maxSim <= 0 {
		maxSim = longest*4 + 120
	}

	now := 0.0
	for now < maxSim {
		allDone := true
		// Count active downloaders for the processor-sharing split.
		active := 0
		for _, st := range states {
			if st.downloading {
				active++
			}
		}
		shareMBps := cfg.CapacityMbps / 8
		if active > 0 {
			shareMBps = cfg.CapacityMbps / 8 / float64(active)
		}

		for _, st := range states {
			if !st.joined {
				if now >= st.cfg.StartOffsetSec {
					st.joined = true
				} else {
					allDone = false
					continue
				}
			}
			if st.done && st.pl.BufferSec() <= 1e-9 {
				continue // session fully played out
			}
			// Playback drains in real time; time past the video's end
			// is not a stall.
			_, stall := st.pl.Drain(step)
			if !st.done {
				st.result.RebufferSec += stall
			}
			if st.done {
				allDone = false
				continue
			}
			allDone = false

			if st.downloading {
				st.remainMB -= shareMBps * step
				if st.remainMB <= 0 {
					st.downloading = false
					st.pl.OnSegment(st.segDur, mustBitrate(st.cfg.Manifest, st.rung))
					elapsed := now + step - st.startedAt
					if elapsed <= 0 {
						elapsed = step
					}
					st.cfg.Algorithm.ObserveDownload(st.sizeMB * 8 / elapsed)
					st.result.DownloadedMB += st.sizeMB
					st.result.Rungs = append(st.result.Rungs, st.rung)
					st.brSum += mustBitrate(st.cfg.Manifest, st.rung) * st.segDur
					st.durSum += st.segDur
					if st.prevRung >= 0 && st.rung != st.prevRung {
						st.result.Switches++
					}
					st.prevRung = st.rung
					st.seg++
					if st.seg >= st.cfg.Manifest.SegmentCount() {
						st.done = true
					}
				}
				continue
			}

			// Start the next download when pacing allows.
			if !st.pl.ShouldDownload() {
				continue
			}
			if err := startDownload(st, threshold, now); err != nil {
				return nil, err
			}
		}
		if allDone {
			break
		}
		now += step
	}

	res := &Result{DurationSec: now}
	bitrates := make([]float64, 0, len(states))
	for _, st := range states {
		if st.durSum > 0 {
			st.result.MeanBitrateMbps = st.brSum / st.durSum
		}
		bitrates = append(bitrates, st.result.MeanBitrateMbps)
		res.Clients = append(res.Clients, st.result)
	}
	res.JainFairness = jain(bitrates)
	return res, nil
}

// startDownload asks the client's algorithm for a rung and opens the
// transfer.
func startDownload(st *clientState, threshold, now float64) error {
	man := st.cfg.Manifest
	ladder := man.Ladder()
	sizes := make([]float64, len(ladder))
	for j := range ladder {
		s, err := man.SegmentSizeMB(st.seg, j)
		if err != nil {
			return err
		}
		sizes[j] = s
	}
	dur, err := man.SegmentDuration(st.seg)
	if err != nil {
		return err
	}
	rung, err := st.cfg.Algorithm.ChooseRung(abr.Context{
		SegmentIndex:       st.seg,
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: dur,
		PrevRung:           st.prevRung,
		BufferSec:          st.pl.BufferSec(),
		BufferThresholdSec: threshold,
	})
	if err != nil {
		return fmt.Errorf("multisim: client %s segment %d: %w", st.cfg.Name, st.seg, err)
	}
	if rung < 0 || rung >= len(ladder) {
		return fmt.Errorf("multisim: client %s chose rung %d of %d", st.cfg.Name, rung, len(ladder))
	}
	st.downloading = true
	st.rung = rung
	st.sizeMB = sizes[rung]
	st.remainMB = sizes[rung]
	st.segDur = dur
	st.startedAt = now
	return nil
}

// mustBitrate reads a rung's bitrate (the rung was validated at choose
// time).
func mustBitrate(m *dash.Manifest, rung int) float64 {
	return m.Ladder()[rung].BitrateMbps
}

// jain computes Jain's fairness index over xs.
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
