package multisim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
)

func testManifest(t *testing.T, durationSec float64, seed int64) *dash.Manifest {
	t.Helper()
	video := dash.Video{Title: "multi", SpatialInfo: 45, TemporalInfo: 15, DurationSec: durationSec}
	m, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func festiveClients(t *testing.T, n int, durationSec float64) []Client {
	t.Helper()
	out := make([]Client, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Client{
			Name:      string(rune('A' + i)),
			Manifest:  testManifest(t, durationSec, int64(i)),
			Algorithm: abr.NewFESTIVE(),
		})
	}
	return out
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{CapacityMbps: 10}); !errors.Is(err, ErrNoClients) {
		t.Errorf("err = %v, want ErrNoClients", err)
	}
	if _, err := Run(Config{Clients: festiveClients(t, 1, 20)}); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("err = %v, want ErrBadCapacity", err)
	}
	bad := Config{Clients: []Client{{Name: "x"}}, CapacityMbps: 10}
	if _, err := Run(bad); err == nil {
		t.Error("client without manifest accepted")
	}
}

func TestSingleClientGetsFullCapacity(t *testing.T) {
	res, err := Run(Config{
		Clients:      festiveClients(t, 1, 60),
		CapacityMbps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Clients[0]
	if len(c.Rungs) != 30 {
		t.Fatalf("segments = %d, want 30", len(c.Rungs))
	}
	// Alone on a 20 Mbps link, FESTIVE climbs to the 5.8 rung.
	last := c.Rungs[len(c.Rungs)-1]
	if last != 5 {
		t.Errorf("final rung = %d, want 5 (top)", last)
	}
	if res.JainFairness != 1 {
		t.Errorf("single-client fairness = %v, want 1", res.JainFairness)
	}
	if c.RebufferSec > 0.5 {
		t.Errorf("unexpected stalling: %v s", c.RebufferSec)
	}
}

func TestThreeClientsShareFairly(t *testing.T) {
	// 12 Mbps shared three ways: ~4 Mbps each; FESTIVE should settle
	// around the 3.0 rung for everyone, with high Jain fairness.
	res, err := Run(Config{
		Clients:      festiveClients(t, 3, 120),
		CapacityMbps: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.JainFairness < 0.9 {
		t.Errorf("Jain fairness = %.3f, want >= 0.9", res.JainFairness)
	}
	for _, c := range res.Clients {
		if len(c.Rungs) != 60 {
			t.Fatalf("client %s fetched %d segments, want 60", c.Name, len(c.Rungs))
		}
		if c.MeanBitrateMbps > 4.5 {
			t.Errorf("client %s mean bitrate %.2f exceeds its fair share", c.Name, c.MeanBitrateMbps)
		}
		if c.MeanBitrateMbps < 1.0 {
			t.Errorf("client %s starved at %.2f Mbps", c.Name, c.MeanBitrateMbps)
		}
	}
}

func TestStaggeredJoin(t *testing.T) {
	clients := festiveClients(t, 2, 60)
	clients[1].StartOffsetSec = 20
	res, err := Run(Config{Clients: clients, CapacityMbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clients {
		if len(c.Rungs) != 30 {
			t.Errorf("client %s fetched %d segments, want 30", c.Name, len(c.Rungs))
		}
	}
}

// Capacity conservation: total payload downloaded cannot exceed
// capacity x duration.
func TestCapacityConservation(t *testing.T) {
	res, err := Run(Config{
		Clients:      festiveClients(t, 3, 60),
		CapacityMbps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalMB float64
	for _, c := range res.Clients {
		totalMB += c.DownloadedMB
	}
	budget := 8.0 / 8 * res.DurationSec
	if totalMB > budget*1.01 {
		t.Errorf("downloaded %.1f MB over a %.1f MB capacity budget", totalMB, budget)
	}
}

func TestJainIndex(t *testing.T) {
	if got := jain([]float64{2, 2, 2}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	if got := jain([]float64{1, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("one-hog = %v, want 1/3", got)
	}
	if got := jain(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := jain([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero = %v, want 1 (degenerate equality)", got)
	}
}

// Both the damped (FESTIVE) and greedy (last-sample) policies must
// complete a contended scenario with reasonable fairness; the per-step
// even split keeps either from starving a peer.
func TestPoliciesCompeteWithoutStarvation(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func() abrAlg
	}{
		{name: "festive", make: func() abrAlg { return abr.NewFESTIVE() }},
		{name: "greedy", make: func() abrAlg { return abr.NewRateBased() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{Clients: make3(t, tc.make), CapacityMbps: 12})
			if err != nil {
				t.Fatal(err)
			}
			if res.JainFairness < 0.85 {
				t.Errorf("fairness = %.3f, want >= 0.85", res.JainFairness)
			}
			for _, c := range res.Clients {
				if len(c.Rungs) != 60 {
					t.Errorf("client %s fetched %d segments, want 60", c.Name, len(c.Rungs))
				}
			}
		})
	}
}

type abrAlg = abr.Algorithm

func make3(t *testing.T, make func() abrAlg) []Client {
	t.Helper()
	out := make3manifests(t)
	for i := range out {
		out[i].Algorithm = make()
	}
	return out
}

func make3manifests(t *testing.T) []Client {
	t.Helper()
	out := make([]Client, 3)
	for i := range out {
		out[i] = Client{
			Name:     string(rune('A' + i)),
			Manifest: testManifest(t, 120, int64(i)),
		}
	}
	return out
}

// Identical configurations produce identical results (the engine is
// fully deterministic).
func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{Clients: festiveClients(t, 2, 60), CapacityMbps: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.JainFairness != b.JainFairness || a.DurationSec != b.DurationSec {
		t.Error("identical configs diverged")
	}
	for i := range a.Clients {
		if a.Clients[i].MeanBitrateMbps != b.Clients[i].MeanBitrateMbps ||
			a.Clients[i].Switches != b.Clients[i].Switches {
			t.Errorf("client %d diverged", i)
		}
	}
}

// staggered3 is the golden scenario: three FESTIVE clients joining a
// 9 Mbps bottleneck 15 s apart.
func staggered3(t *testing.T) Config {
	t.Helper()
	clients := make3manifests(t)
	for i := range clients {
		clients[i].Algorithm = abr.NewFESTIVE()
		clients[i].StartOffsetSec = float64(i) * 15
	}
	return Config{Clients: clients, CapacityMbps: 9}
}

// Golden pin of the staggered-arrival scenario: earlier arrivals lock
// in higher rungs while the link is uncontended, so the mean bitrates
// order A > B > C and Jain's index sits measurably below 1. The exact
// numbers are engine behaviour frozen at a known-good state — a diff
// here means the shared-link engine's dynamics changed, which must be
// deliberate.
func TestGoldenStaggeredFairness(t *testing.T) {
	res, err := Run(staggered3(t))
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-9
	if math.Abs(res.JainFairness-0.936899312230773) > tol {
		t.Errorf("Jain = %.15g, want 0.936899312230773", res.JainFairness)
	}
	want := []struct {
		mean     float64
		switches int
	}{
		{3.21541666666667, 6},
		{2.62041666666667, 4},
		{1.64541666666667, 4},
	}
	for i, c := range res.Clients {
		if math.Abs(c.MeanBitrateMbps-want[i].mean) > tol {
			t.Errorf("client %s mean bitrate = %.15g, want %.15g", c.Name, c.MeanBitrateMbps, want[i].mean)
		}
		if c.Switches != want[i].switches {
			t.Errorf("client %s switches = %d, want %d", c.Name, c.Switches, want[i].switches)
		}
		if len(c.Rungs) != 60 {
			t.Errorf("client %s fetched %d segments, want 60", c.Name, len(c.Rungs))
		}
		if c.RebufferSec != 0 {
			t.Errorf("client %s rebuffered %.3f s in an uncongested golden run", c.Name, c.RebufferSec)
		}
	}
}

// Full-result determinism on the contended staggered scenario: every
// field, including the per-segment rung logs, must match across runs.
func TestStaggeredDeterministic(t *testing.T) {
	a, err := Run(staggered3(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(staggered3(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical staggered configs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// The engine terminates even when capacity is absurdly scarce (the
// MaxSimSec bound kicks in rather than hanging).
func TestRunTerminatesUnderStarvation(t *testing.T) {
	res, err := Run(Config{
		Clients:      festiveClients(t, 3, 30),
		CapacityMbps: 0.05,
		MaxSimSec:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationSec > 200+1 {
		t.Errorf("engine ran %v s past its bound", res.DurationSec)
	}
}
