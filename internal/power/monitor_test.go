package power

import (
	"errors"
	"math"
	"testing"
)

func TestMonitorIntegratesConstantPower(t *testing.T) {
	mo := NewMonitor(MonitorConfig{Seed: 1})
	if err := mo.Observe(2.0, 10); err != nil {
		t.Fatal(err)
	}
	// 2 W * 10 s = 20 J, within noise+drift (a few percent).
	if relErr(mo.EnergyJ(), 20) > 0.05 {
		t.Errorf("EnergyJ = %v, want ≈ 20", mo.EnergyJ())
	}
	if !almostEqual(mo.ElapsedSec(), 10, 1e-9) {
		t.Errorf("ElapsedSec = %v, want 10", mo.ElapsedSec())
	}
}

func TestMonitorZeroAndNegative(t *testing.T) {
	mo := NewMonitor(MonitorConfig{Seed: 2})
	if err := mo.Observe(2.0, 0); err != nil {
		t.Fatal(err)
	}
	if mo.EnergyJ() != 0 {
		t.Errorf("zero-duration energy = %v, want 0", mo.EnergyJ())
	}
	if err := mo.Observe(2.0, -1); !errors.Is(err, ErrNegativeInterval) {
		t.Errorf("err = %v, want ErrNegativeInterval", err)
	}
	// Zero power advances time without energy.
	if err := mo.Observe(0, 5); err != nil {
		t.Fatal(err)
	}
	if mo.EnergyJ() != 0 || mo.ElapsedSec() != 5 {
		t.Errorf("after zero-power observe: E=%v t=%v, want 0, 5", mo.EnergyJ(), mo.ElapsedSec())
	}
}

func TestMonitorReset(t *testing.T) {
	mo := NewMonitor(MonitorConfig{Seed: 3})
	if err := mo.Observe(1, 1); err != nil {
		t.Fatal(err)
	}
	mo.Reset()
	if mo.EnergyJ() != 0 || mo.ElapsedSec() != 0 {
		t.Error("Reset did not clear accumulators")
	}
}

func TestMonitorDeterministicBySeed(t *testing.T) {
	a := NewMonitor(MonitorConfig{Seed: 42})
	b := NewMonitor(MonitorConfig{Seed: 42})
	if err := a.Observe(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(2, 3); err != nil {
		t.Fatal(err)
	}
	if a.EnergyJ() != b.EnergyJ() {
		t.Errorf("monitors with equal seeds diverged: %v vs %v", a.EnergyJ(), b.EnergyJ())
	}
}

// Table VI: the virtual monitor's "measured" energy stays within 3% of
// the analytic model for every ladder bitrate (paper reports < 3%,
// average 1.43%).
func TestTable6ValidationErrorUnder3Percent(t *testing.T) {
	m := Default()
	const sessionSec = 300
	var sumErr float64
	rates := []float64{5.8, 3.0, 1.5, 0.75, 0.375, 0.1}
	for i, r := range rates {
		mo := NewMonitor(MonitorConfig{Seed: int64(100 + i)})
		measured, err := mo.MeasureSession(m, r, sessionSec, -90, 2)
		if err != nil {
			t.Fatal(err)
		}
		calculated := m.SessionEnergyJ(r, sessionSec, -90)
		e := relErr(measured, calculated)
		if e > 0.03 {
			t.Errorf("bitrate %.3f: measured %.1f vs calculated %.1f, error %.2f%% > 3%%",
				r, measured, calculated, e*100)
		}
		sumErr += e
	}
	if avg := sumErr / float64(len(rates)); avg > 0.02 {
		t.Errorf("average validation error %.2f%%, want <= 2%%", avg*100)
	}
}

func TestMeasureSessionErrors(t *testing.T) {
	mo := NewMonitor(MonitorConfig{Seed: 5})
	if _, err := mo.MeasureSession(Default(), 0, 300, -90, 2); err == nil {
		t.Error("expected error for zero bitrate")
	}
	if _, err := mo.MeasureSession(Default(), 1.5, 0, -90, 2); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestMeasureSessionDefaultSegment(t *testing.T) {
	mo := NewMonitor(MonitorConfig{Seed: 6})
	// segmentSec <= 0 falls back to 2 s without error.
	got, err := mo.MeasureSession(Default(), 1.5, 10, -90, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || math.IsNaN(got) {
		t.Errorf("measured energy = %v, want positive", got)
	}
}

// A partial trailing segment must not inflate energy: a 9 s session at
// 2 s segments ends with a 1 s segment whose burst is scaled down.
func TestMeasureSessionPartialTrailingSegment(t *testing.T) {
	m := Default()
	mo := NewMonitor(MonitorConfig{Seed: 7, NoiseStd: 1e-9, DriftAmp: 1e-9, BiasStd: 1e-12})
	got, err := mo.MeasureSession(m, 3.0, 9, -90, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := m.SessionEnergyJ(3.0, 9, -90)
	if relErr(got, want) > 0.01 {
		t.Errorf("9 s session: measured %.2f vs analytic %.2f", got, want)
	}
	if !almostEqual(mo.ElapsedSec(), 9, 1e-6) {
		t.Errorf("elapsed = %v, want 9", mo.ElapsedSec())
	}
}

// TestNormRNGMoments sanity-checks the inlined ziggurat generator: the
// first four moments and the central-interval mass of a large sample
// must match the standard normal.
func TestNormRNGMoments(t *testing.T) {
	rng := normRNG{state: 12345}
	const n = 500_000
	var sum, sumSq, sumCube, sumQuad float64
	within1 := 0
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		sum += x
		sumSq += x * x
		sumCube += x * x * x
		sumQuad += x * x * x * x
		if x > -1 && x < 1 {
			within1++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCube / n
	kurt := sumQuad / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("skewness = %v, want ~0", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("kurtosis = %v, want ~3", kurt)
	}
	if p := float64(within1) / n; math.Abs(p-0.6827) > 0.01 {
		t.Errorf("P(|x|<1) = %v, want ~0.683", p)
	}
}
