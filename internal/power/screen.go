package power

import "errors"

// Screen models display power as a function of backlight brightness —
// the other big battery consumer next to the radio, and the knob the
// rate-and-brightness line of work (the paper's references [11, 12,
// 32]) adapts jointly with bitrate.
type Screen struct {
	// MinPowerW is the panel power at brightness 0 (panel floor).
	MinPowerW float64
	// MaxPowerW is the panel power at brightness 1 (full backlight).
	MaxPowerW float64
}

// DefaultScreen returns an LCD-phone calibration (~0.3 W floor,
// ~1.4 W at full brightness).
func DefaultScreen() Screen {
	return Screen{MinPowerW: 0.3, MaxPowerW: 1.4}
}

// Validate reports whether the screen model is usable.
func (s Screen) Validate() error {
	if s.MinPowerW < 0 || s.MaxPowerW <= s.MinPowerW {
		return errors.New("power: screen powers must satisfy 0 <= min < max")
	}
	return nil
}

// PowerW returns the display power at the given backlight brightness
// in [0, 1] (clamped).
func (s Screen) PowerW(brightness float64) float64 {
	if brightness < 0 {
		brightness = 0
	}
	if brightness > 1 {
		brightness = 1
	}
	return s.MinPowerW + (s.MaxPowerW-s.MinPowerW)*brightness
}
