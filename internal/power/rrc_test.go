package power

import (
	"testing"
)

func TestDefaultRRCValidates(t *testing.T) {
	if err := DefaultRRC().Validate(); err != nil {
		t.Fatalf("DefaultRRC invalid: %v", err)
	}
}

func TestRRCConfigValidation(t *testing.T) {
	bad := DefaultRRC()
	bad.TailTimerSec = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative timer accepted")
	}
	bad = DefaultRRC()
	bad.TailPowerW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := NewRRCTracker(bad); err == nil {
		t.Error("NewRRCTracker accepted invalid config")
	}
}

func TestRRCStateString(t *testing.T) {
	tests := []struct {
		s    RRCState
		want string
	}{
		{s: RRCIdle, want: "idle"},
		{s: RRCConnected, want: "connected"},
		{s: RRCTail, want: "tail"},
		{s: RRCState(9), want: "RRCState(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestRRCPromotionFromIdle(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	if tr.State() != RRCIdle {
		t.Fatalf("initial state = %v, want idle", tr.State())
	}
	latency := tr.StartTransfer()
	if latency != 0.26 {
		t.Errorf("promotion latency = %v, want 0.26", latency)
	}
	if tr.State() != RRCConnected {
		t.Errorf("state = %v, want connected", tr.State())
	}
	wantJ := 1.2 * 0.26
	if !almostEqual(tr.PromotionJ(), wantJ, 1e-12) {
		t.Errorf("PromotionJ = %v, want %v", tr.PromotionJ(), wantJ)
	}
}

func TestRRCNoPromotionFromTail(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.StartTransfer()
	tr.EndTransfer()
	if tr.State() != RRCTail {
		t.Fatalf("state = %v, want tail", tr.State())
	}
	if latency := tr.StartTransfer(); latency != 0 {
		t.Errorf("latency from tail = %v, want 0 (timer reset, no promotion)", latency)
	}
	if got := tr.PromotionJ(); !almostEqual(got, 1.2*0.26, 1e-12) {
		t.Errorf("PromotionJ = %v, want single promotion only", got)
	}
}

func TestRRCTailThenIdleEnergy(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.StartTransfer()
	tr.EndTransfer()
	// 20 s of inactivity: 11.5 s tail at 1.0 W + 8.5 s idle at 0.02 W.
	tr.AdvanceIdle(20)
	if tr.State() != RRCIdle {
		t.Errorf("state = %v, want idle after timer expiry", tr.State())
	}
	if !almostEqual(tr.TailJ(), 11.5, 1e-9) {
		t.Errorf("TailJ = %v, want 11.5", tr.TailJ())
	}
	if !almostEqual(tr.IdleJ(), 8.5*0.02, 1e-9) {
		t.Errorf("IdleJ = %v, want %v", tr.IdleJ(), 8.5*0.02)
	}
	want := tr.PromotionJ() + tr.TailJ() + tr.IdleJ()
	if !almostEqual(tr.TotalJ(), want, 1e-12) {
		t.Errorf("TotalJ inconsistent")
	}
}

func TestRRCTailSplitAcrossAdvances(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.StartTransfer()
	tr.EndTransfer()
	for i := 0; i < 40; i++ { // 40 x 0.5 s = 20 s
		tr.AdvanceIdle(0.5)
	}
	if !almostEqual(tr.TailJ(), 11.5, 1e-9) {
		t.Errorf("TailJ = %v, want 11.5 (split advances)", tr.TailJ())
	}
}

func TestRRCTransferResetsTail(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.StartTransfer()
	tr.EndTransfer()
	tr.AdvanceIdle(5) // 5 s into the tail
	tr.StartTransfer()
	tr.EndTransfer()
	tr.AdvanceIdle(11.5) // full fresh tail
	wantTail := 5.0 + 11.5
	if !almostEqual(tr.TailJ(), wantTail, 1e-9) {
		t.Errorf("TailJ = %v, want %v (timer re-armed)", tr.TailJ(), wantTail)
	}
}

func TestRRCAdvanceIdleNonPositive(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.AdvanceIdle(0)
	tr.AdvanceIdle(-3)
	if tr.TotalJ() != 0 {
		t.Errorf("TotalJ = %v, want 0", tr.TotalJ())
	}
}

func TestRRCIdleOnlyEnergy(t *testing.T) {
	tr, err := NewRRCTracker(DefaultRRC())
	if err != nil {
		t.Fatal(err)
	}
	tr.AdvanceIdle(100) // never connected: pure idle paging
	if !almostEqual(tr.IdleJ(), 2.0, 1e-9) {
		t.Errorf("IdleJ = %v, want 2.0", tr.IdleJ())
	}
	if tr.TailJ() != 0 || tr.PromotionJ() != 0 {
		t.Error("unexpected tail/promotion energy without transfers")
	}
}
