package power

import (
	"errors"
	"fmt"
)

// RRCState is the LTE radio resource control state the modem occupies.
// After a transfer the radio does not drop to idle immediately: it
// lingers in a high-power tail (DRX) for a timer period — the "tail
// energy" problem of Huang et al. (MobiSys 2012), which the paper's
// related work ([7, 29, 30]) targets. Modelling it lets the simulator
// credit burst-downloading policies for the idle stretches they create.
type RRCState int

// RRC states.
const (
	// RRCIdle draws near-zero power.
	RRCIdle RRCState = iota + 1
	// RRCConnected is actively transferring.
	RRCConnected
	// RRCTail is connected but not transferring, waiting for the
	// inactivity timer to demote to idle.
	RRCTail
)

// String names the state for logs.
func (s RRCState) String() string {
	switch s {
	case RRCIdle:
		return "idle"
	case RRCConnected:
		return "connected"
	case RRCTail:
		return "tail"
	default:
		return fmt.Sprintf("RRCState(%d)", int(s))
	}
}

// RRCConfig parameterises the state machine. Defaults follow the LTE
// measurements of Huang et al.: ~260 ms promotion, ~11.5 s tail.
type RRCConfig struct {
	// PromotionDelaySec is the idle -> connected setup latency.
	PromotionDelaySec float64
	// PromotionPowerW is the power drawn during promotion.
	PromotionPowerW float64
	// TailTimerSec is the inactivity timer before demotion to idle.
	TailTimerSec float64
	// TailPowerW is the power drawn while in the tail state.
	TailPowerW float64
	// IdlePowerW is the paging-cycle power while idle.
	IdlePowerW float64
}

// DefaultRRC returns the LTE calibration.
func DefaultRRC() RRCConfig {
	return RRCConfig{
		PromotionDelaySec: 0.26,
		PromotionPowerW:   1.2,
		TailTimerSec:      11.5,
		TailPowerW:        1.0,
		IdlePowerW:        0.02,
	}
}

// Validate reports whether the configuration is usable.
func (c RRCConfig) Validate() error {
	if c.PromotionDelaySec < 0 || c.TailTimerSec < 0 {
		return errors.New("power: RRC timers must be non-negative")
	}
	if c.PromotionPowerW < 0 || c.TailPowerW < 0 || c.IdlePowerW < 0 {
		return errors.New("power: RRC powers must be non-negative")
	}
	return nil
}

// RRCTracker walks the state machine along the session timeline,
// reporting the radio-control energy that transfers themselves do not
// account for (promotion, tail, idle paging).
//
// Construct with NewRRCTracker; the zero value is unusable.
type RRCTracker struct {
	cfg       RRCConfig
	state     RRCState
	tailLeft  float64
	promotedJ float64
	tailJ     float64
	idleJ     float64
}

// NewRRCTracker returns a tracker starting in idle.
func NewRRCTracker(cfg RRCConfig) (*RRCTracker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RRCTracker{cfg: cfg, state: RRCIdle}, nil
}

// State reports the current RRC state.
func (t *RRCTracker) State() RRCState { return t.state }

// StartTransfer moves the radio to connected, paying the promotion
// cost when coming from idle. It returns the promotion latency the
// transfer must additionally wait (0 when already connected or in the
// tail) and accumulates the promotion energy.
func (t *RRCTracker) StartTransfer() (latencySec float64) {
	switch t.state {
	case RRCIdle:
		t.promotedJ += t.cfg.PromotionPowerW * t.cfg.PromotionDelaySec
		t.state = RRCConnected
		return t.cfg.PromotionDelaySec
	default:
		t.state = RRCConnected
		return 0
	}
}

// EndTransfer moves the radio into the tail state and arms the
// inactivity timer.
func (t *RRCTracker) EndTransfer() {
	if t.state == RRCConnected {
		t.state = RRCTail
		t.tailLeft = t.cfg.TailTimerSec
	}
}

// AdvanceIdle accounts dt seconds without transfer activity: tail
// power until the timer expires, idle power after.
func (t *RRCTracker) AdvanceIdle(dt float64) {
	if dt <= 0 {
		return
	}
	if t.state == RRCTail {
		inTail := dt
		if inTail > t.tailLeft {
			inTail = t.tailLeft
		}
		t.tailJ += t.cfg.TailPowerW * inTail
		t.tailLeft -= inTail
		dt -= inTail
		if t.tailLeft <= 0 {
			t.state = RRCIdle
		}
	}
	if dt > 0 && t.state == RRCIdle {
		t.idleJ += t.cfg.IdlePowerW * dt
	}
}

// PromotionJ returns the accumulated promotion energy.
func (t *RRCTracker) PromotionJ() float64 { return t.promotedJ }

// TailJ returns the accumulated tail energy.
func (t *RRCTracker) TailJ() float64 { return t.tailJ }

// IdleJ returns the accumulated idle paging energy.
func (t *RRCTracker) IdleJ() float64 { return t.idleJ }

// TotalJ returns all radio-control energy (excluding transfer energy,
// which the caller integrates from RadioPowerW).
func (t *RRCTracker) TotalJ() float64 { return t.promotedJ + t.tailJ + t.idleJ }
