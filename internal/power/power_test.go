package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// relErr returns |a-b| / |b|.
func relErr(a, b float64) float64 { return math.Abs(a-b) / math.Abs(b) }

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Model)
	}{
		{name: "zero base", mut: func(m *Model) { m.BasePowerW = 0 }},
		{name: "negative decode", mut: func(m *Model) { m.DecodeWPerMbps = -1 }},
		{name: "zero radio", mut: func(m *Model) { m.RadioPowerAtRefW = 0 }},
		{name: "zero energy/MB", mut: func(m *Model) { m.EnergyPerMBAtRefJ = 0 }},
		{name: "inverted signal range", mut: func(m *Model) { m.MinSignalDBm = -80 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Default()
			tt.mut(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted an invalid model")
			}
		})
	}
}

// Fig. 1(a) endpoints: 100 MB costs ~49 J at -90 dBm and ~193 J at
// -115 dBm.
func TestFig1aEndpoints(t *testing.T) {
	m := Default()
	at90 := m.DownloadEnergyJ(100, -90)
	at115 := m.DownloadEnergyJ(100, -115)
	if !almostEqual(at90, 49, 0.5) {
		t.Errorf("E(100MB, -90dBm) = %.1f J, want ≈ 49 J", at90)
	}
	if !almostEqual(at115, 193, 2) {
		t.Errorf("E(100MB, -115dBm) = %.1f J, want ≈ 193 J", at115)
	}
}

func TestEnergyPerMBMonotoneInWeakness(t *testing.T) {
	m := Default()
	prev := m.EnergyPerMBJ(-90)
	for s := -91.0; s >= -120; s-- {
		e := m.EnergyPerMBJ(s)
		if e <= prev {
			t.Fatalf("energy/MB not increasing at %v dBm", s)
		}
		prev = e
	}
}

func TestSignalClamping(t *testing.T) {
	m := Default()
	if got, want := m.EnergyPerMBJ(-70), m.EnergyPerMBJ(-90); got != want {
		t.Errorf("strong signal not clamped: %v != %v", got, want)
	}
	if got, want := m.EnergyPerMBJ(-140), m.EnergyPerMBJ(-120); got != want {
		t.Errorf("weak signal not clamped: %v != %v", got, want)
	}
	if got, want := m.RadioPowerW(-60), m.RadioPowerW(-90); got != want {
		t.Errorf("radio power not clamped: %v != %v", got, want)
	}
}

func TestPlaybackPower(t *testing.T) {
	m := Default()
	if got := m.PlaybackPowerW(0); got != m.BasePowerW {
		t.Errorf("playback at 0 Mbps = %v, want base %v", got, m.BasePowerW)
	}
	if got := m.PlaybackPowerW(-1); got != m.BasePowerW {
		t.Errorf("negative bitrate = %v, want base", got)
	}
	hi := m.PlaybackPowerW(5.8)
	lo := m.PlaybackPowerW(0.1)
	if hi <= lo {
		t.Errorf("playback power should increase with bitrate: %v <= %v", hi, lo)
	}
}

func TestRadioPowerIncreasesAsSignalWeakens(t *testing.T) {
	m := Default()
	if m.RadioPowerW(-115) <= m.RadioPowerW(-90) {
		t.Error("radio power should increase at weak signal")
	}
}

func TestNominalThroughputDecreasesAsSignalWeakens(t *testing.T) {
	m := Default()
	prev := m.NominalThroughputMBps(-90)
	for s := -92.0; s >= -118; s -= 2 {
		th := m.NominalThroughputMBps(s)
		if th >= prev {
			t.Fatalf("throughput not decreasing at %v dBm", s)
		}
		prev = th
	}
	// Sanity: strong-signal LTE throughput is in a plausible range.
	mbps := m.NominalThroughputMbps(-90)
	if mbps < 10 || mbps > 100 {
		t.Errorf("nominal throughput at -90 dBm = %.1f Mbps, want 10-100", mbps)
	}
}

func TestDownloadEnergyZeroAndNegative(t *testing.T) {
	m := Default()
	if got := m.DownloadEnergyJ(0, -90); got != 0 {
		t.Errorf("0 MB = %v, want 0", got)
	}
	if got := m.DownloadEnergyJ(-5, -90); got != 0 {
		t.Errorf("-5 MB = %v, want 0", got)
	}
}

// Download energy is additive in payload size.
func TestDownloadEnergyAdditive(t *testing.T) {
	m := Default()
	f := func(aRaw, bRaw uint16, sRaw uint8) bool {
		a := float64(aRaw%1000) / 10
		b := float64(bRaw%1000) / 10
		s := -90 - float64(sRaw%30)
		sum := m.DownloadEnergyJ(a, s) + m.DownloadEnergyJ(b, s)
		return almostEqual(sum, m.DownloadEnergyJ(a+b, s), 1e-9*math.Max(1, sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentEnergyNoRebuffer(t *testing.T) {
	m := Default()
	task := SegmentTask{
		BitrateMbps: 3.0,
		DurationSec: 2,
		SignalDBm:   -90,
		BufferSec:   30,
	}
	b := m.SegmentEnergy(task)
	if b.RebufferSec != 0 || b.RebufferJ != 0 {
		t.Errorf("unexpected rebuffering: %+v", b)
	}
	wantPlay := m.PlaybackPowerW(3.0) * 2
	if !almostEqual(b.PlaybackJ, wantPlay, 1e-9) {
		t.Errorf("PlaybackJ = %v, want %v", b.PlaybackJ, wantPlay)
	}
	// At nominal throughput, download energy equals size * energy/MB.
	wantDl := m.DownloadEnergyJ(3.0/8*2, -90)
	if !almostEqual(b.DownloadJ, wantDl, 1e-9) {
		t.Errorf("DownloadJ = %v, want %v", b.DownloadJ, wantDl)
	}
	if !almostEqual(b.TotalJ(), b.PlaybackJ+b.DownloadJ, 1e-12) {
		t.Errorf("TotalJ inconsistent: %v", b)
	}
}

func TestSegmentEnergyRebufferBranch(t *testing.T) {
	m := Default()
	// Tiny throughput forces a long download against a small buffer.
	task := SegmentTask{
		BitrateMbps:    5.8,
		DurationSec:    2,
		SignalDBm:      -115,
		ThroughputMBps: 0.1,
		BufferSec:      4,
	}
	b := m.SegmentEnergy(task)
	size := 5.8 / 8 * 2
	wantStall := size/0.1 - 4
	if !almostEqual(b.RebufferSec, wantStall, 1e-9) {
		t.Errorf("RebufferSec = %v, want %v", b.RebufferSec, wantStall)
	}
	if !almostEqual(b.RebufferJ, m.RebufferPowerW*wantStall, 1e-9) {
		t.Errorf("RebufferJ = %v, want %v", b.RebufferJ, m.RebufferPowerW*wantStall)
	}
}

func TestSegmentEnergyExplicitSize(t *testing.T) {
	m := Default()
	b := m.SegmentEnergy(SegmentTask{
		BitrateMbps: 1.5, DurationSec: 2, SizeMB: 1.0, SignalDBm: -100, BufferSec: 30,
	})
	// Explicit size should override the bitrate-derived size.
	th := m.NominalThroughputMBps(-100)
	wantDl := m.RadioPowerW(-100) * (1.0 / th)
	if !almostEqual(b.DownloadJ, wantDl, 1e-9) {
		t.Errorf("DownloadJ = %v, want %v", b.DownloadJ, wantDl)
	}
}

func TestSegmentEnergyDegenerate(t *testing.T) {
	m := Default()
	if b := m.SegmentEnergy(SegmentTask{}); b.TotalJ() != 0 {
		t.Errorf("zero task = %+v, want zero energy", b)
	}
	if b := m.SegmentEnergy(SegmentTask{BitrateMbps: -1, DurationSec: 2}); b.TotalJ() != 0 {
		t.Errorf("negative bitrate = %+v, want zero energy", b)
	}
}

// Higher bitrate at equal context never costs less energy.
func TestSegmentEnergyMonotoneInBitrate(t *testing.T) {
	m := Default()
	f := func(rIdx, sRaw uint8) bool {
		rates := []float64{0.1, 0.375, 0.75, 1.5, 3.0, 5.8}
		r := rates[int(rIdx)%len(rates)]
		s := -90 - float64(sRaw%30)
		lo := m.SegmentEnergy(SegmentTask{BitrateMbps: r, DurationSec: 2, SignalDBm: s, BufferSec: 30})
		hi := m.SegmentEnergy(SegmentTask{BitrateMbps: r * 1.5, DurationSec: 2, SignalDBm: s, BufferSec: 30})
		return hi.TotalJ() >= lo.TotalJ()-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Table VI "calculated" column: the analytic session energies for the
// 300 s validation video at -90 dBm.
func TestTable6CalculatedEnergies(t *testing.T) {
	m := Default()
	const sessionSec = 300
	tests := []struct {
		bitrate float64
		paperJ  float64 // paper's "calculated energy" column
	}{
		{bitrate: 5.8, paperJ: 713.59},
		{bitrate: 3.0, paperJ: 658.62},
		{bitrate: 1.5, paperJ: 622.55},
		{bitrate: 0.75, paperJ: 609.79},
		{bitrate: 0.375, paperJ: 597.75},
		{bitrate: 0.1, paperJ: 589.38},
	}
	for _, tt := range tests {
		got := m.SessionEnergyJ(tt.bitrate, sessionSec, -90)
		if relErr(got, tt.paperJ) > 0.015 {
			t.Errorf("session energy at %.3f Mbps = %.1f J, want within 1.5%% of %.1f J",
				tt.bitrate, got, tt.paperJ)
		}
	}
}

func TestSessionEnergyDegenerate(t *testing.T) {
	m := Default()
	if got := m.SessionEnergyJ(0, 300, -90); got != 0 {
		t.Errorf("zero bitrate = %v, want 0", got)
	}
	if got := m.SessionEnergyJ(1.5, 0, -90); got != 0 {
		t.Errorf("zero duration = %v, want 0", got)
	}
}

func TestModelString(t *testing.T) {
	if Default().String() == "" {
		t.Error("String returned empty")
	}
}
