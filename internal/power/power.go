// Package power implements the paper's smartphone power model
// (Section III-C): playback-only power as a function of video bitrate,
// radio power and energy-per-byte as functions of cellular signal
// strength, and the per-task energy composition of Eqs. 6-10 including
// the rebuffering branch. It also provides a "virtual Monsoon monitor"
// (see monitor.go) that integrates noisy instantaneous power for the
// Table VI model-validation experiment.
//
// Calibration (documented in DESIGN.md):
//   - Fig. 1(a): downloading 100 MB costs 49 J at -90 dBm and 193 J at
//     -115 dBm; energy-per-MB grows exponentially as signal weakens.
//   - Table VI: a 300 s video at -90 dBm consumes ~589-714 J across the
//     Table II bitrate ladder; playback power is affine in bitrate.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the calibrated power-model coefficients.
type Model struct {
	// BasePowerW is the playback power at (extrapolated) zero bitrate:
	// screen, SoC, and OS baseline while a video plays.
	BasePowerW float64
	// DecodeWPerMbps is the additional playback power per Mbps of video
	// bitrate (decode + memory traffic).
	DecodeWPerMbps float64
	// RadioPowerAtRefW is the wireless-interface power while downloading
	// at the reference signal strength (RefSignalDBm).
	RadioPowerAtRefW float64
	// RadioPowerSlopeWPerDB is the extra radio power per dB below the
	// reference signal strength.
	RadioPowerSlopeWPerDB float64
	// EnergyPerMBAtRefJ is the energy to download one megabyte at the
	// reference signal strength.
	EnergyPerMBAtRefJ float64
	// EnergyPerMBExpPerDB is the exponential growth rate of
	// energy-per-MB per dB below the reference signal strength.
	EnergyPerMBExpPerDB float64
	// RefSignalDBm is the reference (strong) signal strength; stronger
	// signals are clamped to it.
	RefSignalDBm float64
	// MinSignalDBm is the weakest modelled signal; weaker readings are
	// clamped to it.
	MinSignalDBm float64
	// RebufferPowerW is the power while stalled (screen on, spinner, no
	// decode); radio power during a stall is accounted separately by the
	// download term.
	RebufferPowerW float64
}

// Default returns the model calibrated against Fig. 1(a) and Table VI.
func Default() Model {
	return Model{
		BasePowerW:            1.9578,
		DecodeWPerMbps:        0.01137,
		RadioPowerAtRefW:      2.4,
		RadioPowerSlopeWPerDB: 0.048,
		EnergyPerMBAtRefJ:     0.49,
		EnergyPerMBExpPerDB:   0.054834, // ln(193/49)/25
		RefSignalDBm:          -90,
		MinSignalDBm:          -120,
		RebufferPowerW:        1.9578,
	}
}

// EvalModel returns the power model used for the trace-driven
// evaluation (Figs. 5-7). It shares Default's radio calibration but has
// a smaller playback base power: Fig. 5(c) shows ≈ 200 J of base energy
// for the 198 s trace 1, i.e. ≈ 1 W — a dimmer/smaller screen than the
// full-brightness Table VI validation setup (the paper itself notes the
// saving grows as the screen share shrinks).
func EvalModel() Model {
	m := Default()
	m.BasePowerW = 0.95
	m.RebufferPowerW = 0.95
	return m
}

// Validate reports whether the model's coefficients are usable.
func (m Model) Validate() error {
	switch {
	case m.BasePowerW <= 0:
		return errors.New("power: base power must be positive")
	case m.DecodeWPerMbps < 0:
		return errors.New("power: decode power must be non-negative")
	case m.RadioPowerAtRefW <= 0:
		return errors.New("power: radio power must be positive")
	case m.EnergyPerMBAtRefJ <= 0:
		return errors.New("power: energy per MB must be positive")
	case m.RefSignalDBm <= m.MinSignalDBm:
		return errors.New("power: reference signal must exceed minimum signal")
	}
	return nil
}

// clampSignal limits a dBm reading to the modelled range.
func (m Model) clampSignal(dBm float64) float64 {
	if dBm > m.RefSignalDBm {
		return m.RefSignalDBm
	}
	if dBm < m.MinSignalDBm {
		return m.MinSignalDBm
	}
	return dBm
}

// PlaybackPowerW returns the playback-only power (no data transfer) for
// a video encoded at the given bitrate (paper Section III-C, the "no
// data transmission" model).
func (m Model) PlaybackPowerW(bitrateMbps float64) float64 {
	if bitrateMbps < 0 {
		bitrateMbps = 0
	}
	return m.BasePowerW + m.DecodeWPerMbps*bitrateMbps
}

// RadioPowerW returns the wireless-interface power while downloading at
// the given signal strength.
func (m Model) RadioPowerW(signalDBm float64) float64 {
	s := m.clampSignal(signalDBm)
	return m.RadioPowerAtRefW + m.RadioPowerSlopeWPerDB*(m.RefSignalDBm-s)
}

// EnergyPerMBJ returns the energy cost (J) of downloading one megabyte
// at the given signal strength (Fig. 1a).
func (m Model) EnergyPerMBJ(signalDBm float64) float64 {
	s := m.clampSignal(signalDBm)
	return m.EnergyPerMBAtRefJ * math.Exp(m.EnergyPerMBExpPerDB*(m.RefSignalDBm-s))
}

// DownloadEnergyJ returns the energy to download the given payload at
// the given signal strength, assuming the nominal link rate (Fig. 1a's
// bulk-download experiment).
func (m Model) DownloadEnergyJ(megabytes, signalDBm float64) float64 {
	if megabytes <= 0 {
		return 0
	}
	return megabytes * m.EnergyPerMBJ(signalDBm)
}

// NominalThroughputMBps returns the link throughput implied by the
// model (radio power divided by energy-per-MB), in MB/s. The network
// simulator scales this by a fading process; using the implied rate
// keeps the energy-per-MB relationship of Fig. 1(a) exact.
func (m Model) NominalThroughputMBps(signalDBm float64) float64 {
	return m.RadioPowerW(signalDBm) / m.EnergyPerMBJ(signalDBm)
}

// NominalThroughputMbps is NominalThroughputMBps converted to Mbit/s.
func (m Model) NominalThroughputMbps(signalDBm float64) float64 {
	return m.NominalThroughputMBps(signalDBm) * 8
}

// Breakdown decomposes one task's energy (paper Eq. 10).
type Breakdown struct {
	// PlaybackJ is the energy spent decoding and displaying the segment.
	PlaybackJ float64
	// DownloadJ is the radio energy spent fetching the segment.
	DownloadJ float64
	// RebufferJ is the stall-time energy (screen on, no decode),
	// excluding the radio energy already counted in DownloadJ.
	RebufferJ float64
	// RebufferSec is the stall duration attributed to this task.
	RebufferSec float64
}

// TotalJ returns the task's total energy.
func (b Breakdown) TotalJ() float64 { return b.PlaybackJ + b.DownloadJ + b.RebufferJ }

// SegmentTask describes one download-and-play task for energy
// estimation.
type SegmentTask struct {
	// BitrateMbps is the segment's encoded bitrate.
	BitrateMbps float64
	// DurationSec is the segment's playback duration.
	DurationSec float64
	// SizeMB is the segment payload. If zero it is derived from
	// BitrateMbps and DurationSec.
	SizeMB float64
	// SignalDBm is the signal strength during the download.
	SignalDBm float64
	// ThroughputMBps is the link rate during the download. If zero the
	// model's nominal rate for SignalDBm is used.
	ThroughputMBps float64
	// BufferSec is the playable data buffered when the download starts;
	// the rebuffering branch of Eq. 9 triggers when the download takes
	// longer than this.
	BufferSec float64
}

// SegmentEnergy evaluates the task-energy model (Eqs. 6-10) for one
// segment: playback energy over the segment's duration, radio energy
// for its download, and — when the download outlasts the buffer — the
// stall energy of the rebuffering branch.
func (m Model) SegmentEnergy(t SegmentTask) Breakdown {
	if t.DurationSec <= 0 || t.BitrateMbps <= 0 {
		return Breakdown{}
	}
	size := t.SizeMB
	if size <= 0 {
		size = t.BitrateMbps / 8 * t.DurationSec
	}
	th := t.ThroughputMBps
	if th <= 0 {
		th = m.NominalThroughputMBps(t.SignalDBm)
	}
	downloadSec := size / th

	b := Breakdown{
		PlaybackJ: m.PlaybackPowerW(t.BitrateMbps) * t.DurationSec,
		DownloadJ: m.RadioPowerW(t.SignalDBm) * downloadSec,
	}
	if t.BufferSec >= 0 && downloadSec > t.BufferSec {
		b.RebufferSec = downloadSec - t.BufferSec
		b.RebufferJ = m.RebufferPowerW * b.RebufferSec
	}
	return b
}

// SessionEnergyJ sums SegmentEnergy over a session where every segment
// uses the same bitrate, signal, and nominal throughput — the
// configuration of the Table VI validation video and of the base-energy
// definition in Section V-B ("all video segments encoded with the
// lowest bitrate").
func (m Model) SessionEnergyJ(bitrateMbps, sessionSec, signalDBm float64) float64 {
	if sessionSec <= 0 || bitrateMbps <= 0 {
		return 0
	}
	sizeMB := bitrateMbps / 8 * sessionSec
	return m.PlaybackPowerW(bitrateMbps)*sessionSec + m.DownloadEnergyJ(sizeMB, signalDBm)
}

// String summarises the calibration.
func (m Model) String() string {
	return fmt.Sprintf("playback=%.3f+%.4f*r W, radio@%.0fdBm=%.2f W (+%.3f W/dB), e/MB@%.0fdBm=%.2f J (x e^{%.4f/dB})",
		m.BasePowerW, m.DecodeWPerMbps, m.RefSignalDBm, m.RadioPowerAtRefW,
		m.RadioPowerSlopeWPerDB, m.RefSignalDBm, m.EnergyPerMBAtRefJ, m.EnergyPerMBExpPerDB)
}
