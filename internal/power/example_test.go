package power_test

import (
	"fmt"

	"ecavs/internal/power"
)

// Downloading the same 100 MB costs ~4x more energy at the cell edge
// than under good coverage (the paper's Fig. 1a).
func ExampleModel_DownloadEnergyJ() {
	m := power.Default()
	fmt.Printf("at -90 dBm:  %.0f J\n", m.DownloadEnergyJ(100, -90))
	fmt.Printf("at -115 dBm: %.0f J\n", m.DownloadEnergyJ(100, -115))
	// Output:
	// at -90 dBm:  49 J
	// at -115 dBm: 193 J
}

// Task energy decomposes into playback, radio, and (when the buffer
// runs out) rebuffering.
func ExampleModel_SegmentEnergy() {
	m := power.EvalModel()
	b := m.SegmentEnergy(power.SegmentTask{
		BitrateMbps: 3.0,
		DurationSec: 2,
		SignalDBm:   -105,
		BufferSec:   30,
	})
	fmt.Printf("playback %.2f J + download %.2f J, no stall: %v\n",
		b.PlaybackJ, b.DownloadJ, b.RebufferSec == 0)
	// Output:
	// playback 1.97 J + download 0.84 J, no stall: true
}
