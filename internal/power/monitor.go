package power

import (
	"errors"
	"math"
	"math/rand"
)

// Monitor is a virtual Monsoon power monitor: it integrates
// instantaneous power samples at a fixed rate, adding measurement noise
// and a slow sinusoidal drift that models the thermal and
// battery-voltage effects a real handset exhibits. It is the "measured
// energy" side of the Table VI power-model validation.
//
// Construct with NewMonitor; the zero value is unusable.
type Monitor struct {
	sampleHz   float64
	noiseStd   float64 // relative, per sample
	driftAmp   float64 // relative amplitude of the slow drift
	driftHz    float64
	driftPhase float64
	bias       float64 // per-run calibration bias (multiplicative)
	rng        *rand.Rand

	energyJ float64
	elapsed float64
}

// MonitorConfig tunes the virtual monitor.
type MonitorConfig struct {
	// SampleHz is the sampling rate (default 100 Hz; Monsoon samples at
	// 5 kHz but 100 Hz is ample for second-scale integration).
	SampleHz float64
	// NoiseStd is the relative standard deviation of per-sample
	// measurement noise (default 0.01).
	NoiseStd float64
	// DriftAmp is the relative amplitude of the slow systematic drift
	// (default 0.015).
	DriftAmp float64
	// DriftPeriodSec is the drift period (default 97 s — deliberately
	// incommensurate with segment durations).
	DriftPeriodSec float64
	// BiasStd is the standard deviation of the per-run multiplicative
	// calibration bias (default 0.012, clamped to +-2.5%) — the
	// component that does NOT integrate out over a long session and so
	// dominates the Table VI model-vs-measurement error.
	BiasStd float64
	// Seed seeds the noise generator.
	Seed int64
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.SampleHz <= 0 {
		c.SampleHz = 100
	}
	if c.NoiseStd < 0 {
		c.NoiseStd = 0
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.01
	}
	if c.DriftAmp < 0 {
		c.DriftAmp = 0
	}
	if c.DriftAmp == 0 {
		c.DriftAmp = 0.015
	}
	if c.DriftPeriodSec <= 0 {
		c.DriftPeriodSec = 97
	}
	if c.BiasStd < 0 {
		c.BiasStd = 0
	}
	if c.BiasStd == 0 {
		c.BiasStd = 0.012
	}
	return c
}

// NewMonitor returns a monitor with the given configuration.
func NewMonitor(cfg MonitorConfig) *Monitor {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bias := rng.NormFloat64() * cfg.BiasStd
	if bias > 0.025 {
		bias = 0.025
	}
	if bias < -0.025 {
		bias = -0.025
	}
	return &Monitor{
		sampleHz:   cfg.SampleHz,
		noiseStd:   cfg.NoiseStd,
		driftAmp:   cfg.DriftAmp,
		driftHz:    1 / cfg.DriftPeriodSec,
		driftPhase: rng.Float64() * 2 * math.Pi,
		bias:       bias,
		rng:        rng,
	}
}

// ErrNegativeInterval is returned when Observe is given a negative
// duration.
var ErrNegativeInterval = errors.New("power: negative observation interval")

// Observe integrates the given true power level over an interval,
// sampling it at the monitor's rate with noise and drift applied.
func (mo *Monitor) Observe(powerW, durationSec float64) error {
	if durationSec < 0 {
		return ErrNegativeInterval
	}
	if durationSec == 0 || powerW <= 0 {
		mo.elapsed += durationSec
		return nil
	}
	dt := 1 / mo.sampleHz
	remaining := durationSec
	for remaining > 0 {
		step := dt
		if remaining < step {
			step = remaining
		}
		drift := 1 + mo.driftAmp*math.Sin(2*math.Pi*mo.driftHz*mo.elapsed+mo.driftPhase)
		noise := 1 + mo.rng.NormFloat64()*mo.noiseStd
		mo.energyJ += powerW * (1 + mo.bias) * drift * noise * step
		mo.elapsed += step
		remaining -= step
	}
	return nil
}

// EnergyJ returns the integrated ("measured") energy so far.
func (mo *Monitor) EnergyJ() float64 { return mo.energyJ }

// ElapsedSec returns the observed wall-clock time so far.
func (mo *Monitor) ElapsedSec() float64 { return mo.elapsed }

// Reset clears the accumulated energy and time (the drift phase and
// noise stream continue).
func (mo *Monitor) Reset() {
	mo.energyJ = 0
	mo.elapsed = 0
}

// MeasureSession plays the Table VI validation workload through the
// monitor: a video of the given duration streamed at constant bitrate
// and signal strength, downloading each segment in a burst at the
// model's nominal link rate while playback continues. It returns the
// "measured" energy.
func (mo *Monitor) MeasureSession(m Model, bitrateMbps, sessionSec, signalDBm, segmentSec float64) (float64, error) {
	if segmentSec <= 0 {
		segmentSec = 2
	}
	if sessionSec <= 0 || bitrateMbps <= 0 {
		return 0, errors.New("power: session duration and bitrate must be positive")
	}
	playW := m.PlaybackPowerW(bitrateMbps)
	radioW := m.RadioPowerW(signalDBm)
	segMB := bitrateMbps / 8 * segmentSec
	dlSec := segMB / m.NominalThroughputMBps(signalDBm)

	start := mo.energyJ
	remaining := sessionSec
	for remaining > 0 {
		seg := segmentSec
		if remaining < seg {
			seg = remaining
		}
		burst := dlSec * seg / segmentSec
		if burst > seg {
			burst = seg
		}
		// Radio burst overlaps playback at the start of the segment.
		if err := mo.Observe(playW+radioW, burst); err != nil {
			return 0, err
		}
		if err := mo.Observe(playW, seg-burst); err != nil {
			return 0, err
		}
		remaining -= seg
	}
	return mo.energyJ - start, nil
}
