package tracing

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Explorer serves the store's contents for humans and tools:
//
//	GET /debug/traces            JSON: sampling stats + merged trace list
//	                             (?limit=N caps the list, ?spans=1 inlines spans)
//	GET /debug/traces/<traceid>  JSON: one merged trace with all spans
//	GET /debug/traces.ndjson     one merged trace per line, for offline analysis
//
// Mount it under telemetry.Handler via Registry.AttachTraces, or serve
// it directly.
type Explorer struct {
	store *Store
}

// NewExplorer returns an Explorer over the given store (nil store →
// nil Explorer, whose ServeHTTP 404s).
func NewExplorer(store *Store) *Explorer {
	if store == nil {
		return nil
	}
	return &Explorer{store: store}
}

// listResponse is the /debug/traces payload.
type listResponse struct {
	Stats  StoreStats  `json:"stats"`
	Held   int         `json:"held_fragments"`
	Traces []TraceView `json:"traces"`
}

func (e *Explorer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if e == nil || e.store == nil {
		http.NotFound(w, r)
		return
	}
	path := r.URL.Path
	switch {
	case strings.HasSuffix(path, ".ndjson"):
		e.serveNDJSON(w)
	case strings.HasSuffix(path, "/traces") || strings.HasSuffix(path, "/traces/"):
		e.serveList(w, r)
	default:
		// Trailing path element is a trace ID.
		id, ok := parseTraceID(path[strings.LastIndexByte(path, '/')+1:])
		if !ok {
			http.Error(w, "tracing: bad trace id", http.StatusBadRequest)
			return
		}
		v, found := e.store.View(id)
		if !found {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
}

func (e *Explorer) serveList(w http.ResponseWriter, r *http.Request) {
	views := e.store.Views()
	limit := len(views)
	if s := r.URL.Query().Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < limit {
			limit = n
		}
	}
	withSpans := r.URL.Query().Get("spans") == "1"
	views = views[:limit]
	if !withSpans {
		for i := range views {
			views[i].Spans = nil
		}
	}
	resp := listResponse{Stats: e.store.Stats(), Held: e.store.Len(), Traces: views}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

func (e *Explorer) serveNDJSON(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, v := range e.store.Views() {
		if enc.Encode(v) != nil {
			return
		}
	}
}

// parseTraceID decodes a 32-hex-char trace ID.
func parseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}
