package tracing

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// testTracer builds a deterministic tracer: fixed seed, stepped clock,
// keep-everything sampler.
func testTracer(service string, store *Store) *Tracer {
	return New(Config{
		Service: service,
		Sampler: Sampler{KeepErrors: true, Ratio: 1},
		Seed:    42,
		Now:     steppedClock(),
	}, store)
}

// steppedClock advances 1ms per reading from a fixed epoch.
func steppedClock() func() time.Time {
	base := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestIDGenerationDeterministic(t *testing.T) {
	a := testTracer("a", NewStore(4))
	b := testTracer("b", NewStore(4))
	for i := 0; i < 8; i++ {
		ta, tb := a.newTraceID(), b.newTraceID()
		if ta != tb {
			t.Fatalf("draw %d: same seed produced different trace IDs %s vs %s", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatalf("draw %d: zero trace ID", i)
		}
		sa, sb := a.newSpanID(), b.newSpanID()
		if sa != sb || sa.IsZero() {
			t.Fatalf("draw %d: span IDs diverged or zero: %s vs %s", i, sa, sb)
		}
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tr := testTracer("rt", NewStore(4))
	tid, sid := tr.newTraceID(), tr.newSpanID()
	hdr := FormatTraceParent(tid, sid)
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55: %q", len(hdr), hdr)
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent framing wrong: %q", hdr)
	}
	gtid, gsid, ok := ParseTraceParent(hdr)
	if !ok || gtid != tid || gsid != sid {
		t.Fatalf("round trip failed: %q -> (%s, %s, %v)", hdr, gtid, gsid, ok)
	}
}

func TestParseTraceParentRejections(t *testing.T) {
	valid := FormatTraceParent(TraceID{1}, SpanID{2})
	bad := []string{
		"",
		"00-short",
		valid[:54],
		valid + "0",
		"01" + valid[2:], // unknown version
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace id
		valid[:36] + strings.Repeat("0", 16) + "-01", // zero span id
		strings.Replace(valid, "-01", "-zz", 1),      // non-hex flags
		"00-" + strings.Repeat("g", 32) + valid[35:], // non-hex trace id
		strings.Replace(valid, "-", "_", 1),          // wrong separator
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want reject", s)
		}
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// Every method must be callable on the nil span without panicking.
	child := sp.StartChild("y")
	child.SetAttr("k", "v")
	child.SetAttrInt("n", 7)
	child.SetAttrDuration("d", time.Second)
	child.SetStatus("error", "boom")
	child.SetError(errors.New("boom"))
	if got := child.TraceParent(); got != "" {
		t.Fatalf("nil span TraceParent = %q, want empty", got)
	}
	if !child.TraceID().IsZero() {
		t.Fatal("nil span TraceID non-zero")
	}
	child.End()
	sp.End()
	rem := tr.StartRemote("z", FormatTraceParent(TraceID{1}, SpanID{2}))
	if rem != nil {
		t.Fatal("nil tracer StartRemote returned non-nil span")
	}
}

// TestNilTracerZeroAllocs pins the zero-overhead contract: the disabled
// instrumentation path must not allocate.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartRoot("fetch")
		att := sp.StartChild("attempt")
		att.SetAttrInt("try", 1)
		att.SetError(nil)
		_ = sp.TraceParent()
		att.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per op, want 0", allocs)
	}
}

func TestFragmentLifecycle(t *testing.T) {
	store := NewStore(8)
	tr := testTracer("client", store)

	root := tr.StartRoot("fetch")
	root.SetAttr("rep", "video")
	a1 := root.StartChild("attempt")
	a1.SetAttrInt("try", 1)
	a1.SetStatus("error", "503")
	a1.End()
	a2 := root.StartChild("attempt")
	a2.SetAttrInt("try", 2)
	a2.End()
	leak := root.StartChild("unfinished") // never ended by hand
	_ = leak
	root.End()

	frags := store.Fragments()
	if len(frags) != 1 {
		t.Fatalf("stored %d fragments, want 1", len(frags))
	}
	f := frags[0]
	if f.Service != "client" || f.Root != root || len(f.Spans) != 4 {
		t.Fatalf("fragment = {service %q, %d spans}, want client/4", f.Service, len(f.Spans))
	}
	if f.Verdict != VerdictError {
		t.Fatalf("verdict = %q, want %q (a child had error status)", f.Verdict, VerdictError)
	}
	for _, sp := range f.Spans {
		if sp.Duration <= 0 {
			t.Fatalf("span %q has duration %v, want > 0 (unfinished children must be stamped)", sp.Name, sp.Duration)
		}
	}

	// After completion the fragment is frozen: mutations are dropped.
	before := len(root.Attrs)
	root.SetAttr("late", "x")
	root.SetStatus("error", "late")
	if len(root.Attrs) != before || root.Status != "" {
		t.Fatal("fragment accepted mutations after completion")
	}
	if c := root.StartChild("late"); c != nil {
		c.End()
	}
	if got := len(store.Fragments()[0].Spans); got != 4 {
		t.Fatalf("late child landed in frozen fragment: %d spans", got)
	}

	// End is idempotent: no double publish.
	root.End()
	if got := store.Stats().Seen; got != 1 {
		t.Fatalf("seen = %d after double End, want 1", got)
	}
}

func TestRemoteJoin(t *testing.T) {
	store := NewStore(8)
	client := testTracer("client", store)
	server := New(Config{Service: "server", Sampler: Sampler{Ratio: 1}, Seed: 99, Now: steppedClock()}, store)

	croot := client.StartRoot("fetch")
	hdr := croot.TraceParent()
	sroot := server.StartRemote("request", hdr)
	if sroot.TraceID() != croot.TraceID() {
		t.Fatalf("server did not join client trace: %s vs %s", sroot.TraceID(), croot.TraceID())
	}
	if sroot.Parent != croot.ID {
		t.Fatalf("server root parent = %s, want client span %s", sroot.Parent, croot.ID)
	}
	sroot.End()
	croot.End()

	views := store.Views()
	if len(views) != 1 {
		t.Fatalf("got %d merged traces, want 1 (fragments share a trace ID)", len(views))
	}
	v := views[0]
	if len(v.Services) != 2 || v.Services[0] != "client" || v.Services[1] != "server" {
		t.Fatalf("services = %v, want [client server]", v.Services)
	}
	if v.Root != "fetch" {
		t.Fatalf("merged root = %q, want fetch", v.Root)
	}
	if v.SpanCount != 2 {
		t.Fatalf("span count = %d, want 2", v.SpanCount)
	}

	// A bad header degrades to a fresh root, never a refusal.
	fresh := server.StartRemote("request", "garbage")
	if fresh == nil || fresh.TraceID().IsZero() || !fresh.Parent.IsZero() {
		t.Fatal("malformed traceparent should start a fresh root")
	}
	fresh.End()
}

func TestSamplerVerdicts(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	mk := func(status string, d time.Duration) *Trace {
		root := &Span{Name: "r", Start: now, Duration: d, Status: status}
		return &Trace{TraceID: TraceID{0xab}, Root: root, Spans: []*Span{root}}
	}
	sm := Sampler{KeepErrors: true, LatencyThreshold: 100 * time.Millisecond, Ratio: 0}
	if got := sm.verdict(mk("error", time.Millisecond)); got != VerdictError {
		t.Fatalf("error trace verdict = %q", got)
	}
	if got := sm.verdict(mk("", 150*time.Millisecond)); got != VerdictLatency {
		t.Fatalf("slow trace verdict = %q", got)
	}
	if got := sm.verdict(mk("", time.Millisecond)); got != "" {
		t.Fatalf("fast ok trace verdict = %q, want drop", got)
	}
	sm.Ratio = 1
	if got := sm.verdict(mk("", time.Millisecond)); got != VerdictRatio {
		t.Fatalf("ratio=1 verdict = %q", got)
	}

	// Shed status counts as noteworthy too.
	if got := sm.verdict(mk("shed", time.Millisecond)); got != VerdictError {
		t.Fatalf("shed trace verdict = %q", got)
	}
}

// TestRatioSamplingIsTraceIDConsistent pins the cross-process property:
// two independent samplers reach the same ratio verdict for the same
// trace ID, and the keep rate lands near the configured ratio.
func TestRatioSamplingIsTraceIDConsistent(t *testing.T) {
	smA := Sampler{Ratio: 0.25}
	smB := Sampler{Ratio: 0.25}
	tr := testTracer("x", NewStore(1))
	kept := 0
	const n = 4000
	for i := 0; i < n; i++ {
		id := tr.newTraceID()
		a, b := smA.ratioKeep(id), smB.ratioKeep(id)
		if a != b {
			t.Fatalf("trace %s: samplers disagreed (%v vs %v)", id, a, b)
		}
		if a {
			kept++
		}
	}
	rate := float64(kept) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("keep rate %.3f for ratio 0.25, want ~0.25", rate)
	}
}

func TestStoreRingWrap(t *testing.T) {
	store := NewStore(4)
	tr := testTracer("w", store)
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("op")
		sp.SetAttrInt("i", int64(i))
		sp.End()
	}
	frags := store.Fragments()
	if len(frags) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(frags))
	}
	// Newest-first: attrs i = 9, 8, 7, 6.
	for k, f := range frags {
		want := itoa(int64(9 - k))
		if got := f.Root.Attrs[0].Value; got != want {
			t.Fatalf("slot %d holds i=%s, want %s", k, got, want)
		}
	}
	st := store.Stats()
	if st.Seen != 10 || st.Kept != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want seen=kept=10", st)
	}
}

// TestConcurrentSpansAndReads exercises the ring and fragment locking
// under the race detector: many goroutines record spans while readers
// assemble views.
func TestConcurrentSpansAndReads(t *testing.T) {
	store := NewStore(64)
	tr := New(Config{Service: "c", Sampler: Sampler{Ratio: 1}, Seed: 7}, store)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = store.Views()
				_ = store.Stats()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartRoot("op")
				var inner sync.WaitGroup
				for c := 0; c < 3; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						sp := root.StartChild("child")
						sp.SetAttrInt("c", int64(c))
						sp.End()
					}(c)
				}
				inner.Wait()
				root.End()
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	close(stop)
	<-wgDone
	if st := store.Stats(); st.Seen != 1600 {
		t.Fatalf("seen = %d, want 1600", st.Seen)
	}
}
