package tracing

import (
	"encoding/binary"
	"sort"
	"sync/atomic"
	"time"
)

// Verdict values: why a fragment was kept.
const (
	// VerdictError — a span carried a non-success status (error, shed,
	// fast_fail, cancelled); always kept when Sampler.KeepErrors is set.
	VerdictError = "error"
	// VerdictLatency — the fragment's root ran at least
	// Sampler.LatencyThreshold.
	VerdictLatency = "latency"
	// VerdictRatio — the trace ID hashed into the probabilistic slice.
	VerdictRatio = "ratio"
)

// Sampler is the tail-sampling policy: the keep/drop decision runs
// when a fragment completes, with the whole fragment in hand — which
// is what lets it always keep failures and the slow tail while
// sampling the boring bulk down to Ratio.
//
// The Ratio decision hashes the trace ID, not a dice roll: every
// fragment of one trace — client and server, either side of a process
// boundary — reaches the same verdict without coordination, so a
// ratio-sampled trace is always complete.
type Sampler struct {
	// KeepErrors keeps every fragment containing a span with a
	// non-empty status.
	KeepErrors bool
	// LatencyThreshold keeps fragments whose root span ran at least
	// this long (0 disables the latency slice).
	LatencyThreshold time.Duration
	// Ratio keeps this fraction of the remaining traces, selected by
	// trace-ID hash: 0 keeps none, 1 keeps all.
	Ratio float64
}

// DefaultSampler keeps failures, the ≥250 ms tail, and 1% of the rest.
func DefaultSampler() Sampler {
	return Sampler{KeepErrors: true, LatencyThreshold: 250 * time.Millisecond, Ratio: 0.01}
}

// ratioKeep is the deterministic trace-ID-ratio decision.
func (sm Sampler) ratioKeep(id TraceID) bool {
	if sm.Ratio >= 1 {
		return true
	}
	if sm.Ratio <= 0 {
		return false
	}
	u := float64(mix64(binary.BigEndian.Uint64(id[8:]))>>11) / (1 << 53)
	return u < sm.Ratio
}

// verdict returns why the fragment should be kept, or "" to drop it.
func (sm Sampler) verdict(tr *Trace) string {
	if sm.KeepErrors {
		for _, sp := range tr.Spans {
			if sp.Status != "" {
				return VerdictError
			}
		}
	}
	if sm.LatencyThreshold > 0 && tr.Root.Duration >= sm.LatencyThreshold {
		return VerdictLatency
	}
	if sm.ratioKeep(tr.TraceID) {
		return VerdictRatio
	}
	return ""
}

// Trace is one completed, immutable fragment: the spans one process
// recorded under one local root. Fragments sharing a TraceID — from
// other processes, or the other half of this one — are merged at read
// time by Views.
type Trace struct {
	Service string
	TraceID TraceID
	Verdict string
	Root    *Span
	Spans   []*Span
	End     time.Time
}

// StoreStats counts the store's sampling outcomes.
type StoreStats struct {
	// Seen counts completed fragments offered to the sampler.
	Seen int64
	// Kept counts fragments retained (KeptError+KeptLatency+KeptRatio).
	Kept int64
	// KeptError, KeptLatency, KeptRatio break Kept down by verdict.
	KeptError   int64
	KeptLatency int64
	KeptRatio   int64
	// Dropped counts fragments the sampler discarded.
	Dropped int64
}

// Store holds the most recent kept fragments in a lock-free ring:
// writers claim a slot with one atomic increment and publish with one
// atomic pointer store, so tracing's completion path never serialises
// concurrent requests on a lock. Readers snapshot slot by slot; a
// snapshot taken mid-write is approximate across slots but never sees
// a torn fragment.
//
// Construct with NewStore; the zero value is unusable.
type Store struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64

	seen, dropped                   atomic.Int64
	keptErr, keptLatency, keptRatio atomic.Int64
}

// NewStore returns a ring holding the most recent `capacity` kept
// fragments (minimum 1).
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{slots: make([]atomic.Pointer[Trace], capacity)}
}

// offer runs the sampler on a completed fragment and, if kept, stamps
// its verdict and publishes it.
func (s *Store) offer(tr *Trace, sm Sampler) {
	s.seen.Add(1)
	v := sm.verdict(tr)
	if v == "" {
		s.dropped.Add(1)
		return
	}
	tr.Verdict = v
	switch v {
	case VerdictError:
		s.keptErr.Add(1)
	case VerdictLatency:
		s.keptLatency.Add(1)
	default:
		s.keptRatio.Add(1)
	}
	i := s.next.Add(1) - 1
	s.slots[i%uint64(len(s.slots))].Store(tr)
}

// Stats reads the sampling counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		Seen:        s.seen.Load(),
		KeptError:   s.keptErr.Load(),
		KeptLatency: s.keptLatency.Load(),
		KeptRatio:   s.keptRatio.Load(),
		Dropped:     s.dropped.Load(),
	}
	st.Kept = st.KeptError + st.KeptLatency + st.KeptRatio
	return st
}

// Len reports how many fragments are currently held.
func (s *Store) Len() int {
	n := 0
	for i := range s.slots {
		if s.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Fragments snapshots the held fragments, newest-first.
func (s *Store) Fragments() []*Trace {
	out := make([]*Trace, 0, len(s.slots))
	n := s.next.Load()
	cap64 := uint64(len(s.slots))
	limit := n
	if limit > cap64 {
		limit = cap64
	}
	// Walk backwards from the most recently claimed slot.
	for k := uint64(0); k < limit; k++ {
		if tr := s.slots[(n-1-k)%cap64].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// SpanView is one span flattened for display: service-tagged, with its
// offset from the merged trace's start.
type SpanView struct {
	Service    string  `json:"service"`
	Name       string  `json:"name"`
	SpanID     string  `json:"span_id"`
	ParentID   string  `json:"parent_id,omitempty"`
	Start      string  `json:"start"`
	OffsetMs   float64 `json:"offset_ms"`
	DurationMs float64 `json:"duration_ms"`
	Status     string  `json:"status,omitempty"`
	Note       string  `json:"note,omitempty"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// TraceView is one distributed trace assembled from every fragment in
// the store that shares its trace ID, spans sorted by start time.
type TraceView struct {
	TraceID    string     `json:"trace_id"`
	Services   []string   `json:"services"`
	Root       string     `json:"root"`
	Start      string     `json:"start"`
	DurationMs float64    `json:"duration_ms"`
	Error      bool       `json:"error"`
	Verdicts   []string   `json:"verdicts"`
	SpanCount  int        `json:"span_count"`
	Spans      []SpanView `json:"spans,omitempty"`
}

// Views assembles the held fragments into merged traces, newest-first
// by most recent fragment. Cross-process traces — a client fragment
// plus the server fragments its requests produced — appear once, with
// every side's spans on one timeline.
func (s *Store) Views() []TraceView {
	frags := s.Fragments()
	order := make([]TraceID, 0, len(frags))
	byID := make(map[TraceID][]*Trace, len(frags))
	for _, f := range frags {
		if _, ok := byID[f.TraceID]; !ok {
			order = append(order, f.TraceID)
		}
		byID[f.TraceID] = append(byID[f.TraceID], f)
	}
	out := make([]TraceView, 0, len(order))
	for _, id := range order {
		out = append(out, assemble(id, byID[id]))
	}
	return out
}

// View assembles the single merged trace with the given ID, if any
// fragment of it is held.
func (s *Store) View(id TraceID) (TraceView, bool) {
	var group []*Trace
	for _, f := range s.Fragments() {
		if f.TraceID == id {
			group = append(group, f)
		}
	}
	if len(group) == 0 {
		return TraceView{}, false
	}
	return assemble(id, group), true
}

// assemble flattens one trace's fragments onto a shared timeline. The
// trace's root is the span with no in-trace parent (the true root, or
// the earliest fragment root when the true root's fragment was
// evicted); offsets are measured from the earliest span.
func assemble(id TraceID, group []*Trace) TraceView {
	v := TraceView{TraceID: id.String()}
	var spans []*Span
	svcOf := make(map[*Span]string)
	ids := make(map[SpanID]bool)
	seenSvc := make(map[string]bool)
	verdicts := make(map[string]bool)
	for _, f := range group {
		if !seenSvc[f.Service] {
			seenSvc[f.Service] = true
			v.Services = append(v.Services, f.Service)
		}
		if !verdicts[f.Verdict] {
			verdicts[f.Verdict] = true
			v.Verdicts = append(v.Verdicts, f.Verdict)
		}
		for _, sp := range f.Spans {
			spans = append(spans, sp)
			svcOf[sp] = f.Service
			ids[sp.ID] = true
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	sort.Strings(v.Services)
	sort.Strings(v.Verdicts)
	start := spans[0].Start
	var end time.Time
	for _, sp := range spans {
		if sp.Status != "" {
			v.Error = true
		}
		if e := sp.Start.Add(sp.Duration); e.After(end) {
			end = e
		}
		if v.Root == "" && (sp.Parent.IsZero() || !ids[sp.Parent]) {
			v.Root = sp.Name
		}
	}
	v.Start = start.UTC().Format(time.RFC3339Nano)
	v.DurationMs = float64(end.Sub(start)) / float64(time.Millisecond)
	v.SpanCount = len(spans)
	v.Spans = make([]SpanView, len(spans))
	for i, sp := range spans {
		sv := SpanView{
			Service:    svcOf[sp],
			Name:       sp.Name,
			SpanID:     sp.ID.String(),
			Start:      sp.Start.UTC().Format(time.RFC3339Nano),
			OffsetMs:   float64(sp.Start.Sub(start)) / float64(time.Millisecond),
			DurationMs: float64(sp.Duration) / float64(time.Millisecond),
			Status:     sp.Status,
			Note:       sp.Note,
			Attrs:      sp.Attrs,
		}
		if !sp.Parent.IsZero() {
			sv.ParentID = sp.Parent.String()
		}
		v.Spans[i] = sv
	}
	return v
}
