package tracing

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func seededExplorer(t *testing.T) (*Explorer, *Store, TraceID) {
	t.Helper()
	store := NewStore(16)
	tr := testTracer("client", store)
	var last TraceID
	for i := 0; i < 3; i++ {
		sp := tr.StartRoot("fetch")
		sp.SetAttrInt("segment", int64(i))
		if i == 1 {
			att := sp.StartChild("attempt")
			att.SetStatus("error", "injected 503")
			att.End()
		}
		last = sp.TraceID()
		sp.End()
	}
	return NewExplorer(store), store, last
}

func TestExplorerList(t *testing.T) {
	ex, _, _ := seededExplorer(t)
	rec := httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var resp struct {
		Stats  StoreStats  `json:"stats"`
		Held   int         `json:"held_fragments"`
		Traces []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.Stats.Seen != 3 || resp.Held != 3 || len(resp.Traces) != 3 {
		t.Fatalf("list = seen %d, held %d, %d traces; want 3/3/3", resp.Stats.Seen, resp.Held, len(resp.Traces))
	}
	if resp.Traces[0].Spans != nil {
		t.Fatal("list inlined spans without ?spans=1")
	}

	// limit + spans query parameters.
	rec = httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=1&spans=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Traces) != 1 || len(resp.Traces[0].Spans) == 0 {
		t.Fatalf("limit=1&spans=1 gave %d traces, spans %v", len(resp.Traces), resp.Traces[0].Spans)
	}
}

func TestExplorerDetail(t *testing.T) {
	ex, _, id := seededExplorer(t)
	rec := httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id.String(), nil))
	if rec.Code != 200 {
		t.Fatalf("status %d for known trace", rec.Code)
	}
	var v TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if v.TraceID != id.String() || len(v.Spans) == 0 {
		t.Fatalf("detail = %q with %d spans", v.TraceID, len(v.Spans))
	}

	rec = httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+strings.Repeat("ab", 16), nil))
	if rec.Code != 404 {
		t.Fatalf("status %d for unknown trace, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/nothex", nil))
	if rec.Code != 400 {
		t.Fatalf("status %d for malformed id, want 400", rec.Code)
	}
}

func TestExplorerNDJSON(t *testing.T) {
	ex, _, _ := seededExplorer(t)
	rec := httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces.ndjson", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d NDJSON lines, want 3", len(lines))
	}
	for i, ln := range lines {
		var v TraceView
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if len(v.Spans) == 0 {
			t.Fatalf("line %d has no spans — NDJSON export must be complete", i)
		}
	}
}

func TestExplorerNil(t *testing.T) {
	var ex *Explorer
	rec := httptest.NewRecorder()
	ex.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("nil explorer status %d, want 404", rec.Code)
	}
	if NewExplorer(nil) != nil {
		t.Fatal("NewExplorer(nil) should be nil")
	}
}
