// Package tracing is the repo's request-tracing substrate: spans with
// trace/span IDs, parent links, attributes, status, and monotonic
// timing, propagated across processes via the W3C `traceparent` header
// and collected — after a tail-sampling decision — into a lock-free
// ring-buffer store that telemetry.Handler exposes as /debug/traces.
// It is stdlib-only and built for hot paths: every method no-ops on a
// nil *Tracer or nil *Span, so call sites need no `if enabled`
// branching — wiring a nil tracer leaves the instrumented code
// allocation-free and branch-cheap, the same zero-overhead contract
// internal/telemetry pins for metrics.
//
// The model is deliberately smaller than OpenTelemetry's: one process
// records one *fragment* per local root span (a client segment fetch,
// a server request), and fragments from different processes — or from
// the client and server halves of one process, as in cmd/loadgen's
// in-process mode — are joined at read time by their shared 128-bit
// trace ID. Tail sampling is per fragment, but the probabilistic slice
// is computed from the trace ID alone, so every participant of a trace
// reaches the same keep/drop verdict without coordination.
package tracing

import (
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the W3C trace-context propagation header name.
const Header = "traceparent"

// TraceID is the 128-bit trace identifier shared by every span of a
// distributed trace.
type TraceID [16]byte

// SpanID is the 64-bit span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// splitmix64 advances and finalizes one draw of the splitmix64 stream
// — the same generator the fault planner and backoff jitter use, so
// the whole repo shares one deterministic PRNG idiom.
func splitmix64(state *atomic.Uint64) uint64 {
	z := state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is the stateless splitmix64 finalizer, used to hash a trace ID
// into the sampling ratio decision.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Attr is one span attribute. Values are pre-rendered strings: the
// typed Set helpers format at record time, which only runs when
// tracing is enabled.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Config parameterises a Tracer.
type Config struct {
	// Service names the emitting side ("client", "server", "loadgen");
	// the explorer groups a trace's spans by it.
	Service string
	// Sampler is the tail-sampling policy applied when a fragment
	// completes. The zero value keeps nothing; use DefaultSampler as the
	// starting point.
	Sampler Sampler
	// Seed seeds the splitmix64 ID stream. Zero derives a seed from the
	// wall clock; tests pass a fixed seed for reproducible IDs.
	Seed uint64
	// Now overrides the clock (nil = time.Now). Span durations use the
	// monotonic reading time.Time carries, so wall-clock jumps never
	// produce negative spans.
	Now func() time.Time
}

// Tracer creates spans and, when their root ends, offers the completed
// fragment to the store through the sampler. A nil *Tracer is fully
// inert: StartRoot/StartRemote return a nil *Span whose methods all
// no-op, so disabled tracing costs one branch and zero allocations.
//
// Construct with New; the zero value is unusable.
type Tracer struct {
	service string
	sampler Sampler
	store   *Store
	now     func() time.Time
	ids     atomic.Uint64 // splitmix64 state for ID generation
}

// New builds a tracer emitting into store. A nil store returns a nil
// tracer — tracing without somewhere to put traces is disabled tracing.
func New(cfg Config, store *Store) *Tracer {
	if store == nil {
		return nil
	}
	t := &Tracer{
		service: cfg.Service,
		sampler: cfg.Sampler,
		store:   store,
		now:     cfg.Now,
	}
	if t.service == "" {
		t.service = "unknown"
	}
	if t.now == nil {
		t.now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t.ids.Store(seed)
	return t
}

// Enabled reports whether spans will actually be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// newTraceID draws a non-zero 128-bit trace ID.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], splitmix64(&t.ids))
		binary.BigEndian.PutUint64(id[8:], splitmix64(&t.ids))
	}
	return id
}

// newSpanID draws a non-zero 64-bit span ID.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], splitmix64(&t.ids))
	}
	return id
}

// StartRoot begins a new trace with a fresh trace ID and returns its
// root span. Ending the root completes the fragment: unfinished
// children are stamped, the sampler issues its verdict, and a kept
// fragment lands in the store.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startFragment(name, t.newTraceID(), SpanID{})
}

// StartRemote joins the trace described by a W3C traceparent header
// value: the new span shares the remote trace ID and links to the
// remote span as its parent. An empty or malformed header starts a
// fresh root instead — a server never refuses to trace just because
// the caller's header was bad.
func (t *Tracer) StartRemote(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	if tid, parent, ok := ParseTraceParent(traceparent); ok {
		return t.startFragment(name, tid, parent)
	}
	return t.startFragment(name, t.newTraceID(), SpanID{})
}

// startFragment opens a fragment rooted at a new span.
func (t *Tracer) startFragment(name string, tid TraceID, parent SpanID) *Span {
	f := &fragment{tracer: t, traceID: tid}
	sp := &Span{
		frag:   f,
		ID:     t.newSpanID(),
		Parent: parent,
		Name:   name,
		Start:  t.now(),
		root:   true,
	}
	f.spans = append(f.spans, sp)
	return sp
}

// fragment accumulates the spans one process records for one local
// root. The mutex orders concurrent child creation (prefetch pipelines
// start spans from several goroutines); once the root ends the
// fragment is frozen — late mutations are dropped — so the published
// *Trace is immutable and readable without locks.
type fragment struct {
	tracer  *Tracer
	traceID TraceID

	mu    sync.Mutex
	spans []*Span
	done  bool
}

// Span is one timed operation inside a trace. Fields are exported for
// the explorer and tests but must be treated as read-only outside this
// package; mutate through the methods, which are safe on a nil
// receiver and become no-ops once the fragment has completed.
type Span struct {
	frag *fragment

	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	// Duration is zero until End (or the fragment's completion, for
	// spans still running when the root ended).
	Duration time.Duration
	Attrs    []Attr
	// Status is "" for success; anything else ("error", "shed",
	// "fast_fail", "cancelled") marks the span noteworthy and makes the
	// sampler's KeepErrors slice retain the trace.
	Status string
	// Note carries the status detail (an error message).
	Note string

	root  bool
	ended bool
}

// TraceID reports the trace the span belongs to.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.frag.traceID
}

// StartChild opens a child span starting now.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.StartChildAt(name, s.frag.tracer.now())
}

// StartChildAt opens a child span with an explicit start time — for
// intervals measured before the span object could be created, like a
// pipeline consumer that only learns which segment it waited on once
// the wait is over.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	f := s.frag
	child := &Span{
		frag:   f,
		ID:     f.tracer.newSpanID(),
		Parent: s.ID,
		Name:   name,
		Start:  start,
	}
	f.mu.Lock()
	if !f.done {
		f.spans = append(f.spans, child)
	}
	f.mu.Unlock()
	return child
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	f := s.frag
	f.mu.Lock()
	if !f.done {
		s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	}
	f.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, itoa(v))
}

// SetAttrDuration records a duration attribute (Go duration syntax).
func (s *Span) SetAttrDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.SetAttr(key, d.String())
}

// SetStatus marks the span with a non-success status and detail note.
func (s *Span) SetStatus(status, note string) {
	if s == nil {
		return
	}
	f := s.frag
	f.mu.Lock()
	if !f.done {
		s.Status = status
		s.Note = note
	}
	f.mu.Unlock()
}

// SetError marks the span failed with the error's message. A nil error
// is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetStatus("error", err.Error())
}

// TraceParent renders the span's W3C traceparent header value, for
// injection into an outgoing request so the far side joins the trace
// as this span's child. Returns "" on a nil span.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.frag.traceID, s.ID)
}

// End stamps the span's duration. Ending the fragment's root span
// completes the fragment: children still running are stamped with the
// root's end time, the sampler decides, and a kept fragment is
// published to the store. End is idempotent; ends after the fragment
// completed are dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	f := s.frag
	now := f.tracer.now()
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return
	}
	if !s.ended {
		s.ended = true
		if d := now.Sub(s.Start); d > 0 {
			s.Duration = d
		}
	}
	if !s.root {
		f.mu.Unlock()
		return
	}
	// Root ended: freeze the fragment. Spans still open (a torn-down
	// prefetch, a handler panic) get the root's end stamp so the
	// explorer never shows a zero-length mystery.
	f.done = true
	for _, sp := range f.spans {
		if !sp.ended {
			sp.ended = true
			if d := now.Sub(sp.Start); d > 0 {
				sp.Duration = d
			}
		}
	}
	spans := f.spans
	f.mu.Unlock()

	t := f.tracer
	tr := &Trace{
		Service: t.service,
		TraceID: f.traceID,
		Root:    s,
		Spans:   spans,
		End:     now,
	}
	t.store.offer(tr, t.sampler)
}

// itoa is strconv.FormatInt without the import weight at call sites —
// attribute formatting only runs when tracing is enabled.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// FormatTraceParent renders a version-00 W3C traceparent value:
// 00-<32 hex trace id>-<16 hex span id>-01. The sampled flag is always
// set — sampling here is a tail decision, taken after the trace ends,
// so the header cannot carry it.
func FormatTraceParent(tid TraceID, sid SpanID) string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tid[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], sid[:])
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}

// ParseTraceParent parses a version-00 traceparent header value,
// rejecting malformed lengths, non-hex digits, unknown versions, and
// the all-zero IDs the spec forbids.
func ParseTraceParent(s string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(s[3:35])); err != nil {
		return tid, sid, false
	}
	if _, err := hex.Decode(sid[:], []byte(s[36:52])); err != nil {
		return tid, sid, false
	}
	if isHexDigit(s[53]) && isHexDigit(s[54]) {
		if tid.IsZero() || sid.IsZero() {
			return TraceID{}, SpanID{}, false
		}
		return tid, sid, true
	}
	return TraceID{}, SpanID{}, false
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}
