package pool

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunAllUnits(t *testing.T) {
	const n = 100
	var hits [n]atomic.Int32
	if err := Run(n, 4, func(u int) error {
		hits[u].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for u := range hits {
		if got := hits[u].Load(); got != 1 {
			t.Errorf("unit %d ran %d times", u, got)
		}
	}
}

func TestRunZeroUnits(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefaultsWorkers(t *testing.T) {
	var ran atomic.Int32
	if err := Run(10, 0, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d of 10 units", ran.Load())
	}
}

func TestRunReturnsLowestFailingUnit(t *testing.T) {
	sentinel := errors.New("boom")
	err := Run(8, 1, func(u int) error {
		if u == 3 || u == 5 {
			return fmt.Errorf("unit %d: %w", u, sentinel)
		}
		return nil
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if got := err.Error(); got != "unit 3: boom" {
		t.Errorf("err = %q, want the lowest-numbered failure", got)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	var ran atomic.Int32
	err := Run(8, 2, func(u int) error {
		ran.Add(1)
		if u == 3 {
			panic("poisoned unit")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking unit produced no error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Unit != 3 {
		t.Errorf("PanicError.Unit = %d, want 3", pe.Unit)
	}
	if pe.Value != "poisoned unit" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "pool_test") {
		t.Errorf("PanicError.Stack does not reach the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "unit 3 panicked") {
		t.Errorf("error text %q missing panic diagnosis", err.Error())
	}
}

// TestRunPanicIsFirstErrorWins pins that a panic participates in the
// lowest-numbered-failure collection like a plain error: both units
// are forced to run (a barrier holds each until the other is claimed)
// and the lower-numbered plain error wins over the panic.
func TestRunPanicIsFirstErrorWins(t *testing.T) {
	sentinel := errors.New("boom")
	var both sync.WaitGroup
	both.Add(2)
	err := Run(2, 2, func(u int) error {
		both.Done()
		both.Wait()
		if u == 0 {
			return fmt.Errorf("unit 0: %w", sentinel)
		}
		panic("higher-numbered panic")
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the lower-numbered plain error", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("higher-numbered panic won over lower-numbered error: %v", err)
	}
}

func TestRunStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	err := Run(10_000, 1, func(u int) error {
		ran.Add(1)
		if u == 0 {
			return errors.New("fail fast")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// A single worker sees the failure flag after at most one more
	// claim; the run must not have churned through all 10k units.
	if got := ran.Load(); got > 2 {
		t.Errorf("%d units ran after an immediate failure", got)
	}
}
