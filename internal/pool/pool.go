// Package pool provides the bounded worker pool shared by the
// parallel evaluation engine and the Monte-Carlo campaign runner:
// CPU-bound units are claimed off an atomic counter by a fixed set of
// goroutines, with first-error-wins cancellation and per-unit panic
// isolation (a panicking unit becomes a *PanicError instead of
// crashing the process).
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a unit panic converted into an error: one poisoned
// unit (a malformed trace, an algorithm bug on a rare input) fails its
// run with a diagnosable error instead of taking down the whole
// campaign process. It participates in first-error-wins collection
// like any other unit error.
type PanicError struct {
	// Unit is the unit number that panicked.
	Unit int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack, captured inside the
	// deferred recover so the panic site is on it.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: unit %d panicked: %v\n%s", e.Unit, e.Value, e.Stack)
}

// safeCall runs fn(unit), converting a panic into a *PanicError.
func safeCall(unit int, fn func(unit int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Unit: unit, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(unit)
}

// Run executes fn(0..n-1) on a bounded worker pool and returns the
// error of the lowest-numbered failing unit, or nil.
//
// workers caps the pool size; zero or negative means GOMAXPROCS (the
// units are CPU-bound, so more goroutines would only add scheduling
// churn). Units are claimed off a shared atomic counter; after any
// unit fails, workers stop claiming new units (first-error-wins
// cancellation) but in-flight units run to completion. Each unit
// writes only its own error slot, so the collection needs no lock,
// and callers that store per-unit results index by unit number to
// keep assembly deterministic regardless of completion order. A unit
// that panics is recovered into a *PanicError carrying the panic value
// and stack, and counts as that unit failing.
func Run(n, workers int, fn func(unit int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	next.Store(-1)
	errs := make([]error, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				unit := int(next.Add(1))
				if unit >= n || failed.Load() {
					return
				}
				if err := safeCall(unit, fn); err != nil {
					errs[unit] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
