package dash

import "fmt"

// Video is one title of the quality-assessment catalog (Table I), with
// the ITU-T P.910 spatial/temporal information attributes plotted in
// Fig. 2(a). Higher SpatialInfo means more in-frame detail; higher
// TemporalInfo means more motion between frames.
type Video struct {
	// Title is the catalog key ("Basketball").
	Title string
	// Genre describes the content per Table I.
	Genre string
	// SpatialInfo is the average SI metric.
	SpatialInfo float64
	// TemporalInfo is the average TI metric.
	TemporalInfo float64
	// DurationSec is the title's length for simulation purposes.
	DurationSec float64
}

// Complexity summarises how hard the title is to encode, normalised so
// a mid-complexity title is 1.0. It scales VBR segment sizes: detailed,
// fast-moving content produces larger segments at equal target bitrate.
func (v Video) Complexity() float64 {
	return 0.5*(v.SpatialInfo/45) + 0.5*(v.TemporalInfo/15)
}

// Catalog returns the ten test videos of Table I with SI/TI values
// matching the Fig. 2(a) scatter (axes: SI 30-60, TI 0-30).
func Catalog() []Video {
	return []Video{
		{Title: "Speech", Genre: "Speech on TV", SpatialInfo: 31, TemporalInfo: 2.5, DurationSec: 300},
		{Title: "Show", Genre: "Allen show", SpatialInfo: 42, TemporalInfo: 5, DurationSec: 300},
		{Title: "Doc", Genre: "Documentary", SpatialInfo: 46, TemporalInfo: 7, DurationSec: 300},
		{Title: "BBB", Genre: "Big Buck Bunny (animation)", SpatialInfo: 35, TemporalInfo: 13, DurationSec: 300},
		{Title: "Sintel", Genre: "Sintel (movie)", SpatialInfo: 38, TemporalInfo: 9, DurationSec: 300},
		{Title: "Matrix", Genre: "A fight scene in The Matrix (movie)", SpatialInfo: 48, TemporalInfo: 18, DurationSec: 300},
		{Title: "Battle", Genre: "A battle scene in The Hobbit (movie)", SpatialInfo: 52, TemporalInfo: 25, DurationSec: 300},
		{Title: "Basketball", Genre: "Sport", SpatialInfo: 57, TemporalInfo: 13, DurationSec: 300},
		{Title: "Yacht", Genre: "Moving yacht", SpatialInfo: 44, TemporalInfo: 27, DurationSec: 300},
		{Title: "Goodwood", Genre: "Horseracing", SpatialInfo: 59, TemporalInfo: 28, DurationSec: 300},
	}
}

// VideoByTitle returns the catalog entry with the given title.
func VideoByTitle(title string) (Video, error) {
	for _, v := range Catalog() {
		if v.Title == title {
			return v, nil
		}
	}
	return Video{}, fmt.Errorf("dash: unknown video %q", title)
}
