package dash

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The MPD types model the subset of ISO/IEC 23009-1 (MPEG-DASH Media
// Presentation Description) this library needs: one period, one video
// adaptation set, number-templated segments, one Representation per
// ladder rung. They round-trip through encoding/xml.

// MPD is the root manifest document.
type MPD struct {
	XMLName              xml.Name `xml:"MPD"`
	Xmlns                string   `xml:"xmlns,attr"`
	Type                 string   `xml:"type,attr"`
	MediaPresentationDur string   `xml:"mediaPresentationDuration,attr"`
	MinBufferTime        string   `xml:"minBufferTime,attr"`
	Period               Period   `xml:"Period"`
}

// Period is the single content period.
type Period struct {
	ID            string        `xml:"id,attr"`
	AdaptationSet AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet carries the video representations.
type AdaptationSet struct {
	MimeType        string              `xml:"mimeType,attr"`
	SegmentTemplate SegmentTemplate     `xml:"SegmentTemplate"`
	Representations []MPDRepresentation `xml:"Representation"`
}

// SegmentTemplate describes number-based segment addressing.
type SegmentTemplate struct {
	Media       string `xml:"media,attr"`
	Duration    int    `xml:"duration,attr"`  // in Timescale units
	Timescale   int    `xml:"timescale,attr"` // units per second
	StartNumber int    `xml:"startNumber,attr"`
}

// MPDRepresentation is one encoded rung.
type MPDRepresentation struct {
	ID        string `xml:"id,attr"`
	Bandwidth int    `xml:"bandwidth,attr"` // bits per second
	Width     int    `xml:"width,attr"`
	Height    int    `xml:"height,attr"`
}

// isoDuration renders seconds as an ISO-8601 duration (PT#S form).
func isoDuration(sec float64) string {
	return fmt.Sprintf("PT%.3fS", sec)
}

// parseISODuration parses the PT...S subset (optionally with H and M
// components) emitted by isoDuration and common packagers.
func parseISODuration(s string) (float64, error) {
	if !strings.HasPrefix(s, "PT") {
		return 0, fmt.Errorf("dash: unsupported duration %q", s)
	}
	rest := s[2:]
	var total float64
	for _, unit := range []struct {
		suffix string
		mult   float64
	}{{suffix: "H", mult: 3600}, {suffix: "M", mult: 60}, {suffix: "S", mult: 1}} {
		idx := strings.Index(rest, unit.suffix)
		if idx < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest[:idx], "%g", &v); err != nil {
			return 0, fmt.Errorf("dash: bad duration %q: %w", s, err)
		}
		total += v * unit.mult
		rest = rest[idx+1:]
	}
	if rest != "" {
		return 0, fmt.Errorf("dash: trailing duration content %q", rest)
	}
	return total, nil
}

// BuildMPD renders a manifest as an MPD document.
func BuildMPD(m *Manifest) (*MPD, error) {
	if m == nil {
		return nil, errors.New("dash: nil manifest")
	}
	const timescale = 1000
	reps := make([]MPDRepresentation, 0, len(m.Ladder()))
	for _, rep := range m.Ladder() {
		// IDs embed the rung index: resolution names alone collide on
		// dense ladders (the eval ladder has two 720p rungs).
		reps = append(reps, MPDRepresentation{
			ID:        fmt.Sprintf("v%d-%s", rep.Index, rep.Name),
			Bandwidth: int(math.Round(rep.BitrateMbps * 1e6)),
			Width:     rep.Width,
			Height:    rep.Height,
		})
	}
	return &MPD{
		Xmlns:                "urn:mpeg:dash:schema:mpd:2011",
		Type:                 "static",
		MediaPresentationDur: isoDuration(m.Video().DurationSec),
		MinBufferTime:        isoDuration(m.SegmentSec()),
		Period: Period{
			ID: "1",
			AdaptationSet: AdaptationSet{
				MimeType: "video/mp4",
				SegmentTemplate: SegmentTemplate{
					Media:       "seg/$RepresentationID$/$Number$.m4s",
					Duration:    int(math.Round(m.SegmentSec() * timescale)),
					Timescale:   timescale,
					StartNumber: 0,
				},
				Representations: reps,
			},
		},
	}, nil
}

// WriteMPD serialises the MPD as XML with a header.
func WriteMPD(w io.Writer, mpd *MPD) error {
	if mpd == nil {
		return errors.New("dash: nil MPD")
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return fmt.Errorf("dash: write header: %w", err)
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(mpd); err != nil {
		return fmt.Errorf("dash: encode mpd: %w", err)
	}
	return enc.Flush()
}

// ParseMPD reads an MPD document.
func ParseMPD(r io.Reader) (*MPD, error) {
	var mpd MPD
	if err := xml.NewDecoder(r).Decode(&mpd); err != nil {
		return nil, fmt.Errorf("dash: decode mpd: %w", err)
	}
	return &mpd, nil
}

// LadderFromMPD reconstructs the bitrate ladder from a parsed MPD,
// sorting representations by bandwidth (packagers do not guarantee
// order).
func LadderFromMPD(mpd *MPD) (Ladder, error) {
	ladder, _, err := ladderAndIDs(mpd)
	return ladder, err
}

// ladderAndIDs returns the ladder and the representation IDs aligned
// with it (ascending bandwidth).
func ladderAndIDs(mpd *MPD) (Ladder, []string, error) {
	if mpd == nil {
		return nil, nil, errors.New("dash: nil MPD")
	}
	reps := mpd.Period.AdaptationSet.Representations
	if len(reps) == 0 {
		return nil, nil, ErrEmptyLadder
	}
	sorted := make([]MPDRepresentation, len(reps))
	copy(sorted, reps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bandwidth < sorted[j].Bandwidth })
	bitrates := make([]float64, 0, len(sorted))
	ids := make([]string, 0, len(sorted))
	for _, r := range sorted {
		bitrates = append(bitrates, float64(r.Bandwidth)/1e6)
		ids = append(ids, r.ID)
	}
	ladder, err := NewLadder(bitrates)
	if err != nil {
		return nil, nil, err
	}
	return ladder, ids, nil
}

// MPDInfo summarises the stream parameters a client needs.
type MPDInfo struct {
	// DurationSec is the presentation duration.
	DurationSec float64
	// SegmentSec is the nominal segment duration.
	SegmentSec float64
	// SegmentCount is the number of segments.
	SegmentCount int
	// Ladder is the reconstructed bitrate ladder.
	Ladder Ladder
	// RepIDs are the representation IDs aligned with Ladder (ascending
	// bandwidth); clients use them to address segments.
	RepIDs []string
}

// InfoFromMPD extracts client parameters from a parsed MPD.
func InfoFromMPD(mpd *MPD) (MPDInfo, error) {
	ladder, ids, err := ladderAndIDs(mpd)
	if err != nil {
		return MPDInfo{}, err
	}
	dur, err := parseISODuration(mpd.MediaPresentationDur)
	if err != nil {
		return MPDInfo{}, err
	}
	st := mpd.Period.AdaptationSet.SegmentTemplate
	if st.Timescale <= 0 || st.Duration <= 0 {
		return MPDInfo{}, errors.New("dash: missing segment template timing")
	}
	segSec := float64(st.Duration) / float64(st.Timescale)
	count := int(math.Ceil(dur / segSec))
	return MPDInfo{
		DurationSec:  dur,
		SegmentSec:   segSec,
		SegmentCount: count,
		Ladder:       ladder,
		RepIDs:       ids,
	}, nil
}
