package dash

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func mpdManifest(t *testing.T) *Manifest {
	t.Helper()
	v, err := VideoByTitle("Sintel")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildMPD(t *testing.T) {
	mpd, err := BuildMPD(mpdManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	if mpd.Type != "static" {
		t.Errorf("Type = %q", mpd.Type)
	}
	reps := mpd.Period.AdaptationSet.Representations
	if len(reps) != 6 {
		t.Fatalf("representations = %d, want 6", len(reps))
	}
	if reps[0].Bandwidth != 100000 {
		t.Errorf("bottom bandwidth = %d, want 100000", reps[0].Bandwidth)
	}
	if reps[5].ID != "v5-1080p" || reps[5].Width != 1920 {
		t.Errorf("top rep = %+v", reps[5])
	}
	if _, err := BuildMPD(nil); err == nil {
		t.Error("nil manifest accepted")
	}
}

func TestMPDXMLRoundTrip(t *testing.T) {
	mpd, err := BuildMPD(mpdManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMPD(&buf, mpd); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<MPD", "urn:mpeg:dash:schema:mpd:2011", "Representation", "SegmentTemplate"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialised MPD missing %q", want)
		}
	}
	parsed, err := ParseMPD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Period.AdaptationSet.Representations) != 6 {
		t.Errorf("round-trip lost representations")
	}
	if parsed.MediaPresentationDur != mpd.MediaPresentationDur {
		t.Errorf("duration lost: %q vs %q", parsed.MediaPresentationDur, mpd.MediaPresentationDur)
	}
	if err := WriteMPD(&buf, nil); err == nil {
		t.Error("nil MPD accepted")
	}
}

func TestParseMPDMalformed(t *testing.T) {
	if _, err := ParseMPD(strings.NewReader("not xml")); err == nil {
		t.Error("malformed XML accepted")
	}
}

func TestLadderFromMPD(t *testing.T) {
	mpd, err := BuildMPD(mpdManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := LadderFromMPD(mpd)
	if err != nil {
		t.Fatal(err)
	}
	want := TableIILadder()
	if len(ladder) != len(want) {
		t.Fatalf("ladder size %d, want %d", len(ladder), len(want))
	}
	for i := range want {
		if math.Abs(ladder[i].BitrateMbps-want[i].BitrateMbps) > 1e-9 {
			t.Errorf("rung %d = %v, want %v", i, ladder[i].BitrateMbps, want[i].BitrateMbps)
		}
	}
	if _, err := LadderFromMPD(nil); err == nil {
		t.Error("nil MPD accepted")
	}
	empty := &MPD{}
	if _, err := LadderFromMPD(empty); err == nil {
		t.Error("empty MPD accepted")
	}
}

func TestInfoFromMPD(t *testing.T) {
	man := mpdManifest(t)
	mpd, err := BuildMPD(man)
	if err != nil {
		t.Fatal(err)
	}
	info, err := InfoFromMPD(mpd)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(info.DurationSec-man.Video().DurationSec) > 1e-3 {
		t.Errorf("DurationSec = %v, want %v", info.DurationSec, man.Video().DurationSec)
	}
	if math.Abs(info.SegmentSec-man.SegmentSec()) > 1e-3 {
		t.Errorf("SegmentSec = %v, want %v", info.SegmentSec, man.SegmentSec())
	}
	if info.SegmentCount != man.SegmentCount() {
		t.Errorf("SegmentCount = %d, want %d", info.SegmentCount, man.SegmentCount())
	}
	// Missing timing rejected.
	bad := *mpd
	bad.Period.AdaptationSet.SegmentTemplate.Timescale = 0
	if _, err := InfoFromMPD(&bad); err == nil {
		t.Error("missing timescale accepted")
	}
}

func TestParseISODuration(t *testing.T) {
	tests := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{in: "PT300.000S", want: 300},
		{in: "PT2.5S", want: 2.5},
		{in: "PT1H2M3S", want: 3723},
		{in: "PT5M", want: 300},
		{in: "300S", wantErr: true},
		{in: "PTxyzS", wantErr: true},
		{in: "PT3Sjunk", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseISODuration(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parse(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parse(%q): %v", tt.in, err)
			continue
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
