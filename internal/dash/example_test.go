package dash_test

import (
	"fmt"

	"ecavs/internal/dash"
)

// HighestBelow is the primitive every throughput-based ABR uses: the
// best rung the estimated bandwidth can sustain.
func ExampleLadder_HighestBelow() {
	ladder := dash.TableIILadder()
	for _, bw := range []float64{0.5, 2.0, 10.0} {
		rep := ladder.HighestBelow(bw)
		fmt.Printf("%.1f Mbps estimate -> %s (%.2f Mbps)\n", bw, rep.Name, rep.BitrateMbps)
	}
	// Output:
	// 0.5 Mbps estimate -> 240p (0.38 Mbps)
	// 2.0 Mbps estimate -> 480p (1.50 Mbps)
	// 10.0 Mbps estimate -> 1080p (5.80 Mbps)
}

// Manifests slice a video into segments whose sizes scale with content
// complexity.
func ExampleNewManifest() {
	video, _ := dash.VideoByTitle("Speech")
	m, _ := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{VBRJitter: 0})
	size, _ := m.SegmentSizeMB(0, 5) // first segment, 1080p rung
	fmt.Printf("%d segments, first 1080p segment %.3f MB\n", m.SegmentCount(), size)
	// Output:
	// 150 segments, first 1080p segment 0.620 MB
}
