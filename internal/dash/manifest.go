package dash

import (
	"errors"
	"math"
	"math/rand"
)

// DefaultSegmentSec is the paper's segment duration (Section V-A).
const DefaultSegmentSec = 2.0

// Manifest is the client's view of one encoded video: its ladder,
// segment duration, and per-segment payload sizes for every rung. Like
// a real VBR encode, a segment's size jitters around
// bitrate x duration, correlated across rungs (a complex scene is
// large at every bitrate).
//
// Construct with NewManifest; the zero value is unusable.
type Manifest struct {
	video      Video
	ladder     Ladder
	segmentSec float64
	// sizeMB[segIdx][rungIdx]
	sizeMB [][]float64
}

// ErrBadSegmentDuration is returned for non-positive segment durations.
var ErrBadSegmentDuration = errors.New("dash: segment duration must be positive")

// ManifestConfig tunes manifest generation.
type ManifestConfig struct {
	// SegmentSec is the segment duration (default DefaultSegmentSec).
	SegmentSec float64
	// VBRJitter is the relative standard deviation of per-segment size
	// around the nominal bitrate x duration (default 0.12). Zero
	// disables jitter; negative is an error.
	VBRJitter float64
	// Seed seeds the deterministic jitter stream.
	Seed int64
}

// ErrBadJitter is returned for negative VBR jitter.
var ErrBadJitter = errors.New("dash: VBR jitter must be non-negative")

// NewManifest cuts the video into segments over the given ladder.
func NewManifest(v Video, l Ladder, cfg ManifestConfig) (*Manifest, error) {
	if len(l) == 0 {
		return nil, ErrEmptyLadder
	}
	if cfg.SegmentSec == 0 {
		cfg.SegmentSec = DefaultSegmentSec
	}
	if cfg.SegmentSec < 0 {
		return nil, ErrBadSegmentDuration
	}
	if cfg.VBRJitter < 0 {
		return nil, ErrBadJitter
	}
	if v.DurationSec <= 0 {
		return nil, errors.New("dash: video duration must be positive")
	}

	n := int(math.Ceil(v.DurationSec / cfg.SegmentSec))
	rng := rand.New(rand.NewSource(cfg.Seed))
	complexity := v.Complexity()
	if complexity <= 0 {
		complexity = 1
	}

	sizes := make([][]float64, n)
	for seg := 0; seg < n; seg++ {
		dur := cfg.SegmentSec
		if rem := v.DurationSec - float64(seg)*cfg.SegmentSec; rem < dur {
			dur = rem
		}
		// One scene-complexity draw per segment, shared across rungs so
		// rung sizes stay ordered.
		jitter := 1.0
		if cfg.VBRJitter > 0 {
			jitter = math.Exp(rng.NormFloat64()*cfg.VBRJitter - cfg.VBRJitter*cfg.VBRJitter/2)
		}
		row := make([]float64, len(l))
		for ri, rep := range l {
			row[ri] = rep.BitrateMbps / 8 * dur * jitter * complexity
		}
		sizes[seg] = row
	}
	return &Manifest{video: v, ladder: l, segmentSec: cfg.SegmentSec, sizeMB: sizes}, nil
}

// Video returns the manifest's title metadata.
func (m *Manifest) Video() Video { return m.video }

// Ladder returns the manifest's bitrate ladder.
func (m *Manifest) Ladder() Ladder { return m.ladder }

// SegmentCount returns the number of segments.
func (m *Manifest) SegmentCount() int { return len(m.sizeMB) }

// SegmentSec returns the nominal segment duration.
func (m *Manifest) SegmentSec() float64 { return m.segmentSec }

// SegmentDuration returns the playback duration of segment seg (the
// final segment may be shorter).
func (m *Manifest) SegmentDuration(seg int) (float64, error) {
	if seg < 0 || seg >= len(m.sizeMB) {
		return 0, ErrNoSuchRung
	}
	dur := m.segmentSec
	if rem := m.video.DurationSec - float64(seg)*m.segmentSec; rem < dur {
		dur = rem
	}
	return dur, nil
}

// SegmentSizeMB returns the payload of segment seg at ladder rung rung.
func (m *Manifest) SegmentSizeMB(seg, rung int) (float64, error) {
	if seg < 0 || seg >= len(m.sizeMB) || rung < 0 || rung >= len(m.ladder) {
		return 0, ErrNoSuchRung
	}
	return m.sizeMB[seg][rung], nil
}

// SegmentSizes returns segment seg's payload per ladder rung, indexed
// by rung. The returned slice is the manifest's internal row: callers
// MUST treat it as read-only. It exists for per-segment hot paths
// (session replay, task observation) where copying k sizes per
// segment per session dominated the allocation profile.
func (m *Manifest) SegmentSizes(seg int) ([]float64, error) {
	if seg < 0 || seg >= len(m.sizeMB) {
		return nil, ErrNoSuchRung
	}
	return m.sizeMB[seg], nil
}

// TotalSizeMB returns the video's total payload when every segment is
// fetched at the given rung.
func (m *Manifest) TotalSizeMB(rung int) (float64, error) {
	if rung < 0 || rung >= len(m.ladder) {
		return 0, ErrNoSuchRung
	}
	var sum float64
	for _, row := range m.sizeMB {
		sum += row[rung]
	}
	return sum, nil
}
