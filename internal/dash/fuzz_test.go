package dash

import (
	"strings"
	"testing"
)

// ParseMPD and InfoFromMPD must tolerate arbitrary XML without
// panicking.
func FuzzParseMPD(f *testing.F) {
	valid := `<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static" mediaPresentationDuration="PT10S" minBufferTime="PT2S">
  <Period id="1">
    <AdaptationSet mimeType="video/mp4">
      <SegmentTemplate media="seg/$RepresentationID$/$Number$.m4s" duration="2000" timescale="1000" startNumber="0"></SegmentTemplate>
      <Representation id="a" bandwidth="100000" width="256" height="144"></Representation>
      <Representation id="b" bandwidth="500000" width="640" height="360"></Representation>
    </AdaptationSet>
  </Period>
</MPD>`
	f.Add(valid)
	f.Add("<MPD></MPD>")
	f.Add("not xml at all")
	f.Add("<MPD><Period><AdaptationSet><Representation bandwidth=\"-5\"/></AdaptationSet></Period></MPD>")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		mpd, err := ParseMPD(strings.NewReader(input))
		if err != nil {
			return
		}
		// Info derivation must also not panic; errors are fine.
		if info, err := InfoFromMPD(mpd); err == nil {
			if len(info.Ladder) == 0 || info.SegmentCount < 0 {
				t.Errorf("invalid info accepted from %q", input)
			}
		}
	})
}

func FuzzParseISODuration(f *testing.F) {
	for _, seed := range []string{"PT300S", "PT1H2M3S", "PT", "P1D", "", "PT-3S", "PTxS"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = parseISODuration(input)
	})
}
