// Package dash provides the DASH substrate the paper streams over: the
// resolution/bitrate ladder of Table II (and the denser fourteen-rung
// ladder of the Section V evaluation), the test-video catalog of
// Table I with its spatial/temporal information attributes (Fig. 2a),
// and per-segment manifests with variable-bitrate size jitter.
package dash

import (
	"errors"
	"fmt"
	"sort"
)

// Representation is one rung of a bitrate ladder.
type Representation struct {
	// Index is the rung's position in the ladder, ascending from 0.
	Index int
	// Name is the conventional resolution label ("480p").
	Name string
	// BitrateMbps is the encoded bitrate.
	BitrateMbps float64
	// Width and Height are the frame dimensions (informational).
	Width, Height int
}

// Ladder is an ascending list of representations.
type Ladder []Representation

// Errors returned by ladder construction and lookup.
var (
	ErrEmptyLadder    = errors.New("dash: empty ladder")
	ErrUnsortedLadder = errors.New("dash: ladder bitrates must be strictly ascending and positive")
	ErrNoSuchRung     = errors.New("dash: no such rung")
)

// NewLadder builds a ladder from ascending bitrates, assigning indices
// and resolution-style names.
func NewLadder(bitratesMbps []float64) (Ladder, error) {
	if len(bitratesMbps) == 0 {
		return nil, ErrEmptyLadder
	}
	l := make(Ladder, len(bitratesMbps))
	prev := 0.0
	for i, r := range bitratesMbps {
		if r <= prev {
			return nil, ErrUnsortedLadder
		}
		prev = r
		w, h, name := resolutionFor(r)
		l[i] = Representation{Index: i, Name: name, BitrateMbps: r, Width: w, Height: h}
	}
	return l, nil
}

// resolutionFor maps a bitrate to the nearest conventional resolution
// (Table II's pairing).
func resolutionFor(mbps float64) (w, h int, name string) {
	switch {
	case mbps >= 5.0:
		return 1920, 1080, "1080p"
	case mbps >= 2.3:
		return 1280, 720, "720p"
	case mbps >= 1.2:
		return 854, 480, "480p"
	case mbps >= 0.6:
		return 640, 360, "360p"
	case mbps >= 0.3:
		return 426, 240, "240p"
	default:
		return 256, 144, "144p"
	}
}

// TableIILadder returns the paper's six-rung resolution ladder
// (Table II).
func TableIILadder() Ladder {
	l, err := NewLadder([]float64{0.1, 0.375, 0.75, 1.5, 3.0, 5.8})
	if err != nil {
		panic("dash: TableIILadder construction: " + err.Error())
	}
	return l
}

// EvalLadder returns the fourteen-rung ladder of the Section V-A
// simulation setup.
func EvalLadder() Ladder {
	l, err := NewLadder([]float64{0.1, 0.2, 0.24, 0.375, 0.55, 0.75, 1.0, 1.5, 2.3, 2.56, 3.0, 3.6, 4.3, 5.8})
	if err != nil {
		panic("dash: EvalLadder construction: " + err.Error())
	}
	return l
}

// Lowest returns the ladder's bottom rung.
func (l Ladder) Lowest() Representation { return l[0] }

// Highest returns the ladder's top rung.
func (l Ladder) Highest() Representation { return l[len(l)-1] }

// Rung returns the representation at the given index.
func (l Ladder) Rung(index int) (Representation, error) {
	if index < 0 || index >= len(l) {
		return Representation{}, fmt.Errorf("%w: index %d of %d", ErrNoSuchRung, index, len(l))
	}
	return l[index], nil
}

// HighestBelow returns the highest rung whose bitrate does not exceed
// mbps, falling back to the bottom rung when every rung exceeds it.
func (l Ladder) HighestBelow(mbps float64) Representation {
	best := l[0]
	for _, r := range l {
		if r.BitrateMbps <= mbps {
			best = r
		}
	}
	return best
}

// Nearest returns the rung whose bitrate is closest to mbps.
func (l Ladder) Nearest(mbps float64) Representation {
	best := l[0]
	bestDiff := abs(l[0].BitrateMbps - mbps)
	for _, r := range l[1:] {
		if d := abs(r.BitrateMbps - mbps); d < bestDiff {
			best, bestDiff = r, d
		}
	}
	return best
}

// Bitrates returns the ladder's bitrates as a fresh slice.
func (l Ladder) Bitrates() []float64 {
	out := make([]float64, len(l))
	for i, r := range l {
		out[i] = r.BitrateMbps
	}
	return out
}

// IndexOfBitrate returns the rung index carrying the given bitrate.
func (l Ladder) IndexOfBitrate(mbps float64) (int, error) {
	i := sort.Search(len(l), func(i int) bool { return l[i].BitrateMbps >= mbps })
	if i < len(l) && l[i].BitrateMbps == mbps {
		return i, nil
	}
	return 0, fmt.Errorf("%w: bitrate %v", ErrNoSuchRung, mbps)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
