package dash

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewLadderValidation(t *testing.T) {
	if _, err := NewLadder(nil); !errors.Is(err, ErrEmptyLadder) {
		t.Errorf("empty: err = %v, want ErrEmptyLadder", err)
	}
	if _, err := NewLadder([]float64{1, 1}); !errors.Is(err, ErrUnsortedLadder) {
		t.Errorf("duplicate: err = %v, want ErrUnsortedLadder", err)
	}
	if _, err := NewLadder([]float64{2, 1}); !errors.Is(err, ErrUnsortedLadder) {
		t.Errorf("descending: err = %v, want ErrUnsortedLadder", err)
	}
	if _, err := NewLadder([]float64{0, 1}); !errors.Is(err, ErrUnsortedLadder) {
		t.Errorf("zero rung: err = %v, want ErrUnsortedLadder", err)
	}
}

func TestTableIILadder(t *testing.T) {
	l := TableIILadder()
	wantRates := []float64{0.1, 0.375, 0.75, 1.5, 3.0, 5.8}
	wantNames := []string{"144p", "240p", "360p", "480p", "720p", "1080p"}
	if len(l) != len(wantRates) {
		t.Fatalf("len = %d, want %d", len(l), len(wantRates))
	}
	for i, r := range l {
		if r.BitrateMbps != wantRates[i] {
			t.Errorf("rung %d bitrate = %v, want %v", i, r.BitrateMbps, wantRates[i])
		}
		if r.Name != wantNames[i] {
			t.Errorf("rung %d name = %q, want %q", i, r.Name, wantNames[i])
		}
		if r.Index != i {
			t.Errorf("rung %d Index = %d", i, r.Index)
		}
	}
}

func TestEvalLadderMatchesPaper(t *testing.T) {
	l := EvalLadder()
	want := []float64{0.1, 0.2, 0.24, 0.375, 0.55, 0.75, 1.0, 1.5, 2.3, 2.56, 3.0, 3.6, 4.3, 5.8}
	if len(l) != 14 {
		t.Fatalf("len = %d, want 14 (Section V-A)", len(l))
	}
	for i, r := range l {
		if r.BitrateMbps != want[i] {
			t.Errorf("rung %d = %v, want %v", i, r.BitrateMbps, want[i])
		}
	}
}

func TestLowestHighestRung(t *testing.T) {
	l := TableIILadder()
	if l.Lowest().BitrateMbps != 0.1 {
		t.Errorf("Lowest = %v, want 0.1", l.Lowest().BitrateMbps)
	}
	if l.Highest().BitrateMbps != 5.8 {
		t.Errorf("Highest = %v, want 5.8", l.Highest().BitrateMbps)
	}
	r, err := l.Rung(3)
	if err != nil || r.BitrateMbps != 1.5 {
		t.Errorf("Rung(3) = %v, %v; want 1.5", r.BitrateMbps, err)
	}
	if _, err := l.Rung(-1); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("Rung(-1) err = %v, want ErrNoSuchRung", err)
	}
	if _, err := l.Rung(6); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("Rung(6) err = %v, want ErrNoSuchRung", err)
	}
}

func TestHighestBelow(t *testing.T) {
	l := TableIILadder()
	tests := []struct {
		mbps float64
		want float64
	}{
		{mbps: 10, want: 5.8},
		{mbps: 5.8, want: 5.8},
		{mbps: 5.0, want: 3.0},
		{mbps: 1.49, want: 0.75},
		{mbps: 0.05, want: 0.1}, // below everything: bottom rung
		{mbps: 0, want: 0.1},
	}
	for _, tt := range tests {
		if got := l.HighestBelow(tt.mbps); got.BitrateMbps != tt.want {
			t.Errorf("HighestBelow(%v) = %v, want %v", tt.mbps, got.BitrateMbps, tt.want)
		}
	}
}

// HighestBelow never exceeds the request unless the request is below
// the whole ladder.
func TestHighestBelowProperty(t *testing.T) {
	l := EvalLadder()
	f := func(raw uint16) bool {
		mbps := float64(raw%800) / 100 // 0 .. 8
		got := l.HighestBelow(mbps)
		if mbps >= l.Lowest().BitrateMbps {
			return got.BitrateMbps <= mbps
		}
		return got.Index == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearest(t *testing.T) {
	l := TableIILadder()
	tests := []struct {
		mbps, want float64
	}{
		{mbps: 0.11, want: 0.1},
		{mbps: 2.0, want: 1.5},
		{mbps: 2.4, want: 3.0},
		{mbps: 100, want: 5.8},
	}
	for _, tt := range tests {
		if got := l.Nearest(tt.mbps); got.BitrateMbps != tt.want {
			t.Errorf("Nearest(%v) = %v, want %v", tt.mbps, got.BitrateMbps, tt.want)
		}
	}
}

func TestBitratesCopies(t *testing.T) {
	l := TableIILadder()
	b := l.Bitrates()
	b[0] = 999
	if l[0].BitrateMbps == 999 {
		t.Error("Bitrates aliases the ladder")
	}
}

func TestIndexOfBitrate(t *testing.T) {
	l := EvalLadder()
	i, err := l.IndexOfBitrate(1.5)
	if err != nil || i != 7 {
		t.Errorf("IndexOfBitrate(1.5) = %d, %v; want 7", i, err)
	}
	if _, err := l.IndexOfBitrate(1.6); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("unknown bitrate err = %v, want ErrNoSuchRung", err)
	}
}

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d titles, want 10 (Table I)", len(cat))
	}
	seen := make(map[string]bool, len(cat))
	for _, v := range cat {
		if seen[v.Title] {
			t.Errorf("duplicate title %q", v.Title)
		}
		seen[v.Title] = true
		// Fig. 2(a) axes: SI within [30, 60], TI within [0, 30].
		if v.SpatialInfo < 30 || v.SpatialInfo > 60 {
			t.Errorf("%s SI = %v outside Fig. 2a range", v.Title, v.SpatialInfo)
		}
		if v.TemporalInfo < 0 || v.TemporalInfo > 30 {
			t.Errorf("%s TI = %v outside Fig. 2a range", v.Title, v.TemporalInfo)
		}
		if v.DurationSec <= 0 {
			t.Errorf("%s has non-positive duration", v.Title)
		}
		if v.Complexity() <= 0 {
			t.Errorf("%s has non-positive complexity", v.Title)
		}
	}
	// Speech (talking head) must be the least complex; Goodwood
	// (horseracing) among the most complex.
	speech, _ := VideoByTitle("Speech")
	goodwood, _ := VideoByTitle("Goodwood")
	if speech.Complexity() >= goodwood.Complexity() {
		t.Error("Speech should be less complex than Goodwood")
	}
}

func TestVideoByTitle(t *testing.T) {
	v, err := VideoByTitle("Matrix")
	if err != nil || v.Title != "Matrix" {
		t.Errorf("VideoByTitle = %+v, %v", v, err)
	}
	if _, err := VideoByTitle("Nope"); err == nil {
		t.Error("expected error for unknown title")
	}
}

func TestNewManifestValidation(t *testing.T) {
	v, _ := VideoByTitle("BBB")
	if _, err := NewManifest(v, nil, ManifestConfig{}); !errors.Is(err, ErrEmptyLadder) {
		t.Errorf("nil ladder err = %v, want ErrEmptyLadder", err)
	}
	if _, err := NewManifest(v, TableIILadder(), ManifestConfig{SegmentSec: -1}); !errors.Is(err, ErrBadSegmentDuration) {
		t.Errorf("negative segment err = %v, want ErrBadSegmentDuration", err)
	}
	if _, err := NewManifest(v, TableIILadder(), ManifestConfig{VBRJitter: -0.1}); !errors.Is(err, ErrBadJitter) {
		t.Errorf("negative jitter err = %v, want ErrBadJitter", err)
	}
	bad := v
	bad.DurationSec = 0
	if _, err := NewManifest(bad, TableIILadder(), ManifestConfig{}); err == nil {
		t.Error("expected error for zero-duration video")
	}
}

func TestManifestSegmentation(t *testing.T) {
	v := Video{Title: "T", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 11}
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{SegmentSec: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.SegmentCount() != 6 {
		t.Errorf("SegmentCount = %d, want 6 (11 s / 2 s, rounded up)", m.SegmentCount())
	}
	d0, err := m.SegmentDuration(0)
	if err != nil || d0 != 2 {
		t.Errorf("SegmentDuration(0) = %v, %v; want 2", d0, err)
	}
	dLast, err := m.SegmentDuration(5)
	if err != nil || math.Abs(dLast-1) > 1e-9 {
		t.Errorf("SegmentDuration(5) = %v, %v; want 1 (trailing partial)", dLast, err)
	}
	if _, err := m.SegmentDuration(6); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("out-of-range err = %v, want ErrNoSuchRung", err)
	}
}

func TestManifestSizesOrderedAcrossRungs(t *testing.T) {
	v, _ := VideoByTitle("Battle")
	m, err := NewManifest(v, EvalLadder(), ManifestConfig{Seed: 5, VBRJitter: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < m.SegmentCount(); seg++ {
		prev := -1.0
		for rung := 0; rung < len(m.Ladder()); rung++ {
			size, err := m.SegmentSizeMB(seg, rung)
			if err != nil {
				t.Fatal(err)
			}
			if size <= prev {
				t.Fatalf("segment %d sizes not ascending across rungs", seg)
			}
			prev = size
		}
	}
}

func TestManifestSizesNominalWithoutJitter(t *testing.T) {
	v := Video{Title: "Flat", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 10}
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := v.Complexity()
	size, err := m.SegmentSizeMB(0, 3) // 1.5 Mbps, 2 s
	if err != nil {
		t.Fatal(err)
	}
	want := 1.5 / 8 * 2 * c
	if math.Abs(size-want) > 1e-9 {
		t.Errorf("size = %v, want %v (nominal x complexity)", size, want)
	}
}

func TestManifestJitterIsUnbiased(t *testing.T) {
	v := Video{Title: "J", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 4000}
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{Seed: 3, VBRJitter: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	total, err := m.TotalSizeMB(5) // 5.8 Mbps
	if err != nil {
		t.Fatal(err)
	}
	want := 5.8 / 8 * 4000 * v.Complexity()
	if math.Abs(total-want)/want > 0.02 {
		t.Errorf("total = %.1f MB, want within 2%% of %.1f MB", total, want)
	}
}

func TestManifestErrors(t *testing.T) {
	v, _ := VideoByTitle("BBB")
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SegmentSizeMB(-1, 0); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("bad seg err = %v", err)
	}
	if _, err := m.SegmentSizeMB(0, 99); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("bad rung err = %v", err)
	}
	if _, err := m.TotalSizeMB(99); !errors.Is(err, ErrNoSuchRung) {
		t.Errorf("bad total rung err = %v", err)
	}
}

func TestManifestDeterministicBySeed(t *testing.T) {
	v, _ := VideoByTitle("Sintel")
	m1, _ := NewManifest(v, EvalLadder(), ManifestConfig{Seed: 9})
	m2, _ := NewManifest(v, EvalLadder(), ManifestConfig{Seed: 9})
	for seg := 0; seg < m1.SegmentCount(); seg++ {
		s1, _ := m1.SegmentSizeMB(seg, 7)
		s2, _ := m2.SegmentSizeMB(seg, 7)
		if s1 != s2 {
			t.Fatal("manifests with equal seeds diverged")
		}
	}
}

func TestManifestAccessors(t *testing.T) {
	v, _ := VideoByTitle("Show")
	m, err := NewManifest(v, TableIILadder(), ManifestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Video().Title != "Show" {
		t.Error("Video() lost metadata")
	}
	if len(m.Ladder()) != 6 {
		t.Error("Ladder() lost rungs")
	}
	if m.SegmentSec() != DefaultSegmentSec {
		t.Errorf("SegmentSec = %v, want default", m.SegmentSec())
	}
}
