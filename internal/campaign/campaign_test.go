package campaign

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/netsim"
	"ecavs/internal/pool"
	"ecavs/internal/power"
	"ecavs/internal/trace"
)

// testTraces generates two short session contexts (cheap enough that
// the determinism test can afford dozens of replays).
func testTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	rate := power.EvalModel().NominalThroughputMBps
	specs := []trace.Spec{
		{ID: 1, Name: "short-bus", LengthSec: 60, DataSizeMB: 20, TargetVibration: 6.5,
			SignalMeanDBm: -106, SignalVolatilityDB: 3, SignalSwingDB: 5,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 11},
		{ID: 2, Name: "short-train", LengthSec: 80, DataSizeMB: 27, TargetVibration: 2.5,
			SignalMeanDBm: -95, SignalVolatilityDB: 1.5, SignalSwingDB: 2,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 12},
	}
	out := make([]*trace.Trace, 0, len(specs))
	for _, s := range specs {
		tr, err := trace.Generate(s, rate)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

// panicAlgorithm panics on its Nth decision — a stand-in for an
// algorithm bug triggered by one rare trace configuration.
type panicAlgorithm struct {
	abr.Fixed
	decisions, panicAt int
}

func (p *panicAlgorithm) Name() string { return "panicky" }

func (p *panicAlgorithm) ChooseRung(ctx abr.Context) (int, error) {
	p.decisions++
	if p.decisions == p.panicAt {
		panic("scripted algorithm panic")
	}
	return p.Fixed.ChooseRung(ctx)
}

// TestRunSurvivesPanickingSession is the satellite contract: one
// poisoned session unit must fail the campaign with a typed, diagnosable
// error — not crash the process that is running 10k other sessions.
func TestRunSurvivesPanickingSession(t *testing.T) {
	cfg := Config{
		Traces:   testTraces(t),
		Sessions: 16,
		Seed:     7,
		Shards:   4,
		Algorithms: []AlgorithmSpec{
			{Name: "Youtube", New: func() (abr.Algorithm, error) { return abr.NewYoutube(), nil }},
			{Name: "panicky", New: func() (abr.Algorithm, error) {
				return &panicAlgorithm{Fixed: abr.Fixed{Rung: 0}, panicAt: 3}, nil
			}},
		},
	}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("campaign with a panicking algorithm returned nil error")
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a wrapped *pool.PanicError", err)
	}
	if pe.Value != "scripted algorithm panic" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
}

func TestRunDeterministic(t *testing.T) {
	traces := testTraces(t)
	cfg := Config{
		Traces:          traces,
		Sessions:        24,
		Seed:            7,
		Shards:          4,
		AbandonProb:     0.3,
		VibrationJitter: 0.25,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (Seed, Shards) produced different results:\n%+v\nvs\n%+v", a, b)
	}
}

// With failure injection enabled the campaign must stay a pure
// function of (Config, Seed, Shards): same inputs, bit-identical
// aggregates — including the outage counters.
func TestRunDeterministicWithOutages(t *testing.T) {
	traces := testTraces(t)
	cfg := Config{
		Traces:          traces,
		Sessions:        24,
		Seed:            9,
		Shards:          4,
		AbandonProb:     0.2,
		VibrationJitter: 0.25,
		OutageProb:      0.7,
		Outage:          netsim.OutageConfig{MeanUpSec: 20, MeanDownSec: 5, DownRateFrac: 0.05, SignalDropDB: 12},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (Seed, Shards) with outages produced different results:\n%+v\nvs\n%+v", a, b)
	}
	var hit, total int64
	for _, s := range a.Algorithms {
		hit += s.OutageSessions
		total += s.Outages
	}
	if hit == 0 || total == 0 {
		t.Errorf("outage prob 0.7 over 24 sessions injected nothing (%d sessions hit, %d outages)", hit, total)
	}
}

// Enabling outages must not perturb sessions that the gate leaves
// untouched: with OutageProb 0 the result is bit-identical to a config
// that never mentions outages at all.
func TestRunOutageProbZeroIsInert(t *testing.T) {
	traces := testTraces(t)
	base := Config{Traces: traces, Sessions: 16, Seed: 7, Shards: 2, AbandonProb: 0.3, VibrationJitter: 0.25}
	withCfg := base
	withCfg.Outage = netsim.OutageConfig{MeanUpSec: 10, MeanDownSec: 5}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(withCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("an unused outage config changed campaign results")
	}
}

func TestRunShardCountPreservesMoments(t *testing.T) {
	traces := testTraces(t)
	base := Config{Traces: traces, Sessions: 16, Seed: 3, AbandonProb: 0.5, VibrationJitter: 0.2}

	one := base
	one.Shards = 1
	four := base
	four.Shards = 4
	a, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	// The session set is identical (draws depend only on Seed and the
	// session index), so exact moments must agree up to merge-order
	// float rounding. Percentiles are shard-dependent estimates and are
	// not compared.
	for i := range a.Algorithms {
		sa, sb := a.Algorithms[i], b.Algorithms[i]
		if sa.Sessions != sb.Sessions || sa.Abandoned != sb.Abandoned {
			t.Errorf("%s: counts differ across shard counts: %+v vs %+v", sa.Name, sa, sb)
		}
		pairs := [][2]Dist{
			{sa.EnergyJ, sb.EnergyJ}, {sa.QoE, sb.QoE},
			{sa.RebufferSec, sb.RebufferSec}, {sa.Switches, sb.Switches},
		}
		for _, p := range pairs {
			if rel := math.Abs(p[0].Mean - p[1].Mean); rel > 1e-9*(1+math.Abs(p[0].Mean)) {
				t.Errorf("%s: mean differs across shard counts: %v vs %v", sa.Name, p[0].Mean, p[1].Mean)
			}
			if p[0].Min != p[1].Min || p[0].Max != p[1].Max {
				t.Errorf("%s: min/max differ across shard counts", sa.Name)
			}
		}
	}
}

func TestRunRoundRobinCounts(t *testing.T) {
	traces := testTraces(t)
	res, err := Run(Config{Traces: traces, Sessions: 10, Seed: 1, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Algorithms) != 4 {
		t.Fatalf("got %d algorithms, want the 4 defaults", len(res.Algorithms))
	}
	var total int64
	for i, s := range res.Algorithms {
		want := int64(10 / 4)
		if i < 10%4 {
			want++
		}
		if s.Sessions != want {
			t.Errorf("%s ran %d sessions, want %d", s.Name, s.Sessions, want)
		}
		total += s.Sessions
	}
	if total != 10 {
		t.Errorf("total sessions %d, want 10", total)
	}
}

func TestRunAbandonmentCertain(t *testing.T) {
	traces := testTraces(t)
	// ThresholdSec 5 keeps the download paced close to playback, so
	// every session's playback reaches its quit point while the
	// download loop is still live (with the default 30 s threshold a
	// short video can be fully buffered before the viewer quits, which
	// the simulator reports as a completed session).
	res, err := Run(Config{Traces: traces, Sessions: 8, Seed: 5, Shards: 2, AbandonProb: 1, ThresholdSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Algorithms {
		if s.Abandoned != s.Sessions {
			t.Errorf("%s: %d of %d sessions abandoned, want all", s.Name, s.Abandoned, s.Sessions)
		}
	}
}

func TestRunValidation(t *testing.T) {
	traces := testTraces(t)
	cases := []Config{
		{Traces: traces}, // no sessions
		{Sessions: 4},    // no traces
		{Traces: traces, Sessions: 4, AbandonProb: 1.5},   // bad probability
		{Traces: traces, Sessions: 4, VibrationJitter: 1}, // bad jitter
		{Traces: traces, Sessions: 4, OutageProb: -0.1},   // bad outage probability
		{Traces: traces, Sessions: 4, OutageProb: 0.5, // bad outage process
			Outage: netsim.OutageConfig{MeanUpSec: -1, MeanDownSec: 2}},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
}
