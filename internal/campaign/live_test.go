package campaign

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"ecavs/internal/telemetry"
)

// TestRunLiveIsInert pins the observability contract at campaign
// scale: attaching a Live publisher must leave the aggregate result
// bit-identical — telemetry observes, it never steers.
func TestRunLiveIsInert(t *testing.T) {
	traces := testTraces(t)
	cfg := Config{
		Traces:          traces,
		Sessions:        24,
		Seed:            7,
		Shards:          4,
		AbandonProb:     0.3,
		VibrationJitter: 0.25,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	live := NewLive(telemetry.NewRegistry())
	cfg.Live = live
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("live telemetry changed campaign results:\nplain    = %+v\nobserved = %+v", plain, observed)
	}

	if got := live.Completed(); got != 24 {
		t.Errorf("live completed = %d, want 24", got)
	}
	if got := live.Target(); got != 24 {
		t.Errorf("live target = %d, want 24", got)
	}

	// The per-algorithm running means must converge to the exact
	// aggregate means (same additions, different summation order).
	for ai, summary := range observed.Algorithms {
		a := &live.algos[ai]
		if a.name != summary.Name {
			t.Fatalf("algo %d name mismatch: %s vs %s", ai, a.name, summary.Name)
		}
		if got := a.sessions.Value(); got != summary.Sessions {
			t.Errorf("%s: live sessions = %d, aggregate %d", a.name, got, summary.Sessions)
		}
		if got := a.qoeMean.Value(); math.Abs(got-summary.QoE.Mean) > 1e-9*(1+math.Abs(got)) {
			t.Errorf("%s: live QoE mean %v, aggregate %v", a.name, got, summary.QoE.Mean)
		}
		if got := a.energyJ.Value(); math.Abs(got-summary.EnergyJ.Mean) > 1e-9*(1+math.Abs(got)) {
			t.Errorf("%s: live energy mean %v, aggregate %v", a.name, got, summary.EnergyJ.Mean)
		}
	}
}

// TestLiveExposition scrapes the registry after a run: the acceptance
// series (sessions completed, per-algorithm QoE and energy) must be
// present in parseable Prometheus text.
func TestLiveExposition(t *testing.T) {
	traces := testTraces(t)
	live := NewLive(nil) // private registry — the -progress-only path
	if _, err := Run(Config{Traces: traces, Sessions: 8, Seed: 3, Shards: 2, Live: live}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := live.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, want := range []string{
		"campaign_sessions_completed_total 8",
		"campaign_sessions_target 8",
		"# TYPE campaign_qoe_mean gauge",
		`campaign_qoe_mean{algorithm="Ours"}`,
		`campaign_energy_j_mean{algorithm="FESTIVE"}`,
		`campaign_algorithm_sessions_total{algorithm="Youtube"}`,
		"campaign_sessions_per_sec",
		"campaign_eta_seconds",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestLiveNilIsNoOp covers the disabled path explicitly: nil Live
// methods must be safe and zero-valued.
func TestLiveNilIsNoOp(t *testing.T) {
	var l *Live
	l.init(nil, 0)
	l.observe(0, nil)
	if l.Completed() != 0 || l.Target() != 0 || l.SessionsPerSec() != 0 || l.ETASec() != 0 || l.Registry() != nil {
		t.Error("nil Live reported state")
	}
}
