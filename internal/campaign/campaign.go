// Package campaign runs Monte-Carlo fleets of streaming sessions: N
// seeded session configurations (trace × algorithm × viewer-context
// draws) sharded across a bounded worker pool, with results folded
// into O(1)-memory streaming aggregates instead of being retained per
// session. It is the scale layer above internal/sim — a million
// sessions cost a million session replays but constant memory.
package campaign

import (
	"errors"
	"fmt"
	"runtime"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/player"
	"ecavs/internal/pool"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/stats"
	"ecavs/internal/trace"
)

// AlgorithmSpec names an ABR policy and builds fresh instances of it.
// Each session gets its own instance (algorithms carry mutable
// estimator state and must not be shared across concurrent replays).
type AlgorithmSpec struct {
	Name string
	New  func() (abr.Algorithm, error)
}

// DefaultAlgorithms returns the campaign's standard policy set: the
// three baselines plus the paper's online algorithm at the given
// objective weight. The offline Optimal planner is deliberately
// absent — it needs a per-trace plan precomputation that does not
// amortize across random viewer-context draws.
func DefaultAlgorithms(pm power.Model, qm qoe.Model, alpha float64) ([]AlgorithmSpec, error) {
	obj, err := core.NewObjective(alpha, pm, qm)
	if err != nil {
		return nil, err
	}
	return []AlgorithmSpec{
		{Name: "Youtube", New: func() (abr.Algorithm, error) { return abr.NewYoutube(), nil }},
		{Name: "FESTIVE", New: func() (abr.Algorithm, error) { return abr.NewFESTIVE(), nil }},
		{Name: "BBA", New: func() (abr.Algorithm, error) { return abr.NewBBA() }},
		{Name: "Ours", New: func() (abr.Algorithm, error) { return core.NewOnline(obj), nil }},
	}, nil
}

// Config describes a campaign.
type Config struct {
	// Traces are the session contexts sessions draw from (uniformly,
	// per-session seeded). Required.
	Traces []*trace.Trace
	// Ladder is the encoding ladder (default dash.EvalLadder).
	Ladder dash.Ladder
	// Algorithms are the compared policies; sessions cycle through them
	// round-robin so every policy sees the same number of sessions
	// (default DefaultAlgorithms at core.DefaultAlpha).
	Algorithms []AlgorithmSpec
	// Sessions is the total session count across all algorithms.
	Sessions int
	// Seed makes the whole campaign reproducible: session u's draws
	// come from an independent generator derived from (Seed, u), so
	// results are identical for a fixed (Seed, Shards) regardless of
	// scheduling.
	Seed int64
	// Shards is the worker count; sessions are assigned statically
	// (session u belongs to shard u mod Shards) and shard aggregates
	// merge in shard order, which is what keeps a run deterministic.
	// Zero means GOMAXPROCS. Percentile estimates (and float rounding
	// in the merged means) depend on the shard count, so pin Shards
	// when comparing runs across machines.
	Shards int
	// AbandonProb is the per-session probability of an early quit; an
	// abandoning viewer leaves uniformly between 10% and 90% of the
	// video.
	AbandonProb float64
	// VibrationJitter scales each session's sensed vibration by a
	// uniform draw in [1-j, 1+j] — the viewer-context spread (pocket vs
	// hand vs mount) that a single recorded trace cannot supply.
	VibrationJitter float64
	// OutageProb is the per-session probability of a seeded outage
	// process being overlaid on the link (tunnels and dead zones the
	// recorded trace did not capture). Zero disables outage draws
	// entirely, leaving the per-session random streams — and therefore
	// all previous campaign results — unchanged.
	OutageProb float64
	// Outage parameterises the outage process for affected sessions;
	// its Seed field is ignored (each session draws its own from the
	// campaign stream). The zero value means netsim.DefaultOutage().
	Outage netsim.OutageConfig
	// Power and QoE are the models (defaults power.EvalModel,
	// qoe.Default).
	Power power.Model
	QoE   qoe.Model
	// ThresholdSec is the buffer threshold beta (default
	// player.DefaultBufferThresholdSec).
	ThresholdSec float64
	// Live, when non-nil, receives one observation per finished session
	// for live telemetry (see NewLive). It never feeds back into the
	// simulation: results stay bit-identical with or without it, and a
	// nil Live costs the hot path a single pointer comparison.
	Live *Live
}

// Dist summarizes one metric's distribution over a campaign. P50 and
// P95 come from per-shard P² estimators merged by count-weighted
// average — a streaming approximation, converging as sessions grow.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// AlgoSummary is one policy's aggregate outcome. OutageSessions counts
// sessions that hit at least one injected outage, Outages the total
// outage count, and OutageSec the per-session down time distribution
// (over all sessions, outage-free ones contributing zero).
type AlgoSummary struct {
	Name           string `json:"name"`
	Sessions       int64  `json:"sessions"`
	Abandoned      int64  `json:"abandoned"`
	OutageSessions int64  `json:"outage_sessions"`
	Outages        int64  `json:"outages"`
	EnergyJ        Dist   `json:"energy_j"`
	QoE            Dist   `json:"qoe"`
	RebufferSec    Dist   `json:"rebuffer_sec"`
	Switches       Dist   `json:"switches"`
	OutageSec      Dist   `json:"outage_sec"`
}

// Result is a campaign's full outcome. Memory is O(algorithms), not
// O(sessions).
//
// WallSec and SessionsPerSec are timing annotations for tooling
// (cmd/campaign fills them in for its -json output); Run itself leaves
// them zero so its result stays a pure function of (Config, Seed,
// Shards) — the determinism tests DeepEqual entire Results.
type Result struct {
	Sessions   int           `json:"sessions"`
	Seed       int64         `json:"seed"`
	Shards     int           `json:"shards"`
	Algorithms []AlgoSummary `json:"algorithms"`

	WallSec        float64 `json:"wall_sec,omitempty"`
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
}

// metricAgg streams one metric: exact moments plus two quantile
// markers.
type metricAgg struct {
	acc      stats.Accumulator
	p50, p95 *stats.P2
}

func newMetricAgg() metricAgg {
	return metricAgg{p50: stats.NewP2(0.50), p95: stats.NewP2(0.95)}
}

func (m *metricAgg) add(x float64) {
	m.acc.Add(x)
	m.p50.Add(x)
	m.p95.Add(x)
}

// algoAgg is one shard's aggregate for one policy.
type algoAgg struct {
	energy, qoe, rebuf, switches, outageSec metricAgg
	abandoned                               int64
	outageSessions, outages                 int64
}

func newShardAgg(algos int) []algoAgg {
	aggs := make([]algoAgg, algos)
	for i := range aggs {
		aggs[i] = algoAgg{
			energy:    newMetricAgg(),
			qoe:       newMetricAgg(),
			rebuf:     newMetricAgg(),
			switches:  newMetricAgg(),
			outageSec: newMetricAgg(),
		}
	}
	return aggs
}

func (a *algoAgg) observe(m *sim.Metrics) {
	a.energy.add(m.TotalJ())
	a.qoe.add(m.MeanQoE)
	a.rebuf.add(m.RebufferSec)
	a.switches.add(float64(m.Switches))
	a.outageSec.add(m.OutageSec)
	if m.Abandoned {
		a.abandoned++
	}
	if m.OutageCount > 0 {
		a.outageSessions++
		a.outages += int64(m.OutageCount)
	}
}

// sessionState derives session u's independent generator state from
// the campaign seed (splitmix64 finalizer over seed + u·gamma, so
// neighbouring sessions land in unrelated stream positions).
func sessionState(seed int64, u int) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(u+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniformRNG is the campaign's draw stream (splitmix64, matching the
// power monitor's generator).
type uniformRNG struct{ state uint64 }

func (r *uniformRNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

func (r *uniformRNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Run executes the campaign and returns its aggregate result.
func Run(cfg Config) (*Result, error) {
	if cfg.Sessions <= 0 {
		return nil, errors.New("campaign: Sessions must be positive")
	}
	if len(cfg.Traces) == 0 {
		return nil, errors.New("campaign: no traces")
	}
	if cfg.AbandonProb < 0 || cfg.AbandonProb > 1 {
		return nil, errors.New("campaign: AbandonProb outside [0, 1]")
	}
	if cfg.VibrationJitter < 0 || cfg.VibrationJitter >= 1 {
		return nil, errors.New("campaign: VibrationJitter outside [0, 1)")
	}
	if cfg.OutageProb < 0 || cfg.OutageProb > 1 {
		return nil, errors.New("campaign: OutageProb outside [0, 1]")
	}
	outageCfg := cfg.Outage
	if outageCfg == (netsim.OutageConfig{}) {
		outageCfg = netsim.DefaultOutage()
	}
	if cfg.OutageProb > 0 {
		if err := outageCfg.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	pm := cfg.Power
	if pm == (power.Model{}) {
		pm = power.EvalModel()
	}
	qm := cfg.QoE
	if qm == (qoe.Model{}) {
		qm = qoe.Default()
	}
	ladder := cfg.Ladder
	if len(ladder) == 0 {
		ladder = dash.EvalLadder()
	}
	algos := cfg.Algorithms
	if len(algos) == 0 {
		var err error
		if algos, err = DefaultAlgorithms(pm, qm, core.DefaultAlpha); err != nil {
			return nil, err
		}
	}
	threshold := cfg.ThresholdSec
	if threshold <= 0 {
		threshold = player.DefaultBufferThresholdSec
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > cfg.Sessions {
		shards = cfg.Sessions
	}

	// Manifests and compiled traces are derived once per trace and
	// shared read-only across all sessions: every shard hands the same
	// immutable *trace.Compiled (prefix-summed vibration, shared link
	// points) to its sessions, so the compile cost is amortized over
	// the whole campaign. One QoE rung table covers every session —
	// all manifests share the ladder. trace.CompileStats exposes the
	// amortization to the telemetry gauges.
	manifests := make([]*dash.Manifest, len(cfg.Traces))
	compiled := make([]*trace.Compiled, len(cfg.Traces))
	for i, tr := range cfg.Traces {
		man, err := sim.ManifestForTrace(tr, ladder)
		if err != nil {
			return nil, fmt.Errorf("campaign: trace %d manifest: %w", tr.ID, err)
		}
		manifests[i] = man
		if compiled[i], err = tr.Compiled(); err != nil {
			return nil, fmt.Errorf("campaign: trace %d compile: %w", tr.ID, err)
		}
	}
	rungQoE := qm.CompileRungs(ladder.Bitrates())

	cfg.Live.init(algos, cfg.Sessions)

	shardAggs := make([][]algoAgg, shards)
	err := pool.Run(shards, shards, func(shard int) error {
		aggs := newShardAgg(len(algos))
		shardAggs[shard] = aggs
		for u := shard; u < cfg.Sessions; u += shards {
			rng := uniformRNG{state: sessionState(cfg.Seed, u)}
			ai := u % len(algos)
			// Fixed draw order keeps the stream layout documented:
			// trace, abandon gate, abandon point, vibration scale, then —
			// only when outages are enabled — outage gate and outage seed.
			// Gating the extra draws on OutageProb keeps every pre-outage
			// configuration's results bit-identical.
			ti := int(rng.Float64() * float64(len(cfg.Traces)))
			if ti >= len(cfg.Traces) {
				ti = len(cfg.Traces) - 1
			}
			abandonGate := rng.Float64()
			abandonFrac := rng.Float64()
			vibFrac := rng.Float64()
			outageGate := 1.0
			var outageSeed uint64
			if cfg.OutageProb > 0 {
				outageGate = rng.Float64()
				outageSeed = rng.Uint64()
			}

			alg, err := algos[ai].New()
			if err != nil {
				return fmt.Errorf("campaign: session %d %s: %w", u, algos[ai].Name, err)
			}
			ses := sim.TraceSession{
				Trace:         cfg.Traces[ti],
				Compiled:      compiled[ti],
				SessionParams: sim.SessionParams{MetricsOnly: true, RungQoE: rungQoE},
				Manifest:      manifests[ti],
				Algorithm:     alg,
				Power:         pm,
				QoE:           qm,
				ThresholdSec:  threshold,
			}
			if abandonGate < cfg.AbandonProb {
				ses.AbandonAtSec = (0.1 + 0.8*abandonFrac) * cfg.Traces[ti].LengthSec
			}
			if j := cfg.VibrationJitter; j > 0 {
				ses.VibrationScale = 1 + j*(2*vibFrac-1)
			}
			if outageGate < cfg.OutageProb {
				oc := outageCfg
				oc.Seed = int64(outageSeed)
				ses.Outage = &oc
			}
			m, err := ses.Run()
			if err != nil {
				return fmt.Errorf("campaign: session %d %s on trace %d: %w", u, algos[ai].Name, cfg.Traces[ti].ID, err)
			}
			aggs[ai].observe(m)
			cfg.Live.observe(ai, m)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{Sessions: cfg.Sessions, Seed: cfg.Seed, Shards: shards}
	for ai, spec := range algos {
		var (
			energy, qoeAcc, rebuf, switches, outageSec stats.Accumulator
			abandoned, outageSessions, outages         int64
		)
		perShard := func(pick func(*algoAgg) *metricAgg) (p50, p95 float64) {
			var s50, s95 float64
			var n int64
			for _, aggs := range shardAggs {
				m := pick(&aggs[ai])
				if c := m.p50.N(); c > 0 {
					s50 += m.p50.Value() * float64(c)
					s95 += m.p95.Value() * float64(c)
					n += c
				}
			}
			if n == 0 {
				return 0, 0
			}
			return s50 / float64(n), s95 / float64(n)
		}
		for _, aggs := range shardAggs {
			a := &aggs[ai]
			energy.Merge(a.energy.acc)
			qoeAcc.Merge(a.qoe.acc)
			rebuf.Merge(a.rebuf.acc)
			switches.Merge(a.switches.acc)
			outageSec.Merge(a.outageSec.acc)
			abandoned += a.abandoned
			outageSessions += a.outageSessions
			outages += a.outages
		}
		dist := func(acc *stats.Accumulator, pick func(*algoAgg) *metricAgg) Dist {
			p50, p95 := perShard(pick)
			return Dist{Mean: acc.Mean(), Std: acc.StdDev(), Min: acc.Min(), Max: acc.Max(), P50: p50, P95: p95}
		}
		res.Algorithms = append(res.Algorithms, AlgoSummary{
			Name:           spec.Name,
			Sessions:       energy.N(),
			Abandoned:      abandoned,
			OutageSessions: outageSessions,
			Outages:        outages,
			EnergyJ:        dist(&energy, func(a *algoAgg) *metricAgg { return &a.energy }),
			QoE:            dist(&qoeAcc, func(a *algoAgg) *metricAgg { return &a.qoe }),
			RebufferSec:    dist(&rebuf, func(a *algoAgg) *metricAgg { return &a.rebuf }),
			Switches:       dist(&switches, func(a *algoAgg) *metricAgg { return &a.switches }),
			OutageSec:      dist(&outageSec, func(a *algoAgg) *metricAgg { return &a.outageSec }),
		})
	}
	return res, nil
}
