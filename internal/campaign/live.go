package campaign

import (
	"sync/atomic"
	"time"

	"ecavs/internal/sim"
	"ecavs/internal/telemetry"
	"ecavs/internal/trace"
)

// Live publishes a running campaign's progress as telemetry: live
// session counts, throughput, ETA, and per-algorithm running means of
// QoE and energy. Attach one to Config.Live and scrape the registry
// while Run is in flight — the campaign stops being a black box
// without giving up determinism (observation never touches the
// per-session random streams, pinned by TestRunLiveIsInert).
//
// The observation hot path is a handful of atomic adds per session;
// with Config.Live nil the campaign runner pays a single pointer
// comparison, keeping the disabled path bit-identical and
// allocation-free.
type Live struct {
	reg *telemetry.Registry

	completed *telemetry.Counter
	abandoned *telemetry.Counter
	target    *telemetry.Gauge

	// startNanos and baseline anchor the throughput window to the
	// latest Run (a Live survives reuse; counters accumulate).
	startNanos atomic.Int64
	baseline   atomic.Int64
	targetN    atomic.Int64

	algos []liveAlgo
}

// liveAlgo tracks one policy's running aggregates. The struct embeds
// atomics, so the slice is allocated once and never copied.
type liveAlgo struct {
	name      string
	sessions  *telemetry.Counter
	qoeSum    telemetry.Gauge // unregistered accumulators feeding the means
	energySum telemetry.Gauge
	qoeMean   *telemetry.Gauge
	energyJ   *telemetry.Gauge
}

// NewLive returns a live-progress publisher registering its series in
// reg. A nil reg gets a private registry — the accessor methods
// (Completed, SessionsPerSec, ETASec) still work, which is what a
// progress printer without a metrics endpoint needs.
func NewLive(reg *telemetry.Registry) *Live {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	l := &Live{
		reg: reg,
		completed: reg.Counter("campaign_sessions_completed_total",
			"Sessions finished so far across all algorithms."),
		abandoned: reg.Counter("campaign_sessions_abandoned_total",
			"Sessions whose viewer quit early."),
		target: reg.Gauge("campaign_sessions_target",
			"Total sessions this campaign will run."),
	}
	reg.GaugeFunc("campaign_sessions_per_sec",
		"Completion throughput since the campaign started.", l.SessionsPerSec)
	reg.GaugeFunc("campaign_eta_seconds",
		"Estimated seconds until the campaign completes.", l.ETASec)
	// Compiled-trace amortization (process-wide): a healthy campaign
	// compiles once per distinct trace while hits grow with sessions.
	reg.GaugeFunc("campaign_trace_compiles_total",
		"Trace compilations performed process-wide (one per distinct trace).",
		func() float64 {
			compiles, _ := trace.CompileStats()
			return float64(compiles)
		})
	reg.GaugeFunc("campaign_trace_compile_hits_total",
		"Compiled-trace cache hits process-wide (sessions reusing a shared compilation).",
		func() float64 {
			_, hits := trace.CompileStats()
			return float64(hits)
		})
	return l
}

// Registry returns the registry the live series are registered in.
func (l *Live) Registry() *telemetry.Registry {
	if l == nil {
		return nil
	}
	return l.reg
}

// init re-anchors the publisher to a starting campaign: target size,
// per-algorithm series, and the throughput window.
func (l *Live) init(algos []AlgorithmSpec, sessions int) {
	if l == nil {
		return
	}
	qoeVec := l.reg.GaugeVec("campaign_qoe_mean",
		"Running mean per-session QoE, by algorithm.", "algorithm")
	energyVec := l.reg.GaugeVec("campaign_energy_j_mean",
		"Running mean per-session energy in joules, by algorithm.", "algorithm")
	sessionsVec := l.reg.CounterVec("campaign_algorithm_sessions_total",
		"Sessions finished, by algorithm.", "algorithm")
	l.algos = make([]liveAlgo, len(algos))
	for i, spec := range algos {
		l.algos[i].name = spec.Name
		l.algos[i].sessions = sessionsVec.With(spec.Name)
		l.algos[i].qoeMean = qoeVec.With(spec.Name)
		l.algos[i].energyJ = energyVec.With(spec.Name)
	}
	l.target.Set(float64(sessions))
	l.targetN.Store(int64(sessions))
	l.baseline.Store(l.completed.Value())
	l.startNanos.Store(time.Now().UnixNano())
}

// observe folds one finished session into the live aggregates. Safe
// for concurrent use from every shard; a nil receiver is a no-op.
func (l *Live) observe(ai int, m *sim.Metrics) {
	if l == nil {
		return
	}
	l.completed.Inc()
	if m.Abandoned {
		l.abandoned.Inc()
	}
	a := &l.algos[ai]
	a.sessions.Inc()
	a.qoeSum.Add(m.MeanQoE)
	a.energySum.Add(m.TotalJ())
	// Running means recomputed from the atomic sums; concurrent writers
	// race benignly (last write wins, each internally consistent enough
	// for a dashboard — the exact distributions come from Result).
	if n := float64(a.sessions.Value()); n > 0 {
		a.qoeMean.Set(a.qoeSum.Value() / n)
		a.energyJ.Set(a.energySum.Value() / n)
	}
}

// Completed reports sessions finished since the Live was created.
func (l *Live) Completed() int64 {
	if l == nil {
		return 0
	}
	return l.completed.Value()
}

// Target reports the current campaign's total session count.
func (l *Live) Target() int64 {
	if l == nil {
		return 0
	}
	return l.targetN.Load()
}

// SessionsPerSec reports completion throughput since the current
// campaign started (zero before any session finishes).
func (l *Live) SessionsPerSec() float64 {
	if l == nil {
		return 0
	}
	elapsed := time.Duration(time.Now().UnixNano() - l.startNanos.Load()).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(l.completed.Value()-l.baseline.Load()) / elapsed
}

// ETASec estimates seconds to completion from the current throughput
// (zero once done or before throughput is measurable).
func (l *Live) ETASec() float64 {
	if l == nil {
		return 0
	}
	rate := l.SessionsPerSec()
	if rate <= 0 {
		return 0
	}
	remaining := float64(l.targetN.Load() - (l.completed.Value() - l.baseline.Load()))
	if remaining <= 0 {
		return 0
	}
	return remaining / rate
}
