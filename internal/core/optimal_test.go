package core

import (
	"errors"
	"math"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/power"
	"ecavs/internal/trace"
)

func smallLadder(t *testing.T) dash.Ladder {
	t.Helper()
	l, err := dash.NewLadder([]float64{0.5, 1.5, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func makeTasks(n int, ladder dash.Ladder) []TaskObservation {
	tasks := make([]TaskObservation, n)
	for i := range tasks {
		sizes := make([]float64, len(ladder))
		for j, r := range ladder {
			sizes[j] = r.BitrateMbps / 8 * 2
		}
		vib := 0.3
		sig := -90.0
		if i%2 == 1 {
			vib = 6.5
			sig = -110
		}
		tasks[i] = TaskObservation{
			SizesMB:       sizes,
			DurationSec:   2,
			SignalDBm:     sig,
			BandwidthMbps: 20,
			Vibration:     vib,
			BufferSec:     30,
		}
	}
	return tasks
}

func TestPlanOptimalValidation(t *testing.T) {
	obj := testObjective(t, 0.5)
	ladder := smallLadder(t)
	if _, err := PlanOptimal(obj, ladder, nil); !errors.Is(err, ErrNoTasks) {
		t.Errorf("err = %v, want ErrNoTasks", err)
	}
	if _, err := PlanOptimal(obj, nil, makeTasks(2, ladder)); !errors.Is(err, dash.ErrEmptyLadder) {
		t.Errorf("err = %v, want ErrEmptyLadder", err)
	}
	bad := makeTasks(2, ladder)
	bad[1].SizesMB = bad[1].SizesMB[:1]
	if _, err := PlanOptimal(obj, ladder, bad); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("err = %v, want ErrSizeMismatch", err)
	}
}

// planCost evaluates a fixed rung sequence under the same per-task
// costs the planner uses.
func planCost(t *testing.T, obj Objective, ladder dash.Ladder, tasks []TaskObservation, rungs []int) float64 {
	t.Helper()
	bitrates := ladder.Bitrates()
	var total float64
	for i, task := range tasks {
		base := Candidate{
			DurationSec:   task.DurationSec,
			SignalDBm:     task.SignalDBm,
			BandwidthMbps: task.BandwidthMbps,
			BufferSec:     task.BufferSec,
			Vibration:     task.Vibration,
		}
		if i > 0 {
			base.PrevBitrateMbps = bitrates[rungs[i-1]]
		}
		costs, _, err := obj.ScoreRungs(base, bitrates, task.SizesMB)
		if err != nil {
			t.Fatal(err)
		}
		total += costs[rungs[i]]
	}
	return total
}

func TestPlanOptimalMatchesBruteForce(t *testing.T) {
	obj := testObjective(t, 0.5)
	ladder := smallLadder(t)
	tasks := makeTasks(5, ladder)
	plan, err := PlanOptimalWith(obj, ladder, tasks, PlanConfig{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rungs) != 5 {
		t.Fatalf("plan length = %d, want 5", len(plan.Rungs))
	}
	// Brute force over 3^5 sequences.
	k := len(ladder)
	best := math.Inf(1)
	var bestSeq []int
	seq := make([]int, len(tasks))
	var rec func(i int)
	rec = func(i int) {
		if i == len(tasks) {
			if c := planCost(t, obj, ladder, tasks, seq); c < best {
				best = c
				bestSeq = append([]int(nil), seq...)
			}
			return
		}
		for j := 0; j < k; j++ {
			seq[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	if math.Abs(plan.TotalCost-best) > 1e-9 {
		t.Errorf("plan cost %v != brute force %v (plan %v, brute %v)",
			plan.TotalCost, best, plan.Rungs, bestSeq)
	}
	if got := planCost(t, obj, ladder, tasks, plan.Rungs); math.Abs(got-plan.TotalCost) > 1e-9 {
		t.Errorf("reported cost %v != recomputed %v", plan.TotalCost, got)
	}
}

// The optimal plan never costs more than any fixed-rung plan — the
// paper's "performance upper bound" property.
func TestPlanOptimalDominatesFixedPlans(t *testing.T) {
	obj := testObjective(t, 0.5)
	ladder := smallLadder(t)
	tasks := makeTasks(12, ladder)
	plan, err := PlanOptimalWith(obj, ladder, tasks, PlanConfig{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < len(ladder); j++ {
		fixed := make([]int, len(tasks))
		for i := range fixed {
			fixed[i] = j
		}
		if c := planCost(t, obj, ladder, tasks, fixed); plan.TotalCost > c+1e-9 {
			t.Errorf("optimal cost %v exceeds fixed rung %d cost %v", plan.TotalCost, j, c)
		}
	}
}

// Context-awareness shows up in the plan: vibrating weak-signal tasks
// get lower rungs than quiet strong-signal ones.
func TestPlanOptimalContextSensitivity(t *testing.T) {
	obj := testObjective(t, 0.5)
	ladder := smallLadder(t)
	tasks := makeTasks(20, ladder)
	plan, err := PlanOptimalWith(obj, ladder, tasks, PlanConfig{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	var quietSum, vibSum, quietN, vibN float64
	for i, r := range plan.Rungs {
		if i%2 == 0 {
			quietSum += float64(r)
			quietN++
		} else {
			vibSum += float64(r)
			vibN++
		}
	}
	if vibSum/vibN > quietSum/quietN {
		t.Errorf("vibrating tasks got higher rungs (%.2f) than quiet ones (%.2f)",
			vibSum/vibN, quietSum/quietN)
	}
}

func TestObserveTasks(t *testing.T) {
	pm := power.EvalModel()
	traces, err := trace.GenerateTableV(pm.NominalThroughputMBps)
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	video := dash.Video{Title: "trace1", SpatialInfo: 45, TemporalInfo: 15, DurationSec: tr.LengthSec}
	m, err := dash.NewManifest(video, dash.EvalLadder(), dash.ManifestConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := ObserveTasks(tr, m, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != m.SegmentCount() {
		t.Fatalf("tasks = %d, want %d", len(tasks), m.SegmentCount())
	}
	for i, task := range tasks {
		if len(task.SizesMB) != 14 {
			t.Fatalf("task %d has %d sizes", i, len(task.SizesMB))
		}
		if task.BandwidthMbps <= 0 {
			t.Errorf("task %d bandwidth = %v", i, task.BandwidthMbps)
		}
		if task.SignalDBm > -80 || task.SignalDBm < -120 {
			t.Errorf("task %d signal = %v out of range", i, task.SignalDBm)
		}
		if task.BufferSec != 30 {
			t.Errorf("task %d buffer = %v, want 30", i, task.BufferSec)
		}
	}
	// Vibration on a bus trace should be mostly high.
	var vibSum float64
	for _, task := range tasks[3:] {
		vibSum += task.Vibration
	}
	if avg := vibSum / float64(len(tasks)-3); avg < 4 {
		t.Errorf("avg task vibration = %.2f, want bus-like (>= 4)", avg)
	}
}

func TestObserveTasksErrors(t *testing.T) {
	if _, err := ObserveTasks(nil, nil, 30, 6); err == nil {
		t.Error("nil inputs accepted")
	}
	bad := &trace.Trace{}
	video := dash.Video{Title: "x", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 10}
	m, err := dash.NewManifest(video, dash.EvalLadder(), dash.ManifestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ObserveTasks(bad, m, 30, 6); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestPlannedAlgorithm(t *testing.T) {
	plan := Plan{Rungs: []int{2, 0, 1}}
	p := NewPlannedAlgorithm("Optimal", plan)
	if p.Name() != "Optimal" {
		t.Errorf("Name = %q", p.Name())
	}
	for i, want := range plan.Rungs {
		got, err := p.ChooseRung(abr.Context{SegmentIndex: i})
		if err != nil || got != want {
			t.Errorf("segment %d rung = %d, %v; want %d", i, got, err, want)
		}
	}
	if _, err := p.ChooseRung(abr.Context{SegmentIndex: 3}); !errors.Is(err, ErrPlanExhausted) {
		t.Errorf("err = %v, want ErrPlanExhausted", err)
	}
	if _, err := p.ChooseRung(abr.Context{SegmentIndex: -1}); !errors.Is(err, ErrPlanExhausted) {
		t.Errorf("err = %v, want ErrPlanExhausted", err)
	}
	p.ObserveDownload(5) // no-ops must not panic
	p.Reset()
	// The plan is copied, not aliased.
	plan.Rungs[0] = 9
	got, err := p.ChooseRung(abr.Context{SegmentIndex: 0})
	if err != nil || got != 2 {
		t.Errorf("aliasing: rung = %d, want 2", got)
	}
}
