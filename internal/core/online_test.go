package core

import (
	"errors"
	"math/rand"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
)

// onlineCtx builds a context over the eval ladder with nominal sizes.
func onlineCtx(mut func(*abr.Context)) abr.Context {
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, r := range ladder {
		sizes[i] = r.BitrateMbps / 8 * 2
	}
	ctx := abr.Context{
		SegmentIndex:       10,
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		PrevRung:           -1,
		BufferSec:          25,
		BufferThresholdSec: 30,
		SignalDBm:          -100,
		VibrationLevel:     5,
	}
	if mut != nil {
		mut(&ctx)
	}
	return ctx
}

func newOnline(t *testing.T) *Online {
	t.Helper()
	return NewOnline(testObjective(t, DefaultAlpha))
}

func TestOnlineName(t *testing.T) {
	if got := newOnline(t).Name(); got != "Ours" {
		t.Errorf("Name = %q, want Ours", got)
	}
}

func TestOnlineStartupAtBottom(t *testing.T) {
	o := newOnline(t)
	rung, err := o.ChooseRung(onlineCtx(nil))
	if err != nil || rung != 0 {
		t.Errorf("startup rung = %d, %v; want 0", rung, err)
	}
	// Even with an estimate, PrevRung = -1 keeps startup at the bottom.
	o.ObserveDownload(20)
	rung, err = o.ChooseRung(onlineCtx(nil))
	if err != nil || rung != 0 {
		t.Errorf("first-segment rung = %d, %v; want 0", rung, err)
	}
}

func TestOnlineGradualIncrease(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(30)
	// Quiet, strong-signal context: the reference is well above the
	// bottom, but the step is one rung at a time.
	ctx := onlineCtx(func(c *abr.Context) {
		c.PrevRung = 0
		c.SignalDBm = -88
		c.VibrationLevel = 0.2
	})
	rung, err := o.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rung != 1 {
		t.Errorf("rung = %d, want 1 (gradual increase)", rung)
	}
}

func TestOnlineClimbsToReference(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(40)
	prev := 0
	var last int
	for i := 0; i < 20; i++ {
		ctx := onlineCtx(func(c *abr.Context) {
			c.PrevRung = prev
			c.SignalDBm = -88
			c.VibrationLevel = 0.2
		})
		rung, err := o.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rung > prev+1 {
			t.Fatalf("jumped %d -> %d", prev, rung)
		}
		prev = rung
		last = rung
		o.ObserveDownload(40)
	}
	// Converged rung must be meaningfully above the bottom and below
	// the forced top (context-aware tradeoff).
	if last < 4 {
		t.Errorf("converged rung = %d, want >= 4 in a strong quiet context", last)
	}
}

func TestOnlineStepsDownUnderVibration(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(15)
	// Previous at the top; vibrating weak-signal context wants less.
	ctx := onlineCtx(func(c *abr.Context) {
		c.PrevRung = 13
		c.SignalDBm = -112
		c.VibrationLevel = 6.8
	})
	rung, err := o.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rung >= 13 {
		t.Errorf("rung = %d, want a decrease from 13", rung)
	}
	// With a healthy buffer the drop is the adjacent feasible rung,
	// not a crash to the reference.
	if rung < 10 {
		t.Errorf("rung = %d, dropped too aggressively with a 25 s buffer", rung)
	}
}

func TestOnlineDropsToReferenceWhenBufferStarved(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(1.0) // ~1 Mbps estimate
	ctx := onlineCtx(func(c *abr.Context) {
		c.PrevRung = 13
		c.BufferSec = 0.01 // nothing buffered: no rung can finish in time
		c.SignalDBm = -112
		c.VibrationLevel = 6.8
	})
	rung, err := o.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// No rung in (ref, prev] downloads within 0.01 s, so the algorithm
	// falls straight to the reference.
	refCtx := onlineCtx(func(c *abr.Context) {
		c.PrevRung = 13
		c.BufferSec = 0.01
		c.SignalDBm = -112
		c.VibrationLevel = 6.8
	})
	_ = refCtx
	if rung > 5 {
		t.Errorf("rung = %d, want the (low) reference under 1 Mbps", rung)
	}
}

func TestOnlineHoldsAtReference(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(15)
	// Find the reference by walking down from the top until stable.
	prev := 13
	for i := 0; i < 20; i++ {
		ctx := onlineCtx(func(c *abr.Context) {
			c.PrevRung = prev
			c.SignalDBm = -110
			c.VibrationLevel = 6.5
		})
		rung, err := o.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rung == prev {
			return // reached and held the reference
		}
		prev = rung
		o.ObserveDownload(15)
	}
	t.Error("never stabilised at the reference rung")
}

func TestOnlineErrors(t *testing.T) {
	o := newOnline(t)
	if _, err := o.ChooseRung(abr.Context{}); !errors.Is(err, abr.ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
	o.ObserveDownload(10)
	ctx := onlineCtx(func(c *abr.Context) {
		c.PrevRung = 3
		c.SegmentSizesMB = []float64{1} // wrong length
	})
	if _, err := o.ChooseRung(ctx); !errors.Is(err, ErrNoSizes) {
		t.Errorf("err = %v, want ErrNoSizes", err)
	}
}

func TestOnlineReset(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(10)
	o.Reset()
	rung, err := o.ChooseRung(onlineCtx(func(c *abr.Context) { c.PrevRung = 5 }))
	if err != nil || rung != 0 {
		t.Errorf("rung after Reset = %d, %v; want 0 (no estimate)", rung, err)
	}
}

func TestOnlinePrevRungClamped(t *testing.T) {
	o := newOnline(t)
	o.ObserveDownload(10)
	ctx := onlineCtx(func(c *abr.Context) { c.PrevRung = 99 })
	if _, err := o.ChooseRung(ctx); err != nil {
		t.Errorf("out-of-range PrevRung not tolerated: %v", err)
	}
}

func TestOnlineWithCustomEstimator(t *testing.T) {
	o := NewOnline(testObjective(t, DefaultAlpha), WithEstimator(netsim.NewEWMAEstimator(0.5)))
	o.ObserveDownload(20)
	ctx := onlineCtx(func(c *abr.Context) { c.PrevRung = 0 })
	rung, err := o.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rung != 1 {
		t.Errorf("rung = %d, want 1", rung)
	}
	// Nil estimator option is ignored.
	o2 := NewOnline(testObjective(t, DefaultAlpha), WithEstimator(nil))
	if _, err := o2.ChooseRung(onlineCtx(nil)); err != nil {
		t.Errorf("nil estimator broke the default: %v", err)
	}
}

// Cross-check: with gradual switching disabled, the online algorithm's
// choice must equal the direct argmin of its own objective, for random
// contexts.
func TestOnlineDirectMatchesScoreRungs(t *testing.T) {
	obj := testObjective(t, DefaultAlpha)
	rng := rand.New(rand.NewSource(71))
	ladder := dash.EvalLadder()
	for trial := 0; trial < 200; trial++ {
		bw := rng.Float64()*40 + 0.5
		o := NewOnline(obj, WithDirectReference())
		o.ObserveDownload(bw)
		ctx := onlineCtx(func(c *abr.Context) {
			c.PrevRung = rng.Intn(len(ladder))
			c.BufferSec = rng.Float64() * 30
			c.SignalDBm = -90 - rng.Float64()*25
			c.VibrationLevel = rng.Float64() * 7
		})
		got, err := o.ChooseRung(ctx)
		if err != nil {
			t.Fatal(err)
		}
		base := Candidate{
			DurationSec:     ctx.SegmentDurationSec,
			SignalDBm:       ctx.SignalDBm,
			BandwidthMbps:   bw,
			BufferSec:       ctx.BufferSec,
			Vibration:       ctx.VibrationLevel,
			PrevBitrateMbps: ladder[ctx.PrevRung].BitrateMbps,
		}
		costs, _, err := obj.ScoreRungs(base, ladder.Bitrates(), ctx.SegmentSizesMB)
		if err != nil {
			t.Fatal(err)
		}
		if want := ArgminCost(costs); got != want {
			t.Fatalf("trial %d: direct choice %d != argmin %d", trial, got, want)
		}
	}
}
