package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testObjective(t *testing.T, alpha float64) Objective {
	t.Helper()
	obj, err := NewObjective(alpha, power.EvalModel(), qoe.Default())
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestNewObjectiveValidation(t *testing.T) {
	if _, err := NewObjective(-0.1, power.Default(), qoe.Default()); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("err = %v, want ErrBadAlpha", err)
	}
	if _, err := NewObjective(1.1, power.Default(), qoe.Default()); !errors.Is(err, ErrBadAlpha) {
		t.Errorf("err = %v, want ErrBadAlpha", err)
	}
	badP := power.Default()
	badP.BasePowerW = -1
	if _, err := NewObjective(0.5, badP, qoe.Default()); err == nil {
		t.Error("invalid power model accepted")
	}
	badQ := qoe.Default()
	badQ.C1 = 0
	if _, err := NewObjective(0.5, power.Default(), badQ); err == nil {
		t.Error("invalid qoe model accepted")
	}
}

func TestEstimateComposition(t *testing.T) {
	obj := testObjective(t, 0.5)
	c := Candidate{
		BitrateMbps:   3.0,
		SizeMB:        0.75,
		DurationSec:   2,
		SignalDBm:     -95,
		BandwidthMbps: 20,
		BufferSec:     30,
		Vibration:     4,
	}
	est := obj.Estimate(c)
	if est.EnergyJ <= 0 {
		t.Errorf("EnergyJ = %v, want > 0", est.EnergyJ)
	}
	if est.QoE < qoe.MinQuality || est.QoE > qoe.MaxQuality {
		t.Errorf("QoE = %v escapes scale", est.QoE)
	}
	if est.RebufferSec != 0 {
		t.Errorf("RebufferSec = %v, want 0 (ample buffer)", est.RebufferSec)
	}
	// Starved buffer predicts a stall and both models see it.
	c.BandwidthMbps = 0.5
	c.BufferSec = 1
	est2 := obj.Estimate(c)
	if est2.RebufferSec <= 0 {
		t.Error("expected predicted rebuffering")
	}
	if est2.QoE >= est.QoE {
		t.Error("stall did not hurt QoE")
	}
	if est2.EnergyJ <= est.EnergyJ {
		t.Error("stall did not cost energy")
	}
}

func TestCostWeighting(t *testing.T) {
	ref := Estimate{EnergyJ: 10, QoE: 4}
	est := Estimate{EnergyJ: 5, QoE: 2}
	// alpha = 1: pure energy.
	objE := testObjective(t, 1)
	if got := objE.Cost(est, ref); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("alpha=1 cost = %v, want 0.5", got)
	}
	// alpha = 0: pure (negated) QoE.
	objQ := testObjective(t, 0)
	if got := objQ.Cost(est, ref); !almostEqual(got, -0.5, 1e-12) {
		t.Errorf("alpha=0 cost = %v, want -0.5", got)
	}
	// Balanced.
	obj := testObjective(t, 0.5)
	if got := obj.Cost(est, ref); !almostEqual(got, 0, 1e-12) {
		t.Errorf("alpha=0.5 cost = %v, want 0", got)
	}
	// Degenerate reference scores neutrally.
	if got := obj.Cost(est, Estimate{}); got != 0 {
		t.Errorf("degenerate ref cost = %v, want 0", got)
	}
}

func TestScoreRungsReferenceIsTopRung(t *testing.T) {
	obj := testObjective(t, 0.5)
	base := Candidate{
		DurationSec:   2,
		SignalDBm:     -100,
		BandwidthMbps: 20,
		BufferSec:     30,
		Vibration:     6,
	}
	bitrates := []float64{0.1, 1.5, 5.8}
	sizes := []float64{0.025, 0.375, 1.45}
	costs, ests, err := obj.ScoreRungs(base, bitrates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 || len(ests) != 3 {
		t.Fatalf("lengths = %d, %d; want 3, 3", len(costs), len(ests))
	}
	// Top rung scores alpha - (1-alpha) = 0 at alpha = 0.5 against
	// itself.
	if !almostEqual(costs[2], 0, 1e-12) {
		t.Errorf("top-rung cost = %v, want 0", costs[2])
	}
	// Energy must ascend with bitrate.
	if !(ests[0].EnergyJ < ests[1].EnergyJ && ests[1].EnergyJ < ests[2].EnergyJ) {
		t.Error("energies not ascending with bitrate")
	}
}

func TestScoreRungsErrors(t *testing.T) {
	obj := testObjective(t, 0.5)
	if _, _, err := obj.ScoreRungs(Candidate{}, nil, nil); err == nil {
		t.Error("empty rungs accepted")
	}
	if _, _, err := obj.ScoreRungs(Candidate{}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// In a vibrating, weak-signal context the balanced objective prefers a
// mid/low rung; in a quiet, strong-signal context it prefers a higher
// rung — the paper's core context-awareness claim.
func TestObjectiveContextAwareness(t *testing.T) {
	obj := testObjective(t, 0.5)
	bitrates := []float64{0.1, 0.375, 0.75, 1.5, 2.3, 3.0, 4.3, 5.8}
	sizes := make([]float64, len(bitrates))
	for i, r := range bitrates {
		sizes[i] = r / 8 * 2
	}
	vehicle := Candidate{DurationSec: 2, SignalDBm: -110, BandwidthMbps: 15, BufferSec: 30, Vibration: 6.8}
	room := Candidate{DurationSec: 2, SignalDBm: -88, BandwidthMbps: 40, BufferSec: 30, Vibration: 0.2}

	cv, _, err := obj.ScoreRungs(vehicle, bitrates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	cr, _, err := obj.ScoreRungs(room, bitrates, sizes)
	if err != nil {
		t.Fatal(err)
	}
	jV, jR := ArgminCost(cv), ArgminCost(cr)
	if jV > jR {
		t.Errorf("vehicle rung %d > room rung %d; context-awareness inverted", jV, jR)
	}
	if jV == len(bitrates)-1 {
		t.Error("vehicle context picked the top rung; no energy saving possible")
	}
	if bitrates[jR] < 1.5 {
		t.Errorf("room context picked %v Mbps; too conservative", bitrates[jR])
	}
}

func TestArgminCost(t *testing.T) {
	tests := []struct {
		name  string
		costs []float64
		want  int
	}{
		{name: "single", costs: []float64{1}, want: 0},
		{name: "middle", costs: []float64{3, 1, 2}, want: 1},
		{name: "tie goes low", costs: []float64{2, 1, 1}, want: 1},
		{name: "descending", costs: []float64{3, 2, 1}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ArgminCost(tt.costs); got != tt.want {
				t.Errorf("ArgminCost(%v) = %d, want %d", tt.costs, got, tt.want)
			}
		})
	}
}

// ScoreRungsCompiled must be bit-identical to ScoreRungsInto across
// randomized candidates: the simulator and the online algorithm switch
// between the two paths depending on whether a compiled table is
// available, and the campaign determinism tests compare runs with ==.
func TestScoreRungsCompiledBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	obj := testObjective(t, 0.5)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(10)
		bitrates := make([]float64, k)
		sizes := make([]float64, k)
		r := 0.1 + rng.Float64()
		for j := 0; j < k; j++ {
			bitrates[j] = r
			sizes[j] = r / 8 * 2 * (0.8 + 0.4*rng.Float64())
			r += rng.Float64() * 2
		}
		prevRung := rng.Intn(k+1) - 1 // -1 = first segment
		base := Candidate{
			DurationSec:   2,
			SignalDBm:     -120 + rng.Float64()*40,
			BandwidthMbps: rng.Float64() * 40,
			BufferSec:     rng.Float64() * 40,
			Vibration:     rng.Float64() * 6,
		}
		if prevRung >= 0 {
			base.PrevBitrateMbps = bitrates[prevRung]
		}
		wantCosts := make([]float64, k)
		wantEsts := make([]Estimate, k)
		if err := obj.ScoreRungsInto(base, bitrates, sizes, wantCosts, wantEsts); err != nil {
			t.Fatal(err)
		}
		rt := obj.QoE.CompileRungs(bitrates)
		gotCosts := make([]float64, k)
		gotEsts := make([]Estimate, k)
		if err := obj.ScoreRungsCompiled(base, rt, prevRung, sizes, gotCosts, gotEsts); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if gotCosts[j] != wantCosts[j] || gotEsts[j] != wantEsts[j] {
				t.Fatalf("trial %d rung %d (prev %d): compiled cost=%v est=%+v, reference cost=%v est=%+v",
					trial, j, prevRung, gotCosts[j], gotEsts[j], wantCosts[j], wantEsts[j])
			}
		}
	}
}

func TestScoreRungsCompiledErrors(t *testing.T) {
	obj := testObjective(t, 0.5)
	rt := obj.QoE.CompileRungs([]float64{1, 2})
	costs := make([]float64, 2)
	ests := make([]Estimate, 2)
	if err := obj.ScoreRungsCompiled(Candidate{}, rt, -1, []float64{1}, costs, ests); err == nil {
		t.Error("mismatched sizes accepted")
	}
	if err := obj.ScoreRungsCompiled(Candidate{}, rt, 2, []float64{1, 2}, costs, ests); err == nil {
		t.Error("out-of-range previous rung accepted")
	}
	if err := obj.ScoreRungsCompiled(Candidate{}, rt, -1, []float64{1, 2}, costs[:1], ests); err == nil {
		t.Error("short cost buffer accepted")
	}
	other := obj.QoE
	other.P01 *= 2
	if err := obj.ScoreRungsCompiled(Candidate{}, other.CompileRungs([]float64{1, 2}), -1, []float64{1, 2}, costs, ests); err == nil {
		t.Error("foreign-model table accepted")
	}
}
