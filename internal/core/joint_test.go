package core

import (
	"errors"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

func newJoint(t *testing.T) *JointOnline {
	t.Helper()
	j, err := NewJointOnline(testObjective(t, 0.5), power.DefaultScreen(), qoe.DefaultBrightness(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func jointCtx(vibration, signal float64) abr.Context {
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, rep := range ladder {
		sizes[i] = rep.BitrateMbps / 8 * 2
	}
	return abr.Context{
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		BufferSec:          25,
		BufferThresholdSec: 30,
		PrevRung:           7,
		SignalDBm:          signal,
		VibrationLevel:     vibration,
	}
}

func TestNewJointOnlineValidation(t *testing.T) {
	obj := testObjective(t, 0.5)
	badScreen := power.Screen{MinPowerW: 1, MaxPowerW: 0.5}
	if _, err := NewJointOnline(obj, badScreen, qoe.DefaultBrightness(), nil); err == nil {
		t.Error("invalid screen accepted")
	}
	badBM := qoe.BrightnessModel{MaxImpairment: -1}
	if _, err := NewJointOnline(obj, power.DefaultScreen(), badBM, nil); err == nil {
		t.Error("invalid brightness model accepted")
	}
	if _, err := NewJointOnline(obj, power.DefaultScreen(), qoe.DefaultBrightness(), []float64{2}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestJointChooseValidation(t *testing.T) {
	j := newJoint(t)
	if _, err := j.Choose(abr.Context{}, 0.5, 20); !errors.Is(err, abr.ErrEmptyContext) {
		t.Errorf("err = %v, want ErrEmptyContext", err)
	}
	if _, err := j.Choose(jointCtx(2, -95), 0.5, 0); !errors.Is(err, ErrNoBandwidth) {
		t.Errorf("err = %v, want ErrNoBandwidth", err)
	}
}

// In a dark room the policy dims the screen; in sunlight it keeps it
// bright (dimming would cost legibility QoE).
func TestJointBrightnessTracksAmbient(t *testing.T) {
	j := newJoint(t)
	dark, err := j.Choose(jointCtx(0.3, -90), 0.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	sunny, err := j.Choose(jointCtx(0.3, -90), 1.0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if dark.Brightness >= sunny.Brightness {
		t.Errorf("dark-room brightness %v >= sunny %v", dark.Brightness, sunny.Brightness)
	}
	if sunny.Brightness < 0.9 {
		t.Errorf("sunny brightness = %v, want near full", sunny.Brightness)
	}
}

// The bitrate dimension still behaves like the plain objective:
// vibrating weak-signal contexts pick lower rungs than quiet strong
// ones.
func TestJointBitrateTracksContext(t *testing.T) {
	j := newJoint(t)
	quiet, err := j.Choose(jointCtx(0.2, -88), 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	shaky, err := j.Choose(jointCtx(6.8, -112), 0.5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if shaky.Rung > quiet.Rung {
		t.Errorf("vehicle rung %d > quiet rung %d", shaky.Rung, quiet.Rung)
	}
}

// The joint decision never chooses a dominated pair: full brightness in
// the dark wastes energy with zero QoE gain.
func TestJointNeverFullBrightInTheDark(t *testing.T) {
	j := newJoint(t)
	d, err := j.Choose(jointCtx(2, -100), 0.0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Brightness >= 1.0 {
		t.Error("full backlight selected in a dark room")
	}
}

func TestJointFallbackSizesAndDuration(t *testing.T) {
	j := newJoint(t)
	ctx := jointCtx(2, -95)
	ctx.SegmentSizesMB = nil
	ctx.SegmentDurationSec = 0
	if _, err := j.Choose(ctx, 0.5, 20); err != nil {
		t.Errorf("fallbacks failed: %v", err)
	}
}

func TestScreenPower(t *testing.T) {
	s := power.DefaultScreen()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.PowerW(0); got != s.MinPowerW {
		t.Errorf("PowerW(0) = %v, want %v", got, s.MinPowerW)
	}
	if got := s.PowerW(1); got != s.MaxPowerW {
		t.Errorf("PowerW(1) = %v, want %v", got, s.MaxPowerW)
	}
	if got := s.PowerW(-1); got != s.MinPowerW {
		t.Errorf("PowerW(-1) = %v, want clamp to min", got)
	}
	if got := s.PowerW(2); got != s.MaxPowerW {
		t.Errorf("PowerW(2) = %v, want clamp to max", got)
	}
}

func TestBrightnessModel(t *testing.T) {
	m := qoe.DefaultBrightness()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Meeting the demand costs nothing.
	if got := m.Impairment(1, 1); got != 0 {
		t.Errorf("full bright in sunlight = %v, want 0", got)
	}
	if got := m.Impairment(m.DemandFloor, 0); got != 0 {
		t.Errorf("floor brightness in the dark = %v, want 0", got)
	}
	// Shortfall hurts, more so in brighter ambient.
	dim := m.Impairment(0.3, 1)
	if dim <= 0 {
		t.Error("dim screen in sunlight should cost QoE")
	}
	if m.Impairment(0.3, 0.5) >= dim {
		t.Error("impairment should grow with ambient light")
	}
	// Clamps.
	if m.Impairment(-1, 2) <= 0 {
		t.Error("clamped inputs should still yield impairment")
	}
	bad := qoe.BrightnessModel{DemandFloor: 2}
	if err := bad.Validate(); err == nil {
		t.Error("invalid demand floor accepted")
	}
}
