// Package core implements the paper's contribution: the energy-aware
// and context-aware bitrate selection problem (Section III-D), its
// optimal shortest-path solution (Section IV-A), and the online
// bitrate-selection algorithm (Section IV-B, Algorithm 1).
package core

import (
	"errors"
	"fmt"

	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// DefaultAlpha is the evaluation's weighting factor (Section V-A):
// energy and QoE matter equally.
const DefaultAlpha = 0.5

// Objective is the weighted-sum scalarisation of Eq. 11. For one task
// and one candidate bitrate it scores
//
//	alpha * E(r)/E(rmax) - (1-alpha) * QoE(r)/QoE(rmax)
//
// where rmax is the ladder's top rung; smaller is better. Alpha < 0.5
// favours QoE, alpha > 0.5 favours energy saving.
type Objective struct {
	// Alpha is the energy weight in [0, 1].
	Alpha float64
	// Power is the energy model used to estimate E(r).
	Power power.Model
	// QoE is the quality model used to estimate QoE(r).
	QoE qoe.Model
}

// ErrBadAlpha is returned for weights outside [0, 1].
var ErrBadAlpha = errors.New("core: alpha must lie in [0, 1]")

// NewObjective validates and returns an Objective.
func NewObjective(alpha float64, p power.Model, q qoe.Model) (Objective, error) {
	if alpha < 0 || alpha > 1 {
		return Objective{}, fmt.Errorf("%w: %v", ErrBadAlpha, alpha)
	}
	if err := p.Validate(); err != nil {
		return Objective{}, err
	}
	if err := q.Validate(); err != nil {
		return Objective{}, err
	}
	return Objective{Alpha: alpha, Power: p, QoE: q}, nil
}

// Candidate describes one (task, bitrate) pair to score.
type Candidate struct {
	// BitrateMbps is the candidate encoded bitrate.
	BitrateMbps float64
	// SizeMB is the segment payload at this bitrate.
	SizeMB float64
	// DurationSec is the segment playback duration.
	DurationSec float64
	// SignalDBm is the expected signal strength during download.
	SignalDBm float64
	// BandwidthMbps is the predicted link rate.
	BandwidthMbps float64
	// BufferSec is the playable buffer when the download starts.
	BufferSec float64
	// Vibration is the expected Eq. 5 vibration level.
	Vibration float64
	// PrevBitrateMbps is the previous segment's bitrate (0 = none).
	PrevBitrateMbps float64
}

// Estimate holds a candidate's predicted energy and QoE.
type Estimate struct {
	// EnergyJ is the predicted task energy (Eq. 10).
	EnergyJ float64
	// QoE is the predicted task QoE (Eq. 1).
	QoE float64
	// RebufferSec is the predicted stall time.
	RebufferSec float64
}

// Estimate predicts a candidate's energy and QoE using the models.
func (o Objective) Estimate(c Candidate) Estimate {
	thMBps := c.BandwidthMbps / 8
	b := o.Power.SegmentEnergy(power.SegmentTask{
		BitrateMbps:    c.BitrateMbps,
		DurationSec:    c.DurationSec,
		SizeMB:         c.SizeMB,
		SignalDBm:      c.SignalDBm,
		ThroughputMBps: thMBps,
		BufferSec:      c.BufferSec,
	})
	q := o.QoE.SegmentQoE(qoe.Segment{
		BitrateMbps:     c.BitrateMbps,
		PrevBitrateMbps: c.PrevBitrateMbps,
		Vibration:       c.Vibration,
		RebufferSec:     b.RebufferSec,
	})
	return Estimate{EnergyJ: b.TotalJ(), QoE: q, RebufferSec: b.RebufferSec}
}

// Cost scores a candidate against the reference (top-rung) estimate
// per Eq. 11. Smaller is better. ref.EnergyJ and ref.QoE must be
// positive; degenerate references score the candidate neutrally.
func (o Objective) Cost(est, ref Estimate) float64 {
	if ref.EnergyJ <= 0 || ref.QoE <= 0 {
		return 0
	}
	return o.Alpha*est.EnergyJ/ref.EnergyJ - (1-o.Alpha)*est.QoE/ref.QoE
}

// ScoreRungs estimates and scores every ladder rung of one task.
// sizesMB[j] is the segment payload at rung j; base carries the shared
// task context (its BitrateMbps/SizeMB fields are overwritten per
// rung). bitrates must parallel sizesMB. The returned slices are
// per-rung costs and estimates; the reference is the top rung.
func (o Objective) ScoreRungs(base Candidate, bitrates, sizesMB []float64) (costs []float64, ests []Estimate, err error) {
	costs = make([]float64, len(bitrates))
	ests = make([]Estimate, len(bitrates))
	if err := o.ScoreRungsInto(base, bitrates, sizesMB, costs, ests); err != nil {
		return nil, nil, err
	}
	return costs, ests, nil
}

// ScoreRungsInto is ScoreRungs writing into caller-provided slices, so
// per-decision hot paths can reuse their buffers. costs and ests must
// both have len(bitrates) entries.
func (o Objective) ScoreRungsInto(base Candidate, bitrates, sizesMB, costs []float64, ests []Estimate) error {
	if len(bitrates) == 0 || len(bitrates) != len(sizesMB) {
		return errors.New("core: bitrates and sizes must be non-empty and parallel")
	}
	if len(costs) != len(bitrates) || len(ests) != len(bitrates) {
		return errors.New("core: cost and estimate buffers must parallel the bitrates")
	}
	for j := range bitrates {
		c := base
		c.BitrateMbps = bitrates[j]
		c.SizeMB = sizesMB[j]
		ests[j] = o.Estimate(c)
	}
	ref := ests[len(ests)-1]
	for j := range ests {
		costs[j] = o.Cost(ests[j], ref)
	}
	return nil
}

// ScoreRungsCompiled is ScoreRungsInto driven by a compiled per-rung
// QoE table instead of the model's transcendental curve functions: the
// candidate bitrates are the table's rungs and prevRung indexes the
// previous segment's rung in the same table (negative = first segment,
// no switch penalty). base.BitrateMbps, base.SizeMB and
// base.PrevBitrateMbps are ignored. The table must have been compiled
// from o.QoE with the same ladder bitrates; given that, the costs and
// estimates are bit-identical to ScoreRungsInto (pinned by
// TestScoreRungsCompiledBitIdentical) while evaluating zero math.Pow
// calls per decision.
func (o Objective) ScoreRungsCompiled(base Candidate, rt *qoe.RungTable, prevRung int, sizesMB, costs []float64, ests []Estimate) error {
	k := rt.Len()
	if k == 0 || len(sizesMB) != k {
		return errors.New("core: sizes must be non-empty and parallel the rung table")
	}
	if len(costs) != k || len(ests) != k {
		return errors.New("core: cost and estimate buffers must parallel the rung table")
	}
	if rt.Model() != o.QoE {
		return errors.New("core: rung table compiled from a different QoE model")
	}
	if prevRung >= k {
		return fmt.Errorf("core: previous rung %d outside table of %d rungs", prevRung, k)
	}
	thMBps := base.BandwidthMbps / 8
	for j := 0; j < k; j++ {
		b := o.Power.SegmentEnergy(power.SegmentTask{
			BitrateMbps:    rt.Bitrate(j),
			DurationSec:    base.DurationSec,
			SizeMB:         sizesMB[j],
			SignalDBm:      base.SignalDBm,
			ThroughputMBps: thMBps,
			BufferSec:      base.BufferSec,
		})
		ests[j] = Estimate{
			EnergyJ:     b.TotalJ(),
			QoE:         rt.SegmentQoE(j, prevRung, base.Vibration, b.RebufferSec),
			RebufferSec: b.RebufferSec,
		}
	}
	ref := ests[k-1]
	for j := range ests {
		costs[j] = o.Cost(ests[j], ref)
	}
	return nil
}

// ArgminCost returns the index of the smallest cost (ties go to the
// lower rung, i.e. the more energy-frugal choice).
func ArgminCost(costs []float64) int {
	best := 0
	for j := 1; j < len(costs); j++ {
		if costs[j] < costs[best] {
			best = j
		}
	}
	return best
}
