package core

import (
	"errors"
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// JointDecision is a (bitrate rung, backlight brightness) pair — the
// action space of the rate-and-brightness extension (the paper's
// related work [11, 12, 32] folded into the Eq. 11 objective).
type JointDecision struct {
	// Rung is the selected ladder rung.
	Rung int
	// Brightness is the selected backlight level in [0, 1].
	Brightness float64
}

// JointOnline extends the online algorithm's objective over brightness
// as well as bitrate: the energy term gains the screen power over the
// segment, the QoE term gains the legibility impairment, and the
// reference is (top rung, full brightness).
//
// Construct with NewJointOnline; the zero value is unusable.
type JointOnline struct {
	obj        Objective
	screen     power.Screen
	brightness qoe.BrightnessModel
	levels     []float64
}

// DefaultBrightnessLevels is the selectable backlight grid.
func DefaultBrightnessLevels() []float64 {
	return []float64{0.3, 0.45, 0.6, 0.75, 0.9, 1.0}
}

// NewJointOnline builds the joint policy.
func NewJointOnline(obj Objective, screen power.Screen, bm qoe.BrightnessModel, levels []float64) (*JointOnline, error) {
	if err := screen.Validate(); err != nil {
		return nil, err
	}
	if err := bm.Validate(); err != nil {
		return nil, err
	}
	if len(levels) == 0 {
		levels = DefaultBrightnessLevels()
	}
	for _, l := range levels {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("core: brightness level %v out of [0, 1]", l)
		}
	}
	return &JointOnline{obj: obj, screen: screen, brightness: bm, levels: levels}, nil
}

// ErrNoBandwidth is returned when no bandwidth estimate is supplied.
var ErrNoBandwidth = errors.New("core: joint decision requires a bandwidth estimate")

// Choose scores every (rung, brightness) pair for one segment and
// returns the minimiser of the extended Eq. 11 objective. ambient01 is
// the normalised ambient light, bwMbps the bandwidth estimate.
func (j *JointOnline) Choose(ctx abr.Context, ambient01, bwMbps float64) (JointDecision, error) {
	if len(ctx.Ladder) == 0 {
		return JointDecision{}, abr.ErrEmptyContext
	}
	if bwMbps <= 0 {
		return JointDecision{}, ErrNoBandwidth
	}
	sizes := ctx.SegmentSizesMB
	if len(sizes) != len(ctx.Ladder) {
		sizes = make([]float64, len(ctx.Ladder))
		for i, rep := range ctx.Ladder {
			sizes[i] = rep.BitrateMbps / 8 * ctx.SegmentDurationSec
		}
	}
	dur := ctx.SegmentDurationSec
	if dur <= 0 {
		dur = 2
	}
	prevBR := 0.0
	if ctx.PrevRung >= 0 && ctx.PrevRung < len(ctx.Ladder) {
		prevBR = ctx.Ladder[ctx.PrevRung].BitrateMbps
	}

	// Reference: top rung at full brightness.
	base := Candidate{
		DurationSec:     dur,
		SignalDBm:       ctx.SignalDBm,
		BandwidthMbps:   bwMbps,
		BufferSec:       ctx.BufferSec,
		Vibration:       ctx.VibrationLevel,
		PrevBitrateMbps: prevBR,
	}
	refCand := base
	refCand.BitrateMbps = ctx.Ladder.Highest().BitrateMbps
	refCand.SizeMB = sizes[len(sizes)-1]
	refEst := j.obj.Estimate(refCand)
	refE := refEst.EnergyJ + j.screen.PowerW(1)*dur
	refQ := refEst.QoE - j.brightness.Impairment(1, ambient01)
	if refQ < qoe.MinQuality {
		refQ = qoe.MinQuality
	}
	if refE <= 0 || refQ <= 0 {
		return JointDecision{}, errors.New("core: degenerate joint reference")
	}

	best := JointDecision{Rung: 0, Brightness: j.levels[0]}
	bestCost := 1e18
	for rung := range ctx.Ladder {
		cand := base
		cand.BitrateMbps = ctx.Ladder[rung].BitrateMbps
		cand.SizeMB = sizes[rung]
		est := j.obj.Estimate(cand)
		for _, level := range j.levels {
			e := est.EnergyJ + j.screen.PowerW(level)*dur
			q := est.QoE - j.brightness.Impairment(level, ambient01)
			if q < qoe.MinQuality {
				q = qoe.MinQuality
			}
			cost := j.obj.Alpha*e/refE - (1-j.obj.Alpha)*q/refQ
			if cost < bestCost {
				bestCost = cost
				best = JointDecision{Rung: rung, Brightness: level}
			}
		}
	}
	return best, nil
}
