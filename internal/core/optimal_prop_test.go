package core

import (
	"math/rand"
	"testing"

	"ecavs/internal/dash"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// randomLadder draws 1..8 strictly ascending bitrates.
func randomLadder(t *testing.T, rng *rand.Rand) dash.Ladder {
	t.Helper()
	k := 1 + rng.Intn(8)
	bitrates := make([]float64, k)
	b := 0.1 + rng.Float64()*0.5
	for j := range bitrates {
		bitrates[j] = b
		b += 0.1 + rng.Float64()*2
	}
	l, err := dash.NewLadder(bitrates)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// randomTasks draws n tasks with randomized context, including VBR-like
// size jitter so per-rung costs are not ladder-uniform.
func randomTasks(rng *rand.Rand, n int, ladder dash.Ladder) []TaskObservation {
	tasks := make([]TaskObservation, n)
	for i := range tasks {
		dur := 1 + rng.Float64()*5
		jitter := 0.7 + rng.Float64()*0.6
		sizes := make([]float64, len(ladder))
		for j, rep := range ladder {
			sizes[j] = rep.BitrateMbps / 8 * dur * jitter
		}
		tasks[i] = TaskObservation{
			SizesMB:       sizes,
			DurationSec:   dur,
			SignalDBm:     -120 + rng.Float64()*40,
			BandwidthMbps: 1 + rng.Float64()*50,
			Vibration:     rng.Float64() * 8,
			BufferSec:     rng.Float64() * 40,
		}
	}
	return tasks
}

// The rolling-DP fast path must match the explicit graph solvers
// bit-for-bit: same rungs and the exact same float64 total cost. The
// sweep covers randomized ladders (including k=1), task counts
// (including n=1), and the full alpha range — alpha near 0 makes the
// QoE term dominate, so edge costs go negative and the Dijkstra verify
// leg exercises its weight shift.
func TestPlanFastPathMatchesVerifyPath(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	alphas := []float64{0, 0.1, 0.5, 0.9, 1}
	for iter := 0; iter < 60; iter++ {
		ladder := randomLadder(t, rng)
		n := 1 + rng.Intn(15)
		tasks := randomTasks(rng, n, ladder)
		alpha := alphas[iter%len(alphas)]
		obj, err := NewObjective(alpha, power.EvalModel(), qoe.Default())
		if err != nil {
			t.Fatal(err)
		}

		fast, err := PlanOptimal(obj, ladder, tasks)
		if err != nil {
			t.Fatalf("iter %d (n=%d k=%d alpha=%v): fast path: %v", iter, n, len(ladder), alpha, err)
		}
		// The verify path errors out internally on any mismatch between
		// the fast path and either graph solver.
		checked, err := PlanOptimalWith(obj, ladder, tasks, PlanConfig{Verify: true})
		if err != nil {
			t.Fatalf("iter %d (n=%d k=%d alpha=%v): verify path: %v", iter, n, len(ladder), alpha, err)
		}

		if fast.TotalCost != checked.TotalCost {
			t.Errorf("iter %d: total cost %v != %v", iter, fast.TotalCost, checked.TotalCost)
		}
		if len(fast.Rungs) != n || len(checked.Rungs) != n {
			t.Fatalf("iter %d: plan lengths %d/%d, want %d", iter, len(fast.Rungs), len(checked.Rungs), n)
		}
		for i := range fast.Rungs {
			if fast.Rungs[i] != checked.Rungs[i] {
				t.Errorf("iter %d task %d: rung %d != %d", iter, i, fast.Rungs[i], checked.Rungs[i])
			}
		}
	}
}
