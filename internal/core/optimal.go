package core

import (
	"errors"
	"fmt"
	"math"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/graph"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/trace"
)

// TaskObservation is one task's (segment's) context as the offline
// optimal planner sees it: the trace values around the segment's
// nominal playback time. The optimal algorithm "requires perfect
// knowledge of future tasks" (Section IV-A) — these observations are
// that knowledge.
type TaskObservation struct {
	// SizesMB is the segment payload per ladder rung.
	SizesMB []float64
	// DurationSec is the segment playback duration.
	DurationSec float64
	// SignalDBm is the signal strength during the task.
	SignalDBm float64
	// BandwidthMbps is the link rate during the task.
	BandwidthMbps float64
	// Vibration is the Eq. 5 vibration level during the task.
	Vibration float64
	// BufferSec is the assumed buffer when the download starts (the
	// steady-state threshold unless the caller knows better).
	BufferSec float64
}

// Plan is the optimal planner's output.
type Plan struct {
	// Rungs is the selected ladder rung per task.
	Rungs []int
	// TotalCost is the summed Eq. 11 objective along the plan.
	TotalCost float64
}

// Planner errors.
var (
	ErrNoTasks      = errors.New("core: no tasks to plan")
	ErrSizeMismatch = errors.New("core: task sizes do not match the ladder")
)

// PlanConfig tunes PlanOptimal.
type PlanConfig struct {
	// Verify additionally solves the plan on the explicit layered DAG
	// of Fig. 4 with both original solvers — the topological DP and
	// Dijkstra on shifted weights (the paper's stated solver) — and
	// returns an error if either disagrees with the fast path. It is
	// off by default: the rolling DP is exact, and verification costs
	// the full O(n·k²)-edge graph build it exists to avoid.
	Verify bool
}

// taskScorer evaluates the Eq. 11 cost of every ladder rung of one
// task, reusing its buffers across tasks so planning allocates
// nothing per task. The energy term of a candidate does not depend on
// the previous segment's bitrate, so it is computed once per task
// (beginTask) and shared across all previous-rung rows (scoreInto).
type taskScorer struct {
	obj      Objective
	bitrates []float64
	// rungs is the ladder's compiled Eq. 1 curve table: Q0(r_j), the
	// regrouped impairment coefficients, and the clamp, all computed
	// once at construction. It replaces the per-task OriginalQuality /
	// PerceivedQuality calls the scorer previously made, removing the
	// last transcendentals from the planner entirely; the table path is
	// bit-identical to the model's curve functions, so the DP's costs
	// do not change by a single bit.
	rungs *qoe.RungTable
	// Per-rung, previous-rung-independent terms of the current task:
	// energy and stall time from the power model and the perceived
	// quality at the task's vibration level. Hoisting them out of
	// scoreInto's inner loop keeps the O(n·k²) hot path multiply-add
	// only.
	energyJ   []float64
	rebufSec  []float64
	perceived []float64
}

func newTaskScorer(obj Objective, bitrates []float64) *taskScorer {
	k := len(bitrates)
	return &taskScorer{
		obj:       obj,
		bitrates:  bitrates,
		rungs:     obj.QoE.CompileRungs(bitrates),
		energyJ:   make([]float64, k),
		rebufSec:  make([]float64, k),
		perceived: make([]float64, k),
	}
}

// beginTask computes the previous-rung-independent per-rung terms.
func (s *taskScorer) beginTask(t TaskObservation) {
	thMBps := t.BandwidthMbps / 8
	for j, r := range s.bitrates {
		b := s.obj.Power.SegmentEnergy(power.SegmentTask{
			BitrateMbps:    r,
			DurationSec:    t.DurationSec,
			SizeMB:         t.SizesMB[j],
			SignalDBm:      t.SignalDBm,
			ThroughputMBps: thMBps,
			BufferSec:      t.BufferSec,
		})
		s.energyJ[j] = b.TotalJ()
		s.rebufSec[j] = b.RebufferSec
		s.perceived[j] = s.rungs.Perceived(j, t.Vibration)
	}
}

// scoreInto fills costs[j] with the Eq. 11 cost of rung j for the
// current task given previous rung p; p == len(bitrates) means "no
// previous segment" (the first task). beginTask must have been called
// for the task first. The arithmetic — energy and QoE estimates, then
// the Eq. 11 scalarisation against the top-rung reference — is
// bit-identical to Objective.ScoreRungs.
func (s *taskScorer) scoreInto(t TaskObservation, p int, costs []float64) {
	prev, q0Prev := 0.0, 0.0
	if p < len(s.bitrates) {
		prev = s.bitrates[p]
		q0Prev = s.rungs.OriginalQuality(p)
	}
	for j := range s.bitrates {
		costs[j] = s.obj.QoE.SegmentQoEParts(s.perceived[j], s.rungs.OriginalQuality(j), prev, q0Prev, s.rebufSec[j])
	}
	k := len(s.bitrates)
	ref := Estimate{EnergyJ: s.energyJ[k-1], QoE: costs[k-1]}
	for j := range costs {
		costs[j] = s.obj.Cost(Estimate{EnergyJ: s.energyJ[j], QoE: costs[j]}, ref)
	}
}

// PlanOptimal solves the bitrate-selection problem of Fig. 4 — one
// node per (task, rung), a source, and a sink, with edge weights
// carrying the Eq. 11 objective of the destination task's candidate
// including the switch penalty between the endpoint rungs.
//
// The hot path is a rolling in-place DP over two k-sized distance
// slices: the layered DAG's structure is implicit, so no graph, edges,
// or per-edge allocations are materialised. PlanOptimalWith can
// cross-check the result against the explicit graph solvers.
func PlanOptimal(obj Objective, ladder dash.Ladder, tasks []TaskObservation) (Plan, error) {
	return PlanOptimalWith(obj, ladder, tasks, PlanConfig{})
}

// PlanOptimalWith is PlanOptimal with explicit configuration.
func PlanOptimalWith(obj Objective, ladder dash.Ladder, tasks []TaskObservation, cfg PlanConfig) (Plan, error) {
	if len(tasks) == 0 {
		return Plan{}, ErrNoTasks
	}
	k := len(ladder)
	if k == 0 {
		return Plan{}, dash.ErrEmptyLadder
	}
	for i, t := range tasks {
		if len(t.SizesMB) != k {
			return Plan{}, fmt.Errorf("%w: task %d has %d sizes for %d rungs", ErrSizeMismatch, i, len(t.SizesMB), k)
		}
	}
	n := len(tasks)
	sc := newTaskScorer(obj, ladder.Bitrates())

	// Rolling DP over the implicit layered DAG. dist[j] is the best
	// cost of any plan prefix ending with rung j at the current task;
	// choice[i*k+j] records the previous rung that achieved it. The
	// relaxation order (previous rungs ascending, strict improvement
	// only) mirrors the explicit topological-order DP on the graph, so
	// ties break identically and the costs accumulate in the same
	// floating-point order — the verify path can demand exact equality.
	dist := make([]float64, k)
	next := make([]float64, k)
	costs := make([]float64, k)
	choice := make([]int32, n*k)

	sc.beginTask(tasks[0])
	sc.scoreInto(tasks[0], k, dist)
	for i := 1; i < n; i++ {
		for j := range next {
			next[j] = math.Inf(1)
		}
		sc.beginTask(tasks[i])
		row := choice[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			sc.scoreInto(tasks[i], p, costs)
			dp := dist[p]
			for j, c := range costs {
				if nd := dp + c; nd < next[j] {
					next[j] = nd
					row[j] = int32(p)
				}
			}
		}
		dist, next = next, dist
	}

	// Sink relaxation: the lowest rung achieving the minimum wins,
	// matching the graph's edge order into the sink.
	best := 0
	for j := 1; j < k; j++ {
		if dist[j] < dist[best] {
			best = j
		}
	}
	rungs := make([]int, n)
	j := best
	for i := n - 1; i >= 1; i-- {
		rungs[i] = j
		j = int(choice[i*k+j])
	}
	rungs[0] = j
	plan := Plan{Rungs: rungs, TotalCost: dist[best]}

	if cfg.Verify {
		if err := verifyPlan(sc, tasks, plan); err != nil {
			return Plan{}, err
		}
	}
	return plan, nil
}

// verifyPlan re-solves the plan on the explicit layered DAG with both
// original solvers and errors if either disagrees with the fast path.
// The topological DP must match the rolling DP bit-for-bit (same
// relaxation order, same float64 additions); Dijkstra runs on weights
// shifted to non-negative and is checked within a relative tolerance,
// as its different accumulation order forfeits bitwise equality.
func verifyPlan(sc *taskScorer, tasks []TaskObservation, plan Plan) error {
	n := len(tasks)
	k := len(sc.bitrates)

	// Materialise every per-task, per-(prev, rung) cost row: costs
	// [i][p][j] is the cost of rung j at task i given previous rung p;
	// p == k means "no previous" (first task).
	costs := make([][][]float64, n)
	minCost := math.Inf(1)
	for i, t := range tasks {
		costs[i] = make([][]float64, k+1)
		sc.beginTask(t)
		for p := 0; p <= k; p++ {
			row := make([]float64, k)
			sc.scoreInto(t, p, row)
			costs[i][p] = row
			for _, c := range row {
				if c < minCost {
					minCost = c
				}
			}
		}
	}

	// Node numbering: 0 = source, 1 + i*k + j = (task i, rung j),
	// sink = 1 + n*k.
	node := func(i, j int) int { return 1 + i*k + j }
	sink := 1 + n*k
	shift := 0.0
	if minCost < 0 {
		shift = -minCost
	}

	build := func(withShift float64) (*graph.Graph, error) {
		g := graph.New(sink + 1)
		g.Reserve(0, k)
		for j := 0; j < k; j++ {
			if err := g.AddEdge(0, node(0, j), costs[0][k][j]+withShift); err != nil {
				return nil, err
			}
		}
		for i := 1; i < n; i++ {
			for p := 0; p < k; p++ {
				g.Reserve(node(i-1, p), k)
				for j := 0; j < k; j++ {
					if err := g.AddEdge(node(i-1, p), node(i, j), costs[i][p][j]+withShift); err != nil {
						return nil, err
					}
				}
			}
		}
		for j := 0; j < k; j++ {
			if err := g.AddEdge(node(n-1, j), sink, 0); err != nil {
				return nil, err
			}
		}
		return g, nil
	}

	// Topological DP on the raw (possibly negative) weights.
	gRaw, err := build(0)
	if err != nil {
		return err
	}
	distDP, prevDP, err := gRaw.ShortestPathDAG(0)
	if err != nil {
		return err
	}
	if math.IsInf(distDP[sink], 1) {
		return graph.ErrNoPath
	}
	if distDP[sink] != plan.TotalCost {
		return fmt.Errorf("core: verify: graph DP cost %v != fast-path cost %v", distDP[sink], plan.TotalCost)
	}
	path, err := graph.PathTo(prevDP, sink)
	if err != nil {
		return err
	}
	// path = [source, task nodes..., sink].
	if len(path) != n+2 {
		return fmt.Errorf("core: malformed plan path of length %d for %d tasks", len(path), n)
	}
	for i := 0; i < n; i++ {
		if r := (path[i+1] - 1) % k; r != plan.Rungs[i] {
			return fmt.Errorf("core: verify: graph DP rung %d at task %d != fast-path rung %d", r, i, plan.Rungs[i])
		}
	}

	// Dijkstra on shifted weights (the paper's stated solver).
	gShift, err := build(shift)
	if err != nil {
		return err
	}
	distDij, _, err := gShift.Dijkstra(0)
	if err != nil {
		return err
	}
	// Every source-to-sink path has exactly n shifted task edges plus
	// one zero-weight sink edge, so the shifted optimum is the raw
	// optimum plus n x shift.
	wantDij := distDP[sink] + shift*float64(n)
	if math.Abs(distDij[sink]-wantDij) > 1e-6*math.Max(1, math.Abs(wantDij)) {
		return fmt.Errorf("core: solver disagreement: DP %v vs Dijkstra %v (shift %v)",
			distDP[sink], distDij[sink], shift)
	}
	return nil
}

// ObserveTasks derives per-task observations from a recorded trace and
// a manifest, placing task i at the nominal playback-paced time
// i x segment duration — the timeline the paper's offline planner
// assumes. bufferSec is the steady-state buffer assumption (typically
// the 30 s threshold); windowSec is the vibration window.
//
// Observations are built from the trace's compiled form (validated and
// memoized on first use): signal and bandwidth come from the same
// zero-order hold a TraceLink replays bit-for-bit, and the vibration
// level from the O(1) prefix-sum query, which agrees with the
// reference two-pass computation within 1e-9 (DESIGN.md §10). Each
// observation's SizesMB aliases the manifest's internal per-segment
// row and must be treated as read-only.
func ObserveTasks(tr *trace.Trace, m *dash.Manifest, bufferSec, windowSec float64) ([]TaskObservation, error) {
	if tr == nil || m == nil {
		return nil, errors.New("core: nil trace or manifest")
	}
	c, err := tr.Compiled()
	if err != nil {
		return nil, err
	}
	cur := c.Cursor()
	n := m.SegmentCount()
	out := make([]TaskObservation, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * m.SegmentSec()
		dur, err := m.SegmentDuration(i)
		if err != nil {
			return nil, err
		}
		sizes, err := m.SegmentSizes(i)
		if err != nil {
			return nil, err
		}
		out = append(out, TaskObservation{
			SizesMB:       sizes,
			DurationSec:   dur,
			SignalDBm:     cur.SignalAt(t),
			BandwidthMbps: cur.ThroughputMBpsAt(t) * 8,
			Vibration:     cur.VibrationAt(t, windowSec),
			BufferSec:     bufferSec,
		})
	}
	return out, nil
}

// PlannedAlgorithm wraps a precomputed optimal plan as an
// abr.Algorithm so the simulator can replay it.
type PlannedAlgorithm struct {
	name  string
	rungs []int
}

var _ abr.Algorithm = (*PlannedAlgorithm)(nil)

// NewPlannedAlgorithm returns an algorithm that replays plan under the
// given display name ("Optimal").
func NewPlannedAlgorithm(name string, plan Plan) *PlannedAlgorithm {
	rungs := make([]int, len(plan.Rungs))
	copy(rungs, plan.Rungs)
	return &PlannedAlgorithm{name: name, rungs: rungs}
}

// Name implements abr.Algorithm.
func (p *PlannedAlgorithm) Name() string { return p.name }

// ErrPlanExhausted is returned when more segments are requested than
// the plan covers.
var ErrPlanExhausted = errors.New("core: plan exhausted")

// ChooseRung implements abr.Algorithm.
func (p *PlannedAlgorithm) ChooseRung(ctx abr.Context) (int, error) {
	if ctx.SegmentIndex < 0 || ctx.SegmentIndex >= len(p.rungs) {
		return 0, fmt.Errorf("%w: segment %d of %d", ErrPlanExhausted, ctx.SegmentIndex, len(p.rungs))
	}
	return p.rungs[ctx.SegmentIndex], nil
}

// ObserveDownload implements abr.Algorithm.
func (p *PlannedAlgorithm) ObserveDownload(float64) {}

// Reset implements abr.Algorithm.
func (p *PlannedAlgorithm) Reset() {}
