package core

import (
	"errors"
	"fmt"
	"math"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/graph"
	"ecavs/internal/trace"
)

// TaskObservation is one task's (segment's) context as the offline
// optimal planner sees it: the trace values around the segment's
// nominal playback time. The optimal algorithm "requires perfect
// knowledge of future tasks" (Section IV-A) — these observations are
// that knowledge.
type TaskObservation struct {
	// SizesMB is the segment payload per ladder rung.
	SizesMB []float64
	// DurationSec is the segment playback duration.
	DurationSec float64
	// SignalDBm is the signal strength during the task.
	SignalDBm float64
	// BandwidthMbps is the link rate during the task.
	BandwidthMbps float64
	// Vibration is the Eq. 5 vibration level during the task.
	Vibration float64
	// BufferSec is the assumed buffer when the download starts (the
	// steady-state threshold unless the caller knows better).
	BufferSec float64
}

// Plan is the optimal planner's output.
type Plan struct {
	// Rungs is the selected ladder rung per task.
	Rungs []int
	// TotalCost is the summed Eq. 11 objective along the plan.
	TotalCost float64
}

// Planner errors.
var (
	ErrNoTasks      = errors.New("core: no tasks to plan")
	ErrSizeMismatch = errors.New("core: task sizes do not match the ladder")
)

// PlanOptimal maps the bitrate-selection problem to the layered DAG of
// Fig. 4 — one node per (task, rung), a source, and a sink — and
// solves it as a shortest-path problem. Edge weights carry the Eq. 11
// objective of the destination task's candidate, including the
// switch penalty between the endpoint rungs.
//
// Both solvers run: the topological DP (handles the objective's
// negative weights directly) and Dijkstra on weights shifted per edge
// by a constant (valid because every source-to-sink path has exactly
// len(tasks)+1 edges); disagreement indicates a bug and is returned as
// an error.
func PlanOptimal(obj Objective, ladder dash.Ladder, tasks []TaskObservation) (Plan, error) {
	if len(tasks) == 0 {
		return Plan{}, ErrNoTasks
	}
	k := len(ladder)
	if k == 0 {
		return Plan{}, dash.ErrEmptyLadder
	}
	for i, t := range tasks {
		if len(t.SizesMB) != k {
			return Plan{}, fmt.Errorf("%w: task %d has %d sizes for %d rungs", ErrSizeMismatch, i, len(t.SizesMB), k)
		}
	}
	n := len(tasks)
	bitrates := ladder.Bitrates()

	// Pre-compute per-task, per-(prev, rung) costs.
	// costs[i][p][j]: cost of rung j at task i given previous rung p;
	// p == k means "no previous" (first task).
	costs := make([][][]float64, n)
	minCost := math.Inf(1)
	for i, t := range tasks {
		costs[i] = make([][]float64, k+1)
		for p := 0; p <= k; p++ {
			base := Candidate{
				DurationSec:   t.DurationSec,
				SignalDBm:     t.SignalDBm,
				BandwidthMbps: t.BandwidthMbps,
				BufferSec:     t.BufferSec,
				Vibration:     t.Vibration,
			}
			if p < k {
				base.PrevBitrateMbps = bitrates[p]
			}
			cs, _, err := obj.ScoreRungs(base, bitrates, t.SizesMB)
			if err != nil {
				return Plan{}, err
			}
			costs[i][p] = cs
			for _, c := range cs {
				if c < minCost {
					minCost = c
				}
			}
		}
	}

	// Node numbering: 0 = source, 1 + i*k + j = (task i, rung j),
	// sink = 1 + n*k.
	node := func(i, j int) int { return 1 + i*k + j }
	sink := 1 + n*k
	shift := 0.0
	if minCost < 0 {
		shift = -minCost
	}

	build := func(withShift float64) (*graph.Graph, error) {
		g := graph.New(sink + 1)
		for j := 0; j < k; j++ {
			if err := g.AddEdge(0, node(0, j), costs[0][k][j]+withShift); err != nil {
				return nil, err
			}
		}
		for i := 1; i < n; i++ {
			for p := 0; p < k; p++ {
				for j := 0; j < k; j++ {
					if err := g.AddEdge(node(i-1, p), node(i, j), costs[i][p][j]+withShift); err != nil {
						return nil, err
					}
				}
			}
		}
		for j := 0; j < k; j++ {
			if err := g.AddEdge(node(n-1, j), sink, 0); err != nil {
				return nil, err
			}
		}
		return g, nil
	}

	// Topological DP on the raw (possibly negative) weights.
	gRaw, err := build(0)
	if err != nil {
		return Plan{}, err
	}
	distDP, prevDP, err := gRaw.ShortestPathDAG(0)
	if err != nil {
		return Plan{}, err
	}
	if math.IsInf(distDP[sink], 1) {
		return Plan{}, graph.ErrNoPath
	}

	// Dijkstra on shifted weights (the paper's stated solver).
	gShift, err := build(shift)
	if err != nil {
		return Plan{}, err
	}
	distDij, _, err := gShift.Dijkstra(0)
	if err != nil {
		return Plan{}, err
	}
	// Every source-to-sink path has exactly n shifted task edges plus
	// one zero-weight sink edge, so the shifted optimum is the raw
	// optimum plus n x shift.
	wantDij := distDP[sink] + shift*float64(n)
	if math.Abs(distDij[sink]-wantDij) > 1e-6*math.Max(1, math.Abs(wantDij)) {
		return Plan{}, fmt.Errorf("core: solver disagreement: DP %v vs Dijkstra %v (shift %v)",
			distDP[sink], distDij[sink], shift)
	}

	path, err := graph.PathTo(prevDP, sink)
	if err != nil {
		return Plan{}, err
	}
	// path = [source, task nodes..., sink].
	if len(path) != n+2 {
		return Plan{}, fmt.Errorf("core: malformed plan path of length %d for %d tasks", len(path), n)
	}
	rungs := make([]int, n)
	for i := 0; i < n; i++ {
		rungs[i] = (path[i+1] - 1) % k
	}
	return Plan{Rungs: rungs, TotalCost: distDP[sink]}, nil
}

// ObserveTasks derives per-task observations from a recorded trace and
// a manifest, placing task i at the nominal playback-paced time
// i x segment duration — the timeline the paper's offline planner
// assumes. bufferSec is the steady-state buffer assumption (typically
// the 30 s threshold); windowSec is the vibration window.
func ObserveTasks(tr *trace.Trace, m *dash.Manifest, bufferSec, windowSec float64) ([]TaskObservation, error) {
	if tr == nil || m == nil {
		return nil, errors.New("core: nil trace or manifest")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	link, err := tr.Link()
	if err != nil {
		return nil, err
	}
	n := m.SegmentCount()
	k := len(m.Ladder())
	out := make([]TaskObservation, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * m.SegmentSec()
		for link.Now() < t {
			link.Advance(t - link.Now())
		}
		dur, err := m.SegmentDuration(i)
		if err != nil {
			return nil, err
		}
		sizes := make([]float64, k)
		for j := 0; j < k; j++ {
			s, err := m.SegmentSizeMB(i, j)
			if err != nil {
				return nil, err
			}
			sizes[j] = s
		}
		out = append(out, TaskObservation{
			SizesMB:       sizes,
			DurationSec:   dur,
			SignalDBm:     link.SignalDBm(),
			BandwidthMbps: link.ThroughputMBps() * 8,
			Vibration:     tr.VibrationAt(t, windowSec),
			BufferSec:     bufferSec,
		})
	}
	return out, nil
}

// PlannedAlgorithm wraps a precomputed optimal plan as an
// abr.Algorithm so the simulator can replay it.
type PlannedAlgorithm struct {
	name  string
	rungs []int
}

var _ abr.Algorithm = (*PlannedAlgorithm)(nil)

// NewPlannedAlgorithm returns an algorithm that replays plan under the
// given display name ("Optimal").
func NewPlannedAlgorithm(name string, plan Plan) *PlannedAlgorithm {
	rungs := make([]int, len(plan.Rungs))
	copy(rungs, plan.Rungs)
	return &PlannedAlgorithm{name: name, rungs: rungs}
}

// Name implements abr.Algorithm.
func (p *PlannedAlgorithm) Name() string { return p.name }

// ErrPlanExhausted is returned when more segments are requested than
// the plan covers.
var ErrPlanExhausted = errors.New("core: plan exhausted")

// ChooseRung implements abr.Algorithm.
func (p *PlannedAlgorithm) ChooseRung(ctx abr.Context) (int, error) {
	if ctx.SegmentIndex < 0 || ctx.SegmentIndex >= len(p.rungs) {
		return 0, fmt.Errorf("%w: segment %d of %d", ErrPlanExhausted, ctx.SegmentIndex, len(p.rungs))
	}
	return p.rungs[ctx.SegmentIndex], nil
}

// ObserveDownload implements abr.Algorithm.
func (p *PlannedAlgorithm) ObserveDownload(float64) {}

// Reset implements abr.Algorithm.
func (p *PlannedAlgorithm) Reset() {}
