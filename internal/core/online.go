package core

import (
	"errors"
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/qoe"
)

// Online is the paper's online bitrate-selection algorithm
// (Algorithm 1). Per segment it:
//
//  1. estimates bandwidth as the harmonic mean of recent download
//     throughputs and reads the current vibration level,
//  2. computes the reference rung minimising the Eq. 11 objective,
//  3. moves gradually: one rung up when the reference is higher than
//     the previous segment's rung; when lower, it drops to the highest
//     rung in [reference, previous] whose download still completes
//     before the buffer drains (falling back to the reference).
//
// Construct with NewOnline; the zero value is unusable.
type Online struct {
	obj    Objective
	est    netsim.BandwidthEstimator
	direct bool

	// Per-decision scratch, reused across ChooseRung calls so the
	// steady-state decision path does not allocate. An Online instance
	// is owned by one session and must not be shared across goroutines.
	costs []float64
	ests  []Estimate

	// rungs is the compiled per-rung QoE table for the ladder last seen
	// by ChooseRung, keyed by the ladder's backing array identity (the
	// simulator hands the same ladder slice every segment, so this
	// compiles once per session and the decision path evaluates no
	// transcendentals).
	rungs    *qoe.RungTable
	rungsKey *dash.Representation
}

var _ abr.Algorithm = (*Online)(nil)

// OnlineOption customises the algorithm.
type OnlineOption func(*Online)

// WithEstimator replaces the default 20-sample harmonic-mean bandwidth
// estimator (used by the estimator ablation).
func WithEstimator(e netsim.BandwidthEstimator) OnlineOption {
	return func(o *Online) {
		if e != nil {
			o.est = e
		}
	}
}

// WithDirectReference disables Algorithm 1's gradual switching: the
// algorithm jumps straight to the reference rung every segment (the
// gradual-switch ablation).
func WithDirectReference() OnlineOption {
	return func(o *Online) { o.direct = true }
}

// NewOnline returns the online algorithm with the given objective.
func NewOnline(obj Objective, opts ...OnlineOption) *Online {
	o := &Online{
		obj: obj,
		est: netsim.NewHarmonicMeanEstimator(netsim.DefaultHarmonicWindow),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Name implements abr.Algorithm.
func (o *Online) Name() string { return "Ours" }

// ErrNoSizes is returned when the context lacks per-rung segment
// sizes, which the objective needs to estimate download energy.
var ErrNoSizes = errors.New("core: context missing per-rung segment sizes")

// ChooseRung implements abr.Algorithm (the body of Algorithm 1).
func (o *Online) ChooseRung(ctx abr.Context) (int, error) {
	if len(ctx.Ladder) == 0 {
		return 0, abr.ErrEmptyContext
	}
	bw, ok := o.est.Estimate()
	if !ok || ctx.PrevRung < 0 {
		// Startup: no bandwidth knowledge yet — begin at the bottom.
		return ctx.Ladder.Lowest().Index, nil
	}
	sizes := ctx.SegmentSizesMB
	if len(sizes) != len(ctx.Ladder) {
		return 0, fmt.Errorf("%w: got %d sizes for %d rungs", ErrNoSizes, len(sizes), len(ctx.Ladder))
	}
	prevRung := ctx.PrevRung
	if prevRung >= len(ctx.Ladder) {
		prevRung = len(ctx.Ladder) - 1
	}

	base := Candidate{
		DurationSec:     ctx.SegmentDurationSec,
		SignalDBm:       ctx.SignalDBm,
		BandwidthMbps:   bw,
		BufferSec:       ctx.BufferSec,
		Vibration:       ctx.VibrationLevel,
		PrevBitrateMbps: ctx.Ladder[prevRung].BitrateMbps,
	}
	if k := len(ctx.Ladder); cap(o.costs) < k {
		o.costs = make([]float64, k)
		o.ests = make([]Estimate, k)
	} else {
		o.costs = o.costs[:k]
		o.ests = o.ests[:k]
	}
	if o.rungs == nil || o.rungsKey != &ctx.Ladder[0] || o.rungs.Len() != len(ctx.Ladder) {
		o.rungs = o.obj.QoE.CompileRungs(ctx.Ladder.Bitrates())
		o.rungsKey = &ctx.Ladder[0]
	}
	if err := o.obj.ScoreRungsCompiled(base, o.rungs, prevRung, sizes, o.costs, o.ests); err != nil {
		return 0, err
	}
	ref := ArgminCost(o.costs)
	if o.direct {
		return ref, nil
	}

	switch {
	case ref > prevRung:
		// Gradual increase: one level per segment (line 5-6).
		return prevRung + 1, nil
	case ref < prevRung:
		// Step down: find the highest rung strictly below the previous
		// one (so the rate keeps descending towards the reference) that
		// still downloads before the buffer drains (line 7-9).
		bwMBps := bw / 8
		if bwMBps > 0 {
			for j := prevRung - 1; j >= ref; j-- {
				if sizes[j]/bwMBps <= ctx.BufferSec {
					return j, nil
				}
			}
		}
		return ref, nil
	default:
		return prevRung, nil
	}
}

// ObserveDownload implements abr.Algorithm.
func (o *Online) ObserveDownload(thMbps float64) { o.est.Push(thMbps) }

// Reset implements abr.Algorithm.
func (o *Online) Reset() { o.est.Reset() }
