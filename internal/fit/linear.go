// Package fit implements the least-squares machinery the paper uses to
// build its QoE models from subjective-rating traces (Section III-B,
// Table III): ordinary linear least squares over an arbitrary design
// matrix, Gauss-Newton iteration for nonlinear curves such as the
// rate-quality model, and a bilinear surface fit for the vibration
// impairment of Fig. 2(c).
package fit

import (
	"errors"
	"fmt"
	"math"
)

var (
	// ErrDimension is returned when matrix/vector shapes are inconsistent
	// or a fit is under-determined.
	ErrDimension = errors.New("fit: dimension mismatch or under-determined system")
	// ErrSingular is returned when the normal equations are (numerically)
	// singular, e.g. collinear design columns.
	ErrSingular = errors.New("fit: singular system")
)

// LeastSquares solves min ||X·beta - y||² for beta, where X is an
// n-by-p design matrix given as n rows of length p. It forms the normal
// equations XᵀX·beta = Xᵀy and solves them by Gaussian elimination with
// partial pivoting, which is plenty for the small, well-conditioned
// systems the models here produce (p <= 6).
func LeastSquares(rows [][]float64, y []float64) ([]float64, error) {
	n := len(rows)
	if n == 0 || n != len(y) {
		return nil, ErrDimension
	}
	p := len(rows[0])
	if p == 0 || n < p {
		return nil, ErrDimension
	}
	for _, r := range rows {
		if len(r) != p {
			return nil, ErrDimension
		}
	}

	// Build XᵀX (p x p) and Xᵀy (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for k := 0; k < n; k++ {
		row := rows[k]
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[k]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 1; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}

// SolveLinear solves the square system A·x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || n != len(b) {
		return nil, ErrDimension
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, ErrDimension
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// Residual returns the root-mean-square residual of the linear model
// beta over the given design rows and observations.
func Residual(rows [][]float64, y, beta []float64) (float64, error) {
	if len(rows) != len(y) || len(rows) == 0 {
		return 0, ErrDimension
	}
	var ss float64
	for k, row := range rows {
		if len(row) != len(beta) {
			return 0, ErrDimension
		}
		var pred float64
		for i, v := range row {
			pred += v * beta[i]
		}
		d := pred - y[k]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(rows))), nil
}

// BilinearSurface is the fitted model z = P00 + P10·x + P01·y + P11·x·y,
// the quadratic-family surface used for the vibration impairment in
// Fig. 2(c).
type BilinearSurface struct {
	P00, P10, P01, P11 float64
}

// Eval evaluates the surface at (x, y).
func (s BilinearSurface) Eval(x, y float64) float64 {
	return s.P00 + s.P10*x + s.P01*y + s.P11*x*y
}

// String renders the surface's coefficients for reports.
func (s BilinearSurface) String() string {
	return fmt.Sprintf("z = %.6f + %.6f*x + %.6f*y + %.6f*x*y", s.P00, s.P10, s.P01, s.P11)
}

// FitBilinear fits a BilinearSurface to the observations (xs[i], ys[i])
// -> zs[i] by linear least squares. At least four non-degenerate points
// are required.
func FitBilinear(xs, ys, zs []float64) (BilinearSurface, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) || len(xs) < 4 {
		return BilinearSurface{}, ErrDimension
	}
	rows := make([][]float64, len(xs))
	for i := range xs {
		rows[i] = []float64{1, xs[i], ys[i], xs[i] * ys[i]}
	}
	beta, err := LeastSquares(rows, zs)
	if err != nil {
		return BilinearSurface{}, err
	}
	return BilinearSurface{P00: beta[0], P10: beta[1], P01: beta[2], P11: beta[3]}, nil
}
