package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// expModel is f(x) = a * exp(b*x), a simple two-parameter test model
// exercising the numeric-gradient path.
type expModel struct{}

func (expModel) NumParams() int { return 2 }
func (expModel) Eval(x float64, p []float64) float64 {
	return p[0] * math.Exp(p[1]*x)
}

// lineModel implements GradientModel to exercise the analytic path.
type lineModel struct{}

func (lineModel) NumParams() int                      { return 2 }
func (lineModel) Eval(x float64, p []float64) float64 { return p[0] + p[1]*x }
func (lineModel) Gradient(x float64, p, grad []float64) {
	grad[0] = 1
	grad[1] = x
}

func TestGaussNewtonLinearAnalytic(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	got, err := GaussNewton(lineModel{}, xs, ys, []float64{0, 0}, GaussNewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], 1, 1e-6) || !almostEqual(got[1], 2, 1e-6) {
		t.Errorf("params = %v, want [1 2]", got)
	}
}

func TestGaussNewtonExponentialNumeric(t *testing.T) {
	want := []float64{2.0, -0.5}
	var xs, ys []float64
	for i := 0; i <= 20; i++ {
		x := float64(i) / 4
		xs = append(xs, x)
		ys = append(ys, expModel{}.Eval(x, want))
	}
	got, err := GaussNewton(expModel{}, xs, ys, []float64{1, -0.1}, GaussNewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], want[0], 1e-5) || !almostEqual(got[1], want[1], 1e-5) {
		t.Errorf("params = %v, want %v", got, want)
	}
}

func TestGaussNewtonRateQualityRecovery(t *testing.T) {
	want := []float64{1.036, 0.782}
	rng := rand.New(rand.NewSource(12))
	var xs, ys []float64
	for _, r := range []float64{0.1, 0.2, 0.375, 0.55, 0.75, 1.0, 1.5, 2.3, 3.0, 4.3, 5.8} {
		// Several noisy "raters" per bitrate.
		for k := 0; k < 20; k++ {
			xs = append(xs, r)
			ys = append(ys, RateQualityModel{}.Eval(r, want)+rng.NormFloat64()*0.05)
		}
	}
	got, err := GaussNewton(RateQualityModel{}, xs, ys, []float64{1, 1}, GaussNewtonOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], want[0], 0.05) || !almostEqual(got[1], want[1], 0.05) {
		t.Errorf("params = %v, want approx %v", got, want)
	}
}

func TestGaussNewtonErrors(t *testing.T) {
	if _, err := GaussNewton(lineModel{}, nil, nil, []float64{0, 0}, GaussNewtonOptions{}); !errors.Is(err, ErrDimension) {
		t.Errorf("empty: err = %v, want ErrDimension", err)
	}
	if _, err := GaussNewton(lineModel{}, []float64{1}, []float64{1, 2}, []float64{0, 0}, GaussNewtonOptions{}); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatched: err = %v, want ErrDimension", err)
	}
	if _, err := GaussNewton(lineModel{}, []float64{1}, []float64{1}, []float64{0}, GaussNewtonOptions{}); !errors.Is(err, ErrDimension) {
		t.Errorf("bad init: err = %v, want ErrDimension", err)
	}
	// Fewer observations than parameters.
	if _, err := GaussNewton(lineModel{}, []float64{1}, []float64{1}, []float64{0, 0}, GaussNewtonOptions{}); !errors.Is(err, ErrDimension) {
		t.Errorf("under-determined: err = %v, want ErrDimension", err)
	}
}

func TestGaussNewtonNoConverge(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	// One iteration cannot converge from a bad start with tight tol.
	_, err := GaussNewton(expModel{}, xs, ys, []float64{10, 3}, GaussNewtonOptions{MaxIter: 1, Tol: 1e-15})
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("err = %v, want ErrNoConverge", err)
	}
}

func TestRateQualityModelShape(t *testing.T) {
	p := []float64{1.036, 0.782}
	m := RateQualityModel{}
	// Bounds: quality lives in (1, 5).
	for _, r := range []float64{0.01, 0.1, 1, 5.8, 100} {
		q := m.Eval(r, p)
		if q <= 1 || q >= 5 {
			t.Errorf("Q(%v) = %v, want within (1, 5)", r, q)
		}
	}
	// Monotone increasing in r.
	prev := m.Eval(0.05, p)
	for r := 0.1; r < 10; r += 0.1 {
		q := m.Eval(r, p)
		if q < prev {
			t.Fatalf("quality not monotone at r=%v: %v < %v", r, q, prev)
		}
		prev = q
	}
	// Degenerate inputs collapse to the floor.
	if got := m.Eval(0, p); got != 1 {
		t.Errorf("Q(0) = %v, want 1", got)
	}
	if got := m.Eval(1, []float64{1, -1}); got != 1 {
		t.Errorf("Q with c2<0 = %v, want 1", got)
	}
}

func TestRateQualityMatchesPaperAnchors(t *testing.T) {
	// Fig. 2(b) plotted curve anchors (read off the figure).
	p := []float64{1.036, 0.782}
	m := RateQualityModel{}
	anchors := []struct {
		r, q, tol float64
	}{
		{r: 0.1, q: 1.42, tol: 0.1},
		{r: 0.75, q: 2.96, tol: 0.12},
		{r: 1.5, q: 3.65, tol: 0.12},
		{r: 3.0, q: 4.21, tol: 0.12},
		{r: 5.8, q: 4.55, tol: 0.12},
	}
	for _, a := range anchors {
		if got := m.Eval(a.r, p); !almostEqual(got, a.q, a.tol) {
			t.Errorf("Q(%v) = %.3f, want %.3f +/- %.2f", a.r, got, a.q, a.tol)
		}
	}
}
