package fit

import (
	"errors"
	"math"
)

// Model is a parametric scalar model f(x; params) with analytic or
// numeric gradients, suitable for Gauss-Newton fitting.
type Model interface {
	// Eval returns f(x; params).
	Eval(x float64, params []float64) float64
	// NumParams reports the number of parameters.
	NumParams() int
}

// GradientModel is an optional extension of Model providing analytic
// partial derivatives with respect to the parameters.
type GradientModel interface {
	Model
	// Gradient writes df/dparam_i at x into grad (len NumParams()).
	Gradient(x float64, params, grad []float64)
}

// ErrNoConverge is returned when Gauss-Newton exceeds its iteration
// budget without meeting the tolerance.
var ErrNoConverge = errors.New("fit: Gauss-Newton did not converge")

// GaussNewtonOptions tunes the nonlinear solver.
type GaussNewtonOptions struct {
	// MaxIter bounds the number of iterations (default 100).
	MaxIter int
	// Tol is the convergence threshold on the parameter-step infinity
	// norm (default 1e-9).
	Tol float64
	// Damping is the Levenberg-Marquardt style diagonal damping added to
	// the normal equations; 0 means pure Gauss-Newton (default 1e-9,
	// just enough to avoid exact singularity).
	Damping float64
}

func (o GaussNewtonOptions) withDefaults() GaussNewtonOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Damping < 0 {
		o.Damping = 0
	}
	if o.Damping == 0 {
		o.Damping = 1e-9
	}
	return o
}

// GaussNewton fits the model to the observations (xs[i] -> ys[i])
// starting from init, returning the fitted parameters. The residual
// being minimised is sum_i (f(xs[i]; p) - ys[i])².
func GaussNewton(m Model, xs, ys, init []float64, opts GaussNewtonOptions) ([]float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, ErrDimension
	}
	p := m.NumParams()
	if len(init) != p || len(xs) < p {
		return nil, ErrDimension
	}
	opts = opts.withDefaults()

	params := make([]float64, p)
	copy(params, init)
	grad := make([]float64, p)

	for iter := 0; iter < opts.MaxIter; iter++ {
		// Normal equations JᵀJ·delta = Jᵀr with r = y - f.
		jtj := make([][]float64, p)
		for i := range jtj {
			jtj[i] = make([]float64, p)
		}
		jtr := make([]float64, p)
		for k := range xs {
			gradient(m, xs[k], params, grad)
			r := ys[k] - m.Eval(xs[k], params)
			for i := 0; i < p; i++ {
				jtr[i] += grad[i] * r
				for j := i; j < p; j++ {
					jtj[i][j] += grad[i] * grad[j]
				}
			}
		}
		for i := 1; i < p; i++ {
			for j := 0; j < i; j++ {
				jtj[i][j] = jtj[j][i]
			}
		}
		for i := 0; i < p; i++ {
			jtj[i][i] += opts.Damping
		}
		delta, err := SolveLinear(jtj, jtr)
		if err != nil {
			return nil, err
		}
		var maxStep float64
		for i := 0; i < p; i++ {
			params[i] += delta[i]
			if s := math.Abs(delta[i]); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < opts.Tol {
			return params, nil
		}
	}
	return params, ErrNoConverge
}

// gradient fills grad with the model's parameter gradient at x, using
// analytic derivatives when available and central differences otherwise.
func gradient(m Model, x float64, params, grad []float64) {
	if gm, ok := m.(GradientModel); ok {
		gm.Gradient(x, params, grad)
		return
	}
	const h = 1e-6
	tmp := make([]float64, len(params))
	copy(tmp, params)
	for i := range params {
		tmp[i] = params[i] + h
		hi := m.Eval(x, tmp)
		tmp[i] = params[i] - h
		lo := m.Eval(x, tmp)
		tmp[i] = params[i]
		grad[i] = (hi - lo) / (2 * h)
	}
}

// RateQualityModel is the two-parameter parametric rate-quality curve
// Q(r) = 1 + 4 / (1 + (c2/r)^c1) used for the paper's "original
// quality" fit (Fig. 2b). params = [c1, c2].
type RateQualityModel struct{}

var _ Model = RateQualityModel{}

// NumParams implements Model.
func (RateQualityModel) NumParams() int { return 2 }

// Eval implements Model.
func (RateQualityModel) Eval(r float64, params []float64) float64 {
	c1, c2 := params[0], params[1]
	if r <= 0 || c2 <= 0 {
		return 1
	}
	return 1 + 4/(1+math.Pow(c2/r, c1))
}
