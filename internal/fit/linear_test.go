package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveLinearExact(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x=2, y=1.
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{3, 7}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("solution = %v, want [7 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	if _, err := SolveLinear(nil, nil); !errors.Is(err, ErrDimension) {
		t.Errorf("empty: err = %v, want ErrDimension", err)
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged: err = %v, want ErrDimension", err)
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != -1 || b[0] != 5 {
		t.Error("inputs were mutated")
	}
}

// Random well-conditioned systems round-trip: solve(A, A*x) == x.
func TestSolveLinearRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(nRaw uint8) bool {
		n := int(nRaw%5) + 1
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) + 1 // diagonal dominance => well-conditioned
			x[i] = rng.NormFloat64() * 3
		}
		b := make([]float64, n)
		for i := range a {
			for j := range a[i] {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactLine(t *testing.T) {
	// y = 3 - 2x, expressed with design rows [1, x].
	rows := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{3, 1, -1, -3}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 3, 1e-9) || !almostEqual(beta[1], -2, 1e-9) {
		t.Errorf("beta = %v, want [3 -2]", beta)
	}
	res, err := Residual(rows, y, beta)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-9 {
		t.Errorf("residual = %v, want ~0", res)
	}
}

func TestLeastSquaresOverdeterminedNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rows [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x1 := rng.Float64() * 10
		x2 := rng.Float64() * 10
		rows = append(rows, []float64{1, x1, x2})
		y = append(y, 0.5+2*x1-1.5*x2+rng.NormFloat64()*0.01)
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 2, -1.5}
	for i := range want {
		if !almostEqual(beta[i], want[i], 0.01) {
			t.Errorf("beta[%d] = %v, want approx %v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); !errors.Is(err, ErrDimension) {
		t.Errorf("empty: err = %v, want ErrDimension", err)
	}
	// Under-determined: fewer rows than parameters.
	if _, err := LeastSquares([][]float64{{1, 2, 3}}, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("under-determined: err = %v, want ErrDimension", err)
	}
	// Ragged rows.
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("ragged: err = %v, want ErrDimension", err)
	}
	// Collinear columns -> singular normal equations.
	rows := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LeastSquares(rows, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("collinear: err = %v, want ErrSingular", err)
	}
}

func TestResidualErrors(t *testing.T) {
	if _, err := Residual(nil, nil, nil); !errors.Is(err, ErrDimension) {
		t.Errorf("empty: err = %v, want ErrDimension", err)
	}
	if _, err := Residual([][]float64{{1}}, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("beta mismatch: err = %v, want ErrDimension", err)
	}
}

func TestFitBilinearExactRecovery(t *testing.T) {
	truth := BilinearSurface{P00: -0.02, P10: 0.0012, P01: 0.0128, P11: 0.014}
	var xs, ys, zs []float64
	for _, x := range []float64{0.1, 1.5, 3.0, 5.8} {
		for _, y := range []float64{0, 2, 4, 6} {
			xs = append(xs, x)
			ys = append(ys, y)
			zs = append(zs, truth.Eval(x, y))
		}
	}
	got, err := FitBilinear(xs, ys, zs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.P00, truth.P00, 1e-9) ||
		!almostEqual(got.P10, truth.P10, 1e-9) ||
		!almostEqual(got.P01, truth.P01, 1e-9) ||
		!almostEqual(got.P11, truth.P11, 1e-9) {
		t.Errorf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitBilinearErrors(t *testing.T) {
	if _, err := FitBilinear([]float64{1, 2}, []float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("too few: err = %v, want ErrDimension", err)
	}
	if _, err := FitBilinear([]float64{1}, []float64{1, 2}, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Errorf("mismatch: err = %v, want ErrDimension", err)
	}
}

func TestBilinearSurfaceString(t *testing.T) {
	s := BilinearSurface{P00: 1, P10: 2, P01: 3, P11: 4}
	if got := s.String(); got == "" {
		t.Error("String returned empty")
	}
}
