package httpdash

// Option is the one functional-option shape every httpdash constructor
// takes: a client, server, or edge option is just Option[Client],
// Option[Server], or Option[Edge]. Unifying the three under a single
// generic type keeps the pattern — and its contract — in one place:
//
//   - An option only records configuration on the target struct. It
//     must not derive state from other options' fields, because option
//     order is unspecified.
//   - Everything that depends on more than one option (telemetry
//     mirrors for a breaker or admission controller, gauge closures
//     over a replaceable cache) is wired by the constructor after every
//     option has applied, so all options compose in any order. The
//     option-permutation test pins this for the full option surface.
//   - Nil options are skipped, so callers can build option slices
//     conditionally without filtering.
type Option[T any] func(*T)

// ClientOption customises the streaming client.
type ClientOption = Option[Client]

// ServerOption customises the origin server.
type ServerOption = Option[Server]

// EdgeOption customises the caching edge proxy.
type EdgeOption = Option[Edge]

// applyOptions runs the options in order, skipping nils. Constructors
// call it once and then do all cross-option wiring themselves.
func applyOptions[T any](target *T, opts []Option[T]) {
	for _, o := range opts {
		if o != nil {
			o(target)
		}
	}
}
