package httpdash

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/faults"
	"ecavs/internal/telemetry"
)

// get fetches a URL and drains the body, returning the byte count.
func get(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestServerSnapshotPerRung is the satellite contract: Snapshot
// breaks requests/bytes down by rung and BytesSent stays the
// compatible cross-rung total.
func TestServerSnapshotPerRung(t *testing.T) {
	srv, ts := newTestServer(t, 20)
	fetch := func(rung, seg int) int64 {
		url, err := srv.SegmentURL(ts.URL, rung, seg)
		if err != nil {
			t.Fatal(err)
		}
		return get(t, url)
	}
	n0a := fetch(0, 0)
	n0b := fetch(0, 1)
	n3 := fetch(3, 0)

	snap := srv.Snapshot()
	if len(snap.Rungs) != 6 {
		t.Fatalf("snapshot has %d rungs, want the 6-rung test ladder", len(snap.Rungs))
	}
	if r := snap.Rungs[0]; r.Requests != 2 || r.Bytes != n0a+n0b {
		t.Errorf("rung 0 = %+v, want 2 requests / %d bytes", r, n0a+n0b)
	}
	if r := snap.Rungs[3]; r.Requests != 1 || r.Bytes != n3 {
		t.Errorf("rung 3 = %+v, want 1 request / %d bytes", r, n3)
	}
	if r := snap.Rungs[1]; r.Requests != 0 || r.Bytes != 0 || r.Faults != 0 {
		t.Errorf("untouched rung 1 = %+v, want zeros", r)
	}
	if snap.Requests != 3 || snap.Bytes != n0a+n0b+n3 {
		t.Errorf("totals = %d requests / %d bytes, want 3 / %d", snap.Requests, snap.Bytes, n0a+n0b+n3)
	}
	for i, r := range snap.Rungs {
		if r.RepID == "" {
			t.Errorf("rung %d snapshot missing rep ID", i)
		}
	}
}

// TestServerSnapshotCountsFaults pins fault accounting per rung with a
// scripted plan: exactly the injected verdicts show up, on the rung
// that was hit.
func TestServerSnapshotCountsFaults(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.None},
	})
	srv, ts := newTestServer(t, 20, WithFaults(plan))
	url, err := srv.SegmentURL(ts.URL, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	get(t, url) // scripted 503
	get(t, url) // scripted pass-through

	snap := srv.Snapshot()
	if r := snap.Rungs[2]; r.Requests != 2 || r.Faults != 1 {
		t.Errorf("rung 2 = %+v, want 2 requests / 1 fault", r)
	}
	if snap.Faults != 1 {
		t.Errorf("total faults = %d, want 1", snap.Faults)
	}
}

// TestServerTelemetryExposition streams a real session against a
// telemetry-wired server and client, then scrapes the registry: the
// per-rung server series and the client counters must be present and
// consistent with Stats.
func TestServerTelemetryExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, ts := newTestServer(t, 20, WithServerTelemetry(reg))
	client, err := NewClient(ts.URL, abr.NewFESTIVE(), WithClientTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, want := range []string{
		`httpdash_server_requests_total{rung="0"}`,
		"# TYPE httpdash_server_bytes_total counter",
		"# TYPE httpdash_server_segment_seconds histogram",
		"httpdash_server_segment_seconds_count",
		"httpdash_client_segments_total",
		"httpdash_client_bytes_total",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}

	snap := srv.Snapshot()
	var telBytes, telRequests int64
	for i := range snap.Rungs {
		telBytes += srv.telBytes[i].Value()
		telRequests += srv.telRequests[i].Value()
	}
	if telBytes != snap.Bytes || telRequests != snap.Requests {
		t.Errorf("telemetry mirror diverged: %d/%d bytes, %d/%d requests",
			telBytes, snap.Bytes, telRequests, snap.Requests)
	}
	if got := srv.telLatency.Count(); got != snap.Requests {
		t.Errorf("latency histogram saw %d requests, server saw %d", got, snap.Requests)
	}
	if got := c(reg, "httpdash_client_segments_total"); got != int64(len(stats.Fetches)) {
		t.Errorf("client segments counter = %d, Stats has %d fetches", got, len(stats.Fetches))
	}
	if got := c(reg, "httpdash_client_bytes_total"); got != stats.TotalBytes {
		t.Errorf("client bytes counter = %d, Stats has %d", got, stats.TotalBytes)
	}
}

// c reads an unlabeled counter back out of the registry.
func c(reg *telemetry.Registry, name string) int64 {
	return reg.Counter(name, "").Value()
}

// TestClientTelemetryCountsRetries drives the client through a
// scripted fault storm and checks the registry mirrors the Stats
// resilience counters exactly.
func TestClientTelemetryCountsRetries(t *testing.T) {
	// Every segment's first attempt 503s, the retry succeeds.
	plan, err := faults.NewPlan(faults.Config{Error5xxProb: 1, MaxFaultsPerKey: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, 10, WithFaults(plan), WithServerTelemetry(reg))
	client, err := NewClient(ts.URL, abr.NewYoutube(),
		WithClientTelemetry(reg),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts:    3,
			AttemptTimeout: 5 * time.Second,
			BackoffBase:    time.Millisecond,
			BackoffMax:     2 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Fatal("storm produced no retries — test is vacuous")
	}
	if got := c(reg, "httpdash_client_retries_total"); got != int64(stats.Retries) {
		t.Errorf("retries counter = %d, Stats.Retries = %d", got, stats.Retries)
	}
	if got := c(reg, "httpdash_client_abandoned_total"); got != int64(stats.AbandonedSegments) {
		t.Errorf("abandoned counter = %d, Stats.AbandonedSegments = %d", got, stats.AbandonedSegments)
	}
}

// TestClientTelemetryDisabledIsInert pins that a client without the
// option behaves identically (the nil-metric no-op contract) — the
// session must not error and Stats must be populated as before.
func TestClientTelemetryDisabledIsInert(t *testing.T) {
	_, ts := newTestServer(t, 10)
	client, err := NewClient(ts.URL, abr.NewYoutube())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Fetches) == 0 || stats.TotalBytes == 0 {
		t.Errorf("session degenerate without telemetry: %+v", stats)
	}
	if errors.Is(err, ErrSegmentAbandoned) {
		t.Error("unexpected abandonment")
	}
}
