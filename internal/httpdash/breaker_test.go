package httpdash

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/telemetry"
)

// fakeClock is a hand-stepped clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBreakerScriptedRecovery walks the full state machine on a
// scripted clock: closed trips at the windowed failure rate, open
// fails fast for exactly the cool-down, half-open admits one probe at
// a time, and consecutive probe successes close the circuit again.
func TestBreakerScriptedRecovery(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Window:           4,
		MinSamples:       4,
		FailureThreshold: 0.5,
		OpenFor:          2 * time.Second,
		HalfOpenProbes:   1,
		CloseAfter:       2,
		Clock:            clk.Now,
	})

	// Below MinSamples nothing trips, even at a 100% failure rate.
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before MinSamples, want closed", b.State())
	}

	// The fourth failure reaches 4/4 >= 0.5: trip.
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker refused the tripping attempt")
	}
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state = %v opens = %d after trip, want open/1", b.State(), b.Opens())
	}

	// Open: fail fast, with the remaining cool-down as the hint.
	ok, wait := b.Allow()
	if ok {
		t.Fatal("open breaker allowed an attempt")
	}
	if wait <= 0 || wait > 2*time.Second {
		t.Fatalf("retry hint = %v, want (0, 2s]", wait)
	}
	clk.Advance(time.Second)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker allowed an attempt halfway through the cool-down")
	}

	// Cool-down over: half-open admits one probe, refuses a second.
	clk.Advance(1100 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}

	// First probe success: still half-open (CloseAfter = 2).
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after one probe success, want half-open", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after %d probe successes, want closed", b.State(), 2)
	}

	// The window restarted clean: one failure must not re-trip.
	if ok, _ := b.Allow(); !ok {
		t.Fatal("re-closed breaker refused an attempt")
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after one post-recovery failure, want closed", b.State())
	}
}

// TestBreakerProbeFailureReopens pins the half-open failure path: a
// failing probe re-opens the circuit for a fresh cool-down.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Window: 2, MinSamples: 2, FailureThreshold: 0.5,
		OpenFor: time.Second, HalfOpenProbes: 1, CloseAfter: 1,
		Clock: clk.Now,
	})
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(1100 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Record(false)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state = %v opens = %d after failed probe, want open/2", b.State(), b.Opens())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker allowed an attempt before the new cool-down")
	}
}

// TestBreakerDropReleasesProbe pins that a cancelled attempt releases
// the half-open probe slot without deciding recovery either way.
func TestBreakerDropReleasesProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{
		Window: 2, MinSamples: 2, FailureThreshold: 0.5,
		OpenFor: time.Second, HalfOpenProbes: 1, CloseAfter: 1,
		Clock: clk.Now,
	})
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	clk.Advance(1100 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	b.drop() // the probe's session was cancelled mid-flight
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after dropped probe, want half-open", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe slot leaked: next attempt refused after drop")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// brokenSegmentServer serves the manifest of a real httpdash server
// but answers segment requests from a script: the first failHits
// segment requests get 503 (optionally with Retry-After), later ones
// are proxied to the real handler. Every segment hit is timestamped —
// the record the open-circuit assertions run on.
type brokenSegmentServer struct {
	real     *Server
	failHits int64
	sendRA   bool

	mu   sync.Mutex
	hits []time.Time
	n    atomic.Int64
}

func (b *brokenSegmentServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/seg/") {
		b.real.ServeHTTP(w, r)
		return
	}
	b.mu.Lock()
	b.hits = append(b.hits, time.Now())
	b.mu.Unlock()
	if b.n.Add(1) <= b.failHits {
		if b.sendRA {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, "injected overload", http.StatusServiceUnavailable)
		return
	}
	b.real.ServeHTTP(w, r)
}

func (b *brokenSegmentServer) hitTimes() []time.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]time.Time(nil), b.hits...)
}

// TestClientBreakerOpenHostSeesNoRetries is the acceptance contract:
// the host's failures trip the breaker, every attempt during the
// cool-down fails fast without a request, the first post-cool-down
// probe succeeds against the healed host, and the session completes.
// The host-side hit log proves no retry touched the open circuit: the
// gap between the last failing hit and the probe spans the cool-down.
func TestClientBreakerOpenHostSeesNoRetries(t *testing.T) {
	srv, err := NewServer(testManifest(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	const openFor = 300 * time.Millisecond
	// One failing segment hit: with the manifest success already in the
	// window, 1 failure / 2 samples reaches the 0.5 threshold and trips.
	broken := &brokenSegmentServer{real: srv, failHits: 1}
	ts := httptest.NewServer(broken)
	defer ts.Close()

	br := NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 2, FailureThreshold: 0.5,
		OpenFor: openFor, HalfOpenProbes: 1, CloseAfter: 1,
	})
	client, err := NewClient(ts.URL, abr.NewFESTIVE(),
		WithSharedBreaker(br),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts:    6,
			AttemptTimeout: 5 * time.Second,
			BackoffBase:    2 * time.Millisecond,
			BackoffMax:     10 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("session failed despite recovery: %v (stats %+v)", err, stats)
	}
	if br.Opens() != 1 {
		t.Fatalf("breaker opened %d times, want exactly 1", br.Opens())
	}
	if br.State() != BreakerClosed {
		t.Errorf("breaker = %v after recovery, want closed", br.State())
	}
	if stats.FastFails == 0 {
		t.Error("no fast-fails recorded — the open circuit never refused an attempt")
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded — the storm never happened")
	}

	// The host-side record: hit k is the (only) failing request that
	// tripped the breaker; hit k+1 is the recovery probe. Nothing may
	// land between them, and the gap must span the cool-down.
	hits := broken.hitTimes()
	if len(hits) < 2 {
		t.Fatalf("host saw %d segment hits, want the failing hit plus the probe", len(hits))
	}
	gap := hits[1].Sub(hits[0])
	if gap < openFor-20*time.Millisecond {
		t.Errorf("probe landed %v after the trip, want >= the %v cool-down (a retry hit the open host)", gap, openFor)
	}
}

// TestClientBreakerFailsFastWhileHostDown pins the composition with
// rung downgrades when the host never heals: the breaker stops the
// hammering after the trip (the host sees only the pre-trip attempts)
// while downgrades still walk the session down the ladder before it
// abandons with both typed errors in the chain.
func TestClientBreakerFailsFastWhileHostDown(t *testing.T) {
	srv, err := NewServer(testManifest(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	broken := &brokenSegmentServer{real: srv, failHits: 1 << 30, sendRA: false}
	ts := httptest.NewServer(broken)
	defer ts.Close()

	// Two attempts: the first hits and trips the breaker (manifest
	// success + 1 failure = 2 samples at the 0.5 threshold), the second
	// fails fast — so the abandonment error carries the breaker's
	// refusal and the host is never touched again.
	br := NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 2, FailureThreshold: 0.5,
		OpenFor:        time.Minute, // never cools down within the test
		HalfOpenProbes: 1, CloseAfter: 1,
	})
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 5},
		WithSharedBreaker(br),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts:      2,
			AttemptTimeout:   5 * time.Second,
			BackoffBase:      time.Millisecond,
			BackoffMax:       2 * time.Millisecond,
			DowngradeOnRetry: true,
		}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err == nil {
		t.Fatal("session succeeded against a permanently failing host")
	}
	if !errors.Is(err, ErrSegmentAbandoned) || !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("err = %v, want both ErrSegmentAbandoned and ErrCircuitOpen in the chain", err)
	}
	hits := broken.hitTimes()
	if len(hits) != 1 {
		t.Errorf("host saw %d segment hits after the trip, want exactly the tripping one", len(hits))
	}
	if stats.FastFails != 1 {
		t.Errorf("FastFails = %d, want 1 (the retry refused by the open circuit)", stats.FastFails)
	}
	// Downgrade composition: the fast-failed retry still stepped down
	// the ladder, so a braking host degrades quality, not just latency.
	if stats.Downgrades != 1 {
		t.Errorf("Downgrades = %d, want 1 (rung 5 stepped to rung 4)", stats.Downgrades)
	}
}

// TestClientBreakerTelemetry checks the breaker series surface through
// WithClientTelemetry in either option order.
func TestClientBreakerTelemetry(t *testing.T) {
	srv, err := NewServer(testManifest(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	broken := &brokenSegmentServer{real: srv, failHits: 1 << 30}
	ts := httptest.NewServer(broken)
	defer ts.Close()

	reg := telemetry.NewRegistry()
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 0},
		WithClientTelemetry(reg), // before the breaker option on purpose
		WithCircuitBreaker(BreakerConfig{
			Window: 4, MinSamples: 2, FailureThreshold: 0.5,
			OpenFor: time.Minute,
		}),
		// Two attempts so the last one is the fast-fail: no backoff ever
		// consumes the minute-long cool-down hint.
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err == nil {
		t.Fatal("session succeeded against a failing host")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	if !strings.Contains(expo, "httpdash_client_breaker_state 1") {
		t.Errorf("exposition missing open breaker state:\n%s", expo)
	}
	if !strings.Contains(expo, "httpdash_client_breaker_opens_total 1") {
		t.Errorf("exposition missing breaker opens:\n%s", expo)
	}
	if got := c(reg, "httpdash_client_breaker_fast_fails_total"); got != int64(stats.FastFails) {
		t.Errorf("fast-fails counter = %d, Stats.FastFails = %d", got, stats.FastFails)
	}
}

// TestBackoffHonorsRetryAfterHint pins that a server Retry-After hint
// floors the backoff wait: the client does not come back early just to
// be shed again.
func TestBackoffHonorsRetryAfterHint(t *testing.T) {
	client, err := NewClient("http://example.invalid", &abr.Fixed{Rung: 0},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := client.backoff(context.Background(), 1, 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 150*time.Millisecond {
		t.Errorf("backoff slept %v, want >= the 150ms Retry-After hint", got)
	}
}

// TestBackoffAbortsOnCancel is the satellite contract: a cancelled
// context ends a backoff sleep immediately — including a context that
// was already cancelled on entry, even when no sleep would happen.
func TestBackoffAbortsOnCancel(t *testing.T) {
	client, err := NewClient("http://example.invalid", &abr.Fixed{Rung: 0},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BackoffBase: 10 * time.Second, BackoffMax: 20 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = client.backoff(ctx, 1, 0)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("backoff = %v, want a wrapped context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Errorf("backoff took %v to notice the cancellation, want immediate", elapsed)
	}

	// Already-cancelled context: immediate error, even with a zero base
	// (the pre-sleep check, not the select, must catch it).
	zeroClient, err := NewClient("http://example.invalid", &abr.Fixed{Rung: 0},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 2}))
	if err != nil {
		t.Fatal(err)
	}
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if err := zeroClient.backoff(done, 1, 0); err == nil {
		t.Error("backoff with a cancelled context and zero base returned nil")
	}
}

// TestStreamCancelAbortsMidBackoff drives the satellite end to end: a
// session stuck in a long scripted backoff storm returns promptly when
// the caller cancels, instead of finishing the sleep.
func TestStreamCancelAbortsMidBackoff(t *testing.T) {
	srv, err := NewServer(testManifest(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	broken := &brokenSegmentServer{real: srv, failHits: 1 << 30}
	ts := httptest.NewServer(broken)
	defer ts.Close()

	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 0},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 10, BackoffBase: 30 * time.Second, BackoffMax: 60 * time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.Stream(ctx)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream = %v, want a wrapped context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to end the session, want well under the 30s backoff", elapsed)
	}
}
