package httpdash

import (
	"fmt"
	"io"

	"ecavs/internal/dash"
)

// manifestInfo is the client-side view of the MPD.
type manifestInfo = dash.MPDInfo

// parseManifest decodes an MPD stream into client parameters.
func parseManifest(r io.Reader) (manifestInfo, error) {
	mpd, err := dash.ParseMPD(r)
	if err != nil {
		return manifestInfo{}, fmt.Errorf("httpdash: parse manifest: %w", err)
	}
	info, err := dash.InfoFromMPD(mpd)
	if err != nil {
		return manifestInfo{}, fmt.Errorf("httpdash: manifest info: %w", err)
	}
	return info, nil
}
