package httpdash

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecavs/internal/telemetry"
)

// AdmissionConfig bounds how much concurrent work the server accepts.
// Excess demand is shed with 503 + Retry-After instead of queuing
// unboundedly — the serving-path analogue of the paper's Eq. 1
// tradeoff: degrade (shed a request the client can retry at a lower
// rung) before failing outright (an unbounded queue that takes every
// session down when it finally topples).
type AdmissionConfig struct {
	// MaxInFlight caps concurrently served segment transfers. Required
	// (>= 1); everything else defaults.
	MaxInFlight int
	// MaxQueue bounds the FIFO wait queue in front of the in-flight
	// slots. Zero queues nothing: a request that cannot start
	// immediately is shed.
	MaxQueue int
	// QueueWait is the longest a queued request waits for a slot before
	// being shed (default 100ms). Short by design — a client retry with
	// backoff is cheaper than a convoy of stale waiters.
	QueueWait time.Duration
	// RetryAfter is the hint attached to every shed response (default
	// 1s); clients honour it in their backoff computation.
	RetryAfter time.Duration
	// PriorityByRung makes top-half ladder rungs shed first under
	// pressure: they may use only half the wait queue, so when the
	// queue fills past the midpoint the server keeps admitting cheap
	// low-rung requests while expensive top-rung ones bounce. Combined
	// with the client's downgrade-on-retry this degrades quality before
	// availability.
	PriorityByRung bool
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// WithAdmissionControl bounds concurrent segment transfers: MaxInFlight
// run, up to MaxQueue wait FIFO for at most QueueWait, and everything
// beyond that is shed with 503 + Retry-After. A zero-valued config is
// ignored (admission control stays off, the seed behaviour).
func WithAdmissionControl(cfg AdmissionConfig) ServerOption {
	return func(s *Server) {
		if cfg.MaxInFlight < 1 {
			return
		}
		cfg = cfg.withDefaults()
		s.admission = &admission{
			cfg:   cfg,
			slots: make(chan struct{}, cfg.MaxInFlight),
		}
	}
}

// admission is the server's bounded admission controller. The slot
// semaphore is a buffered channel: blocked senders park in the
// runtime's FIFO wait queue, which is exactly the "short FIFO wait
// queue" the config describes, and the queued counter bounds how many
// may park at once.
type admission struct {
	cfg    AdmissionConfig
	slots  chan struct{} // capacity MaxInFlight; send = acquire
	queued atomic.Int64  // current waiters (bounds the FIFO queue)

	// queuedTotal counts requests that waited for a slot (always on;
	// telQueued is the optional registry mirror, nil = no-op).
	queuedTotal atomic.Int64
	telQueued   *telemetry.Counter
}

// admitResult says how an admission attempt ended.
type admitResult int

const (
	admitted admitResult = iota // slot acquired; caller must release
	shed                        // bounced: respond 503 + Retry-After
	gone                        // client left while queued: just return
)

// admit tries to acquire an in-flight slot for a rung's request,
// waiting in the bounded FIFO queue if necessary.
func (a *admission) admit(r *http.Request, rung, rungs int) admitResult {
	select {
	case a.slots <- struct{}{}:
		return admitted
	default:
	}
	// No free slot: queue if the rung's share of the queue has room.
	// Top-half rungs see half the queue under PriorityByRung, so they
	// start shedding while low rungs still buffer — quality degrades
	// before availability does.
	limit := int64(a.cfg.MaxQueue)
	if a.cfg.PriorityByRung && rung >= (rungs+1)/2 {
		limit /= 2
	}
	if limit <= 0 {
		return shed
	}
	if q := a.queued.Add(1); q > limit {
		a.queued.Add(-1)
		return shed
	}
	a.queuedTotal.Add(1)
	a.telQueued.Inc()
	timer := time.NewTimer(a.cfg.QueueWait)
	defer func() {
		timer.Stop()
		a.queued.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		return admitted
	case <-timer.C:
		return shed
	case <-r.Context().Done():
		return gone
	}
}

// release frees an in-flight slot.
func (a *admission) release() {
	<-a.slots
}

// inFlight reports the currently admitted transfer count.
func (a *admission) inFlight() int {
	return len(a.slots)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	sec := int64((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return strconv.FormatInt(sec, 10)
}

// shedResponse answers 503 Service Unavailable with a Retry-After
// hint — the contract every shed path (admission, drain) goes through,
// so a client never sees an overload 5xx without a hint.
func shedResponse(w http.ResponseWriter, retryAfter time.Duration) {
	w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	http.Error(w, "server overloaded", http.StatusServiceUnavailable)
}

// drainGate tracks in-flight requests for graceful shutdown. The
// packed atomic word holds the in-flight count plus a draining bit, so
// the per-request cost is two atomic RMWs; idle is closed exactly once,
// when the gate is draining and the count reaches zero.
type drainGate struct {
	state    atomic.Int64 // count | drainingBit
	idleOnce sync.Once
	idle     chan struct{}
}

const drainingBit = int64(1) << 62

func newDrainGate() *drainGate {
	return &drainGate{idle: make(chan struct{})}
}

// enter registers a request; false means the server is draining and
// the request must be refused.
func (g *drainGate) enter() bool {
	for {
		v := g.state.Load()
		if v&drainingBit != 0 {
			return false
		}
		if g.state.CompareAndSwap(v, v+1) {
			return true
		}
	}
}

// exit deregisters a request, closing idle if it was the last one out
// during a drain.
func (g *drainGate) exit() {
	if v := g.state.Add(-1); v == drainingBit {
		g.idleOnce.Do(func() { close(g.idle) })
	}
}

// drain flips the gate: subsequent enters fail, and idle closes once
// the in-flight count hits zero.
func (g *drainGate) drain() {
	for {
		v := g.state.Load()
		if v&drainingBit != 0 {
			return // already draining; the first drainer owns idle
		}
		if g.state.CompareAndSwap(v, v|drainingBit) {
			if v == 0 {
				g.idleOnce.Do(func() { close(g.idle) })
			}
			return
		}
	}
}

// draining reports whether drain has been called.
func (g *drainGate) draining() bool {
	return g.state.Load()&drainingBit != 0
}

// inFlight reports the currently entered request count.
func (g *drainGate) inFlight() int64 {
	return g.state.Load() &^ drainingBit
}
