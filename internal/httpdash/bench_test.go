package httpdash

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/faults"
)

// discardResponseWriter sinks a response without buffering it, so the
// server benchmarks measure the serving path itself rather than
// httptest's recorder or the kernel's loopback stack.
type discardResponseWriter struct {
	h     http.Header
	bytes int64
}

func (d *discardResponseWriter) Header() http.Header { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) {
	d.bytes += int64(len(p))
	return len(p), nil
}
func (d *discardResponseWriter) WriteHeader(int) {}

func newBenchServer(tb testing.TB, opts ...ServerOption) *Server {
	tb.Helper()
	video := dash.Video{Title: "bench", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 20}
	m, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	srv, err := NewServer(m, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return srv
}

// BenchmarkServerThroughput hammers the segment path with 8 concurrent
// connections (one goroutine each, requests drawn off a shared
// counter), unshaped, against a discarding writer: the measured cost is
// the handler itself — path parse, accounting, pacing check, body
// write. Pre-PR (per-request 64 KiB buffer fill, mutex-guarded rate
// reads) this ran at ~98,700 ns/op and 65,606 B/op on the reference
// machine; the pooled path pins a small constant per-request budget.
func BenchmarkServerThroughput(b *testing.B) {
	srv := newBenchServer(b)
	const conns = 8
	url, err := srv.SegmentURL("", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, url, nil)
	var n int64
	sizeMB, err := srv.manifest.SegmentSizeMB(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(sizeMB * 1e6))
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &discardResponseWriter{h: make(http.Header, 4)}
			r := req.Clone(req.Context())
			for atomic.AddInt64(&n, 1) <= int64(b.N) {
				srv.ServeHTTP(w, r)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkFetchPipeline streams a 10-segment presentation over real
// HTTP with 10 ms of injected per-request latency — the regime the
// prefetch pipeline exists for. ahead=0 is the serial client paying
// the latency once per segment; ahead=3 overlaps fetches so the
// latency amortises across the pipeline depth.
func BenchmarkFetchPipeline(b *testing.B) {
	for _, ahead := range []int{0, 3} {
		b.Run(fmt.Sprintf("ahead=%d", ahead), func(b *testing.B) {
			plan, err := faults.NewPlan(faults.Config{LatencyProb: 1, LatencyFor: 10 * time.Millisecond}, 1)
			if err != nil {
				b.Fatal(err)
			}
			srv := newBenchServer(b, WithFaults(plan))
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client, err := NewClient(ts.URL, &abr.Fixed{Rung: 0},
				WithBufferThreshold(8), WithFetchAhead(ahead))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := client.Stream(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(stats.Fetches) != 10 {
					b.Fatalf("fetched %d segments, want 10", len(stats.Fetches))
				}
			}
		})
	}
}
