package httpdash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecavs/internal/edgecache"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

// Edge defaults. Segments are immutable in DASH, so the freshness
// window mainly bounds how long a cache survives a re-encoded
// presentation; the staleness window bounds how old an entry may be
// and still paper over an origin failure.
const (
	DefaultEdgeCapacityBytes = 64 << 20 // 64 MiB across all shards
	DefaultEdgeFreshFor      = 5 * time.Minute
	DefaultEdgeStaleFor      = 30 * time.Second
	DefaultEdgeRetryAfter    = time.Second
	defaultEdgeFillTimeout   = 30 * time.Second
)

// Edge is a caching reverse proxy in front of an httpdash origin — the
// CDN edge tier of the serving path. Segment requests are served from
// a sharded in-memory cache (zero-copy: a hit writes the shared
// payload slice straight to the socket); misses collapse into one
// origin fill per key via per-key singleflight; and when the origin
// fails (5xx, connection reset, timeout) a stale entry inside the
// bounded staleness window is served instead — stale-while-error, the
// edge's contribution to graceful degradation. Everything else
// (manifest, unknown paths) proxies straight through.
//
// Every edge-originated failure answers 503 with a Retry-After hint
// (the origin's own hint when it shed, DefaultEdgeRetryAfter
// otherwise), so clients and load generators classify edge failures
// exactly like origin sheds — the overload invariants hold through the
// extra tier.
//
// Construct with NewEdge; the zero value is unusable.
type Edge struct {
	origin string
	hc     *http.Client
	cache  *edgecache.Cache

	cacheCfg   edgecache.Config
	freshFor   time.Duration
	staleFor   time.Duration
	retryAfter time.Duration

	// flights collapses concurrent misses: one origin fill per key in
	// flight at a time, followers wait for the leader's result.
	mu      sync.Mutex
	flights map[string]*flight

	// Request-outcome counters: requests == hits + fills + staleServes
	// + errors, the accounting invariant the edgesmoke gate enforces.
	requests, hits, fills, staleServes, errors, sharedFills atomic.Int64

	telReg *telemetry.Registry
	tel    edgeTelemetry
	tracer *tracing.Tracer
}

var _ http.Handler = (*Edge)(nil)

// edgeTelemetry mirrors the edge counters into a registry. Nil fields
// are no-ops, so the serving path updates them unconditionally.
type edgeTelemetry struct {
	requests, hits, fills, stale, errs, shared *telemetry.Counter
}

// flight is one in-flight origin fill. Followers block on done and
// then read the outcome fields, which the leader writes before
// closing the channel.
type flight struct {
	done       chan struct{}
	entry      *edgecache.Entry // non-nil on success
	err        error
	retryAfter time.Duration // origin's Retry-After hint, if it shed
}

// WithEdgeCache sizes the segment cache (default: 64 MiB over 16
// shards). A zero-valued config keeps the defaults.
func WithEdgeCache(cfg edgecache.Config) EdgeOption {
	return func(e *Edge) {
		if cfg.CapacityBytes > 0 {
			e.cacheCfg.CapacityBytes = cfg.CapacityBytes
		}
		if cfg.Shards > 0 {
			e.cacheCfg.Shards = cfg.Shards
		}
	}
}

// WithEdgeFreshness sets the staleness policy: entries younger than
// fresh are served without consulting the origin; entries older than
// fresh trigger a revalidating origin fetch, and if that fetch fails
// the stale copy is served as long as its age stays within
// fresh+stale. Non-positive arguments keep the defaults.
func WithEdgeFreshness(fresh, stale time.Duration) EdgeOption {
	return func(e *Edge) {
		if fresh > 0 {
			e.freshFor = fresh
		}
		if stale > 0 {
			e.staleFor = stale
		}
	}
}

// WithEdgeRetryAfter sets the Retry-After hint on edge-originated 503
// responses when the origin did not provide one (default 1s).
func WithEdgeRetryAfter(d time.Duration) EdgeOption {
	return func(e *Edge) {
		if d > 0 {
			e.retryAfter = d
		}
	}
}

// WithEdgeHTTPClient overrides the origin-facing http.Client (default:
// 30 s timeout over NewTransport's pooled keep-alive transport).
func WithEdgeHTTPClient(hc *http.Client) EdgeOption {
	return func(e *Edge) {
		if hc != nil {
			e.hc = hc
		}
	}
}

// WithEdgeTelemetry mirrors the edge's counters into a registry:
//
//	edgecache_requests_total       segment requests at the edge
//	edgecache_hits_total           served from cache without an origin round trip
//	edgecache_fills_total          origin fetches that filled the cache
//	edgecache_stale_serves_total   stale entries served over an origin failure
//	edgecache_errors_total         requests answered 503 (origin failed, nothing cached)
//	edgecache_shared_fills_total   misses that piggybacked on another request's fill
//	edgecache_entries              resident entries (scrape time)
//	edgecache_bytes                resident payload bytes (scrape time)
//	edgecache_evictions_total      entries displaced by the byte cap (scrape time)
//
// A nil registry is a no-op. The option only records the registry;
// wiring happens after all options applied, so the scrape-time gauges
// read whatever cache the final configuration built.
func WithEdgeTelemetry(reg *telemetry.Registry) EdgeOption {
	return func(e *Edge) {
		e.telReg = reg
	}
}

// WithEdgeTracing records one span tree per segment request: a root
// span that joins the client's trace via its W3C `traceparent` header,
// a `serve_cached` child for cache (and stale) serves, and a
// `fill_origin` child for origin fetches — which forward the edge's
// traceparent, so a traced origin joins the same trace and a miss
// shows up as one merged client → edge → origin timeline. A nil tracer
// keeps tracing disabled at zero cost on the hit path.
func WithEdgeTracing(tr *tracing.Tracer) EdgeOption {
	return func(e *Edge) {
		e.tracer = tr
	}
}

// NewEdge builds a caching proxy for the origin at the given base URL
// (serving /manifest.mpd and /seg/... the way httpdash.Server does).
func NewEdge(origin string, opts ...EdgeOption) (*Edge, error) {
	if origin == "" {
		return nil, errors.New("httpdash: empty origin URL")
	}
	e := &Edge{
		origin:     strings.TrimSuffix(origin, "/"),
		hc:         &http.Client{Timeout: defaultEdgeFillTimeout, Transport: NewTransport()},
		cacheCfg:   edgecache.Config{CapacityBytes: DefaultEdgeCapacityBytes},
		freshFor:   DefaultEdgeFreshFor,
		staleFor:   DefaultEdgeStaleFor,
		retryAfter: DefaultEdgeRetryAfter,
		flights:    make(map[string]*flight),
	}
	applyOptions(e, opts)
	cache, err := edgecache.New(e.cacheCfg)
	if err != nil {
		return nil, err
	}
	e.cache = cache
	e.wireTelemetry()
	return e, nil
}

// wireTelemetry registers the edge series after all options applied;
// the gauges close over e, so they read the final cache.
func (e *Edge) wireTelemetry() {
	reg := e.telReg
	if reg == nil {
		return
	}
	e.tel = edgeTelemetry{
		requests: reg.Counter("edgecache_requests_total", "Segment requests arriving at the edge."),
		hits:     reg.Counter("edgecache_hits_total", "Segment requests served from the edge cache."),
		fills:    reg.Counter("edgecache_fills_total", "Origin fetches that filled the edge cache."),
		stale:    reg.Counter("edgecache_stale_serves_total", "Stale entries served over an origin failure."),
		errs:     reg.Counter("edgecache_errors_total", "Edge requests answered 503 after an origin failure."),
		shared:   reg.Counter("edgecache_shared_fills_total", "Misses collapsed onto another request's origin fill."),
	}
	reg.GaugeFunc("edgecache_entries", "Entries resident in the edge cache (sampled at scrape time).",
		func() float64 { return float64(e.cache.Stats().Entries) })
	reg.GaugeFunc("edgecache_bytes", "Payload bytes resident in the edge cache (sampled at scrape time).",
		func() float64 { return float64(e.cache.Stats().Bytes) })
	reg.GaugeFunc("edgecache_evictions_total", "Entries displaced by the byte cap (sampled at scrape time).",
		func() float64 { return float64(e.cache.Stats().Evictions) })
}

// EdgeSnapshot is a point-in-time copy of the edge's request
// accounting plus the underlying cache counters.
type EdgeSnapshot struct {
	// Requests always equals Hits + Fills + StaleServes + Errors:
	// every segment request resolves to exactly one outcome.
	Requests int64 `json:"requests"`
	// Hits were served from cache without waiting on the origin —
	// including misses that piggybacked on a concurrent fill
	// (SharedFills counts those separately, as a subset of Hits).
	Hits int64 `json:"hits"`
	// Fills led an origin fetch that succeeded.
	Fills int64 `json:"fills"`
	// StaleServes answered with a stale entry because the origin
	// failed inside the staleness window.
	StaleServes int64 `json:"stale_serves"`
	// Errors were answered 503 + Retry-After: origin failed, nothing
	// servable cached.
	Errors int64 `json:"errors"`
	// SharedFills counts singleflight followers (already in Hits).
	SharedFills int64 `json:"shared_fills"`
	// Cache is the sharded cache's own accounting (residency,
	// evictions, uncacheable payloads).
	Cache edgecache.Stats `json:"cache"`
}

// HitRatio is the fraction of edge requests served without a
// successful origin round trip of their own (hits + stale serves).
func (s EdgeSnapshot) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits+s.StaleServes) / float64(s.Requests)
}

// Snapshot reads the edge counters.
func (e *Edge) Snapshot() EdgeSnapshot {
	return EdgeSnapshot{
		Requests:    e.requests.Load(),
		Hits:        e.hits.Load(),
		Fills:       e.fills.Load(),
		StaleServes: e.staleServes.Load(),
		Errors:      e.errors.Load(),
		SharedFills: e.sharedFills.Load(),
		Cache:       e.cache.Stats(),
	}
}

// ServeHTTP implements http.Handler: segments go through the cache,
// everything else proxies straight through to the origin.
func (e *Edge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/seg/") {
		e.serveSegment(w, r)
		return
	}
	e.proxyThrough(w, r)
}

// proxyThrough forwards a non-segment request (the manifest, mostly)
// to the origin and copies the response back verbatim.
func (e *Edge) proxyThrough(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, e.origin+r.URL.Path, nil)
	if err != nil {
		http.Error(w, "bad proxy request", http.StatusBadRequest)
		return
	}
	if tp := r.Header.Get(tracing.Header); tp != "" {
		req.Header.Set(tracing.Header, tp)
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		shedResponse(w, e.retryAfter)
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		h.Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// serveSegment is the cached path. The cache key is the path below
// /seg/ — "<repID>/<n>.m4s", i.e. rung and segment — taken as a
// substring so the hit path allocates nothing for the lookup.
func (e *Edge) serveSegment(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Path[len("/seg/"):]
	e.requests.Add(1)
	e.tel.requests.Inc()

	// Fast path first, tracing after: a fresh hit under a nil tracer
	// must stay as cheap as the origin's own fast path.
	now := time.Now()
	if ent := e.cache.Get(key); ent != nil && now.Sub(ent.FilledAt) <= e.freshFor {
		if e.tracer == nil {
			e.hits.Add(1)
			e.tel.hits.Inc()
			writeEntry(w, ent)
			return
		}
		span := e.tracer.StartRemote("edge_segment", r.Header.Get(tracing.Header))
		span.SetAttr("key", key)
		e.hits.Add(1)
		e.tel.hits.Inc()
		e.serveCached(w, span, ent, false)
		span.End()
		return
	}

	// Miss or stale: one origin fill per key, everyone else waits.
	var span *tracing.Span
	if e.tracer != nil {
		span = e.tracer.StartRemote("edge_segment", r.Header.Get(tracing.Header))
		span.SetAttr("key", key)
		defer span.End()
	}

	e.mu.Lock()
	f, follower := e.flights[key]
	if !follower {
		f = &flight{done: make(chan struct{})}
		e.flights[key] = f
	}
	e.mu.Unlock()

	if follower {
		select {
		case <-f.done:
		case <-r.Context().Done():
			span.SetStatus("cancelled", "client gone while awaiting a shared fill")
			return
		}
		if f.entry != nil {
			e.hits.Add(1)
			e.sharedFills.Add(1)
			e.tel.hits.Inc()
			e.tel.shared.Inc()
			span.SetAttr("singleflight", "follower")
			e.serveCached(w, span, f.entry, false)
			return
		}
		e.answerFillFailure(w, r, span, key, f.err, f.retryAfter, now)
		return
	}

	f.entry, f.retryAfter, f.err = e.fillOrigin(key, span)
	e.mu.Lock()
	delete(e.flights, key)
	e.mu.Unlock()
	close(f.done)

	if f.err != nil {
		e.answerFillFailure(w, r, span, key, f.err, f.retryAfter, now)
		return
	}
	e.fills.Add(1)
	e.tel.fills.Inc()
	writeEntry(w, f.entry)
	if span != nil {
		span.SetAttrInt("bytes", int64(len(f.entry.Data)))
	}
}

// serveCached writes a cache (or stale) serve under a serve_cached
// span carrying the payload size and the entry's age.
func (e *Edge) serveCached(w http.ResponseWriter, span *tracing.Span, ent *edgecache.Entry, stale bool) {
	sp := span.StartChild("serve_cached")
	sp.SetAttrInt("bytes", int64(len(ent.Data)))
	sp.SetAttrDuration("age", time.Since(ent.FilledAt))
	if stale {
		sp.SetStatus("stale", "origin failed; served inside the staleness window")
	}
	writeEntry(w, ent)
	sp.End()
}

// writeEntry is the zero-copy serve: precomputed headers, one Write of
// the shared payload slice.
func writeEntry(w http.ResponseWriter, ent *edgecache.Entry) {
	h := w.Header()
	h.Set("Content-Type", ent.ContentType)
	h.Set("Content-Length", ent.ContentLength)
	_, _ = w.Write(ent.Data)
}

// answerFillFailure resolves a request whose origin fill failed:
// serve the stale copy if one is inside the staleness window,
// otherwise answer 503 with a Retry-After hint — the origin's own
// hint when it shed, the edge default otherwise — so the failure is
// classified as a shed, not an anonymous error, by every client.
func (e *Edge) answerFillFailure(w http.ResponseWriter, r *http.Request, span *tracing.Span, key string, ferr error, hint time.Duration, now time.Time) {
	if ent := e.cache.Get(key); ent != nil {
		if age := now.Sub(ent.FilledAt); age <= e.freshFor+e.staleFor {
			e.staleServes.Add(1)
			e.tel.stale.Inc()
			span.SetStatus("stale", "origin failed; served stale")
			e.serveCached(w, span, ent, true)
			return
		}
		// Beyond the staleness window the copy is unusable; retire it
		// so residency reflects servable bytes.
		e.cache.Remove(key)
	}
	e.errors.Add(1)
	e.tel.errs.Inc()
	span.SetError(ferr)
	if hint <= 0 {
		hint = e.retryAfter
	}
	shedResponse(w, hint)
}

// fillOrigin fetches one segment from the origin under a fill_origin
// span whose traceparent rides the request, so a traced origin joins
// the same trace. The fill runs under its own deadline, detached from
// the leading client's context: a leader that disconnects mid-fill
// must not poison the followers waiting on the flight.
func (e *Edge) fillOrigin(key string, span *tracing.Span) (*edgecache.Entry, time.Duration, error) {
	sp := span.StartChild("fill_origin")
	defer sp.End()
	ctx, cancel := context.WithTimeout(context.Background(), defaultEdgeFillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.origin+"/seg/"+key, nil)
	if err != nil {
		sp.SetError(err)
		return nil, 0, fmt.Errorf("httpdash: build origin request: %w", err)
	}
	if tp := sp.TraceParent(); tp != "" {
		req.Header.Set(tracing.Header, tp)
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		sp.SetError(err)
		return nil, 0, fmt.Errorf("httpdash: origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := &statusError{code: resp.StatusCode, status: resp.Status, retryAfter: parseRetryAfter(resp)}
		sp.SetStatus("error", resp.Status)
		sp.SetAttrInt("http_status", int64(resp.StatusCode))
		return nil, err.retryAfter, fmt.Errorf("httpdash: origin: %w", err)
	}
	data, err := readFullBody(resp)
	if err != nil {
		sp.SetError(err)
		return nil, 0, err
	}
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "video/iso.segment"
	}
	ent, cached := e.cache.Fill(key, data, ct, strconv.Itoa(len(data)), time.Now())
	sp.SetAttrInt("bytes", int64(len(data)))
	if !cached {
		sp.SetAttr("cached", "false")
	}
	return ent, 0, nil
}

// readFullBody reads an origin response to completion, insisting on
// the advertised Content-Length: a short body is the same torn
// delivery the streaming client rejects, and caching it would convert
// one origin fault into an unbounded number of bad serves.
func readFullBody(resp *http.Response) ([]byte, error) {
	if want := resp.ContentLength; want >= 0 {
		data := make([]byte, want)
		if _, err := io.ReadFull(resp.Body, data); err != nil {
			return nil, fmt.Errorf("httpdash: origin body: %w: %w", ErrTruncated, err)
		}
		return data, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpdash: origin body: %w", err)
	}
	return data, nil
}
