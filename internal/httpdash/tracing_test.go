package httpdash

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/faults"
	"ecavs/internal/tracing"
)

// traceSetup wires a client and server around one shared trace store
// (the in-process topology cmd/loadgen uses), keeping every trace.
func traceSetup(t *testing.T, faultCfg *faults.Config, clientOpts ...ClientOption) (*tracing.Store, *Client) {
	t.Helper()
	store := tracing.NewStore(256)
	keepAll := tracing.Sampler{KeepErrors: true, Ratio: 1}
	serverTracer := tracing.New(tracing.Config{Service: "server", Sampler: keepAll, Seed: 2}, store)
	clientTracer := tracing.New(tracing.Config{Service: "client", Sampler: keepAll, Seed: 3}, store)

	srvOpts := []ServerOption{WithServerTracing(serverTracer)}
	if faultCfg != nil {
		plan, err := faults.NewPlan(*faultCfg, 7)
		if err != nil {
			t.Fatal(err)
		}
		srvOpts = append(srvOpts, WithFaults(plan))
	}
	_, ts := newTestServer(t, 8, srvOpts...)

	opts := append([]ClientOption{WithTracing(clientTracer)}, clientOpts...)
	client, err := NewClient(ts.URL, abr.NewYoutube(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return store, client
}

// TestTracingEndToEnd is the acceptance-criteria scenario: a faulty
// server forces client retries, and the resulting trace carries the
// client's attempt spans and the server's spans under one trace ID.
func TestTracingEndToEnd(t *testing.T) {
	store, client := traceSetup(t,
		&faults.Config{Error5xxProb: 1, MaxFaultsPerKey: 1},
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}),
	)
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if stats.Retries == 0 {
		t.Fatal("fault plan produced no retries — the scenario is vacuous")
	}

	views := store.Views()
	if len(views) != len(stats.Fetches) {
		t.Fatalf("%d merged traces for %d segments", len(views), len(stats.Fetches))
	}
	// Every segment with a retry must have a cross-process trace whose
	// client attempt spans and server spans share the trace ID.
	crossRetried := 0
	for _, v := range views {
		if len(v.Services) != 2 {
			t.Fatalf("trace %s spans services %v, want client+server", v.TraceID, v.Services)
		}
		var attempts, serves, backoffs int
		var sawAdmissionlessServe bool
		for _, sp := range v.Spans {
			switch sp.Name {
			case "attempt":
				if sp.Service != "client" {
					t.Fatalf("attempt span from %q", sp.Service)
				}
				attempts++
			case "backoff":
				backoffs++
			case "serve_segment":
				if sp.Service != "server" {
					t.Fatalf("serve_segment span from %q", sp.Service)
				}
				serves++
				if sp.ParentID == "" {
					sawAdmissionlessServe = true
				}
			}
		}
		if attempts == 0 || serves == 0 {
			t.Fatalf("trace %s: %d attempts, %d serves — not end-to-end", v.TraceID, attempts, serves)
		}
		if sawAdmissionlessServe {
			t.Fatalf("trace %s: server root lost its client parent link", v.TraceID)
		}
		if attempts > 1 {
			crossRetried++
			if backoffs == 0 {
				t.Fatalf("trace %s retried without a backoff span", v.TraceID)
			}
			if !v.Error {
				t.Fatalf("trace %s retried but carries no error status", v.TraceID)
			}
		}
	}
	if crossRetried == 0 {
		t.Fatal("no retried cross-process trace found")
	}
}

// TestTracingServerSpansDetail checks the server-side span inventory:
// admission and write children with byte accounting.
func TestTracingServerSpansDetail(t *testing.T) {
	store, client := traceSetup(t, nil)
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	views := store.Views()
	if len(views) == 0 {
		t.Fatal("no traces recorded")
	}
	var sawWrite bool
	for _, v := range views {
		for _, sp := range v.Spans {
			if sp.Service == "server" && sp.Name == "write" {
				sawWrite = true
				var gotBytes, gotPace bool
				for _, a := range sp.Attrs {
					if a.Key == "bytes" && a.Value != "0" {
						gotBytes = true
					}
					if a.Key == "pace_wait" {
						gotPace = true
					}
				}
				if !gotBytes || !gotPace {
					t.Fatalf("write span attrs incomplete: %+v", sp.Attrs)
				}
			}
		}
	}
	if !sawWrite {
		t.Fatal("no server write span recorded")
	}
	_ = stats
}

// TestTracingPipelinedSpans checks the prefetch pipeline records
// pipeline_wait children and one root per segment.
func TestTracingPipelinedSpans(t *testing.T) {
	store, client := traceSetup(t, nil, WithFetchAhead(2))
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	views := store.Views()
	if len(views) != len(stats.Fetches) {
		t.Fatalf("%d traces for %d segments", len(views), len(stats.Fetches))
	}
	waits := 0
	for _, v := range views {
		for _, sp := range v.Spans {
			if sp.Name == "pipeline_wait" {
				waits++
			}
		}
	}
	if waits != len(stats.Fetches) {
		t.Fatalf("%d pipeline_wait spans for %d segments", waits, len(stats.Fetches))
	}
}

// TestTracingDisabledIsInert pins that a nil tracer changes nothing:
// the same session succeeds and no store is touched.
func TestTracingDisabledIsInert(t *testing.T) {
	_, ts := newTestServer(t, 8)
	client, err := NewClient(ts.URL, abr.NewYoutube(), WithTracing(nil))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("stream with tracing disabled: %v", err)
	}
	if len(stats.Fetches) == 0 {
		t.Fatal("no segments fetched")
	}
}

// TestTracingShedStatus checks an admission shed surfaces as a "shed"
// span status — which is what makes the KeepErrors tail-sampling slice
// retain every shed request even at Ratio 0.
func TestTracingShedStatus(t *testing.T) {
	store := tracing.NewStore(64)
	serverTracer := tracing.New(tracing.Config{
		Service: "server",
		// Errors-only sampling: the shed trace must be kept purely by
		// its status, not by ratio or latency.
		Sampler: tracing.Sampler{KeepErrors: true, Ratio: 0},
		Seed:    5,
	}, store)
	srv, ts := newTestServer(t, 8,
		WithServerTracing(serverTracer),
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, RetryAfter: time.Second}),
		// Slow egress keeps the first transfer holding the only
		// admission slot while the second request arrives.
		WithRateLimitMBps(0.05),
	)
	url, err := srv.SegmentURL(ts.URL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	// First request admits and then crawls through pacing; http.Get
	// returns at the first chunk, with the handler still in the slot.
	slow, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		slow.Body.Close()
	}()

	shed, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, shed.Body)
	shed.Body.Close()
	if shed.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503 shed", shed.StatusCode)
	}

	// The shed fragment completes the moment the 503 is written.
	found := false
	for _, v := range store.Views() {
		for _, sp := range v.Spans {
			if sp.Status == "shed" {
				found = true
			}
		}
		if len(v.Verdicts) != 1 || v.Verdicts[0] != tracing.VerdictError {
			t.Fatalf("shed trace verdicts = %v, want [error]", v.Verdicts)
		}
	}
	if !found {
		t.Fatal("no shed span status recorded")
	}
}
