package httpdash

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/faults"
)

func testManifest(t *testing.T, durationSec float64) *dash.Manifest {
	t.Helper()
	video := dash.Video{Title: "http-test", SpatialInfo: 45, TemporalInfo: 15, DurationSec: durationSec}
	m, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t *testing.T, durationSec float64, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(testManifest(t, durationSec), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil manifest accepted")
	}
}

func TestServerManifestEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 20)
	resp, err := http.Get(ts.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/dash+xml" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "urn:mpeg:dash:schema:mpd:2011") {
		t.Error("manifest body does not look like an MPD")
	}
	// It parses back into usable info.
	info, err := parseManifest(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if info.SegmentCount != 10 || len(info.Ladder) != 6 {
		t.Errorf("info = %+v", info)
	}
}

func TestServerSegmentEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, 20)
	url, err := srv.SegmentURL(ts.URL, 3, 0) // 1.5 Mbps rung
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	man := testManifest(t, 20)
	wantMB, err := man.SegmentSizeMB(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(n) / 1e6; got < wantMB*0.99 || got > wantMB*1.01 {
		t.Errorf("segment bytes = %.3f MB, want ≈ %.3f MB", got, wantMB)
	}
	if got := srv.Snapshot().Bytes; got != n {
		t.Errorf("Snapshot().Bytes = %d, want %d", got, n)
	}
}

func TestServerErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t, 20)
	cases := []struct {
		path string
		want int
	}{
		{path: "/nope", want: http.StatusNotFound},
		{path: "/seg/bogus-rep/0.m4s", want: http.StatusNotFound},
		{path: "/seg/v0-144p/999.m4s", want: http.StatusNotFound},
		{path: "/seg/v0-144p/abc.m4s", want: http.StatusBadRequest},
		{path: "/seg/v0-144p/0.mp4", want: http.StatusBadRequest},
		{path: "/seg/onlyonepart", want: http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
	// Non-GET rejected.
	resp, err := http.Post(ts.URL+"/manifest.mpd", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
	if _, err := srv.SegmentURL(ts.URL, 99, 0); err == nil {
		t.Error("out-of-range rung accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", abr.NewYoutube()); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := NewClient("http://x", nil); err == nil {
		t.Error("nil algorithm accepted")
	}
}

func TestClientStreamsWholePresentation(t *testing.T) {
	_, ts := newTestServer(t, 20)
	client, err := NewClient(ts.URL, abr.NewFESTIVE(), WithBufferThreshold(10))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Fetches) != 10 {
		t.Fatalf("fetched %d segments, want 10", len(stats.Fetches))
	}
	if stats.TotalBytes <= 0 {
		t.Error("no payload downloaded")
	}
	// FESTIVE starts at the bottom rung and climbs on a fast loopback.
	if stats.Fetches[0].Rung != 0 {
		t.Errorf("first rung = %d, want 0", stats.Fetches[0].Rung)
	}
	last := stats.Fetches[len(stats.Fetches)-1]
	if last.Rung <= stats.Fetches[0].Rung {
		t.Error("FESTIVE never climbed on a fast link")
	}
	if stats.Switches == 0 {
		t.Error("no switches recorded during the climb")
	}
	if stats.MeanThroughputMbps <= 0 || stats.MeanBitrateMbps <= 0 {
		t.Errorf("degenerate means: %+v", stats)
	}
}

func TestClientHonoursRateShaping(t *testing.T) {
	// Shape to ~4 MB/s: measured throughput must be near it, not the
	// multi-GB/s loopback rate.
	_, ts := newTestServer(t, 8, WithRateLimitMBps(4))
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 3}) // 1.5 Mbps
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanThroughputMbps > 120 { // 4 MB/s = 32 Mbps; generous slack for chunk timing
		t.Errorf("throughput %.1f Mbps ignores shaping", stats.MeanThroughputMbps)
	}
}

func TestClientCancellation(t *testing.T) {
	_, ts := newTestServer(t, 60, WithRateLimitMBps(0.5))
	client, err := NewClient(ts.URL, abr.NewYoutube())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := client.Stream(ctx); err == nil {
		t.Error("cancelled stream reported success")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client, err := NewClient("http://127.0.0.1:1", abr.NewYoutube(),
		WithHTTPClient(&http.Client{Timeout: 200 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stream(context.Background()); err == nil {
		t.Error("dead server reported success")
	}
}

func TestServerRuntimeRateChange(t *testing.T) {
	srv, ts := newTestServer(t, 8)
	srv.SetRateLimitMBps(-5) // clamps to unshaped
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Stream(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Any abr.Algorithm drops into the HTTP client unchanged — BOLA and
// RobustMPC stream the same presentation FESTIVE does.
func TestClientInterfaceParity(t *testing.T) {
	_, ts := newTestServer(t, 12)
	bola, err := abr.NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	mpc, err := abr.NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []abr.Algorithm{bola, mpc} {
		client, err := NewClient(ts.URL, alg, WithBufferThreshold(8))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := client.Stream(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(stats.Fetches) != 6 {
			t.Errorf("%s fetched %d segments, want 6", alg.Name(), len(stats.Fetches))
		}
	}
}

// A truncated body must surface the typed ErrTruncated, never a silent
// short byte count (the strict single-attempt client fails the session
// on it).
func TestClientRejectsTruncatedBody(t *testing.T) {
	script := faults.NewScript([]faults.Verdict{{Kind: faults.Truncate, TruncateFrac: 0.4}})
	_, ts := newTestServer(t, 20, WithFaults(script))
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Stream(context.Background())
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("error = %v, want ErrTruncated", err)
	}
}

// Cancelling the context mid-download aborts the in-flight request and
// returns the partial stats uncorrupted: no phantom fetch for the
// aborted segment, and the totals still add up.
func TestClientCancellationMidDownload(t *testing.T) {
	// 0.2 MB/s against ~1.4 MB segments: the first download takes
	// seconds, the cancel lands mid-transfer.
	_, ts := newTestServer(t, 20, WithRateLimitMBps(0.2))
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats, err := client.Stream(ctx)
	if err == nil {
		t.Fatal("cancelled stream reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled in the chain", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not abort the in-flight request")
	}
	if stats == nil {
		t.Fatal("no partial stats returned after manifest fetch succeeded")
	}
	var sum int64
	for _, f := range stats.Fetches {
		if f.Bytes <= 0 {
			t.Errorf("segment %d recorded with %d bytes", f.Segment, f.Bytes)
		}
		sum += f.Bytes
	}
	if sum != stats.TotalBytes {
		t.Errorf("TotalBytes = %d but fetches sum to %d", stats.TotalBytes, sum)
	}
	if len(stats.Fetches) >= 10 {
		t.Errorf("%d fetches recorded despite the early cancel", len(stats.Fetches))
	}
}

// SetRateLimitMBps must apply to a transfer already in flight: the
// write loop re-reads the rate per chunk, so lifting a crawl-speed
// limit mid-segment lets the download finish promptly.
func TestServerRateChangeAppliesMidTransfer(t *testing.T) {
	// Rung 5 segments are ~1.4 MB; at 0.05 MB/s one segment would take
	// ~29 s. Lift the limit 300 ms in: with the per-chunk re-read the
	// whole 10-segment session finishes in a couple of seconds.
	srv, ts := newTestServer(t, 20, WithRateLimitMBps(0.05))
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 5})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		srv.SetRateLimitMBps(0)
	}()
	start := time.Now()
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Fetches) != 10 {
		t.Fatalf("fetched %d segments, want 10", len(stats.Fetches))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("session took %v; mid-transfer rate change was ignored", elapsed)
	}
}
