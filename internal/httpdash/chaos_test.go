package httpdash

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/faults"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// chaosAlgorithms builds a fresh instance of every ABR policy in the
// repo — the baselines, the extension algorithms, and the paper's
// online policy.
func chaosAlgorithms(t *testing.T) map[string]abr.Algorithm {
	t.Helper()
	bola, err := abr.NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	mpc, err := abr.NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	bba, err := abr.NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]abr.Algorithm{
		"Youtube": abr.NewYoutube(),
		"FESTIVE": abr.NewFESTIVE(),
		"BBA":     bba,
		"BOLA":    bola,
		"MPC":     mpc,
		"Ours":    core.NewOnline(obj),
	}
}

// chaosRetryPolicy is DefaultRetryPolicy tightened for test wall-clock:
// the same shape, just fast.
func chaosRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      5,
		AttemptTimeout:   500 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		JitterSeed:       1,
		DowngradeOnRetry: true,
	}
}

// Every ABR algorithm must ride out a server-side fault storm — 5xx,
// connection resets, stalls past the attempt deadline, truncated
// bodies, added latency — and still complete the session, with the
// recovery work visible in Stats.
func TestChaosStormEveryAlgorithmSurvives(t *testing.T) {
	storm := faults.Config{
		Error5xxProb:    0.25,
		ResetProb:       0.1,
		StallProb:       0.05,
		TruncateProb:    0.15,
		LatencyProb:     0.15,
		StallFor:        2 * time.Second, // well past the attempt deadline
		LatencyFor:      5 * time.Millisecond,
		MaxFaultsPerKey: 2,
	}
	// Each downgrade retries a different URL — a fresh fault budget —
	// so the worst case from the top of the 6-rung ladder is five
	// distinct faulted keys plus MaxFaultsPerKey faults at the floor:
	// 8 attempts guarantee recovery. A short attempt deadline keeps the
	// stall share of the storm from dominating test wall-clock.
	policy := chaosRetryPolicy()
	policy.MaxAttempts = 8
	policy.AttemptTimeout = 250 * time.Millisecond
	seed := int64(0)
	for name, alg := range chaosAlgorithms(t) {
		seed++
		plan, err := faults.NewPlan(storm, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, 20, WithFaults(plan))
		client, err := NewClient(ts.URL, alg,
			WithBufferThreshold(8), WithRetryPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := client.Stream(context.Background())
		if err != nil {
			t.Errorf("%s: storm sank the session: %v", name, err)
			continue
		}
		if len(stats.Fetches) != 10 {
			t.Errorf("%s: fetched %d segments, want 10", name, len(stats.Fetches))
		}
		injected := plan.Stats().Injected()
		if injected == 0 {
			t.Errorf("%s: plan injected nothing (seed %d too tame for the test)", name, seed)
		}
		if stats.Retries == 0 {
			t.Errorf("%s: %d faults injected but no retries recorded", name, injected)
		}
		if stats.AbandonedSegments != 0 {
			t.Errorf("%s: abandoned %d segments under a recoverable storm", name, stats.AbandonedSegments)
		}
		for _, f := range stats.Fetches {
			if f.Attempts < 1 || f.Attempts > policy.MaxAttempts {
				t.Errorf("%s: segment %d attempts = %d outside [1, %d]", name, f.Segment, f.Attempts, policy.MaxAttempts)
			}
			if f.Rung > f.ChosenRung {
				t.Errorf("%s: segment %d fetched rung %d above chosen %d", name, f.Segment, f.Rung, f.ChosenRung)
			}
		}
	}
}

// A scripted storm exercises each fault class in a known order and
// checks the matching counters: 5xx burst on the first segment, a
// stall (converted to a timeout by the attempt deadline), then a
// truncated body, then calm.
func TestChaosScriptedStormCounters(t *testing.T) {
	script := faults.NewScript([]faults.Verdict{
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.Error5xx, Status: 502},
		{Kind: faults.Stall, Stall: 5 * time.Second},
		{Kind: faults.Truncate, TruncateFrac: 0.3},
	})
	_, ts := newTestServer(t, 20, WithFaults(script))
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 3},
		WithBufferThreshold(8), WithRetryPolicy(chaosRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("scripted storm sank the session: %v", err)
	}
	if len(stats.Fetches) != 10 {
		t.Fatalf("fetched %d segments, want 10", len(stats.Fetches))
	}
	if stats.Retries != 4 {
		t.Errorf("retries = %d, want 4 (one per scripted fault)", stats.Retries)
	}
	if stats.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1 (the stall)", stats.Timeouts)
	}
	if stats.Truncations != 1 {
		t.Errorf("truncations = %d, want 1", stats.Truncations)
	}
	if stats.Downgrades == 0 {
		t.Error("no downgrades recorded while retrying from rung 3")
	}
	// The downgraded retries bottom out below the chosen rung.
	if f := stats.Fetches[0]; f.Rung >= f.ChosenRung {
		t.Errorf("segment 0 fetched rung %d, want below chosen %d after retries", f.Rung, f.ChosenRung)
	}
}

// An unrecoverable storm (every attempt 5xx, never relenting) must end
// in the typed abandonment error with the partial stats intact — never
// a hang or a fabricated success.
func TestChaosUnrecoverableStormAbandons(t *testing.T) {
	plan, err := faults.NewPlan(faults.Config{Error5xxProb: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, 20, WithFaults(plan))
	client, err := NewClient(ts.URL, abr.NewYoutube(), WithRetryPolicy(chaosRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var stats *Stats
	var serr error
	go func() {
		defer close(done)
		stats, serr = client.Stream(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("unrecoverable storm hung instead of abandoning")
	}
	if !errors.Is(serr, ErrSegmentAbandoned) {
		t.Fatalf("error = %v, want ErrSegmentAbandoned", serr)
	}
	if stats == nil {
		t.Fatal("no partial stats returned with the abandonment")
	}
	if stats.AbandonedSegments != 1 {
		t.Errorf("abandoned segments = %d, want 1", stats.AbandonedSegments)
	}
	if stats.Retries != 4 {
		t.Errorf("retries = %d, want 4 (budget of 5 attempts)", stats.Retries)
	}
	if len(stats.Fetches) != 0 {
		t.Errorf("%d fetches recorded for a session that never landed a segment", len(stats.Fetches))
	}
	// Degradation reached the ladder floor before giving up.
	if stats.Downgrades == 0 {
		t.Error("abandoned without ever downgrading")
	}
}

// The same resilience holds when faults are injected client-side via
// the RoundTripper — the server is healthy, the transport misbehaves.
func TestChaosClientSideInjection(t *testing.T) {
	storm := faults.Config{
		Error5xxProb:    0.25,
		ResetProb:       0.15,
		TruncateProb:    0.2,
		MaxFaultsPerKey: 3,
	}
	plan, err := faults.NewPlan(storm, 11)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, 20)
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &faults.RoundTripper{
			Plan:   plan,
			Filter: func(r *http.Request) bool { return r.URL.Path != "/manifest.mpd" },
		},
	}
	client, err := NewClient(ts.URL, abr.NewFESTIVE(),
		WithHTTPClient(hc), WithBufferThreshold(8), WithRetryPolicy(chaosRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("client-side storm sank the session: %v", err)
	}
	if len(stats.Fetches) != 10 {
		t.Errorf("fetched %d segments, want 10", len(stats.Fetches))
	}
	if plan.Stats().Injected() == 0 {
		t.Error("plan injected nothing")
	}
	if stats.Retries == 0 {
		t.Error("no retries recorded under client-side injection")
	}
	if plan.Stats().Truncations > 0 && stats.Truncations == 0 {
		t.Error("injected truncations went undetected")
	}
}

// A faulted manifest fetch is retried too; a 5xx burst shorter than
// the budget must not kill the session before it starts.
func TestChaosManifestRetries(t *testing.T) {
	script := faults.NewScript([]faults.Verdict{
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.Error5xx, Status: 503},
	})
	_, ts := newTestServer(t, 20)
	hc := &http.Client{Timeout: 30 * time.Second, Transport: &faults.RoundTripper{Plan: script}}
	client, err := NewClient(ts.URL, abr.NewYoutube(),
		WithHTTPClient(hc), WithRetryPolicy(chaosRetryPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("manifest 5xx burst sank the session: %v", err)
	}
	if len(stats.Fetches) != 10 {
		t.Errorf("fetched %d segments, want 10", len(stats.Fetches))
	}
}
