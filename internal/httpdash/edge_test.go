package httpdash

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecavs/internal/edgecache"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

// newTestEdge stands a real origin behind a caching edge and returns
// both plus the origin's httptest server for teardown.
func newTestEdge(tb testing.TB, srvOpts []ServerOption, edgeOpts ...EdgeOption) (*Edge, *Server, *httptest.Server) {
	tb.Helper()
	srv := newBenchServer(tb, srvOpts...)
	origin := httptest.NewServer(srv)
	tb.Cleanup(origin.Close)
	edge, err := NewEdge(origin.URL, edgeOpts...)
	if err != nil {
		tb.Fatal(err)
	}
	return edge, srv, origin
}

func edgeGet(tb testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	tb.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// checkEdgeInvariant asserts the accounting identity every edge
// snapshot must satisfy: each segment request resolves to exactly one
// of hit, fill, stale serve, or error.
func checkEdgeInvariant(tb testing.TB, snap EdgeSnapshot) {
	tb.Helper()
	if snap.Requests != snap.Hits+snap.Fills+snap.StaleServes+snap.Errors {
		tb.Errorf("accounting broken: %d requests != %d hits + %d fills + %d stale + %d errors",
			snap.Requests, snap.Hits, snap.Fills, snap.StaleServes, snap.Errors)
	}
}

func TestEdgeMissThenHit(t *testing.T) {
	edge, srv, _ := newTestEdge(t, nil)
	first := edgeGet(t, edge, "/seg/v0-144p/3.m4s")
	if first.Code != http.StatusOK {
		t.Fatalf("miss: status %d", first.Code)
	}
	second := edgeGet(t, edge, "/seg/v0-144p/3.m4s")
	if second.Code != http.StatusOK {
		t.Fatalf("hit: status %d", second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Error("hit served different bytes than the fill")
	}
	if ct := second.Header().Get("Content-Type"); ct != "video/iso.segment" {
		t.Errorf("hit Content-Type = %q", ct)
	}
	if cl := second.Header().Get("Content-Length"); cl != fmt.Sprint(first.Body.Len()) {
		t.Errorf("hit Content-Length = %q, want %d", cl, first.Body.Len())
	}
	snap := edge.Snapshot()
	if snap.Fills != 1 || snap.Hits != 1 || snap.Requests != 2 {
		t.Errorf("snapshot %+v, want 1 fill + 1 hit", snap)
	}
	checkEdgeInvariant(t, snap)
	if got := srv.Snapshot().Requests; got != 1 {
		t.Errorf("origin saw %d requests, want 1 — the hit must not reach it", got)
	}
	if r := snap.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio %.2f, want 0.50", r)
	}
}

func TestEdgeManifestPassthrough(t *testing.T) {
	edge, srv, _ := newTestEdge(t, nil)
	for i := 0; i < 2; i++ {
		w := edgeGet(t, edge, "/manifest.mpd")
		if w.Code != http.StatusOK {
			t.Fatalf("manifest via edge: status %d", w.Code)
		}
		if !strings.Contains(w.Body.String(), "<MPD") {
			t.Error("manifest body not proxied")
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/dash+xml" {
			t.Errorf("manifest Content-Type = %q", ct)
		}
	}
	if got := srv.Snapshot(); edge.Snapshot().Requests != 0 {
		t.Errorf("manifest requests counted as segment traffic: %+v", got)
	}
}

// TestEdgeSingleflightCollapse is the collapse proof the issue asks
// for: many concurrent misses on the same key must produce exactly one
// origin request per distinct key — the origin's request counter
// equals the number of distinct (rung, segment) keys, and everyone
// still gets the full body.
func TestEdgeSingleflightCollapse(t *testing.T) {
	const (
		workers = 16
		keys    = 4
	)
	var originHits atomic.Int64
	srv := newBenchServer(t)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		originHits.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the flight open so followers pile up
		srv.ServeHTTP(w, r)
	})
	origin := httptest.NewServer(slow)
	defer origin.Close()
	edge, err := NewEdge(origin.URL)
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			path := fmt.Sprintf("/seg/v0-144p/%d.m4s", g%keys)
			w := edgeGet(t, edge, path)
			if w.Code != http.StatusOK || w.Body.Len() == 0 {
				t.Errorf("worker %d: status %d, %d bytes", g, w.Code, w.Body.Len())
			}
		}(g)
	}
	close(start)
	wg.Wait()

	if got := originHits.Load(); got != keys {
		t.Errorf("origin saw %d requests for %d distinct keys — singleflight did not collapse", got, keys)
	}
	snap := edge.Snapshot()
	checkEdgeInvariant(t, snap)
	if snap.Fills != keys {
		t.Errorf("fills = %d, want %d", snap.Fills, keys)
	}
	if snap.Hits != workers-keys || snap.SharedFills != snap.Hits {
		t.Errorf("hits = %d shared = %d, want %d followers all shared", snap.Hits, snap.SharedFills, workers-keys)
	}
}

// TestEdgeStaleWhileError pins the degraded mode: once the origin
// starts failing, segments already cached keep flowing (marked stale
// serves) as long as they are inside the staleness window.
func TestEdgeStaleWhileError(t *testing.T) {
	srv := newBenchServer(t)
	var failing atomic.Bool
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "origin down", http.StatusInternalServerError)
			return
		}
		srv.ServeHTTP(w, r)
	})
	origin := httptest.NewServer(flaky)
	defer origin.Close()
	// fresh=1ns: every repeat revalidates against the origin, which is
	// exactly when stale-while-error matters. stale=1h keeps the copy
	// servable for the whole test.
	edge, err := NewEdge(origin.URL, WithEdgeFreshness(time.Nanosecond, time.Hour))
	if err != nil {
		t.Fatal(err)
	}

	warm := edgeGet(t, edge, "/seg/v0-144p/0.m4s")
	if warm.Code != http.StatusOK {
		t.Fatalf("warm fill: status %d", warm.Code)
	}
	failing.Store(true)
	for i := 0; i < 3; i++ {
		w := edgeGet(t, edge, "/seg/v0-144p/0.m4s")
		if w.Code != http.StatusOK {
			t.Fatalf("stale serve %d: status %d", i, w.Code)
		}
		if w.Body.String() != warm.Body.String() {
			t.Fatalf("stale serve %d returned different bytes", i)
		}
	}
	// A segment never cached has nothing to fall back on: 503 + hint.
	w := edgeGet(t, edge, "/seg/v0-144p/1.m4s")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("uncached failure: status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("edge-originated 503 missing Retry-After")
	}
	snap := edge.Snapshot()
	checkEdgeInvariant(t, snap)
	if snap.StaleServes != 3 || snap.Errors != 1 || snap.Fills != 1 {
		t.Errorf("snapshot %+v, want 1 fill, 3 stale serves, 1 error", snap)
	}

	failing.Store(false)
	if w := edgeGet(t, edge, "/seg/v0-144p/0.m4s"); w.Code != http.StatusOK {
		t.Fatalf("recovered revalidation: status %d", w.Code)
	}
	if got := edge.Snapshot().Fills; got != 2 {
		t.Errorf("fills after recovery = %d, want 2 (revalidated)", got)
	}
}

// TestEdgeShedPropagatesRetryAfter pins the bugfix: when the origin
// sheds (503 + Retry-After), the edge's own 503 must carry the
// origin's hint — so a client behind the edge backs off exactly as if
// it faced the origin, and loadgen classifies the failure as a shed.
func TestEdgeShedPropagatesRetryAfter(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shedResponse(w, 7*time.Second)
	}))
	defer origin.Close()
	edge, err := NewEdge(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	w := edgeGet(t, edge, "/seg/v0-144p/0.m4s")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want the origin's hint 7", got)
	}
	// Origin unreachable entirely: the edge supplies its own hint.
	origin.Close()
	edge2, err := NewEdge(origin.URL, WithEdgeRetryAfter(3*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	w = edgeGet(t, edge2, "/seg/v0-144p/0.m4s")
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") != "3" {
		t.Errorf("dead origin: status %d Retry-After %q, want 503/3", w.Code, w.Header().Get("Retry-After"))
	}
}

// TestEdgeClientClassifiesEdgeShedAsShed closes the loop on the
// Retry-After bugfix at the client: a streaming client behind an edge
// whose origin is gone must count fast-failing 503s as retryable sheds
// (honouring the hint), not as anonymous errors.
func TestEdgeClientClassifiesEdgeShedAsShed(t *testing.T) {
	resp, err := http.Get("http://127.0.0.1:0/") // guaranteed-dead origin
	if err == nil {
		resp.Body.Close()
		t.Skip("sentinel port unexpectedly reachable")
	}
	edge, errEdge := NewEdge("http://127.0.0.1:0", WithEdgeRetryAfter(time.Second))
	if errEdge != nil {
		t.Fatal(errEdge)
	}
	ts := httptest.NewServer(edge)
	defer ts.Close()
	r, errGet := http.Get(ts.URL + "/seg/v0-144p/0.m4s")
	if errGet != nil {
		t.Fatal(errGet)
	}
	defer r.Body.Close()
	io.Copy(io.Discard, r.Body)
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", r.StatusCode)
	}
	if got := parseRetryAfter(r); got != time.Second {
		t.Errorf("parseRetryAfter = %v, want 1s — clients must see the backoff hint", got)
	}
}

// TestEdgeTraceMerge drives one miss through client → edge → origin,
// each process with its own tracer sharing a store, and asserts the
// three fragments merge into a single trace whose view lists all three
// services — the "one trace" the issue's acceptance criteria ask for.
func TestEdgeTraceMerge(t *testing.T) {
	store := tracing.NewStore(64)
	keepAll := tracing.Sampler{Ratio: 1}
	clientTr := tracing.New(tracing.Config{Service: "client", Sampler: keepAll, Seed: 1}, store)
	edgeTr := tracing.New(tracing.Config{Service: "edge", Sampler: keepAll, Seed: 2}, store)
	serverTr := tracing.New(tracing.Config{Service: "server", Sampler: keepAll, Seed: 3}, store)

	srv := newBenchServer(t, WithServerTracing(serverTr))
	origin := httptest.NewServer(srv)
	defer origin.Close()
	edge, err := NewEdge(origin.URL, WithEdgeTracing(edgeTr))
	if err != nil {
		t.Fatal(err)
	}

	root := clientTr.StartRoot("stream")
	req := httptest.NewRequest(http.MethodGet, "/seg/v0-144p/0.m4s", nil)
	req.Header.Set(tracing.Header, root.TraceParent())
	w := httptest.NewRecorder()
	edge.ServeHTTP(w, req)
	root.End()
	if w.Code != http.StatusOK {
		t.Fatalf("traced miss: status %d", w.Code)
	}

	views := store.Views()
	if len(views) != 1 {
		t.Fatalf("%d traces in store, want 1 merged", len(views))
	}
	v := views[0]
	if len(v.Services) != 3 || v.Services[0] != "client" || v.Services[1] != "edge" || v.Services[2] != "server" {
		t.Fatalf("services = %v, want [client edge server]", v.Services)
	}
	var sawServe, sawFill bool
	for _, s := range v.Spans {
		switch s.Name {
		case "serve_cached":
			sawServe = true
		case "fill_origin":
			sawFill = true
		}
	}
	if !sawFill {
		t.Error("merged trace missing fill_origin span")
	}

	// A subsequent hit joins the same trace without touching the origin.
	root2 := clientTr.StartRoot("stream")
	req2 := httptest.NewRequest(http.MethodGet, "/seg/v0-144p/0.m4s", nil)
	req2.Header.Set(tracing.Header, root2.TraceParent())
	edge.ServeHTTP(httptest.NewRecorder(), req2)
	root2.End()
	views = store.Views()
	if len(views) != 2 {
		t.Fatalf("%d traces after hit, want 2", len(views))
	}
	for _, v := range views {
		if len(v.Services) == 2 { // client + edge only: the hit
			for _, s := range v.Spans {
				if s.Name == "serve_cached" {
					sawServe = true
				}
			}
		}
	}
	if !sawServe {
		t.Error("hit trace missing serve_cached span")
	}
}

func TestEdgeTelemetrySeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	edge, _, _ := newTestEdge(t, nil,
		WithEdgeTelemetry(reg),
		WithEdgeCache(edgecache.Config{CapacityBytes: 1 << 20, Shards: 4}))
	edgeGet(t, edge, "/seg/v0-144p/0.m4s")
	edgeGet(t, edge, "/seg/v0-144p/0.m4s")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"edgecache_requests_total 2",
		"edgecache_hits_total 1",
		"edgecache_fills_total 1",
		"edgecache_stale_serves_total 0",
		"edgecache_errors_total 0",
		"edgecache_entries 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if !strings.Contains(body, "edgecache_bytes ") || strings.Contains(body, "edgecache_bytes 0\n") {
		t.Error("edgecache_bytes gauge absent or zero after a fill")
	}
}

// TestEdgeHitAllocBudget pins the zero-copy claim: serving a cached
// segment must not allocate more than the origin's own pooled fast
// path (2 allocs/request — the two header value slices). Measured
// identically: discarding writer, pre-built request, AllocsPerRun.
func TestEdgeHitAllocBudget(t *testing.T) {
	edge, srv, _ := newTestEdge(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/seg/v0-144p/0.m4s", nil)
	if w := edgeGet(t, edge, "/seg/v0-144p/0.m4s"); w.Code != http.StatusOK {
		t.Fatalf("warm fill: status %d", w.Code)
	}

	w := &discardResponseWriter{h: make(http.Header, 4)}
	originAllocs := testing.AllocsPerRun(500, func() {
		clear(w.h)
		srv.ServeHTTP(w, req)
	})
	edgeAllocs := testing.AllocsPerRun(500, func() {
		clear(w.h)
		edge.ServeHTTP(w, req)
	})
	t.Logf("edge hit: %.1f allocs/request; origin fast path: %.1f", edgeAllocs, originAllocs)
	if edgeAllocs > originAllocs {
		t.Errorf("edge hit costs %.1f allocs/request, budget is the origin fast path's %.1f", edgeAllocs, originAllocs)
	}
	if snap := edge.Snapshot(); snap.Fills != 1 {
		t.Errorf("alloc loop refilled (%d fills) — hits must stay on the cache path", snap.Fills)
	}
}

// TestEdgeHammer storms one edge with 16 goroutines mixing repeated
// and distinct keys against a tiny cache, then checks the accounting
// invariant — the -race chaos entry for the edge serving path.
func TestEdgeHammer(t *testing.T) {
	edge, srv, _ := newTestEdge(t, nil, WithEdgeCache(edgecache.Config{CapacityBytes: 1 << 20, Shards: 4}))
	const (
		goroutines = 16
		iterations = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				seg := (g + i) % 10
				w := edgeGet(t, edge, fmt.Sprintf("/seg/v0-144p/%d.m4s", seg))
				if w.Code != http.StatusOK {
					t.Errorf("g%d i%d: status %d", g, i, w.Code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := edge.Snapshot()
	checkEdgeInvariant(t, snap)
	if snap.Requests != goroutines*iterations {
		t.Errorf("requests = %d, want %d", snap.Requests, goroutines*iterations)
	}
	if snap.Errors != 0 || snap.StaleServes != 0 {
		t.Errorf("healthy origin produced %d errors / %d stale serves", snap.Errors, snap.StaleServes)
	}
	origin := srv.Snapshot().Requests
	if origin >= snap.Requests/10 {
		t.Errorf("origin saw %d of %d requests — cache is not offloading", origin, snap.Requests)
	}
}

func TestNewEdgeValidation(t *testing.T) {
	if _, err := NewEdge(""); err == nil {
		t.Error("empty origin accepted")
	}
	if _, err := NewEdge("http://x", WithEdgeCache(edgecache.Config{CapacityBytes: 1, Shards: 3})); err == nil {
		t.Error("invalid cache config accepted")
	}
}
