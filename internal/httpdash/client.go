package httpdash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/player"
)

// Client streams a DASH presentation over real HTTP, driving an
// abr.Algorithm with measured per-segment throughputs. Playback is
// virtual: wall-clock time is only spent downloading, and buffered
// content "plays out" instantly once the buffer reaches the pacing
// threshold — so a full session finishes in seconds while still
// exercising the real network path, the manifest parsing, and the
// adaptation loop.
//
// Construct with NewClient; the zero value is unusable.
type Client struct {
	baseURL    string
	httpClient *http.Client
	algorithm  abr.Algorithm
	threshold  float64
}

// ClientOption customises the client.
type ClientOption func(*Client)

// WithHTTPClient overrides the default http.Client.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.httpClient = hc
		}
	}
}

// WithBufferThreshold overrides the 30 s pacing threshold.
func WithBufferThreshold(sec float64) ClientOption {
	return func(c *Client) {
		if sec > 0 {
			c.threshold = sec
		}
	}
}

// NewClient returns a streaming client for the presentation at
// baseURL (serving /manifest.mpd), adapting with the given algorithm.
func NewClient(baseURL string, alg abr.Algorithm, opts ...ClientOption) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("httpdash: empty base URL")
	}
	if alg == nil {
		return nil, errors.New("httpdash: nil algorithm")
	}
	c := &Client{
		baseURL:    baseURL,
		httpClient: &http.Client{Timeout: 30 * time.Second},
		algorithm:  alg,
		threshold:  player.DefaultBufferThresholdSec,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Fetch records one segment download.
type Fetch struct {
	// Segment is the segment number.
	Segment int
	// Rung is the chosen ladder rung.
	Rung int
	// BitrateMbps is the rung's bitrate.
	BitrateMbps float64
	// Bytes is the payload size.
	Bytes int64
	// WallTime is the download duration.
	WallTime time.Duration
	// ThroughputMbps is the measured download rate.
	ThroughputMbps float64
}

// Stats summarises a streamed session.
type Stats struct {
	// Fetches logs every segment download.
	Fetches []Fetch
	// TotalBytes is the summed payload.
	TotalBytes int64
	// MeanThroughputMbps is the byte-weighted mean download rate.
	MeanThroughputMbps float64
	// MeanBitrateMbps is the mean selected bitrate.
	MeanBitrateMbps float64
	// Switches counts rung changes.
	Switches int
	// StallSec is the virtual-playback stall time (download slower
	// than drain while the buffer was empty).
	StallSec float64
}

// Stream downloads the whole presentation. The context cancels the
// session between segment fetches and aborts in-flight requests.
func (c *Client) Stream(ctx context.Context) (*Stats, error) {
	info, err := c.fetchManifest(ctx)
	if err != nil {
		return nil, err
	}
	c.algorithm.Reset()

	stats := &Stats{}
	bufferSec := 0.0
	prevRung := -1
	var weighted, brSum float64

	for seg := 0; seg < info.SegmentCount; seg++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("httpdash: cancelled at segment %d: %w", seg, err)
		}
		// Virtual pacing: once the buffer passes the threshold, play it
		// down to just under the threshold instantly.
		if bufferSec >= c.threshold {
			bufferSec = c.threshold - info.SegmentSec
		}

		decision := abr.Context{
			SegmentIndex:       seg,
			Ladder:             info.Ladder,
			SegmentDurationSec: info.SegmentSec,
			PrevRung:           prevRung,
			BufferSec:          bufferSec,
			BufferThresholdSec: c.threshold,
		}
		rung, err := c.algorithm.ChooseRung(decision)
		if err != nil {
			return nil, fmt.Errorf("httpdash: segment %d decision: %w", seg, err)
		}
		if rung < 0 || rung >= len(info.Ladder) {
			return nil, fmt.Errorf("httpdash: segment %d: rung %d out of range", seg, rung)
		}

		url := fmt.Sprintf("%s/seg/%s/%d.m4s", c.baseURL, info.RepIDs[rung], seg)
		start := time.Now()
		bytes, err := c.fetchSegment(ctx, url)
		if err != nil {
			return nil, fmt.Errorf("httpdash: segment %d: %w", seg, err)
		}
		wall := time.Since(start)
		thMbps := float64(bytes) * 8 / 1e6 / wall.Seconds()
		c.algorithm.ObserveDownload(thMbps)

		// Virtual playback: the download consumed wall.Seconds() of
		// play-out; stalls accrue when the buffer runs dry.
		drained := wall.Seconds()
		if drained > bufferSec {
			stats.StallSec += drained - bufferSec
			bufferSec = 0
		} else {
			bufferSec -= drained
		}
		bufferSec += info.SegmentSec

		br := info.Ladder[rung].BitrateMbps
		stats.Fetches = append(stats.Fetches, Fetch{
			Segment:        seg,
			Rung:           rung,
			BitrateMbps:    br,
			Bytes:          bytes,
			WallTime:       wall,
			ThroughputMbps: thMbps,
		})
		stats.TotalBytes += bytes
		weighted += thMbps * float64(bytes)
		brSum += br
		if prevRung >= 0 && rung != prevRung {
			stats.Switches++
		}
		prevRung = rung
	}
	if stats.TotalBytes > 0 {
		stats.MeanThroughputMbps = weighted / float64(stats.TotalBytes)
	}
	if n := len(stats.Fetches); n > 0 {
		stats.MeanBitrateMbps = brSum / float64(n)
	}
	return stats, nil
}

// fetchManifest GETs and parses /manifest.mpd.
func (c *Client) fetchManifest(ctx context.Context) (info manifestInfo, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/manifest.mpd", nil)
	if err != nil {
		return info, fmt.Errorf("httpdash: build manifest request: %w", err)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return info, fmt.Errorf("httpdash: fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("httpdash: manifest status %s", resp.Status)
	}
	return parseManifest(resp.Body)
}

// fetchSegment GETs one media segment, discarding the payload.
func (c *Client) fetchSegment(ctx context.Context, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("build request: %w", err)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, fmt.Errorf("read body: %w", err)
	}
	return n, nil
}
