package httpdash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/player"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

// Typed fetch failures.
var (
	// ErrTruncated marks a segment whose body ended short of the
	// advertised Content-Length — a half-delivered download that must
	// never be silently counted as a success.
	ErrTruncated = errors.New("httpdash: truncated segment body")
	// ErrSegmentAbandoned marks a segment given up after the retry
	// budget (including rung downgrades) was exhausted; the session
	// terminates with this error rather than hanging or mis-reporting.
	ErrSegmentAbandoned = errors.New("httpdash: segment abandoned after retries")
	// ErrCircuitOpen marks a fetch attempt refused locally because the
	// host's circuit breaker is open — the host is failing and hammering
	// it would deepen the overload. The attempt burns retry budget (and
	// keeps downgrading the rung) without touching the network.
	ErrCircuitOpen = errors.New("httpdash: circuit breaker open")
)

// statusError is a non-2xx response; 5xx are retryable, 4xx are not
// (the request itself is wrong, retrying cannot help). retryAfter
// carries the server's Retry-After hint when one was attached (a
// shedding server says when it is worth coming back).
type statusError struct {
	code       int
	status     string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return "status " + e.status }

// parseRetryAfter reads a response's Retry-After header (delay-seconds
// form; the HTTP-date form is not used by this package's servers).
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// RetryPolicy bounds how hard the client fights for each segment.
type RetryPolicy struct {
	// MaxAttempts is the per-segment fetch budget (>= 1; 1 means no
	// retries).
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline; it converts a stalled
	// transfer into a retryable timeout. Zero disables it.
	AttemptTimeout time.Duration
	// BackoffBase is the first retry's backoff; each further retry
	// doubles it up to BackoffMax. Jitter multiplies the wait by a
	// deterministic draw in [0.5, 1), so synchronized clients desync
	// without making runs irreproducible.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter stream (splitmix64).
	JitterSeed int64
	// DowngradeOnRetry steps the fetch one ladder rung down per retry,
	// degrading toward the cheapest rendition before giving up.
	DowngradeOnRetry bool
}

// DefaultRetryPolicy is the resilient configuration the chaos suite
// runs under: four attempts, 10 s per attempt, 50 ms–2 s backoff, and
// degrade-before-abandon.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		AttemptTimeout:   10 * time.Second,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       2 * time.Second,
		DowngradeOnRetry: true,
	}
}

func (p RetryPolicy) validate() error {
	if p.MaxAttempts < 1 {
		return errors.New("httpdash: MaxAttempts must be at least 1")
	}
	if p.AttemptTimeout < 0 || p.BackoffBase < 0 || p.BackoffMax < 0 {
		return errors.New("httpdash: negative retry durations")
	}
	return nil
}

// NewTransport returns an http.Transport tuned for this package's
// traffic shape: many small GETs against one host. It is the stock
// transport with the per-host idle pool widened (the default keeps
// only two idle connections per host, so concurrent prefetches and
// load-generator workers would re-dial instead of reusing keep-alive
// connections) and no global idle cap. Both the streaming client and
// cmd/loadgen dial through it by default.
func NewTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // unlimited; the per-host cap below governs
	t.MaxIdleConnsPerHost = 64
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// Client streams a DASH presentation over real HTTP, driving an
// abr.Algorithm with measured per-segment throughputs. Playback is
// virtual: wall-clock time is only spent downloading, and buffered
// content "plays out" instantly once the buffer reaches the pacing
// threshold — so a full session finishes in seconds while still
// exercising the real network path, the manifest parsing, and the
// adaptation loop.
//
// Construct with NewClient; the zero value is unusable.
type Client struct {
	baseURL    string
	httpClient *http.Client
	algorithm  abr.Algorithm
	threshold  float64
	retry      RetryPolicy
	breaker    *Breaker      // nil = no circuit breaking
	fetchAhead int           // 0 = strictly serial fetch loop
	jitter     atomic.Uint64 // splitmix64 state for backoff jitter
	tel        clientTelemetry
	telReg     *telemetry.Registry
	tracer     *tracing.Tracer // nil = tracing disabled (zero overhead)
}

// clientTelemetry mirrors the Stats resilience counters into a
// registry. All fields are nil without WithClientTelemetry; nil
// metrics are no-ops, so the fetch loop updates them unconditionally.
type clientTelemetry struct {
	segments   *telemetry.Counter
	bytes      *telemetry.Counter
	retries    *telemetry.Counter
	downgrades *telemetry.Counter
	timeouts   *telemetry.Counter
	truncated  *telemetry.Counter
	abandoned  *telemetry.Counter
	fastFails  *telemetry.Counter
	stallSec   *telemetry.Gauge
}

// WithHTTPClient overrides the default http.Client.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.httpClient = hc
		}
	}
}

// WithBufferThreshold overrides the 30 s pacing threshold.
func WithBufferThreshold(sec float64) ClientOption {
	return func(c *Client) {
		if sec > 0 {
			c.threshold = sec
		}
	}
}

// WithFetchAhead enables the bounded prefetch pipeline: while segment
// k is being played, up to n further segments (k+1 … k+n) download
// concurrently, so per-request latency and server think-time hide
// behind playout instead of serialising in front of it. Results are
// consumed strictly in segment order and every segment is fetched by
// exactly one pipeline slot, sharing the retry budget and the Stats
// accounting with the serial path. A prefetched segment's rung is
// decided at issue time — from the throughput observed so far and the
// buffer the in-flight segments will have produced — which is the
// information a real look-ahead player has. Zero (the default) keeps
// the strictly serial fetch loop.
func WithFetchAhead(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.fetchAhead = n
		}
	}
}

// WithRetryPolicy enables resilient fetching. Without this option the
// client keeps the strict single-attempt behaviour (any fetch failure
// ends the session), which is what the deterministic integration tests
// rely on.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) {
		c.retry = p
	}
}

// WithCircuitBreaker puts a circuit breaker in front of the client's
// host: once the windowed failure rate trips it, attempts fail fast
// (no network traffic) until the cool-down elapses and probe requests
// prove the host healthy again. Fast-failed attempts still burn retry
// budget and still downgrade the rung under RetryPolicy — a braking
// server pushes sessions down the ladder instead of into abandonment.
// Zero config fields take DefaultBreakerConfig values.
func WithCircuitBreaker(cfg BreakerConfig) ClientOption {
	return func(c *Client) {
		c.breaker = NewBreaker(cfg)
	}
}

// WithSharedBreaker installs an existing breaker, so a fleet of
// clients streaming from the same host shares one view of its health:
// the first sessions to see the host fall over open the circuit for
// everyone. Nil is ignored.
func WithSharedBreaker(b *Breaker) ClientOption {
	return func(c *Client) {
		if b != nil {
			c.breaker = b
		}
	}
}

// WithClientTelemetry mirrors the client's resilience counters into a
// telemetry registry:
//
//	httpdash_client_segments_total    segments fetched successfully
//	httpdash_client_bytes_total       segment payload bytes received
//	httpdash_client_retries_total     re-attempted fetches
//	httpdash_client_downgrades_total  rung step-downs while retrying
//	httpdash_client_timeouts_total    per-attempt deadline hits
//	httpdash_client_truncated_total   short bodies rejected
//	httpdash_client_abandoned_total   segments given up after retries
//	httpdash_client_stall_seconds     cumulative virtual-playback stall
//
// With a circuit breaker configured (in either option order) the
// breaker series are added:
//
//	httpdash_client_breaker_state             0 closed / 1 open / 2 half-open
//	httpdash_client_breaker_opens_total       closed/half-open → open trips
//	httpdash_client_breaker_fast_fails_total  attempts refused while open
//
// A nil registry is a no-op. Multiple clients sharing one registry
// share the series — the counters describe the fleet. The option only
// records the registry; series are wired after all options applied, so
// it composes with WithCircuitBreaker in any order.
func WithClientTelemetry(reg *telemetry.Registry) ClientOption {
	return func(c *Client) {
		c.telReg = reg
	}
}

// wireTelemetry registers the client's series on the recorded registry.
// It runs once in NewClient, after every option has applied — the
// breaker mirrors exist exactly when both WithClientTelemetry and a
// breaker option were given, in either order.
func (c *Client) wireTelemetry() {
	reg := c.telReg
	if reg == nil {
		return
	}
	c.tel = clientTelemetry{
		segments:   reg.Counter("httpdash_client_segments_total", "Segments fetched successfully."),
		bytes:      reg.Counter("httpdash_client_bytes_total", "Segment payload bytes received."),
		retries:    reg.Counter("httpdash_client_retries_total", "Re-attempted segment fetches."),
		downgrades: reg.Counter("httpdash_client_downgrades_total", "Ladder rung step-downs applied while retrying."),
		timeouts:   reg.Counter("httpdash_client_timeouts_total", "Fetch attempts that hit the per-attempt deadline."),
		truncated:  reg.Counter("httpdash_client_truncated_total", "Fetch attempts rejected for a short body."),
		abandoned:  reg.Counter("httpdash_client_abandoned_total", "Segments abandoned after the retry budget ran out."),
		stallSec:   reg.Gauge("httpdash_client_stall_seconds", "Cumulative virtual-playback stall time."),
		fastFails: reg.Counter("httpdash_client_breaker_fast_fails_total",
			"Fetch attempts refused locally by an open circuit breaker."),
	}
	if c.breaker != nil {
		c.breaker.telState = reg.Gauge("httpdash_client_breaker_state",
			"Circuit breaker position: 0 closed, 1 open, 2 half-open.")
		c.breaker.telOpens = reg.Counter("httpdash_client_breaker_opens_total",
			"Circuit breaker trips (transitions to open).")
	}
}

// WithTracing records one trace per segment fetch: a root span with
// child spans for every retry attempt, backoff sleep, breaker
// fast-fail, and prefetch-pipeline wait, and a W3C `traceparent`
// header on every segment request so a tracing-enabled server joins
// the same trace. A nil tracer keeps tracing disabled at zero cost —
// the nil-receiver contract makes every span call a no-op.
func WithTracing(tr *tracing.Tracer) ClientOption {
	return func(c *Client) {
		c.tracer = tr
	}
}

// NewClient returns a streaming client for the presentation at
// baseURL (serving /manifest.mpd), adapting with the given algorithm.
func NewClient(baseURL string, alg abr.Algorithm, opts ...ClientOption) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("httpdash: empty base URL")
	}
	if alg == nil {
		return nil, errors.New("httpdash: nil algorithm")
	}
	c := &Client{
		baseURL:    baseURL,
		httpClient: &http.Client{Timeout: 30 * time.Second, Transport: NewTransport()},
		algorithm:  alg,
		threshold:  player.DefaultBufferThresholdSec,
		retry:      RetryPolicy{MaxAttempts: 1},
	}
	applyOptions(c, opts)
	if err := c.retry.validate(); err != nil {
		return nil, err
	}
	c.jitter.Store(uint64(c.retry.JitterSeed))
	c.wireTelemetry()
	return c, nil
}

// Fetch records one segment download.
type Fetch struct {
	// Segment is the segment number.
	Segment int
	// Rung is the ladder rung actually fetched (after any retry
	// downgrades).
	Rung int
	// ChosenRung is the rung the algorithm asked for.
	ChosenRung int
	// Attempts is the fetch count for this segment (1 = clean).
	Attempts int
	// BitrateMbps is the fetched rung's bitrate.
	BitrateMbps float64
	// Bytes is the payload size.
	Bytes int64
	// WallTime is the download duration of the successful attempt.
	WallTime time.Duration
	// ThroughputMbps is the measured download rate.
	ThroughputMbps float64
}

// Stats summarises a streamed session.
type Stats struct {
	// Fetches logs every successfully downloaded segment.
	Fetches []Fetch
	// TotalBytes is the summed payload.
	TotalBytes int64
	// MeanThroughputMbps is the byte-weighted mean download rate.
	MeanThroughputMbps float64
	// MeanBitrateMbps is the mean selected bitrate.
	MeanBitrateMbps float64
	// Switches counts rung changes.
	Switches int
	// StallSec is the virtual-playback stall time (download slower
	// than drain while the buffer was empty).
	StallSec float64

	// Resilience counters (all zero in single-attempt mode).

	// Retries counts re-attempted segment fetches across the session.
	Retries int
	// Downgrades counts rung step-downs applied while retrying.
	Downgrades int
	// Timeouts counts attempts that hit the per-attempt deadline.
	Timeouts int
	// Truncations counts attempts rejected for a short body.
	Truncations int
	// FastFails counts attempts refused locally by an open circuit
	// breaker — retry budget spent without touching the network.
	FastFails int
	// AbandonedSegments counts segments whose retry budget ran out.
	// The session ends at the first abandonment, so this is 0 or 1 in
	// serial mode; with prefetch enabled, segments in flight alongside
	// the fatal one can each abandon before the pipeline is torn down.
	AbandonedSegments int
}

// fetchCounters is one fetch's slice of the session resilience
// counters. Each fetch — serial or prefetched — accumulates privately
// and is folded into Stats exactly once, in consumption order, so
// concurrent prefetches never race on the session totals and never
// double-count.
type fetchCounters struct {
	retries     int
	downgrades  int
	timeouts    int
	truncations int
	fastFails   int
	abandoned   int
}

// merge folds one fetch's counters into the session totals.
func (s *Stats) merge(fc fetchCounters) {
	s.Retries += fc.retries
	s.Downgrades += fc.downgrades
	s.Timeouts += fc.timeouts
	s.Truncations += fc.truncations
	s.FastFails += fc.fastFails
	s.AbandonedSegments += fc.abandoned
}

// segmentSizesMB estimates per-rung segment sizes from the ladder (an
// MPD carries nominal bitrates, not exact sizes) — enough for
// size-aware policies like the paper's online algorithm to run over
// real HTTP.
func segmentSizesMB(info manifestInfo) []float64 {
	sizes := make([]float64, len(info.Ladder))
	for j, r := range info.Ladder {
		sizes[j] = r.BitrateMbps * info.SegmentSec / 8
	}
	return sizes
}

// Stream downloads the whole presentation. The context cancels the
// session between segment fetches and aborts in-flight requests.
//
// On a mid-session failure (abandoned segment, cancellation after the
// manifest was fetched) Stream returns the partial Stats alongside the
// error, so callers can still read the resilience counters.
func (c *Client) Stream(ctx context.Context) (*Stats, error) {
	info, err := c.fetchManifest(ctx)
	if err != nil {
		return nil, err
	}
	c.algorithm.Reset()
	if c.fetchAhead > 0 {
		return c.streamPipelined(ctx, info)
	}
	return c.streamSerial(ctx, info)
}

// streamSerial is the strictly ordered fetch loop: decide, download,
// observe, play — one segment at a time. It is the reference semantics
// the prefetch pipeline must preserve.
func (c *Client) streamSerial(ctx context.Context, info manifestInfo) (*Stats, error) {
	stats := &Stats{}
	bufferSec := 0.0
	prevRung := -1
	var weighted, brSum float64
	sizesMB := segmentSizesMB(info)

	for seg := 0; seg < info.SegmentCount; seg++ {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("httpdash: cancelled at segment %d: %w", seg, err)
		}
		// Virtual pacing: once the buffer passes the threshold, play it
		// down to just under the threshold instantly.
		if bufferSec >= c.threshold {
			bufferSec = c.threshold - info.SegmentSec
		}

		decision := abr.Context{
			SegmentIndex:       seg,
			Ladder:             info.Ladder,
			SegmentSizesMB:     sizesMB,
			SegmentDurationSec: info.SegmentSec,
			PrevRung:           prevRung,
			BufferSec:          bufferSec,
			BufferThresholdSec: c.threshold,
		}
		chosen, err := c.algorithm.ChooseRung(decision)
		if err != nil {
			return stats, fmt.Errorf("httpdash: segment %d decision: %w", seg, err)
		}
		if chosen < 0 || chosen >= len(info.Ladder) {
			return stats, fmt.Errorf("httpdash: segment %d: rung %d out of range", seg, chosen)
		}

		span := c.tracer.StartRoot("fetch_segment")
		span.SetAttrInt("segment", int64(seg))
		span.SetAttrInt("chosen_rung", int64(chosen))
		var fc fetchCounters
		rung, bytes, wall, attempts, err := c.fetchWithRetry(ctx, &fc, info, seg, chosen, span)
		stats.merge(fc)
		if err != nil {
			span.SetError(err)
			span.End()
			return stats, fmt.Errorf("httpdash: segment %d: %w", seg, err)
		}
		span.SetAttrInt("rung", int64(rung))
		span.SetAttrInt("bytes", bytes)
		span.SetAttrInt("attempts", int64(attempts))
		span.End()
		thMbps := float64(bytes) * 8 / 1e6 / wall.Seconds()
		c.algorithm.ObserveDownload(thMbps)

		// Virtual playback: the download consumed wall.Seconds() of
		// play-out; stalls accrue when the buffer runs dry.
		drained := wall.Seconds()
		if drained > bufferSec {
			stats.StallSec += drained - bufferSec
			c.tel.stallSec.Add(drained - bufferSec)
			bufferSec = 0
		} else {
			bufferSec -= drained
		}
		bufferSec += info.SegmentSec

		br := info.Ladder[rung].BitrateMbps
		stats.Fetches = append(stats.Fetches, Fetch{
			Segment:        seg,
			Rung:           rung,
			ChosenRung:     chosen,
			Attempts:       attempts,
			BitrateMbps:    br,
			Bytes:          bytes,
			WallTime:       wall,
			ThroughputMbps: thMbps,
		})
		stats.TotalBytes += bytes
		c.tel.segments.Inc()
		c.tel.bytes.Add(bytes)
		weighted += thMbps * float64(bytes)
		brSum += br
		if prevRung >= 0 && rung != prevRung {
			stats.Switches++
		}
		prevRung = rung
	}
	finishStats(stats, weighted, brSum)
	return stats, nil
}

// streamPipelined is the bounded prefetch loop: up to fetchAhead+1
// segments are in flight at once (the play-head segment plus the
// prefetch window), issued strictly in segment order from this
// goroutine and consumed strictly in segment order, so the algorithm —
// which is not safe for concurrent use — only ever runs here.
// Downloads overlap each other and the (virtual) playout; buffer drain
// is therefore measured against real elapsed wall-clock between
// consecutive consumptions rather than against each download's
// private wall time, which is what makes prefetch visibly reduce
// stalls.
func (c *Client) streamPipelined(ctx context.Context, info manifestInfo) (*Stats, error) {
	stats := &Stats{}
	sizesMB := segmentSizesMB(info)

	// Fetches run under a child context so tearing the pipeline down
	// (error, cancellation) aborts every in-flight request promptly.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		rung, attempts int
		bytes          int64
		wall           time.Duration
		err            error
		counters       fetchCounters
		ready          time.Time // when the fetch finished (pipeline-wait accounting)
	}
	type inflight struct {
		seg, chosen int
		ch          chan result
		span        *tracing.Span // nil when tracing is disabled
	}

	depth := c.fetchAhead + 1
	pending := make(chan inflight, depth)

	// drain aborts and collects every outstanding fetch, folding its
	// counters in: retry work already performed stays counted exactly
	// once even when the session dies mid-pipeline.
	drain := func() {
		cancel()
		for {
			select {
			case f := <-pending:
				res := <-f.ch
				stats.merge(res.counters)
				f.span.SetError(res.err)
				f.span.End()
			default:
				return
			}
		}
	}

	bufferSec := 0.0
	prevRung := -1   // last consumed rung (switch accounting)
	prevIssued := -1 // last issued rung (decision context)
	var weighted, brSum float64
	next := 0
	lastConsume := time.Now()

	for played := 0; played < info.SegmentCount; played++ {
		for len(pending) < depth && next < info.SegmentCount {
			if err := ctx.Err(); err != nil {
				drain()
				return stats, fmt.Errorf("httpdash: cancelled at segment %d: %w", next, err)
			}
			// Decide with the buffer the in-flight segments will have
			// produced by the time this one is needed, clamped the same
			// way the serial loop clamps before each fetch.
			projected := bufferSec + float64(len(pending))*info.SegmentSec
			if projected >= c.threshold {
				projected = c.threshold - info.SegmentSec
			}
			decision := abr.Context{
				SegmentIndex:       next,
				Ladder:             info.Ladder,
				SegmentSizesMB:     sizesMB,
				SegmentDurationSec: info.SegmentSec,
				PrevRung:           prevIssued,
				BufferSec:          projected,
				BufferThresholdSec: c.threshold,
			}
			chosen, err := c.algorithm.ChooseRung(decision)
			if err != nil {
				drain()
				return stats, fmt.Errorf("httpdash: segment %d decision: %w", next, err)
			}
			if chosen < 0 || chosen >= len(info.Ladder) {
				drain()
				return stats, fmt.Errorf("httpdash: segment %d: rung %d out of range", next, chosen)
			}
			f := inflight{seg: next, chosen: chosen, ch: make(chan result, 1)}
			f.span = c.tracer.StartRoot("fetch_segment")
			f.span.SetAttrInt("segment", int64(next))
			f.span.SetAttrInt("chosen_rung", int64(chosen))
			f.span.SetAttr("mode", "prefetch")
			go func() {
				var fc fetchCounters
				rung, bytes, wall, attempts, err := c.fetchWithRetry(fctx, &fc, info, f.seg, f.chosen, f.span)
				f.ch <- result{rung: rung, attempts: attempts, bytes: bytes, wall: wall, err: err, counters: fc, ready: time.Now()}
			}()
			pending <- f
			prevIssued = chosen
			next++
		}

		f := <-pending
		res := <-f.ch
		stats.merge(res.counters)
		if res.err != nil {
			f.span.SetError(res.err)
			f.span.End()
			drain()
			return stats, fmt.Errorf("httpdash: segment %d: %w", f.seg, res.err)
		}
		// The gap between the fetch finishing and the play-head reaching
		// it is the prefetch win; record it as a span so slow-trace
		// breakdowns distinguish network time from pipeline idle time.
		if f.span != nil {
			wait := f.span.StartChildAt("pipeline_wait", res.ready)
			wait.End()
			f.span.SetAttrInt("rung", int64(res.rung))
			f.span.SetAttrInt("bytes", res.bytes)
			f.span.SetAttrInt("attempts", int64(res.attempts))
			f.span.End()
		}
		thMbps := float64(res.bytes) * 8 / 1e6 / res.wall.Seconds()
		c.algorithm.ObserveDownload(thMbps)

		// Virtual playback against real elapsed time: whatever part of
		// this download the pipeline hid behind earlier segments does
		// not drain the buffer.
		if bufferSec >= c.threshold {
			bufferSec = c.threshold - info.SegmentSec
		}
		now := time.Now()
		drained := now.Sub(lastConsume).Seconds()
		lastConsume = now
		if drained > bufferSec {
			stats.StallSec += drained - bufferSec
			c.tel.stallSec.Add(drained - bufferSec)
			bufferSec = 0
		} else {
			bufferSec -= drained
		}
		bufferSec += info.SegmentSec

		br := info.Ladder[res.rung].BitrateMbps
		stats.Fetches = append(stats.Fetches, Fetch{
			Segment:        f.seg,
			Rung:           res.rung,
			ChosenRung:     f.chosen,
			Attempts:       res.attempts,
			BitrateMbps:    br,
			Bytes:          res.bytes,
			WallTime:       res.wall,
			ThroughputMbps: thMbps,
		})
		stats.TotalBytes += res.bytes
		c.tel.segments.Inc()
		c.tel.bytes.Add(res.bytes)
		weighted += thMbps * float64(res.bytes)
		brSum += br
		if prevRung >= 0 && res.rung != prevRung {
			stats.Switches++
		}
		prevRung = res.rung
	}
	finishStats(stats, weighted, brSum)
	return stats, nil
}

// finishStats fills the session means once the fetch loop is done.
func finishStats(stats *Stats, weighted, brSum float64) {
	if stats.TotalBytes > 0 {
		stats.MeanThroughputMbps = weighted / float64(stats.TotalBytes)
	}
	if n := len(stats.Fetches); n > 0 {
		stats.MeanBitrateMbps = brSum / float64(n)
	}
}

// fetchWithRetry downloads segment seg, starting at the algorithm's
// chosen rung and applying the retry policy: per-attempt deadline,
// exponential backoff with deterministic jitter (stretched to any
// server Retry-After hint), and (optionally) one rung downgrade per
// retry until the ladder floor. With a breaker configured, attempts
// against an open circuit fail fast without network traffic — still
// burning budget and downgrading, so a braking server degrades the
// session's quality rather than killing it. It returns the rung
// actually fetched and the attempt count; when the budget runs out the
// error wraps ErrSegmentAbandoned. Resilience events accumulate into
// fc (private to this fetch — the caller folds them into Stats), while
// telemetry counters, which are atomic, are incremented live. Under a
// non-nil span the fight leaves a trace: one child span per attempt
// (carrying the traceparent the server joins under), backoff sleep,
// and breaker fast-fail.
func (c *Client) fetchWithRetry(ctx context.Context, fc *fetchCounters, info manifestInfo, seg, chosen int, span *tracing.Span) (rung int, bytes int64, wall time.Duration, attempts int, err error) {
	rung = chosen
	var lastErr error
	var hint time.Duration // Retry-After or breaker cool-down, consumed by the next backoff
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		attempts = attempt + 1
		if attempt > 0 {
			fc.retries++
			c.tel.retries.Inc()
			if c.retry.DowngradeOnRetry && rung > 0 {
				rung--
				fc.downgrades++
				c.tel.downgrades.Inc()
			}
			bo := span.StartChild("backoff")
			bo.SetAttrDuration("hint", hint)
			if err := c.backoff(ctx, attempt, hint); err != nil {
				bo.SetError(err)
				bo.End()
				return rung, 0, 0, attempts, err
			}
			bo.End()
			hint = 0
		}

		// Fail fast against an open breaker: no request is issued, the
		// cool-down becomes the next backoff's floor.
		if c.breaker != nil {
			if ok, wait := c.breaker.Allow(); !ok {
				fc.fastFails++
				c.tel.fastFails.Inc()
				hint = wait
				ff := span.StartChild("breaker_fast_fail")
				ff.SetAttrDuration("cool_down", wait)
				ff.SetStatus("fast_fail", "circuit open")
				ff.End()
				lastErr = fmt.Errorf("%w (cooling down %v)", ErrCircuitOpen, wait)
				continue
			}
		}

		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if c.retry.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		}
		url := fmt.Sprintf("%s/seg/%s/%d.m4s", c.baseURL, info.RepIDs[rung], seg)
		att := span.StartChild("attempt")
		att.SetAttrInt("try", int64(attempts))
		att.SetAttrInt("rung", int64(rung))
		start := time.Now()
		n, ferr := c.fetchSegment(attemptCtx, url, att.TraceParent())
		elapsed := time.Since(start)
		deadlineHit := attemptCtx.Err() != nil // read before cancel() taints it
		cancel()
		if ferr == nil {
			if c.breaker != nil {
				c.breaker.Record(true)
			}
			att.SetAttrInt("bytes", n)
			att.End()
			return rung, n, elapsed, attempts, nil
		}
		att.SetError(ferr)
		att.End()
		// The caller's context ending is a session cancellation, never a
		// retryable fault — and it says nothing about the host's health,
		// so the breaker's probe slot is released without an outcome.
		if ctx.Err() != nil {
			if c.breaker != nil {
				c.breaker.drop()
			}
			return rung, 0, 0, attempts, fmt.Errorf("cancelled mid-download: %w", ctx.Err())
		}
		var se *statusError
		isClientErr := errors.As(ferr, &se) && se.code < 500
		if c.breaker != nil {
			// Any response proves the host alive (4xx included); transport
			// errors, timeouts, truncations, and 5xx count against it.
			c.breaker.Record(isClientErr)
		}
		switch {
		case deadlineHit:
			fc.timeouts++
			c.tel.timeouts.Inc()
		case errors.Is(ferr, ErrTruncated):
			fc.truncations++
			c.tel.truncated.Inc()
		case isClientErr:
			return rung, 0, 0, attempts, ferr // 4xx: not retryable
		}
		if se != nil && se.retryAfter > 0 {
			hint = se.retryAfter
		}
		lastErr = ferr
	}
	fc.abandoned++
	c.tel.abandoned.Inc()
	return rung, 0, 0, attempts, fmt.Errorf("%w (rung %d after %d attempts): %w",
		ErrSegmentAbandoned, rung, attempts, lastErr)
}

// backoff sleeps for the attempt's jittered exponential backoff — or
// for the server's Retry-After hint when that is longer — and returns
// early the moment the session context ends, including when it was
// already cancelled on entry.
func (c *Client) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cancelled during backoff: %w", err)
	}
	var d time.Duration
	if c.retry.BackoffBase > 0 {
		d = c.retry.BackoffBase
		for i := 1; i < attempt && d < c.retry.BackoffMax; i++ {
			d *= 2
		}
		if c.retry.BackoffMax > 0 && d > c.retry.BackoffMax {
			d = c.retry.BackoffMax
		}
		// Equal jitter from a private splitmix64 stream: deterministic for a
		// fixed JitterSeed, in [d/2, d). The state advances atomically so
		// concurrent prefetches each take a distinct draw from the stream.
		z := c.jitter.Add(0x9e3779b97f4a7c15)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		u := float64((z^(z>>31))>>11) / (1 << 53)
		d = d/2 + time.Duration(u*float64(d/2))
	}
	// A shedding server's Retry-After (or an open breaker's remaining
	// cool-down) floors the wait: coming back sooner would only be shed
	// again.
	if hint > d {
		d = hint
	}
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("cancelled during backoff: %w", ctx.Err())
	case <-timer.C:
		return nil
	}
}

// fetchManifest GETs and parses /manifest.mpd, retrying under the same
// budget as segment fetches (without downgrades — there is only one
// manifest) and under the same breaker: an open circuit fails manifest
// attempts fast too.
func (c *Client) fetchManifest(ctx context.Context) (info manifestInfo, err error) {
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := c.backoff(ctx, attempt, hint); err != nil {
				return info, fmt.Errorf("httpdash: %w", err)
			}
			hint = 0
		}
		if c.breaker != nil {
			if ok, wait := c.breaker.Allow(); !ok {
				c.tel.fastFails.Inc()
				hint = wait
				lastErr = fmt.Errorf("httpdash: manifest: %w (cooling down %v)", ErrCircuitOpen, wait)
				continue
			}
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if c.retry.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		}
		info, lastErr = c.fetchManifestOnce(attemptCtx)
		cancel()
		if lastErr == nil {
			if c.breaker != nil {
				c.breaker.Record(true)
			}
			return info, nil
		}
		if ctx.Err() != nil {
			if c.breaker != nil {
				c.breaker.drop()
			}
			return info, lastErr
		}
		var se *statusError
		isClientErr := errors.As(lastErr, &se) && se.code < 500
		if c.breaker != nil {
			c.breaker.Record(isClientErr)
		}
		if isClientErr {
			return info, lastErr
		}
		if se != nil && se.retryAfter > 0 {
			hint = se.retryAfter
		}
	}
	return info, lastErr
}

func (c *Client) fetchManifestOnce(ctx context.Context) (info manifestInfo, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/manifest.mpd", nil)
	if err != nil {
		return info, fmt.Errorf("httpdash: build manifest request: %w", err)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return info, fmt.Errorf("httpdash: fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("httpdash: manifest: %w",
			&statusError{code: resp.StatusCode, status: resp.Status, retryAfter: parseRetryAfter(resp)})
	}
	return parseManifest(resp.Body)
}

// fetchSegment GETs one media segment, discarding the payload. A body
// shorter than the advertised Content-Length — whether it ends in a
// clean EOF or a torn connection — surfaces as ErrTruncated instead of
// being silently accepted as a smaller segment. A non-empty tp is sent
// as the W3C traceparent header, so a tracing server records its half
// of the request under the same trace ID.
func (c *Client) fetchSegment(ctx context.Context, url, tp string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("build request: %w", err)
	}
	if tp != "" {
		req.Header.Set(tracing.Header, tp)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, &statusError{code: resp.StatusCode, status: resp.Status, retryAfter: parseRetryAfter(resp)}
	}
	n, err := io.Copy(io.Discard, resp.Body)
	want := resp.ContentLength
	if err != nil {
		if want >= 0 && n < want {
			return 0, fmt.Errorf("%w: %d of %d bytes (%v)", ErrTruncated, n, want, err)
		}
		return 0, fmt.Errorf("read body: %w", err)
	}
	if want >= 0 && n != want {
		return 0, fmt.Errorf("%w: %d of %d bytes", ErrTruncated, n, want)
	}
	return n, nil
}
