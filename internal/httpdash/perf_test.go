package httpdash

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/faults"
)

// The shaping rate is an aggregate cap: N concurrent connections must
// share one token bucket, not each enjoy the full rate. Before the
// shared pacer, 8 connections produced ~8× the configured egress; this
// pins the fix at two very different concurrency levels.
func TestRateLimitSharedAcrossConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based shaping test")
	}
	const rateMBps = 24.0
	const totalFetches = 16 // rung-5 segments are ~1.4 MB → ~22 MB total
	for _, conns := range []int{2, 8} {
		t.Run(fmt.Sprintf("conns=%d", conns), func(t *testing.T) {
			srv, ts := newTestServer(t, 20, WithRateLimitMBps(rateMBps))
			hc := &http.Client{Transport: NewTransport()}
			defer hc.CloseIdleConnections()

			var total atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			for c := 0; c < conns; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < totalFetches; i += conns {
						url, err := srv.SegmentURL(ts.URL, 5, i%10)
						if err != nil {
							t.Error(err)
							return
						}
						resp, err := hc.Get(url)
						if err != nil {
							t.Error(err)
							return
						}
						n, err := io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if err != nil {
							t.Error(err)
							return
						}
						total.Add(n)
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start).Seconds()
			aggregate := float64(total.Load()) / 1e6 / elapsed
			if aggregate > 1.6*rateMBps {
				t.Errorf("%d connections: aggregate egress %.1f MB/s blows through the %.0f MB/s cap",
					conns, aggregate, rateMBps)
			}
			if aggregate < 0.4*rateMBps {
				t.Errorf("%d connections: aggregate egress %.1f MB/s is implausibly far under the %.0f MB/s cap",
					conns, aggregate, rateMBps)
			}
		})
	}
}

// The segment serving path runs on a pinned allocation budget: pooled
// chunk buffers, precomputed sizes and Content-Length strings, and
// allocation-free path parsing leave only the two header-value slices
// net/http's Header.Set requires.
func TestServeSegmentAllocBudget(t *testing.T) {
	srv := newBenchServer(t)
	url, err := srv.SegmentURL("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, url, nil)
	w := &discardResponseWriter{h: make(http.Header, 4)}
	allocs := testing.AllocsPerRun(500, func() {
		srv.ServeHTTP(w, req)
	})
	const budget = 4
	if allocs > budget {
		t.Errorf("segment path allocates %.1f objects per request, budget is %d", allocs, budget)
	}
}

// With a deterministic algorithm and a clean server, the prefetch
// pipeline must fetch exactly the segments the serial loop fetches —
// same rungs, same byte counts, same single attempt each — and the
// server must see exactly one request per segment (no double-fetch).
func TestFetchAheadMatchesSerialOnCleanServer(t *testing.T) {
	serialSrv, serialTS := newTestServer(t, 20)
	serial, err := NewClient(serialTS.URL, &abr.Fixed{Rung: 2}, WithBufferThreshold(8))
	if err != nil {
		t.Fatal(err)
	}
	serialStats, err := serial.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pipeSrv, pipeTS := newTestServer(t, 20)
	pipe, err := NewClient(pipeTS.URL, &abr.Fixed{Rung: 2},
		WithBufferThreshold(8), WithFetchAhead(3))
	if err != nil {
		t.Fatal(err)
	}
	pipeStats, err := pipe.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(pipeStats.Fetches) != len(serialStats.Fetches) {
		t.Fatalf("pipelined fetched %d segments, serial fetched %d",
			len(pipeStats.Fetches), len(serialStats.Fetches))
	}
	for i, pf := range pipeStats.Fetches {
		sf := serialStats.Fetches[i]
		if pf.Segment != sf.Segment || pf.Rung != sf.Rung ||
			pf.ChosenRung != sf.ChosenRung || pf.Attempts != sf.Attempts || pf.Bytes != sf.Bytes {
			t.Errorf("fetch %d: pipelined %+v != serial %+v", i, pf, sf)
		}
	}
	if pipeStats.TotalBytes != serialStats.TotalBytes {
		t.Errorf("TotalBytes: pipelined %d != serial %d", pipeStats.TotalBytes, serialStats.TotalBytes)
	}
	if pipeStats.Retries != 0 || pipeStats.Downgrades != 0 || pipeStats.AbandonedSegments != 0 {
		t.Errorf("clean pipelined run recorded resilience events: %+v", pipeStats)
	}
	if got := pipeSrv.Snapshot().Requests; got != 10 {
		t.Errorf("server saw %d segment requests, want exactly 10 (no double-fetch)", got)
	}
	if got := serialSrv.Snapshot().Requests; got != 10 {
		t.Errorf("serial server saw %d segment requests, want 10", got)
	}
}

// A prefetched segment that fails must retry inside its own pipeline
// slot: the retries and downgrades surface in Stats exactly once, the
// recovery is invisible to other segments, and the server never sees a
// duplicate fetch of a segment that already succeeded. Faults are
// injected client-side through a filtered RoundTripper so exactly one
// segment's attempts are hit no matter how the concurrent requests
// interleave.
func TestFetchAheadRetryStormCountsOnce(t *testing.T) {
	script := faults.NewScript([]faults.Verdict{
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.Error5xx, Status: 502},
	})
	srv, ts := newTestServer(t, 20)
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &faults.RoundTripper{
			Plan:   script,
			Filter: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/3.m4s") },
		},
	}
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 2},
		WithHTTPClient(hc), WithBufferThreshold(8), WithFetchAhead(2),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts:      4,
			AttemptTimeout:   5 * time.Second,
			BackoffBase:      time.Millisecond,
			BackoffMax:       5 * time.Millisecond,
			DowngradeOnRetry: true,
		}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stream(context.Background())
	if err != nil {
		t.Fatalf("recoverable prefetch storm sank the session: %v", err)
	}
	if len(stats.Fetches) != 10 {
		t.Fatalf("fetched %d segments, want 10", len(stats.Fetches))
	}
	if stats.Retries != 2 {
		t.Errorf("retries = %d, want 2 (counted once, not per pipeline slot)", stats.Retries)
	}
	if stats.Downgrades != 2 {
		t.Errorf("downgrades = %d, want 2", stats.Downgrades)
	}
	for _, f := range stats.Fetches {
		want := Fetch{Segment: f.Segment, Rung: 2, ChosenRung: 2, Attempts: 1}
		if f.Segment == 3 {
			want.Rung, want.Attempts = 0, 3 // two downgrades from rung 2
		}
		if f.Rung != want.Rung || f.ChosenRung != want.ChosenRung || f.Attempts != want.Attempts {
			t.Errorf("segment %d: rung %d chosen %d attempts %d, want rung %d chosen %d attempts %d",
				f.Segment, f.Rung, f.ChosenRung, f.Attempts, want.Rung, want.ChosenRung, want.Attempts)
		}
	}
	// The two faulted attempts were intercepted client-side, so the
	// server must see exactly one request per segment fetch that went
	// through: 9 clean segments + 1 recovered fetch = 10.
	if got := srv.Snapshot().Requests; got != 10 {
		t.Errorf("server saw %d segment requests, want 10 (no double-fetch)", got)
	}
}

// An unrecoverable prefetched segment must tear the pipeline down: the
// typed abandonment error propagates at the failed segment's play
// position, already-played segments keep their stats, and in-flight
// later segments are cancelled rather than leaked.
func TestFetchAheadAbandonmentPropagates(t *testing.T) {
	script := faults.NewScript([]faults.Verdict{
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.Error5xx, Status: 503},
		{Kind: faults.Error5xx, Status: 503},
	})
	_, ts := newTestServer(t, 20)
	hc := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &faults.RoundTripper{
			Plan:   script,
			Filter: func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/5.m4s") },
		},
	}
	client, err := NewClient(ts.URL, &abr.Fixed{Rung: 2},
		WithHTTPClient(hc), WithBufferThreshold(8), WithFetchAhead(3),
		WithRetryPolicy(RetryPolicy{
			MaxAttempts:      3,
			AttemptTimeout:   5 * time.Second,
			BackoffBase:      time.Millisecond,
			BackoffMax:       5 * time.Millisecond,
			DowngradeOnRetry: true,
		}))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var stats *Stats
	var serr error
	go func() {
		defer close(done)
		stats, serr = client.Stream(context.Background())
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("abandoned prefetch hung instead of tearing the pipeline down")
	}
	if !errors.Is(serr, ErrSegmentAbandoned) {
		t.Fatalf("error = %v, want ErrSegmentAbandoned", serr)
	}
	if !strings.Contains(serr.Error(), "segment 5") {
		t.Errorf("error %q does not name the abandoned segment", serr)
	}
	if stats == nil {
		t.Fatal("no partial stats returned")
	}
	if len(stats.Fetches) != 5 {
		t.Errorf("played %d segments before the abandonment, want 5", len(stats.Fetches))
	}
	if stats.AbandonedSegments != 1 {
		t.Errorf("abandoned segments = %d, want 1", stats.AbandonedSegments)
	}
	if stats.Retries != 2 {
		t.Errorf("retries = %d, want 2 (budget of 3 attempts)", stats.Retries)
	}
}

// The point of the pipeline: per-request latency hides behind playout
// instead of serialising in front of it. With every segment delayed
// 40 ms server-side, the serial session pays the delay ten times; a
// depth-5 pipeline overlaps them.
func TestFetchAheadOverlapsLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based pipeline test")
	}
	latency := faults.Config{LatencyProb: 1, LatencyFor: 40 * time.Millisecond}
	elapsed := make(map[string]time.Duration, 2)
	for _, tc := range []struct {
		name  string
		ahead int
	}{{"serial", 0}, {"pipelined", 4}} {
		plan, err := faults.NewPlan(latency, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, 20, WithFaults(plan))
		client, err := NewClient(ts.URL, &abr.Fixed{Rung: 0},
			WithBufferThreshold(8), WithFetchAhead(tc.ahead))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		stats, err := client.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Fetches) != 10 {
			t.Fatalf("%s: fetched %d segments, want 10", tc.name, len(stats.Fetches))
		}
		elapsed[tc.name] = time.Since(start)
	}
	if elapsed["serial"] < 350*time.Millisecond {
		t.Fatalf("serial session took %v; latency injection did not bite", elapsed["serial"])
	}
	if elapsed["pipelined"] >= elapsed["serial"]*3/4 {
		t.Errorf("pipelined session took %v vs serial %v; prefetch hid no latency",
			elapsed["pipelined"], elapsed["serial"])
	}
}
