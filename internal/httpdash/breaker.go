package httpdash

import (
	"sync"
	"time"

	"ecavs/internal/telemetry"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes traffic and watches the failure rate.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: no request reaches the host until the
	// cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen lets a bounded number of probes through; their
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterises a circuit breaker. The zero value is not
// valid; DefaultBreakerConfig is the tuned starting point.
type BreakerConfig struct {
	// Window is how many recent attempt outcomes the failure rate is
	// computed over (a ring buffer; default 20).
	Window int
	// MinSamples is the fewest outcomes in the window before the
	// breaker may trip — a single failed first request must not open
	// the circuit (default 10).
	MinSamples int
	// FailureThreshold trips the breaker when the windowed failure rate
	// reaches it (default 0.5).
	FailureThreshold float64
	// OpenFor is the cool-down after tripping; while it runs every
	// attempt fails fast without touching the network (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrently in-flight probes once the
	// cool-down elapses (default 1).
	HalfOpenProbes int
	// CloseAfter is how many consecutive probe successes close the
	// breaker again (default 2). Any probe failure re-opens it.
	CloseAfter int
	// Clock overrides time.Now for deterministic tests (nil = wall
	// clock). The breaker never sleeps — it only compares timestamps —
	// so a scripted clock steps the whole state machine synchronously.
	Clock func() time.Time
}

// DefaultBreakerConfig is the client's standard breaker tuning: trip
// at a 50% failure rate over the last 20 attempts (once 10 have been
// seen), cool down for 2 s, then close after 2 clean probes.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:           20,
		MinSamples:       10,
		FailureThreshold: 0.5,
		OpenFor:          2 * time.Second,
		HalfOpenProbes:   1,
		CloseAfter:       2,
	}
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	d := DefaultBreakerConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = d.OpenFor
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = d.CloseAfter
	}
	return c
}

// Breaker is a per-host circuit breaker: closed it watches a windowed
// failure rate over attempt outcomes, open it fails fast until the
// cool-down elapses, half-open it admits a few probes whose outcomes
// decide recovery. It is safe for concurrent use (prefetch pipelines
// and shared fleets drive one breaker from many goroutines) and may be
// shared across clients targeting the same host via WithSharedBreaker.
//
// Construct with NewBreaker; the zero value is unusable.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu             sync.Mutex
	state          BreakerState
	window         []bool // ring of outcomes (true = failure)
	size, head     int
	failures       int
	openUntil      time.Time
	probesInFlight int
	probeSuccesses int
	opens          int64

	// Optional telemetry mirrors (nil = no-op).
	telState *telemetry.Gauge
	telOpens *telemetry.Counter
}

// NewBreaker builds a breaker; zero config fields take their defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Breaker{
		cfg:    cfg,
		now:    now,
		window: make([]bool, cfg.Window),
	}
}

// State reports the breaker's current position (open flips to
// half-open lazily, on the first Allow after the cool-down).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed/half-open → open transitions.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Allow asks to send one request. ok=false fails fast; retryAfter then
// says how long until the breaker is worth probing again (feed it to
// the backoff computation). ok=true obliges the caller to report the
// attempt's outcome with exactly one Record (or drop, if the outcome
// says nothing about the host).
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if wait := b.openUntil.Sub(b.now()); wait > 0 {
			return false, wait
		}
		b.setState(BreakerHalfOpen)
		b.probesInFlight = 0
		b.probeSuccesses = 0
		fallthrough
	default: // BreakerHalfOpen
		if b.probesInFlight >= b.cfg.HalfOpenProbes {
			// Probes are out; further attempts wait for their verdict.
			return false, b.cfg.OpenFor / 2
		}
		b.probesInFlight++
		return true, 0
	}
}

// Record reports an allowed attempt's outcome: success is any response
// that proves the host alive (including 4xx), failure is a transport
// error, timeout, truncation, or 5xx.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probesInFlight--
		if !success {
			b.trip()
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.CloseAfter {
			b.reset()
		}
	case BreakerClosed:
		b.push(!success)
		if b.size >= b.cfg.MinSamples &&
			float64(b.failures) >= b.cfg.FailureThreshold*float64(b.size) {
			b.trip()
		}
	default: // BreakerOpen: a straggler from before the trip; nothing to learn.
	}
}

// drop releases an allowed attempt without an outcome (the session was
// cancelled mid-flight — the host's health is unknown), so a half-open
// probe slot is not leaked.
func (b *Breaker) drop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probesInFlight > 0 {
		b.probesInFlight--
	}
}

// trip opens the breaker and starts the cool-down. Callers hold mu.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openUntil = b.now().Add(b.cfg.OpenFor)
	b.opens++
	b.telOpens.Inc()
	b.clearWindow()
}

// reset closes the breaker with a clean window. Callers hold mu.
func (b *Breaker) reset() {
	b.setState(BreakerClosed)
	b.clearWindow()
}

func (b *Breaker) clearWindow() {
	b.size, b.head, b.failures = 0, 0, 0
}

// push appends one outcome to the ring. Callers hold mu.
func (b *Breaker) push(failure bool) {
	if b.size == len(b.window) {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.size++
	}
	b.window[b.head] = failure
	b.head = (b.head + 1) % len(b.window)
	if failure {
		b.failures++
	}
}

// setState records a transition and mirrors it to telemetry. Callers
// hold mu.
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	b.telState.Set(float64(s))
}
