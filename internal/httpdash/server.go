// Package httpdash puts the DASH substrate on a real network: an
// http.Handler that serves an MPD manifest and synthetic media
// segments (with optional token-bucket rate shaping and fault
// injection), and a streaming client that fetches segments over HTTP,
// measures throughput, retries failures with bounded backoff, and
// drives any abr.Algorithm — the same interface the simulator drives.
// It is the integration layer that shows the library working over an
// actual TCP/HTTP stack rather than the discrete-event simulator.
package httpdash

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecavs/internal/dash"
	"ecavs/internal/faults"
	"ecavs/internal/telemetry"
)

// Server serves one video: GET /manifest.mpd and
// GET /seg/<repID>/<n>.m4s.
//
// Construct with NewServer; the zero value is unusable.
type Server struct {
	manifest *dash.Manifest
	mpdXML   []byte
	repIDs   []string       // index-aligned with the ladder
	rungByID map[string]int // repID -> ladder index
	faults   *faults.Plan   // nil = healthy server

	// Per-rung traffic accounting: lock-free so the 64 KiB chunk loop
	// in writeBody never serialises transfers on a shared mutex.
	rungStats []rungCounters

	// Optional telemetry mirrors (nil without WithServerTelemetry;
	// nil metrics are no-ops, so the serving path stays branch-free).
	telRequests, telBytes, telFaults []*telemetry.Counter
	telLatency                       *telemetry.Histogram

	mu       sync.Mutex
	rateMBps float64 // 0 = unshaped
}

// rungCounters is one rung's atomic traffic counters.
type rungCounters struct {
	requests atomic.Int64
	bytes    atomic.Int64
	faults   atomic.Int64
}

var _ http.Handler = (*Server)(nil)

// ServerOption customises the server.
type ServerOption func(*Server)

// WithRateLimitMBps shapes segment responses to the given rate
// (token-bucket pacing in 64 KiB chunks). Zero disables shaping.
func WithRateLimitMBps(mbps float64) ServerOption {
	return func(s *Server) {
		if mbps > 0 {
			s.rateMBps = mbps
		}
	}
}

// WithServerTelemetry mirrors the server's per-rung traffic counters
// into a telemetry registry:
//
//	httpdash_server_requests_total{rung}  segment requests accepted
//	httpdash_server_bytes_total{rung}     segment payload bytes sent
//	httpdash_server_faults_total{rung}    fault verdicts realized
//	httpdash_server_segment_seconds       segment serve latency
//
// A nil registry is a no-op (Snapshot and BytesSent still work — they
// read the always-on atomic counters).
func WithServerTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		if reg == nil {
			return
		}
		requests := reg.CounterVec("httpdash_server_requests_total",
			"Segment requests accepted, by ladder rung.", "rung")
		bytes := reg.CounterVec("httpdash_server_bytes_total",
			"Segment payload bytes sent, by ladder rung.", "rung")
		faultsVec := reg.CounterVec("httpdash_server_faults_total",
			"Injected fault verdicts realized, by ladder rung.", "rung")
		for i := range s.repIDs {
			rung := strconv.Itoa(i)
			s.telRequests[i] = requests.With(rung)
			s.telBytes[i] = bytes.With(rung)
			s.telFaults[i] = faultsVec.With(rung)
		}
		s.telLatency = reg.Histogram("httpdash_server_segment_seconds",
			"Wall-clock time serving one segment request.", telemetry.DefLatencyBuckets())
	}
}

// WithFaults makes the server consult a fault plan for every segment
// request (the manifest stays reliable): Error5xx answers with the
// injected status, Reset aborts the connection, Stall hangs
// mid-transfer, Truncate closes the connection after a body prefix,
// and Latency delays the response. Nil disables injection.
func WithFaults(p *faults.Plan) ServerOption {
	return func(s *Server) {
		s.faults = p
	}
}

// NewServer builds the handler for a manifest.
func NewServer(m *dash.Manifest, opts ...ServerOption) (*Server, error) {
	if m == nil {
		return nil, errors.New("httpdash: nil manifest")
	}
	mpd, err := dash.BuildMPD(m)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := dash.WriteMPD(&sb, mpd); err != nil {
		return nil, err
	}
	ids := make([]string, len(m.Ladder()))
	byID := make(map[string]int, len(ids))
	for i, rep := range mpd.Period.AdaptationSet.Representations {
		ids[i] = rep.ID
		byID[rep.ID] = i
	}
	s := &Server{
		manifest:  m,
		mpdXML:    []byte(sb.String()),
		repIDs:    ids,
		rungByID:  byID,
		rungStats: make([]rungCounters, len(ids)),
		// Telemetry mirrors default to nil entries — a nil *Counter is
		// a no-op, so the serving path increments unconditionally.
		telRequests: make([]*telemetry.Counter, len(ids)),
		telBytes:    make([]*telemetry.Counter, len(ids)),
		telFaults:   make([]*telemetry.Counter, len(ids)),
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// SetRateLimitMBps changes the shaping rate at runtime (0 disables) —
// handy for emulating network dips mid-session. Segment transfers
// already in flight pick the new rate up at their next chunk.
func (s *Server) SetRateLimitMBps(mbps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if mbps < 0 {
		mbps = 0
	}
	s.rateMBps = mbps
}

// RungSnapshot is one ladder rung's traffic totals.
type RungSnapshot struct {
	// RepID is the rung's representation ID in the MPD.
	RepID string `json:"rep_id"`
	// Requests counts accepted segment requests (before any fault
	// verdict), Bytes the payload actually written, and Faults the
	// injected fault verdicts realized for this rung.
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
	Faults   int64 `json:"faults"`
}

// Snapshot is a point-in-time copy of the server's traffic counters.
type Snapshot struct {
	// Rungs is index-aligned with the manifest ladder.
	Rungs []RungSnapshot `json:"rungs"`
	// Requests, Bytes, Faults are the cross-rung totals.
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
	Faults   int64 `json:"faults"`
}

// Snapshot reads the per-rung traffic counters. Counters are sampled
// one atomic load at a time, so a snapshot taken mid-transfer is
// approximate across rungs but never torn within one counter.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{Rungs: make([]RungSnapshot, len(s.rungStats))}
	for i := range s.rungStats {
		rc := &s.rungStats[i]
		r := RungSnapshot{
			RepID:    s.repIDs[i],
			Requests: rc.requests.Load(),
			Bytes:    rc.bytes.Load(),
			Faults:   rc.faults.Load(),
		}
		snap.Rungs[i] = r
		snap.Requests += r.Requests
		snap.Bytes += r.Bytes
		snap.Faults += r.Faults
	}
	return snap
}

// BytesSent reports the total segment payload served — a compatibility
// wrapper over Snapshot for callers that predate per-rung accounting.
func (s *Server) BytesSent() int64 {
	return s.Snapshot().Bytes
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case r.URL.Path == "/manifest.mpd":
		w.Header().Set("Content-Type", "application/dash+xml")
		_, _ = w.Write(s.mpdXML)
	case strings.HasPrefix(r.URL.Path, "/seg/"):
		s.serveSegment(w, r)
	default:
		http.NotFound(w, r)
	}
}

// rungForRepID resolves a representation ID to its ladder index.
func (s *Server) rungForRepID(id string) (int, bool) {
	i, ok := s.rungByID[id]
	return i, ok
}

// sleepOrGone waits d, returning early (false) if the client went away.
func sleepOrGone(r *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-r.Context().Done():
		return false
	case <-timer.C:
		return true
	}
}

func (s *Server) serveSegment(w http.ResponseWriter, r *http.Request) {
	// Path: /seg/<repID>/<n>.m4s
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/seg/"), "/")
	if len(parts) != 2 || !strings.HasSuffix(parts[1], ".m4s") {
		http.Error(w, "bad segment path", http.StatusBadRequest)
		return
	}
	rung, ok := s.rungForRepID(parts[0])
	if !ok {
		http.Error(w, "unknown representation", http.StatusNotFound)
		return
	}
	n, err := strconv.Atoi(strings.TrimSuffix(parts[1], ".m4s"))
	if err != nil {
		http.Error(w, "bad segment number", http.StatusBadRequest)
		return
	}
	sizeMB, err := s.manifest.SegmentSizeMB(n, rung)
	if err != nil {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	size := int(sizeMB * 1e6)
	if size < 1 {
		size = 1
	}

	// The request resolved to a real segment: account it (and its
	// serve latency) to the rung, whatever the fault plan does next.
	s.rungStats[rung].requests.Add(1)
	s.telRequests[rung].Inc()
	start := time.Now()
	defer func() { s.telLatency.Observe(time.Since(start).Seconds()) }()

	// Fault verdicts apply only to valid segment requests, so a broken
	// URL is still a plain 4xx and retries burn plan attempts only for
	// real segments.
	var verdict faults.Verdict
	if s.faults != nil {
		verdict = s.faults.Verdict(r.URL.Path)
	}
	if verdict.Kind != faults.None {
		s.rungStats[rung].faults.Add(1)
		s.telFaults[rung].Inc()
	}
	switch verdict.Kind {
	case faults.Error5xx:
		http.Error(w, "injected fault", verdict.Status)
		return
	case faults.Reset:
		panic(http.ErrAbortHandler) // tear the connection down
	case faults.Latency:
		if !sleepOrGone(r, verdict.Latency) {
			return
		}
	case faults.Truncate:
		// Deliver a prefix while still advertising the full size; the
		// aborted connection surfaces client-side as a short body.
		cut := int(float64(size) * verdict.TruncateFrac)
		if cut < 1 {
			cut = 1
		}
		w.Header().Set("Content-Type", "video/iso.segment")
		w.Header().Set("Content-Length", strconv.Itoa(size))
		s.writeBody(w, r, rung, cut, 0)
		panic(http.ErrAbortHandler)
	}

	w.Header().Set("Content-Type", "video/iso.segment")
	w.Header().Set("Content-Length", strconv.Itoa(size))
	s.writeBody(w, r, rung, size, verdict.Stall)
}

// writeBody streams size synthetic bytes for one rung, re-reading the
// shaping rate under the mutex every chunk so SetRateLimitMBps applies
// to transfers already in flight (byte accounting is atomic and never
// touches the mutex). A positive stall hangs the response before the
// first body byte — the client sits blocked on the transfer until its
// per-attempt deadline fires (or the stall ends).
func (s *Server) writeBody(w http.ResponseWriter, r *http.Request, rung, size int, stall time.Duration) {
	if stall > 0 && !sleepOrGone(r, stall) {
		return
	}
	const chunk = 64 << 10
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte('0' + (i % 10)) // synthetic but non-trivial payload
	}
	remaining := size
	for remaining > 0 {
		n := chunk
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return // client went away
		}
		remaining -= n
		s.rungStats[rung].bytes.Add(int64(n))
		s.telBytes[rung].Add(int64(n))
		s.mu.Lock()
		rate := s.rateMBps
		s.mu.Unlock()
		if rate > 0 {
			time.Sleep(time.Duration(float64(n) / (rate * 1e6) * float64(time.Second)))
		}
	}
}

// SegmentURL renders the media URL for (rung, segment) the way the MPD
// template describes.
func (s *Server) SegmentURL(base string, rung, segment int) (string, error) {
	if rung < 0 || rung >= len(s.repIDs) {
		return "", fmt.Errorf("httpdash: rung %d out of range", rung)
	}
	return fmt.Sprintf("%s/seg/%s/%d.m4s", strings.TrimSuffix(base, "/"), s.repIDs[rung], segment), nil
}
