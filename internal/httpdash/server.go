// Package httpdash puts the DASH substrate on a real network: an
// http.Handler that serves an MPD manifest and synthetic media
// segments (with optional token-bucket rate shaping and fault
// injection), and a streaming client that fetches segments over HTTP,
// measures throughput, retries failures with bounded backoff,
// optionally prefetches ahead of the play head, and drives any
// abr.Algorithm — the same interface the simulator drives. It is the
// integration layer that shows the library working over an actual
// TCP/HTTP stack rather than the discrete-event simulator.
package httpdash

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ecavs/internal/dash"
	"ecavs/internal/faults"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

// chunkSize is the body-write granularity: pacing, byte accounting,
// and client-disconnect checks all happen on 64 KiB boundaries.
const chunkSize = 64 << 10

// chunkPool recycles pre-filled payload chunks across requests. The
// synthetic payload is position-deterministic, so a recycled chunk is
// byte-identical to a fresh one and the serving path never fills (or
// even touches) the buffer contents — it only slices and writes.
var chunkPool = sync.Pool{
	New: func() any {
		buf := make([]byte, chunkSize)
		for i := range buf {
			buf[i] = byte('0' + (i % 10)) // synthetic but non-trivial payload
		}
		return &buf
	},
}

// Server serves one video: GET /manifest.mpd and
// GET /seg/<repID>/<n>.m4s.
//
// Construct with NewServer; the zero value is unusable.
type Server struct {
	manifest *dash.Manifest
	mpdXML   []byte
	repIDs   []string       // index-aligned with the ladder
	rungByID map[string]int // repID -> ladder index
	faults   *faults.Plan   // nil = healthy server

	// admission bounds concurrent segment transfers (nil = accept
	// everything, the seed behaviour); gate tracks every in-flight
	// request for Shutdown's graceful drain and is always on.
	admission *admission
	gate      *drainGate
	shedDrain atomic.Int64 // requests refused while draining

	// Precomputed per-(rung, segment) response parameters: payload
	// sizes in bytes and their rendered Content-Length values, so the
	// hot path never re-derives sizes or formats integers.
	segBytes [][]int
	segCL    [][]string

	// Per-rung traffic accounting: lock-free so the 64 KiB chunk loop
	// in writeBody never serialises transfers on a shared mutex.
	rungStats []rungCounters

	// Optional telemetry mirrors (nil without WithServerTelemetry;
	// nil metrics are no-ops, so the serving path stays branch-free).
	telRequests, telBytes, telFaults, telShed []*telemetry.Counter
	telLatency                                *telemetry.Histogram
	telReg                                    *telemetry.Registry

	// rateBits holds math.Float64bits of the shaping rate in MB/s
	// (0 = unshaped). Published atomically so every in-flight chunk
	// loop picks rate changes up without a lock.
	rateBits atomic.Uint64

	// pacer is the shared egress shaper: one token bucket across all
	// connections, so aggregate egress — not per-connection egress —
	// honours the configured rate.
	pacer pacer

	// tracer records per-request spans (nil = tracing disabled; the
	// serving path pays one branch and zero allocations).
	tracer *tracing.Tracer
}

// rungCounters is one rung's atomic traffic counters.
type rungCounters struct {
	requests atomic.Int64
	bytes    atomic.Int64
	faults   atomic.Int64
	shed     atomic.Int64
}

var _ http.Handler = (*Server)(nil)

// pacer is a lock-free token bucket expressed as a virtual clock: the
// single atomic word holds the nanosecond at which the last reserved
// chunk's tokens run out. Each sender CASes the clock forward by its
// chunk's cost (bytes ÷ rate) and sleeps until its own reservation
// matures. Arrival order is service order, so concurrent connections
// interleave chunk-by-chunk and the aggregate rate stays pinned to the
// configured limit no matter how many transfers are in flight. An idle
// bucket carries no credit: a reservation never starts before now, so
// a quiet period is not followed by a burst above the cap.
type pacer struct {
	next atomic.Int64 // unix nanos when the last reservation matures
}

// reserve books n bytes at rateMBps and waits for the reservation to
// mature, returning false if the client went away first.
func (p *pacer) reserve(r *http.Request, n int, rateMBps float64) bool {
	cost := int64(float64(n) / (rateMBps * 1e6) * 1e9)
	for {
		now := time.Now().UnixNano()
		prev := p.next.Load()
		start := prev
		if start < now {
			start = now
		}
		if !p.next.CompareAndSwap(prev, start+cost) {
			continue
		}
		if d := time.Duration(start + cost - now); d > 0 {
			return sleepOrGone(r, d)
		}
		return true
	}
}

// WithRateLimitMBps shapes segment responses to the given aggregate
// rate (a token bucket shared by every connection, paced in 64 KiB
// chunks). Zero disables shaping.
func WithRateLimitMBps(mbps float64) ServerOption {
	return func(s *Server) {
		if mbps > 0 {
			s.rateBits.Store(math.Float64bits(mbps))
		}
	}
}

// WithServerTelemetry mirrors the server's per-rung traffic counters
// into a telemetry registry:
//
//	httpdash_server_requests_total{rung}  segment requests accepted
//	httpdash_server_bytes_total{rung}     segment payload bytes sent
//	httpdash_server_faults_total{rung}    fault verdicts realized
//	httpdash_server_shed_total{rung}      segment requests shed by admission control
//	httpdash_server_queued_total          segment requests that waited for a slot
//	httpdash_server_inflight              currently admitted requests (scrape-time)
//	httpdash_server_segment_seconds       segment serve latency
//
// A nil registry is a no-op (Snapshot still works — it reads the
// always-on atomic counters). The option only records the registry;
// every series is wired after all options applied, so it composes with
// admission control and tracing in any order.
func WithServerTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) {
		s.telReg = reg
	}
}

// wireTelemetry registers the server's series on the recorded registry.
// It runs once, after every option has applied, which is what makes
// WithServerTelemetry order-independent with respect to
// WithAdmissionControl: the admission queue counter exists exactly when
// both options were given, whichever came first.
func (s *Server) wireTelemetry() {
	reg := s.telReg
	if reg == nil {
		return
	}
	requests := reg.CounterVec("httpdash_server_requests_total",
		"Segment requests accepted, by ladder rung.", "rung")
	bytes := reg.CounterVec("httpdash_server_bytes_total",
		"Segment payload bytes sent, by ladder rung.", "rung")
	faultsVec := reg.CounterVec("httpdash_server_faults_total",
		"Injected fault verdicts realized, by ladder rung.", "rung")
	shedVec := reg.CounterVec("httpdash_server_shed_total",
		"Segment requests shed by admission control, by ladder rung.", "rung")
	for i := range s.repIDs {
		rung := strconv.Itoa(i)
		s.telRequests[i] = requests.With(rung)
		s.telBytes[i] = bytes.With(rung)
		s.telFaults[i] = faultsVec.With(rung)
		s.telShed[i] = shedVec.With(rung)
	}
	s.telLatency = reg.Histogram("httpdash_server_segment_seconds",
		"Wall-clock time serving one segment request.", telemetry.DefLatencyBuckets())
	reg.GaugeFunc("httpdash_server_inflight",
		"Requests currently being served (sampled at scrape time).", func() float64 {
			return float64(s.gate.inFlight())
		})
	if s.admission != nil {
		s.admission.telQueued = reg.Counter("httpdash_server_queued_total",
			"Segment requests that waited in the admission queue.")
	}
}

// WithServerTracing records one span tree per segment request: a root
// span that joins the caller's trace when the request carries a W3C
// `traceparent` header (and starts a fresh trace otherwise), with
// child spans for admission-queue wait, injected fault latency/stalls,
// and the chunked body write — the write span carries the bytes
// written and the time spent waiting on the shared pacing bucket. Shed
// and fault outcomes are recorded as span statuses, so the tail
// sampler always keeps them. A nil tracer keeps tracing disabled at
// zero cost on the serving path.
func WithServerTracing(tr *tracing.Tracer) ServerOption {
	return func(s *Server) {
		s.tracer = tr
	}
}

// WithFaults makes the server consult a fault plan for every segment
// request (the manifest stays reliable): Error5xx answers with the
// injected status, Reset aborts the connection, Stall hangs
// mid-transfer, Truncate closes the connection after a body prefix,
// and Latency delays the response. Nil disables injection.
func WithFaults(p *faults.Plan) ServerOption {
	return func(s *Server) {
		s.faults = p
	}
}

// NewServer builds the handler for a manifest.
func NewServer(m *dash.Manifest, opts ...ServerOption) (*Server, error) {
	if m == nil {
		return nil, errors.New("httpdash: nil manifest")
	}
	mpd, err := dash.BuildMPD(m)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := dash.WriteMPD(&sb, mpd); err != nil {
		return nil, err
	}
	ids := make([]string, len(m.Ladder()))
	byID := make(map[string]int, len(ids))
	for i, rep := range mpd.Period.AdaptationSet.Representations {
		ids[i] = rep.ID
		byID[rep.ID] = i
	}
	// Materialise every segment's payload size (and its Content-Length
	// header value) up front: the VBR-jittered sizes are deterministic
	// per manifest, and precomputing them keeps float math, error
	// handling, and integer formatting off the per-request path.
	segBytes := make([][]int, len(ids))
	segCL := make([][]string, len(ids))
	for rung := range ids {
		segBytes[rung] = make([]int, m.SegmentCount())
		segCL[rung] = make([]string, m.SegmentCount())
		for n := 0; n < m.SegmentCount(); n++ {
			sizeMB, err := m.SegmentSizeMB(n, rung)
			if err != nil {
				return nil, err
			}
			size := int(sizeMB * 1e6)
			if size < 1 {
				size = 1
			}
			segBytes[rung][n] = size
			segCL[rung][n] = strconv.Itoa(size)
		}
	}
	s := &Server{
		manifest:  m,
		mpdXML:    []byte(sb.String()),
		repIDs:    ids,
		rungByID:  byID,
		segBytes:  segBytes,
		segCL:     segCL,
		rungStats: make([]rungCounters, len(ids)),
		gate:      newDrainGate(),
		// Telemetry mirrors default to nil entries — a nil *Counter is
		// a no-op, so the serving path increments unconditionally.
		telRequests: make([]*telemetry.Counter, len(ids)),
		telBytes:    make([]*telemetry.Counter, len(ids)),
		telFaults:   make([]*telemetry.Counter, len(ids)),
		telShed:     make([]*telemetry.Counter, len(ids)),
	}
	applyOptions(s, opts)
	s.wireTelemetry()
	return s, nil
}

// SetRateLimitMBps changes the shaping rate at runtime (0 disables) —
// handy for emulating network dips mid-session. The rate is published
// atomically: segment transfers already in flight pick the new rate up
// at their next chunk.
func (s *Server) SetRateLimitMBps(mbps float64) {
	if mbps < 0 {
		mbps = 0
	}
	s.rateBits.Store(math.Float64bits(mbps))
}

// rateMBps reads the currently published shaping rate.
func (s *Server) rateMBps() float64 {
	return math.Float64frombits(s.rateBits.Load())
}

// RungSnapshot is one ladder rung's traffic totals.
type RungSnapshot struct {
	// RepID is the rung's representation ID in the MPD.
	RepID string `json:"rep_id"`
	// Requests counts accepted segment requests (before any fault
	// verdict), Bytes the payload actually written, Faults the injected
	// fault verdicts realized, and Shed the requests bounced by
	// admission control for this rung.
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
	Faults   int64 `json:"faults"`
	Shed     int64 `json:"shed"`
}

// Snapshot is a point-in-time copy of the server's traffic counters.
type Snapshot struct {
	// Rungs is index-aligned with the manifest ladder.
	Rungs []RungSnapshot `json:"rungs"`
	// Requests, Bytes, Faults are the cross-rung totals.
	Requests int64 `json:"requests"`
	Bytes    int64 `json:"bytes"`
	Faults   int64 `json:"faults"`
	// Shed totals every refused request: per-rung admission sheds plus
	// requests bounced while draining. Requests+Shed therefore equals
	// every request that resolved to a real segment (or arrived during
	// a drain) — the accepted+shed == issued accounting overload tests
	// gate on.
	Shed int64 `json:"shed"`
	// Queued counts requests that waited in the admission queue before
	// being admitted or shed.
	Queued int64 `json:"queued"`
	// InFlight is the number of requests being served at snapshot time
	// (0 after a completed Shutdown — no leaked transfers).
	InFlight int64 `json:"in_flight"`
}

// Snapshot reads the per-rung traffic counters. Counters are sampled
// one atomic load at a time, so a snapshot taken mid-transfer is
// approximate across rungs but never torn within one counter.
func (s *Server) Snapshot() Snapshot {
	snap := Snapshot{Rungs: make([]RungSnapshot, len(s.rungStats))}
	for i := range s.rungStats {
		rc := &s.rungStats[i]
		r := RungSnapshot{
			RepID:    s.repIDs[i],
			Requests: rc.requests.Load(),
			Bytes:    rc.bytes.Load(),
			Faults:   rc.faults.Load(),
			Shed:     rc.shed.Load(),
		}
		snap.Rungs[i] = r
		snap.Requests += r.Requests
		snap.Bytes += r.Bytes
		snap.Faults += r.Faults
		snap.Shed += r.Shed
	}
	snap.Shed += s.shedDrain.Load()
	if s.admission != nil {
		snap.Queued = s.admission.queuedTotal.Load()
	}
	snap.InFlight = s.gate.inFlight()
	return snap
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The drain gate brackets every request: once Shutdown has been
	// called new requests bounce with 503 + Retry-After, and Shutdown
	// returns only after the last gated request exits.
	if !s.gate.enter() {
		s.shedDrain.Add(1)
		shedResponse(w, s.shedRetryAfter())
		return
	}
	defer s.gate.exit()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case r.URL.Path == "/manifest.mpd":
		w.Header().Set("Content-Type", "application/dash+xml")
		_, _ = w.Write(s.mpdXML)
	case strings.HasPrefix(r.URL.Path, "/seg/"):
		s.serveSegment(w, r)
	default:
		http.NotFound(w, r)
	}
}

// shedRetryAfter is the Retry-After hint attached to refused requests.
func (s *Server) shedRetryAfter() time.Duration {
	if s.admission != nil {
		return s.admission.cfg.RetryAfter
	}
	return time.Second
}

// Shutdown drains the server gracefully: it stops accepting requests
// (new ones are refused with 503 + Retry-After so clients back off and
// retry elsewhere) and waits for in-flight transfers to finish,
// bounded by the context. It returns nil once the server is idle, or
// the context's error if the deadline expires first. Shutdown is
// idempotent and composes with http.Server.Shutdown — call this first
// so the handler refuses fresh work while the listener unwinds.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gate.drain()
	select {
	case <-s.gate.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rungForRepID resolves a representation ID to its ladder index.
func (s *Server) rungForRepID(id string) (int, bool) {
	i, ok := s.rungByID[id]
	return i, ok
}

// sleepOrGone waits d, returning early (false) if the client went away.
func sleepOrGone(r *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-r.Context().Done():
		return false
	case <-timer.C:
		return true
	}
}

func (s *Server) serveSegment(w http.ResponseWriter, r *http.Request) {
	// Path: /seg/<repID>/<n>.m4s — parsed with substring cuts only, no
	// per-request slice allocation.
	repID, file, ok := strings.Cut(r.URL.Path[len("/seg/"):], "/")
	if !ok || strings.IndexByte(file, '/') >= 0 || !strings.HasSuffix(file, ".m4s") {
		http.Error(w, "bad segment path", http.StatusBadRequest)
		return
	}
	rung, ok := s.rungForRepID(repID)
	if !ok {
		http.Error(w, "unknown representation", http.StatusNotFound)
		return
	}
	n, err := strconv.Atoi(strings.TrimSuffix(file, ".m4s"))
	if err != nil {
		http.Error(w, "bad segment number", http.StatusBadRequest)
		return
	}
	if n < 0 || n >= len(s.segBytes[rung]) {
		http.Error(w, "no such segment", http.StatusNotFound)
		return
	}
	size := s.segBytes[rung][n]

	// Tracing starts only once the path parsed to a real segment: a
	// `traceparent` header joins the caller's trace, its absence starts
	// a fresh one. The deferred End publishes the fragment on every
	// exit, including the panics the Reset/Truncate faults use.
	var span *tracing.Span
	if s.tracer != nil {
		span = s.tracer.StartRemote("serve_segment", r.Header.Get(tracing.Header))
		span.SetAttr("rep", repID)
		span.SetAttrInt("segment", int64(n))
		span.SetAttrInt("rung", int64(rung))
		defer span.End()
	}

	// Admission: acquire an in-flight slot (possibly waiting in the
	// bounded FIFO queue) or shed the request with 503 + Retry-After.
	// Malformed URLs never reach this point, so shedding is accounted
	// per real rung and the accepted+shed == issued invariant holds.
	if a := s.admission; a != nil {
		asp := span.StartChild("admission")
		switch a.admit(r, rung, len(s.repIDs)) {
		case shed:
			asp.SetStatus("shed", "queue full or wait budget exceeded")
			asp.End()
			span.SetStatus("shed", "admission control")
			s.rungStats[rung].shed.Add(1)
			s.telShed[rung].Inc()
			shedResponse(w, a.cfg.RetryAfter)
			return
		case gone:
			asp.SetStatus("cancelled", "client left the queue")
			asp.End()
			span.SetStatus("cancelled", "client left while queued")
			return // client left while queued; nothing to answer
		}
		asp.End()
		defer a.release()
	}

	// The request resolved to a real segment: account it (and its
	// serve latency) to the rung, whatever the fault plan does next.
	s.rungStats[rung].requests.Add(1)
	s.telRequests[rung].Inc()
	start := time.Now()
	defer func() { s.telLatency.Observe(time.Since(start).Seconds()) }()

	// Fault verdicts apply only to valid segment requests, so a broken
	// URL is still a plain 4xx and retries burn plan attempts only for
	// real segments.
	var verdict faults.Verdict
	if s.faults != nil {
		verdict = s.faults.Verdict(r.URL.Path)
	}
	if verdict.Kind != faults.None {
		s.rungStats[rung].faults.Add(1)
		s.telFaults[rung].Inc()
	}
	switch verdict.Kind {
	case faults.Error5xx:
		span.SetStatus("error", "injected 5xx fault")
		span.SetAttrInt("http_status", int64(verdict.Status))
		http.Error(w, "injected fault", verdict.Status)
		return
	case faults.Reset:
		// The deferred span.End() runs while this panic unwinds, so the
		// torn connection still leaves a trace.
		span.SetStatus("error", "injected connection reset")
		panic(http.ErrAbortHandler) // tear the connection down
	case faults.Latency:
		lsp := span.StartChild("fault_latency")
		lsp.SetAttrDuration("delay", verdict.Latency)
		ok := sleepOrGone(r, verdict.Latency)
		lsp.End()
		if !ok {
			span.SetStatus("cancelled", "client gone during injected latency")
			return
		}
	case faults.Truncate:
		// Deliver a prefix while still advertising the full size; the
		// aborted connection surfaces client-side as a short body.
		cut := int(float64(size) * verdict.TruncateFrac)
		if cut < 1 {
			cut = 1
		}
		h := w.Header()
		h.Set("Content-Type", "video/iso.segment")
		h.Set("Content-Length", s.segCL[rung][n])
		span.SetStatus("error", "injected truncation")
		s.writeBody(w, r, rung, cut, 0, span)
		panic(http.ErrAbortHandler)
	}

	h := w.Header()
	h.Set("Content-Type", "video/iso.segment")
	h.Set("Content-Length", s.segCL[rung][n])
	// Only a Stall verdict hangs the body: probabilistic plans populate
	// every duration field on every verdict, so honouring Stall here for
	// other kinds would smuggle a 2 s default hang into, say, a Latency
	// verdict (which it historically did).
	var stall time.Duration
	if verdict.Kind == faults.Stall {
		stall = verdict.Stall
	}
	s.writeBody(w, r, rung, size, stall, span)
}

// writeBody streams size synthetic bytes for one rung from a pooled,
// pre-filled chunk buffer — the serving path never copies or refills
// payload, it only slices the shared pattern. The shaping rate is an
// atomic load per chunk, so SetRateLimitMBps applies to transfers
// already in flight, and pacing reserves tokens from the bucket shared
// by every connection, so aggregate egress honours the limit. A
// positive stall hangs the response before the first body byte — the
// client sits blocked on the transfer until its per-attempt deadline
// fires (or the stall ends). Under a non-nil span the stall becomes a
// child span and the write gets one carrying the bytes sent and the
// cumulative time spent waiting on the pacing bucket; that extra
// timing only runs when the span exists, so disabled tracing leaves
// the chunk loop untouched.
func (s *Server) writeBody(w http.ResponseWriter, r *http.Request, rung, size int, stall time.Duration, span *tracing.Span) {
	if stall > 0 {
		ssp := span.StartChild("fault_stall")
		ssp.SetAttrDuration("stall", stall)
		ok := sleepOrGone(r, stall)
		ssp.End()
		if !ok {
			span.SetStatus("cancelled", "client gone during injected stall")
			return
		}
	}
	var wsp *tracing.Span
	var paceWait time.Duration
	if span != nil {
		wsp = span.StartChild("write")
	}
	written := 0
	bp := chunkPool.Get().(*[]byte)
	defer chunkPool.Put(bp)
	buf := *bp
	remaining := size
	for remaining > 0 {
		n := chunkSize
		if remaining < n {
			n = remaining
		}
		if _, err := w.Write(buf[:n]); err != nil {
			finishWriteSpan(wsp, written, paceWait, "client gone mid-write")
			return // client went away
		}
		written += n
		remaining -= n
		s.rungStats[rung].bytes.Add(int64(n))
		s.telBytes[rung].Add(int64(n))
		if rate := s.rateMBps(); rate > 0 {
			if wsp == nil {
				if !s.pacer.reserve(r, n, rate) {
					return
				}
			} else {
				t0 := time.Now()
				ok := s.pacer.reserve(r, n, rate)
				paceWait += time.Since(t0)
				if !ok {
					finishWriteSpan(wsp, written, paceWait, "client gone during pacing")
					return
				}
			}
		}
	}
	finishWriteSpan(wsp, written, paceWait, "")
}

// finishWriteSpan stamps a write span's payload accounting; a non-empty
// reason marks the write cut short by the client going away.
func finishWriteSpan(wsp *tracing.Span, written int, paceWait time.Duration, reason string) {
	if wsp == nil {
		return
	}
	wsp.SetAttrInt("bytes", int64(written))
	wsp.SetAttrDuration("pace_wait", paceWait)
	if reason != "" {
		wsp.SetStatus("cancelled", reason)
	}
	wsp.End()
}

// SegmentURL renders the media URL for (rung, segment) the way the MPD
// template describes.
func (s *Server) SegmentURL(base string, rung, segment int) (string, error) {
	if rung < 0 || rung >= len(s.repIDs) {
		return "", fmt.Errorf("httpdash: rung %d out of range", rung)
	}
	return fmt.Sprintf("%s/seg/%s/%d.m4s", strings.TrimSuffix(base, "/"), s.repIDs[rung], segment), nil
}
