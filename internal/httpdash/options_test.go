package httpdash

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"ecavs/internal/abr"
	"ecavs/internal/edgecache"
	"ecavs/internal/faults"
	"ecavs/internal/telemetry"
	"ecavs/internal/tracing"
)

// permutations returns every ordering of the indices 0..n-1 — small n
// only; the option surfaces under test have ≤ 5 interacting options.
func permutations(n int) [][]int {
	var out [][]int
	var rec func(cur, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rec(nil, idx)
	return out
}

func reorder[T any](opts []T, order []int) []T {
	out := make([]T, len(order))
	for i, j := range order {
		out[i] = opts[j]
	}
	return out
}

// TestServerOptionOrderIndependence pins the unified-options contract
// for the server: every permutation of the interacting options must
// yield the same wiring — in particular the admission controller's
// queue-depth mirror, which only exists when telemetry AND admission
// are both configured, must appear regardless of which option ran
// first.
func TestServerOptionOrderIndependence(t *testing.T) {
	plan, err := faults.NewPlan(faults.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range permutations(5) {
		order := order
		t.Run(fmt.Sprint(order), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			tr := tracing.New(tracing.Config{Service: "s", Sampler: tracing.Sampler{Ratio: 1}, Seed: 1}, tracing.NewStore(8))
			opts := []ServerOption{
				WithServerTelemetry(reg),
				WithAdmissionControl(AdmissionConfig{MaxInFlight: 4, MaxQueue: 4, QueueWait: time.Second}),
				WithRateLimitMBps(10),
				WithFaults(plan),
				WithServerTracing(tr),
			}
			srv := newBenchServer(t, reorder(opts, order)...)
			if srv.telReg != reg || srv.telLatency == nil || len(srv.telRequests) == 0 {
				t.Error("telemetry not wired")
			}
			if srv.admission == nil {
				t.Fatal("admission not wired")
			}
			if srv.admission.telQueued == nil {
				t.Error("admission queue mirror not wired — telemetry/admission order dependence")
			}
			if rate := math.Float64frombits(srv.rateBits.Load()); rate != 10 {
				t.Errorf("rate = %v, want 10", rate)
			}
			if srv.faults != plan || srv.tracer != tr {
				t.Error("faults or tracer not wired")
			}
		})
	}
}

// TestClientOptionOrderIndependence does the same for the client: the
// breaker's state gauge and open counter — a cross-option product of
// WithClientTelemetry and WithCircuitBreaker — must exist under every
// ordering.
func TestClientOptionOrderIndependence(t *testing.T) {
	for _, order := range permutations(5) {
		order := order
		t.Run(fmt.Sprint(order), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			tr := tracing.New(tracing.Config{Service: "c", Sampler: tracing.Sampler{Ratio: 1}, Seed: 1}, tracing.NewStore(8))
			opts := []ClientOption{
				WithClientTelemetry(reg),
				WithCircuitBreaker(BreakerConfig{Window: 8, FailureThreshold: 0.5, MinSamples: 4, OpenFor: time.Second}),
				WithRetryPolicy(RetryPolicy{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: time.Second, JitterSeed: 7}),
				WithTracing(tr),
				WithFetchAhead(3),
			}
			c, err := NewClient("http://localhost:0", &abr.Fixed{Rung: 0}, reorder(opts, order)...)
			if err != nil {
				t.Fatal(err)
			}
			if c.telReg != reg || c.tel.segments == nil || c.tel.fastFails == nil {
				t.Error("client telemetry not wired")
			}
			if c.breaker == nil {
				t.Fatal("breaker not wired")
			}
			if c.breaker.telState == nil || c.breaker.telOpens == nil {
				t.Error("breaker mirrors not wired — telemetry/breaker order dependence")
			}
			if c.retry.MaxAttempts != 2 || c.fetchAhead != 3 || c.tracer != tr {
				t.Error("retry, fetch-ahead, or tracer not recorded")
			}
		})
	}
}

// TestEdgeOptionOrderIndependence covers the edge: the scrape-time
// cache gauges are wired after options apply, so WithEdgeTelemetry
// before WithEdgeCache must still observe the resized cache.
func TestEdgeOptionOrderIndependence(t *testing.T) {
	for _, order := range permutations(4) {
		order := order
		t.Run(fmt.Sprint(order), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			tr := tracing.New(tracing.Config{Service: "e", Sampler: tracing.Sampler{Ratio: 1}, Seed: 1}, tracing.NewStore(8))
			opts := []EdgeOption{
				WithEdgeTelemetry(reg),
				WithEdgeCache(edgecache.Config{CapacityBytes: 1 << 16, Shards: 2}),
				WithEdgeFreshness(time.Minute, time.Second),
				WithEdgeTracing(tr),
			}
			e, err := NewEdge("http://localhost:0", reorder(opts, order)...)
			if err != nil {
				t.Fatal(err)
			}
			if e.telReg != reg || e.tel.requests == nil {
				t.Error("edge telemetry not wired")
			}
			if e.cacheCfg.CapacityBytes != 1<<16 || e.cacheCfg.Shards != 2 {
				t.Errorf("cache config %+v not recorded", e.cacheCfg)
			}
			if e.freshFor != time.Minute || e.staleFor != time.Second {
				t.Error("freshness windows not recorded")
			}
			if e.tracer != tr {
				t.Error("tracer not recorded")
			}
			// The gauges must read the final cache: fill it through the
			// Cache directly and scrape.
			e.cache.Fill("k", make([]byte, 64), "t", "64", time.Unix(1, 0))
			if got := gaugeValue(t, reg, "edgecache_entries"); got != 1 {
				t.Errorf("edgecache_entries gauge = %v, want 1 — gauge closed over a stale cache", got)
			}
		})
	}
}

// gaugeValue scrapes one series value out of the registry.
func gaugeValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var v float64
	for _, line := range strings.Split(sb.String(), "\n") {
		if n, _ := fmt.Sscanf(line, name+" %f", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("%s not in scrape", name)
	return 0
}

// TestNilOptionsSkipped pins the applyOptions contract that lets
// callers assemble option slices conditionally.
func TestNilOptionsSkipped(t *testing.T) {
	srv := newBenchServer(t, nil, WithRateLimitMBps(5), nil)
	if rate := math.Float64frombits(srv.rateBits.Load()); rate != 5 {
		t.Error("nil options disturbed application order")
	}
	if _, err := NewClient("http://localhost:0", &abr.Fixed{}, nil, WithFetchAhead(1)); err != nil {
		t.Errorf("nil client option rejected: %v", err)
	}
	if _, err := NewEdge("http://localhost:0", nil, WithEdgeRetryAfter(time.Second)); err != nil {
		t.Errorf("nil edge option rejected: %v", err)
	}
}
