package httpdash

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecavs/internal/faults"
	"ecavs/internal/telemetry"
)

// waitForRequests polls the server snapshot until the accepted-request
// total reaches n (i.e. n requests hold admission slots) or the
// deadline passes.
func waitForRequests(t *testing.T, srv *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Snapshot().Requests >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server never accepted %d requests (snapshot %+v)", n, srv.Snapshot())
}

// getStatus fetches a URL and returns the status code and Retry-After
// header, draining the body.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestAdmissionShedsWith503RetryAfter pins the shedding contract: with
// the only in-flight slot held and no queue, an excess request bounces
// immediately with 503 + Retry-After and is accounted as shed on its
// rung — it never waits, never 500s, never hangs.
func TestAdmissionShedsWith503RetryAfter(t *testing.T) {
	// The first request stalls server-side while holding the slot.
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: time.Second}})
	srv, ts := newTestServer(t, 20,
		WithFaults(plan),
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1, RetryAfter: 3 * time.Second}))

	urlA, err := srv.SegmentURL(ts.URL, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(urlA)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	waitForRequests(t, srv, 1)

	urlB, err := srv.SegmentURL(ts.URL, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	code, retryAfter := getStatus(t, urlB)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("excess request got %d, want 503", code)
	}
	if retryAfter != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", retryAfter)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted transfer failed: %v", err)
	}

	snap := srv.Snapshot()
	if snap.Requests != 1 || snap.Shed != 1 {
		t.Errorf("snapshot = %d accepted / %d shed, want 1 / 1", snap.Requests, snap.Shed)
	}
	if snap.Rungs[2].Shed != 1 || snap.Rungs[0].Shed != 0 {
		t.Errorf("per-rung sheds = %+v, want the shed accounted to rung 2", snap.Rungs)
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees pins the FIFO wait queue's
// happy path: a request that arrives while the slot is held waits (it
// is counted as queued) and is admitted once the slot frees, well
// within its queue deadline.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: 200 * time.Millisecond}})
	srv, ts := newTestServer(t, 20,
		WithFaults(plan),
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Second}))

	urlA, _ := srv.SegmentURL(ts.URL, 0, 0)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(urlA)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	waitForRequests(t, srv, 1)

	urlB, _ := srv.SegmentURL(ts.URL, 1, 1)
	code, _ := getStatus(t, urlB) // queues behind the stall, then admits
	if code != http.StatusOK {
		t.Fatalf("queued request got %d, want 200", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted transfer failed: %v", err)
	}
	snap := srv.Snapshot()
	if snap.Queued != 1 {
		t.Errorf("Queued = %d, want 1", snap.Queued)
	}
	if snap.Requests != 2 || snap.Shed != 0 {
		t.Errorf("snapshot = %d accepted / %d shed, want 2 / 0", snap.Requests, snap.Shed)
	}
}

// TestAdmissionQueueDeadlineSheds pins the queue deadline: a waiter
// whose QueueWait expires before a slot frees is shed with 503 +
// Retry-After instead of waiting forever.
func TestAdmissionQueueDeadlineSheds(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: time.Second}})
	srv, ts := newTestServer(t, 20,
		WithFaults(plan),
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 30 * time.Millisecond}))

	urlA, _ := srv.SegmentURL(ts.URL, 0, 0)
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(urlA)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	waitForRequests(t, srv, 1)

	urlB, _ := srv.SegmentURL(ts.URL, 1, 1)
	start := time.Now()
	code, retryAfter := getStatus(t, urlB)
	waited := time.Since(start)
	if code != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("queue-deadline shed got %d (Retry-After %q), want 503 with a hint", code, retryAfter)
	}
	if waited > 500*time.Millisecond {
		t.Errorf("shed after %v, want ~the 30ms queue deadline", waited)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted transfer failed: %v", err)
	}
	if snap := srv.Snapshot(); snap.Queued != 1 || snap.Shed != 1 {
		t.Errorf("snapshot = %d queued / %d shed, want 1 / 1", snap.Queued, snap.Shed)
	}
}

// TestAdmissionPriorityShedsTopRungFirst pins the degrade-before-fail
// policy: under queue pressure a top-rung request sheds while a
// bottom-rung request arriving later still queues and completes —
// quality gives way before availability, mirroring the paper's Eq. 1
// tradeoff.
func TestAdmissionPriorityShedsTopRungFirst(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: time.Second}})
	srv, ts := newTestServer(t, 20,
		WithFaults(plan),
		WithAdmissionControl(AdmissionConfig{
			MaxInFlight:    1,
			MaxQueue:       2,
			QueueWait:      5 * time.Second,
			PriorityByRung: true,
		}))

	// A (rung 0) stalls holding the only slot.
	urlA, _ := srv.SegmentURL(ts.URL, 0, 0)
	doneA := make(chan error, 1)
	go func() {
		resp, err := http.Get(urlA)
		if err != nil {
			doneA <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		doneA <- err
	}()
	waitForRequests(t, srv, 1)

	// B (top rung 5) takes the top-half queue allowance (2/2 = 1 slot).
	urlB, _ := srv.SegmentURL(ts.URL, 5, 1)
	doneB := make(chan int, 1)
	go func() {
		resp, err := http.Get(urlB)
		if err != nil {
			doneB <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		doneB <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Queued < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Snapshot().Queued < 1 {
		t.Fatal("request B never queued")
	}

	// C (top rung 4) exceeds the top-half allowance: shed immediately,
	// even though the full queue still has room.
	urlC, _ := srv.SegmentURL(ts.URL, 4, 2)
	code, retryAfter := getStatus(t, urlC)
	if code != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("top-rung request got %d (Retry-After %q), want an immediate 503 shed", code, retryAfter)
	}

	// D (rung 1, bottom half) still queues in the room C was denied.
	urlD, _ := srv.SegmentURL(ts.URL, 1, 3)
	codeD, _ := getStatus(t, urlD)
	if codeD != http.StatusOK {
		t.Fatalf("bottom-rung request got %d, want 200 after queuing", codeD)
	}

	if code := <-doneB; code != http.StatusOK {
		t.Errorf("queued top-rung request got %d, want 200 once the slot freed", code)
	}
	if err := <-doneA; err != nil {
		t.Fatalf("admitted transfer failed: %v", err)
	}
	snap := srv.Snapshot()
	if snap.Rungs[4].Shed != 1 {
		t.Errorf("rung 4 shed = %d, want 1", snap.Rungs[4].Shed)
	}
	if snap.Rungs[1].Shed != 0 || snap.Rungs[0].Shed != 0 {
		t.Errorf("bottom rungs shed = %+v, want none", snap.Rungs)
	}
}

// TestAdmissionAccountingUnderBurst fires a concurrent burst at a
// tightly bounded server and checks the conservation law the overload
// suite gates on: every request resolves to exactly one of 200 or
// 503-with-Retry-After, and client-side totals match the server
// snapshot (accepted + shed == issued).
func TestAdmissionAccountingUnderBurst(t *testing.T) {
	srv, ts := newTestServer(t, 20,
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 2, MaxQueue: 2, QueueWait: 5 * time.Millisecond}))

	const workers, perWorker = 16, 4
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url, err := srv.SegmentURL(ts.URL, (w+i)%6, i)
				if err != nil {
					other.Add(1)
					continue
				}
				resp, err := http.Get(url)
				if err != nil {
					other.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
				case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 503-with-Retry-After", other.Load())
	}
	if ok.Load()+shed.Load() != workers*perWorker {
		t.Fatalf("accounting leak: %d ok + %d shed != %d issued", ok.Load(), shed.Load(), workers*perWorker)
	}
	snap := srv.Snapshot()
	if snap.Requests != ok.Load() || snap.Shed != shed.Load() {
		t.Errorf("server snapshot %d accepted / %d shed, client saw %d / %d",
			snap.Requests, snap.Shed, ok.Load(), shed.Load())
	}
	if snap.InFlight != 0 {
		t.Errorf("InFlight = %d after the burst drained, want 0", snap.InFlight)
	}
}

// TestAdmissionTelemetryExposition checks the overload series surface
// in the registry (in either option order) and mirror the snapshot.
func TestAdmissionTelemetryExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, ts := newTestServer(t, 20,
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Millisecond}),
		WithServerTelemetry(reg))

	// A couple of clean requests, then a shed forced by a held slot.
	url0, _ := srv.SegmentURL(ts.URL, 0, 0)
	if code, _ := getStatus(t, url0); code != http.StatusOK {
		t.Fatalf("clean request got %d", code)
	}

	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: 300 * time.Millisecond}})
	srv2, ts2 := newTestServer(t, 20,
		WithServerTelemetry(reg), // shared registry, options reversed
		WithFaults(plan),
		WithAdmissionControl(AdmissionConfig{MaxInFlight: 1}))
	urlA, _ := srv2.SegmentURL(ts2.URL, 0, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(urlA)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitForRequests(t, srv2, 1)
	urlB, _ := srv2.SegmentURL(ts2.URL, 2, 1)
	if code, _ := getStatus(t, urlB); code != http.StatusServiceUnavailable {
		t.Fatalf("excess request got %d, want 503", code)
	}
	<-done

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, want := range []string{
		`httpdash_server_shed_total{rung="2"} 1`,
		"# TYPE httpdash_server_queued_total counter",
		"httpdash_server_inflight",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q:\n%s", want, expo)
		}
	}
}

// TestShutdownDrainsInFlight pins graceful drain: Shutdown stops new
// work (503 + Retry-After) but lets the in-flight transfer finish, and
// returns only once the server is idle with no leaked transfers.
func TestShutdownDrainsInFlight(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: 300 * time.Millisecond}})
	srv, ts := newTestServer(t, 20, WithFaults(plan))

	urlA, _ := srv.SegmentURL(ts.URL, 3, 0)
	type res struct {
		n   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		resp, err := http.Get(urlA)
		if err != nil {
			done <- res{err: err}
			return
		}
		defer resp.Body.Close()
		n, err := io.Copy(io.Discard, resp.Body)
		done <- res{n: n, err: err}
	}()
	waitForRequests(t, srv, 1)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must not return while the stalled transfer is in flight.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a transfer in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New work is refused with the shed contract while draining.
	urlB, _ := srv.SegmentURL(ts.URL, 0, 1)
	code, retryAfter := getStatus(t, urlB)
	if code != http.StatusServiceUnavailable || retryAfter == "" {
		t.Fatalf("request during drain got %d (Retry-After %q), want 503 with a hint", code, retryAfter)
	}

	// The in-flight transfer completes in full, then Shutdown returns.
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight transfer failed during drain: %v", r.err)
	}
	want := int64(srv.segBytes[3][0])
	if r.n != want {
		t.Errorf("drained transfer delivered %d of %d bytes", r.n, want)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil after the transfer finished", err)
	}
	snap := srv.Snapshot()
	if snap.InFlight != 0 {
		t.Errorf("InFlight = %d after Shutdown, want 0", snap.InFlight)
	}
	if snap.Shed == 0 {
		t.Error("drain-time refusal not accounted in Snapshot.Shed")
	}
	// Shutdown is idempotent: a second call returns immediately.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown = %v", err)
	}
}

// TestShutdownDeadline pins the bounded drain: when the context
// expires before in-flight work finishes, Shutdown returns the
// context's error instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	plan := faults.NewScript([]faults.Verdict{{Kind: faults.Stall, Stall: 2 * time.Second}})
	srv, ts := newTestServer(t, 20, WithFaults(plan))

	urlA, _ := srv.SegmentURL(ts.URL, 0, 0)
	reqCtx, cancelReq := context.WithCancel(context.Background())
	defer cancelReq()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(reqCtx, http.MethodGet, urlA, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitForRequests(t, srv, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	cancelReq() // release the stalled transfer so the test server closes cleanly
	<-done
}
