package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkZ", NsPerOp: 100, AllocsOp: 2, BytesOp: 32},
		{Name: "BenchmarkA", NsPerOp: 5.5},
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteFile(path, results); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d results, want 2", len(got))
	}
	// Snapshots are written sorted by name.
	if got[0].Name != "BenchmarkA" || got[1].Name != "BenchmarkZ" {
		t.Errorf("order = %q, %q; want BenchmarkA, BenchmarkZ", got[0].Name, got[1].Name)
	}
	if got[1].NsPerOp != 100 || got[1].AllocsOp != 2 || got[1].BytesOp != 32 {
		t.Errorf("BenchmarkZ = %+v", got[1])
	}
	m := Map(got)
	if m["BenchmarkA"].NsPerOp != 5.5 {
		t.Errorf("Map lookup = %+v", m["BenchmarkA"])
	}
}

func TestMarshalTrailingNewline(t *testing.T) {
	data, err := Marshal([]Result{{Name: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("snapshot missing trailing newline")
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file read without error")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("malformed snapshot read without error")
	}
}
