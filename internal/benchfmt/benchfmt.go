// Package benchfmt is the benchmark-snapshot interchange format the
// perf tooling shares: cmd/benchdiff parses `go test -bench` output
// into it and gates regressions over it, and cmd/loadgen emits its
// closed-loop latency percentiles in the same shape — so a load-test
// run can be diffed against a previous one with the exact tooling that
// gates the micro-benchmarks.
//
// A snapshot is a JSON array of Result, sorted by name, written with a
// trailing newline (the BENCH_<date>.json files in the repo root).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
}

// Marshal renders a snapshot: results sorted by name, indented JSON,
// trailing newline.
func Marshal(results []Result) ([]byte, error) {
	sorted := make([]Result, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	data, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes a snapshot to path.
func WriteFile(path string, results []Result) error {
	data, err := Marshal(results)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return list, nil
}

// Map indexes a snapshot by benchmark name.
func Map(results []Result) map[string]Result {
	m := make(map[string]Result, len(results))
	for _, r := range results {
		m[r.Name] = r
	}
	return m
}
