package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

// ErrBadRecord is returned when a CSV record cannot be parsed.
var ErrBadRecord = errors.New("trace: malformed record")

// EncodeNetworkCSV writes network points as CSV with a header row:
// time_sec,signal_dbm,throughput_mbps.
func EncodeNetworkCSV(w io.Writer, points []netsim.TracePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_sec", "signal_dbm", "throughput_mbps"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, p := range points {
		rec := []string{
			strconv.FormatFloat(p.TimeSec, 'g', -1, 64),
			strconv.FormatFloat(p.SignalDBm, 'g', -1, 64),
			strconv.FormatFloat(p.ThroughputMBps*8, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// DecodeNetworkCSV reads network points written by EncodeNetworkCSV.
func DecodeNetworkCSV(r io.Reader) ([]netsim.TracePoint, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, nil
	}
	var out []netsim.TracePoint
	for i, rec := range records {
		if i == 0 && len(rec) > 0 && rec[0] == "time_sec" {
			continue // header
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("%w: line %d has %d fields", ErrBadRecord, i+1, len(rec))
		}
		vals := make([]float64, 3)
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %d: %v", ErrBadRecord, i+1, j+1, err)
			}
			vals[j] = v
		}
		out = append(out, netsim.TracePoint{
			TimeSec:        vals[0],
			SignalDBm:      vals[1],
			ThroughputMBps: vals[2] / 8,
		})
	}
	return out, nil
}

// EncodeAccelCSV writes accelerometer samples as CSV with a header:
// time_sec,x,y,z.
func EncodeAccelCSV(w io.Writer, samples []vibration.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_sec", "x", "y", "z"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatFloat(s.TimeSec, 'g', -1, 64),
			strconv.FormatFloat(s.X, 'g', -1, 64),
			strconv.FormatFloat(s.Y, 'g', -1, 64),
			strconv.FormatFloat(s.Z, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// DecodeAccelCSV reads samples written by EncodeAccelCSV.
func DecodeAccelCSV(r io.Reader) ([]vibration.Sample, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	var out []vibration.Sample
	for i, rec := range records {
		if i == 0 && len(rec) > 0 && rec[0] == "time_sec" {
			continue
		}
		if len(rec) != 4 {
			return nil, fmt.Errorf("%w: line %d has %d fields", ErrBadRecord, i+1, len(rec))
		}
		vals := make([]float64, 4)
		for j, s := range rec {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d field %d: %v", ErrBadRecord, i+1, j+1, err)
			}
			vals[j] = v
		}
		out = append(out, vibration.Sample{TimeSec: vals[0], X: vals[1], Y: vals[2], Z: vals[3]})
	}
	return out, nil
}

// meta is the JSON sidecar persisted next to the CSVs.
type meta struct {
	ID                int     `json:"id"`
	Name              string  `json:"name"`
	LengthSec         float64 `json:"lengthSec"`
	NativeBitrateMbps float64 `json:"nativeBitrateMbps"`
}

// Save writes the trace into dir as three files:
// trace<ID>_meta.json, trace<ID>_network.csv, trace<ID>_accel.csv.
func (t *Trace) Save(dir string) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace: mkdir: %w", err)
	}
	prefix := filepath.Join(dir, fmt.Sprintf("trace%d", t.ID))

	mf, err := os.Create(prefix + "_meta.json")
	if err != nil {
		return fmt.Errorf("trace: create meta: %w", err)
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(meta{ID: t.ID, Name: t.Name, LengthSec: t.LengthSec, NativeBitrateMbps: t.NativeBitrateMbps}); err != nil {
		return fmt.Errorf("trace: encode meta: %w", err)
	}

	nf, err := os.Create(prefix + "_network.csv")
	if err != nil {
		return fmt.Errorf("trace: create network csv: %w", err)
	}
	defer nf.Close()
	if err := EncodeNetworkCSV(nf, t.Network); err != nil {
		return err
	}

	af, err := os.Create(prefix + "_accel.csv")
	if err != nil {
		return fmt.Errorf("trace: create accel csv: %w", err)
	}
	defer af.Close()
	return EncodeAccelCSV(af, t.Accel)
}

// Load reads a trace saved by Save.
func Load(dir string, id int) (*Trace, error) {
	prefix := filepath.Join(dir, fmt.Sprintf("trace%d", id))

	mb, err := os.ReadFile(prefix + "_meta.json")
	if err != nil {
		return nil, fmt.Errorf("trace: read meta: %w", err)
	}
	var m meta
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("trace: decode meta: %w", err)
	}

	nf, err := os.Open(prefix + "_network.csv")
	if err != nil {
		return nil, fmt.Errorf("trace: open network csv: %w", err)
	}
	defer nf.Close()
	points, err := DecodeNetworkCSV(nf)
	if err != nil {
		return nil, err
	}

	af, err := os.Open(prefix + "_accel.csv")
	if err != nil {
		return nil, fmt.Errorf("trace: open accel csv: %w", err)
	}
	defer af.Close()
	samples, err := DecodeAccelCSV(af)
	if err != nil {
		return nil, err
	}

	tr := &Trace{
		ID:                m.ID,
		Name:              m.Name,
		LengthSec:         m.LengthSec,
		NativeBitrateMbps: m.NativeBitrateMbps,
		Network:           points,
		Accel:             samples,
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
