package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

func TestNetworkCSVRoundTrip(t *testing.T) {
	points := []netsim.TracePoint{
		{TimeSec: 0, SignalDBm: -90.5, ThroughputMBps: 2.25},
		{TimeSec: 1, SignalDBm: -101, ThroughputMBps: 0.875},
	}
	var buf bytes.Buffer
	if err := EncodeNetworkCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNetworkCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("round trip length %d, want %d", len(got), len(points))
	}
	for i := range points {
		if got[i].TimeSec != points[i].TimeSec ||
			got[i].SignalDBm != points[i].SignalDBm ||
			almostEqualF(got[i].ThroughputMBps, points[i].ThroughputMBps) == false {
			t.Errorf("point %d = %+v, want %+v", i, got[i], points[i])
		}
	}
}

func almostEqualF(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func TestAccelCSVRoundTrip(t *testing.T) {
	samples := []vibration.Sample{
		{TimeSec: 0, X: 0.1, Y: -0.2, Z: 9.81},
		{TimeSec: 0.02, X: 0.3, Y: 0.1, Z: 9.5},
	}
	var buf bytes.Buffer
	if err := EncodeAccelCSV(&buf, samples); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAccelCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip length %d, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], samples[i])
		}
	}
}

func TestDecodeNetworkCSVMalformed(t *testing.T) {
	// Wrong field count.
	if _, err := DecodeNetworkCSV(strings.NewReader("1,2\n")); !errors.Is(err, ErrBadRecord) {
		// csv.Reader may reject ragged rows itself; accept either error.
		if err == nil {
			t.Error("malformed record accepted")
		}
	}
	// Non-numeric field.
	if _, err := DecodeNetworkCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("non-numeric record without header accepted")
	}
	// Header-only input decodes to empty.
	got, err := DecodeNetworkCSV(strings.NewReader("time_sec,signal_dbm,throughput_mbps\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("header-only = %v, %v; want empty, nil", got, err)
	}
	// Empty input.
	got, err = DecodeNetworkCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty input = %v, %v; want nil, nil", got, err)
	}
}

func TestDecodeAccelCSVMalformed(t *testing.T) {
	if _, err := DecodeAccelCSV(strings.NewReader("1,2,3,x\n")); !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := tinyTrace(t)
	if err := tr.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, tr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tr.ID || got.Name != tr.Name || got.LengthSec != tr.LengthSec {
		t.Errorf("meta mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Network) != len(tr.Network) || len(got.Accel) != len(tr.Accel) {
		t.Fatal("payload length mismatch")
	}
	if got.Network[1].SignalDBm != tr.Network[1].SignalDBm {
		t.Error("network payload mismatch")
	}
	if got.Accel[3] != tr.Accel[3] {
		t.Error("accel payload mismatch")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := &Trace{ID: 1}
	if err := bad.Save(dir); err == nil {
		t.Error("invalid trace saved")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir(), 42); err == nil {
		t.Error("expected error for missing trace")
	}
}
