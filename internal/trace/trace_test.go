package trace

import (
	"errors"
	"math"
	"testing"

	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/vibration"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func evalRateMap() func(float64) float64 {
	m := power.EvalModel()
	return m.NominalThroughputMBps
}

// tinyTrace builds a minimal valid trace for unit tests.
func tinyTrace(t *testing.T) *Trace {
	t.Helper()
	gen, err := vibration.NewGenerator(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &Trace{
		ID:                9,
		Name:              "tiny",
		LengthSec:         10,
		NativeBitrateMbps: 2.0,
		Network: []netsim.TracePoint{
			{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 3},
			{TimeSec: 5, SignalDBm: -100, ThroughputMBps: 1.5},
		},
		Accel: gen.Generate(vibration.Bus, 0, 10),
	}
}

func TestValidate(t *testing.T) {
	tr := tinyTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	// Traces carry a compiled-form cache and must not be copied by
	// value, so each broken variant starts from a fresh build.
	bad := tinyTrace(t)
	bad.LengthSec = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}

	bad = tinyTrace(t)
	bad.Network = nil
	if err := bad.Validate(); !errors.Is(err, ErrNoNetwork) {
		t.Errorf("err = %v, want ErrNoNetwork", err)
	}

	bad = tinyTrace(t)
	bad.Accel = nil
	if err := bad.Validate(); !errors.Is(err, ErrNoAccel) {
		t.Errorf("err = %v, want ErrNoAccel", err)
	}

	bad = tinyTrace(t)
	bad.Network = []netsim.TracePoint{{TimeSec: 5}, {TimeSec: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("unordered network accepted")
	}

	bad = tinyTrace(t)
	bad.Accel = []vibration.Sample{{TimeSec: 5}, {TimeSec: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("unordered accel accepted")
	}
}

func TestDataSizeMB(t *testing.T) {
	tr := &Trace{LengthSec: 198, NativeBitrateMbps: 65.1 * 8 / 198}
	if !almostEqual(tr.DataSizeMB(), 65.1, 1e-9) {
		t.Errorf("DataSizeMB = %v, want 65.1", tr.DataSizeMB())
	}
}

func TestAvgSignalAndThroughput(t *testing.T) {
	tr := &Trace{
		Network: []netsim.TracePoint{
			{SignalDBm: -90, ThroughputMBps: 2},
			{SignalDBm: -100, ThroughputMBps: 4},
		},
	}
	if got := tr.AvgSignalDBm(); got != -95 {
		t.Errorf("AvgSignalDBm = %v, want -95", got)
	}
	if got := tr.AvgThroughputMbps(); got != 24 {
		t.Errorf("AvgThroughputMbps = %v, want 24", got)
	}
	empty := &Trace{}
	if empty.AvgSignalDBm() != 0 || empty.AvgThroughputMbps() != 0 {
		t.Error("empty trace averages should be 0")
	}
}

func TestWindowedVibration(t *testing.T) {
	// Constant magnitude: zero vibration in every window.
	var flat []vibration.Sample
	for i := 0; i < 500; i++ {
		flat = append(flat, vibration.Sample{TimeSec: float64(i) * 0.02, Z: vibration.Gravity})
	}
	if got := WindowedVibration(flat, 2); !almostEqual(got, 0, 1e-9) {
		t.Errorf("flat stream vibration = %v, want ≈ 0", got)
	}
	// Alternating +-1 deviations: every window reports ≈1.
	var alt []vibration.Sample
	for i := 0; i < 500; i++ {
		d := 1.0
		if i%2 == 1 {
			d = -1
		}
		alt = append(alt, vibration.Sample{TimeSec: float64(i) * 0.02, Z: vibration.Gravity + d})
	}
	if got := WindowedVibration(alt, 2); !almostEqual(got, 1, 0.01) {
		t.Errorf("alternating stream vibration = %v, want ≈ 1", got)
	}
	// Degenerate inputs.
	if got := WindowedVibration(nil, 2); got != 0 {
		t.Errorf("nil stream = %v, want 0", got)
	}
	if got := WindowedVibration(alt, 0); got != 0 {
		t.Errorf("zero window = %v, want 0", got)
	}
}

func TestVibrationAt(t *testing.T) {
	tr := tinyTrace(t)
	// Mid-stream vibration should be near the bus level.
	v := tr.VibrationAt(8, 6)
	if v < 3 || v > 10 {
		t.Errorf("VibrationAt(8) = %v, want bus-like level", v)
	}
	// Before any samples: zero.
	if got := tr.VibrationAt(-5, 6); got != 0 {
		t.Errorf("VibrationAt(-5) = %v, want 0", got)
	}
	// Default window kicks in for non-positive windowSec.
	if got := tr.VibrationAt(8, 0); got <= 0 {
		t.Errorf("VibrationAt with default window = %v, want > 0", got)
	}
}

func TestLink(t *testing.T) {
	tr := tinyTrace(t)
	link, err := tr.Link()
	if err != nil {
		t.Fatal(err)
	}
	if link.SignalDBm() != -90 {
		t.Errorf("link initial signal = %v, want -90", link.SignalDBm())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}, evalRateMap()); !errors.Is(err, ErrBadSpec) {
		t.Errorf("empty spec err = %v, want ErrBadSpec", err)
	}
	spec := TableVSpecs()[0]
	if _, err := Generate(spec, nil); !errors.Is(err, ErrNilRateMap) {
		t.Errorf("nil rate map err = %v, want ErrNilRateMap", err)
	}
}

func TestGenerateTableVStats(t *testing.T) {
	traces, err := GenerateTableV(evalRateMap())
	if err != nil {
		t.Fatal(err)
	}
	specs := TableVSpecs()
	if len(traces) != 5 {
		t.Fatalf("got %d traces, want 5", len(traces))
	}
	for i, tr := range traces {
		spec := specs[i]
		if tr.ID != spec.ID {
			t.Errorf("trace %d ID = %d", i, tr.ID)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("trace %d invalid: %v", tr.ID, err)
		}
		if !almostEqual(tr.LengthSec, spec.LengthSec, 1e-9) {
			t.Errorf("trace %d length = %v, want %v", tr.ID, tr.LengthSec, spec.LengthSec)
		}
		if !almostEqual(tr.DataSizeMB(), spec.DataSizeMB, 0.01) {
			t.Errorf("trace %d data size = %.1f, want %.1f", tr.ID, tr.DataSizeMB(), spec.DataSizeMB)
		}
		// Vibration rescaling should land within 10% of the target.
		got := tr.AvgVibration()
		if math.Abs(got-spec.TargetVibration)/spec.TargetVibration > 0.10 {
			t.Errorf("trace %d avg vibration = %.2f, want ≈ %.2f", tr.ID, got, spec.TargetVibration)
		}
		// Signal should hover near the spec mean.
		if !almostEqual(tr.AvgSignalDBm(), spec.SignalMeanDBm, 4) {
			t.Errorf("trace %d avg signal = %.1f, want ≈ %.1f", tr.ID, tr.AvgSignalDBm(), spec.SignalMeanDBm)
		}
	}
	// Trace 2 must be the calmest and best-covered (the paper's
	// explanation for its high QoE across all approaches).
	if traces[1].AvgVibration() >= traces[0].AvgVibration() {
		t.Error("trace 2 should vibrate less than trace 1")
	}
	if traces[1].AvgSignalDBm() <= traces[0].AvgSignalDBm() {
		t.Error("trace 2 should have stronger signal than trace 1")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := TableVSpecs()[2]
	a, err := Generate(spec, evalRateMap())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, evalRateMap())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Network) != len(b.Network) || len(a.Accel) != len(b.Accel) {
		t.Fatal("lengths diverged")
	}
	for i := range a.Network {
		if a.Network[i] != b.Network[i] {
			t.Fatal("network points diverged")
		}
	}
	for i := range a.Accel {
		if a.Accel[i] != b.Accel[i] {
			t.Fatal("accel samples diverged")
		}
	}
}

// Throughput must constrain the top bitrate some of the time (so the
// throughput/buffer-based baselines actually adapt, as in the paper)
// but not so often that a 5.8 Mbps YouTube session stalls persistently
// (its 30 s buffer must cover the dips: the paper's YouTube baseline
// keeps the highest QoE).
func TestGenerateThroughputDipsButSupportsTopBitrate(t *testing.T) {
	traces, err := GenerateTableV(evalRateMap())
	if err != nil {
		t.Fatal(err)
	}
	var anyDips bool
	for _, tr := range traces {
		var starved int
		for _, p := range tr.Network {
			if p.ThroughputMBps*8 < 5.8 {
				starved++
			}
		}
		frac := float64(starved) / float64(len(tr.Network))
		if frac > 0.40 {
			t.Errorf("trace %d starves top bitrate %.0f%% of the time, want <= 40%%", tr.ID, frac*100)
		}
		if frac > 0.05 {
			anyDips = true
		}
	}
	if !anyDips {
		t.Error("no trace ever constrains the top bitrate; baselines would never adapt")
	}
}
