package trace

import (
	"math"

	"ecavs/internal/netsim"
	"ecavs/internal/stats"
	"ecavs/internal/vibration"
)

// Compiled is an immutable once-per-trace compilation of the derived
// series every session query needs (ISSUE 6 tentpole):
//
//   - prefix sums of the accelerometer magnitude and its square, so the
//     Eq. 5 windowed RMS deviation VibrationAt becomes an O(log n) —
//     O(1) amortized through a Cursor — query via
//     sqrt(E[m²] − E[m]²) instead of an O(window) two-pass walk;
//   - the sample/point timestamp arrays laid out for branchless binary
//     search, with a cached last-index fast path (Cursor) for the
//     monotone per-segment access pattern of a session replay;
//   - the network step function, shared read-only so each session's
//     TraceLink replays it without a per-session copy (Link).
//
// Numerics: magnitudes are accumulated as deviations from the global
// mean magnitude (refMag) with compensated (Kahan) summation, so the
// windowed variance difference E[d²] − E[d]² does not catastrophically
// cancel against the ~Gravity² magnitude-square terms. The compiled
// path is NOT bit-identical to the reference vibration.Level two-pass
// computation; the documented contract (DESIGN.md §10) is agreement
// within 1e-9 m/s², pinned by property and fuzz tests against the
// reference implementation.
//
// A Compiled is stateless and safe for concurrent use by any number of
// sessions/shards; all mutable query state lives in per-session
// Cursors. The backing Trace must not be mutated after compilation.
type Compiled struct {
	tr *Trace

	// Accelerometer series: accelT[i] is sample i's timestamp;
	// dev[i] / dev2[i] are the Kahan-compensated prefix sums of the
	// first i magnitude deviations (mag − refMag) and their squares, so
	// both have len(accelT)+1 entries.
	accelT []float64
	dev    []float64
	dev2   []float64
	refMag float64

	// Network step function (zero-order hold), column-split from the
	// trace's points for cache-friendly binary search.
	netT    []float64
	sigDBm  []float64
	thrMBps []float64
}

// Compile validates t and builds its compiled form. Prefer
// (*Trace).Compiled, which memoizes the result on the trace.
func Compile(t *Trace) (*Compiled, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Accel)
	c := &Compiled{
		tr:     t,
		accelT: make([]float64, n),
		dev:    make([]float64, n+1),
		dev2:   make([]float64, n+1),
	}

	// Pass 1: the global mean magnitude, the reference the deviations
	// are taken against. Any constant near the data works; the mean
	// keeps deviations centred so dev-prefix differences stay small.
	var acc stats.Kahan
	for _, s := range t.Accel {
		acc.Add(s.Magnitude())
	}
	c.refMag = acc.Sum() / float64(n)

	// Pass 2: compensated prefix sums of the deviations and their
	// squares. Snapshotting a running Kahan sum keeps every prefix —
	// and hence every windowed difference — accurate to a few ulps.
	var sumD, sumD2 stats.Kahan
	for i, s := range t.Accel {
		d := s.Magnitude() - c.refMag
		c.accelT[i] = s.TimeSec
		sumD.Add(d)
		sumD2.Add(d * d)
		c.dev[i+1] = sumD.Sum()
		c.dev2[i+1] = sumD2.Sum()
	}

	c.netT = make([]float64, len(t.Network))
	c.sigDBm = make([]float64, len(t.Network))
	c.thrMBps = make([]float64, len(t.Network))
	for i, p := range t.Network {
		c.netT[i] = p.TimeSec
		c.sigDBm[i] = p.SignalDBm
		c.thrMBps[i] = p.ThroughputMBps
	}
	return c, nil
}

// Trace returns the trace this compilation was built from.
func (c *Compiled) Trace() *Trace { return c.tr }

// searchGE returns the first index i with xs[i] >= v (len(xs) if none).
func searchGE(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// searchGT returns the first index i with xs[i] > v (len(xs) if none).
func searchGT(xs []float64, v float64) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// levelFromPrefix evaluates Eq. 5 over the half-open sample index
// range [i, j) from the prefix sums: with d the deviations,
// Σ(m−mean_m)² = Σd² − n·mean_d², so the RMS deviation is
// sqrt(E[d²] − E[d]²). Matches the edge contract of vibration.Level:
// fewer than two samples yield 0.
func (c *Compiled) levelFromPrefix(i, j int) float64 {
	n := j - i
	if n < 2 {
		return 0
	}
	inv := 1 / float64(n)
	meanD := (c.dev[j] - c.dev[i]) * inv
	variance := (c.dev2[j]-c.dev2[i])*inv - meanD*meanD
	if variance <= 0 {
		// Rounding can push a near-constant window fractionally
		// negative; the true variance is non-negative by construction.
		return 0
	}
	return math.Sqrt(variance)
}

// VibrationAt returns the Eq. 5 vibration level over the window
// [tSec−windowSec, tSec], matching (*Trace).VibrationAt to within the
// 1e-9 tolerance contract (including its edge cases: non-positive
// windows default to vibration.DefaultWindowSec, and windows covering
// fewer than two samples — e.g. queries past the trace end — report
// 0). Stateless; sessions replaying monotone query times should prefer
// Cursor.VibrationAt.
func (c *Compiled) VibrationAt(tSec, windowSec float64) float64 {
	if windowSec <= 0 {
		windowSec = vibration.DefaultWindowSec
	}
	i := searchGE(c.accelT, tSec-windowSec)
	j := searchGT(c.accelT, tSec)
	return c.levelFromPrefix(i, j)
}

// netIdxAt returns the step-function index active at tSec: the last
// point with time <= tSec, clamped to the first point before the trace
// starts (the same zero-order hold netsim.TraceLink applies).
func (c *Compiled) netIdxAt(tSec float64) int {
	idx := searchGT(c.netT, tSec) - 1
	if idx < 0 {
		return 0
	}
	return idx
}

// SignalAt returns the recorded signal strength active at tSec.
func (c *Compiled) SignalAt(tSec float64) float64 {
	return c.sigDBm[c.netIdxAt(tSec)]
}

// ThroughputMBpsAt returns the recorded achievable rate active at
// tSec.
func (c *Compiled) ThroughputMBpsAt(tSec float64) float64 {
	return c.thrMBps[c.netIdxAt(tSec)]
}

// Link returns a fresh replayable link over the trace's network
// points, sharing the validated point slice instead of copying it
// (the copy was one of the per-session allocations the compiled
// substrate exists to amortize).
func (c *Compiled) Link() *netsim.TraceLink {
	l, err := netsim.ReplayTraceLink(c.tr.Network)
	if err != nil {
		// Unreachable: Compile validated the trace non-empty.
		panic(err)
	}
	return l
}

// Cursor returns a per-session query cursor over the compilation. A
// Cursor memoizes the last window/step indices so the monotone
// per-segment access pattern of a session replay advances by a short
// forward scan (O(1) amortized) instead of a fresh binary search;
// non-monotone queries fall back to binary search transparently.
// Cursors are cheap, hold all mutable state (the shared Compiled has
// none), and must not be shared between goroutines.
func (c *Compiled) Cursor() Cursor { return Cursor{c: c} }

// Cursor is a stateful view over a Compiled trace optimized for
// non-decreasing query times. The zero value is unusable; obtain one
// from (*Compiled).Cursor.
type Cursor struct {
	c    *Compiled
	lo   int // first sample index of the last vibration window
	hi   int // one past the last sample index of the last window
	nidx int // last network step index
}

// VibrationAt is Compiled.VibrationAt with the cached-index fast path.
func (cu *Cursor) VibrationAt(tSec, windowSec float64) float64 {
	if windowSec <= 0 {
		windowSec = vibration.DefaultWindowSec
	}
	ts := cu.c.accelT
	loT := tSec - windowSec

	i := cu.lo
	if i > len(ts) || (i > 0 && ts[i-1] >= loT) {
		i = searchGE(ts, loT) // window start moved backwards
	} else {
		for i < len(ts) && ts[i] < loT {
			i++
		}
	}
	j := cu.hi
	if j > len(ts) || (j > 0 && ts[j-1] > tSec) {
		j = searchGT(ts, tSec) // query time moved backwards
	} else {
		for j < len(ts) && ts[j] <= tSec {
			j++
		}
	}
	cu.lo, cu.hi = i, j
	return cu.c.levelFromPrefix(i, j)
}

// SignalAt is Compiled.SignalAt with the cached-index fast path.
func (cu *Cursor) SignalAt(tSec float64) float64 {
	return cu.c.sigDBm[cu.netIdx(tSec)]
}

// ThroughputMBpsAt is Compiled.ThroughputMBpsAt with the cached-index
// fast path.
func (cu *Cursor) ThroughputMBpsAt(tSec float64) float64 {
	return cu.c.thrMBps[cu.netIdx(tSec)]
}

func (cu *Cursor) netIdx(tSec float64) int {
	ts := cu.c.netT
	i := cu.nidx
	if i >= len(ts) || ts[i] > tSec {
		i = cu.c.netIdxAt(tSec) // moved backwards
	} else {
		for i+1 < len(ts) && ts[i+1] <= tSec {
			i++
		}
	}
	cu.nidx = i
	return i
}
