package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

// The CSV decoders must never panic on arbitrary input — they return
// errors for anything malformed.

func FuzzDecodeNetworkCSV(f *testing.F) {
	f.Add("time_sec,signal_dbm,throughput_mbps\n0,-90,10\n")
	f.Add("0,-90,10\n1,-95,8\n")
	f.Add("a,b,c\n")
	f.Add("")
	f.Add("1,2\n")
	f.Add("1,2,3,4\n")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		points, err := DecodeNetworkCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// On success every point must carry finite values.
		for _, p := range points {
			if p.ThroughputMBps != p.ThroughputMBps { // NaN check
				t.Errorf("NaN throughput from %q", input)
			}
		}
	})
}

func FuzzDecodeAccelCSV(f *testing.F) {
	f.Add("time_sec,x,y,z\n0,0,0,9.8\n")
	f.Add("0,0,0,9.8\n0.02,0.1,-0.1,9.7\n")
	f.Add("x\n")
	f.Add("")
	f.Add("1,2,3,nope\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = DecodeAccelCSV(strings.NewReader(input))
	})
}

// FuzzCompiledVibrationAt drives the compiled-vs-reference agreement
// contract (ISSUE 6): for any generated trace, query time, and window
// — including query times beyond the trace end and windows longer
// than the whole trace — Compiled.VibrationAt and the Cursor fast
// path must match the reference (*Trace).VibrationAt within 1e-9.
// The fuzzer controls the trace shape (seed, sample count, rate
// irregularity, vibration amplitude) and the query geometry.
func FuzzCompiledVibrationAt(f *testing.F) {
	f.Add(int64(1), uint16(50), 0.02, 1.0, 5.0, 6.0)
	f.Add(int64(2), uint16(2), 3.0, 0.0, -1.0, 0.0)      // sparse, default window
	f.Add(int64(3), uint16(1000), 0.01, 4.0, 400.0, 2.0) // far past end
	f.Add(int64(4), uint16(300), 0.5, 0.1, 3.0, 9999.0)  // window >> trace
	f.Add(int64(5), uint16(10), 1.0, 2.0, -50.0, 3.0)    // before start
	f.Fuzz(func(t *testing.T, seed int64, n uint16, gap, amp, tSec, windowSec float64) {
		if n == 0 {
			n = 1
		}
		if !isFinite(gap) || !isFinite(amp) || !isFinite(tSec) || !isFinite(windowSec) {
			t.Skip("non-finite geometry")
		}
		if gap <= 0 || gap > 10 {
			gap = 0.02
		}
		if amp < 0 || amp > 100 {
			amp = 1
		}
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{
			LengthSec:         float64(n) * gap,
			NativeBitrateMbps: 1,
			Network:           []netsim.TracePoint{{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 2}},
		}
		ts := 0.0
		for i := 0; i < int(n); i++ {
			tr.Accel = append(tr.Accel, vibration.Sample{
				TimeSec: ts,
				X:       rng.NormFloat64() * amp,
				Y:       rng.NormFloat64() * amp,
				Z:       vibration.Gravity + rng.NormFloat64()*amp,
			})
			ts += gap * (0.1 + 1.8*rng.Float64()) // irregular sampling
		}
		c, err := Compile(tr)
		if err != nil {
			t.Fatalf("Compile rejected a valid trace: %v", err)
		}
		want := tr.VibrationAt(tSec, windowSec)
		if got := c.VibrationAt(tSec, windowSec); math.Abs(got-want) > vibTolerance {
			t.Fatalf("Compiled.VibrationAt(%v, %v) = %.15g, reference %.15g (Δ=%g, n=%d amp=%v)",
				tSec, windowSec, got, want, got-want, n, amp)
		}
		// The cursor must agree both on a cold query and after a
		// monotone approach to the same time.
		cur := c.Cursor()
		if got := cur.VibrationAt(tSec, windowSec); math.Abs(got-want) > vibTolerance {
			t.Fatalf("cold Cursor.VibrationAt(%v, %v) = %.15g, reference %.15g",
				tSec, windowSec, got, want)
		}
		cur = c.Cursor()
		for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
			cur.VibrationAt(tSec*frac, windowSec)
		}
		if got := cur.VibrationAt(tSec, windowSec); math.Abs(got-want) > vibTolerance {
			t.Fatalf("warm Cursor.VibrationAt(%v, %v) = %.15g, reference %.15g",
				tSec, windowSec, got, want)
		}
	})
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
