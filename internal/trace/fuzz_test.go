package trace

import (
	"strings"
	"testing"
)

// The CSV decoders must never panic on arbitrary input — they return
// errors for anything malformed.

func FuzzDecodeNetworkCSV(f *testing.F) {
	f.Add("time_sec,signal_dbm,throughput_mbps\n0,-90,10\n")
	f.Add("0,-90,10\n1,-95,8\n")
	f.Add("a,b,c\n")
	f.Add("")
	f.Add("1,2\n")
	f.Add("1,2,3,4\n")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		points, err := DecodeNetworkCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// On success every point must carry finite values.
		for _, p := range points {
			if p.ThroughputMBps != p.ThroughputMBps { // NaN check
				t.Errorf("NaN throughput from %q", input)
			}
		}
	})
}

func FuzzDecodeAccelCSV(f *testing.F) {
	f.Add("time_sec,x,y,z\n0,0,0,9.8\n")
	f.Add("0,0,0,9.8\n0.02,0.1,-0.1,9.7\n")
	f.Add("x\n")
	f.Add("")
	f.Add("1,2,3,nope\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = DecodeAccelCSV(strings.NewReader(input))
	})
}
