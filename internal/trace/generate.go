package trace

import (
	"errors"
	"fmt"
	"math"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

// Spec describes a trace to synthesise. The Table V columns (length,
// data size, average vibration) are targets the generator reproduces;
// the signal parameters shape the link the session experienced.
type Spec struct {
	// ID is the Table V trace number.
	ID int
	// Name describes the session.
	Name string
	// LengthSec is the video length.
	LengthSec float64
	// DataSizeMB is the Table V data-size target; it fixes the native
	// bitrate as 8 x size / length.
	DataSizeMB float64
	// TargetVibration is the Table V average vibration level.
	TargetVibration float64
	// SignalMeanDBm is the session's mean signal strength.
	SignalMeanDBm float64
	// SignalVolatilityDB is the OU diffusion magnitude.
	SignalVolatilityDB float64
	// SignalSwingDB is the amplitude of the slow coverage swing
	// (cell handovers along the route).
	SignalSwingDB float64
	// CapAt90Mbps caps the link rate at the -90 dBm reference (LTE
	// cell capacity); 0 disables the cap. The cap shrinks by a decade
	// every CapDecadeDB dB below the reference, so weak-coverage
	// stretches constrain even a 5.8 Mbps stream — the condition under
	// which FESTIVE and BBA actually adapt.
	CapAt90Mbps float64
	// CapDecadeDB is the dB drop per decade of capacity (default 25).
	CapDecadeDB float64
	// Seed makes the trace reproducible.
	Seed int64
}

// TableVSpecs returns the five evaluation traces of Table V. Traces 1,
// 3, and 4 are bus rides (high vibration, weak signal), trace 2 is a
// smooth train ride with good coverage, and trace 5 is a city car ride.
func TableVSpecs() []Spec {
	return []Spec{
		{ID: 1, Name: "bus-short", LengthSec: 198, DataSizeMB: 65.1, TargetVibration: 6.83,
			SignalMeanDBm: -107, SignalVolatilityDB: 3.0, SignalSwingDB: 5,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 101},
		{ID: 2, Name: "train", LengthSec: 371, DataSizeMB: 123.8, TargetVibration: 2.46,
			SignalMeanDBm: -94, SignalVolatilityDB: 1.5, SignalSwingDB: 2,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 102},
		{ID: 3, Name: "bus-long", LengthSec: 449, DataSizeMB: 140.6, TargetVibration: 6.61,
			SignalMeanDBm: -106, SignalVolatilityDB: 3.2, SignalSwingDB: 5,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 103},
		{ID: 4, Name: "bus-commute", LengthSec: 498, DataSizeMB: 152.2, TargetVibration: 6.41,
			SignalMeanDBm: -105, SignalVolatilityDB: 3.0, SignalSwingDB: 6,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 104},
		{ID: 5, Name: "car-city", LengthSec: 612, DataSizeMB: 173.1, TargetVibration: 5.23,
			SignalMeanDBm: -102, SignalVolatilityDB: 2.5, SignalSwingDB: 5,
			CapAt90Mbps: 40, CapDecadeDB: 25, Seed: 105},
	}
}

// Validation errors for specs.
var (
	ErrBadSpec    = errors.New("trace: spec must have positive length and data size")
	ErrNilRateMap = errors.New("trace: rate map must not be nil")
)

// networkSampleSec is the signal/throughput trace sampling interval.
const networkSampleSec = 1.0

// Generate synthesises the trace described by spec. rateMap converts
// signal strength to nominal link rate in MB/s (typically
// power.Model.NominalThroughputMBps).
func Generate(spec Spec, rateMap func(dBm float64) float64) (*Trace, error) {
	if spec.LengthSec <= 0 || spec.DataSizeMB <= 0 {
		return nil, ErrBadSpec
	}
	if rateMap == nil {
		return nil, ErrNilRateMap
	}

	// Network: OU signal with a slow coverage swing along the route.
	swing := spec.SignalSwingDB
	period := 120.0
	cfg := netsim.SignalConfig{
		MeanDBm: spec.SignalMeanDBm,
		MeanAt: func(t float64) float64 {
			return spec.SignalMeanDBm + swing*math.Sin(2*math.Pi*t/period)
		},
		ReversionRate: 0.25,
		VolatilityDB:  spec.SignalVolatilityDB,
	}
	// Compose the power-model rate with the cell-capacity ceiling: the
	// energy-per-byte relationship stays intact, but weak coverage
	// limits the achievable rate like a real congested cell edge.
	effRate := rateMap
	if spec.CapAt90Mbps > 0 {
		decade := spec.CapDecadeDB
		if decade <= 0 {
			decade = 25
		}
		capMBps := func(dBm float64) float64 {
			return spec.CapAt90Mbps / 8 * math.Pow(10, (dBm+90)/decade)
		}
		effRate = func(dBm float64) float64 {
			if c := capMBps(dBm); c < rateMap(dBm) {
				return c
			}
			return rateMap(dBm)
		}
	}
	ch, err := netsim.NewChannel(cfg, netsim.FadingConfig{}, effRate, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace: channel: %w", err)
	}
	n := int(spec.LengthSec/networkSampleSec) + 1
	points := make([]netsim.TracePoint, 0, n)
	for i := 0; i < n; i++ {
		points = append(points, netsim.TracePoint{
			TimeSec:        ch.Now(),
			SignalDBm:      ch.SignalDBm(),
			ThroughputMBps: ch.ThroughputMBps(),
		})
		ch.Advance(networkSampleSec)
	}

	// Accelerometer: profile targeting the Table V vibration level,
	// then rescaled so the windowed average lands on the target.
	gen, err := vibration.NewGenerator(vibration.DefaultSampleRateHz, spec.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("trace: accel generator: %w", err)
	}
	profile := profileForLevel(spec.TargetVibration)
	accel := gen.Generate(profile, 0, spec.LengthSec)
	accel = rescaleVibration(accel, spec.TargetVibration)

	tr := &Trace{
		ID:                spec.ID,
		Name:              spec.Name,
		LengthSec:         spec.LengthSec,
		NativeBitrateMbps: spec.DataSizeMB * 8 / spec.LengthSec,
		Network:           points,
		Accel:             accel,
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// GenerateTableV synthesises all five Table V traces.
func GenerateTableV(rateMap func(dBm float64) float64) ([]*Trace, error) {
	specs := TableVSpecs()
	out := make([]*Trace, 0, len(specs))
	for _, s := range specs {
		tr, err := Generate(s, rateMap)
		if err != nil {
			return nil, fmt.Errorf("trace %d: %w", s.ID, err)
		}
		out = append(out, tr)
	}
	return out, nil
}

// profileForLevel picks the vehicle profile nearest the target level
// and retargets its base level.
func profileForLevel(level float64) vibration.Profile {
	best := vibration.QuietRoom
	bestDiff := diff(best.BaseLevel, level)
	for _, p := range vibration.Profiles() {
		if d := diff(p.BaseLevel, level); d < bestDiff {
			best, bestDiff = p, d
		}
	}
	best.BaseLevel = level
	return best
}

// rescaleVibration scales the magnitude deviations from gravity so the
// windowed vibration average matches the target exactly (up to the
// window-mean approximation).
func rescaleVibration(samples []vibration.Sample, target float64) []vibration.Sample {
	measured := WindowedVibration(samples, vibration.DefaultWindowSec)
	if measured <= 0 || target <= 0 {
		return samples
	}
	k := target / measured
	out := make([]vibration.Sample, len(samples))
	for i, s := range samples {
		mag := s.Magnitude()
		newMag := vibration.Gravity + (mag-vibration.Gravity)*k
		if newMag < 0 {
			newMag = 0
		}
		scale := 0.0
		if mag > 0 {
			scale = newMag / mag
		}
		out[i] = vibration.Sample{TimeSec: s.TimeSec, X: s.X * scale, Y: s.Y * scale, Z: s.Z * scale}
	}
	return out
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
