package trace

import (
	"math"
	"math/rand"
	"testing"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

// vibTolerance is the documented agreement contract between the
// compiled prefix-sum VibrationAt and the reference two-pass
// implementation (DESIGN.md §10).
const vibTolerance = 1e-9

// randomTrace builds a trace with irregular sample spacing and mixed
// calm/shaky stretches so windows hit every density regime.
func randomTrace(rng *rand.Rand) *Trace {
	lengthSec := 5 + rng.Float64()*115
	tr := &Trace{
		ID:                0,
		Name:              "random",
		LengthSec:         lengthSec,
		NativeBitrateMbps: 1 + rng.Float64()*4,
	}
	for t := 0.0; t < lengthSec; t += 0.5 + rng.Float64()*2 {
		tr.Network = append(tr.Network, netsim.TracePoint{
			TimeSec:        t,
			SignalDBm:      -120 + rng.Float64()*40,
			ThroughputMBps: rng.Float64() * 4,
		})
	}
	amp := rng.Float64() * 3
	for t := 0.0; t < lengthSec; {
		tr.Accel = append(tr.Accel, vibration.Sample{
			TimeSec: t,
			X:       rng.NormFloat64() * amp,
			Y:       rng.NormFloat64() * amp,
			Z:       vibration.Gravity + rng.NormFloat64()*amp,
		})
		// Irregular rates, including occasional multi-second gaps that
		// leave some windows with 0 or 1 samples.
		if rng.Intn(20) == 0 {
			t += 1 + rng.Float64()*8
		} else {
			t += 0.01 + rng.Float64()*0.1
		}
	}
	if len(tr.Network) == 0 {
		tr.Network = []netsim.TracePoint{{TimeSec: 0, SignalDBm: -100, ThroughputMBps: 1}}
	}
	if len(tr.Accel) == 0 {
		tr.Accel = []vibration.Sample{{TimeSec: 0, Z: vibration.Gravity}}
	}
	return tr
}

// The tentpole property: across randomized traces, windows, and query
// times — including t beyond the trace end and windows longer than the
// trace — the compiled O(1) VibrationAt agrees with the reference
// two-pass implementation within the 1e-9 contract, for both the
// stateless path and the cursor fast path.
func TestCompiledVibrationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		tr := randomTrace(rng)
		c, err := Compile(tr)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		cur := c.Cursor()
		for q := 0; q < 300; q++ {
			// Bias towards in-range times but include before-start and
			// past-end queries.
			tSec := rng.Float64()*tr.LengthSec*1.3 - tr.LengthSec*0.1
			var windowSec float64
			switch rng.Intn(4) {
			case 0:
				windowSec = 0 // default-window fallback
			case 1:
				windowSec = tr.LengthSec * (1 + rng.Float64()) // longer than the trace
			default:
				windowSec = 0.05 + rng.Float64()*12
			}
			want := tr.VibrationAt(tSec, windowSec)
			if got := c.VibrationAt(tSec, windowSec); math.Abs(got-want) > vibTolerance {
				t.Fatalf("trial %d: Compiled.VibrationAt(%v, %v) = %.15g, reference %.15g (Δ=%g)",
					trial, tSec, windowSec, got, want, got-want)
			}
			if got := cur.VibrationAt(tSec, windowSec); math.Abs(got-want) > vibTolerance {
				t.Fatalf("trial %d: Cursor.VibrationAt(%v, %v) = %.15g, reference %.15g (Δ=%g)",
					trial, tSec, windowSec, got, want, got-want)
			}
		}
	}
}

// The cursor fast path must stay exact (not just within tolerance)
// relative to the stateless compiled path under its designed monotone
// access pattern.
func TestCursorMonotoneMatchesStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTrace(rng)
	c, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cur := c.Cursor()
	for tSec := -2.0; tSec < tr.LengthSec+10; tSec += 0.37 {
		if got, want := cur.VibrationAt(tSec, 6), c.VibrationAt(tSec, 6); got != want {
			t.Fatalf("cursor diverged at t=%v: %v != %v", tSec, got, want)
		}
		if got, want := cur.SignalAt(tSec), c.SignalAt(tSec); got != want {
			t.Fatalf("cursor signal diverged at t=%v: %v != %v", tSec, got, want)
		}
		if got, want := cur.ThroughputMBpsAt(tSec), c.ThroughputMBpsAt(tSec); got != want {
			t.Fatalf("cursor throughput diverged at t=%v: %v != %v", tSec, got, want)
		}
	}
}

// The network step queries must match a TraceLink replay (the
// simulator's ground truth for zero-order hold semantics).
func TestCompiledNetworkMatchesTraceLink(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng)
	c, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	link, err := tr.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	for tSec := 0.0; tSec < tr.LengthSec+5; tSec += 0.51 {
		link.Advance(tSec - link.Now())
		if got, want := c.SignalAt(tSec), link.SignalDBm(); got != want {
			t.Fatalf("SignalAt(%v) = %v, TraceLink says %v", tSec, got, want)
		}
		if got, want := c.ThroughputMBpsAt(tSec), link.ThroughputMBps(); got != want {
			t.Fatalf("ThroughputMBpsAt(%v) = %v, TraceLink says %v", tSec, got, want)
		}
	}
}

// Pinned edge-case behavior shared by the reference and compiled
// paths (ISSUE 6 satellite): past-the-end queries, before-the-start
// queries, and windows with fewer than two samples all report 0.
func TestVibrationAtEdgeCases(t *testing.T) {
	tr := &Trace{
		LengthSec:         10,
		NativeBitrateMbps: 1,
		Network:           []netsim.TracePoint{{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 2}},
		Accel: []vibration.Sample{
			{TimeSec: 1, X: 1, Z: vibration.Gravity},
			{TimeSec: 2, X: 3, Z: vibration.Gravity},
			{TimeSec: 3, X: 2, Z: vibration.Gravity},
		},
	}
	c, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cases := []struct {
		name      string
		tSec, win float64
		wantZero  bool
	}{
		{"before first sample", 0.5, 2, true},
		{"window covers one sample", 1.2, 0.5, true},
		{"window covers two samples", 2.1, 2, false},
		{"past end, window still spans samples", 4, 6, false},
		{"far past end", 20, 2, true},
		{"just past end by more than window", 5.5, 2, true},
		{"negative time", -3, 2, true},
		{"default window fallback", 3, 0, false},
	}
	for _, tc := range cases {
		ref := tr.VibrationAt(tc.tSec, tc.win)
		got := c.VibrationAt(tc.tSec, tc.win)
		if (ref == 0) != tc.wantZero {
			t.Errorf("%s: reference VibrationAt(%v, %v) = %v, wantZero=%v",
				tc.name, tc.tSec, tc.win, ref, tc.wantZero)
		}
		if math.Abs(got-ref) > vibTolerance {
			t.Errorf("%s: compiled %v vs reference %v", tc.name, got, ref)
		}
	}
}

// Compilation must be numerically robust against catastrophic
// cancellation: a long, nearly-constant stream around Gravity has tiny
// variance riding on a huge E[m²]; naive prefix sums of m² lose it.
func TestCompiledVibrationNearConstantStream(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := &Trace{
		LengthSec:         3600,
		NativeBitrateMbps: 1,
		Network:           []netsim.TracePoint{{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 2}},
	}
	for i := 0; i < 200_000; i++ {
		tr.Accel = append(tr.Accel, vibration.Sample{
			TimeSec: float64(i) * 0.018,
			Z:       vibration.Gravity + rng.NormFloat64()*1e-4,
		})
	}
	c, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, tSec := range []float64{6, 500, 1800, 3599} {
		want := tr.VibrationAt(tSec, 6)
		got := c.VibrationAt(tSec, 6)
		if math.Abs(got-want) > vibTolerance {
			t.Fatalf("near-constant stream at t=%v: compiled %.15g vs reference %.15g (Δ=%g)",
				tSec, got, want, got-want)
		}
	}
}

// Compile must reject what Validate rejects.
func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(&Trace{}); err == nil {
		t.Fatal("Compile accepted an empty trace")
	}
}

// The memoized accessor must return the same pointer every call and
// count one compile plus per-call hits.
func TestTraceCompiledMemoizes(t *testing.T) {
	tr := tinyTrace(t)
	c0, h0 := CompileStats()
	c1, err := tr.Compiled()
	if err != nil {
		t.Fatalf("Compiled: %v", err)
	}
	c2, err := tr.Compiled()
	if err != nil {
		t.Fatalf("Compiled: %v", err)
	}
	if c1 != c2 {
		t.Fatal("Compiled() returned different pointers")
	}
	if c1.Trace() != tr {
		t.Fatal("Compiled().Trace() does not round-trip")
	}
	c3, h3 := CompileStats()
	if c3-c0 != 1 {
		t.Errorf("compiles advanced by %d, want 1", c3-c0)
	}
	if h3-h0 != 1 {
		t.Errorf("hits advanced by %d, want 1", h3-h0)
	}
}

// Link must replay the shared network points with TraceLink semantics.
func TestCompiledLink(t *testing.T) {
	tr := tinyTrace(t)
	c, err := Compile(tr)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	l := c.Link()
	ref, err := tr.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	for i := 0; i < 20; i++ {
		if l.SignalDBm() != ref.SignalDBm() || l.ThroughputMBps() != ref.ThroughputMBps() {
			t.Fatalf("replay diverged at step %d", i)
		}
		l.Advance(0.7)
		ref.Advance(0.7)
	}
}

func BenchmarkVibrationAtReference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.VibrationAt(float64(i%int(tr.LengthSec)), 6)
	}
}

func BenchmarkVibrationAtCompiled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng)
	c, err := Compile(tr)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.VibrationAt(float64(i%int(tr.LengthSec)), 6)
	}
}

func BenchmarkVibrationAtCursor(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := randomTrace(rng)
	c, err := Compile(tr)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	cur := c.Cursor()
	step := tr.LengthSec / 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i%1000) * step
		if i%1000 == 0 {
			cur = c.Cursor()
		}
		cur.VibrationAt(t, 6)
	}
}
