// Package trace defines the measurement traces the paper's evaluation
// replays (Section V-A): a network trace (download throughput and
// timing, as extracted from tcpdump), a signal-strength trace (ADB
// telephony registry), and an accelerometer trace — bundled per viewing
// session. It provides CSV encoding/decoding and a seeded generator
// that reproduces the five evaluation traces of Table V.
package trace

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"ecavs/internal/netsim"
	"ecavs/internal/vibration"
)

// Trace bundles one viewing session's recorded context.
//
// A Trace must not be mutated (or copied by value) once handed to the
// simulator: the first Compiled call memoizes derived series built
// from the Network/Accel slices, and every later consumer shares them.
type Trace struct {
	// ID is the Table V trace number (1-5) or 0 for ad-hoc traces.
	ID int
	// Name describes the session ("bus commute").
	Name string
	// LengthSec is the video length (Table V "Length").
	LengthSec float64
	// NativeBitrateMbps is the watched video's average encoded bitrate;
	// it determines the Table V "Data size" column.
	NativeBitrateMbps float64
	// Network is the replayable link trace (signal + throughput).
	Network []netsim.TracePoint
	// Accel is the accelerometer stream.
	Accel []vibration.Sample

	// compiled memoizes the trace's compiled form so sessions, sweeps,
	// and campaign shards all share one compilation per trace.
	compiled atomic.Pointer[Compiled]
}

// Compile/hit counters behind CompileStats, exported to telemetry by
// the campaign runner.
var (
	compileCount    atomic.Uint64
	compileHitCount atomic.Uint64
)

// Compiled returns the trace's compiled form, building and memoizing
// it on first use. Concurrent first calls may both compile; exactly
// one result wins the publication race and all callers observe the
// same *Compiled afterwards, so sharing stays pointer-equal.
func (t *Trace) Compiled() (*Compiled, error) {
	if c := t.compiled.Load(); c != nil {
		compileHitCount.Add(1)
		return c, nil
	}
	c, err := Compile(t)
	if err != nil {
		return nil, err
	}
	compileCount.Add(1)
	if !t.compiled.CompareAndSwap(nil, c) {
		c = t.compiled.Load()
	}
	return c, nil
}

// CompileStats reports process-wide counts of trace compilations and
// memoized-cache hits (Compiled calls that reused an earlier
// compilation). The campaign runner surfaces both as telemetry gauges
// so amortization is observable: a healthy campaign shows compiles ==
// number of distinct traces and hits growing with session count.
func CompileStats() (compiles, hits uint64) {
	return compileCount.Load(), compileHitCount.Load()
}

// Validation errors.
var (
	ErrNoNetwork = errors.New("trace: no network points")
	ErrNoAccel   = errors.New("trace: no accelerometer samples")
	ErrBadLength = errors.New("trace: non-positive length")
)

// Validate reports whether the trace is usable for simulation.
func (t *Trace) Validate() error {
	if t.LengthSec <= 0 {
		return ErrBadLength
	}
	if len(t.Network) == 0 {
		return ErrNoNetwork
	}
	if len(t.Accel) == 0 {
		return ErrNoAccel
	}
	for i := 1; i < len(t.Network); i++ {
		if t.Network[i].TimeSec < t.Network[i-1].TimeSec {
			return fmt.Errorf("trace: network point %d out of order", i)
		}
	}
	for i := 1; i < len(t.Accel); i++ {
		if t.Accel[i].TimeSec < t.Accel[i-1].TimeSec {
			return fmt.Errorf("trace: accel sample %d out of order", i)
		}
	}
	return nil
}

// DataSizeMB returns the Table V "Data size" column: the video's
// payload at its native average bitrate.
func (t *Trace) DataSizeMB() float64 {
	return t.NativeBitrateMbps / 8 * t.LengthSec
}

// AvgVibration returns the session-average vibration level: the mean of
// Eq. 5 computed over consecutive windows (matching how the paper
// reports Table V's "Avg. vibration").
func (t *Trace) AvgVibration() float64 {
	return WindowedVibration(t.Accel, vibration.DefaultWindowSec)
}

// WindowedVibration computes the mean of per-window Eq. 5 levels over
// the sample stream.
func WindowedVibration(samples []vibration.Sample, windowSec float64) float64 {
	if len(samples) < 2 || windowSec <= 0 {
		return 0
	}
	var (
		sum     float64
		windows int
		start   int
	)
	t0 := samples[0].TimeSec
	for i, s := range samples {
		if s.TimeSec-t0 >= windowSec || i == len(samples)-1 {
			if i > start+1 {
				sum += vibration.Level(samples[start : i+1])
				windows++
			}
			start = i
			t0 = s.TimeSec
		}
	}
	if windows == 0 {
		return vibration.Level(samples)
	}
	return sum / float64(windows)
}

// AvgSignalDBm returns the time-averaged signal strength of the
// network trace.
func (t *Trace) AvgSignalDBm() float64 {
	if len(t.Network) == 0 {
		return 0
	}
	var sum float64
	for _, p := range t.Network {
		sum += p.SignalDBm
	}
	return sum / float64(len(t.Network))
}

// AvgThroughputMbps returns the average achievable link rate in Mbps.
func (t *Trace) AvgThroughputMbps() float64 {
	if len(t.Network) == 0 {
		return 0
	}
	var sum float64
	for _, p := range t.Network {
		sum += p.ThroughputMBps
	}
	return sum / float64(len(t.Network)) * 8
}

// Link returns a replayable netsim.Link over the trace's network
// points.
func (t *Trace) Link() (*netsim.TraceLink, error) {
	return netsim.NewTraceLink(t.Network)
}

// VibrationAt returns the Eq. 5 vibration level over the window
// [tSec-windowSec, tSec] of the accelerometer stream — what the online
// algorithm's estimator would report at time tSec.
//
// Edge cases are pinned (and shared with the compiled fast path and
// vibration.Estimator):
//   - windowSec <= 0 falls back to vibration.DefaultWindowSec;
//   - a window covering fewer than two samples reports 0 — in
//     particular any query more than windowSec past the last sample
//     (there is no context to estimate from, and 0 keeps the QoE
//     impairment term inactive rather than extrapolating);
//   - queries before the first sample likewise see an empty window and
//     report 0.
//
// This is the REFERENCE implementation: the compiled prefix-sum path
// (Compiled.VibrationAt) must agree with it within 1e-9, enforced by
// property and fuzz tests.
//
// Accel is validated time-ordered, so the window is a contiguous run
// of samples: its bounds are binary-searched and the sub-slice handed
// to vibration.Level directly, keeping the per-segment call O(log n +
// window) and allocation-free (the simulator calls this once per
// segment, and a linear rescan from the stream start dominated whole
// session replays).
func (t *Trace) VibrationAt(tSec, windowSec float64) float64 {
	if windowSec <= 0 {
		windowSec = vibration.DefaultWindowSec
	}
	lo := tSec - windowSec
	i := sort.Search(len(t.Accel), func(k int) bool { return t.Accel[k].TimeSec >= lo })
	j := sort.Search(len(t.Accel), func(k int) bool { return t.Accel[k].TimeSec > tSec })
	return vibration.Level(t.Accel[i:j])
}
