// Package faults is the deterministic failure-injection substrate for
// the real-HTTP streaming path: a seeded Plan hands out per-request
// verdicts (server error, connection reset, response stall, truncated
// body, added latency) that can be applied either server-side (an
// httpdash.Server option) or client-side (a RoundTripper wrapper)
// without the handler or client code knowing which faults exist.
//
// Determinism is the point: a verdict depends only on the plan seed,
// the request key (normally the URL path), and how many times that key
// has been requested — never on wall-clock time or goroutine
// interleaving across keys. Replaying the same request sequence against
// the same seed reproduces the same storm, which is what lets the chaos
// suite assert exact recovery behaviour and lets campaign results stay
// a pure function of their seeds.
package faults

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// None passes the request through untouched.
	None Kind = iota
	// Error5xx answers with a server error status instead of the payload.
	Error5xx
	// Reset drops the connection abruptly (client sees a transport
	// error, not an HTTP response).
	Reset
	// Stall hangs the response mid-transfer for Verdict.Stall before
	// continuing — the fault a per-segment deadline exists to catch.
	Stall
	// Truncate delivers only Verdict.TruncateFrac of the body while
	// still advertising the full Content-Length.
	Truncate
	// Latency delays the response by Verdict.Latency, then serves it
	// normally.
	Latency
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Error5xx:
		return "error5xx"
	case Reset:
		return "reset"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Latency:
		return "latency"
	}
	return fmt.Sprintf("faults.Kind(%d)", uint8(k))
}

// Verdict is one request's fate.
type Verdict struct {
	// Kind selects the fault class (None = healthy request).
	Kind Kind
	// Status is the response code for Error5xx verdicts.
	Status int
	// Stall is the mid-transfer hang for Stall verdicts.
	Stall time.Duration
	// Latency is the added delay for Latency verdicts.
	Latency time.Duration
	// TruncateFrac is the delivered body fraction for Truncate verdicts,
	// in (0, 1).
	TruncateFrac float64
}

// Config parameterises a probabilistic plan. The five probabilities
// are evaluated as a cumulative ladder per request; their sum must not
// exceed 1 (the remainder is the healthy-request probability).
type Config struct {
	// Error5xxProb, ResetProb, StallProb, TruncateProb, LatencyProb are
	// the per-request fault probabilities.
	Error5xxProb float64
	ResetProb    float64
	StallProb    float64
	TruncateProb float64
	LatencyProb  float64

	// Status is the Error5xx response code (default 503).
	Status int
	// StallFor is the Stall hang length (default 2 s).
	StallFor time.Duration
	// LatencyFor is the Latency delay (default 200 ms).
	LatencyFor time.Duration
	// TruncateFrac is the delivered fraction on Truncate (default 0.5).
	TruncateFrac float64

	// MaxFaultsPerKey, when positive, forces None once a key has been
	// requested that many times: a client retrying the same resource is
	// guaranteed a clean response on attempt MaxFaultsPerKey, which
	// bounds every storm a bounded-retry client can be caught in. Zero
	// means faults never relent.
	MaxFaultsPerKey int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	probs := []float64{c.Error5xxProb, c.ResetProb, c.StallProb, c.TruncateProb, c.LatencyProb}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			return errors.New("faults: probabilities must lie in [0, 1]")
		}
		sum += p
	}
	if sum > 1+1e-12 {
		return errors.New("faults: fault probabilities sum past 1")
	}
	if c.Status != 0 && (c.Status < 500 || c.Status > 599) {
		return errors.New("faults: Status must be a 5xx code")
	}
	if c.StallFor < 0 || c.LatencyFor < 0 {
		return errors.New("faults: negative durations")
	}
	if c.TruncateFrac < 0 || c.TruncateFrac >= 1 {
		return errors.New("faults: TruncateFrac outside [0, 1)")
	}
	if c.MaxFaultsPerKey < 0 {
		return errors.New("faults: negative MaxFaultsPerKey")
	}
	return nil
}

// Stats counts what a plan has injected so far.
type Stats struct {
	// Requests is the number of verdicts handed out.
	Requests int64
	// Injected counts non-None verdicts by kind.
	Errors5xx, Resets, Stalls, Truncations, Latencies int64
}

// Injected is the total non-None verdict count.
func (s Stats) Injected() int64 {
	return s.Errors5xx + s.Resets + s.Stalls + s.Truncations + s.Latencies
}

// Plan hands out deterministic verdicts. Safe for concurrent use; the
// verdict for the n-th request of a given key is independent of other
// keys' traffic.
//
// Construct with NewPlan or NewScript; the zero value is unusable.
type Plan struct {
	cfg  Config
	seed uint64

	mu       sync.Mutex
	attempts map[string]int
	script   []Verdict
	pos      int
	stats    Stats
}

// NewPlan returns a probabilistic plan: each request's verdict is drawn
// from cfg's fault ladder, seeded so the n-th request for a key always
// draws the same verdict.
func NewPlan(cfg Config, seed int64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Status == 0 {
		cfg.Status = 503
	}
	if cfg.StallFor == 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.LatencyFor == 0 {
		cfg.LatencyFor = 200 * time.Millisecond
	}
	if cfg.TruncateFrac == 0 {
		cfg.TruncateFrac = 0.5
	}
	return &Plan{cfg: cfg, seed: uint64(seed), attempts: make(map[string]int)}, nil
}

// NewScript returns a scripted plan: verdicts are consumed in request
// order regardless of key, and once the script is exhausted every
// request passes through clean. Scripts express precise storms ("three
// 5xx, then a stall, then a truncation") for the chaos suite.
func NewScript(verdicts []Verdict) *Plan {
	s := make([]Verdict, len(verdicts))
	copy(s, verdicts)
	return &Plan{script: s, attempts: make(map[string]int)}
}

// Verdict returns the fate of the next request for key, advancing the
// key's attempt counter.
func (p *Plan) Verdict(key string) Verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	attempt := p.attempts[key]
	p.attempts[key] = attempt + 1
	p.stats.Requests++

	var v Verdict
	if p.script != nil {
		if p.pos < len(p.script) {
			v = p.script[p.pos]
			p.pos++
		}
	} else if p.cfg.MaxFaultsPerKey == 0 || attempt < p.cfg.MaxFaultsPerKey {
		v = p.draw(key, attempt)
	}
	switch v.Kind {
	case Error5xx:
		p.stats.Errors5xx++
	case Reset:
		p.stats.Resets++
	case Stall:
		p.stats.Stalls++
	case Truncate:
		p.stats.Truncations++
	case Latency:
		p.stats.Latencies++
	}
	return v
}

// Stats returns a snapshot of the injection counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// draw derives the verdict for (key, attempt) from the seed: an FNV-1a
// hash of the key mixed with the attempt index through the splitmix64
// finalizer, mapped onto the cumulative fault ladder.
func (p *Plan) draw(key string, attempt int) Verdict {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	z := p.seed ^ h
	z += 0x9e3779b97f4a7c15 * uint64(attempt+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	u := float64((z^(z>>31))>>11) / (1 << 53)

	ladder := []struct {
		prob float64
		kind Kind
	}{
		{p.cfg.Error5xxProb, Error5xx},
		{p.cfg.ResetProb, Reset},
		{p.cfg.StallProb, Stall},
		{p.cfg.TruncateProb, Truncate},
		{p.cfg.LatencyProb, Latency},
	}
	var cum float64
	for _, step := range ladder {
		cum += step.prob
		if u < cum {
			return Verdict{
				Kind:         step.kind,
				Status:       p.cfg.Status,
				Stall:        p.cfg.StallFor,
				Latency:      p.cfg.LatencyFor,
				TruncateFrac: p.cfg.TruncateFrac,
			}
		}
	}
	return Verdict{}
}
