package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Error5xxProb: -0.1},
		{Error5xxProb: 0.6, ResetProb: 0.6}, // sum > 1
		{Status: 200, Error5xxProb: 0.1},
		{TruncateFrac: 1.0},
		{StallFor: -time.Second},
		{MaxFaultsPerKey: -1},
	}
	for i, cfg := range cases {
		if _, err := NewPlan(cfg, 1); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := NewPlan(Config{Error5xxProb: 0.5, ResetProb: 0.5}, 1); err != nil {
		t.Errorf("sum exactly 1 rejected: %v", err)
	}
}

// The verdict for (key, attempt) must depend only on the seed, never
// on interleaving with other keys.
func TestPlanDeterministicPerKey(t *testing.T) {
	mk := func() *Plan {
		p, err := NewPlan(Config{Error5xxProb: 0.3, ResetProb: 0.2, TruncateProb: 0.2}, 42)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := mk()
	var seqA []Kind
	for i := 0; i < 20; i++ {
		seqA = append(seqA, a.Verdict("/seg/v0/1.m4s").Kind)
	}
	// Same key again, but interleaved with unrelated traffic.
	b := mk()
	for i := 0; i < 20; i++ {
		b.Verdict("/seg/v9/7.m4s")
		if got := b.Verdict("/seg/v0/1.m4s").Kind; got != seqA[i] {
			t.Fatalf("attempt %d: interleaved verdict %v, want %v", i, got, seqA[i])
		}
		b.Verdict("/other")
	}
}

func TestPlanSeedChangesStream(t *testing.T) {
	cfg := Config{Error5xxProb: 0.5}
	p1, _ := NewPlan(cfg, 1)
	p2, _ := NewPlan(cfg, 99)
	same := true
	for i := 0; i < 64; i++ {
		if p1.Verdict("/k").Kind != p2.Verdict("/k").Kind {
			same = false
		}
	}
	if same {
		t.Error("64 verdicts identical across different seeds")
	}
}

func TestPlanProbabilityExtremes(t *testing.T) {
	always, _ := NewPlan(Config{Error5xxProb: 1}, 7)
	for i := 0; i < 32; i++ {
		if v := always.Verdict("/k"); v.Kind != Error5xx {
			t.Fatalf("attempt %d: got %v, want error5xx", i, v.Kind)
		}
	}
	never, _ := NewPlan(Config{}, 7)
	for i := 0; i < 32; i++ {
		if v := never.Verdict("/k"); v.Kind != None {
			t.Fatalf("attempt %d: got %v, want none", i, v.Kind)
		}
	}
}

// MaxFaultsPerKey guarantees the storm relents: attempt N and later
// are always clean.
func TestPlanMaxFaultsPerKey(t *testing.T) {
	p, _ := NewPlan(Config{Error5xxProb: 1, MaxFaultsPerKey: 3}, 5)
	for i := 0; i < 3; i++ {
		if v := p.Verdict("/k"); v.Kind != Error5xx {
			t.Fatalf("attempt %d: got %v, want error5xx", i, v.Kind)
		}
	}
	for i := 3; i < 8; i++ {
		if v := p.Verdict("/k"); v.Kind != None {
			t.Fatalf("attempt %d: got %v, want none after MaxFaultsPerKey", i, v.Kind)
		}
	}
	// A fresh key gets its own budget.
	if v := p.Verdict("/other"); v.Kind != Error5xx {
		t.Errorf("fresh key got %v, want error5xx", v.Kind)
	}
}

func TestScriptConsumesInOrderThenCleans(t *testing.T) {
	p := NewScript([]Verdict{
		{Kind: Error5xx, Status: 502},
		{Kind: Truncate, TruncateFrac: 0.25},
	})
	if v := p.Verdict("/a"); v.Kind != Error5xx || v.Status != 502 {
		t.Errorf("first verdict = %+v", v)
	}
	if v := p.Verdict("/b"); v.Kind != Truncate || v.TruncateFrac != 0.25 {
		t.Errorf("second verdict = %+v", v)
	}
	for i := 0; i < 4; i++ {
		if v := p.Verdict("/a"); v.Kind != None {
			t.Errorf("post-script verdict = %+v, want none", v)
		}
	}
}

func TestPlanStats(t *testing.T) {
	p := NewScript([]Verdict{{Kind: Error5xx}, {Kind: Reset}, {Kind: Stall}, {Kind: Truncate}, {Kind: Latency}})
	for i := 0; i < 7; i++ {
		p.Verdict("/k")
	}
	s := p.Stats()
	if s.Requests != 7 || s.Injected() != 5 {
		t.Errorf("stats = %+v", s)
	}
	if s.Errors5xx != 1 || s.Resets != 1 || s.Stalls != 1 || s.Truncations != 1 || s.Latencies != 1 {
		t.Errorf("per-kind counts = %+v", s)
	}
}

// Concurrent verdict draws must be race-free (run under -race) and
// account every request.
func TestPlanConcurrentUse(t *testing.T) {
	p, _ := NewPlan(Config{Error5xxProb: 0.5}, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Verdict("/shared")
			}
		}(g)
	}
	wg.Wait()
	if s := p.Stats(); s.Requests != 800 {
		t.Errorf("requests = %d, want 800", s.Requests)
	}
}

func newBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", itoa(len(body)))
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestRoundTripper5xxAndReset(t *testing.T) {
	ts := newBackend(t, "payload")
	client := &http.Client{Transport: &RoundTripper{
		Plan: NewScript([]Verdict{{Kind: Error5xx, Status: 503}, {Kind: Reset}}),
	}}
	resp, err := client.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if _, err := client.Get(ts.URL + "/x"); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("reset verdict error = %v, want ErrInjectedReset", err)
	}
	// Script exhausted: clean pass-through.
	resp, err = client.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "payload" {
		t.Errorf("clean body = %q", b)
	}
}

func TestRoundTripperTruncatePreservesContentLength(t *testing.T) {
	ts := newBackend(t, "0123456789")
	client := &http.Client{Transport: &RoundTripper{
		Plan: NewScript([]Verdict{{Kind: Truncate, TruncateFrac: 0.5}}),
	}}
	resp, err := client.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != 10 {
		t.Errorf("ContentLength = %d, want 10 (advertised full size)", resp.ContentLength)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("truncated read should end in clean EOF, got %v", err)
	}
	if len(b) != 5 {
		t.Errorf("delivered %d bytes, want 5", len(b))
	}
}

func TestRoundTripperStallHonoursContext(t *testing.T) {
	ts := newBackend(t, "payload")
	client := &http.Client{Transport: &RoundTripper{
		Plan: NewScript([]Verdict{{Kind: Stall, Stall: 10 * time.Second}}),
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("stalled request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stall ignored the request deadline")
	}
}

func TestRoundTripperFilterSkipsWithoutConsuming(t *testing.T) {
	ts := newBackend(t, "payload")
	plan := NewScript([]Verdict{{Kind: Error5xx, Status: 500}})
	client := &http.Client{Transport: &RoundTripper{
		Plan:   plan,
		Filter: func(r *http.Request) bool { return r.URL.Path != "/manifest.mpd" },
	}}
	resp, err := client.Get(ts.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("filtered request got %d", resp.StatusCode)
	}
	if plan.Stats().Requests != 0 {
		t.Error("filtered request consumed a verdict")
	}
	resp, err = client.Get(ts.URL + "/seg/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("unfiltered request got %d, want injected 500", resp.StatusCode)
	}
}
