package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjectedReset is the transport error surfaced by Reset verdicts on
// the client side (http.Client wraps it in *url.Error; unwrap with
// errors.Is).
var ErrInjectedReset = errors.New("faults: injected connection reset")

// RoundTripper injects a Plan's verdicts on the client side of the
// HTTP exchange, so faults can be tested without touching the server.
//
// Error5xx verdicts synthesize the response locally (the request never
// reaches the wire); Reset returns ErrInjectedReset; Stall and Latency
// sleep before forwarding, honouring the request context; Truncate
// forwards the request and clips the response body while preserving
// the advertised Content-Length.
type RoundTripper struct {
	// Base performs real requests (default http.DefaultTransport).
	Base http.RoundTripper
	// Plan supplies the verdicts. Required.
	Plan *Plan
	// Filter, when non-nil, limits injection to requests it accepts;
	// everything else passes straight to Base without consuming a
	// verdict.
	Filter func(*http.Request) bool
}

var _ http.RoundTripper = (*RoundTripper)(nil)

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if rt.Plan == nil {
		return nil, errors.New("faults: RoundTripper without a Plan")
	}
	if rt.Filter != nil && !rt.Filter(req) {
		return base.RoundTrip(req)
	}
	v := rt.Plan.Verdict(req.URL.Path)
	switch v.Kind {
	case Error5xx:
		body := fmt.Sprintf("injected %d", v.Status)
		return &http.Response{
			StatusCode:    v.Status,
			Status:        fmt.Sprintf("%d %s", v.Status, http.StatusText(v.Status)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Reset:
		return nil, ErrInjectedReset
	case Stall, Latency:
		d := v.Latency
		if v.Kind == Stall {
			d = v.Stall
		}
		if err := sleepCtx(req, d); err != nil {
			return nil, err
		}
		return base.RoundTrip(req)
	case Truncate:
		resp, err := base.RoundTrip(req)
		if err != nil || resp.ContentLength <= 0 {
			return resp, err
		}
		keep := int64(float64(resp.ContentLength) * v.TruncateFrac)
		if keep < 1 {
			keep = 1
		}
		resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, keep), c: resp.Body}
		return resp, nil
	}
	return base.RoundTrip(req)
}

// truncatedBody reads a clipped prefix of the real body while closing
// the full underlying stream.
type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (t *truncatedBody) Read(p []byte) (int, error) { return t.r.Read(p) }
func (t *truncatedBody) Close() error               { return t.c.Close() }

// sleepCtx sleeps for d or until the request context is done.
func sleepCtx(req *http.Request, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-req.Context().Done():
		return req.Context().Err()
	case <-timer.C:
		return nil
	}
}
