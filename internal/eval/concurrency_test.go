package eval

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ecavs/internal/pool"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

// TestRunUnitsRecoversPanic pins that the evaluation fan-out inherits
// the worker pool's panic isolation: a unit that panics (a poisoned
// trace×algorithm cell) fails the evaluation with a typed error and a
// stack instead of crashing the process.
func TestRunUnitsRecoversPanic(t *testing.T) {
	err := runUnits(4, func(u int) error {
		if u == 2 {
			panic("poisoned evaluation unit")
		}
		return nil
	})
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *pool.PanicError", err)
	}
	if pe.Unit != 2 || pe.Value != "poisoned evaluation unit" {
		t.Errorf("PanicError = unit %d value %v", pe.Unit, pe.Value)
	}
}

// TestComparisonConcurrent drives Comparison from many goroutines at
// once (run under -race) and checks the singleflight contract: every
// caller receives the same *Comparison and the full evaluation runs
// exactly once.
func TestComparisonConcurrent(t *testing.T) {
	env := NewEnv()
	const callers = 8
	results := make([]*Comparison, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = env.Comparison()
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("caller %d: nil comparison", i)
		}
		if results[i] != results[0] {
			t.Errorf("caller %d received a different *Comparison than caller 0", i)
		}
	}
	env.mu.Lock()
	runs := env.compRuns
	env.mu.Unlock()
	if runs != 1 {
		t.Errorf("compRuns = %d, want 1 (concurrent callers must share one evaluation)", runs)
	}
}

// TestComparisonConcurrentFigures exercises the figure builders (which
// all call Comparison and read the memoized artifacts) concurrently.
func TestComparisonConcurrentFigures(t *testing.T) {
	env := NewEnv()
	figs := []func() (*Table, error){env.Fig5a, env.Fig5b, env.Fig5c, env.Fig6a, env.Fig6b, env.Fig6c, env.Fig7}
	var wg sync.WaitGroup
	for i, fig := range figs {
		wg.Add(1)
		go func(i int, fig func() (*Table, error)) {
			defer wg.Done()
			tbl, err := fig()
			if err != nil {
				t.Errorf("figure %d: %v", i, err)
				return
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("figure %d: no rows", i)
			}
		}(i, fig)
	}
	wg.Wait()
}

// TestMetricsMissingAlgorithm checks that a comparison missing an
// algorithm's metrics surfaces a descriptive error rather than the
// nil-map panic the old direct ByAlgorithm lookups produced.
func TestMetricsMissingAlgorithm(t *testing.T) {
	r := TraceResult{
		Trace:       &trace.Trace{ID: 3},
		ByAlgorithm: map[string]*sim.Metrics{"Youtube": {}},
	}
	if _, err := r.Metrics("Youtube"); err != nil {
		t.Fatalf("present algorithm: %v", err)
	}
	_, err := r.Metrics("Optimal")
	if err == nil {
		t.Fatal("missing algorithm: want error, got nil")
	}
	for _, want := range []string{"trace 3", `"Optimal"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}

	// The figure builders hit the same guard instead of panicking.
	env := NewEnv()
	env.comp = &Comparison{Results: []TraceResult{r}}
	for name, fig := range map[string]func() (*Table, error){
		"Fig5a": env.Fig5a, "Fig5c": env.Fig5c, "Fig6a": env.Fig6a,
	} {
		if _, err := fig(); err == nil {
			t.Errorf("%s: want error for missing algorithm, got nil", name)
		}
	}
}

// TestFig5cEmptyComparison checks the empty-results guard.
func TestFig5cEmptyComparison(t *testing.T) {
	env := NewEnv()
	env.comp = &Comparison{}
	if _, err := env.Fig5c(); err == nil {
		t.Fatal("want error for empty comparison, got nil")
	}
}
