package eval

import (
	"ecavs/internal/dash"
	"ecavs/internal/fit"
	"ecavs/internal/qoe"
)

// Fig1a reproduces Fig. 1(a): total energy to download 100 MB as the
// signal strength sweeps from -90 to -115 dBm.
func (e *Env) Fig1a() (*Table, error) {
	t := &Table{
		ID:      "fig1a",
		Caption: "Energy to download 100 MB vs. signal strength (Fig. 1a)",
		Header:  []string{"signal (dBm)", "energy (J)", "energy/MB (J)", "nominal rate (Mbps)"},
		Notes: []string{
			"paper anchors: 49 J at -90 dBm, 193 J at -115 dBm",
		},
	}
	for s := -90.0; s >= -115; s -= 5 {
		t.Rows = append(t.Rows, []string{
			f1(s),
			f1(e.Power.DownloadEnergyJ(100, s)),
			f3(e.Power.EnergyPerMBJ(s)),
			f1(e.Power.NominalThroughputMbps(s)),
		})
	}
	return t, nil
}

// Fig1b reproduces Fig. 1(b): perceived QoE and session energy as
// functions of bitrate in a quiet room versus on a moving vehicle.
func (e *Env) Fig1b() (*Table, error) {
	const (
		roomVib    = 0.2
		vehicleVib = 6.5
		roomDBm    = -88.0
		vehicleDBm = -108.0
		sessionSec = 300.0
	)
	t := &Table{
		ID:      "fig1b",
		Caption: "QoE and relative energy vs. bitrate, room vs. vehicle (Fig. 1b)",
		Header: []string{"bitrate (Mbps)", "res", "QoE room", "QoE vehicle",
			"energy room (J)", "energy vehicle (J)"},
	}
	ladder := dash.TableIILadder()
	baseRoom := e.Power.SessionEnergyJ(ladder.Lowest().BitrateMbps, sessionSec, roomDBm)
	baseVeh := e.Power.SessionEnergyJ(ladder.Lowest().BitrateMbps, sessionSec, vehicleDBm)
	for _, rep := range ladder {
		r := rep.BitrateMbps
		t.Rows = append(t.Rows, []string{
			f2(r),
			rep.Name,
			f2(e.QoE.PerceivedQuality(r, roomVib)),
			f2(e.QoE.PerceivedQuality(r, vehicleVib)),
			f1(e.Power.SessionEnergyJ(r, sessionSec, roomDBm) - baseRoom),
			f1(e.Power.SessionEnergyJ(r, sessionSec, vehicleDBm) - baseVeh),
		})
	}
	// Annotations the paper prints on the figure.
	room1080 := e.QoE.PerceivedQuality(5.8, roomVib)
	room480 := e.QoE.PerceivedQuality(1.5, roomVib)
	veh1080 := e.QoE.PerceivedQuality(5.8, vehicleVib)
	veh480 := e.QoE.PerceivedQuality(1.5, vehicleVib)
	e1080 := e.Power.SessionEnergyJ(5.8, sessionSec, vehicleDBm) - baseVeh
	e480 := e.Power.SessionEnergyJ(1.5, sessionSec, vehicleDBm) - baseVeh
	t.Notes = append(t.Notes,
		"paper annotations: room QoE drop 1080p->480p 12%, vehicle 4%, vehicle energy saving 65%",
		"measured: room drop "+pct((room1080-room480)/room1080)+
			", vehicle drop "+pct((veh1080-veh480)/veh1080)+
			", vehicle extra-energy saving "+pct((e1080-e480)/e1080),
		"the fitted Fig. 2b/2c models imply a steeper room drop than the raw Fig. 1b study (see EXPERIMENTS.md)",
	)
	return t, nil
}

// Fig2a reproduces Fig. 2(a): the spatial/temporal information of the
// Table I test videos.
func (e *Env) Fig2a() (*Table, error) {
	t := &Table{
		ID:      "fig2a",
		Caption: "Average spatial and temporal information of the test videos (Fig. 2a, Table I)",
		Header:  []string{"title", "genre", "SI", "TI", "complexity"},
		Notes:   []string{"paper plots SI 30-60 and TI 0-30 across ten genres"},
	}
	for _, v := range dash.Catalog() {
		t.Rows = append(t.Rows, []string{v.Title, v.Genre, f1(v.SpatialInfo), f1(v.TemporalInfo), f2(v.Complexity())})
	}
	return t, nil
}

// raterStudy synthesises the paper's IRB quality-assessment study:
// twenty subjects rate every (bitrate, vibration) cell.
func (e *Env) raterStudy(vibrations []float64) (rs, vs, q5s []float64) {
	const subjects = 20
	ladder := dash.TableIILadder()
	for s := 0; s < subjects; s++ {
		rater := qoe.NewRater(e.QoE, 0.5, int64(7000+s))
		for _, rep := range ladder {
			for _, v := range vibrations {
				rs = append(rs, rep.BitrateMbps)
				vs = append(vs, v)
				q5s = append(q5s, qoe.Scale9To5(rater.Rate(rep.BitrateMbps, v)))
			}
		}
	}
	return rs, vs, q5s
}

// Fig2b reproduces Fig. 2(b): the "original" rate-quality curve fitted
// to quiet-room ratings with Gauss-Newton least squares.
func (e *Env) Fig2b() (*Table, error) {
	rs, _, q5s := e.raterStudy([]float64{0})
	params, err := fit.GaussNewton(fit.RateQualityModel{}, rs, q5s, []float64{1, 1}, fit.GaussNewtonOptions{})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2b",
		Caption: "Original quality vs. bitrate with least-squares fit (Fig. 2b)",
		Header:  []string{"bitrate (Mbps)", "mean rating", "fitted Q0"},
		Notes: []string{
			"fitted c1=" + f3(params[0]) + " c2=" + f3(params[1]) +
				" (ground truth c1=" + f3(e.QoE.C1) + " c2=" + f3(e.QoE.C2) + ")",
		},
	}
	ladder := dash.TableIILadder()
	for _, rep := range ladder {
		var sum, n float64
		for i, r := range rs {
			if r == rep.BitrateMbps {
				sum += q5s[i]
				n++
			}
		}
		t.Rows = append(t.Rows, []string{
			f2(rep.BitrateMbps),
			f3(sum / n),
			f3(fit.RateQualityModel{}.Eval(rep.BitrateMbps, params)),
		})
	}
	return t, nil
}

// Fig2c reproduces Fig. 2(c): the vibration-impairment surface fitted
// to the rating difference between contexts.
func (e *Env) Fig2c() (*Table, error) {
	vibs := []float64{0, 1, 2, 3, 4, 5, 6}
	rs, vs, q5s := e.raterStudy(vibs)
	// Impairment observation: quiet-room rating minus in-context rating
	// for the same (subject, bitrate), paired by construction.
	var xr, xv, xi []float64
	for i := range rs {
		if vs[i] == 0 {
			continue
		}
		// Find the same subject's quiet-room rating for this bitrate:
		// the study is laid out deterministically, vibration cell 0 is
		// at offset -(index within vibs).
		offset := 0
		for k, v := range vibs {
			if v == vs[i] {
				offset = k
			}
		}
		quiet := q5s[i-offset]
		xr = append(xr, rs[i])
		xv = append(xv, vs[i])
		xi = append(xi, quiet-q5s[i])
	}
	surface, err := fit.FitBilinear(xr, xv, xi)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2c",
		Caption: "QoE impairment vs. (bitrate, vibration) with bilinear fit (Fig. 2c)",
		Header:  []string{"bitrate (Mbps)", "vibration", "model I", "fitted I"},
		Notes: []string{
			"fitted surface: " + surface.String(),
			"paper anchors: I(1.5,2)=0.049 I(1.5,6)=0.184 I(5.8,2)=0.174 I(5.8,6)=0.549",
		},
	}
	for _, r := range []float64{1.5, 5.8} {
		for _, v := range []float64{2, 6} {
			t.Rows = append(t.Rows, []string{
				f2(r), f1(v),
				f3(e.QoE.Impairment(r, v)),
				f3(surface.Eval(r, v)),
			})
		}
	}
	return t, nil
}
