package eval

import (
	"fmt"

	"ecavs/internal/core"
	"ecavs/internal/netsim"
	"ecavs/internal/player"
	"ecavs/internal/sim"
)

// runOursVariant replays the five traces with a customised "Ours"
// instance and returns average saving/degradation versus YouTube. The
// replays fan out over the worker pool (each unit builds its own
// algorithm instance); the averages are then accumulated sequentially
// in trace order, so the floating-point summation — and therefore the
// reported numbers — match the sequential evaluation exactly.
func (e *Env) runOursVariant(build func(obj core.Objective) *core.Online, session func(*sim.TraceSession)) (save, extra, degr float64, err error) {
	comp, err := e.Comparison()
	if err != nil {
		return 0, 0, 0, err
	}
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return 0, 0, 0, err
	}
	metrics := make([]*sim.Metrics, len(comp.Results))
	if err := runUnits(len(comp.Results), func(i int) error {
		r := comp.Results[i]
		man, err := e.Manifest(r.Trace)
		if err != nil {
			return err
		}
		ts := sim.TraceSession{
			Trace:        r.Trace,
			Manifest:     man,
			Algorithm:    build(obj),
			Power:        e.EvalPower,
			QoE:          e.QoE,
			ThresholdSec: player.DefaultBufferThresholdSec,
		}
		if session != nil {
			session(&ts)
		}
		m, err := ts.Run()
		if err != nil {
			return err
		}
		metrics[i] = m
		return nil
	}); err != nil {
		return 0, 0, 0, err
	}
	var n float64
	for i, r := range comp.Results {
		m := metrics[i]
		yt := r.ByAlgorithm["Youtube"]
		save += 1 - m.TotalJ()/yt.TotalJ()
		if ytExtra := yt.TotalJ() - r.BaseJ; ytExtra > 0 {
			extra += 1 - m.ExtraJ(r.BaseJ)/ytExtra
		}
		degr += 1 - m.MeanQoE/yt.MeanQoE
		n++
	}
	return save / n, extra / n, degr / n, nil
}

// AblationAlphaSweep sweeps the Eq. 11 weighting factor, tracing the
// energy/QoE Pareto front of the weighted-sum scalarisation.
func (e *Env) AblationAlphaSweep() (*Table, error) {
	t := &Table{
		ID:      "abl-alpha",
		Caption: "Ablation: objective weight alpha (energy/QoE Pareto front)",
		Header:  []string{"alpha", "whole-phone saving", "extra saving", "QoE degradation"},
		Notes: []string{
			"alpha = 0.5 is the paper's evaluation setting; smaller alpha favours QoE",
		},
	}
	savedAlpha := e.Alpha
	defer func() { e.Alpha = savedAlpha }()
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		e.Alpha = savedAlpha // Comparison cache key does not depend on alpha; keep env stable
		obj, err := core.NewObjective(alpha, e.EvalPower, e.QoE)
		if err != nil {
			return nil, err
		}
		save, extra, degr, err := e.runOursVariant(func(core.Objective) *core.Online {
			return core.NewOnline(obj)
		}, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{f2(alpha), pct(save), pct(extra), pct(degr)})
	}
	return t, nil
}

// AblationNoContext disables context sensing: the online algorithm
// sees zero vibration, so only bandwidth and energy drive it.
func (e *Env) AblationNoContext() (*Table, error) {
	t := &Table{
		ID:      "abl-context",
		Caption: "Ablation: context-awareness off (vibration forced to 0)",
		Header:  []string{"variant", "whole-phone saving", "extra saving", "QoE degradation"},
		Notes: []string{
			"without vibration sensing the algorithm cannot discount high bitrates on a shaking phone",
		},
	}
	zero := 0.0
	for _, alpha := range []float64{e.Alpha, 0.2} {
		obj, err := core.NewObjective(alpha, e.EvalPower, e.QoE)
		if err != nil {
			return nil, err
		}
		withCtx, extraW, degrW, err := e.runOursVariant(func(core.Objective) *core.Online {
			return core.NewOnline(obj)
		}, nil)
		if err != nil {
			return nil, err
		}
		noCtx, extraN, degrN, err := e.runOursVariant(func(core.Objective) *core.Online {
			return core.NewOnline(obj)
		}, func(ts *sim.TraceSession) {
			ts.ForceVibration = &zero
		})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("alpha=%.1f", alpha)
		t.Rows = append(t.Rows,
			[]string{label + " context-aware", pct(withCtx), pct(extraW), pct(degrW)},
			[]string{label + " context-blind", pct(noCtx), pct(extraN), pct(degrN)},
		)
	}
	t.Notes = append(t.Notes,
		"at alpha=0.5 the energy term dominates either way; at alpha=0.2 context sensing is what buys the extra saving")
	return t, nil
}

// AblationNoGradualSwitch compares Algorithm 1's gradual switching
// against jumping straight to the reference rung.
func (e *Env) AblationNoGradualSwitch() (*Table, error) {
	t := &Table{
		ID:      "abl-gradual",
		Caption: "Ablation: gradual switching vs. direct-to-reference",
		Header:  []string{"variant", "saving", "QoE degradation", "avg switches"},
	}
	variants := []struct {
		name  string
		build func(obj core.Objective) *core.Online
	}{
		{name: "gradual (Algorithm 1)", build: func(obj core.Objective) *core.Online { return core.NewOnline(obj) }},
		{name: "direct-to-reference", build: func(obj core.Objective) *core.Online {
			return core.NewOnline(obj, core.WithDirectReference())
		}},
	}
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	for _, v := range variants {
		save, _, degr, err := e.runOursVariant(v.build, nil)
		if err != nil {
			return nil, err
		}
		// Count switches by re-running once more per trace.
		obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
		if err != nil {
			return nil, err
		}
		counts := make([]int, len(comp.Results))
		if err := runUnits(len(comp.Results), func(i int) error {
			r := comp.Results[i]
			man, err := e.Manifest(r.Trace)
			if err != nil {
				return err
			}
			m, err := sim.TraceSession{
				Trace: r.Trace, Manifest: man, Algorithm: v.build(obj),
				Power: e.EvalPower, QoE: e.QoE,
				ThresholdSec: player.DefaultBufferThresholdSec,
			}.Run()
			if err != nil {
				return err
			}
			counts[i] = m.Switches
			return nil
		}); err != nil {
			return nil, err
		}
		var switches, n float64
		for _, c := range counts {
			switches += float64(c)
			n++
		}
		t.Rows = append(t.Rows, []string{v.name, pct(save), pct(degr), f1(switches / n)})
	}
	return t, nil
}

// AblationEstimators compares bandwidth estimators inside the online
// algorithm.
func (e *Env) AblationEstimators() (*Table, error) {
	t := &Table{
		ID:      "abl-estimator",
		Caption: "Ablation: bandwidth estimator in the online algorithm",
		Header:  []string{"estimator", "saving", "QoE degradation"},
		Notes:   []string{"the paper uses the harmonic mean of the last 20 throughputs (as FESTIVE does)"},
	}
	variants := []struct {
		name string
		make func() netsim.BandwidthEstimator
	}{
		{name: "harmonic(20)", make: func() netsim.BandwidthEstimator { return netsim.NewHarmonicMeanEstimator(20) }},
		{name: "harmonic(5)", make: func() netsim.BandwidthEstimator { return netsim.NewHarmonicMeanEstimator(5) }},
		{name: "ewma(0.3)", make: func() netsim.BandwidthEstimator { return netsim.NewEWMAEstimator(0.3) }},
		{name: "last-sample", make: func() netsim.BandwidthEstimator { return netsim.NewLastSampleEstimator() }},
	}
	for _, v := range variants {
		save, _, degr, err := e.runOursVariant(func(obj core.Objective) *core.Online {
			return core.NewOnline(obj, core.WithEstimator(v.make()))
		}, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{v.name, pct(save), pct(degr)})
	}
	return t, nil
}

// AblationVibrationWindow varies the online vibration-estimation
// window (the paper uses 0.2 x the 30 s threshold = 6 s).
func (e *Env) AblationVibrationWindow() (*Table, error) {
	t := &Table{
		ID:      "abl-window",
		Caption: "Ablation: vibration estimation window",
		Header:  []string{"window (s)", "saving", "QoE degradation"},
		Notes: []string{
			"the Table V traces' vibration is near-stationary, so the window choice barely matters there;",
			"it matters on rides with stops (see examples/busride)",
		},
	}
	for _, w := range []float64{1, 3, 6, 15, 30} {
		w := w
		save, _, degr, err := e.runOursVariant(func(obj core.Objective) *core.Online { return core.NewOnline(obj) }, func(ts *sim.TraceSession) {
			ts.VibrationWindowSec = w
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.0f", w), pct(save), pct(degr)})
	}
	return t, nil
}
