package eval

import "ecavs/internal/pool"

// runUnits executes fn(0..n-1) on the shared bounded worker pool
// (internal/pool) at GOMAXPROCS width, returning the error of the
// lowest-numbered failing unit, or nil. See pool.Run for the claiming
// and cancellation semantics.
func runUnits(n int, fn func(unit int) error) error {
	return pool.Run(n, 0, fn)
}
