package eval

import (
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/sim"
)

// AblationSegmentDuration sweeps the DASH segment duration with a TCP
// slow-start ramp enabled. Short segments adapt faster but never let
// the connection reach full speed, so their effective throughput —
// and, at fixed bitrate, their download energy — suffers; long
// segments amortise the ramp but respond sluggishly. The paper fixes
// 2 s segments (Section V-A); this ablation shows what that choice
// trades away.
func (e *Env) AblationSegmentDuration() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-segdur",
		Caption: "Ablation: segment duration under a 0.5 s TCP ramp (Youtube policy, trace 2)",
		Header:  []string{"segment (s)", "eff. throughput (Mbps)", "download energy (J)", "total (J)", "rebuffer (s)"},
		Notes: []string{
			"short segments never exit slow start, inflating radio-on time at equal payload",
		},
	}
	if len(comp.Results) < 2 {
		return nil, fmt.Errorf("eval: segment-duration ablation needs trace 2, comparison has %d traces", len(comp.Results))
	}
	tr := comp.Results[1].Trace // the strong-signal trace isolates the ramp effect
	durations := []float64{1, 2, 4, 6}
	rows := make([][]string, len(durations))
	if err := runUnits(len(durations), func(i int) error {
		segSec := durations[i]
		video := dash.Video{
			Title:        fmt.Sprintf("segdur-%v", segSec),
			SpatialInfo:  45,
			TemporalInfo: 15,
			DurationSec:  tr.LengthSec,
		}
		man, err := dash.NewManifest(video, e.Ladder, dash.ManifestConfig{
			SegmentSec: segSec,
			Seed:       int64(2000 + int(segSec)),
		})
		if err != nil {
			return err
		}
		link, err := tr.Link()
		if err != nil {
			return err
		}
		m, err := sim.Run(sim.Config{
			Manifest:   man,
			Link:       link,
			Algorithm:  abr.NewYoutube(),
			Power:      e.EvalPower,
			QoE:        e.QoE,
			TCPRampSec: 0.5,
		})
		if err != nil {
			return err
		}
		var thSum float64
		for _, s := range m.Segments {
			thSum += s.ThroughputMbps
		}
		eff := 0.0
		if len(m.Segments) > 0 {
			eff = thSum / float64(len(m.Segments))
		}
		rows[i] = []string{
			fmt.Sprintf("%.0f", segSec), f1(eff), f1(m.DownloadJ), f1(m.TotalJ()), f1(m.RebufferSec),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}
