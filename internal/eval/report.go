// Package eval regenerates every table and figure of the paper's
// evaluation (plus the ablations DESIGN.md calls out) as plain-text
// reports. Each experiment has an identifier (fig5a, tab6, abl-alpha,
// ...) resolvable through the Registry; cmd/experiments drives them
// and bench_test.go wraps each in a testing.B benchmark.
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a caption, a header row, data
// rows, and free-form notes (typically the paper-vs-measured summary).
type Table struct {
	// ID is the experiment identifier ("fig5a").
	ID string
	// Caption describes the table or figure being reproduced.
	Caption string
	// Header names the columns.
	Header []string
	// Rows holds the data, row-major.
	Rows [][]string
	// Notes are appended after the table (expectations, deviations).
	Notes []string
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Caption); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		b.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	var rule []string
	for _, width := range widths {
		rule = append(rule, strings.Repeat("-", width))
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = t.Render(&b)
	return b.String()
}

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// pct formats a fraction as a percentage with one decimal.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
