package eval

import "fmt"

// Fig5a reproduces Fig. 5(a): total energy per trace per approach.
func (e *Env) Fig5a() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5a",
		Caption: "Energy consumption per trace (Fig. 5a)",
		Header:  append([]string{"trace"}, AlgorithmNames...),
		Notes: []string{
			"paper shape: Youtube highest; FESTIVE/BBA slightly lower; Ours and Optimal far lower",
		},
	}
	for _, r := range comp.Results {
		row := []string{fmt.Sprintf("trace%d", r.Trace.ID)}
		for _, name := range AlgorithmNames {
			m, err := r.Metrics(name)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(m.TotalJ()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5b reproduces Fig. 5(b): average energy saving versus YouTube, on
// whole-phone energy and on extra energy.
func (e *Env) Fig5b() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5b",
		Caption: "Energy saving vs. Youtube (Fig. 5b)",
		Header:  []string{"approach", "whole-phone saving", "extra-energy saving"},
		Notes: []string{
			"paper: whole-phone FESTIVE 7%, BBA 4%, Ours 33%, Optimal 36%",
			"paper: extra-energy FESTIVE 15%, BBA 8%, Ours 77%, Optimal 80%",
		},
	}
	for _, name := range AlgorithmNames[1:] {
		whole, extra := comp.Savings(name)
		t.Rows = append(t.Rows, []string{name, pct(whole), pct(extra)})
	}
	return t, nil
}

// Fig5c reproduces Fig. 5(c): base versus extra energy for trace 1.
func (e *Env) Fig5c() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	if len(comp.Results) == 0 {
		return nil, fmt.Errorf("eval: fig5c needs trace 1, comparison has no results")
	}
	r := comp.Results[0]
	t := &Table{
		ID:      "fig5c",
		Caption: "Base and extra energy for trace 1 (Fig. 5c)",
		Header:  []string{"approach", "base (J)", "extra (J)", "total (J)"},
		Notes: []string{
			"base energy = session cost at the lowest bitrate (Section V-B)",
			fmt.Sprintf("paper shape: base ≈ 200 J for the 198 s trace; measured base %.0f J", r.BaseJ),
		},
	}
	for _, name := range AlgorithmNames {
		m, err := r.Metrics(name)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{name, f1(r.BaseJ), f1(m.ExtraJ(r.BaseJ)), f1(m.TotalJ())})
	}
	return t, nil
}

// Fig6a reproduces Fig. 6(a): QoE per trace per approach.
func (e *Env) Fig6a() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6a",
		Caption: "QoE per trace (Fig. 6a)",
		Header:  append([]string{"trace"}, AlgorithmNames...),
		Notes: []string{
			"paper shape: Youtube highest everywhere; trace 2 (low vibration) best for all approaches",
		},
	}
	for _, r := range comp.Results {
		row := []string{fmt.Sprintf("trace%d", r.Trace.ID)}
		for _, name := range AlgorithmNames {
			m, err := r.Metrics(name)
			if err != nil {
				return nil, err
			}
			row = append(row, f3(m.MeanQoE))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b reproduces Fig. 6(b): average QoE per approach.
func (e *Env) Fig6b() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6b",
		Caption: "Average QoE per approach (Fig. 6b)",
		Header:  []string{"approach", "average QoE"},
	}
	for _, name := range AlgorithmNames {
		t.Rows = append(t.Rows, []string{name, f3(comp.AverageQoE(name))})
	}
	return t, nil
}

// Fig6c reproduces Fig. 6(c): QoE degradation versus YouTube.
func (e *Env) Fig6c() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6c",
		Caption: "QoE degradation vs. Youtube (Fig. 6c)",
		Header:  []string{"approach", "QoE degradation"},
		Notes: []string{
			"paper: FESTIVE 3.3%, BBA 2.1%, Ours 3.5%",
			"Ours degrades more here because the faithful Fig. 2b/2c models price low bitrates lower than the paper's Fig. 6 does (see EXPERIMENTS.md)",
		},
	}
	for _, name := range AlgorithmNames[1:] {
		t.Rows = append(t.Rows, []string{name, pct(comp.QoEDegradation(name))})
	}
	return t, nil
}

// Fig7 reproduces Fig. 7: the ratio of energy saving over QoE
// degradation.
func (e *Env) Fig7() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7",
		Caption: "Energy saving / QoE degradation ratio (Fig. 7)",
		Header:  []string{"approach", "saving", "degradation", "ratio"},
		Notes: []string{
			"paper shape: Ours and Optimal well above FESTIVE (4.8x) and BBA (5.1x)",
		},
	}
	for _, name := range AlgorithmNames[1:] {
		whole, _ := comp.Savings(name)
		degr := comp.QoEDegradation(name)
		ratio := 0.0
		if degr > 0 {
			ratio = whole / degr
		}
		t.Rows = append(t.Rows, []string{name, pct(whole), pct(degr), f2(ratio)})
	}
	return t, nil
}
