package eval

import (
	"math"

	"ecavs/internal/dash"
	"ecavs/internal/fit"
	"ecavs/internal/power"
	"ecavs/internal/trace"
)

// Table2 reproduces Table II: the resolution/bitrate pairing of the
// video dataset.
func (e *Env) Table2() (*Table, error) {
	t := &Table{
		ID:      "tab2",
		Caption: "Resolution and bitrate of the video dataset (Table II)",
		Header:  []string{"resolution", "bitrate (Mbps)"},
	}
	ladder := dash.TableIILadder()
	for i := len(ladder) - 1; i >= 0; i-- {
		t.Rows = append(t.Rows, []string{ladder[i].Name, f2(ladder[i].BitrateMbps)})
	}
	return t, nil
}

// Table3 reproduces Table III: the QoE-model coefficients, re-fitted
// from the synthetic rating study and compared against the
// reconstruction's ground truth.
func (e *Env) Table3() (*Table, error) {
	// Rate-quality curve from quiet-room ratings.
	rs, _, q5s := e.raterStudy([]float64{0})
	curve, err := fit.GaussNewton(fit.RateQualityModel{}, rs, q5s, []float64{1, 1}, fit.GaussNewtonOptions{})
	if err != nil {
		return nil, err
	}
	// Impairment surface from paired context ratings (same pipeline as
	// Fig2c).
	vibs := []float64{0, 1, 2, 3, 4, 5, 6}
	rr, vv, qq := e.raterStudy(vibs)
	var xr, xv, xi []float64
	for i := range rr {
		if vv[i] == 0 {
			continue
		}
		offset := 0
		for k, v := range vibs {
			if v == vv[i] {
				offset = k
			}
		}
		xr = append(xr, rr[i])
		xv = append(xv, vv[i])
		xi = append(xi, qq[i-offset]-qq[i])
	}
	surface, err := fit.FitBilinear(xr, xv, xi)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "tab3",
		Caption: "Fitted QoE-model coefficients (Table III)",
		Header:  []string{"coefficient", "ground truth", "refitted"},
		Notes: []string{
			"the paper's published values: 1.036, 0.429, 0.782, -0.782, 0.0648 (names lost to OCR; see DESIGN.md)",
		},
	}
	rows := []struct {
		name       string
		truth, got float64
	}{
		{name: "c1 (curve exponent)", truth: e.QoE.C1, got: curve[0]},
		{name: "c2 (curve knee, Mbps)", truth: e.QoE.C2, got: curve[1]},
		{name: "p00", truth: e.QoE.P00, got: surface.P00},
		{name: "p10", truth: e.QoE.P10, got: surface.P10},
		{name: "p01", truth: e.QoE.P01, got: surface.P01},
		{name: "p11", truth: e.QoE.P11, got: surface.P11},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.name, f3(r.truth), f3(r.got)})
	}
	return t, nil
}

// Table5 reproduces Table V: the five evaluation traces' length, data
// size, and average vibration.
func (e *Env) Table5() (*Table, error) {
	traces, err := e.Traces()
	if err != nil {
		return nil, err
	}
	specs := trace.TableVSpecs()
	t := &Table{
		ID:      "tab5",
		Caption: "Video traces (Table V)",
		Header: []string{"trace", "length (s)", "data size (MB)", "avg vibration",
			"paper vibration", "avg signal (dBm)", "avg rate (Mbps)"},
	}
	for i, tr := range traces {
		t.Rows = append(t.Rows, []string{
			tr.Name,
			f1(tr.LengthSec),
			f1(tr.DataSizeMB()),
			f2(tr.AvgVibration()),
			f2(specs[i].TargetVibration),
			f1(tr.AvgSignalDBm()),
			f1(tr.AvgThroughputMbps()),
		})
	}
	return t, nil
}

// Table6 reproduces Table VI: power-model validation — the virtual
// Monsoon monitor's "measured" session energy against the analytic
// model, per bitrate, at -90 dBm.
func (e *Env) Table6() (*Table, error) {
	const sessionSec = 300
	t := &Table{
		ID:      "tab6",
		Caption: "Power model validation at -90 dBm (Table VI)",
		Header:  []string{"bitrate (Mbps)", "measured (J)", "calculated (J)", "error"},
		Notes:   []string{"paper: error consistently < 3%, average 1.43%"},
	}
	rates := []float64{5.8, 3.0, 1.5, 0.75, 0.375, 0.1}
	var sumErr float64
	for i, r := range rates {
		mo := power.NewMonitor(power.MonitorConfig{Seed: int64(100 + i)})
		measured, err := mo.MeasureSession(e.Power, r, sessionSec, -90, dash.DefaultSegmentSec)
		if err != nil {
			return nil, err
		}
		calculated := e.Power.SessionEnergyJ(r, sessionSec, -90)
		errRatio := math.Abs(measured-calculated) / calculated
		sumErr += errRatio
		t.Rows = append(t.Rows, []string{f3(r), f2(measured), f2(calculated), pct(errRatio)})
	}
	t.Notes = append(t.Notes, "average error: "+pct(sumErr/float64(len(rates))))
	return t, nil
}
