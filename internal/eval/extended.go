package eval

import (
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/learn"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
)

// ExtendedBaselines compares the paper's approaches against two
// additional baselines from its related work — BOLA (reference [5])
// and RobustMPC (reference [17]) — on the same five traces. Neither
// considers context, so the paper's conclusion should extend: they
// track bandwidth/buffer well but cannot discount high bitrates in
// vibrating, energy-expensive contexts.
func (e *Env) ExtendedBaselines() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-baselines",
		Caption: "Extended comparison: BOLA and RobustMPC (beyond the paper)",
		Header:  []string{"approach", "avg energy (J)", "whole-phone saving", "QoE", "QoE degradation"},
		Notes: []string{
			"BOLA (Spiteri+ 2016) and RobustMPC (Yin+ 2015) are the paper's references [5] and [17]",
		},
	}

	// Averages for the paper's five approaches from the cached runs.
	addRow := func(name string, avgJ, save, q, degr float64) {
		t.Rows = append(t.Rows, []string{name, f1(avgJ), pct(save), f3(q), pct(degr)})
	}
	var ytAvg float64
	for _, r := range comp.Results {
		ytAvg += r.ByAlgorithm["Youtube"].TotalJ()
	}
	ytAvg /= float64(len(comp.Results))
	for _, name := range AlgorithmNames {
		var sumJ float64
		for _, r := range comp.Results {
			sumJ += r.ByAlgorithm[name].TotalJ()
		}
		whole, _ := comp.Savings(name)
		addRow(name, sumJ/float64(len(comp.Results)), whole, comp.AverageQoE(name), comp.QoEDegradation(name))
	}

	// The two new baselines, replayed fresh: one pool unit per
	// baseline × trace, accumulated in the sequential order afterwards.
	builders := []struct {
		name string
		make func() (abr.Algorithm, error)
	}{
		{name: "BOLA", make: func() (abr.Algorithm, error) { return abr.NewBOLA() }},
		{name: "RobustMPC", make: func() (abr.Algorithm, error) { return abr.NewMPC() }},
	}
	nt := len(comp.Results)
	metrics := make([]*sim.Metrics, len(builders)*nt)
	if err := runUnits(len(metrics), func(unit int) error {
		b, r := builders[unit/nt], comp.Results[unit%nt]
		alg, err := b.make()
		if err != nil {
			return err
		}
		man, err := e.Manifest(r.Trace)
		if err != nil {
			return err
		}
		m, err := sim.RunOnTrace(r.Trace, man, alg, e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return fmt.Errorf("eval: %s on trace %d: %w", b.name, r.Trace.ID, err)
		}
		metrics[unit] = m
		return nil
	}); err != nil {
		return nil, err
	}
	for bi, b := range builders {
		var sumJ, sumSave, sumQ, sumDegr float64
		for ti, r := range comp.Results {
			m := metrics[bi*nt+ti]
			yt := r.ByAlgorithm["Youtube"]
			sumJ += m.TotalJ()
			sumSave += 1 - m.TotalJ()/yt.TotalJ()
			sumQ += m.MeanQoE
			sumDegr += 1 - m.MeanQoE/yt.MeanQoE
		}
		n := float64(nt)
		addRow(b.name, sumJ/n, sumSave/n, sumQ/n, sumDegr/n)
	}
	return t, nil
}

// ExtendedLearned trains the tabular Q-learning agent (the Pensieve
// stand-in, reference [27]) on synthetic channels and evaluates it on
// the five traces against YouTube and Ours. Like the other
// bandwidth-only baselines it has no context signal, so it should land
// between YouTube and Ours on energy.
func (e *Env) ExtendedLearned() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	agent, err := learn.Train(learn.DefaultTrainConfig(e.Ladder))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-learned",
		Caption: "Extended comparison: tabular Q-learning agent (Pensieve-style, beyond the paper)",
		Header:  []string{"trace", "QLearn energy (J)", "QLearn QoE", "Youtube energy (J)", "Ours energy (J)"},
		Notes: []string{
			"trained on synthetic room/vehicle channels with the MPC-family reward; no context signal",
			"table coverage: " + pct(agent.Table().CoverageFraction()),
			"a small tabular agent is deliberately conservative (stall-averse), so its QoE trails the model-based policies — the deep-RL original closes that gap with function approximation",
		},
	}
	// The shared agent carries replay state (Reset per run), so these
	// sessions stay sequential; the manifests come from the cache.
	for _, r := range comp.Results {
		man, err := e.Manifest(r.Trace)
		if err != nil {
			return nil, err
		}
		m, err := sim.RunOnTrace(r.Trace, man, agent, e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return nil, fmt.Errorf("eval: QLearn on trace %d: %w", r.Trace.ID, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("trace%d", r.Trace.ID),
			f1(m.TotalJ()),
			f3(m.MeanQoE),
			f1(r.ByAlgorithm["Youtube"].TotalJ()),
			f1(r.ByAlgorithm["Ours"].TotalJ()),
		})
	}
	return t, nil
}

// ExtendedBrightness runs the joint rate-and-brightness policy (the
// RnB extension, references [11, 12, 32]) over a grid of ambient-light
// and motion contexts, showing which (bitrate, backlight) pair the
// extended Eq. 11 objective selects in each.
func (e *Env) ExtendedBrightness() (*Table, error) {
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return nil, err
	}
	joint, err := core.NewJointOnline(obj, power.DefaultScreen(), qoe.DefaultBrightness(), nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-brightness",
		Caption: "Extended: joint rate-and-brightness adaptation per context (beyond the paper)",
		Header:  []string{"context", "ambient", "vibration", "signal (dBm)", "chosen bitrate (Mbps)", "chosen brightness"},
		Notes: []string{
			"extends the Eq. 11 objective over the backlight: screen power joins the energy term, legibility joins QoE",
		},
	}
	sizes := make([]float64, len(e.Ladder))
	for i, rep := range e.Ladder {
		sizes[i] = rep.BitrateMbps / 8 * 2
	}
	contexts := []struct {
		name           string
		ambient, vib   float64
		signal, bwMbps float64
	}{
		{name: "dark room", ambient: 0.0, vib: 0.2, signal: -88, bwMbps: 40},
		{name: "indoor cafe", ambient: 0.4, vib: 0.6, signal: -92, bwMbps: 30},
		{name: "night bus", ambient: 0.1, vib: 6.5, signal: -108, bwMbps: 15},
		{name: "daytime bus", ambient: 0.8, vib: 6.5, signal: -108, bwMbps: 15},
		{name: "sunny park", ambient: 1.0, vib: 0.3, signal: -95, bwMbps: 25},
	}
	for _, c := range contexts {
		ctx := abr.Context{
			Ladder:             e.Ladder,
			SegmentSizesMB:     sizes,
			SegmentDurationSec: 2,
			BufferSec:          25,
			BufferThresholdSec: player.DefaultBufferThresholdSec,
			PrevRung:           7,
			SignalDBm:          c.signal,
			VibrationLevel:     c.vib,
		}
		d, err := joint.Choose(ctx, c.ambient, c.bwMbps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, f2(c.ambient), f2(c.vib), f1(c.signal),
			f2(e.Ladder[d.Rung].BitrateMbps), f2(d.Brightness),
		})
	}
	return t, nil
}

// AblationAbandonment quantifies the prefetching/abandonment tension
// (the motivation of the paper's reference [6]): the viewer quits a
// third of the way into each trace, and deeper prefetch buffers leave
// more downloaded-but-unwatched payload behind.
func (e *Env) AblationAbandonment() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-abandon",
		Caption: "Ablation: buffer depth vs. wasted download under early quits (Youtube policy)",
		Header:  []string{"buffer threshold (s)", "wasted (MB)", "wasted energy (J)", "total (J)"},
		Notes: []string{
			"viewer quits at 1/3 of each video; wasted energy = trailing buffered payload x energy/MB at the trace's mean signal",
		},
	}
	thresholds := []float64{10, 30, 60}
	nt := len(comp.Results)
	metrics := make([]*sim.Metrics, len(thresholds)*nt)
	if err := runUnits(len(metrics), func(unit int) error {
		threshold, r := thresholds[unit/nt], comp.Results[unit%nt]
		man, err := e.Manifest(r.Trace)
		if err != nil {
			return err
		}
		link, err := r.Trace.Link()
		if err != nil {
			return err
		}
		m, err := sim.Run(sim.Config{
			SessionParams:      sim.SessionParams{AbandonAtSec: r.Trace.LengthSec / 3},
			Manifest:           man,
			Link:               link,
			Algorithm:          abr.NewYoutube(),
			Power:              e.EvalPower,
			QoE:                e.QoE,
			BufferThresholdSec: threshold,
		})
		if err != nil {
			return err
		}
		metrics[unit] = m
		return nil
	}); err != nil {
		return nil, err
	}
	for hi, threshold := range thresholds {
		var wastedMB, wastedJ, totJ float64
		for ti, r := range comp.Results {
			m := metrics[hi*nt+ti]
			wastedMB += m.WastedMB
			wastedJ += m.WastedMB * e.EvalPower.EnergyPerMBJ(r.Trace.AvgSignalDBm())
			totJ += m.TotalJ()
		}
		n := float64(nt)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", threshold), f1(wastedMB / n), f1(wastedJ / n), f1(totJ / n),
		})
	}
	return t, nil
}

// AblationTailEnergy enables the LTE RRC state machine and sweeps the
// download-pacing hysteresis, quantifying the tail-energy saving of
// bursty prefetching (the mechanism behind the paper's references
// [7, 29, 30]).
func (e *Env) AblationTailEnergy() (*Table, error) {
	comp, err := e.Comparison()
	if err != nil {
		return nil, err
	}
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "abl-tail",
		Caption: "Ablation: LTE tail energy vs. download-pacing hysteresis (Ours, RRC on)",
		Header:  []string{"resume threshold (s)", "radio-control (J)", "total (J)", "rebuffer (s)"},
		Notes: []string{
			"resume = 30 means no hysteresis (trickle right below the threshold);",
			"deeper drains give the radio long idle stretches, amortising the ~11.5 s LTE tail",
		},
	}
	rrc := power.DefaultRRC()
	resumes := []float64{30, 20, 10, 5}
	nt := len(comp.Results)
	metrics := make([]*sim.Metrics, len(resumes)*nt)
	if err := runUnits(len(metrics), func(unit int) error {
		resumeSec, r := resumes[unit/nt], comp.Results[unit%nt]
		man, err := e.Manifest(r.Trace)
		if err != nil {
			return err
		}
		m, err := sim.TraceSession{
			Trace:              r.Trace,
			Manifest:           man,
			Algorithm:          core.NewOnline(obj),
			Power:              e.EvalPower,
			QoE:                e.QoE,
			ThresholdSec:       player.DefaultBufferThresholdSec,
			ResumeThresholdSec: resumeSec,
			RRC:                &rrc,
		}.Run()
		if err != nil {
			return err
		}
		metrics[unit] = m
		return nil
	}); err != nil {
		return nil, err
	}
	for ri, resumeSec := range resumes {
		var ctlJ, totJ, rebufSec float64
		for ti := 0; ti < nt; ti++ {
			m := metrics[ri*nt+ti]
			ctlJ += m.RadioCtlJ
			totJ += m.TotalJ()
			rebufSec += m.RebufferSec
		}
		n := float64(nt)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", resumeSec), f1(ctlJ / n), f1(totJ / n), f1(rebufSec / n),
		})
	}
	return t, nil
}
