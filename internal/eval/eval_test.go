package eval

import (
	"strconv"
	"strings"
	"testing"
)

// sharedEnv caches the (expensive) comparison across tests in this
// package.
var sharedEnv = NewEnv()

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Caption: "demo",
		Header:  []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note1"},
	}
	out := tbl.String()
	for _, want := range []string{"== x: demo", "a", "bb", "333", "note: note1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 29 {
		t.Errorf("registry has %d experiments, want 29", len(reg))
	}
	seen := map[string]bool{}
	for _, ex := range reg {
		if ex.ID == "" || ex.Label == "" || ex.Run == nil {
			t.Errorf("incomplete experiment %+v", ex)
		}
		if seen[ex.ID] {
			t.Errorf("duplicate experiment id %q", ex.ID)
		}
		seen[ex.ID] = true
	}
	ex, err := Lookup("fig5a")
	if err != nil || ex.ID != "fig5a" {
		t.Errorf("Lookup(fig5a) = %+v, %v", ex, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

// cell parses a numeric table cell (strips % suffix).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig1aAnchors(t *testing.T) {
	tbl, err := sharedEnv.Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (-90..-115 by 5)", len(tbl.Rows))
	}
	first := cell(t, tbl.Rows[0][1])
	last := cell(t, tbl.Rows[len(tbl.Rows)-1][1])
	if first < 45 || first > 53 {
		t.Errorf("energy at -90 = %v, want ≈ 49", first)
	}
	if last < 185 || last > 200 {
		t.Errorf("energy at -115 = %v, want ≈ 193", last)
	}
}

func TestFig1bShape(t *testing.T) {
	tbl, err := sharedEnv.Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 ladder rungs", len(tbl.Rows))
	}
	// QoE room >= QoE vehicle at every bitrate; energy vehicle >= room.
	for _, row := range tbl.Rows {
		room, veh := cell(t, row[2]), cell(t, row[3])
		if veh > room+1e-9 {
			t.Errorf("vehicle QoE %v exceeds room %v at %s Mbps", veh, room, row[0])
		}
		eRoom, eVeh := cell(t, row[4]), cell(t, row[5])
		if eVeh < eRoom-1e-9 {
			t.Errorf("vehicle energy %v below room %v at %s Mbps", eVeh, eRoom, row[0])
		}
	}
}

func TestFig2aCatalogRows(t *testing.T) {
	tbl, err := sharedEnv.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d, want 10 titles", len(tbl.Rows))
	}
}

func TestFig2bFitRecoversCurve(t *testing.T) {
	tbl, err := sharedEnv.Fig2b()
	if err != nil {
		t.Fatal(err)
	}
	// Mean ratings ascend with bitrate and the fit tracks them.
	prev := 0.0
	for _, row := range tbl.Rows {
		mean := cell(t, row[1])
		fitted := cell(t, row[2])
		if mean < prev-0.1 {
			t.Errorf("mean ratings not ascending at %s Mbps", row[0])
		}
		if diff := mean - fitted; diff > 0.25 || diff < -0.25 {
			t.Errorf("fit strays from ratings at %s Mbps: %v vs %v", row[0], fitted, mean)
		}
		prev = mean
	}
}

func TestFig2cFitNearAnchors(t *testing.T) {
	tbl, err := sharedEnv.Fig2c()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want the 4 anchor cells", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		model := cell(t, row[2])
		fitted := cell(t, row[3])
		if diff := model - fitted; diff > 0.12 || diff < -0.12 {
			t.Errorf("refitted impairment at (%s, %s) = %v, model %v", row[0], row[1], fitted, model)
		}
	}
}

func TestTable2Rows(t *testing.T) {
	tbl, err := sharedEnv.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("rows = %d, want 6", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1080p" || tbl.Rows[5][0] != "144p" {
		t.Errorf("Table II ordering wrong: %v", tbl.Rows)
	}
}

func TestTable3RefitsCoefficients(t *testing.T) {
	tbl, err := sharedEnv.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 coefficients", len(tbl.Rows))
	}
	// Curve parameters recover within 10%.
	for _, row := range tbl.Rows[:2] {
		truth := cell(t, row[1])
		got := cell(t, row[2])
		if truth == 0 {
			continue
		}
		if rel := (got - truth) / truth; rel > 0.1 || rel < -0.1 {
			t.Errorf("%s refit = %v, truth %v", row[0], got, truth)
		}
	}
}

func TestTable5MatchesTargets(t *testing.T) {
	tbl, err := sharedEnv.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 traces", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		meas := cell(t, row[3])
		want := cell(t, row[4])
		if rel := (meas - want) / want; rel > 0.1 || rel < -0.1 {
			t.Errorf("trace %s vibration %v strays from target %v", row[0], meas, want)
		}
	}
}

func TestTable6ErrorsUnder3Percent(t *testing.T) {
	tbl, err := sharedEnv.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if e := cell(t, row[3]); e > 3 {
			t.Errorf("validation error at %s Mbps = %v%%, want < 3%%", row[0], e)
		}
	}
}

func TestComparisonFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	// Fig5a: Youtube column dominates Ours column.
	fig5a, err := sharedEnv.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5a.Rows) != 5 {
		t.Fatalf("fig5a rows = %d, want 5", len(fig5a.Rows))
	}
	for _, row := range fig5a.Rows {
		yt := cell(t, row[1])
		ours := cell(t, row[4])
		if ours >= yt {
			t.Errorf("%s: Ours %v J >= Youtube %v J", row[0], ours, yt)
		}
	}

	// Fig5b: Ours and Optimal save far more than FESTIVE and BBA.
	fig5b, err := sharedEnv.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	saving := map[string]float64{}
	for _, row := range fig5b.Rows {
		saving[row[0]] = cell(t, row[1])
	}
	if saving["Ours"] < 30 {
		t.Errorf("Ours saving = %v%%, want >= 30%%", saving["Ours"])
	}
	if saving["Ours"] <= saving["FESTIVE"]*2 {
		t.Errorf("Ours (%v%%) should dwarf FESTIVE (%v%%)", saving["Ours"], saving["FESTIVE"])
	}

	// Fig6a/6b: Youtube has top QoE; trace 2 is everyone's best trace.
	fig6a, err := sharedEnv.Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 5; col++ {
		trace2 := cell(t, fig6a.Rows[1][col])
		for _, rowIdx := range []int{0, 2, 3, 4} {
			if cell(t, fig6a.Rows[rowIdx][col]) > trace2+1e-9 {
				t.Errorf("column %d: trace2 QoE not best", col)
			}
		}
	}
	fig6b, err := sharedEnv.Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	ytQ := cell(t, fig6b.Rows[0][1])
	for _, row := range fig6b.Rows[1:] {
		if cell(t, row[1]) > ytQ {
			t.Errorf("%s QoE exceeds Youtube", row[0])
		}
	}

	// Fig7: Ours ratio beats both baselines.
	fig7, err := sharedEnv.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[string]float64{}
	for _, row := range fig7.Rows {
		ratio[row[0]] = cell(t, row[3])
	}
	if ratio["Ours"] <= ratio["FESTIVE"] || ratio["Ours"] <= ratio["BBA"] {
		t.Errorf("Ours ratio %v must beat FESTIVE %v and BBA %v",
			ratio["Ours"], ratio["FESTIVE"], ratio["BBA"])
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations replay many sessions")
	}
	// Alpha sweep: saving rises with alpha, degradation rises too.
	alpha, err := sharedEnv.AblationAlphaSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha.Rows) != 5 {
		t.Fatalf("alpha rows = %d, want 5", len(alpha.Rows))
	}
	firstSave := cell(t, alpha.Rows[0][1])
	lastSave := cell(t, alpha.Rows[len(alpha.Rows)-1][1])
	if lastSave <= firstSave {
		t.Errorf("saving should grow with alpha: %v -> %v", firstSave, lastSave)
	}

	// Context off: degradation should not improve, saving should not
	// grow meaningfully (vibration discounts high bitrates).
	ctx, err := sharedEnv.AblationNoContext()
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Rows) != 4 {
		t.Fatalf("context rows = %d, want 4", len(ctx.Rows))
	}

	// Gradual switching: both variants produce sane, distinct switch
	// counts (gradual climbs one rung at a time, so it registers more
	// but smaller switches in a stable channel).
	grad, err := sharedEnv.AblationNoGradualSwitch()
	if err != nil {
		t.Fatal(err)
	}
	gradSw := cell(t, grad.Rows[0][3])
	directSw := cell(t, grad.Rows[1][3])
	if gradSw <= 0 {
		t.Errorf("gradual variant reports no switches (%v)", gradSw)
	}
	if directSw < 0 {
		t.Errorf("direct variant switch count negative (%v)", directSw)
	}

	est, err := sharedEnv.AblationEstimators()
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Rows) != 4 {
		t.Fatalf("estimator rows = %d, want 4", len(est.Rows))
	}

	win, err := sharedEnv.AblationVibrationWindow()
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) != 5 {
		t.Fatalf("window rows = %d, want 5", len(win.Rows))
	}
}
