package eval

import (
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/multisim"
)

// ExtendedFairness co-simulates three clients sharing a 12 Mbps
// bottleneck under each policy — the multi-player setting FESTIVE (the
// paper's reference [2]) targets — and reports Jain's fairness index,
// stability, and stalling.
func (e *Env) ExtendedFairness() (*Table, error) {
	t := &Table{
		ID:      "ext-fairness",
		Caption: "Extended: three clients sharing a 12 Mbps bottleneck (beyond the paper)",
		Header:  []string{"policy", "Jain fairness", "mean bitrate (Mbps)", "switches (total)", "rebuffer (s)"},
		Notes: []string{
			"processor-sharing split; per-client fair share is 4 Mbps",
		},
	}
	policies := []struct {
		name string
		make func() (abr.Algorithm, error)
	}{
		{name: "FESTIVE", make: func() (abr.Algorithm, error) { return abr.NewFESTIVE(), nil }},
		{name: "RateBased", make: func() (abr.Algorithm, error) { return abr.NewRateBased(), nil }},
		{name: "BBA", make: func() (abr.Algorithm, error) { return abr.NewBBA() }},
		{name: "BOLA", make: func() (abr.Algorithm, error) { return abr.NewBOLA() }},
	}
	for _, p := range policies {
		clients := make([]multisim.Client, 3)
		for i := range clients {
			video := dash.Video{
				Title:        fmt.Sprintf("shared-%d", i),
				SpatialInfo:  45,
				TemporalInfo: 15,
				DurationSec:  120,
			}
			man, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{Seed: int64(10 + i)})
			if err != nil {
				return nil, err
			}
			alg, err := p.make()
			if err != nil {
				return nil, err
			}
			clients[i] = multisim.Client{
				Name:           fmt.Sprintf("%s-%d", p.name, i),
				Manifest:       man,
				Algorithm:      alg,
				StartOffsetSec: float64(i) * 5,
			}
		}
		res, err := multisim.Run(multisim.Config{Clients: clients, CapacityMbps: 12})
		if err != nil {
			return nil, fmt.Errorf("eval: fairness %s: %w", p.name, err)
		}
		var brSum, rebuf float64
		var switches int
		for _, c := range res.Clients {
			brSum += c.MeanBitrateMbps
			switches += c.Switches
			rebuf += c.RebufferSec
		}
		t.Rows = append(t.Rows, []string{
			p.name,
			f3(res.JainFairness),
			f2(brSum / float64(len(res.Clients))),
			fmt.Sprintf("%d", switches),
			f1(rebuf),
		})
	}
	return t, nil
}
