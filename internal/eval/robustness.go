package eval

import (
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/player"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

// ExtendedRobustness re-runs the headline comparison on freshly
// re-seeded traces — a simulated "second measurement campaign" — to
// check that the paper's conclusion is a property of the contexts, not
// of one random draw. Three independent campaigns are reported.
func (e *Env) ExtendedRobustness() (*Table, error) {
	t := &Table{
		ID:      "ext-robustness",
		Caption: "Extended: headline savings across re-seeded trace campaigns (beyond the paper)",
		Header:  []string{"campaign", "Ours saving", "Ours QoE degr.", "FESTIVE saving"},
		Notes: []string{
			"each campaign regenerates all five Table V traces with different random seeds",
		},
	}
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return nil, err
	}
	// One pool unit per campaign × trace; a unit regenerates its trace
	// and replays the three algorithms on it. Units are independent
	// (fresh traces, fresh algorithm instances), and the per-campaign
	// averages are accumulated afterwards in the sequential order.
	const campaigns = 3
	specs := trace.TableVSpecs()
	nt := len(specs)
	type sessionTriple struct{ save, degr, festSave float64 }
	triples := make([]sessionTriple, campaigns*nt)
	if err := runUnits(len(triples), func(unit int) error {
		campaign, spec := unit/nt, specs[unit%nt]
		spec.Seed += int64(campaign * 1000)
		tr, err := trace.Generate(spec, e.EvalPower.NominalThroughputMBps)
		if err != nil {
			return fmt.Errorf("eval: campaign %d trace %d: %w", campaign, spec.ID, err)
		}
		man, err := sim.ManifestForTrace(tr, e.Ladder)
		if err != nil {
			return err
		}
		yt, err := sim.RunOnTrace(tr, man, abr.NewYoutube(), e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return err
		}
		ours, err := sim.RunOnTrace(tr, man, core.NewOnline(obj), e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return err
		}
		fest, err := sim.RunOnTrace(tr, man, abr.NewFESTIVE(), e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return err
		}
		triples[unit] = sessionTriple{
			save:     1 - ours.TotalJ()/yt.TotalJ(),
			degr:     1 - ours.MeanQoE/yt.MeanQoE,
			festSave: 1 - fest.TotalJ()/yt.TotalJ(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for campaign := 0; campaign < campaigns; campaign++ {
		var save, degr, festSave, n float64
		for ti := 0; ti < nt; ti++ {
			tr := triples[campaign*nt+ti]
			save += tr.save
			degr += tr.degr
			festSave += tr.festSave
			n++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("seeds+%d", campaign*1000), pct(save / n), pct(degr / n), pct(festSave / n),
		})
	}
	return t, nil
}
