package eval

import "testing"

func TestExtendedBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("extended comparison replays many sessions")
	}
	tbl, err := sharedEnv.ExtendedBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (five paper approaches + BOLA + RobustMPC)", len(tbl.Rows))
	}
	saving := map[string]float64{}
	degr := map[string]float64{}
	for _, row := range tbl.Rows {
		saving[row[0]] = cell(t, row[2])
		degr[row[0]] = cell(t, row[4])
	}
	// The context-blind newcomers behave like FESTIVE/BBA: modest
	// savings, far below the context-aware approaches.
	for _, name := range []string{"BOLA", "RobustMPC"} {
		if saving[name] >= saving["Ours"]/2 {
			t.Errorf("%s saving %v%% rivals Ours %v%%; it has no context signal", name, saving[name], saving["Ours"])
		}
		if saving[name] < -3 {
			t.Errorf("%s burns %v%% more than Youtube", name, -saving[name])
		}
		if degr[name] > 10 {
			t.Errorf("%s degrades QoE by %v%%", name, degr[name])
		}
	}
}

func TestExtendedLearned(t *testing.T) {
	if testing.Short() {
		t.Skip("training + evaluation is slow")
	}
	tbl, err := sharedEnv.ExtendedLearned()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 traces", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		qlearnJ := cell(t, row[1])
		ytJ := cell(t, row[3])
		if qlearnJ > ytJ*1.05 {
			t.Errorf("%s: QLearn %v J exceeds Youtube %v J", row[0], qlearnJ, ytJ)
		}
		if q := cell(t, row[2]); q < 1 || q > 5 {
			t.Errorf("%s: QLearn QoE %v off the scale", row[0], q)
		}
	}
}

func TestExtendedBrightness(t *testing.T) {
	tbl, err := sharedEnv.ExtendedBrightness()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 contexts", len(tbl.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	dark := cell(t, byName["dark room"][5])
	sunny := cell(t, byName["sunny park"][5])
	if dark >= sunny {
		t.Errorf("dark-room brightness %v >= sunny %v", dark, sunny)
	}
	// The bus contexts stream lower bitrates than the quiet contexts.
	busBR := cell(t, byName["night bus"][4])
	roomBR := cell(t, byName["dark room"][4])
	if busBR > roomBR {
		t.Errorf("bus bitrate %v exceeds room bitrate %v", busBR, roomBR)
	}
	// Ambient, not motion, drives brightness: the two bus rows differ
	// only in light and must order accordingly.
	if cell(t, byName["night bus"][5]) >= cell(t, byName["daytime bus"][5]) {
		t.Error("night-bus brightness should undercut daytime-bus brightness")
	}
}

func TestFig5cAndFig6c(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full comparison")
	}
	fig5c, err := sharedEnv.Fig5c()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5c.Rows) != 5 {
		t.Fatalf("fig5c rows = %d, want 5 approaches", len(fig5c.Rows))
	}
	for _, row := range fig5c.Rows {
		base := cell(t, row[1])
		extra := cell(t, row[2])
		total := cell(t, row[3])
		if diff := base + extra - total; diff > 0.2 || diff < -0.2 {
			t.Errorf("%s: base %v + extra %v != total %v", row[0], base, extra, total)
		}
	}
	fig6c, err := sharedEnv.Fig6c()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig6c.Rows {
		if d := cell(t, row[1]); d < -1 || d > 50 {
			t.Errorf("%s degradation = %v%% out of range", row[0], d)
		}
	}
}

func TestAblationSegmentDuration(t *testing.T) {
	if testing.Short() {
		t.Skip("segment-duration sweep replays sessions")
	}
	tbl, err := sharedEnv.AblationSegmentDuration()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 durations", len(tbl.Rows))
	}
	// Longer segments use the ramped link more efficiently: effective
	// throughput rises and download energy falls monotonically.
	prevEff, prevDl := -1.0, 1e18
	for _, row := range tbl.Rows {
		eff := cell(t, row[1])
		dl := cell(t, row[2])
		if eff <= prevEff {
			t.Errorf("effective throughput not increasing: %v after %v", eff, prevEff)
		}
		if dl >= prevDl {
			t.Errorf("download energy not decreasing: %v after %v", dl, prevDl)
		}
		if rebuf := cell(t, row[4]); rebuf > 1 {
			t.Errorf("segment %s s caused %v s of stalls", row[0], rebuf)
		}
		prevEff, prevDl = eff, dl
	}
}

func TestExtendedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("three campaigns replay many sessions")
	}
	tbl, err := sharedEnv.ExtendedRobustness()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 campaigns", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		save := cell(t, row[1])
		fest := cell(t, row[3])
		if save < 35 {
			t.Errorf("campaign %s: Ours saving %v%% collapsed", row[0], save)
		}
		if fest > save/2 {
			t.Errorf("campaign %s: FESTIVE %v%% rivals Ours %v%%", row[0], fest, save)
		}
	}
}

func TestExtendedFairness(t *testing.T) {
	tbl, err := sharedEnv.ExtendedFairness()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		fair := cell(t, row[1])
		if fair < 0.85 || fair > 1.0+1e-9 {
			t.Errorf("%s fairness = %v, want within [0.85, 1]", row[0], fair)
		}
		br := cell(t, row[2])
		if br > 4.2 {
			t.Errorf("%s mean bitrate %v exceeds the 4 Mbps fair share", row[0], br)
		}
		if br < 1.5 {
			t.Errorf("%s mean bitrate %v suggests starvation", row[0], br)
		}
	}
}

func TestAblationAbandonment(t *testing.T) {
	if testing.Short() {
		t.Skip("abandonment ablation replays many sessions")
	}
	tbl, err := sharedEnv.AblationAbandonment()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 thresholds", len(tbl.Rows))
	}
	// Wasted payload grows monotonically with buffer depth.
	prev := -1.0
	for _, row := range tbl.Rows {
		wasted := cell(t, row[1])
		if wasted <= prev {
			t.Errorf("wasted MB not increasing with buffer depth: %v after %v", wasted, prev)
		}
		prev = wasted
	}
}

func TestAblationTailEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("tail ablation replays many sessions")
	}
	tbl, err := sharedEnv.AblationTailEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 resume levels", len(tbl.Rows))
	}
	// Deepest hysteresis must spend clearly less radio-control energy
	// than no hysteresis, without introducing stalls.
	first := cell(t, tbl.Rows[0][1])
	last := cell(t, tbl.Rows[len(tbl.Rows)-1][1])
	if last >= first*0.8 {
		t.Errorf("deep hysteresis control energy %v J not clearly below trickle %v J", last, first)
	}
	for _, row := range tbl.Rows {
		if rebuf := cell(t, row[3]); rebuf > 0.5 {
			t.Errorf("resume=%s caused %v s of rebuffering", row[0], rebuf)
		}
	}
}
