package eval

import (
	"fmt"
	"strings"
	"sync"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

// Env is the shared experiment environment: calibrated models, the
// evaluation ladder, and lazily generated Table V traces with cached
// per-algorithm session results (the Fig. 5-7 experiments all consume
// the same five-trace comparison).
type Env struct {
	// Power is the Table VI calibration (validation experiments).
	Power power.Model
	// EvalPower is the trace-evaluation phone (Figs. 5-7).
	EvalPower power.Model
	// QoE is the Table III model.
	QoE qoe.Model
	// Ladder is the fourteen-rung Section V-A ladder.
	Ladder dash.Ladder
	// Alpha is the objective weight (Section V-A: 0.5). It may be
	// swapped mid-run (the alpha-sweep ablation does); every other
	// field is assumed fixed after the Env's first use, because the
	// memoized per-trace artifacts depend on them.
	Alpha float64

	mu       sync.Mutex
	traces   []*trace.Trace
	comp     *Comparison
	inflight *inflightComparison
	compRuns int // full evaluations actually executed (test hook)

	// artifacts memoizes per-trace derived state (manifest, base
	// energy, planner observations, optimal plans) keyed by trace
	// pointer, so the ablations and extended experiments stop
	// recomputing what the headline comparison already derived.
	// Pointer keys keep re-seeded campaign traces (which reuse the
	// Table V IDs) from colliding with the cached originals.
	artifacts map[*trace.Trace]*traceArtifacts
}

// inflightComparison carries one in-progress full evaluation so that
// concurrent Comparison callers share it instead of racing to compute
// their own (singleflight).
type inflightComparison struct {
	done chan struct{} // closed when comp/err are set
	comp *Comparison
	err  error
}

// traceArtifacts caches what the evaluation derives per trace.
type traceArtifacts struct {
	man      *dash.Manifest
	baseJ    float64
	tasks    []core.TaskObservation
	plans    map[float64]core.Plan // keyed by objective alpha
	compiled *trace.Compiled       // shared immutable compiled form
}

// NewEnv returns the paper's evaluation environment.
func NewEnv() *Env {
	return &Env{
		Power:     power.Default(),
		EvalPower: power.EvalModel(),
		QoE:       qoe.Default(),
		Ladder:    dash.EvalLadder(),
		Alpha:     core.DefaultAlpha,
	}
}

// Traces returns the five Table V traces, generating them on first
// use.
func (e *Env) Traces() ([]*trace.Trace, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.traces == nil {
		ts, err := trace.GenerateTableV(e.EvalPower.NominalThroughputMBps)
		if err != nil {
			return nil, err
		}
		e.traces = ts
	}
	return e.traces, nil
}

// AlgorithmNames orders the compared approaches as the paper's figures
// do.
var AlgorithmNames = []string{"Youtube", "FESTIVE", "BBA", "Ours", "Optimal"}

// TraceResult holds one trace's five-algorithm outcomes.
type TraceResult struct {
	// Trace is the replayed session context.
	Trace *trace.Trace
	// BaseJ is the Section V-B base energy.
	BaseJ float64
	// ByAlgorithm maps algorithm name to its session metrics.
	ByAlgorithm map[string]*sim.Metrics
}

// Metrics returns the named algorithm's session metrics, or a
// descriptive error when the comparison never ran that algorithm —
// instead of the nil-map-deref panic a direct ByAlgorithm lookup
// would produce.
func (r TraceResult) Metrics(name string) (*sim.Metrics, error) {
	m, ok := r.ByAlgorithm[name]
	if !ok || m == nil {
		return nil, fmt.Errorf("eval: trace %d has no metrics for algorithm %q (have %s)",
			r.Trace.ID, name, strings.Join(AlgorithmNames, ", "))
	}
	return m, nil
}

// Comparison is the full five-trace, five-algorithm evaluation.
type Comparison struct {
	// Results is ordered by trace ID.
	Results []TraceResult
}

// Comparison runs (or returns the cached) full evaluation. Concurrent
// callers share a single computation: the first caller computes, the
// rest wait on it and receive the same result (or the same error). A
// failed computation is not cached, so a later call retries.
func (e *Env) Comparison() (*Comparison, error) {
	e.mu.Lock()
	if e.comp != nil {
		c := e.comp
		e.mu.Unlock()
		return c, nil
	}
	if in := e.inflight; in != nil {
		e.mu.Unlock()
		<-in.done
		return in.comp, in.err
	}
	in := &inflightComparison{done: make(chan struct{})}
	e.inflight = in
	e.compRuns++
	e.mu.Unlock()

	in.comp, in.err = e.computeComparison()

	e.mu.Lock()
	e.inflight = nil
	if in.err == nil {
		e.comp = in.comp
	}
	e.mu.Unlock()
	close(in.done)
	return in.comp, in.err
}

// computeComparison runs the full five-trace, five-algorithm
// evaluation. The sessions are independent trace replays, so the work
// fans out over a bounded pool in two waves: per-trace artifact
// derivation (manifest, base energy, task observations, optimal
// plan), then one unit per trace × algorithm session. Results land in
// slots indexed by (trace, algorithm), so assembly — ordered by trace
// ID, with per-trace aggregation untouched — is deterministic and the
// output matches the sequential evaluation byte for byte.
func (e *Env) computeComparison() (*Comparison, error) {
	traces, err := e.Traces()
	if err != nil {
		return nil, err
	}
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return nil, err
	}

	// Wave 1: derive per-trace artifacts.
	arts := make([]*traceArtifacts, len(traces))
	if err := runUnits(len(traces), func(ti int) error {
		a, err := e.artifactsFor(traces[ti])
		if err != nil {
			return err
		}
		if _, err := e.optimalPlanLocked(traces[ti], a, obj); err != nil {
			return err
		}
		arts[ti] = a
		return nil
	}); err != nil {
		return nil, err
	}

	// Wave 2: one unit per trace × algorithm session.
	builders := []func(ti int) (abr.Algorithm, error){
		func(int) (abr.Algorithm, error) { return abr.NewYoutube(), nil },
		func(int) (abr.Algorithm, error) { return abr.NewFESTIVE(), nil },
		func(int) (abr.Algorithm, error) { return abr.NewBBA() },
		func(int) (abr.Algorithm, error) { return core.NewOnline(obj), nil },
		func(ti int) (abr.Algorithm, error) {
			plan, err := e.optimalPlanLocked(traces[ti], arts[ti], obj)
			if err != nil {
				return nil, err
			}
			return core.NewPlannedAlgorithm("Optimal", plan), nil
		},
	}
	metrics := make([]*sim.Metrics, len(traces)*len(builders))
	if err := runUnits(len(metrics), func(unit int) error {
		ti, ai := unit/len(builders), unit%len(builders)
		tr := traces[ti]
		alg, err := builders[ai](ti)
		if err != nil {
			return err
		}
		m, err := sim.RunOnTrace(tr, arts[ti].man, alg, e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
		if err != nil {
			return fmt.Errorf("eval: trace %d %s: %w", tr.ID, alg.Name(), err)
		}
		metrics[unit] = m
		return nil
	}); err != nil {
		return nil, err
	}

	comp := &Comparison{}
	for ti, tr := range traces {
		res := TraceResult{Trace: tr, BaseJ: arts[ti].baseJ, ByAlgorithm: make(map[string]*sim.Metrics, len(AlgorithmNames))}
		for ai, name := range AlgorithmNames {
			res.ByAlgorithm[name] = metrics[ti*len(builders)+ai]
		}
		comp.Results = append(comp.Results, res)
	}
	return comp, nil
}

// artifactsFor returns (computing and memoizing on first use) the
// trace's derived evaluation state. Artifacts are keyed by trace
// pointer and depend on the Env's ladder and models, which must not
// change after first use.
func (e *Env) artifactsFor(tr *trace.Trace) (*traceArtifacts, error) {
	e.mu.Lock()
	if a, ok := e.artifacts[tr]; ok {
		e.mu.Unlock()
		return a, nil
	}
	e.mu.Unlock()

	// Compile first: it validates the trace once and every downstream
	// artifact (base-energy replay, task observation, ablation/sweep
	// sessions) shares the one compiled form via the trace's memo.
	comp, err := tr.Compiled()
	if err != nil {
		return nil, fmt.Errorf("eval: trace %d compile: %w", tr.ID, err)
	}
	man, err := sim.ManifestForTrace(tr, e.Ladder)
	if err != nil {
		return nil, fmt.Errorf("eval: trace %d manifest: %w", tr.ID, err)
	}
	baseJ, err := sim.BaseEnergyJ(tr, man, e.EvalPower, e.QoE)
	if err != nil {
		return nil, fmt.Errorf("eval: trace %d base energy: %w", tr.ID, err)
	}
	tasks, err := core.ObserveTasks(tr, man, player.DefaultBufferThresholdSec, 6)
	if err != nil {
		return nil, fmt.Errorf("eval: trace %d tasks: %w", tr.ID, err)
	}
	a := &traceArtifacts{man: man, baseJ: baseJ, tasks: tasks, plans: make(map[float64]core.Plan), compiled: comp}

	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := e.artifacts[tr]; ok { // lost a benign compute race
		return cached, nil
	}
	if e.artifacts == nil {
		e.artifacts = make(map[*trace.Trace]*traceArtifacts)
	}
	e.artifacts[tr] = a
	return a, nil
}

// optimalPlanLocked returns the trace's memoized optimal plan for the
// objective's alpha, computing it on first use.
func (e *Env) optimalPlanLocked(tr *trace.Trace, a *traceArtifacts, obj core.Objective) (core.Plan, error) {
	e.mu.Lock()
	if plan, ok := a.plans[obj.Alpha]; ok {
		e.mu.Unlock()
		return plan, nil
	}
	e.mu.Unlock()

	plan, err := core.PlanOptimal(obj, e.Ladder, a.tasks)
	if err != nil {
		return core.Plan{}, fmt.Errorf("eval: trace %d plan: %w", tr.ID, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cached, ok := a.plans[obj.Alpha]; ok {
		return cached, nil
	}
	a.plans[obj.Alpha] = plan
	return plan, nil
}

// Manifest returns the trace's memoized evaluation manifest.
func (e *Env) Manifest(tr *trace.Trace) (*dash.Manifest, error) {
	a, err := e.artifactsFor(tr)
	if err != nil {
		return nil, err
	}
	return a.man, nil
}

// BaseEnergy returns the trace's memoized Section V-B base energy.
func (e *Env) BaseEnergy(tr *trace.Trace) (float64, error) {
	a, err := e.artifactsFor(tr)
	if err != nil {
		return 0, err
	}
	return a.baseJ, nil
}

// Tasks returns the trace's memoized planner observations. The shared
// slice must not be mutated.
func (e *Env) Tasks(tr *trace.Trace) ([]core.TaskObservation, error) {
	a, err := e.artifactsFor(tr)
	if err != nil {
		return nil, err
	}
	return a.tasks, nil
}

// OptimalPlan returns the trace's memoized optimal plan at the given
// objective weight.
func (e *Env) OptimalPlan(tr *trace.Trace, alpha float64) (core.Plan, error) {
	a, err := e.artifactsFor(tr)
	if err != nil {
		return core.Plan{}, err
	}
	obj, err := core.NewObjective(alpha, e.EvalPower, e.QoE)
	if err != nil {
		return core.Plan{}, err
	}
	return e.optimalPlanLocked(tr, a, obj)
}

// Savings aggregates one algorithm's average whole-phone and
// extra-energy savings versus YouTube across the traces.
func (c *Comparison) Savings(name string) (whole, extra float64) {
	var n float64
	for _, r := range c.Results {
		yt := r.ByAlgorithm["Youtube"]
		m := r.ByAlgorithm[name]
		if yt == nil || m == nil {
			continue
		}
		whole += 1 - m.TotalJ()/yt.TotalJ()
		if ytExtra := yt.TotalJ() - r.BaseJ; ytExtra > 0 {
			extra += 1 - m.ExtraJ(r.BaseJ)/ytExtra
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return whole / n, extra / n
}

// QoEDegradation aggregates one algorithm's average QoE loss versus
// YouTube across the traces.
func (c *Comparison) QoEDegradation(name string) float64 {
	var sum, n float64
	for _, r := range c.Results {
		yt := r.ByAlgorithm["Youtube"]
		m := r.ByAlgorithm[name]
		if yt == nil || m == nil || yt.MeanQoE <= 0 {
			continue
		}
		sum += 1 - m.MeanQoE/yt.MeanQoE
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// AverageQoE aggregates one algorithm's mean QoE across the traces.
func (c *Comparison) AverageQoE(name string) float64 {
	var sum, n float64
	for _, r := range c.Results {
		if m := r.ByAlgorithm[name]; m != nil {
			sum += m.MeanQoE
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
