package eval

import (
	"fmt"
	"sync"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

// Env is the shared experiment environment: calibrated models, the
// evaluation ladder, and lazily generated Table V traces with cached
// per-algorithm session results (the Fig. 5-7 experiments all consume
// the same five-trace comparison).
type Env struct {
	// Power is the Table VI calibration (validation experiments).
	Power power.Model
	// EvalPower is the trace-evaluation phone (Figs. 5-7).
	EvalPower power.Model
	// QoE is the Table III model.
	QoE qoe.Model
	// Ladder is the fourteen-rung Section V-A ladder.
	Ladder dash.Ladder
	// Alpha is the objective weight (Section V-A: 0.5).
	Alpha float64

	mu     sync.Mutex
	traces []*trace.Trace
	comp   *Comparison
}

// NewEnv returns the paper's evaluation environment.
func NewEnv() *Env {
	return &Env{
		Power:     power.Default(),
		EvalPower: power.EvalModel(),
		QoE:       qoe.Default(),
		Ladder:    dash.EvalLadder(),
		Alpha:     core.DefaultAlpha,
	}
}

// Traces returns the five Table V traces, generating them on first
// use.
func (e *Env) Traces() ([]*trace.Trace, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.traces == nil {
		ts, err := trace.GenerateTableV(e.EvalPower.NominalThroughputMBps)
		if err != nil {
			return nil, err
		}
		e.traces = ts
	}
	return e.traces, nil
}

// AlgorithmNames orders the compared approaches as the paper's figures
// do.
var AlgorithmNames = []string{"Youtube", "FESTIVE", "BBA", "Ours", "Optimal"}

// TraceResult holds one trace's five-algorithm outcomes.
type TraceResult struct {
	// Trace is the replayed session context.
	Trace *trace.Trace
	// BaseJ is the Section V-B base energy.
	BaseJ float64
	// ByAlgorithm maps algorithm name to its session metrics.
	ByAlgorithm map[string]*sim.Metrics
}

// Comparison is the full five-trace, five-algorithm evaluation.
type Comparison struct {
	// Results is ordered by trace ID.
	Results []TraceResult
}

// Comparison runs (or returns the cached) full evaluation.
func (e *Env) Comparison() (*Comparison, error) {
	e.mu.Lock()
	if e.comp != nil {
		defer e.mu.Unlock()
		return e.comp, nil
	}
	e.mu.Unlock()

	traces, err := e.Traces()
	if err != nil {
		return nil, err
	}
	obj, err := core.NewObjective(e.Alpha, e.EvalPower, e.QoE)
	if err != nil {
		return nil, err
	}
	comp := &Comparison{}
	for _, tr := range traces {
		man, err := sim.ManifestForTrace(tr, e.Ladder)
		if err != nil {
			return nil, fmt.Errorf("eval: trace %d manifest: %w", tr.ID, err)
		}
		baseJ, err := sim.BaseEnergyJ(tr, man, e.EvalPower, e.QoE)
		if err != nil {
			return nil, fmt.Errorf("eval: trace %d base energy: %w", tr.ID, err)
		}
		bba, err := abr.NewBBA()
		if err != nil {
			return nil, err
		}
		tasks, err := core.ObserveTasks(tr, man, player.DefaultBufferThresholdSec, 6)
		if err != nil {
			return nil, fmt.Errorf("eval: trace %d tasks: %w", tr.ID, err)
		}
		plan, err := core.PlanOptimal(obj, e.Ladder, tasks)
		if err != nil {
			return nil, fmt.Errorf("eval: trace %d plan: %w", tr.ID, err)
		}
		algs := []abr.Algorithm{
			abr.NewYoutube(),
			abr.NewFESTIVE(),
			bba,
			core.NewOnline(obj),
			core.NewPlannedAlgorithm("Optimal", plan),
		}
		res := TraceResult{Trace: tr, BaseJ: baseJ, ByAlgorithm: make(map[string]*sim.Metrics, len(algs))}
		for _, a := range algs {
			m, err := sim.RunOnTrace(tr, man, a, e.EvalPower, e.QoE, player.DefaultBufferThresholdSec)
			if err != nil {
				return nil, fmt.Errorf("eval: trace %d %s: %w", tr.ID, a.Name(), err)
			}
			res.ByAlgorithm[a.Name()] = m
		}
		comp.Results = append(comp.Results, res)
	}

	e.mu.Lock()
	e.comp = comp
	e.mu.Unlock()
	return comp, nil
}

// Savings aggregates one algorithm's average whole-phone and
// extra-energy savings versus YouTube across the traces.
func (c *Comparison) Savings(name string) (whole, extra float64) {
	var n float64
	for _, r := range c.Results {
		yt := r.ByAlgorithm["Youtube"]
		m := r.ByAlgorithm[name]
		if yt == nil || m == nil {
			continue
		}
		whole += 1 - m.TotalJ()/yt.TotalJ()
		if ytExtra := yt.TotalJ() - r.BaseJ; ytExtra > 0 {
			extra += 1 - m.ExtraJ(r.BaseJ)/ytExtra
		}
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return whole / n, extra / n
}

// QoEDegradation aggregates one algorithm's average QoE loss versus
// YouTube across the traces.
func (c *Comparison) QoEDegradation(name string) float64 {
	var sum, n float64
	for _, r := range c.Results {
		yt := r.ByAlgorithm["Youtube"]
		m := r.ByAlgorithm[name]
		if yt == nil || m == nil || yt.MeanQoE <= 0 {
			continue
		}
		sum += 1 - m.MeanQoE/yt.MeanQoE
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// AverageQoE aggregates one algorithm's mean QoE across the traces.
func (c *Comparison) AverageQoE(name string) float64 {
	var sum, n float64
	for _, r := range c.Results {
		if m := r.ByAlgorithm[name]; m != nil {
			sum += m.MeanQoE
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
