package eval

import (
	"fmt"
	"sort"
)

// Runner produces one experiment's report.
type Runner func(*Env) (*Table, error)

// Experiment pairs an identifier with its runner and a short label.
type Experiment struct {
	// ID is the registry key ("fig5a").
	ID string
	// Label describes the experiment for listings.
	Label string
	// Run produces the report.
	Run Runner
}

// Registry returns every experiment, ordered as the paper presents
// them (figures/tables first, then ablations).
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1a", Label: "energy vs. signal strength (Fig. 1a)", Run: (*Env).Fig1a},
		{ID: "fig1b", Label: "QoE/energy vs. bitrate per context (Fig. 1b)", Run: (*Env).Fig1b},
		{ID: "fig2a", Label: "video SI/TI catalog (Fig. 2a)", Run: (*Env).Fig2a},
		{ID: "fig2b", Label: "rate-quality curve fit (Fig. 2b)", Run: (*Env).Fig2b},
		{ID: "fig2c", Label: "vibration impairment surface fit (Fig. 2c)", Run: (*Env).Fig2c},
		{ID: "tab2", Label: "resolution/bitrate ladder (Table II)", Run: (*Env).Table2},
		{ID: "tab3", Label: "QoE model coefficients (Table III)", Run: (*Env).Table3},
		{ID: "tab5", Label: "evaluation traces (Table V)", Run: (*Env).Table5},
		{ID: "tab6", Label: "power model validation (Table VI)", Run: (*Env).Table6},
		{ID: "fig5a", Label: "energy per trace (Fig. 5a)", Run: (*Env).Fig5a},
		{ID: "fig5b", Label: "energy saving vs. Youtube (Fig. 5b)", Run: (*Env).Fig5b},
		{ID: "fig5c", Label: "base vs. extra energy, trace 1 (Fig. 5c)", Run: (*Env).Fig5c},
		{ID: "fig6a", Label: "QoE per trace (Fig. 6a)", Run: (*Env).Fig6a},
		{ID: "fig6b", Label: "average QoE (Fig. 6b)", Run: (*Env).Fig6b},
		{ID: "fig6c", Label: "QoE degradation (Fig. 6c)", Run: (*Env).Fig6c},
		{ID: "fig7", Label: "saving/degradation ratio (Fig. 7)", Run: (*Env).Fig7},
		{ID: "abl-alpha", Label: "ablation: alpha sweep", Run: (*Env).AblationAlphaSweep},
		{ID: "abl-context", Label: "ablation: context-awareness off", Run: (*Env).AblationNoContext},
		{ID: "abl-gradual", Label: "ablation: gradual switching", Run: (*Env).AblationNoGradualSwitch},
		{ID: "abl-estimator", Label: "ablation: bandwidth estimators", Run: (*Env).AblationEstimators},
		{ID: "abl-window", Label: "ablation: vibration window", Run: (*Env).AblationVibrationWindow},
		{ID: "abl-tail", Label: "ablation: LTE tail energy vs. pacing hysteresis", Run: (*Env).AblationTailEnergy},
		{ID: "abl-abandon", Label: "ablation: buffer depth vs. wasted download under early quits", Run: (*Env).AblationAbandonment},
		{ID: "abl-segdur", Label: "ablation: segment duration under a TCP ramp", Run: (*Env).AblationSegmentDuration},
		{ID: "ext-baselines", Label: "extended comparison: BOLA and RobustMPC", Run: (*Env).ExtendedBaselines},
		{ID: "ext-learned", Label: "extended comparison: tabular Q-learning agent", Run: (*Env).ExtendedLearned},
		{ID: "ext-brightness", Label: "extended: joint rate-and-brightness adaptation", Run: (*Env).ExtendedBrightness},
		{ID: "ext-fairness", Label: "extended: shared-bottleneck fairness", Run: (*Env).ExtendedFairness},
		{ID: "ext-robustness", Label: "extended: headline savings across re-seeded campaigns", Run: (*Env).ExtendedRobustness},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, ex := range Registry() {
		if ex.ID == id {
			return ex, nil
		}
	}
	ids := make([]string, 0, len(Registry()))
	for _, ex := range Registry() {
		ids = append(ids, ex.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("eval: unknown experiment %q (known: %v)", id, ids)
}
