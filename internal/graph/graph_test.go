package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, g *Graph, u, v int, w float64) {
	t.Helper()
	if err := g.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(-1, 0, 1); !errors.Is(err, ErrBadNode) {
		t.Errorf("err = %v, want ErrBadNode", err)
	}
	if err := g.AddEdge(0, 2, 1); !errors.Is(err, ErrBadNode) {
		t.Errorf("err = %v, want ErrBadNode", err)
	}
	if g.Edges(5) != nil {
		t.Error("Edges out of range should be nil")
	}
	if New(-3).Len() != 0 {
		t.Error("negative size should clamp to 0")
	}
}

func TestDijkstraSimple(t *testing.T) {
	//      1
	//  0 -----> 1
	//  |        |
	//  4        1
	//  v        v
	//  2 <----- 3   (3->2 weight 1), plus 0->3 weight 5
	g := New(4)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 3, 1)
	mustAdd(t, g, 0, 2, 4)
	mustAdd(t, g, 3, 2, 1)
	mustAdd(t, g, 0, 3, 5)
	dist, prev, err := g.Dijkstra(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3, 2}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	path, err := PathTo(prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []int{0, 1, 3, 2}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 0, 1, 1)
	dist, prev, err := g.Dijkstra(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[2], 1) {
		t.Errorf("dist[2] = %v, want +Inf", dist[2])
	}
	if prev[2] != -1 {
		t.Errorf("prev[2] = %v, want -1", prev[2])
	}
}

func TestDijkstraRejectsNegative(t *testing.T) {
	g := New(2)
	mustAdd(t, g, 0, 1, -1)
	if _, _, err := g.Dijkstra(0); !errors.Is(err, ErrNegativeWeight) {
		t.Errorf("err = %v, want ErrNegativeWeight", err)
	}
}

func TestDijkstraBadSource(t *testing.T) {
	g := New(2)
	if _, _, err := g.Dijkstra(7); !errors.Is(err, ErrBadNode) {
		t.Errorf("err = %v, want ErrBadNode", err)
	}
}

func TestShortestPathDAGNegativeWeights(t *testing.T) {
	// DAG with a negative edge: DP must handle it.
	g := New(4)
	mustAdd(t, g, 0, 1, 2)
	mustAdd(t, g, 0, 2, 1)
	mustAdd(t, g, 1, 3, -3)
	mustAdd(t, g, 2, 3, 1)
	dist, prev, err := g.ShortestPathDAG(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != -1 {
		t.Errorf("dist[3] = %v, want -1 (via negative edge)", dist[3])
	}
	path, err := PathTo(prev, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("path = %v, want [0 1 3]", path)
	}
}

func TestShortestPathDAGRejectsBackEdge(t *testing.T) {
	g := New(3)
	mustAdd(t, g, 1, 0, 1)
	if _, _, err := g.ShortestPathDAG(1); err == nil {
		t.Error("back edge accepted")
	}
	if _, _, err := g.ShortestPathDAG(9); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad src err = %v, want ErrBadNode", err)
	}
}

func TestPathToErrors(t *testing.T) {
	if _, err := PathTo([]int{-1}, 3); !errors.Is(err, ErrBadNode) {
		t.Errorf("err = %v, want ErrBadNode", err)
	}
	// A predecessor cycle must be detected, not loop forever.
	if _, err := PathTo([]int{1, 0}, 0); err == nil {
		t.Error("cycle not detected")
	}
}

// Dijkstra and the DAG DP agree on random layered DAGs with
// non-negative weights (the planner's exact graph shape).
func TestDijkstraMatchesDAGDP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(layersRaw, optsRaw uint8) bool {
		layers := int(layersRaw%6) + 2
		opts := int(optsRaw%4) + 1
		// Nodes: 0 = source, then layers x opts, then sink.
		n := 2 + layers*opts
		g := New(n)
		node := func(layer, opt int) int { return 1 + layer*opts + opt }
		for o := 0; o < opts; o++ {
			if g.AddEdge(0, node(0, o), rng.Float64()*5) != nil {
				return false
			}
		}
		for l := 0; l+1 < layers; l++ {
			for a := 0; a < opts; a++ {
				for b := 0; b < opts; b++ {
					if g.AddEdge(node(l, a), node(l+1, b), rng.Float64()*5) != nil {
						return false
					}
				}
			}
		}
		for o := 0; o < opts; o++ {
			if g.AddEdge(node(layers-1, o), n-1, 0) != nil {
				return false
			}
		}
		d1, _, err1 := g.Dijkstra(0)
		d2, _, err2 := g.ShortestPathDAG(0)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range d1 {
			if math.IsInf(d1[i], 1) != math.IsInf(d2[i], 1) {
				return false
			}
			if !math.IsInf(d1[i], 1) && math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Cross-check against brute-force enumeration on tiny layered DAGs.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const layers, opts = 4, 3
	for trial := 0; trial < 20; trial++ {
		n := 2 + layers*opts
		g := New(n)
		node := func(l, o int) int { return 1 + l*opts + o }
		w0 := make([]float64, opts)
		w := make([][][]float64, layers-1)
		for o := 0; o < opts; o++ {
			w0[o] = rng.Float64() * 3
			mustAdd(t, g, 0, node(0, o), w0[o])
		}
		for l := range w {
			w[l] = make([][]float64, opts)
			for a := 0; a < opts; a++ {
				w[l][a] = make([]float64, opts)
				for b := 0; b < opts; b++ {
					w[l][a][b] = rng.Float64() * 3
					mustAdd(t, g, node(l, a), node(l+1, b), w[l][a][b])
				}
			}
		}
		for o := 0; o < opts; o++ {
			mustAdd(t, g, node(layers-1, o), n-1, 0)
		}
		dist, _, err := g.Dijkstra(0)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: enumerate all opts^layers sequences.
		best := math.Inf(1)
		var enumerate func(layer, prevOpt int, cost float64)
		enumerate = func(layer, prevOpt int, cost float64) {
			if layer == layers {
				if cost < best {
					best = cost
				}
				return
			}
			for o := 0; o < opts; o++ {
				c := cost
				if layer == 0 {
					c += w0[o]
				} else {
					c += w[layer-1][prevOpt][o]
				}
				enumerate(layer+1, o, c)
			}
		}
		enumerate(0, -1, 0)
		if math.Abs(dist[n-1]-best) > 1e-9 {
			t.Fatalf("trial %d: Dijkstra %v != brute force %v", trial, dist[n-1], best)
		}
	}
}

func TestReserve(t *testing.T) {
	g := New(3)
	g.Reserve(0, 8)
	for i := 0; i < 8; i++ {
		if err := g.AddEdge(0, 1, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.Edges(0)); got != 8 {
		t.Errorf("edges = %d, want 8", got)
	}
	// Reserving below current capacity or out of range is a no-op.
	g.Reserve(0, 1)
	g.Reserve(-1, 4)
	g.Reserve(99, 4)
	if got := len(g.Edges(0)); got != 8 {
		t.Errorf("edges after no-op reserves = %d, want 8", got)
	}
}
