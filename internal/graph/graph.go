// Package graph implements the shortest-path machinery behind the
// paper's optimal bitrate planner (Section IV-A): a directed graph with
// binary-heap Dijkstra, and a topological-order DP for DAGs whose edges
// only go from lower- to higher-numbered nodes (the task-layered graph
// of Fig. 4 has exactly that structure). The two solvers cross-check
// each other in tests; Dijkstra additionally requires non-negative
// weights, which the planner guarantees by shifting edge costs.
package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Edge is a weighted directed edge.
type Edge struct {
	// To is the destination node.
	To int
	// Weight is the edge cost.
	Weight float64
}

// Graph is a directed graph over nodes 0..N-1.
//
// Construct with New; the zero value is unusable.
type Graph struct {
	adj [][]Edge
}

// Errors returned by graph construction and queries.
var (
	ErrBadNode        = errors.New("graph: node out of range")
	ErrNegativeWeight = errors.New("graph: negative edge weight")
	ErrNoPath         = errors.New("graph: no path")
)

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.adj) }

// Reserve grows node u's adjacency list capacity to hold at least n
// edges, so a caller that knows the out-degree up front (the planner's
// layered verify graph does) avoids append's incremental reallocation.
// Out-of-range nodes are ignored.
func (g *Graph) Reserve(u, n int) {
	if u < 0 || u >= len(g.adj) || n <= cap(g.adj[u]) {
		return
	}
	edges := make([]Edge, len(g.adj[u]), n)
	copy(edges, g.adj[u])
	g.adj[u] = edges
}

// AddEdge adds a directed edge u -> v with the given weight.
func (g *Graph) AddEdge(u, v int, weight float64) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("%w: %d -> %d of %d", ErrBadNode, u, v, len(g.adj))
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: weight})
	return nil
}

// Edges returns node u's outgoing edges (shared slice; do not modify).
func (g *Graph) Edges(u int) []Edge {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	return g.adj[u]
}

// item is a priority-queue entry.
type item struct {
	node int
	dist float64
}

// pq is a min-heap on dist.
type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths from src. All edge
// weights must be non-negative. It returns per-node distances
// (math.Inf(1) when unreachable) and predecessors (-1 when none).
func (g *Graph) Dijkstra(src int) (dist []float64, prev []int, err error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, nil, fmt.Errorf("%w: src %d", ErrBadNode, src)
	}
	for u, edges := range g.adj {
		for _, e := range edges {
			if e.Weight < 0 {
				return nil, nil, fmt.Errorf("%w: %d -> %d (%v)", ErrNegativeWeight, u, e.To, e.Weight)
			}
		}
	}
	dist = make([]float64, n)
	prev = make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it, ok := heap.Pop(q).(item)
		if !ok {
			return nil, nil, errors.New("graph: internal heap corruption")
		}
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, item{node: e.To, dist: nd})
			}
		}
	}
	return dist, prev, nil
}

// ShortestPathDAG computes single-source shortest paths from src by a
// topological-order DP, valid when every edge goes from a lower- to a
// higher-numbered node (returns an error otherwise). Negative weights
// are allowed.
func (g *Graph) ShortestPathDAG(src int) (dist []float64, prev []int, err error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, nil, fmt.Errorf("%w: src %d", ErrBadNode, src)
	}
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	for u := 0; u < n; u++ {
		if math.IsInf(dist[u], 1) {
			continue
		}
		for _, e := range g.adj[u] {
			if e.To <= u {
				return nil, nil, fmt.Errorf("graph: edge %d -> %d violates topological numbering", u, e.To)
			}
			if nd := dist[u] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = u
			}
		}
	}
	return dist, prev, nil
}

// PathTo reconstructs the path ending at dst from a predecessor array.
func PathTo(prev []int, dst int) ([]int, error) {
	if dst < 0 || dst >= len(prev) {
		return nil, fmt.Errorf("%w: dst %d", ErrBadNode, dst)
	}
	var rev []int
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if len(rev) > len(prev) {
			return nil, errors.New("graph: predecessor cycle")
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
