package qoe

import (
	"errors"
	"math"
)

// SessionModel aggregates per-segment QoE values into a single session
// score the way parametric standards (e.g. ITU-T P.1203) do: a
// recency-weighted mean (viewers remember the end of a session more
// than its middle), a penalty for the initial join delay, and a
// penalty for the variance of segment quality (oscillation annoys even
// when the mean is fine).
type SessionModel struct {
	// RecencyHalfLifeSec controls the exponential recency weighting:
	// a segment this far from the session end carries half the weight
	// of the final segment. Zero disables recency weighting.
	RecencyHalfLifeSec float64
	// StartupPenaltyPerSec is the score loss per second of join delay.
	StartupPenaltyPerSec float64
	// MaxStartupPenalty caps the join-delay loss.
	MaxStartupPenalty float64
	// OscillationPenalty scales the per-segment quality standard
	// deviation's contribution.
	OscillationPenalty float64
}

// DefaultSession returns a session model with standard-flavoured
// weights.
func DefaultSession() SessionModel {
	return SessionModel{
		RecencyHalfLifeSec:   60,
		StartupPenaltyPerSec: 0.1,
		MaxStartupPenalty:    0.5,
		OscillationPenalty:   0.3,
	}
}

// Validate reports whether the model is usable.
func (s SessionModel) Validate() error {
	if s.RecencyHalfLifeSec < 0 || s.StartupPenaltyPerSec < 0 ||
		s.MaxStartupPenalty < 0 || s.OscillationPenalty < 0 {
		return errors.New("qoe: session weights must be non-negative")
	}
	return nil
}

// SegmentScore is one segment's QoE with its playback position.
type SegmentScore struct {
	// StartSec is the segment's position in the session.
	StartSec float64
	// QoE is the segment's Eq. 1 quality.
	QoE float64
}

// ErrNoSegments is returned when scoring an empty session.
var ErrNoSegments = errors.New("qoe: no segments to score")

// Score aggregates segment scores plus the startup delay into a
// session MOS on the five-level scale.
func (s SessionModel) Score(segments []SegmentScore, startupSec float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if len(segments) == 0 {
		return 0, ErrNoSegments
	}
	end := segments[len(segments)-1].StartSec

	var wSum, qSum float64
	for _, seg := range segments {
		w := 1.0
		if s.RecencyHalfLifeSec > 0 {
			age := end - seg.StartSec
			w = math.Exp2(-age / s.RecencyHalfLifeSec)
		}
		wSum += w
		qSum += w * seg.QoE
	}
	mean := qSum / wSum

	// Oscillation: plain (unweighted) standard deviation of quality.
	var varSum float64
	var plainMean float64
	for _, seg := range segments {
		plainMean += seg.QoE
	}
	plainMean /= float64(len(segments))
	for _, seg := range segments {
		d := seg.QoE - plainMean
		varSum += d * d
	}
	osc := math.Sqrt(varSum / float64(len(segments)))

	startupLoss := s.StartupPenaltyPerSec * startupSec
	if startupLoss > s.MaxStartupPenalty {
		startupLoss = s.MaxStartupPenalty
	}

	score := mean - s.OscillationPenalty*osc - startupLoss
	if score < MinQuality {
		return MinQuality, nil
	}
	if score > MaxQuality {
		return MaxQuality, nil
	}
	return score, nil
}
