package qoe

import (
	"errors"
	"testing"
	"testing/quick"
)

func flatSession(q float64, n int) []SegmentScore {
	out := make([]SegmentScore, n)
	for i := range out {
		out[i] = SegmentScore{StartSec: float64(i) * 2, QoE: q}
	}
	return out
}

func TestDefaultSessionValidates(t *testing.T) {
	if err := DefaultSession().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultSession()
	bad.OscillationPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := bad.Score(flatSession(4, 3), 0); err == nil {
		t.Error("Score accepted invalid model")
	}
}

func TestScoreEmptySession(t *testing.T) {
	if _, err := DefaultSession().Score(nil, 0); !errors.Is(err, ErrNoSegments) {
		t.Errorf("err = %v, want ErrNoSegments", err)
	}
}

func TestScoreFlatSessionIsItsQuality(t *testing.T) {
	m := DefaultSession()
	got, err := m.Score(flatSession(3.8, 50), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3.8, 1e-9) {
		t.Errorf("flat session score = %v, want 3.8 (no penalties apply)", got)
	}
}

func TestScoreStartupPenalty(t *testing.T) {
	m := DefaultSession()
	base, err := m.Score(flatSession(4, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := m.Score(flatSession(4, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if delayed >= base {
		t.Error("startup delay did not reduce the score")
	}
	// Cap: a huge delay costs no more than MaxStartupPenalty.
	capped, err := m.Score(flatSession(4, 10), 100)
	if err != nil {
		t.Fatal(err)
	}
	if base-capped > m.MaxStartupPenalty+1e-9 {
		t.Errorf("startup loss %v exceeds the cap %v", base-capped, m.MaxStartupPenalty)
	}
}

func TestScoreOscillationPenalty(t *testing.T) {
	m := DefaultSession()
	m.RecencyHalfLifeSec = 0 // isolate the oscillation term
	flat, err := m.Score(flatSession(3.5, 40), 0)
	if err != nil {
		t.Fatal(err)
	}
	wobble := flatSession(3.5, 40)
	for i := range wobble {
		if i%2 == 0 {
			wobble[i].QoE = 4.0
		} else {
			wobble[i].QoE = 3.0
		}
	}
	wobbly, err := m.Score(wobble, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wobbly >= flat {
		t.Errorf("oscillating session scored %v >= flat %v", wobbly, flat)
	}
}

func TestScoreRecencyWeighting(t *testing.T) {
	m := DefaultSession()
	// Bad start, good end vs good start, bad end: the strong-finish
	// session must score higher.
	n := 60
	badStart := make([]SegmentScore, n)
	badEnd := make([]SegmentScore, n)
	for i := 0; i < n; i++ {
		t := float64(i) * 2
		lowFirst, highLast := 2.0, 4.5
		if i >= n/2 {
			badStart[i] = SegmentScore{StartSec: t, QoE: highLast}
			badEnd[i] = SegmentScore{StartSec: t, QoE: lowFirst}
		} else {
			badStart[i] = SegmentScore{StartSec: t, QoE: lowFirst}
			badEnd[i] = SegmentScore{StartSec: t, QoE: highLast}
		}
	}
	strongFinish, err := m.Score(badStart, 0)
	if err != nil {
		t.Fatal(err)
	}
	weakFinish, err := m.Score(badEnd, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strongFinish <= weakFinish {
		t.Errorf("strong finish %v should beat weak finish %v", strongFinish, weakFinish)
	}
}

// The session score always stays on the five-level scale.
func TestScoreBounded(t *testing.T) {
	m := DefaultSession()
	f := func(qRaw, startupRaw uint8) bool {
		q := 1 + float64(qRaw%40)/10 // 1..5
		segs := flatSession(q, 20)
		// Alternate wildly to maximise oscillation.
		for i := range segs {
			if i%2 == 0 {
				segs[i].QoE = MaxQuality
			} else {
				segs[i].QoE = MinQuality
			}
		}
		got, err := m.Score(segs, float64(startupRaw))
		return err == nil && got >= MinQuality && got <= MaxQuality
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
