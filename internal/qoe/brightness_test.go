package qoe

import (
	"testing"
	"testing/quick"
)

func TestDefaultBrightnessValidates(t *testing.T) {
	if err := DefaultBrightness().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultBrightness()
	bad.MaxImpairment = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative impairment accepted")
	}
	bad = DefaultBrightness()
	bad.DemandFloor = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("demand floor above 1 accepted")
	}
}

func TestBrightnessDemand(t *testing.T) {
	m := DefaultBrightness()
	if got := m.Demand(0); got != m.DemandFloor {
		t.Errorf("Demand(0) = %v, want floor %v", got, m.DemandFloor)
	}
	if got := m.Demand(1); got != 1 {
		t.Errorf("Demand(1) = %v, want 1", got)
	}
	// Clamps.
	if m.Demand(-3) != m.DemandFloor || m.Demand(9) != 1 {
		t.Error("ambient clamps failed")
	}
	// Monotone in ambient.
	if m.Demand(0.3) >= m.Demand(0.8) {
		t.Error("demand not monotone in ambient light")
	}
}

func TestBrightnessImpairment(t *testing.T) {
	m := DefaultBrightness()
	// Meeting or exceeding demand costs nothing.
	if got := m.Impairment(1, 0.5); got != 0 {
		t.Errorf("surplus brightness impairment = %v, want 0", got)
	}
	// Shortfall scales linearly.
	d := m.Demand(1)
	if got, want := m.Impairment(d-0.2, 1), m.MaxImpairment*0.2; !almostEqual(got, want, 1e-12) {
		t.Errorf("impairment = %v, want %v", got, want)
	}
	// Brightness clamps.
	if m.Impairment(2, 1) != 0 {
		t.Error("over-bright not clamped")
	}
	if m.Impairment(-1, 1) <= 0 {
		t.Error("negative brightness not clamped to 0 (max shortfall)")
	}
}

// Impairment is non-negative, bounded by MaxImpairment, and monotone
// non-increasing in brightness.
func TestBrightnessImpairmentProperties(t *testing.T) {
	m := DefaultBrightness()
	f := func(bRaw, aRaw uint8) bool {
		b := float64(bRaw%100) / 100
		a := float64(aRaw%100) / 100
		imp := m.Impairment(b, a)
		if imp < 0 || imp > m.MaxImpairment {
			return false
		}
		return m.Impairment(b+0.1, a) <= imp+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
