package qoe

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Model)
	}{
		{name: "zero c1", mut: func(m *Model) { m.C1 = 0 }},
		{name: "negative c2", mut: func(m *Model) { m.C2 = -1 }},
		{name: "negative switch penalty", mut: func(m *Model) { m.SwitchPenalty = -0.1 }},
		{name: "negative rebuffer penalty", mut: func(m *Model) { m.RebufferPenalty = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Default()
			tt.mut(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted an invalid model")
			}
		})
	}
}

func TestOriginalQualityAnchors(t *testing.T) {
	m := Default()
	// Fig. 2(b) anchors (see DESIGN.md).
	anchors := []struct {
		r, want, tol float64
	}{
		{r: 0.1, want: 1.42, tol: 0.10},
		{r: 0.375, want: 2.13, tol: 0.15},
		{r: 0.75, want: 2.96, tol: 0.12},
		{r: 1.5, want: 3.65, tol: 0.12},
		{r: 3.0, want: 4.21, tol: 0.12},
		{r: 5.8, want: 4.55, tol: 0.12},
	}
	for _, a := range anchors {
		if got := m.OriginalQuality(a.r); !almostEqual(got, a.want, a.tol) {
			t.Errorf("Q0(%v) = %.3f, want %.3f +/- %.2f", a.r, got, a.want, a.tol)
		}
	}
}

func TestOriginalQualityBoundsAndMonotonicity(t *testing.T) {
	m := Default()
	if got := m.OriginalQuality(0); got != MinQuality {
		t.Errorf("Q0(0) = %v, want floor", got)
	}
	if got := m.OriginalQuality(-3); got != MinQuality {
		t.Errorf("Q0(-3) = %v, want floor", got)
	}
	prev := m.OriginalQuality(0.01)
	for r := 0.02; r < 50; r += 0.02 {
		q := m.OriginalQuality(r)
		if q < prev {
			t.Fatalf("Q0 not monotone at r=%v", r)
		}
		if q <= MinQuality || q >= MaxQuality {
			t.Fatalf("Q0(%v) = %v escapes (1, 5)", r, q)
		}
		prev = q
	}
}

// Property: quality saturates — the marginal gain per Mbps shrinks as r
// grows (diminishing returns, the core premise of Fig. 1b).
func TestOriginalQualityDiminishingReturns(t *testing.T) {
	m := Default()
	g1 := m.OriginalQuality(1.5) - m.OriginalQuality(0.75)
	g2 := m.OriginalQuality(5.8) - m.OriginalQuality(5.05)
	if g2 >= g1 {
		t.Errorf("marginal gain did not shrink: low=%v high=%v", g1, g2)
	}
}

func TestImpairmentAnchors(t *testing.T) {
	m := Default()
	// The four anchor values quoted in the paper's prose (Fig. 2c).
	anchors := []struct {
		r, v, want float64
	}{
		{r: 1.5, v: 2, want: 0.049},
		{r: 1.5, v: 6, want: 0.184},
		{r: 5.8, v: 2, want: 0.174},
		{r: 5.8, v: 6, want: 0.549},
	}
	for _, a := range anchors {
		if got := m.Impairment(a.r, a.v); !almostEqual(got, a.want, 1e-3) {
			t.Errorf("I(%v, %v) = %.4f, want %.4f", a.r, a.v, got, a.want)
		}
	}
}

func TestImpairmentEdgeBehaviour(t *testing.T) {
	m := Default()
	if got := m.Impairment(5.8, 0); got != 0 {
		t.Errorf("I(5.8, 0) = %v, want 0 (quiet room)", got)
	}
	if got := m.Impairment(0, 6); got != 0 {
		t.Errorf("I(0, 6) = %v, want 0", got)
	}
	// Very small bitrate + mild vibration: raw surface is negative,
	// clamped to zero — matches the paper's "almost zero" observation.
	if got := m.Impairment(0.1, 1); got != 0 {
		t.Errorf("I(0.1, 1) = %v, want 0 (clamped)", got)
	}
}

// Property: impairment is non-negative, monotone non-decreasing in both
// bitrate and vibration over the operating range, and never pushes
// perceived quality below the floor.
func TestImpairmentProperties(t *testing.T) {
	m := Default()
	f := func(rRaw, vRaw uint16) bool {
		r := float64(rRaw%580)/100 + 0.01 // 0.01 .. 5.81
		v := float64(vRaw % 8)            // 0 .. 7
		imp := m.Impairment(r, v)
		if imp < 0 {
			return false
		}
		if m.PerceivedQuality(r, v) < MinQuality-1e-12 {
			return false
		}
		// Monotonicity in each argument (surface coefficients positive
		// except the clamped offset).
		if m.Impairment(r+0.5, v) < imp-1e-12 {
			return false
		}
		if m.Impairment(r, v+0.5) < imp-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerceivedQualityVehicleVsRoom(t *testing.T) {
	m := Default()
	// Fig. 1(b): dropping 1080p -> 480p loses ~12% QoE in a quiet room
	// but only ~4% QoE net difference between contexts at high rates.
	room1080 := m.PerceivedQuality(5.8, 0)
	room480 := m.PerceivedQuality(1.5, 0)
	veh1080 := m.PerceivedQuality(5.8, 6.5)
	veh480 := m.PerceivedQuality(1.5, 6.5)

	roomDrop := (room1080 - room480) / room1080
	vehDrop := (veh1080 - veh480) / veh1080
	// The paper's Fig. 1(b) annotations (12% room, 4% vehicle) come from
	// the raw motivation study; the fitted model (Figs. 2b/2c anchors)
	// implies ~20% / ~13%. The reproducible shape is that the vehicle
	// drop is clearly smaller than the room drop.
	if vehDrop >= 0.75*roomDrop {
		t.Errorf("QoE drop on vehicle (%.3f) should be clearly smaller than in room (%.3f)", vehDrop, roomDrop)
	}
	if roomDrop < 0.08 || roomDrop > 0.30 {
		t.Errorf("room drop = %.3f, want within [0.08, 0.30]", roomDrop)
	}
}

func TestSegmentQoE(t *testing.T) {
	m := Default()
	base := m.PerceivedQuality(3.0, 2)
	tests := []struct {
		name string
		seg  Segment
		want float64
	}{
		{
			name: "no penalties",
			seg:  Segment{BitrateMbps: 3.0, Vibration: 2},
			want: base,
		},
		{
			name: "first segment has no switch penalty",
			seg:  Segment{BitrateMbps: 3.0, PrevBitrateMbps: 0, Vibration: 2},
			want: base,
		},
		{
			name: "same bitrate has zero switch penalty",
			seg:  Segment{BitrateMbps: 3.0, PrevBitrateMbps: 3.0, Vibration: 2},
			want: base,
		},
		{
			name: "switch penalty applies",
			seg:  Segment{BitrateMbps: 3.0, PrevBitrateMbps: 5.8, Vibration: 2},
			want: base - 0.5*math.Abs(m.OriginalQuality(3.0)-m.OriginalQuality(5.8)),
		},
		{
			name: "rebuffer penalty applies",
			seg:  Segment{BitrateMbps: 3.0, Vibration: 2, RebufferSec: 0.5},
			want: base - 0.5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.SegmentQoE(tt.seg); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("SegmentQoE = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentQoEClamping(t *testing.T) {
	m := Default()
	// Massive stall cannot push QoE below the floor.
	got := m.SegmentQoE(Segment{BitrateMbps: 0.1, Vibration: 7, RebufferSec: 100})
	if got != MinQuality {
		t.Errorf("SegmentQoE with huge stall = %v, want floor", got)
	}
}

func TestScaleTransformRoundTrip(t *testing.T) {
	tests := []struct{ q9, q5 float64 }{
		{q9: 1, q5: 1},
		{q9: 9, q5: 5},
		{q9: 5, q5: 3},
	}
	for _, tt := range tests {
		if got := Scale9To5(tt.q9); !almostEqual(got, tt.q5, 1e-12) {
			t.Errorf("Scale9To5(%v) = %v, want %v", tt.q9, got, tt.q5)
		}
		if got := Scale5To9(tt.q5); !almostEqual(got, tt.q9, 1e-12) {
			t.Errorf("Scale5To9(%v) = %v, want %v", tt.q5, got, tt.q9)
		}
	}
	f := func(raw uint16) bool {
		q9 := 1 + float64(raw%800)/100 // 1 .. 9
		return almostEqual(Scale5To9(Scale9To5(q9)), q9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRaterTracksModel(t *testing.T) {
	m := Default()
	r := NewRater(m, 0.4, 42)
	// Average many ratings: should approach the model's expectation.
	const n = 4000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Scale9To5(r.Rate(1.5, 4))
	}
	avg := sum / n
	want := m.PerceivedQuality(1.5, 4)
	if !almostEqual(avg, want, 0.05) {
		t.Errorf("mean rating = %.3f, want ≈ %.3f", avg, want)
	}
}

func TestRaterBounds(t *testing.T) {
	r := NewRater(Default(), 5.0, 7) // huge noise to hit the clamps
	for i := 0; i < 1000; i++ {
		q := r.Rate(5.8, 0)
		if q < 1 || q > 9 {
			t.Fatalf("rating %v escapes [1, 9]", q)
		}
	}
	// Negative noise is treated as zero.
	rz := NewRater(Default(), -1, 8)
	q := rz.Rate(1.5, 0)
	want := Scale5To9(Default().PerceivedQuality(1.5, 0))
	if !almostEqual(q, want, 1e-12) {
		t.Errorf("zero-noise rating = %v, want %v", q, want)
	}
}

func TestRaterDeterministicBySeed(t *testing.T) {
	a := NewRater(Default(), 0.3, 99)
	b := NewRater(Default(), 0.3, 99)
	for i := 0; i < 50; i++ {
		if a.Rate(3.0, 2) != b.Rate(3.0, 2) {
			t.Fatal("raters with equal seeds diverged")
		}
	}
}

func TestModelString(t *testing.T) {
	if Default().String() == "" {
		t.Error("String returned empty")
	}
}

// SegmentQoE is monotone non-increasing in vibration at fixed bitrate.
func TestSegmentQoEMonotoneInVibration(t *testing.T) {
	m := Default()
	f := func(rIdx, vRaw uint8) bool {
		rates := []float64{0.375, 0.75, 1.5, 3.0, 5.8}
		r := rates[int(rIdx)%len(rates)]
		v := float64(vRaw % 7)
		lo := m.SegmentQoE(Segment{BitrateMbps: r, Vibration: v})
		hi := m.SegmentQoE(Segment{BitrateMbps: r, Vibration: v + 0.5})
		return hi <= lo+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
