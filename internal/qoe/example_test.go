package qoe_test

import (
	"fmt"

	"ecavs/internal/qoe"
)

// The rate-quality curve saturates: going from 480p to 1080p buys far
// less quality than going from 144p to 480p.
func ExampleModel_OriginalQuality() {
	m := qoe.Default()
	fmt.Printf("Q0(0.1)  = %.2f\n", m.OriginalQuality(0.1))
	fmt.Printf("Q0(1.5)  = %.2f\n", m.OriginalQuality(1.5))
	fmt.Printf("Q0(5.8)  = %.2f\n", m.OriginalQuality(5.8))
	// Output:
	// Q0(0.1)  = 1.42
	// Q0(1.5)  = 3.65
	// Q0(5.8)  = 4.55
}

// Vibration impairs high bitrates the most — the reason streaming 1080p
// on a bus wastes energy.
func ExampleModel_Impairment() {
	m := qoe.Default()
	fmt.Printf("I(1.5, 6) = %.3f\n", m.Impairment(1.5, 6))
	fmt.Printf("I(5.8, 6) = %.3f\n", m.Impairment(5.8, 6))
	// Output:
	// I(1.5, 6) = 0.184
	// I(5.8, 6) = 0.549
}

// The paper converts nine-grade ITU-T P.910 ratings to the five-level
// scale with an affine map.
func ExampleScale9To5() {
	fmt.Printf("%.1f %.1f %.1f\n", qoe.Scale9To5(1), qoe.Scale9To5(5), qoe.Scale9To5(9))
	// Output:
	// 1.0 3.0 5.0
}
