// Package qoe implements the paper's context-aware Quality of
// Experience model (Section III-B): a parametric rate-quality curve for
// the "original" quality perceived in a quiet room (Fig. 2b), a
// bilinear vibration-impairment surface (Fig. 2c), and the per-task QoE
// composition with bitrate-switch and rebuffering penalties (Eq. 1).
//
// The published coefficient table (Table III) lists five values; the
// reconstruction used here is documented in DESIGN.md:
//
//	Q0(r)   = 1 + 4 / (1 + (c2/r)^c1)           c1 = 1.036, c2 = 0.782
//	I(r, v) = max(0, p00 + p10·r + p01·v + p11·r·v)
//
// with the surface fitted exactly through the four anchor values quoted
// in the paper's prose.
package qoe

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Quality bounds of the five-level ITU rating scale the paper maps its
// nine-grade ratings onto.
const (
	// MinQuality is the scale floor ("bad").
	MinQuality = 1.0
	// MaxQuality is the scale ceiling ("excellent").
	MaxQuality = 5.0
)

// Model holds the fitted QoE-model coefficients (paper Table III) plus
// the penalty weights for bitrate switches and rebuffering used by the
// per-task QoE of Eq. 1.
type Model struct {
	// C1, C2 parameterise the rate-quality curve
	// Q0(r) = 1 + 4/(1 + (C2/r)^C1).
	C1, C2 float64
	// P00, P10, P01, P11 parameterise the vibration-impairment surface
	// I(r, v) = max(0, P00 + P10·r + P01·v + P11·r·v).
	P00, P10, P01, P11 float64
	// SwitchPenalty scales the |Q0(r_i) - Q0(r_{i-1})| term.
	SwitchPenalty float64
	// RebufferPenalty is the QoE loss per second of stalling.
	RebufferPenalty float64
}

// Default returns the model with the reconstructed Table III
// coefficients and the evaluation's penalty weights.
func Default() Model {
	return Model{
		C1:              1.036,
		C2:              0.782,
		P00:             -0.0202445,
		P10:             0.00116279,
		P01:             0.01281977,
		P11:             0.01395349,
		SwitchPenalty:   0.5,
		RebufferPenalty: 1.0,
	}
}

// Validate reports whether the model's coefficients are usable.
func (m Model) Validate() error {
	if m.C1 <= 0 || m.C2 <= 0 {
		return errors.New("qoe: curve coefficients must be positive")
	}
	if m.SwitchPenalty < 0 || m.RebufferPenalty < 0 {
		return errors.New("qoe: penalties must be non-negative")
	}
	return nil
}

// OriginalQuality returns Q0(r), the perceived quality of bitrate r
// (Mbps) in a quiet room, on the five-level scale. Non-positive
// bitrates return the scale floor.
func (m Model) OriginalQuality(bitrateMbps float64) float64 {
	if bitrateMbps <= 0 {
		return MinQuality
	}
	return MinQuality + 4/(1+math.Pow(m.C2/bitrateMbps, m.C1))
}

// Impairment returns I(r, v), the QoE reduction caused by watching a
// bitrate-r video at vibration level v (m/s², paper Eq. 5 scale). It is
// clamped so quality can never be pushed below the scale floor.
func (m Model) Impairment(bitrateMbps, vibration float64) float64 {
	if bitrateMbps <= 0 || vibration <= 0 {
		return 0
	}
	raw := m.P00 + m.P10*bitrateMbps + m.P01*vibration + m.P11*bitrateMbps*vibration
	if raw < 0 {
		return 0
	}
	// Impairment cannot take quality below the floor.
	if maxImp := m.OriginalQuality(bitrateMbps) - MinQuality; raw > maxImp {
		return maxImp
	}
	return raw
}

// PerceivedQuality returns Q0(r) - I(r, v): the context-aware quality
// of bitrate r at vibration level v, before switch/rebuffer penalties.
func (m Model) PerceivedQuality(bitrateMbps, vibration float64) float64 {
	return m.OriginalQuality(bitrateMbps) - m.Impairment(bitrateMbps, vibration)
}

// Segment describes one streaming task for QoE purposes.
type Segment struct {
	// BitrateMbps is the encoded bitrate of the downloaded segment.
	BitrateMbps float64
	// PrevBitrateMbps is the bitrate of the previous segment (0 for the
	// first segment: no switch penalty applies).
	PrevBitrateMbps float64
	// Vibration is the vibration level while the segment plays.
	Vibration float64
	// RebufferSec is the stall time attributed to this segment.
	RebufferSec float64
}

// SegmentQoE evaluates the paper's Eq. 1 for one task:
//
//	QoE = Q0(r) - I(r, v) - mu·|Q0(r) - Q0(r_prev)| - lambda·T_rebuf
//
// clamped to the five-level scale.
func (m Model) SegmentQoE(s Segment) float64 {
	q0Prev := 0.0
	if s.PrevBitrateMbps > 0 {
		q0Prev = m.OriginalQuality(s.PrevBitrateMbps)
	}
	return m.SegmentQoEParts(
		m.PerceivedQuality(s.BitrateMbps, s.Vibration),
		m.OriginalQuality(s.BitrateMbps),
		s.PrevBitrateMbps, q0Prev, s.RebufferSec)
}

// SegmentQoEParts evaluates Eq. 1 from pre-computed curve values:
// perceived = PerceivedQuality(r, v), q0 = OriginalQuality(r), and
// q0Prev = OriginalQuality(r_prev) (ignored when prevBitrateMbps <= 0,
// where no switch penalty applies). Given consistent inputs it is
// bit-identical to SegmentQoE; hot loops that score one rung against
// many previous rungs (the optimal planner's DP) use it to hoist the
// transcendental curve evaluations out of the inner loop.
func (m Model) SegmentQoEParts(perceived, q0, prevBitrateMbps, q0Prev, rebufferSec float64) float64 {
	q := perceived
	if prevBitrateMbps > 0 {
		q -= m.SwitchPenalty * math.Abs(q0-q0Prev)
	}
	if rebufferSec > 0 {
		q -= m.RebufferPenalty * rebufferSec
	}
	if q < MinQuality {
		return MinQuality
	}
	if q > MaxQuality {
		return MaxQuality
	}
	return q
}

// String renders the coefficients in Table III's order.
func (m Model) String() string {
	return fmt.Sprintf("c1=%.4f c2=%.4f p00=%.5f p10=%.5f p01=%.5f p11=%.5f mu=%.2f lambda=%.2f",
		m.C1, m.C2, m.P00, m.P10, m.P01, m.P11, m.SwitchPenalty, m.RebufferPenalty)
}

// Scale9To5 converts a nine-grade ITU-T P.910 numerical rating to the
// five-level scale using the paper's transform q5 = 1 + 4·(q9-1)/8.
func Scale9To5(q9 float64) float64 {
	return 1 + 4*(q9-1)/8
}

// Scale5To9 is the inverse of Scale9To5.
func Scale5To9(q5 float64) float64 {
	return 1 + 8*(q5-1)/4
}

// Rater simulates one subject of the paper's IRB quality-assessment
// study: it produces noisy nine-grade ratings whose expectation follows
// the ground-truth model. The fitting pipeline (internal/fit) then
// re-derives Table III from these synthetic ratings.
type Rater struct {
	model Model
	noise float64
	rng   *rand.Rand
}

// NewRater returns a rater backed by the given ground-truth model,
// rating noise standard deviation (on the nine-grade scale), and seed.
func NewRater(model Model, noiseStdDev float64, seed int64) *Rater {
	if noiseStdDev < 0 {
		noiseStdDev = 0
	}
	return &Rater{model: model, noise: noiseStdDev, rng: rand.New(rand.NewSource(seed))}
}

// Rate returns a nine-grade rating for a bitrate-r video watched at
// vibration level v, clamped to [1, 9].
func (r *Rater) Rate(bitrateMbps, vibration float64) float64 {
	q5 := r.model.PerceivedQuality(bitrateMbps, vibration)
	q9 := Scale5To9(q5) + r.rng.NormFloat64()*r.noise
	if q9 < 1 {
		return 1
	}
	if q9 > 9 {
		return 9
	}
	return q9
}
