package qoe

import "errors"

// BrightnessModel scores the legibility impairment of watching at a
// given backlight brightness under a given ambient light level: a dim
// screen outdoors is hard to see, while full backlight in a dark room
// costs energy without helping quality. Ambient light is normalised to
// [0, 1] (0 = dark room, 1 = direct sunlight).
//
// The model follows the rate-and-brightness literature (the paper's
// references [11, 12, 32]): impairment grows linearly with the
// shortfall between the brightness the environment demands and the
// brightness set.
type BrightnessModel struct {
	// MaxImpairment is the QoE loss at the largest possible shortfall.
	MaxImpairment float64
	// DemandFloor is the brightness a dark room still demands
	// (screens are never comfortably watchable at 0).
	DemandFloor float64
}

// DefaultBrightness returns the calibration used by the joint
// rate-and-brightness experiments. The maximum impairment is large: a
// minimum-backlight screen in direct sunlight is close to unwatchable,
// which is what keeps the balanced objective from dimming outdoors.
func DefaultBrightness() BrightnessModel {
	return BrightnessModel{MaxImpairment: 2.5, DemandFloor: 0.25}
}

// Validate reports whether the model is usable.
func (m BrightnessModel) Validate() error {
	if m.MaxImpairment < 0 {
		return errors.New("qoe: max impairment must be non-negative")
	}
	if m.DemandFloor < 0 || m.DemandFloor > 1 {
		return errors.New("qoe: demand floor must be in [0, 1]")
	}
	return nil
}

// Demand returns the brightness the ambient light calls for.
func (m BrightnessModel) Demand(ambient01 float64) float64 {
	if ambient01 < 0 {
		ambient01 = 0
	}
	if ambient01 > 1 {
		ambient01 = 1
	}
	return m.DemandFloor + (1-m.DemandFloor)*ambient01
}

// Impairment returns the QoE loss of setting the given brightness
// under the given ambient light. Brightness at or above the demand
// costs nothing.
func (m BrightnessModel) Impairment(brightness, ambient01 float64) float64 {
	if brightness < 0 {
		brightness = 0
	}
	if brightness > 1 {
		brightness = 1
	}
	shortfall := m.Demand(ambient01) - brightness
	if shortfall <= 0 {
		return 0
	}
	return m.MaxImpairment * shortfall
}
