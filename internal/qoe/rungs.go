package qoe

// RungTable is a per-rung compilation of the Eq. 1 curve terms for a
// fixed bitrate ladder: the rate-quality values Q0(r_j) (each costs a
// math.Pow) and the impairment surface regrouped per rung so that
// I(r_j, v) becomes two multiply-adds in the vibration level. The
// online algorithm scores every rung of every segment and the
// simulator scores the chosen rung once more, so hoisting the
// transcendental curve evaluations into a once-per-session table
// removes them from the per-decision hot path entirely.
//
// Every query is arithmetically bit-identical to the corresponding
// Model method (the operations are regrouped only where Go's
// evaluation order already rounds identically), which is pinned by
// TestRungTableBitIdentical. A RungTable is immutable after
// CompileRungs and safe for concurrent use.
type RungTable struct {
	m        Model
	bitrates []float64
	q0       []float64 // OriginalQuality(r_j)
	impBase  []float64 // P00 + P10*r_j      (the v-independent impairment term)
	impVib   []float64 // P11*r_j            (the r·v cross coefficient)
	maxImp   []float64 // q0_j - MinQuality  (the impairment clamp)
}

// CompileRungs precomputes the per-rung curve table for the given
// ladder bitrates (Mbps). The slice is copied; the table never aliases
// caller memory.
func (m Model) CompileRungs(bitratesMbps []float64) *RungTable {
	k := len(bitratesMbps)
	// One backing array keeps the table at two allocations — sessions
	// that compile per run stay inside the campaign allocation budget.
	backing := make([]float64, 5*k)
	t := &RungTable{
		m:        m,
		bitrates: backing[0*k : 1*k : 1*k],
		q0:       backing[1*k : 2*k : 2*k],
		impBase:  backing[2*k : 3*k : 3*k],
		impVib:   backing[3*k : 4*k : 4*k],
		maxImp:   backing[4*k : 5*k : 5*k],
	}
	for j, r := range bitratesMbps {
		t.bitrates[j] = r
		t.q0[j] = m.OriginalQuality(r)
		t.impBase[j] = m.P00 + m.P10*r
		t.impVib[j] = m.P11 * r
		t.maxImp[j] = t.q0[j] - MinQuality
	}
	return t
}

// Model returns the model the table was compiled from.
func (t *RungTable) Model() Model { return t.m }

// Len returns the number of rungs in the table.
func (t *RungTable) Len() int { return len(t.bitrates) }

// Bitrate returns rung j's encoded bitrate in Mbps.
func (t *RungTable) Bitrate(j int) float64 { return t.bitrates[j] }

// OriginalQuality returns Q0(r_j) from the table.
func (t *RungTable) OriginalQuality(j int) float64 { return t.q0[j] }

// Impairment returns I(r_j, v), bit-identical to Model.Impairment:
// the raw surface value is evaluated as ((P00+P10·r) + P01·v) +
// (P11·r)·v — the exact association Go uses for the written-out
// polynomial — with the first and last parenthesised terms read from
// the table.
func (t *RungTable) Impairment(j int, vibration float64) float64 {
	if t.bitrates[j] <= 0 || vibration <= 0 {
		return 0
	}
	raw := t.impBase[j] + t.m.P01*vibration + t.impVib[j]*vibration
	if raw < 0 {
		return 0
	}
	if raw > t.maxImp[j] {
		return t.maxImp[j]
	}
	return raw
}

// Perceived returns Q0(r_j) - I(r_j, v), bit-identical to
// Model.PerceivedQuality.
func (t *RungTable) Perceived(j int, vibration float64) float64 {
	return t.q0[j] - t.Impairment(j, vibration)
}

// SegmentQoE evaluates Eq. 1 for rung j following previous rung
// prevRung (negative = first segment, no switch penalty), bit-identical
// to Model.SegmentQoE with the corresponding ladder bitrates.
func (t *RungTable) SegmentQoE(j, prevRung int, vibration, rebufferSec float64) float64 {
	prevBitrate, q0Prev := 0.0, 0.0
	if prevRung >= 0 {
		prevBitrate = t.bitrates[prevRung]
		q0Prev = t.q0[prevRung]
	}
	return t.m.SegmentQoEParts(t.Perceived(j, vibration), t.q0[j], prevBitrate, q0Prev, rebufferSec)
}
