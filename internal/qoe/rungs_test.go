package qoe

import (
	"math/rand"
	"testing"
)

// The table path must be *bit-identical* to the direct Model methods —
// the simulator swaps between them depending on whether a compiled
// table is supplied, and the campaign determinism tests compare runs
// with ==. The regrouped impairment evaluation preserves Go's
// left-associated rounding, so exact equality is the contract.
func TestRungTableBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	models := []Model{Default()}
	for i := 0; i < 4; i++ {
		m := Default()
		m.C1 = 0.5 + rng.Float64()*2
		m.C2 = 0.2 + rng.Float64()*2
		m.P00 = (rng.Float64() - 0.5) * 0.1
		m.P10 = (rng.Float64() - 0.5) * 0.01
		m.P01 = rng.Float64() * 0.05
		m.P11 = rng.Float64() * 0.05
		m.SwitchPenalty = rng.Float64()
		m.RebufferPenalty = rng.Float64() * 2
		models = append(models, m)
	}
	for _, m := range models {
		bitrates := make([]float64, 1+rng.Intn(8))
		for j := range bitrates {
			bitrates[j] = 0.1 + rng.Float64()*8
		}
		tab := m.CompileRungs(bitrates)
		if tab.Len() != len(bitrates) {
			t.Fatalf("Len() = %d, want %d", tab.Len(), len(bitrates))
		}
		if tab.Model() != m {
			t.Fatalf("Model() = %+v, want %+v", tab.Model(), m)
		}
		for trial := 0; trial < 200; trial++ {
			j := rng.Intn(len(bitrates))
			prev := rng.Intn(len(bitrates)+1) - 1 // -1 = first segment
			v := 0.0
			if rng.Intn(4) > 0 {
				v = rng.Float64() * 5
			}
			rebuf := 0.0
			if rng.Intn(3) == 0 {
				rebuf = rng.Float64() * 4
			}
			if got, want := tab.Bitrate(j), bitrates[j]; got != want {
				t.Fatalf("Bitrate(%d) = %v, want %v", j, got, want)
			}
			if got, want := tab.OriginalQuality(j), m.OriginalQuality(bitrates[j]); got != want {
				t.Fatalf("OriginalQuality(%d) = %v, want %v", j, got, want)
			}
			if got, want := tab.Impairment(j, v), m.Impairment(bitrates[j], v); got != want {
				t.Fatalf("Impairment(%d, %v) = %v, want %v (model %v)", j, v, got, want, m)
			}
			if got, want := tab.Perceived(j, v), m.PerceivedQuality(bitrates[j], v); got != want {
				t.Fatalf("Perceived(%d, %v) = %v, want %v", j, v, got, want)
			}
			seg := Segment{BitrateMbps: bitrates[j], Vibration: v, RebufferSec: rebuf}
			if prev >= 0 {
				seg.PrevBitrateMbps = bitrates[prev]
			}
			if got, want := tab.SegmentQoE(j, prev, v, rebuf), m.SegmentQoE(seg); got != want {
				t.Fatalf("SegmentQoE(%d, %d, %v, %v) = %v, want %v (model %v)",
					j, prev, v, rebuf, got, want, m)
			}
		}
	}
}

// CompileRungs must not alias the caller's slice: mutating the input
// afterwards must not change table answers.
func TestRungTableCopiesBitrates(t *testing.T) {
	m := Default()
	bitrates := []float64{0.5, 1.2, 3.0}
	tab := m.CompileRungs(bitrates)
	want := tab.Bitrate(1)
	bitrates[1] = 99
	if tab.Bitrate(1) != want {
		t.Fatalf("table aliased caller slice: Bitrate(1) = %v, want %v", tab.Bitrate(1), want)
	}
}
