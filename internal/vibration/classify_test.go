package vibration

import (
	"errors"
	"math"
	"testing"
)

func TestContextClassString(t *testing.T) {
	tests := []struct {
		c    ContextClass
		want string
	}{
		{c: ClassStill, want: "still"},
		{c: ClassHandheld, want: "handheld"},
		{c: ClassSmoothVehicle, want: "smooth-vehicle"},
		{c: ClassRoughVehicle, want: "rough-vehicle"},
		{c: ContextClass(42), want: "ContextClass(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestExtractFeaturesValidation(t *testing.T) {
	if _, err := ExtractFeatures(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	short := make([]Sample, 10)
	if _, err := ExtractFeatures(short); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("err = %v, want ErrTooFewSamples", err)
	}
	// Zero time span.
	flat := make([]Sample, 20)
	if _, err := ExtractFeatures(flat); err == nil {
		t.Error("zero-span window accepted")
	}
}

func TestExtractFeaturesStillPhone(t *testing.T) {
	var samples []Sample
	for i := 0; i < 200; i++ {
		samples = append(samples, Sample{TimeSec: float64(i) * 0.02, Z: Gravity})
	}
	f, err := ExtractFeatures(samples)
	if err != nil {
		t.Fatal(err)
	}
	if f.RMS > 1e-9 {
		t.Errorf("RMS = %v, want 0", f.RMS)
	}
	if f.DominantFreqHz != 0 {
		t.Errorf("DominantFreqHz = %v, want 0", f.DominantFreqHz)
	}
}

func TestExtractFeaturesDetectsSinusoid(t *testing.T) {
	// Pure 3 Hz oscillation at amplitude 2 over gravity.
	const freq = 3.0
	var samples []Sample
	for i := 0; i < 500; i++ {
		ts := float64(i) * 0.02 // 50 Hz
		samples = append(samples, Sample{
			TimeSec: ts,
			Z:       Gravity + 2*math.Sin(2*math.Pi*freq*ts),
		})
	}
	f, err := ExtractFeatures(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.DominantFreqHz-freq) > 0.3 {
		t.Errorf("DominantFreqHz = %v, want ≈ %v", f.DominantFreqHz, freq)
	}
	if f.PeakRatio < 0.5 {
		t.Errorf("PeakRatio = %v, want >= 0.5 for a pure tone", f.PeakRatio)
	}
	// RMS of a sin with amplitude 2 is sqrt(2).
	if math.Abs(f.RMS-math.Sqrt2) > 0.05 {
		t.Errorf("RMS = %v, want ≈ %v", f.RMS, math.Sqrt2)
	}
}

func TestClassifyThresholds(t *testing.T) {
	tests := []struct {
		rms  float64
		want ContextClass
	}{
		{rms: 0.1, want: ClassStill},
		{rms: 0.5, want: ClassHandheld},
		{rms: 2.5, want: ClassSmoothVehicle},
		{rms: 6.5, want: ClassRoughVehicle},
	}
	for _, tt := range tests {
		if got := Classify(Features{RMS: tt.rms}); got != tt.want {
			t.Errorf("Classify(RMS=%v) = %v, want %v", tt.rms, got, tt.want)
		}
	}
}

// End-to-end: synthetic profiles classify to the expected classes.
func TestClassifierOnProfiles(t *testing.T) {
	tests := []struct {
		profile Profile
		want    ContextClass
	}{
		{profile: QuietRoom, want: ClassStill},
		{profile: Cafe, want: ClassHandheld},
		{profile: Train, want: ClassSmoothVehicle},
		{profile: Bus, want: ClassRoughVehicle},
	}
	for _, tt := range tests {
		t.Run(tt.profile.Name, func(t *testing.T) {
			gen, err := NewGenerator(DefaultSampleRateHz, 77)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewClassifier(6)
			if err != nil {
				t.Fatal(err)
			}
			c.PushAll(gen.Generate(tt.profile, 0, 10))
			if got := c.Class(); got != tt.want {
				f, _ := c.Features()
				t.Errorf("Class(%s) = %v, want %v (features %+v)", tt.profile.Name, got, tt.want, f)
			}
		})
	}
}

func TestClassifierColdStart(t *testing.T) {
	c, err := NewClassifier(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Class(); got != ClassStill {
		t.Errorf("cold-start Class = %v, want still", got)
	}
	if _, err := NewClassifier(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestClassifierTracksTransitions(t *testing.T) {
	gen, err := NewGenerator(DefaultSampleRateHz, 12)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClassifier(4)
	if err != nil {
		t.Fatal(err)
	}
	c.PushAll(gen.Generate(Bus, 0, 10))
	if got := c.Class(); got != ClassRoughVehicle {
		t.Fatalf("bus phase = %v, want rough-vehicle", got)
	}
	// The bus stops: the class should settle back within the window.
	c.PushAll(gen.Generate(QuietRoom, 10, 10))
	if got := c.Class(); got != ClassStill {
		t.Errorf("stop phase = %v, want still", got)
	}
}

func TestGoertzelDegenerate(t *testing.T) {
	if p := goertzelPower(nil, 50, 3); p != 0 {
		t.Errorf("empty signal power = %v, want 0", p)
	}
	xs := []float64{1, 2, 3}
	if p := goertzelPower(xs, 0, 3); p != 0 {
		t.Errorf("zero rate power = %v, want 0", p)
	}
	if p := goertzelPower(xs, 50, 0); p != 0 {
		t.Errorf("zero freq power = %v, want 0", p)
	}
	if p := goertzelPower(xs, 50, 30); p != 0 {
		t.Errorf("above-Nyquist power = %v, want 0", p)
	}
}
