package vibration

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleMagnitude(t *testing.T) {
	tests := []struct {
		name string
		s    Sample
		want float64
	}{
		{name: "zero", s: Sample{}, want: 0},
		{name: "unit z", s: Sample{Z: 1}, want: 1},
		{name: "pythagorean", s: Sample{X: 3, Y: 4}, want: 5},
		{name: "gravity", s: Sample{Z: Gravity}, want: Gravity},
		{name: "negative axes", s: Sample{X: -3, Y: -4}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.Magnitude(); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Magnitude = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLevelDegenerate(t *testing.T) {
	if got := Level(nil); got != 0 {
		t.Errorf("Level(nil) = %v, want 0", got)
	}
	if got := Level([]Sample{{Z: Gravity}}); got != 0 {
		t.Errorf("Level(single) = %v, want 0", got)
	}
}

func TestLevelConstantMagnitudeIsZero(t *testing.T) {
	// A static phone (constant gravity reading) must report zero
	// vibration regardless of orientation.
	samples := []Sample{
		{TimeSec: 0, Z: Gravity},
		{TimeSec: 0.02, Z: Gravity},
		{TimeSec: 0.04, Z: Gravity},
	}
	if got := Level(samples); got != 0 {
		t.Errorf("Level(static) = %v, want 0", got)
	}
	// Rotated phone: same magnitude on different axes.
	rot := []Sample{
		{TimeSec: 0, X: Gravity},
		{TimeSec: 0.02, Y: Gravity},
		{TimeSec: 0.04, Z: Gravity},
	}
	if got := Level(rot); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Level(rotated static) = %v, want 0 (gravity removed)", got)
	}
}

func TestLevelKnownDeviation(t *testing.T) {
	// Magnitudes alternate g+1, g-1: mean g, RMS deviation 1.
	var samples []Sample
	for i := 0; i < 100; i++ {
		d := 1.0
		if i%2 == 1 {
			d = -1.0
		}
		samples = append(samples, Sample{TimeSec: float64(i) * 0.02, Z: Gravity + d})
	}
	if got := Level(samples); !almostEqual(got, 1, 1e-9) {
		t.Errorf("Level = %v, want 1", got)
	}
}

// Level is invariant under adding a constant to all magnitudes
// (gravity removal) and scales linearly with deviation amplitude.
func TestLevelProperties(t *testing.T) {
	f := func(ampRaw, offRaw uint8) bool {
		amp := float64(ampRaw%70)/10 + 0.1
		off := float64(offRaw % 5)
		base := make([]Sample, 0, 60)
		shifted := make([]Sample, 0, 60)
		for i := 0; i < 60; i++ {
			d := amp
			if i%2 == 1 {
				d = -amp
			}
			base = append(base, Sample{TimeSec: float64(i), Z: Gravity + d})
			shifted = append(shifted, Sample{TimeSec: float64(i), Z: Gravity + off + d})
		}
		l1, l2 := Level(base), Level(shifted)
		return almostEqual(l1, amp, 1e-9) && almostEqual(l1, l2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(0); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v, want ErrBadWindow", err)
	}
	if _, err := NewEstimator(-3); !errors.Is(err, ErrBadWindow) {
		t.Errorf("err = %v, want ErrBadWindow", err)
	}
	e, err := NewEstimator(DefaultWindowSec)
	if err != nil {
		t.Fatal(err)
	}
	if e.WindowSec() != DefaultWindowSec {
		t.Errorf("WindowSec = %v, want %v", e.WindowSec(), DefaultWindowSec)
	}
}

func TestEstimatorWindowEviction(t *testing.T) {
	e, err := NewEstimator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Early samples with huge deviation, later samples static. After
	// the window slides past the early ones, the level must drop to 0.
	for i := 0; i < 10; i++ {
		e.Push(Sample{TimeSec: float64(i) * 0.1, Z: Gravity + 5*math.Pow(-1, float64(i))})
	}
	if e.Level() == 0 {
		t.Fatal("expected non-zero level during vibration")
	}
	for i := 0; i < 30; i++ {
		e.Push(Sample{TimeSec: 1.0 + float64(i)*0.1, Z: Gravity})
	}
	if got := e.Level(); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Level after quiet window = %v, want 0", got)
	}
	// Window holds ~1s of 10 Hz samples.
	if e.Len() > 12 {
		t.Errorf("window holds %d samples, want <= 12", e.Len())
	}
}

func TestEstimatorPushAllAndReset(t *testing.T) {
	e, err := NewEstimator(2.0)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Sample{
		{TimeSec: 0, Z: Gravity + 1},
		{TimeSec: 0.5, Z: Gravity - 1},
		{TimeSec: 1.0, Z: Gravity + 1},
	}
	e.PushAll(batch)
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
	if e.Level() == 0 {
		t.Error("expected non-zero level")
	}
	e.Reset()
	if e.Len() != 0 || e.Level() != 0 {
		t.Error("Reset did not clear the window")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, 1); !errors.Is(err, ErrBadRate) {
		t.Errorf("err = %v, want ErrBadRate", err)
	}
	if _, err := NewGenerator(-50, 1); !errors.Is(err, ErrBadRate) {
		t.Errorf("err = %v, want ErrBadRate", err)
	}
}

func TestGeneratorTracksProfileLevel(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := NewGenerator(DefaultSampleRateHz, 42)
			if err != nil {
				t.Fatal(err)
			}
			samples := g.Generate(p, 0, 60)
			got := Level(samples)
			// Within 25% of the target (bumps add variance).
			lo, hi := p.BaseLevel*0.75, p.BaseLevel*1.35+0.2
			if got < lo || got > hi {
				t.Errorf("Level(%s) = %.2f, want within [%.2f, %.2f]", p.Name, got, lo, hi)
			}
		})
	}
}

func TestGeneratorOrderingAndGravity(t *testing.T) {
	g, err := NewGenerator(50, 7)
	if err != nil {
		t.Fatal(err)
	}
	samples := g.Generate(Bus, 10, 5)
	if len(samples) != 250 {
		t.Fatalf("got %d samples, want 250", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].TimeSec <= samples[i-1].TimeSec {
			t.Fatal("samples not strictly time-ordered")
		}
	}
	if samples[0].TimeSec < 10 {
		t.Errorf("first sample at %v, want >= 10 (startSec)", samples[0].TimeSec)
	}
	// Mean magnitude should hover around gravity.
	var mean float64
	for _, s := range samples {
		mean += s.Magnitude()
	}
	mean /= float64(len(samples))
	if !almostEqual(mean, Gravity, 1.0) {
		t.Errorf("mean magnitude = %.2f, want ≈ %.2f", mean, Gravity)
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	g1, _ := NewGenerator(50, 99)
	g2, _ := NewGenerator(50, 99)
	s1 := g1.Generate(Car, 0, 2)
	s2 := g2.Generate(Car, 0, 2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("generators with equal seeds diverged")
		}
	}
}

func TestGeneratorEmptyDuration(t *testing.T) {
	g, _ := NewGenerator(50, 1)
	if got := g.Generate(Bus, 0, 0); got != nil {
		t.Errorf("zero duration = %v samples, want nil", len(got))
	}
	if got := g.Generate(Bus, 0, -5); got != nil {
		t.Errorf("negative duration = %v samples, want nil", len(got))
	}
}

func TestGenerateSchedule(t *testing.T) {
	g, _ := NewGenerator(50, 3)
	// Bus for the first 30 s, then a stop (quiet) for 30 s.
	schedule := func(t float64) Profile {
		if t < 30 {
			return Bus
		}
		return QuietRoom
	}
	samples := g.GenerateSchedule(schedule, 0, 60)
	var first, second []Sample
	for _, s := range samples {
		if s.TimeSec < 30 {
			first = append(first, s)
		} else {
			second = append(second, s)
		}
	}
	if Level(first) < 3 {
		t.Errorf("bus phase level = %.2f, want >= 3", Level(first))
	}
	if Level(second) > 1 {
		t.Errorf("stop phase level = %.2f, want <= 1", Level(second))
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("bus")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "bus" {
		t.Errorf("Name = %q, want bus", p.Name)
	}
	if _, err := ProfileByName("submarine"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestProfilesOrderedByLevel(t *testing.T) {
	ps := Profiles()
	for i := 1; i < len(ps); i++ {
		if ps[i].BaseLevel <= ps[i-1].BaseLevel {
			t.Errorf("profiles not ordered by level: %s <= %s", ps[i].Name, ps[i-1].Name)
		}
	}
}

// Pinned edge-case behavior (ISSUE 6 satellite): Level and the
// Estimator must report 0 whenever fewer than two samples are in
// scope, and the estimator's window must be the closed interval
// [t-w, t] (a sample exactly WindowSec old is retained).
func TestLevelFewSamplesTable(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
		want    float64
	}{
		{"nil", nil, 0},
		{"empty", []Sample{}, 0},
		{"single", []Sample{{TimeSec: 0, Z: Gravity + 3}}, 0},
		{"two equal magnitudes", []Sample{
			{TimeSec: 0, Z: Gravity},
			{TimeSec: 1, Z: Gravity},
		}, 0},
		{"two distinct magnitudes", []Sample{
			{TimeSec: 0, Z: 2},
			{TimeSec: 1, Z: 4},
		}, 1}, // magnitudes 2 and 4: mean 3, deviations ±1, RMS 1
	}
	for _, tc := range cases {
		if got := Level(tc.samples); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("%s: Level = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEstimatorEdgeCasesTable(t *testing.T) {
	cases := []struct {
		name     string
		window   float64
		pushes   []Sample
		wantLen  int
		wantZero bool
	}{
		{"empty estimator", 1, nil, 0, true},
		{"single sample", 1, []Sample{{TimeSec: 0, Z: 2}}, 1, true},
		{
			// The window is inclusive: at t=1 with window 1, the
			// sample at t=0 is exactly WindowSec old and stays.
			"boundary sample retained", 1,
			[]Sample{{TimeSec: 0, Z: 2}, {TimeSec: 1, Z: 4}},
			2, false,
		},
		{
			// Just past the boundary the old sample is evicted and a
			// lone survivor reports 0.
			"boundary sample evicted", 1,
			[]Sample{{TimeSec: 0, Z: 2}, {TimeSec: 1.001, Z: 4}},
			1, true,
		},
		{
			// A long silence then one sample: everything before the
			// gap evicts, level collapses to 0 rather than reporting
			// stale motion.
			"gap past window", 2,
			[]Sample{
				{TimeSec: 0, Z: 2}, {TimeSec: 0.5, Z: 5}, {TimeSec: 1, Z: 3},
				{TimeSec: 100, Z: 4},
			},
			1, true,
		},
		{
			// Samples at identical timestamps all stay in scope.
			"duplicate timestamps", 1,
			[]Sample{{TimeSec: 3, Z: 2}, {TimeSec: 3, Z: 4}, {TimeSec: 3, Z: 6}},
			3, false,
		},
	}
	for _, tc := range cases {
		e, err := NewEstimator(tc.window)
		if err != nil {
			t.Fatalf("%s: NewEstimator: %v", tc.name, err)
		}
		e.PushAll(tc.pushes)
		if e.Len() != tc.wantLen {
			t.Errorf("%s: Len = %d, want %d", tc.name, e.Len(), tc.wantLen)
		}
		if got := e.Level(); (got == 0) != tc.wantZero {
			t.Errorf("%s: Level = %v, wantZero = %v", tc.name, got, tc.wantZero)
		}
	}
}

// The streaming estimator and the trace-replay window query must agree
// when fed the same stream: Push-ing every sample up to time t gives
// the same window as VibrationAt's [t-w, t] binary search. (The trace
// side of this contract lives in internal/trace; here we pin the
// estimator against a manual reconstruction of the inclusive window.)
func TestEstimatorMatchesManualWindow(t *testing.T) {
	const w = 2.0
	e, err := NewEstimator(w)
	if err != nil {
		t.Fatal(err)
	}
	var stream []Sample
	for i := 0; i < 100; i++ {
		ts := float64(i) * 0.13
		stream = append(stream, Sample{TimeSec: ts, X: math.Sin(float64(i)), Z: Gravity})
	}
	for n, s := range stream {
		e.Push(s)
		var win []Sample
		for _, p := range stream[:n+1] {
			if p.TimeSec >= s.TimeSec-w {
				win = append(win, p)
			}
		}
		if got, want := e.Level(), Level(win); got != want {
			t.Fatalf("at sample %d: estimator %v, manual window %v", n, got, want)
		}
	}
}
