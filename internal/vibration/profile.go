package vibration

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Profile describes a viewing environment's vibration signature and
// drives the synthetic accelerometer generator. The generated stream's
// Eq. 5 level tracks BaseLevel, modulated by periodic oscillation
// (engine/road frequency) and random bumps (potholes, braking).
type Profile struct {
	// Name identifies the context ("quiet-room", "bus", ...).
	Name string
	// BaseLevel is the target steady-state vibration level (m/s²).
	BaseLevel float64
	// OscFreqHz is the dominant oscillation frequency (engine/road).
	OscFreqHz float64
	// OscShare in [0, 1] is the fraction of vibration variance carried
	// by the periodic component; the rest is white noise.
	OscShare float64
	// BumpRatePerSec is the Poisson rate of transient bumps.
	BumpRatePerSec float64
	// BumpAmp is the extra magnitude deviation a bump injects (m/s²).
	BumpAmp float64
}

// Predefined context profiles. Levels are chosen so the generated
// traces reproduce the Table V range (quiet ≈ 0.2, vehicle 2.5-7).
var (
	// QuietRoom is the paper's static context: sensor noise only.
	QuietRoom = Profile{Name: "quiet-room", BaseLevel: 0.15, OscFreqHz: 0, OscShare: 0, BumpRatePerSec: 0, BumpAmp: 0}
	// Cafe has light ambient motion (table knocks, handling).
	Cafe = Profile{Name: "cafe", BaseLevel: 0.5, OscFreqHz: 0.5, OscShare: 0.2, BumpRatePerSec: 0.02, BumpAmp: 0.8}
	// Train is a smooth-riding vehicle.
	Train = Profile{Name: "train", BaseLevel: 2.5, OscFreqHz: 1.8, OscShare: 0.5, BumpRatePerSec: 0.05, BumpAmp: 1.5}
	// Car is a passenger car on city roads.
	Car = Profile{Name: "car", BaseLevel: 4.5, OscFreqHz: 2.4, OscShare: 0.45, BumpRatePerSec: 0.08, BumpAmp: 2.0}
	// Bus is the paper's moving-bus context: strong vibration.
	Bus = Profile{Name: "bus", BaseLevel: 6.5, OscFreqHz: 3.1, OscShare: 0.4, BumpRatePerSec: 0.12, BumpAmp: 2.5}
)

// Profiles returns all predefined profiles, ordered by vibration level.
func Profiles() []Profile {
	return []Profile{QuietRoom, Cafe, Train, Car, Bus}
}

// ProfileByName returns the predefined profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("vibration: unknown profile %q", name)
}

// Generator synthesises a 3-axis accelerometer stream whose Eq. 5
// vibration level follows a profile (or a time-varying level schedule).
// The phone is modelled as roughly face-up with a slowly wandering
// tilt, so gravity projects mostly on Z and the magnitude carries the
// vibration signal.
//
// Construct with NewGenerator; the zero value is unusable.
type Generator struct {
	rateHz float64
	rng    *rand.Rand
	phase  float64
	tiltX  float64
	tiltY  float64
}

// DefaultSampleRateHz is a typical Android accelerometer UI rate.
const DefaultSampleRateHz = 50.0

// ErrBadRate is returned for non-positive sample rates.
var ErrBadRate = errors.New("vibration: sample rate must be positive")

// NewGenerator returns a generator emitting samples at rateHz, seeded
// deterministically.
func NewGenerator(rateHz float64, seed int64) (*Generator, error) {
	if rateHz <= 0 {
		return nil, ErrBadRate
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		rateHz: rateHz,
		rng:    rng,
		phase:  rng.Float64() * 2 * math.Pi,
		tiltX:  rng.NormFloat64() * 0.05,
		tiltY:  rng.NormFloat64() * 0.05,
	}, nil
}

// Generate produces durationSec seconds of samples under a constant
// profile, starting at startSec.
func (g *Generator) Generate(p Profile, startSec, durationSec float64) []Sample {
	return g.GenerateSchedule(func(float64) Profile { return p }, startSec, durationSec)
}

// GenerateSchedule produces samples under a time-varying profile
// schedule (e.g. a bus ride with stops), starting at startSec.
func (g *Generator) GenerateSchedule(profileAt func(tSec float64) Profile, startSec, durationSec float64) []Sample {
	if durationSec <= 0 {
		return nil
	}
	n := int(durationSec * g.rateHz)
	out := make([]Sample, 0, n)
	dt := 1 / g.rateHz
	for i := 0; i < n; i++ {
		t := startSec + float64(i)*dt
		p := profileAt(t)
		dev := g.deviation(p, t, dt)

		// Slowly wandering tilt: gravity stays mostly on Z.
		g.tiltX += g.rng.NormFloat64() * 0.002
		g.tiltY += g.rng.NormFloat64() * 0.002
		g.tiltX = clamp(g.tiltX, -0.2, 0.2)
		g.tiltY = clamp(g.tiltY, -0.2, 0.2)

		mag := Gravity + dev
		if mag < 0 {
			mag = 0
		}
		// Direction: unit vector tilted slightly off Z.
		nx, ny := g.tiltX, g.tiltY
		nz := math.Sqrt(math.Max(0, 1-nx*nx-ny*ny))
		out = append(out, Sample{TimeSec: t, X: mag * nx, Y: mag * ny, Z: mag * nz})
	}
	return out
}

// deviation returns the instantaneous magnitude deviation from gravity
// with RMS tracking p.BaseLevel.
func (g *Generator) deviation(p Profile, t, dt float64) float64 {
	oscShare := clamp(p.OscShare, 0, 1)
	// Unit-RMS components: sqrt(2)*sin has RMS 1, NormFloat64 has RMS 1.
	osc := math.Sqrt2 * math.Sin(2*math.Pi*p.OscFreqHz*t+g.phase)
	noise := g.rng.NormFloat64()
	dev := p.BaseLevel * (math.Sqrt(oscShare)*osc + math.Sqrt(1-oscShare)*noise)
	// Poisson bumps.
	if p.BumpRatePerSec > 0 && g.rng.Float64() < p.BumpRatePerSec*dt {
		dev += p.BumpAmp * (1 + g.rng.Float64())
	}
	return dev
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
