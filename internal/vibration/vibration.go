// Package vibration implements the paper's context-sensing substrate:
// synthetic 3-axis accelerometer streams for different viewing
// environments, the vibration-level metric of Eq. 5 (RMS deviation of
// the acceleration magnitude from its window mean, which removes
// gravity), and the sliding-window online estimator of Section IV-B.
package vibration

import (
	"errors"
	"math"
)

// Gravity is standard gravity in m/s²; synthetic samples are generated
// around it so gravity removal is actually exercised.
const Gravity = 9.80665

// Sample is one accelerometer reading.
type Sample struct {
	// TimeSec is the sample timestamp in seconds from stream start.
	TimeSec float64
	// X, Y, Z are the axis accelerations in m/s² (gravity included, as
	// delivered by Android's TYPE_ACCELEROMETER).
	X, Y, Z float64
}

// Magnitude returns the Euclidean norm of the acceleration vector.
func (s Sample) Magnitude() float64 {
	return math.Sqrt(s.X*s.X + s.Y*s.Y + s.Z*s.Z)
}

// Level computes the paper's Eq. 5 vibration level over a batch of
// samples: the RMS deviation of the acceleration magnitude from its
// mean. Subtracting the window mean removes the gravity component
// without needing device orientation. Returns 0 for fewer than two
// samples.
func Level(samples []Sample) float64 {
	if len(samples) < 2 {
		return 0
	}
	// Two passes recomputing the magnitudes instead of buffering them:
	// Level sits on the simulator's per-segment path, where a scratch
	// slice per call dominated the session's allocation profile.
	var mean float64
	for _, s := range samples {
		mean += s.Magnitude()
	}
	mean /= float64(len(samples))
	var ss float64
	for _, s := range samples {
		d := s.Magnitude() - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)))
}

// Estimator is the online vibration-level estimator of Section IV-B:
// it keeps the accelerometer samples of the trailing WindowSec seconds
// and reports Eq. 5 over that window. The paper uses a window of
// 0.2 x the 30 s buffer threshold, i.e. 6 s.
//
// The zero value is unusable; construct with NewEstimator.
type Estimator struct {
	windowSec float64
	samples   []Sample
}

// DefaultWindowSec is the paper's online estimation window
// (0.2 x 30 s buffer threshold).
const DefaultWindowSec = 6.0

// ErrBadWindow is returned for non-positive estimation windows.
var ErrBadWindow = errors.New("vibration: window must be positive")

// NewEstimator returns an estimator over the trailing windowSec
// seconds.
func NewEstimator(windowSec float64) (*Estimator, error) {
	if windowSec <= 0 {
		return nil, ErrBadWindow
	}
	return &Estimator{windowSec: windowSec}, nil
}

// Push adds a sample. Samples must arrive in non-decreasing time
// order; older samples that fall out of the window are evicted. The
// window is the closed interval [s.TimeSec - WindowSec, s.TimeSec]: a
// sample exactly WindowSec old is retained, matching the inclusive
// [t-w, t] bounds trace.VibrationAt uses, so the streaming estimator
// and the trace-replay query agree sample-for-sample.
func (e *Estimator) Push(s Sample) {
	e.samples = append(e.samples, s)
	cutoff := s.TimeSec - e.windowSec
	// Evict from the front; samples are time-ordered.
	i := 0
	for i < len(e.samples) && e.samples[i].TimeSec < cutoff {
		i++
	}
	if i > 0 {
		e.samples = append(e.samples[:0], e.samples[i:]...)
	}
}

// PushAll adds a batch of time-ordered samples.
func (e *Estimator) PushAll(samples []Sample) {
	for _, s := range samples {
		e.Push(s)
	}
}

// Level returns Eq. 5 over the current window. With fewer than two
// samples in the window — an empty estimator, or a stream whose last
// sample is more than WindowSec older than everything before it —
// there is no deviation to measure and Level reports 0, the same
// pinned edge behavior as trace.VibrationAt for queries past the
// trace end.
func (e *Estimator) Level() float64 { return Level(e.samples) }

// Len reports the number of samples currently in the window.
func (e *Estimator) Len() int { return len(e.samples) }

// WindowSec reports the estimation window length.
func (e *Estimator) WindowSec() float64 { return e.windowSec }

// Reset discards all samples.
func (e *Estimator) Reset() { e.samples = e.samples[:0] }
