package vibration

import (
	"errors"
	"fmt"
	"math"
)

// ContextClass is a coarse viewing-environment label inferred from the
// accelerometer. The paper senses the *level* of vibration; the
// classifier goes one step further and names the environment, which
// lets applications pick policies (e.g. prefetch aggressiveness) per
// context.
type ContextClass int

// Context classes, ordered by vibration intensity.
const (
	// ClassStill is a phone at rest (table, tripod).
	ClassStill ContextClass = iota + 1
	// ClassHandheld is light human handling (sofa, cafe).
	ClassHandheld
	// ClassSmoothVehicle is a train or highway car.
	ClassSmoothVehicle
	// ClassRoughVehicle is a city bus or rough road.
	ClassRoughVehicle
)

// String names the class.
func (c ContextClass) String() string {
	switch c {
	case ClassStill:
		return "still"
	case ClassHandheld:
		return "handheld"
	case ClassSmoothVehicle:
		return "smooth-vehicle"
	case ClassRoughVehicle:
		return "rough-vehicle"
	default:
		return fmt.Sprintf("ContextClass(%d)", int(c))
	}
}

// Features are the classifier's inputs, extracted from a window of
// accelerometer samples.
type Features struct {
	// RMS is the Eq. 5 vibration level over the window (m/s²).
	RMS float64
	// DominantFreqHz is the strongest oscillation frequency found in
	// the magnitude-deviation signal (0 when no clear peak exists).
	DominantFreqHz float64
	// PeakRatio is the dominant frequency's spectral power over the
	// window's total deviation power, in [0, 1]; periodic vibration
	// (engines, rails) scores high, white handling noise scores low.
	PeakRatio float64
}

// ErrTooFewSamples is returned when a feature window is too short.
var ErrTooFewSamples = errors.New("vibration: need at least 16 samples for features")

// goertzelPower returns the normalised spectral power of the deviation
// signal xs (sampled at rateHz) at frequency f via the Goertzel
// recurrence.
func goertzelPower(xs []float64, rateHz, f float64) float64 {
	n := len(xs)
	if n == 0 || rateHz <= 0 || f <= 0 || f >= rateHz/2 {
		return 0
	}
	w := 2 * math.Pi * f / rateHz
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range xs {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	return power / float64(n) / float64(n) * 2
}

// ExtractFeatures computes classifier features over a sample window.
// The samples must be (close to) uniformly spaced; the rate is
// inferred from the timestamps.
func ExtractFeatures(samples []Sample) (Features, error) {
	if len(samples) < 16 {
		return Features{}, ErrTooFewSamples
	}
	span := samples[len(samples)-1].TimeSec - samples[0].TimeSec
	if span <= 0 {
		return Features{}, errors.New("vibration: zero time span")
	}
	rateHz := float64(len(samples)-1) / span

	// Deviation signal: magnitude minus window mean (gravity removal).
	mags := make([]float64, len(samples))
	var mean float64
	for i, s := range samples {
		mags[i] = s.Magnitude()
		mean += mags[i]
	}
	mean /= float64(len(mags))
	var totalPower float64
	for i := range mags {
		mags[i] -= mean
		totalPower += mags[i] * mags[i]
	}
	totalPower /= float64(len(mags))

	f := Features{RMS: math.Sqrt(totalPower)}
	if totalPower <= 1e-12 {
		return f, nil
	}

	// Scan candidate frequencies (0.5 .. 8 Hz covers footsteps through
	// engine vibration).
	bestPower := 0.0
	for freq := 0.5; freq <= 8.0; freq += 0.25 {
		if p := goertzelPower(mags, rateHz, freq); p > bestPower {
			bestPower = p
			f.DominantFreqHz = freq
		}
	}
	f.PeakRatio = bestPower / totalPower
	if f.PeakRatio > 1 {
		f.PeakRatio = 1
	}
	if f.PeakRatio < 0.05 {
		// No meaningful periodicity.
		f.DominantFreqHz = 0
		f.PeakRatio = 0
	}
	return f, nil
}

// Classify maps features to a context class with simple, documented
// thresholds calibrated against the package's synthetic profiles.
func Classify(f Features) ContextClass {
	switch {
	case f.RMS < 0.35:
		return ClassStill
	case f.RMS < 1.5:
		return ClassHandheld
	case f.RMS < 3.5:
		return ClassSmoothVehicle
	default:
		return ClassRoughVehicle
	}
}

// Classifier is the streaming form: push samples, read the current
// class over the trailing window.
//
// Construct with NewClassifier; the zero value is unusable.
type Classifier struct {
	est *Estimator
}

// NewClassifier returns a classifier over the trailing windowSec
// seconds.
func NewClassifier(windowSec float64) (*Classifier, error) {
	est, err := NewEstimator(windowSec)
	if err != nil {
		return nil, err
	}
	return &Classifier{est: est}, nil
}

// Push adds a sample.
func (c *Classifier) Push(s Sample) { c.est.Push(s) }

// PushAll adds a batch of time-ordered samples.
func (c *Classifier) PushAll(samples []Sample) { c.est.PushAll(samples) }

// Features extracts features over the current window.
func (c *Classifier) Features() (Features, error) {
	return ExtractFeatures(c.est.samples)
}

// Class returns the current context class; before enough samples have
// arrived it reports ClassStill.
func (c *Classifier) Class() ContextClass {
	f, err := c.Features()
	if err != nil {
		return ClassStill
	}
	return Classify(f)
}
