package learn

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
)

func TestTableSaveLoadRoundTrip(t *testing.T) {
	space := StateSpace{
		BufferBins: 3, BufferMaxSec: 30,
		BandwidthBins: 2, BandwidthMinMbps: 0.5, BandwidthMaxMbps: 50,
		Rungs: 4,
	}
	table, err := NewQTable(space)
	if err != nil {
		t.Fatal(err)
	}
	table.Update(5, 2, 7, 3.5, 0.5, 0.9)
	table.Update(7, 1, 5, -1.0, 0.5, 0.9)

	var buf bytes.Buffer
	if err := table.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Space() != space {
		t.Errorf("space mismatch: %+v", got.Space())
	}
	a1, v1 := table.Best(5)
	a2, v2 := got.Best(5)
	if a1 != a2 || v1 != v2 {
		t.Errorf("round trip lost values: (%d, %v) vs (%d, %v)", a1, v1, a2, v2)
	}
	if got.CoverageFraction() != table.CoverageFraction() {
		t.Error("round trip lost visit counts")
	}
}

func TestLoadTableRejectsCorrupt(t *testing.T) {
	if _, err := LoadTable(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// Wrong state count.
	doc := `{"space":{"BufferBins":2,"BufferMaxSec":10,"BandwidthBins":2,"BandwidthMinMbps":1,"BandwidthMaxMbps":10,"Rungs":2},"q":[[0,0]],"seen":null}`
	if _, err := LoadTable(strings.NewReader(doc)); !errors.Is(err, ErrCorruptTable) {
		t.Errorf("err = %v, want ErrCorruptTable", err)
	}
	// Invalid space.
	doc = `{"space":{"BufferBins":0},"q":[],"seen":null}`
	if _, err := LoadTable(strings.NewReader(doc)); err == nil {
		t.Error("invalid space accepted")
	}
}

func TestNewFrozenAgentFromLoadedTable(t *testing.T) {
	ladder := dash.EvalLadder()
	cfg := DefaultTrainConfig(ladder)
	cfg.Episodes = 10 // quick
	trained, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trained.Table().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := NewFrozenAgent(loaded, 9)
	if err != nil {
		t.Fatal(err)
	}
	if agent.Training() {
		t.Error("frozen agent still training")
	}
	// Greedy decisions match the trained agent's (same table, same
	// estimator state after identical inputs).
	trained.Reset()
	agent.Reset()
	for i := 0; i < 5; i++ {
		trained.ObserveDownload(20)
		agent.ObserveDownload(20)
	}
	ctx := abr.Context{
		Ladder:             ladder,
		SegmentDurationSec: 2,
		BufferSec:          20,
		BufferThresholdSec: 30,
		PrevRung:           5,
	}
	r1, err := trained.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := agent.ChooseRung(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("loaded agent chose %d, trained chose %d", r2, r1)
	}
	if _, err := NewFrozenAgent(nil, 1); err == nil {
		t.Error("nil table accepted")
	}
}
