package learn

import (
	"errors"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

func newTestAgent(t *testing.T, rungs int) *Agent {
	t.Helper()
	a, err := NewAgent(DefaultStateSpace(rungs), DefaultHyper(), DefaultReward(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func agentCtx(buffer float64, prev int) abr.Context {
	ladder := dash.EvalLadder()
	sizes := make([]float64, len(ladder))
	for i, rep := range ladder {
		sizes[i] = rep.BitrateMbps / 8 * 2
	}
	return abr.Context{
		Ladder:             ladder,
		SegmentSizesMB:     sizes,
		SegmentDurationSec: 2,
		BufferSec:          buffer,
		BufferThresholdSec: 30,
		PrevRung:           prev,
	}
}

func TestNewAgentValidation(t *testing.T) {
	bad := DefaultHyper()
	bad.Gamma = 1
	if _, err := NewAgent(DefaultStateSpace(14), bad, DefaultReward(), 1); err == nil {
		t.Error("invalid hyper accepted")
	}
	if _, err := NewAgent(StateSpace{}, DefaultHyper(), DefaultReward(), 1); err == nil {
		t.Error("invalid space accepted")
	}
}

func TestAgentNamesAndModes(t *testing.T) {
	a := newTestAgent(t, 14)
	if !a.Training() || a.Name() != "QLearn(train)" {
		t.Errorf("training agent = %v %q", a.Training(), a.Name())
	}
	a.Freeze()
	if a.Training() || a.Name() != "QLearn" {
		t.Errorf("frozen agent = %v %q", a.Training(), a.Name())
	}
}

func TestAgentErrors(t *testing.T) {
	a := newTestAgent(t, 14)
	if _, err := a.ChooseRung(abr.Context{}); !errors.Is(err, ErrBadContext) {
		t.Errorf("err = %v, want ErrBadContext", err)
	}
	// Ladder size mismatch.
	mismatch := newTestAgent(t, 6)
	if _, err := mismatch.ChooseRung(agentCtx(10, -1)); err == nil {
		t.Error("ladder mismatch accepted")
	}
}

func TestAgentChoosesValidRungs(t *testing.T) {
	a := newTestAgent(t, 14)
	for i := 0; i < 200; i++ {
		rung, err := a.ChooseRung(agentCtx(float64(i%35), i%14))
		if err != nil {
			t.Fatal(err)
		}
		if rung < 0 || rung >= 14 {
			t.Fatalf("rung %d out of range", rung)
		}
		a.ObserveDownload(10)
	}
}

func TestAgentLearnsFromOutcomes(t *testing.T) {
	a := newTestAgent(t, 14)
	// Drive many decisions with a consistent outcome; the table must
	// accumulate visits.
	for i := 0; i < 500; i++ {
		if _, err := a.ChooseRung(agentCtx(20, 7)); err != nil {
			t.Fatal(err)
		}
		a.ObserveDownload(12)
	}
	if a.Table().CoverageFraction() <= 0 {
		t.Error("no states were updated during training")
	}
}

func TestAgentResetKeepsTable(t *testing.T) {
	a := newTestAgent(t, 14)
	for i := 0; i < 50; i++ {
		if _, err := a.ChooseRung(agentCtx(20, 7)); err != nil {
			t.Fatal(err)
		}
		a.ObserveDownload(12)
	}
	cov := a.Table().CoverageFraction()
	a.Reset()
	if got := a.Table().CoverageFraction(); got != cov {
		t.Errorf("Reset wiped the table: coverage %v -> %v", cov, got)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(TrainConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultTrainConfig(nil)
	cfg.Episodes = 1
	cfg.EpisodeSec = 10
	if _, err := Train(cfg); !errors.Is(err, dash.ErrEmptyLadder) {
		t.Errorf("err = %v, want ErrEmptyLadder", err)
	}
}

// Training produces a sane greedy policy: on a strong stable channel
// with a full buffer it streams meaningfully above the floor, and it
// completes a whole Table V trace without errors.
func TestTrainedAgentBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs dozens of episodes")
	}
	ladder := dash.EvalLadder()
	agent, err := Train(DefaultTrainConfig(ladder))
	if err != nil {
		t.Fatal(err)
	}
	if agent.Training() {
		t.Fatal("Train returned an unfrozen agent")
	}
	if cov := agent.Table().CoverageFraction(); cov < 0.05 {
		t.Errorf("coverage = %.3f, want >= 0.05", cov)
	}

	// Relative sanity: the greedy policy streams at least as high in a
	// comfortable state (fast link, deep buffer) as in a precarious one
	// (slow link, shallow buffer), and above the floor in comfort.
	agent.Reset()
	for i := 0; i < 5; i++ {
		agent.ObserveDownload(35)
	}
	comfortable, err := agent.ChooseRung(agentCtx(28, 7))
	if err != nil {
		t.Fatal(err)
	}
	agent.Reset()
	for i := 0; i < 5; i++ {
		agent.ObserveDownload(0.5)
	}
	precarious, err := agent.ChooseRung(agentCtx(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if comfortable < precarious {
		t.Errorf("comfortable rung %d below precarious rung %d", comfortable, precarious)
	}
	if comfortable == 0 {
		t.Error("trained agent sits on the floor even with 35 Mbps and a full buffer")
	}

	// Full trace replay through the simulator.
	pm := power.EvalModel()
	traces, err := trace.GenerateTableV(pm.NominalThroughputMBps)
	if err != nil {
		t.Fatal(err)
	}
	man, err := sim.ManifestForTrace(traces[0], ladder)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.RunOnTrace(traces[0], man, agent, pm, qoe.Default(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 || m.MeanQoE <= 0 {
		t.Errorf("degenerate trained-agent session: %+v", m)
	}
	// It must not stall catastrophically (the reward punishes stalls).
	if m.RebufferSec > 10 {
		t.Errorf("trained agent stalled %.1f s", m.RebufferSec)
	}
}

// The agent works over the live HTTP client too (interface parity).
func TestAgentDropInForNetsimChannel(t *testing.T) {
	agent := newTestAgent(t, 14)
	agent.Freeze()
	pm := power.EvalModel()
	link, err := netsim.NewChannel(netsim.RoomSignal, netsim.FadingConfig{}, pm.NominalThroughputMBps, 4)
	if err != nil {
		t.Fatal(err)
	}
	video := dash.Video{Title: "t", SpatialInfo: 45, TemporalInfo: 15, DurationSec: 30}
	man, err := dash.NewManifest(video, dash.EvalLadder(), dash.ManifestConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(sim.Config{
		Manifest: man, Link: link, Algorithm: agent,
		Power: pm, QoE: qoe.Default(),
	}); err != nil {
		t.Fatal(err)
	}
}
