package learn

import (
	"errors"
	"fmt"

	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
)

// TrainConfig drives simulated-session training.
type TrainConfig struct {
	// Episodes is the number of training sessions.
	Episodes int
	// EpisodeSec is each training video's length.
	EpisodeSec float64
	// Ladder is the action space.
	Ladder dash.Ladder
	// Hyper are the Q-learning hyper-parameters.
	Hyper Hyper
	// Reward weighs the outcomes.
	Reward Reward
	// Seed makes training reproducible.
	Seed int64
}

// DefaultTrainConfig returns a configuration that trains in well under
// a second on the evaluation ladder.
func DefaultTrainConfig(ladder dash.Ladder) TrainConfig {
	return TrainConfig{
		Episodes:   80,
		EpisodeSec: 240,
		Ladder:     ladder,
		Hyper:      DefaultHyper(),
		Reward:     DefaultReward(),
		Seed:       7,
	}
}

// Train runs episodes over randomised synthetic channels (alternating
// strong-room and weak-vehicle conditions) and returns a frozen agent.
func Train(cfg TrainConfig) (*Agent, error) {
	if cfg.Episodes <= 0 || cfg.EpisodeSec <= 0 {
		return nil, errors.New("learn: episodes and episode length must be positive")
	}
	if len(cfg.Ladder) == 0 {
		return nil, dash.ErrEmptyLadder
	}
	pm := power.EvalModel()
	qm := qoe.Default()
	agent, err := NewAgent(DefaultStateSpace(len(cfg.Ladder)), cfg.Hyper, cfg.Reward, cfg.Seed)
	if err != nil {
		return nil, err
	}

	video := dash.Video{Title: "train", SpatialInfo: 45, TemporalInfo: 15, DurationSec: cfg.EpisodeSec}
	for ep := 0; ep < cfg.Episodes; ep++ {
		manifest, err := dash.NewManifest(video, cfg.Ladder, dash.ManifestConfig{Seed: cfg.Seed + int64(ep)})
		if err != nil {
			return nil, fmt.Errorf("learn: episode %d manifest: %w", ep, err)
		}
		// Rotate channel families so the table sees smooth drifts
		// (OU room/vehicle) and abrupt outage bursts (Gilbert-Elliott).
		var link netsim.Link
		switch ep % 3 {
		case 0:
			ch, err := netsim.NewChannel(netsim.RoomSignal, netsim.FadingConfig{}, pm.NominalThroughputMBps, cfg.Seed*1000+int64(ep))
			if err != nil {
				return nil, fmt.Errorf("learn: episode %d channel: %w", ep, err)
			}
			link = ch
		case 1:
			ch, err := netsim.NewChannel(netsim.VehicleSignal, netsim.FadingConfig{}, pm.NominalThroughputMBps, cfg.Seed*1000+int64(ep))
			if err != nil {
				return nil, fmt.Errorf("learn: episode %d channel: %w", ep, err)
			}
			link = ch
		default:
			ch, err := netsim.NewGilbertElliott(netsim.DefaultGilbertElliott(), cfg.Seed*1000+int64(ep))
			if err != nil {
				return nil, fmt.Errorf("learn: episode %d channel: %w", ep, err)
			}
			link = ch
		}
		agent.Reset()
		if _, err := sim.Run(sim.Config{
			Manifest:  manifest,
			Link:      link,
			Algorithm: agent,
			Power:     pm,
			QoE:       qm,
		}); err != nil {
			return nil, fmt.Errorf("learn: episode %d: %w", ep, err)
		}
	}
	agent.Freeze()
	return agent, nil
}
