// Package learn implements a reinforcement-learned bitrate controller
// in the spirit of Pensieve (Mao et al., SIGCOMM 2017 — the paper's
// reference [27]), scaled down to a dependency-free tabular Q-learning
// agent: the state is (buffer bin, bandwidth bin, previous rung), the
// action is the next rung, and the reward is the linear QoE used by
// the MPC line of work (bitrate − rebuffer penalty − switch penalty).
//
// The agent trains *through* the standard abr.Algorithm interface by
// replaying simulated sessions: each ChooseRung call finalises the
// previous decision's Q-update using the measured throughput fed back
// via ObserveDownload. A frozen (greedy) agent is a drop-in Algorithm
// for the simulator and the HTTP client alike.
package learn

import (
	"errors"
	"fmt"
	"math"
)

// StateSpace discretises the observation into a table index.
type StateSpace struct {
	// BufferBins splits [0, BufferMaxSec] evenly.
	BufferBins int
	// BufferMaxSec is the top of the buffer range.
	BufferMaxSec float64
	// BandwidthBins splits bandwidth on a log scale over
	// [BandwidthMinMbps, BandwidthMaxMbps].
	BandwidthBins    int
	BandwidthMinMbps float64
	BandwidthMaxMbps float64
	// Rungs is the ladder size (actions and the prev-rung axis).
	Rungs int
}

// DefaultStateSpace sizes the table for the evaluation ladder.
func DefaultStateSpace(rungs int) StateSpace {
	return StateSpace{
		BufferBins:       12,
		BufferMaxSec:     36,
		BandwidthBins:    10,
		BandwidthMinMbps: 0.1,
		BandwidthMaxMbps: 100,
		Rungs:            rungs,
	}
}

// Validate reports whether the space is usable.
func (s StateSpace) Validate() error {
	if s.BufferBins < 1 || s.BandwidthBins < 1 || s.Rungs < 1 {
		return errors.New("learn: bins and rungs must be positive")
	}
	if s.BufferMaxSec <= 0 {
		return errors.New("learn: buffer range must be positive")
	}
	if s.BandwidthMinMbps <= 0 || s.BandwidthMaxMbps <= s.BandwidthMinMbps {
		return errors.New("learn: bandwidth range must be positive and ordered")
	}
	return nil
}

// Size returns the number of states.
func (s StateSpace) Size() int {
	return s.BufferBins * s.BandwidthBins * s.Rungs
}

// Encode maps an observation to a state index; inputs are clamped into
// range, and prevRung < 0 (startup) maps to rung 0.
func (s StateSpace) Encode(bufferSec, bwMbps float64, prevRung int) int {
	b := int(bufferSec / s.BufferMaxSec * float64(s.BufferBins))
	if b < 0 {
		b = 0
	}
	if b >= s.BufferBins {
		b = s.BufferBins - 1
	}
	if bwMbps < s.BandwidthMinMbps {
		bwMbps = s.BandwidthMinMbps
	}
	if bwMbps > s.BandwidthMaxMbps {
		bwMbps = s.BandwidthMaxMbps
	}
	logSpan := math.Log(s.BandwidthMaxMbps / s.BandwidthMinMbps)
	w := int(math.Log(bwMbps/s.BandwidthMinMbps) / logSpan * float64(s.BandwidthBins))
	if w >= s.BandwidthBins {
		w = s.BandwidthBins - 1
	}
	if prevRung < 0 {
		prevRung = 0
	}
	if prevRung >= s.Rungs {
		prevRung = s.Rungs - 1
	}
	return (b*s.BandwidthBins+w)*s.Rungs + prevRung
}

// QTable is the learned action-value table.
type QTable struct {
	space StateSpace
	q     [][]float64 // [state][action]
	seen  []int       // visit counts per state (diagnostics)
}

// NewQTable allocates a zeroed table.
func NewQTable(space StateSpace) (*QTable, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	q := make([][]float64, space.Size())
	for i := range q {
		q[i] = make([]float64, space.Rungs)
	}
	return &QTable{space: space, q: q, seen: make([]int, space.Size())}, nil
}

// Space returns the table's state space.
func (t *QTable) Space() StateSpace { return t.space }

// Best returns the greedy action and its value for a state.
func (t *QTable) Best(state int) (action int, value float64) {
	row := t.q[state]
	best := 0
	for a := 1; a < len(row); a++ {
		if row[a] > row[best] {
			best = a
		}
	}
	return best, row[best]
}

// Update applies the Q-learning rule
// Q(s,a) += lr * (r + gamma*max_a' Q(s',a') - Q(s,a)).
func (t *QTable) Update(state, action, nextState int, reward, lr, gamma float64) {
	_, nextBest := t.Best(nextState)
	t.q[state][action] += lr * (reward + gamma*nextBest - t.q[state][action])
	t.seen[state]++
}

// CoverageFraction reports the fraction of states visited at least
// once during training.
func (t *QTable) CoverageFraction() float64 {
	visited := 0
	for _, n := range t.seen {
		if n > 0 {
			visited++
		}
	}
	return float64(visited) / float64(len(t.seen))
}

// Reward weighs the per-segment outcome, mirroring the MPC-family QoE.
type Reward struct {
	// RebufferPenaltyPerSec scales predicted stall seconds.
	RebufferPenaltyPerSec float64
	// SwitchPenaltyPerMbps scales |bitrate change|.
	SwitchPenaltyPerMbps float64
}

// DefaultReward returns the MPC-paper weights.
func DefaultReward() Reward {
	return Reward{RebufferPenaltyPerSec: 4.3, SwitchPenaltyPerMbps: 1.0}
}

// Score computes the reward of choosing bitrate br (Mbps) with the
// previous bitrate prevBR, when the segment's download was expected to
// stall stallSec seconds.
func (r Reward) Score(br, prevBR, stallSec float64) float64 {
	return br - r.RebufferPenaltyPerSec*stallSec - r.SwitchPenaltyPerMbps*math.Abs(br-prevBR)
}

// epsilonSchedule decays exploration linearly over training.
type epsilonSchedule struct {
	start, end float64
	steps      int
	done       int
}

func (e *epsilonSchedule) next() float64 {
	if e.steps <= 0 {
		return e.end
	}
	frac := float64(e.done) / float64(e.steps)
	if frac > 1 {
		frac = 1
	}
	e.done++
	return e.start + (e.end-e.start)*frac
}

// Hyper bundles the training hyper-parameters.
type Hyper struct {
	// LearningRate is the Q-update step size.
	LearningRate float64
	// Gamma is the discount factor.
	Gamma float64
	// EpsilonStart/EpsilonEnd bound the linear exploration decay.
	EpsilonStart, EpsilonEnd float64
	// DecaySteps is the number of decisions over which epsilon decays.
	DecaySteps int
}

// DefaultHyper returns a stable small-table configuration.
func DefaultHyper() Hyper {
	return Hyper{
		LearningRate: 0.15,
		Gamma:        0.9,
		EpsilonStart: 0.4,
		EpsilonEnd:   0.02,
		DecaySteps:   20000,
	}
}

// Validate reports whether the hyper-parameters are usable.
func (h Hyper) Validate() error {
	if h.LearningRate <= 0 || h.LearningRate > 1 {
		return errors.New("learn: learning rate must be in (0, 1]")
	}
	if h.Gamma < 0 || h.Gamma >= 1 {
		return errors.New("learn: gamma must be in [0, 1)")
	}
	if h.EpsilonStart < 0 || h.EpsilonStart > 1 || h.EpsilonEnd < 0 || h.EpsilonEnd > h.EpsilonStart {
		return fmt.Errorf("learn: epsilon schedule %v -> %v invalid", h.EpsilonStart, h.EpsilonEnd)
	}
	return nil
}
