package learn

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// tableDoc is the JSON persistence format for a trained table: the
// state space (so a loaded table refuses mismatched ladders) plus the
// action values.
type tableDoc struct {
	Space StateSpace  `json:"space"`
	Q     [][]float64 `json:"q"`
	Seen  []int       `json:"seen"`
}

// Save writes the table as JSON — train once, ship the policy.
func (t *QTable) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tableDoc{Space: t.space, Q: t.q, Seen: t.seen})
}

// ErrCorruptTable is returned when a loaded table's shape is
// inconsistent with its declared state space.
var ErrCorruptTable = errors.New("learn: corrupt table document")

// LoadTable reads a table saved by Save.
func LoadTable(r io.Reader) (*QTable, error) {
	var doc tableDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("learn: decode table: %w", err)
	}
	if err := doc.Space.Validate(); err != nil {
		return nil, err
	}
	if len(doc.Q) != doc.Space.Size() {
		return nil, fmt.Errorf("%w: %d states for a %d-state space", ErrCorruptTable, len(doc.Q), doc.Space.Size())
	}
	for i, row := range doc.Q {
		if len(row) != doc.Space.Rungs {
			return nil, fmt.Errorf("%w: state %d has %d actions", ErrCorruptTable, i, len(row))
		}
	}
	if doc.Seen == nil {
		doc.Seen = make([]int, doc.Space.Size())
	}
	if len(doc.Seen) != doc.Space.Size() {
		return nil, fmt.Errorf("%w: seen counter length %d", ErrCorruptTable, len(doc.Seen))
	}
	return &QTable{space: doc.Space, q: doc.Q, seen: doc.Seen}, nil
}

// NewFrozenAgent wraps a previously trained table as a greedy
// evaluation-mode agent.
func NewFrozenAgent(table *QTable, seed int64) (*Agent, error) {
	if table == nil {
		return nil, errors.New("learn: nil table")
	}
	agent, err := NewAgent(table.space, DefaultHyper(), DefaultReward(), seed)
	if err != nil {
		return nil, err
	}
	agent.table = table
	agent.Freeze()
	return agent, nil
}
