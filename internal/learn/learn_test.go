package learn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateSpaceValidate(t *testing.T) {
	if err := DefaultStateSpace(14).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultStateSpace(14)
	bad.BufferBins = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero buffer bins accepted")
	}
	bad = DefaultStateSpace(14)
	bad.BandwidthMinMbps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero min bandwidth accepted")
	}
	bad = DefaultStateSpace(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero rungs accepted")
	}
}

func TestStateSpaceSize(t *testing.T) {
	s := DefaultStateSpace(14)
	if got, want := s.Size(), 12*10*14; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
}

// Encode always lands in range, regardless of inputs.
func TestEncodeInRange(t *testing.T) {
	s := DefaultStateSpace(14)
	f := func(bufRaw int16, bwRaw int32, prev int8) bool {
		buf := float64(bufRaw) / 10
		bw := math.Abs(float64(bwRaw)) / 1000
		idx := s.Encode(buf, bw, int(prev))
		return idx >= 0 && idx < s.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeMonotoneInBuffer(t *testing.T) {
	s := DefaultStateSpace(14)
	// Buffer bins ascend with buffer level (same bw, prev).
	prevIdx := -1
	for buf := 0.0; buf <= 40; buf += 3 {
		idx := s.Encode(buf, 10, 5)
		if idx < prevIdx {
			t.Fatalf("state index decreased at buffer %v", buf)
		}
		prevIdx = idx
	}
}

func TestEncodeDistinguishesBandwidth(t *testing.T) {
	s := DefaultStateSpace(14)
	if s.Encode(10, 0.2, 5) == s.Encode(10, 50, 5) {
		t.Error("0.2 and 50 Mbps map to the same state")
	}
}

func TestQTableUpdateMath(t *testing.T) {
	table, err := NewQTable(StateSpace{
		BufferBins: 2, BufferMaxSec: 10,
		BandwidthBins: 2, BandwidthMinMbps: 1, BandwidthMaxMbps: 10,
		Rungs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One update from zero: Q(s,a) = lr * reward.
	table.Update(0, 1, 3, 10, 0.5, 0.9)
	if _, v := table.Best(0); v != 5 {
		t.Errorf("Best value = %v, want 5", v)
	}
	if a, _ := table.Best(0); a != 1 {
		t.Errorf("Best action = %v, want 1", a)
	}
	// Bootstrapping: value of next state feeds back.
	table.Update(3, 0, 0, 0, 1.0, 0.9) // Q(3,0) = 0 + 0.9*5 = 4.5
	if _, v := table.Best(3); math.Abs(v-4.5) > 1e-12 {
		t.Errorf("bootstrapped value = %v, want 4.5", v)
	}
	if table.CoverageFraction() <= 0 {
		t.Error("coverage not tracked")
	}
}

func TestNewQTableRejectsBadSpace(t *testing.T) {
	if _, err := NewQTable(StateSpace{}); err == nil {
		t.Error("zero space accepted")
	}
}

func TestRewardScore(t *testing.T) {
	r := DefaultReward()
	base := r.Score(3.0, 3.0, 0)
	if base != 3.0 {
		t.Errorf("steady reward = %v, want 3.0", base)
	}
	if got := r.Score(3.0, 3.0, 1); got >= base {
		t.Error("stall did not reduce reward")
	}
	if got := r.Score(3.0, 1.5, 0); got >= base {
		t.Error("switch did not reduce reward")
	}
}

func TestHyperValidate(t *testing.T) {
	if err := DefaultHyper().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Hyper){
		func(h *Hyper) { h.LearningRate = 0 },
		func(h *Hyper) { h.LearningRate = 1.5 },
		func(h *Hyper) { h.Gamma = 1 },
		func(h *Hyper) { h.EpsilonStart = 2 },
		func(h *Hyper) { h.EpsilonEnd = h.EpsilonStart + 0.1 },
	}
	for i, mut := range cases {
		h := DefaultHyper()
		mut(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: invalid hyper accepted", i)
		}
	}
}

func TestEpsilonScheduleDecays(t *testing.T) {
	e := epsilonSchedule{start: 0.4, end: 0.0, steps: 4}
	values := []float64{e.next(), e.next(), e.next(), e.next(), e.next(), e.next()}
	for i := 1; i < len(values); i++ {
		if values[i] > values[i-1]+1e-12 {
			t.Fatalf("epsilon increased: %v", values)
		}
	}
	if values[len(values)-1] != 0 {
		t.Errorf("epsilon did not reach the floor: %v", values)
	}
	// Zero steps: constant at end.
	z := epsilonSchedule{start: 0.4, end: 0.1, steps: 0}
	if z.next() != 0.1 {
		t.Error("zero-step schedule not pinned to end")
	}
}
