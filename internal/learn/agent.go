package learn

import (
	"errors"
	"math/rand"

	"ecavs/internal/abr"
	"ecavs/internal/netsim"
)

// Agent is the Q-learning bitrate controller. In training mode it
// explores epsilon-greedily and updates its table online; frozen, it
// acts greedily and is a plain abr.Algorithm.
//
// Construct with NewAgent; the zero value is unusable.
type Agent struct {
	table  *QTable
	hyper  Hyper
	reward Reward
	eps    epsilonSchedule
	rng    *rand.Rand
	est    netsim.BandwidthEstimator

	training bool

	// pending decision awaiting its outcome.
	hasPending  bool
	pendState   int
	pendAction  int
	pendBuffer  float64
	pendBR      float64
	pendPrevBR  float64
	pendSizeMB  float64
	lastThMbps  float64
	haveOutcome bool
}

var _ abr.Algorithm = (*Agent)(nil)

// NewAgent returns a training-mode agent over a fresh table.
func NewAgent(space StateSpace, hyper Hyper, reward Reward, seed int64) (*Agent, error) {
	if err := hyper.Validate(); err != nil {
		return nil, err
	}
	table, err := NewQTable(space)
	if err != nil {
		return nil, err
	}
	return &Agent{
		table:    table,
		hyper:    hyper,
		reward:   reward,
		eps:      epsilonSchedule{start: hyper.EpsilonStart, end: hyper.EpsilonEnd, steps: hyper.DecaySteps},
		rng:      rand.New(rand.NewSource(seed)),
		est:      netsim.NewHarmonicMeanEstimator(5),
		training: true,
	}, nil
}

// Freeze switches the agent to greedy (evaluation) mode.
func (a *Agent) Freeze() { a.training = false }

// Training reports whether the agent still explores and updates.
func (a *Agent) Training() bool { return a.training }

// Table exposes the learned table (e.g. for coverage diagnostics).
func (a *Agent) Table() *QTable { return a.table }

// Name implements abr.Algorithm.
func (a *Agent) Name() string {
	if a.training {
		return "QLearn(train)"
	}
	return "QLearn"
}

// ErrBadContext is returned for contexts without a ladder.
var ErrBadContext = errors.New("learn: context missing ladder")

// ChooseRung implements abr.Algorithm. In training mode it first
// finalises the previous decision's Q-update using the throughput that
// ObserveDownload delivered.
func (a *Agent) ChooseRung(ctx abr.Context) (int, error) {
	k := len(ctx.Ladder)
	if k == 0 {
		return 0, ErrBadContext
	}
	if k != a.table.space.Rungs {
		return 0, errors.New("learn: ladder size does not match the trained table")
	}
	bw, ok := a.est.Estimate()
	if !ok {
		bw = a.table.space.BandwidthMinMbps
	}
	state := a.table.space.Encode(ctx.BufferSec, bw, ctx.PrevRung)

	if a.training && a.hasPending && a.haveOutcome {
		// Outcome of the pending decision: stall it (approximately)
		// caused, from the measured throughput.
		dl := 0.0
		if a.lastThMbps > 0 {
			dl = a.pendSizeMB / (a.lastThMbps / 8)
		}
		stall := dl - a.pendBuffer
		if stall < 0 {
			stall = 0
		}
		r := a.reward.Score(a.pendBR, a.pendPrevBR, stall)
		a.table.Update(a.pendState, a.pendAction, state, r, a.hyper.LearningRate, a.hyper.Gamma)
		a.hasPending = false
		a.haveOutcome = false
	}

	var action int
	if a.training && a.rng.Float64() < a.eps.next() {
		action = a.rng.Intn(k)
	} else {
		action, _ = a.table.Best(state)
	}

	if a.training {
		size := ctx.Ladder[action].BitrateMbps / 8 * ctx.SegmentDurationSec
		if len(ctx.SegmentSizesMB) == k {
			size = ctx.SegmentSizesMB[action]
		}
		prevBR := 0.0
		if ctx.PrevRung >= 0 && ctx.PrevRung < k {
			prevBR = ctx.Ladder[ctx.PrevRung].BitrateMbps
		}
		a.hasPending = true
		a.haveOutcome = false
		a.pendState = state
		a.pendAction = action
		a.pendBuffer = ctx.BufferSec
		a.pendBR = ctx.Ladder[action].BitrateMbps
		a.pendPrevBR = prevBR
		a.pendSizeMB = size
	}
	return action, nil
}

// ObserveDownload implements abr.Algorithm.
func (a *Agent) ObserveDownload(thMbps float64) {
	a.est.Push(thMbps)
	a.lastThMbps = thMbps
	if a.hasPending {
		a.haveOutcome = true
	}
}

// Reset implements abr.Algorithm: it clears per-session state but
// keeps the learned table (an episode boundary, not amnesia).
func (a *Agent) Reset() {
	a.est.Reset()
	a.hasPending = false
	a.haveOutcome = false
	a.lastThMbps = 0
}
