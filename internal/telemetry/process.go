package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"

	"ecavs/internal/tracing"
)

// processStart is captured at package init, which is as close to
// process start as a library can observe.
var processStart = time.Now()

// RegisterProcessMetrics adds the standard process-identity series:
//
//	process_start_time_seconds                 Unix time the process started
//	go_build_info{version,vcs_revision}        constant 1 carrying build identity
//
// Serve calls this automatically; call it directly when exposing a
// Handler through some other server. A nil registry is a no-op, and
// re-registration is idempotent.
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := float64(processStart.UnixNano()) / 1e9
	r.GaugeFunc("process_start_time_seconds",
		"Unix time the process started, in seconds.", func() float64 { return start })
	version, revision := buildIdentity()
	r.Info("go_build_info", "Go toolchain and VCS identity of this binary.",
		map[string]string{"version": version, "vcs_revision": revision})
}

// buildIdentity reads the toolchain version and VCS revision baked into
// the binary; test binaries and non-VCS builds report "unknown".
func buildIdentity() (version, revision string) {
	version = runtime.Version()
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	return version, revision
}

// AttachTraces wires a trace store into the registry: Handler gains
// the /debug/traces explorer (list, per-trace detail, NDJSON export)
// and the registry gains scrape-time gauges over the store's tail
// sampling:
//
//	tracing_fragments_seen     fragments offered to the sampler
//	tracing_fragments_kept     fragments retained (any verdict)
//	tracing_fragments_dropped  fragments the sampler discarded
//	tracing_store_held         fragments currently in the ring
//
// Nil registry or nil store is a no-op.
func (r *Registry) AttachTraces(store *tracing.Store) {
	if r == nil || store == nil {
		return
	}
	r.mu.Lock()
	r.traces = store
	r.mu.Unlock()
	r.GaugeFunc("tracing_fragments_seen",
		"Completed trace fragments offered to the tail sampler.",
		func() float64 { return float64(store.Stats().Seen) })
	r.GaugeFunc("tracing_fragments_kept",
		"Trace fragments retained by the tail sampler.",
		func() float64 { return float64(store.Stats().Kept) })
	r.GaugeFunc("tracing_fragments_dropped",
		"Trace fragments discarded by the tail sampler.",
		func() float64 { return float64(store.Stats().Dropped) })
	r.GaugeFunc("tracing_store_held",
		"Trace fragments currently held in the ring buffer.",
		func() float64 { return float64(store.Len()) })
}

// traceStore reads the attached store (nil when none).
func (r *Registry) traceStore() *tracing.Store {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traces
}
