package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ecavs/internal/tracing"
)

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterProcessMetrics(r) // idempotent
	RegisterProcessMetrics(nil)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	m := regexp.MustCompile(`(?m)^process_start_time_seconds (\S+)$`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("process_start_time_seconds missing:\n%s", out)
	}
	var start float64
	if err := json.Unmarshal([]byte(m[1]), &start); err != nil {
		t.Fatalf("unparseable start time %q", m[1])
	}
	now := float64(time.Now().Unix()) + 1
	if start <= 0 || start > now || now-start > 3600 {
		t.Fatalf("start time %v implausible (now %v)", start, now)
	}

	bi := regexp.MustCompile(`(?m)^go_build_info\{(.+)\} 1$`).FindStringSubmatch(out)
	if bi == nil {
		t.Fatalf("go_build_info missing or not constant 1:\n%s", out)
	}
	if !strings.Contains(bi[1], `version="go`) || !strings.Contains(bi[1], `vcs_revision="`) {
		t.Fatalf("go_build_info labels incomplete: %s", bi[1])
	}

	// JSON exposition carries the same labels as a map.
	var sj strings.Builder
	if err := r.WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name   string `json:"name"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sj.String()), &fams); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "go_build_info" {
			found = true
			if f.Series[0].Value != 1 || f.Series[0].Labels["version"] == "" || f.Series[0].Labels["vcs_revision"] == "" {
				t.Fatalf("go_build_info JSON series malformed: %+v", f.Series[0])
			}
		}
	}
	if !found {
		t.Fatal("go_build_info missing from JSON exposition")
	}
}

// TestAttachTraces checks the handler grows the /debug/traces surface
// and the sampling gauges once a store is attached — and 404s without.
func TestAttachTraces(t *testing.T) {
	bare := httptest.NewServer(NewRegistry().Handler())
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/traces without a store: %d, want 404", resp.StatusCode)
	}

	store := tracing.NewStore(8)
	tr := tracing.New(tracing.Config{Service: "svc", Sampler: tracing.Sampler{Ratio: 1}, Seed: 1}, store)
	sp := tr.StartRoot("op")
	sp.End()

	r := NewRegistry()
	r.AttachTraces(store)
	r.AttachTraces(nil) // no-op, must not clear or panic
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err = http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"traces"`) {
		t.Fatalf("/debug/traces = %d:\n%s", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{"tracing_fragments_seen 1", "tracing_fragments_kept 1", "tracing_store_held 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestConcurrentScrapes hammers /metrics and /metrics.json while
// counters, gauges, histograms, and new series are being written —
// run under -race, this pins the exposition path as data-race free.
func TestConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: hot-path increments plus registration churn.
	c := r.Counter("scrape_test_total", "writes under scrape")
	g := r.Gauge("scrape_test_gauge", "gauge under scrape")
	h := r.Histogram("scrape_test_seconds", "histogram under scrape", DefLatencyBuckets())
	vec := r.CounterVec("scrape_test_rung_total", "labeled writes under scrape", "rung")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(i%10) / 100)
				vec.With([]string{"0", "1", "2"}[i%3]).Inc()
				if i%50 == 0 {
					// Registration is part of the concurrent surface too.
					r.Counter("scrape_test_total", "writes under scrape").Inc()
				}
				i++
			}
		}(w)
	}

	// Scrapers: both expositions, continuously.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				body := readAll(t, resp)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || !strings.Contains(body, "scrape_test_total") {
					t.Errorf("scrape %s = %d", path, resp.StatusCode)
					return
				}
			}
		}([]string{"/metrics", "/metrics.json"}[s])
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if c.Value() == 0 {
		t.Fatal("writers made no progress")
	}
}
