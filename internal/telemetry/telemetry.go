// Package telemetry is the repo's observability substrate: lock-free
// atomic counters, gauges, and fixed-bucket histograms collected in a
// named registry and exposed over HTTP in Prometheus text format and
// JSON, alongside net/http/pprof and expvar. It is stdlib-only and
// built for instrumenting hot paths: every metric type is a no-op on a
// nil receiver, so call sites need no `if enabled` branching — wiring
// a nil registry (or never attaching one) leaves the instrumented code
// allocation-free and branch-cheap, which is what keeps the campaign
// runner's 18-alloc session pin and bit-identical determinism intact
// when telemetry is off.
//
// Naming follows the Prometheus conventions: snake_case metric names
// with a unit suffix (_seconds, _bytes) and _total for counters;
// labels carry low-cardinality dimensions (ladder rung, algorithm
// name). See DESIGN.md §9 for the full metric inventory.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ecavs/internal/tracing"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use; a nil *Counter is a no-op, so disabled telemetry costs one
// predictable branch per call site.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative-export buckets.
// Construct via Registry.Histogram; the zero value is unusable. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    Gauge
}

// newHistogram validates and copies the bucket bounds.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket bound")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return nil, fmt.Errorf("telemetry: histogram bounds not strictly ascending at %v", b[i])
		}
	}
	if math.IsInf(b[len(b)-1], +1) {
		b = b[:len(b)-1] // +Inf is implicit
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}, nil
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DefLatencyBuckets is the default latency histogram layout: 1 ms to
// ~16 s in powers of two — wide enough for both loopback tests and
// shaped transfers.
func DefLatencyBuckets() []float64 {
	b := make([]float64, 0, 15)
	for v := 0.001; v < 20; v *= 2 {
		b = append(b, v)
	}
	return b
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one sample stream inside a family: an optional label value
// plus exactly one backing metric. Info-style series instead carry a
// constant multi-label set, prerendered for the text exposition and
// kept as a map for the JSON one.
type series struct {
	labelValue  string
	constLabels string            // prerendered `k="v",k2="v2"`, info series only
	labelMap    map[string]string // the same labels, for JSON exposition
	counter     *Counter
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *Histogram
}

// family is one named metric with HELP/TYPE metadata and one or more
// label-distinguished series.
type family struct {
	name, help string
	kind       metricKind
	labelKey   string // empty for unlabeled families
	series     []*series
	byLabel    map[string]*series
}

// Registry holds named metric families in registration order. All
// methods are safe for concurrent use, and every lookup/registration
// method on a nil *Registry returns a nil metric — the whole
// instrumentation surface degrades to no-ops when telemetry is off.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	traces   *tracing.Store // set by AttachTraces; nil = no explorer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName enforces the Prometheus metric/label charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the family, creating it on first use. Re-registering
// the same name with a different kind or label key panics: that is a
// programming error that would corrupt the exposition.
func (r *Registry) lookup(name, help string, kind metricKind, labelKey string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if labelKey != "" && !validName(labelKey) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", labelKey))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s/%q (was %s/%q)",
				name, kind, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey,
		byLabel: make(map[string]*series)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// seriesFor returns the family's series for a label value, creating it
// with the given constructor on first use.
func (f *family) seriesFor(labelValue string, build func(*series)) *series {
	if s, ok := f.byLabel[labelValue]; ok {
		return s
	}
	s := &series{labelValue: labelValue}
	build(s)
	f.series = append(f.series, s)
	f.byLabel[labelValue] = s
	return s
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindCounter, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.seriesFor("", func(s *series) { s.counter = &Counter{} }).counter
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.seriesFor("", func(s *series) { s.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge computed at scrape time — the natural
// shape for derived values (sessions/sec, ETA) that would otherwise
// need a refresh goroutine. fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	f := r.lookup(name, help, kindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	f.seriesFor("", func(s *series) { s.gaugeFn = fn })
}

// Histogram registers (or returns the existing) unlabeled histogram
// with the given ascending bucket bounds (+Inf implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindHistogram, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	return f.seriesFor("", func(s *series) {
		h, err := newHistogram(bounds)
		if err != nil {
			panic(err)
		}
		s.hist = h
	}).hist
}

// Info registers an info-style gauge: a constant 1 whose payload is
// its label set (the Prometheus build-info idiom — `go_build_info
// {version="go1.22",vcs_revision="abc"} 1`). Unlike the Vec types an
// info series carries several constant labels at once; re-registering
// the same name replaces nothing and keeps the first label set.
func (r *Registry) Info(name, help string, labels map[string]string) {
	if r == nil {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if !validName(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", k))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb []byte
	lm := make(map[string]string, len(labels))
	for i, k := range keys {
		if i > 0 {
			sb = append(sb, ',')
		}
		sb = append(sb, k...)
		sb = append(sb, '=', '"')
		sb = append(sb, escapeLabel(labels[k])...)
		sb = append(sb, '"')
		lm[k] = labels[k]
	}
	f := r.lookup(name, help, kindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	f.seriesFor("", func(s *series) {
		s.constLabels = string(sb)
		s.labelMap = lm
		g := &Gauge{}
		g.Set(1)
		s.gauge = g
	})
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	r *Registry
	f *family
}

// CounterVec registers (or returns the existing) labeled counter
// family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, f: r.lookup(name, help, kindCounter, labelKey)}
}

// With returns the counter for one label value, creating it on first
// use. Resolve series once, outside hot loops.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.seriesFor(labelValue, func(s *series) { s.counter = &Counter{} }).counter
}

// GaugeVec is a gauge family keyed by one label.
type GaugeVec struct {
	r *Registry
	f *family
}

// GaugeVec registers (or returns the existing) labeled gauge family.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r: r, f: r.lookup(name, help, kindGauge, labelKey)}
}

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge {
	if v == nil {
		return nil
	}
	v.r.mu.Lock()
	defer v.r.mu.Unlock()
	return v.f.seriesFor(labelValue, func(s *series) { s.gauge = &Gauge{} }).gauge
}

// snapshot copies the family list (not the live metric values) so
// exposition can walk it without holding the registry lock while
// formatting.
func (r *Registry) snapshot() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	for i, f := range out {
		cp := *f
		cp.series = make([]*series, len(f.series))
		copy(cp.series, f.series)
		out[i] = &cp
	}
	return out
}
