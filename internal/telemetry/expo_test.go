package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildGoldenRegistry assembles one of every family shape with fixed
// values, so the exposition is fully deterministic.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests served.")
	c.Add(42)
	g := r.Gauge("queue_depth", "Current queue depth.")
	g.Set(3.5)
	r.GaugeFunc("uptime_ratio", "Derived at scrape time.", func() float64 { return 0.25 })
	v := r.CounterVec("rung_requests_total", "Requests per ladder rung.", "rung")
	v.With("0").Add(7)
	v.With("3").Add(2)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

// TestPrometheusGolden pins the exact text exposition byte-for-byte:
// HELP/TYPE ordering, label rendering, cumulative histogram buckets,
// and float formatting are all contract surface for scrapers.
func TestPrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Total requests served.
# TYPE requests_total counter
requests_total 42
# HELP queue_depth Current queue depth.
# TYPE queue_depth gauge
queue_depth 3.5
# HELP uptime_ratio Derived at scrape time.
# TYPE uptime_ratio gauge
uptime_ratio 0.25
# HELP rung_requests_total Requests per ladder rung.
# TYPE rung_requests_total counter
rung_requests_total{rung="0"} 7
rung_requests_total{rung="3"} 2
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) `)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|NaN|\+Inf|-Inf)$`)
)

// TestPrometheusWellFormed parses the exposition line by line: every
// sample must follow a HELP and TYPE pair for its family, names must
// be legal, and no series key (name + labels) may repeat.
func TestPrometheusWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	helped := map[string]bool{}
	typed := map[string]string{}
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				t.Errorf("duplicate HELP for %s", m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if _, dup := typed[m[1]]; dup {
				t.Errorf("duplicate TYPE for %s", m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable line: %q", line)
			continue
		}
		name, labels := m[1], m[2]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if !helped[family] || typed[family] == "" {
			t.Errorf("sample %s appears before its HELP/TYPE", name)
		}
		key := name + labels
		if seen[key] {
			t.Errorf("duplicate series %s", key)
		}
		seen[key] = true
		if _, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64); err != nil && m[3] != "NaN" {
			t.Errorf("sample %s has unparseable value %q", name, m[3])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONExposition(t *testing.T) {
	var sb strings.Builder
	if err := buildGoldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var families []struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
			Count  int64             `json:"count"`
			Sum    float64           `json:"sum"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &families); err != nil {
		t.Fatalf("JSON exposition does not parse: %v", err)
	}
	byName := map[string]int{}
	for i, f := range families {
		byName[f.Name] = i
	}
	if f := families[byName["requests_total"]]; f.Series[0].Value != 42 {
		t.Errorf("requests_total = %v, want 42", f.Series[0].Value)
	}
	if f := families[byName["rung_requests_total"]]; len(f.Series) != 2 || f.Series[0].Labels["rung"] != "0" {
		t.Errorf("rung_requests_total series malformed: %+v", f.Series)
	}
	if f := families[byName["latency_seconds"]]; f.Series[0].Count != 3 {
		t.Errorf("latency_seconds count = %d, want 3", f.Series[0].Count)
	}
}

// TestHandlerEndpoints exercises the full mux: both expositions plus
// the pprof and expvar debug surfaces.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(buildGoldenRegistry().Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return readAll(t, resp), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "requests_total 42") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}

	body, ct = get("/metrics.json")
	if !strings.Contains(body, `"requests_total"`) || !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json malformed (content type %q):\n%s", ct, body)
	}

	if body, _ = get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
	if body, _ = get("/debug/pprof/heap?debug=1"); !strings.Contains(body, "heap") {
		t.Error("/debug/pprof/heap not served")
	}
	if body, _ = get("/debug/vars"); !strings.Contains(body, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
