package telemetry

import (
	"strconv"
	"testing"
)

// BenchmarkCounterInc is the single-threaded hot-path cost of one
// increment — what every instrumented call site pays when telemetry is
// live.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncDisabled is the same call site with telemetry off
// (nil counter) — the overhead the zero-cost contract allows.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterParallel measures contended increments — the shape
// the campaign runner produces with one observation per session across
// all shards.
func BenchmarkCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_par_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", DefLatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 250)
	}
}

// BenchmarkWritePrometheus renders a registry of realistic size (a few
// families, a 14-rung vec, histograms) — the per-scrape cost.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_rung_total", "per rung", "rung")
	for i := 0; i < 14; i++ {
		v.With(strconv.Itoa(i)).Add(int64(i * 100))
	}
	r.Counter("bench_sessions_total", "").Add(12345)
	r.Gauge("bench_rate", "").Set(2917.4)
	h := r.Histogram("bench_latency_seconds", "", DefLatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 50)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}
