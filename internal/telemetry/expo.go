package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"ecavs/internal/tracing"
)

// formatFloat renders a sample value the way Prometheus expects:
// shortest representation, Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per
// family, then its series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			label := ""
			switch {
			case f.labelKey != "":
				label = fmt.Sprintf(`{%s="%s"}`, f.labelKey, escapeLabel(s.labelValue))
			case s.constLabels != "":
				label = "{" + s.constLabels + "}"
			}
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, label, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, label, formatFloat(s.gauge.Value()))
			case s.gaugeFn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, label, formatFloat(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(bw *bufio.Writer, f *family, s *series) {
	h := s.hist
	// One consistent read per bucket; cumulative sums computed here.
	var cum int64
	prefix := f.name + "_bucket{"
	if f.labelKey != "" {
		prefix = fmt.Sprintf(`%s_bucket{%s="%s",`, f.name, f.labelKey, escapeLabel(s.labelValue))
	}
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(bw, `%sle="%s"} %d`+"\n", prefix, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(bw, `%sle="+Inf"} %d`+"\n", prefix, cum)
	suffix := ""
	if f.labelKey != "" {
		suffix = fmt.Sprintf(`{%s="%s"}`, f.labelKey, escapeLabel(s.labelValue))
	}
	fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(bw, "%s_count%s %d\n", f.name, suffix, cum)
}

// jsonSeries is one sample in the JSON exposition.
type jsonSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
}

// jsonFamily is one metric family in the JSON exposition.
type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help"`
	Type   string       `json:"type"`
	Series []jsonSeries `json:"series"`
}

// WriteJSON renders the registry as a JSON array of families — the
// machine-readable mirror of WritePrometheus for tooling that would
// rather not parse the text format.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := r.snapshot()
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.name, Help: f.help, Type: string(f.kind), Series: []jsonSeries{}}
		for _, s := range f.series {
			js := jsonSeries{}
			switch {
			case f.labelKey != "":
				js.Labels = map[string]string{f.labelKey: s.labelValue}
			case s.labelMap != nil:
				js.Labels = s.labelMap
			}
			switch {
			case s.counter != nil:
				js.Value = float64(s.counter.Value())
			case s.gauge != nil:
				js.Value = s.gauge.Value()
			case s.gaugeFn != nil:
				js.Value = s.gaugeFn()
			case s.hist != nil:
				js.Count = s.hist.Count()
				js.Sum = s.hist.Sum()
			}
			jf.Series = append(jf.Series, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Handler returns the telemetry endpoint mux:
//
//	/metrics              Prometheus text exposition
//	/metrics.json         JSON exposition
//	/debug/pprof/*        CPU, heap, goroutine, ... profiles
//	/debug/vars           expvar (Go runtime memstats, cmdline)
//	/debug/traces         merged trace list (with AttachTraces)
//	/debug/traces/<id>    one merged trace, all spans
//	/debug/traces.ndjson  NDJSON trace export
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if ex := tracing.NewExplorer(r.traceStore()); ex != nil {
		mux.Handle("/debug/traces", ex)
		mux.Handle("/debug/traces/", ex)
		mux.Handle("/debug/traces.ndjson", ex)
	}
	return mux
}

// Serve starts the telemetry endpoint on addr in a background
// goroutine and returns the server (shut it down when done) and the
// bound address (useful with ":0"). The listener is up when Serve
// returns, so a scrape immediately after cannot race the bind. The
// standard process-identity series are registered on the way.
func Serve(addr string, r *Registry) (*http.Server, net.Addr, error) {
	RegisterProcessMetrics(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
