package telemetry

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registering the same counter returned a new instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}

	r.GaugeFunc("gf", "derived", func() float64 { return 42 })
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", DefLatencyBuckets())
	v := reg.CounterVec("xv_total", "", "k")
	gv := reg.GaugeVec("xv", "", "k")
	reg.GaugeFunc("xf", "", func() float64 { return 1 })

	// None of these may panic or allocate per call.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	v.With("a").Inc()
	gv.With("a").Set(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(1)
	}); allocs != 0 {
		t.Errorf("nil metric ops allocated %.1f times per run, want 0", allocs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Bucket occupancy: le=0.1 gets 0.05 and 0.1 (bounds are
	// inclusive), le=1 gets 0.5, le=10 gets 5, +Inf gets 50.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramBadBounds(t *testing.T) {
	r := NewRegistry()
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: expected panic", bounds)
				}
			}()
			r.Histogram("bad_seconds", "", bounds)
		}()
	}
}

func TestRegistryConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "a-b", "a b", "a{}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rung_total", "per-rung", "rung")
	a, b := v.With("0"), v.With("1")
	if a == b {
		t.Fatal("distinct label values share a counter")
	}
	if v.With("0") != a {
		t.Error("same label value resolved to a new counter")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Errorf("vec values = %d, %d, want 2, 1", a.Value(), b.Value())
	}
}

// TestConcurrentHammer drives counters, gauges, histograms, and lazy
// vec registration from many goroutines at once; run under -race (make
// obs does) this is the data-race gate, and the final counts must be
// exact — atomics lose nothing.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", DefLatencyBuckets())
	v := r.CounterVec("hammer_rung_total", "", "rung")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := v.With(strconv.Itoa(id % 4))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 100)
				mine.Inc()
				// Interleave scrapes with writes.
				if j%500 == 0 {
					_ = r.WritePrometheus(discard{})
				}
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG {
		t.Errorf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var vecTotal int64
	for i := 0; i < 4; i++ {
		vecTotal += v.With(strconv.Itoa(i)).Value()
	}
	if vecTotal != goroutines*perG {
		t.Errorf("vec total = %d, want %d", vecTotal, goroutines*perG)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
