package netsim

import (
	"errors"
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// constLink is a fixed-rate Link for exercising Download.
type constLink struct {
	now    float64
	signal float64
	rate   float64
}

func (l *constLink) Now() float64            { return l.now }
func (l *constLink) SignalDBm() float64      { return l.signal }
func (l *constLink) ThroughputMBps() float64 { return l.rate }
func (l *constLink) Advance(dt float64)      { l.now += dt }

func TestDownloadConstantRate(t *testing.T) {
	link := &constLink{signal: -95, rate: 2.0}
	res, err := Download(link, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.DurationSec, 5, 1e-9) {
		t.Errorf("DurationSec = %v, want 5", res.DurationSec)
	}
	if !almostEqual(res.MeanThroughputMBps, 2, 1e-9) {
		t.Errorf("MeanThroughputMBps = %v, want 2", res.MeanThroughputMBps)
	}
	if !almostEqual(res.MeanSignalDBm, -95, 1e-9) {
		t.Errorf("MeanSignalDBm = %v, want -95", res.MeanSignalDBm)
	}
	if !almostEqual(link.Now(), 5, 1e-9) {
		t.Errorf("link clock = %v, want 5", link.Now())
	}
}

func TestDownloadStepCallbackConservation(t *testing.T) {
	link := &constLink{signal: -100, rate: 1.5}
	var moved, dur float64
	res, err := Download(link, 7.3, func(s DownloadStep) {
		moved += s.TransferredMB
		dur += s.Dt
		if s.ThroughputMBps != 1.5 || s.SignalDBm != -100 {
			t.Errorf("unexpected step: %+v", s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(moved, 7.3, 1e-9) {
		t.Errorf("sum of TransferredMB = %v, want 7.3", moved)
	}
	if !almostEqual(dur, res.DurationSec, 1e-9) {
		t.Errorf("sum of Dt = %v, want %v", dur, res.DurationSec)
	}
}

func TestDownloadZeroSize(t *testing.T) {
	link := &constLink{rate: 1}
	res, err := Download(link, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationSec != 0 {
		t.Errorf("zero download duration = %v, want 0", res.DurationSec)
	}
	if link.Now() != 0 {
		t.Error("zero download advanced the link")
	}
}

func TestDownloadStalledLink(t *testing.T) {
	link := &constLink{rate: 0}
	_, err := Download(link, 1, nil)
	if !errors.Is(err, ErrStalledLink) {
		t.Errorf("err = %v, want ErrStalledLink", err)
	}
}

// recoveringLink is down for the first 2 s, then serves at 1 MB/s.
type recoveringLink struct{ constLink }

func (l *recoveringLink) ThroughputMBps() float64 {
	if l.now < 2 {
		return 0
	}
	return 1
}

func TestDownloadRecoversFromOutage(t *testing.T) {
	link := &recoveringLink{}
	res, err := Download(link, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DurationSec < 2.9 || res.DurationSec > 3.2 {
		t.Errorf("DurationSec = %v, want ≈ 3 (2 s outage + 1 s transfer)", res.DurationSec)
	}
}

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(RoomSignal, FadingConfig{}, nil, 1); !errors.Is(err, ErrNilRateMap) {
		t.Errorf("err = %v, want ErrNilRateMap", err)
	}
}

func flatRate(mbps float64) func(float64) float64 {
	return func(float64) float64 { return mbps }
}

func TestChannelSignalStaysNearMean(t *testing.T) {
	ch, err := NewChannel(RoomSignal, FadingConfig{}, flatRate(5), 42)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		ch.Advance(0.5)
		sum += ch.SignalDBm()
	}
	mean := sum / n
	if !almostEqual(mean, RoomSignal.MeanDBm, 2.5) {
		t.Errorf("long-run mean signal = %.1f, want ≈ %.1f", mean, RoomSignal.MeanDBm)
	}
}

func TestChannelClampsToRange(t *testing.T) {
	cfg := SignalConfig{MeanDBm: -118, ReversionRate: 0.05, VolatilityDB: 10}
	ch, err := NewChannel(cfg, FadingConfig{}, flatRate(5), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		ch.Advance(0.3)
		s := ch.SignalDBm()
		if s < -120 || s > -80 {
			t.Fatalf("signal %v escaped [-120, -80]", s)
		}
	}
}

func TestChannelMeanSchedule(t *testing.T) {
	cfg := SignalConfig{
		MeanDBm:       -90,
		MeanAt:        func(t float64) float64 { return -90 - 20*math.Min(1, t/100) },
		ReversionRate: 0.5,
		VolatilityDB:  0.5,
	}
	ch, err := NewChannel(cfg, FadingConfig{}, flatRate(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	ch.Advance(200)
	// After the schedule settles at -110, the signal should be nearby.
	if !almostEqual(ch.SignalDBm(), -110, 5) {
		t.Errorf("signal = %.1f, want ≈ -110 per schedule", ch.SignalDBm())
	}
}

func TestChannelFadingAroundNominal(t *testing.T) {
	ch, err := NewChannel(SignalConfig{MeanDBm: -90, VolatilityDB: 0.01}, FadingConfig{}, flatRate(4), 11)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		ch.Advance(0.1)
		th := ch.ThroughputMBps()
		if th < 0 {
			t.Fatal("negative throughput")
		}
		sum += th
	}
	mean := sum / n
	// Normalised lognormal fading: mean throughput ≈ nominal.
	if !almostEqual(mean, 4, 0.25) {
		t.Errorf("mean throughput = %.2f, want ≈ 4", mean)
	}
}

func TestChannelDeterministicBySeed(t *testing.T) {
	a, _ := NewChannel(VehicleSignal, FadingConfig{}, flatRate(3), 5)
	b, _ := NewChannel(VehicleSignal, FadingConfig{}, flatRate(3), 5)
	for i := 0; i < 100; i++ {
		a.Advance(0.25)
		b.Advance(0.25)
		if a.SignalDBm() != b.SignalDBm() || a.ThroughputMBps() != b.ThroughputMBps() {
			t.Fatal("channels with equal seeds diverged")
		}
	}
}

func TestChannelAdvanceNonPositive(t *testing.T) {
	ch, _ := NewChannel(RoomSignal, FadingConfig{}, flatRate(1), 1)
	before := ch.Now()
	ch.Advance(0)
	ch.Advance(-5)
	if ch.Now() != before {
		t.Error("non-positive Advance moved the clock")
	}
}

func TestTraceLinkValidation(t *testing.T) {
	if _, err := NewTraceLink(nil); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("err = %v, want ErrEmptyTrace", err)
	}
	unordered := []TracePoint{{TimeSec: 5}, {TimeSec: 1}}
	if _, err := NewTraceLink(unordered); !errors.Is(err, ErrUnorderedTrace) {
		t.Errorf("err = %v, want ErrUnorderedTrace", err)
	}
}

func TestTraceLinkReplay(t *testing.T) {
	pts := []TracePoint{
		{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 4},
		{TimeSec: 10, SignalDBm: -100, ThroughputMBps: 2},
		{TimeSec: 20, SignalDBm: -110, ThroughputMBps: 1},
	}
	link, err := NewTraceLink(pts)
	if err != nil {
		t.Fatal(err)
	}
	if link.Duration() != 20 {
		t.Errorf("Duration = %v, want 20", link.Duration())
	}
	if link.SignalDBm() != -90 || link.ThroughputMBps() != 4 {
		t.Error("wrong initial point")
	}
	link.Advance(10)
	if link.SignalDBm() != -100 {
		t.Errorf("at t=10 signal = %v, want -100", link.SignalDBm())
	}
	link.Advance(5)
	if link.ThroughputMBps() != 2 {
		t.Errorf("at t=15 throughput = %v, want 2 (zero-order hold)", link.ThroughputMBps())
	}
	link.Advance(100)
	if link.SignalDBm() != -110 {
		t.Errorf("past end signal = %v, want clamped -110", link.SignalDBm())
	}
}

func TestTraceLinkCopiesInput(t *testing.T) {
	pts := []TracePoint{{TimeSec: 0, ThroughputMBps: 4}}
	link, err := NewTraceLink(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0].ThroughputMBps = 99
	if link.ThroughputMBps() != 4 {
		t.Error("TraceLink aliases caller's slice")
	}
}

func TestTraceLinkDownload(t *testing.T) {
	pts := []TracePoint{
		{TimeSec: 0, SignalDBm: -90, ThroughputMBps: 2},
		{TimeSec: 5, SignalDBm: -110, ThroughputMBps: 0.5},
	}
	link, err := NewTraceLink(pts)
	if err != nil {
		t.Fatal(err)
	}
	// 12 MB: 10 MB in the first 5 s at 2 MB/s, then 2 MB at 0.5 MB/s.
	res, err := Download(link, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One 0.1 s integration step may straddle the rate change, so allow
	// up to one step's worth of fast transfer (0.2 MB at 2 MB/s instead
	// of 0.4 s at 0.5 MB/s).
	if !almostEqual(res.DurationSec, 9, 0.35) {
		t.Errorf("DurationSec = %v, want ≈ 9", res.DurationSec)
	}
}

func TestDownloadRampedSlowerThanFull(t *testing.T) {
	full := &constLink{signal: -95, rate: 2}
	resFull, err := Download(full, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ramped := &constLink{signal: -95, rate: 2}
	resRamp, err := DownloadRamped(ramped, 1, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resRamp.DurationSec <= resFull.DurationSec {
		t.Errorf("ramped %v s not slower than full %v s", resRamp.DurationSec, resFull.DurationSec)
	}
	// The ramp costs roughly half the ramp window on a transfer that
	// outlasts it.
	if resRamp.DurationSec > resFull.DurationSec+1.0 {
		t.Errorf("ramped %v s overshoots expected penalty", resRamp.DurationSec)
	}
}

// Small transfers suffer proportionally more from the ramp — the
// segment-duration efficiency effect.
func TestDownloadRampedHurtsSmallTransfersMore(t *testing.T) {
	effRate := func(sizeMB float64) float64 {
		link := &constLink{signal: -95, rate: 4}
		res, err := DownloadRamped(link, sizeMB, 1.0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanThroughputMBps
	}
	small := effRate(0.2)
	large := effRate(24) // ramp cost amortised: 24/(6+0.5) ≈ 3.7 MB/s
	if small >= large {
		t.Errorf("small transfer rate %v >= large %v", small, large)
	}
	if large < 3.5 {
		t.Errorf("large transfer rate %v should approach the 4 MB/s link", large)
	}
}

func TestDownloadRampedZeroRampEqualsDownload(t *testing.T) {
	a := &constLink{signal: -95, rate: 2}
	b := &constLink{signal: -95, rate: 2}
	resA, err := Download(a, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := DownloadRamped(b, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resA.DurationSec != resB.DurationSec {
		t.Errorf("ramp=0 differs from Download: %v vs %v", resB.DurationSec, resA.DurationSec)
	}
}
