package netsim

import (
	"errors"
	"math/rand"
)

// GilbertElliott is the classic two-state burst channel: the link
// alternates between a Good state (full nominal rate, strong signal)
// and a Bad state (deeply degraded rate, weak signal), with exponential
// sojourn times. It complements the OU channel: where OU produces
// smooth drifts, Gilbert-Elliott produces the abrupt outage bursts of
// tunnels, elevators, and cell-edge handovers.
type GilbertElliott struct {
	cfg  GilbertElliottConfig
	rng  *rand.Rand
	now  float64
	bad  bool
	left float64 // time remaining in the current state
}

var _ Link = (*GilbertElliott)(nil)

// GilbertElliottConfig parameterises the two states.
type GilbertElliottConfig struct {
	// GoodRateMBps and BadRateMBps are the per-state link rates.
	GoodRateMBps, BadRateMBps float64
	// GoodSignalDBm and BadSignalDBm are the per-state signal readings.
	GoodSignalDBm, BadSignalDBm float64
	// MeanGoodSec and MeanBadSec are the mean sojourn times.
	MeanGoodSec, MeanBadSec float64
}

// DefaultGilbertElliott returns an urban-LTE-flavoured configuration:
// long good stretches at 25 Mbps with ~8 s outage bursts near 1 Mbps.
func DefaultGilbertElliott() GilbertElliottConfig {
	return GilbertElliottConfig{
		GoodRateMBps:  25.0 / 8,
		BadRateMBps:   1.0 / 8,
		GoodSignalDBm: -92,
		BadSignalDBm:  -114,
		MeanGoodSec:   45,
		MeanBadSec:    8,
	}
}

// Validate reports whether the configuration is usable.
func (c GilbertElliottConfig) Validate() error {
	if c.GoodRateMBps <= 0 || c.BadRateMBps < 0 {
		return errors.New("netsim: rates must be positive (bad may be zero)")
	}
	if c.BadRateMBps >= c.GoodRateMBps {
		return errors.New("netsim: bad-state rate must be below good-state rate")
	}
	if c.MeanGoodSec <= 0 || c.MeanBadSec <= 0 {
		return errors.New("netsim: sojourn times must be positive")
	}
	return nil
}

// NewGilbertElliott returns a seeded channel starting in the good
// state.
func NewGilbertElliott(cfg GilbertElliottConfig, seed int64) (*GilbertElliott, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GilbertElliott{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	g.left = g.sojourn(false)
	return g, nil
}

// sojourn draws an exponential state-holding time.
func (g *GilbertElliott) sojourn(bad bool) float64 {
	mean := g.cfg.MeanGoodSec
	if bad {
		mean = g.cfg.MeanBadSec
	}
	return g.rng.ExpFloat64() * mean
}

// Now implements Link.
func (g *GilbertElliott) Now() float64 { return g.now }

// Bad reports whether the channel currently sits in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// SignalDBm implements Link.
func (g *GilbertElliott) SignalDBm() float64 {
	if g.bad {
		return g.cfg.BadSignalDBm
	}
	return g.cfg.GoodSignalDBm
}

// ThroughputMBps implements Link.
func (g *GilbertElliott) ThroughputMBps() float64 {
	if g.bad {
		return g.cfg.BadRateMBps
	}
	return g.cfg.GoodRateMBps
}

// Advance implements Link: it walks the state machine through dt
// seconds, flipping states as sojourn times expire.
func (g *GilbertElliott) Advance(dt float64) {
	for dt > 0 {
		if dt < g.left {
			g.left -= dt
			g.now += dt
			return
		}
		dt -= g.left
		g.now += g.left
		g.bad = !g.bad
		g.left = g.sojourn(g.bad)
	}
}
