package netsim

import (
	"fmt"

	"ecavs/internal/stats"
)

// BandwidthEstimator predicts the near-future link rate from past
// per-segment download throughputs. Implementations receive throughput
// samples in Mbps and report their estimate in Mbps.
type BandwidthEstimator interface {
	// Push records a completed segment's measured throughput (Mbps).
	Push(throughputMbps float64)
	// Estimate returns the predicted bandwidth (Mbps) and whether
	// enough samples exist to estimate at all.
	Estimate() (float64, bool)
	// Reset discards history.
	Reset()
}

// HarmonicMeanEstimator predicts bandwidth as the harmonic mean of the
// last k samples — the estimator FESTIVE and the paper's online
// algorithm use, chosen because it damps throughput spikes.
type HarmonicMeanEstimator struct {
	win *stats.SlidingWindow
}

var _ BandwidthEstimator = (*HarmonicMeanEstimator)(nil)

// DefaultHarmonicWindow is FESTIVE's window of 20 samples.
const DefaultHarmonicWindow = 20

// NewHarmonicMeanEstimator returns an estimator over the last k
// samples (k < 1 is raised to 1).
func NewHarmonicMeanEstimator(k int) *HarmonicMeanEstimator {
	return &HarmonicMeanEstimator{win: stats.NewSlidingWindow(k)}
}

// Push implements BandwidthEstimator. Non-positive samples are
// recorded as a tiny positive value so the harmonic mean stays
// defined while still reflecting the outage.
func (e *HarmonicMeanEstimator) Push(throughputMbps float64) {
	if throughputMbps <= 0 {
		throughputMbps = 1e-6
	}
	e.win.Push(throughputMbps)
}

// Estimate implements BandwidthEstimator.
func (e *HarmonicMeanEstimator) Estimate() (float64, bool) {
	hm, err := e.win.HarmonicMean()
	if err != nil {
		return 0, false
	}
	return hm, true
}

// Reset implements BandwidthEstimator.
func (e *HarmonicMeanEstimator) Reset() { e.win.Reset() }

// String identifies the estimator in reports.
func (e *HarmonicMeanEstimator) String() string {
	return fmt.Sprintf("harmonic(%d)", e.win.Cap())
}

// EWMAEstimator predicts bandwidth as an exponentially weighted moving
// average of past samples.
type EWMAEstimator struct {
	ewma  *stats.EWMA
	alpha float64
}

var _ BandwidthEstimator = (*EWMAEstimator)(nil)

// NewEWMAEstimator returns an EWMA estimator with smoothing alpha.
func NewEWMAEstimator(alpha float64) *EWMAEstimator {
	return &EWMAEstimator{ewma: stats.NewEWMA(alpha), alpha: alpha}
}

// Push implements BandwidthEstimator.
func (e *EWMAEstimator) Push(throughputMbps float64) {
	if throughputMbps < 0 {
		throughputMbps = 0
	}
	e.ewma.Push(throughputMbps)
}

// Estimate implements BandwidthEstimator.
func (e *EWMAEstimator) Estimate() (float64, bool) {
	if !e.ewma.Primed() {
		return 0, false
	}
	return e.ewma.Value(), true
}

// Reset implements BandwidthEstimator.
func (e *EWMAEstimator) Reset() { e.ewma = stats.NewEWMA(e.alpha) }

// String identifies the estimator in reports.
func (e *EWMAEstimator) String() string { return fmt.Sprintf("ewma(%.2f)", e.alpha) }

// LastSampleEstimator naively predicts that the next throughput equals
// the last observed one (the strawman the harmonic mean is compared
// against in the ablation).
type LastSampleEstimator struct {
	last   float64
	primed bool
}

var _ BandwidthEstimator = (*LastSampleEstimator)(nil)

// NewLastSampleEstimator returns a last-sample estimator.
func NewLastSampleEstimator() *LastSampleEstimator { return &LastSampleEstimator{} }

// Push implements BandwidthEstimator.
func (e *LastSampleEstimator) Push(throughputMbps float64) {
	if throughputMbps < 0 {
		throughputMbps = 0
	}
	e.last = throughputMbps
	e.primed = true
}

// Estimate implements BandwidthEstimator.
func (e *LastSampleEstimator) Estimate() (float64, bool) { return e.last, e.primed }

// Reset implements BandwidthEstimator.
func (e *LastSampleEstimator) Reset() { e.last = 0; e.primed = false }

// String identifies the estimator in reports.
func (e *LastSampleEstimator) String() string { return "last-sample" }
