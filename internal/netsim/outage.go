package netsim

import (
	"errors"
	"math"
)

// OutageConfig parameterises a seeded up/down outage overlay: an
// independent two-state process (exponential sojourns, like the
// Gilbert–Elliott channel's) layered over any Link, so tunnels and
// dead zones can be injected into an OU channel, a trace replay, or
// even a Gilbert–Elliott link itself.
type OutageConfig struct {
	// MeanUpSec is the mean time between outages.
	MeanUpSec float64
	// MeanDownSec is the mean outage length.
	MeanDownSec float64
	// DownRateFrac multiplies the underlying throughput during an
	// outage, in [0, 1). A small positive residual (deep fade rather
	// than a perfectly dead radio) keeps long outages clear of the
	// simulator's dead-link guard.
	DownRateFrac float64
	// SignalDropDB is subtracted from the underlying signal while down.
	SignalDropDB float64
	// Seed makes the outage schedule reproducible.
	Seed int64
}

// DefaultOutage returns a vehicular-flavoured outage process: a deep
// fade averaging 8 s roughly once a minute, 15 dB down, with a 5%
// residual rate.
func DefaultOutage() OutageConfig {
	return OutageConfig{
		MeanUpSec:    60,
		MeanDownSec:  8,
		DownRateFrac: 0.05,
		SignalDropDB: 15,
	}
}

// Validate reports whether the configuration is usable.
func (c OutageConfig) Validate() error {
	if c.MeanUpSec <= 0 || c.MeanDownSec <= 0 {
		return errors.New("netsim: outage sojourn means must be positive")
	}
	if c.DownRateFrac < 0 || c.DownRateFrac >= 1 {
		return errors.New("netsim: DownRateFrac outside [0, 1)")
	}
	if c.SignalDropDB < 0 {
		return errors.New("netsim: negative SignalDropDB")
	}
	return nil
}

// OutageLink overlays a seeded outage process on an underlying link.
// The schedule advances with the link clock, so a session's outages
// are a pure function of (underlying link, OutageConfig) — campaign
// runs stay deterministic.
type OutageLink struct {
	under Link
	cfg   OutageConfig
	state uint64 // splitmix64 stream for sojourn draws

	down      bool
	left      float64 // time remaining in the current state
	downCount int
	downSec   float64
}

var _ Link = (*OutageLink)(nil)

// WithOutages wraps a link with an outage overlay.
func WithOutages(l Link, cfg OutageConfig) (*OutageLink, error) {
	if l == nil {
		return nil, errors.New("netsim: nil link")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &OutageLink{under: l, cfg: cfg, state: uint64(cfg.Seed)}
	o.left = o.sojourn(false)
	return o, nil
}

// sojourn draws an exponential state-holding time from the splitmix64
// stream (inverse-CDF, matching the generator the campaign layer and
// power monitor use — no math/rand state to share or race on).
func (o *OutageLink) sojourn(down bool) float64 {
	mean := o.cfg.MeanUpSec
	if down {
		mean = o.cfg.MeanDownSec
	}
	o.state += 0x9e3779b97f4a7c15
	z := o.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	u := float64((z^(z>>31))>>11) / (1 << 53)
	// u is uniform in [0, 1); flip to (0, 1] so the log never sees zero.
	return -mean * math.Log(1-u)
}

// Now implements Link.
func (o *OutageLink) Now() float64 { return o.under.Now() }

// Down reports whether an outage is in progress.
func (o *OutageLink) Down() bool { return o.down }

// Outages reports the outage count and total down time so far.
func (o *OutageLink) Outages() (count int, downSec float64) {
	return o.downCount, o.downSec
}

// SignalDBm implements Link.
func (o *OutageLink) SignalDBm() float64 {
	s := o.under.SignalDBm()
	if o.down {
		s -= o.cfg.SignalDropDB
	}
	return s
}

// ThroughputMBps implements Link.
func (o *OutageLink) ThroughputMBps() float64 {
	th := o.under.ThroughputMBps()
	if o.down {
		th *= o.cfg.DownRateFrac
	}
	return th
}

// Advance implements Link: the underlying link and the outage state
// machine both walk forward dt seconds.
func (o *OutageLink) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	o.under.Advance(dt)
	for dt > 0 {
		if dt < o.left {
			o.left -= dt
			if o.down {
				o.downSec += dt
			}
			return
		}
		dt -= o.left
		if o.down {
			o.downSec += o.left
		}
		o.down = !o.down
		if o.down {
			o.downCount++
		}
		o.left = o.sojourn(o.down)
	}
}
