package netsim

import (
	"errors"
	"math"
	"math/rand"
)

// SignalConfig parameterises the mean-reverting (Ornstein-Uhlenbeck)
// signal-strength process of one viewing context.
type SignalConfig struct {
	// MeanDBm is the long-run signal strength; a schedule can override
	// it over time via MeanAt.
	MeanDBm float64
	// MeanAt optionally returns a time-varying mean (cell handovers,
	// vehicle motion). When nil, MeanDBm is used throughout.
	MeanAt func(tSec float64) float64
	// ReversionRate is the OU pull strength towards the mean (1/s).
	ReversionRate float64
	// VolatilityDB is the diffusion magnitude (dB/sqrt(s)).
	VolatilityDB float64
	// FloorDBm / CeilDBm clamp the process to the physical range.
	FloorDBm, CeilDBm float64
}

func (c SignalConfig) withDefaults() SignalConfig {
	if c.ReversionRate <= 0 {
		c.ReversionRate = 0.2
	}
	if c.VolatilityDB < 0 {
		c.VolatilityDB = 0
	}
	if c.FloorDBm == 0 {
		c.FloorDBm = -120
	}
	if c.CeilDBm == 0 {
		c.CeilDBm = -80
	}
	return c
}

// Predefined context channels calibrated so a quiet-room session sees a
// strong, steady link and a moving-vehicle session sees a weak,
// volatile one (Section II: the vehicle context is where energy per
// byte is high).
var (
	// RoomSignal models home/cafe Wi-Fi-grade LTE coverage.
	RoomSignal = SignalConfig{MeanDBm: -88, ReversionRate: 0.3, VolatilityDB: 1.2}
	// VehicleSignal models a moving bus/train crossing cells.
	VehicleSignal = SignalConfig{MeanDBm: -106, ReversionRate: 0.15, VolatilityDB: 3.5}
)

// Channel is a synthetic Link: an OU signal process composed with a
// rate map (signal -> nominal throughput) and lognormal AR(1) fading.
//
// Construct with NewChannel; the zero value is unusable.
type Channel struct {
	cfg     SignalConfig
	rateMap func(dBm float64) float64
	rng     *rand.Rand

	now    float64
	signal float64

	fadeLog   float64 // log of the fading factor
	fadeRho   float64
	fadeSigma float64
	fadeNorm  float64 // normalisation so E[fade] = 1
}

var _ Link = (*Channel)(nil)

// ErrNilRateMap is returned when no rate map is provided.
var ErrNilRateMap = errors.New("netsim: rate map must not be nil")

// FadingConfig tunes the multiplicative throughput fading.
type FadingConfig struct {
	// Rho is the per-step autocorrelation in [0, 1) (default 0.9).
	Rho float64
	// SigmaLog is the stationary std-dev of the log fading factor
	// (default 0.35).
	SigmaLog float64
}

func (f FadingConfig) withDefaults() FadingConfig {
	if f.Rho <= 0 || f.Rho >= 1 {
		f.Rho = 0.9
	}
	if f.SigmaLog <= 0 {
		f.SigmaLog = 0.35
	}
	return f
}

// NewChannel returns a synthetic channel. rateMap converts a signal
// strength to the nominal link rate in MB/s (typically
// power.Model.NominalThroughputMBps, which keeps the Fig. 1a
// energy-per-MB relationship exact in expectation).
func NewChannel(cfg SignalConfig, fading FadingConfig, rateMap func(dBm float64) float64, seed int64) (*Channel, error) {
	if rateMap == nil {
		return nil, ErrNilRateMap
	}
	cfg = cfg.withDefaults()
	fading = fading.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	ch := &Channel{
		cfg:       cfg,
		rateMap:   rateMap,
		rng:       rng,
		signal:    cfg.MeanDBm,
		fadeRho:   fading.Rho,
		fadeSigma: fading.SigmaLog,
		fadeNorm:  math.Exp(fading.SigmaLog * fading.SigmaLog / 2),
	}
	ch.fadeLog = rng.NormFloat64() * fading.SigmaLog
	return ch, nil
}

// Now implements Link.
func (c *Channel) Now() float64 { return c.now }

// SignalDBm implements Link.
func (c *Channel) SignalDBm() float64 { return c.signal }

// ThroughputMBps implements Link.
func (c *Channel) ThroughputMBps() float64 {
	fade := math.Exp(c.fadeLog) / c.fadeNorm
	th := c.rateMap(c.signal) * fade
	if th < 0 {
		return 0
	}
	return th
}

// Advance implements Link: it steps the OU signal process and the
// fading chain forward by dt seconds.
func (c *Channel) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	// Step in sub-intervals so large dt keeps OU statistics sane.
	const maxStep = 0.5
	for dt > 0 {
		h := dt
		if h > maxStep {
			h = maxStep
		}
		mean := c.cfg.MeanDBm
		if c.cfg.MeanAt != nil {
			mean = c.cfg.MeanAt(c.now)
		}
		c.signal += c.cfg.ReversionRate*(mean-c.signal)*h +
			c.cfg.VolatilityDB*math.Sqrt(h)*c.rng.NormFloat64()
		if c.signal < c.cfg.FloorDBm {
			c.signal = c.cfg.FloorDBm
		}
		if c.signal > c.cfg.CeilDBm {
			c.signal = c.cfg.CeilDBm
		}
		// AR(1) on log fading, scaled to the step length.
		rho := math.Pow(c.fadeRho, h/0.1)
		c.fadeLog = rho*c.fadeLog + c.fadeSigma*math.Sqrt(1-rho*rho)*c.rng.NormFloat64()

		c.now += h
		dt -= h
	}
}

// TracePoint is one sample of a recorded (or generated) network trace.
type TracePoint struct {
	// TimeSec is the sample time from trace start.
	TimeSec float64
	// SignalDBm is the recorded signal strength.
	SignalDBm float64
	// ThroughputMBps is the recorded achievable rate.
	ThroughputMBps float64
}

// TraceLink replays a recorded trace as a Link, holding each sample
// until the next one (zero-order hold) and clamping at the final
// sample after the trace ends.
//
// Construct with NewTraceLink; the zero value is unusable.
type TraceLink struct {
	points []TracePoint
	now    float64
	idx    int
}

var _ Link = (*TraceLink)(nil)

// ErrEmptyTrace is returned when a trace has no points.
var ErrEmptyTrace = errors.New("netsim: empty trace")

// ErrUnorderedTrace is returned when trace points are not
// time-ordered.
var ErrUnorderedTrace = errors.New("netsim: trace points not time-ordered")

// NewTraceLink returns a Link replaying the given points.
func NewTraceLink(points []TracePoint) (*TraceLink, error) {
	if len(points) == 0 {
		return nil, ErrEmptyTrace
	}
	for i := 1; i < len(points); i++ {
		if points[i].TimeSec < points[i-1].TimeSec {
			return nil, ErrUnorderedTrace
		}
	}
	cp := make([]TracePoint, len(points))
	copy(cp, points)
	return &TraceLink{points: cp}, nil
}

// ReplayTraceLink returns a Link replaying points WITHOUT copying or
// re-validating them. The caller must guarantee the slice is
// time-ordered, non-empty, and never mutated for the link's lifetime —
// the contract trace.Compiled provides, where one validated point
// slice backs a fresh TraceLink per session and a per-session copy
// would dominate the session allocation profile.
func ReplayTraceLink(points []TracePoint) (*TraceLink, error) {
	if len(points) == 0 {
		return nil, ErrEmptyTrace
	}
	return &TraceLink{points: points}, nil
}

// Now implements Link.
func (t *TraceLink) Now() float64 { return t.now }

// current returns the active trace point.
func (t *TraceLink) current() TracePoint {
	for t.idx+1 < len(t.points) && t.points[t.idx+1].TimeSec <= t.now {
		t.idx++
	}
	return t.points[t.idx]
}

// SignalDBm implements Link.
func (t *TraceLink) SignalDBm() float64 { return t.current().SignalDBm }

// ThroughputMBps implements Link.
func (t *TraceLink) ThroughputMBps() float64 { return t.current().ThroughputMBps }

// Advance implements Link.
func (t *TraceLink) Advance(dt float64) {
	if dt > 0 {
		t.now += dt
	}
}

// Duration returns the trace's time span in seconds.
func (t *TraceLink) Duration() float64 {
	return t.points[len(t.points)-1].TimeSec - t.points[0].TimeSec
}
