// Package netsim simulates the cellular link the paper's traces were
// collected on: a mean-reverting signal-strength process per viewing
// context, a signal-to-throughput mapping with multiplicative fading,
// and the bandwidth estimators (harmonic mean, EWMA, last-sample) the
// ABR algorithms use.
//
// The Link abstraction also admits trace playback (TraceLink), which is
// how the trace-driven evaluation of Section V replays recorded
// network conditions.
package netsim

import "errors"

// Link is a time-stepped view of the radio link: the current signal
// strength and achievable throughput, advanced by the simulation loop.
type Link interface {
	// Now returns the link-local clock in seconds.
	Now() float64
	// SignalDBm returns the current signal strength.
	SignalDBm() float64
	// ThroughputMBps returns the currently achievable link rate in
	// megabytes per second.
	ThroughputMBps() float64
	// Advance moves the link clock forward by dt seconds.
	Advance(dt float64)
}

// DownloadStep reports one integration step of a download to the
// caller, letting it integrate energy without netsim knowing about
// power models.
type DownloadStep struct {
	// Dt is the step duration in seconds.
	Dt float64
	// SignalDBm is the signal strength during the step.
	SignalDBm float64
	// ThroughputMBps is the link rate during the step.
	ThroughputMBps float64
	// TransferredMB is the payload moved during the step.
	TransferredMB float64
}

// Result summarises a completed download.
type Result struct {
	// DurationSec is the wall-clock download time.
	DurationSec float64
	// MeanSignalDBm is the transfer-weighted mean signal strength.
	MeanSignalDBm float64
	// MeanThroughputMBps is the effective rate: size / duration.
	MeanThroughputMBps float64
}

// ErrStalledLink is returned when the link rate stays at zero so a
// download cannot finish.
var ErrStalledLink = errors.New("netsim: link stalled at zero throughput")

// downloadStepSec is the integration step for downloads; 100 ms is
// well below both the 2 s segment duration and the channel coherence
// time.
const downloadStepSec = 0.1

// maxStallSec bounds how long a download waits on a dead link before
// giving up.
const maxStallSec = 120

// Download transfers sizeMB over the link, advancing it as time
// passes, and invokes onStep (if non-nil) for every integration step.
func Download(link Link, sizeMB float64, onStep func(DownloadStep)) (Result, error) {
	return DownloadRamped(link, sizeMB, 0, onStep)
}

// DownloadRamped is Download with a TCP-slow-start-style ramp: the
// achievable rate scales linearly from zero to the link rate over the
// first rampSec seconds of the transfer. Short transfers (small
// segments) never reach full speed, which is the classic reason longer
// DASH segments use a link more efficiently.
func DownloadRamped(link Link, sizeMB, rampSec float64, onStep func(DownloadStep)) (Result, error) {
	if sizeMB <= 0 {
		return Result{}, nil
	}
	var (
		elapsed   float64
		sigWeight float64
		stalled   float64
		remaining = sizeMB
	)
	for remaining > 1e-12 {
		th := link.ThroughputMBps()
		if rampSec > 0 && elapsed < rampSec {
			// Slow start: average rate over the next step, linearised.
			frac := (elapsed + downloadStepSec/2) / rampSec
			if frac > 1 {
				frac = 1
			}
			th *= frac
		}
		if th <= 0 {
			stalled += downloadStepSec
			if stalled > maxStallSec {
				return Result{}, ErrStalledLink
			}
			link.Advance(downloadStepSec)
			elapsed += downloadStepSec
			continue
		}
		stalled = 0
		dt := downloadStepSec
		moved := th * dt
		if moved > remaining {
			moved = remaining
			dt = remaining / th
		}
		sig := link.SignalDBm()
		if onStep != nil {
			onStep(DownloadStep{Dt: dt, SignalDBm: sig, ThroughputMBps: th, TransferredMB: moved})
		}
		sigWeight += sig * moved
		remaining -= moved
		link.Advance(dt)
		elapsed += dt
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return Result{
		DurationSec:        elapsed,
		MeanSignalDBm:      sigWeight / sizeMB,
		MeanThroughputMBps: sizeMB / elapsed,
	}, nil
}
