package netsim

import (
	"testing"
)

func TestGilbertElliottValidation(t *testing.T) {
	cases := []func(*GilbertElliottConfig){
		func(c *GilbertElliottConfig) { c.GoodRateMBps = 0 },
		func(c *GilbertElliottConfig) { c.BadRateMBps = -1 },
		func(c *GilbertElliottConfig) { c.BadRateMBps = c.GoodRateMBps },
		func(c *GilbertElliottConfig) { c.MeanGoodSec = 0 },
		func(c *GilbertElliottConfig) { c.MeanBadSec = -2 },
	}
	for i, mut := range cases {
		cfg := DefaultGilbertElliott()
		mut(&cfg)
		if _, err := NewGilbertElliott(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultGilbertElliott().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGilbertElliottStartsGood(t *testing.T) {
	g, err := NewGilbertElliott(DefaultGilbertElliott(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bad() {
		t.Error("channel started in the bad state")
	}
	if g.ThroughputMBps() != 25.0/8 || g.SignalDBm() != -92 {
		t.Errorf("good-state readings wrong: %v MB/s at %v dBm", g.ThroughputMBps(), g.SignalDBm())
	}
}

func TestGilbertElliottVisitsBothStates(t *testing.T) {
	g, err := NewGilbertElliott(DefaultGilbertElliott(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var goodSec, badSec float64
	const step = 0.5
	for i := 0; i < 4000; i++ { // 2000 simulated seconds
		if g.Bad() {
			badSec += step
		} else {
			goodSec += step
		}
		g.Advance(step)
	}
	if badSec == 0 || goodSec == 0 {
		t.Fatalf("states not both visited: good %.0f s, bad %.0f s", goodSec, badSec)
	}
	// Long-run occupancy approaches MeanGood/(MeanGood+MeanBad) ≈ 0.85.
	frac := goodSec / (goodSec + badSec)
	if frac < 0.7 || frac > 0.95 {
		t.Errorf("good-state occupancy = %.2f, want ≈ 0.85", frac)
	}
}

func TestGilbertElliottDeterministicBySeed(t *testing.T) {
	a, _ := NewGilbertElliott(DefaultGilbertElliott(), 42)
	b, _ := NewGilbertElliott(DefaultGilbertElliott(), 42)
	for i := 0; i < 500; i++ {
		a.Advance(0.3)
		b.Advance(0.3)
		if a.Bad() != b.Bad() {
			t.Fatal("channels with equal seeds diverged")
		}
	}
}

func TestGilbertElliottClockAdvances(t *testing.T) {
	g, _ := NewGilbertElliott(DefaultGilbertElliott(), 3)
	g.Advance(100)
	if !almostEqual(g.Now(), 100, 1e-9) {
		t.Errorf("Now = %v, want 100", g.Now())
	}
	g.Advance(0)
	g.Advance(-5)
	if !almostEqual(g.Now(), 100, 1e-9) {
		t.Error("non-positive Advance moved the clock")
	}
}

// Downloads ride through bad bursts: a payload that needs several good
// seconds completes despite interleaved outage states.
func TestGilbertElliottDownloadCompletes(t *testing.T) {
	cfg := DefaultGilbertElliott()
	cfg.MeanGoodSec = 5
	cfg.MeanBadSec = 2
	g, err := NewGilbertElliott(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Download(g, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 30 MB needs ~9.6 s of pure good state; with bad bursts the wall
	// time is longer but bounded.
	if res.DurationSec < 9 {
		t.Errorf("duration %v s implausibly fast", res.DurationSec)
	}
	if res.DurationSec > 120 {
		t.Errorf("duration %v s implausibly slow", res.DurationSec)
	}
}
