package netsim

import (
	"math"
	"testing"
)

// steadyLink is a constant link for overlay tests.
type steadyLink struct {
	now    float64
	signal float64
	rate   float64
}

func (l *steadyLink) Now() float64            { return l.now }
func (l *steadyLink) SignalDBm() float64      { return l.signal }
func (l *steadyLink) ThroughputMBps() float64 { return l.rate }
func (l *steadyLink) Advance(dt float64) {
	if dt > 0 {
		l.now += dt
	}
}

func TestOutageConfigValidation(t *testing.T) {
	cases := []OutageConfig{
		{MeanUpSec: 0, MeanDownSec: 5},
		{MeanUpSec: 10, MeanDownSec: 0},
		{MeanUpSec: 10, MeanDownSec: 5, DownRateFrac: 1},
		{MeanUpSec: 10, MeanDownSec: 5, SignalDropDB: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if err := DefaultOutage().Validate(); err != nil {
		t.Errorf("DefaultOutage invalid: %v", err)
	}
	if _, err := WithOutages(nil, DefaultOutage()); err == nil {
		t.Error("nil link accepted")
	}
}

func TestOutageDegradesRateAndSignal(t *testing.T) {
	cfg := OutageConfig{MeanUpSec: 5, MeanDownSec: 5, DownRateFrac: 0.1, SignalDropDB: 20, Seed: 3}
	o, err := WithOutages(&steadyLink{signal: -90, rate: 4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for i := 0; i < 400; i++ {
		o.Advance(0.1)
		if o.Down() {
			sawDown = true
			if th := o.ThroughputMBps(); math.Abs(th-0.4) > 1e-12 {
				t.Fatalf("down throughput = %v, want 0.4", th)
			}
			if s := o.SignalDBm(); s != -110 {
				t.Fatalf("down signal = %v, want -110", s)
			}
		} else {
			if th := o.ThroughputMBps(); th != 4 {
				t.Fatalf("up throughput = %v, want 4", th)
			}
			if s := o.SignalDBm(); s != -90 {
				t.Fatalf("up signal = %v, want -90", s)
			}
		}
	}
	if !sawDown {
		t.Error("no outage in 40 s with 5 s mean sojourns")
	}
	count, downSec := o.Outages()
	if count == 0 || downSec <= 0 {
		t.Errorf("counters = (%d, %v), want positive", count, downSec)
	}
	if downSec >= o.Now() {
		t.Errorf("downSec %v exceeds elapsed %v", downSec, o.Now())
	}
}

// Same seed, same advance pattern => identical outage schedule; a
// different seed diverges.
func TestOutageDeterminism(t *testing.T) {
	mk := func(seed int64) []bool {
		cfg := OutageConfig{MeanUpSec: 4, MeanDownSec: 4, Seed: seed}
		o, err := WithOutages(&steadyLink{rate: 1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		states := make([]bool, 0, 300)
		for i := 0; i < 300; i++ {
			o.Advance(0.1)
			states = append(states, o.Down())
		}
		return states
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: same seed diverged", i)
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// The overlay advances the underlying link clock exactly once per dt.
func TestOutageAdvancesUnderlyingOnce(t *testing.T) {
	under := &steadyLink{rate: 2}
	o, err := WithOutages(under, OutageConfig{MeanUpSec: 1, MeanDownSec: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		o.Advance(0.3)
	}
	if math.Abs(under.now-15) > 1e-9 {
		t.Errorf("underlying clock = %v, want 15", under.now)
	}
	if o.Now() != under.now {
		t.Errorf("Now() = %v, want underlying %v", o.Now(), under.now)
	}
}

// A download across a zero-residual outage still conserves payload.
func TestOutageDownloadConservation(t *testing.T) {
	o, err := WithOutages(&steadyLink{signal: -95, rate: 2},
		OutageConfig{MeanUpSec: 2, MeanDownSec: 1, DownRateFrac: 0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var moved float64
	res, err := Download(o, 10, func(s DownloadStep) { moved += s.TransferredMB })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(moved-10) > 1e-6 {
		t.Errorf("moved %v MB, want 10", moved)
	}
	if res.DurationSec <= 5 {
		t.Errorf("duration %v s too short for 10 MB at 2 MB/s with outages", res.DurationSec)
	}
}
