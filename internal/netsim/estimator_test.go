package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicMeanEstimator(t *testing.T) {
	e := NewHarmonicMeanEstimator(3)
	if _, ok := e.Estimate(); ok {
		t.Error("fresh estimator reported an estimate")
	}
	e.Push(1)
	e.Push(4)
	e.Push(4)
	got, ok := e.Estimate()
	if !ok {
		t.Fatal("no estimate after pushes")
	}
	if !almostEqual(got, 2, 1e-9) {
		t.Errorf("Estimate = %v, want 2 (harmonic mean)", got)
	}
	// Window slides: pushing three more replaces all samples.
	e.Push(8)
	e.Push(8)
	e.Push(8)
	got, _ = e.Estimate()
	if !almostEqual(got, 8, 1e-9) {
		t.Errorf("Estimate after slide = %v, want 8", got)
	}
}

func TestHarmonicMeanEstimatorOutageSample(t *testing.T) {
	e := NewHarmonicMeanEstimator(5)
	e.Push(10)
	e.Push(0) // outage: recorded as tiny positive
	got, ok := e.Estimate()
	if !ok {
		t.Fatal("no estimate")
	}
	if got > 0.01 {
		t.Errorf("Estimate with outage = %v, want near zero (conservative)", got)
	}
}

func TestHarmonicMeanEstimatorReset(t *testing.T) {
	e := NewHarmonicMeanEstimator(4)
	e.Push(3)
	e.Reset()
	if _, ok := e.Estimate(); ok {
		t.Error("estimate survived Reset")
	}
}

// The harmonic-mean estimate is conservative: never above the
// arithmetic mean of the window.
func TestHarmonicEstimatorConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(n uint8) bool {
		e := NewHarmonicMeanEstimator(20)
		count := int(n%20) + 1
		var sum float64
		for i := 0; i < count; i++ {
			x := rng.Float64()*20 + 0.1
			sum += x
			e.Push(x)
		}
		got, ok := e.Estimate()
		return ok && got <= sum/float64(count)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAEstimator(t *testing.T) {
	e := NewEWMAEstimator(0.5)
	if _, ok := e.Estimate(); ok {
		t.Error("fresh estimator reported an estimate")
	}
	e.Push(10)
	e.Push(0)
	got, ok := e.Estimate()
	if !ok || !almostEqual(got, 5, 1e-9) {
		t.Errorf("Estimate = %v (%v), want 5", got, ok)
	}
	e.Reset()
	if _, ok := e.Estimate(); ok {
		t.Error("estimate survived Reset")
	}
	e.Push(-3) // clamped to 0
	got, _ = e.Estimate()
	if got != 0 {
		t.Errorf("negative push = %v, want 0", got)
	}
}

func TestLastSampleEstimator(t *testing.T) {
	e := NewLastSampleEstimator()
	if _, ok := e.Estimate(); ok {
		t.Error("fresh estimator reported an estimate")
	}
	e.Push(3)
	e.Push(7)
	got, ok := e.Estimate()
	if !ok || got != 7 {
		t.Errorf("Estimate = %v (%v), want 7", got, ok)
	}
	e.Reset()
	if _, ok := e.Estimate(); ok {
		t.Error("estimate survived Reset")
	}
}

func TestEstimatorStrings(t *testing.T) {
	for _, e := range []interface{ String() string }{
		NewHarmonicMeanEstimator(20),
		NewEWMAEstimator(0.3),
		NewLastSampleEstimator(),
	} {
		if e.String() == "" {
			t.Errorf("%T String returned empty", e)
		}
	}
}
