package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// DecisionEvent is one ABR decision snapshot: why the policy picked a
// rung at a segment boundary. Together the events answer the
// post-mortem question "what did the algorithm see when it chose
// that?" without replaying the session.
type DecisionEvent struct {
	// Segment is the segment index the decision was made for.
	Segment int `json:"segment"`
	// Rung is the ladder rung the algorithm chose.
	Rung int `json:"rung"`
	// BitrateMbps is the chosen rung's bitrate.
	BitrateMbps float64 `json:"bitrate_mbps"`
	// BufferSec is the playback buffer level at decision time.
	BufferSec float64 `json:"buffer_sec"`
	// SignalDBm is the radio signal strength at decision time.
	SignalDBm float64 `json:"signal_dbm"`
	// Vibration is the sensed Eq. 5 vibration level.
	Vibration float64 `json:"vibration"`
	// PowerW is the instantaneous draw implied by the choice: decode
	// power at the chosen bitrate plus radio power at the current
	// signal.
	PowerW float64 `json:"power_w"`
	// QoE is the segment's realized Eq. 1 quality score.
	QoE float64 `json:"qoe"`
}

// DecisionRecorder is a sampled ring buffer of decision events. A
// session (or many sessions sharing one recorder) offers every
// decision; the recorder keeps every SampleEvery-th one, overwriting
// the oldest once Capacity is reached — bounded memory no matter how
// long the campaign runs. All methods are safe for concurrent use and
// no-ops on a nil receiver, so the simulator's hot path carries only a
// nil check when tracing is off.
type DecisionRecorder struct {
	mu      sync.Mutex
	ring    []DecisionEvent
	next    int  // ring slot the next kept event lands in
	wrapped bool // the ring has lapped at least once
	seen    int64
	every   int64
}

// NewDecisionRecorder returns a recorder keeping the most recent
// `capacity` sampled events, recording every sampleEvery-th decision
// (values below 1 mean every decision).
func NewDecisionRecorder(capacity, sampleEvery int) (*DecisionRecorder, error) {
	if capacity < 1 {
		return nil, errors.New("sim: recorder capacity must be at least 1")
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &DecisionRecorder{
		ring:  make([]DecisionEvent, capacity),
		every: int64(sampleEvery),
	}, nil
}

// Record offers one event; the recorder keeps it if the sampling
// stride selects it.
func (r *DecisionRecorder) Record(ev DecisionEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	keep := r.seen%r.every == 0
	r.seen++
	if keep {
		r.ring[r.next] = ev
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.wrapped = true
		}
	}
	r.mu.Unlock()
}

// Seen reports how many decisions were offered (kept or not).
func (r *DecisionRecorder) Seen() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Len reports how many events are currently held.
func (r *DecisionRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// Events returns the held events oldest-first.
func (r *DecisionRecorder) Events() []DecisionEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DecisionEvent, 0, len(r.ring))
	if r.wrapped {
		out = append(out, r.ring[r.next:]...)
	}
	return append(out, r.ring[:r.next]...)
}

// WriteNDJSON emits the held events oldest-first as newline-delimited
// JSON — one decision per line, the format offline analysis tooling
// (jq, a dataframe loader) ingests directly. A write failure surfaces
// immediately, wrapped with the segment whose line was lost, so a full
// disk or closed pipe aborts the export instead of silently truncating
// the trace.
func (r *DecisionRecorder) WriteNDJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("sim: write decision trace at segment %d: %w", ev.Segment, err)
		}
	}
	return nil
}
