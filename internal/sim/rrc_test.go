package sim

import (
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/power"
)

func rrcConfig(t *testing.T) Config {
	t.Helper()
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	rrc := power.DefaultRRC()
	cfg.RRC = &rrc
	return cfg
}

func TestRunWithRRCAccountsControlEnergy(t *testing.T) {
	cfg := rrcConfig(t)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RadioCtlJ <= 0 {
		t.Fatal("RRC enabled but RadioCtlJ is zero")
	}
	// Total includes the control energy.
	if m.TotalJ() <= m.PlaybackJ+m.DownloadJ {
		t.Error("TotalJ does not include radio-control energy")
	}
}

func TestRunWithoutRRCHasNoControlEnergy(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RadioCtlJ != 0 {
		t.Errorf("RadioCtlJ = %v without RRC, want 0", m.RadioCtlJ)
	}
}

func TestRunRejectsInvalidRRC(t *testing.T) {
	cfg := rrcConfig(t)
	cfg.RRC.TailTimerSec = -1
	if _, err := Run(cfg); err == nil {
		t.Error("invalid RRC config accepted")
	}
}

func TestRunRejectsBadHysteresis(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.BufferThresholdSec = 10
	cfg.ResumeThresholdSec = 20
	if _, err := Run(cfg); err == nil {
		t.Error("resume threshold above buffer threshold accepted")
	}
}

// Hysteresis creates longer idle stretches, so with the tail-energy
// model on, bursty downloading (pause at 30 s, resume at 10 s) spends
// less radio-control energy than continuous trickling.
func TestHysteresisReducesTailEnergy(t *testing.T) {
	run := func(resume float64) *Metrics {
		link := &fixedLink{signal: -90, rate: 10}
		cfg := baseConfig(t, abr.NewYoutube(), link)
		cfg.Manifest = testManifest(t, 120)
		rrc := power.DefaultRRC()
		cfg.RRC = &rrc
		cfg.BufferThresholdSec = 30
		cfg.ResumeThresholdSec = resume
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	trickle := run(0) // resume == threshold: radio never rests long
	burst := run(8)   // deep drain between bursts
	if burst.RadioCtlJ >= trickle.RadioCtlJ {
		t.Errorf("bursty RadioCtlJ %.1f should undercut trickle %.1f",
			burst.RadioCtlJ, trickle.RadioCtlJ)
	}
	// Same content downloaded either way.
	if diff := burst.DownloadedMB - trickle.DownloadedMB; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("downloaded payload differs: %v vs %v", burst.DownloadedMB, trickle.DownloadedMB)
	}
	// And no stalls introduced by the deeper drain.
	if burst.RebufferSec > 0 {
		t.Errorf("hysteresis caused %v s of stalls", burst.RebufferSec)
	}
}

func TestHysteresisDelaysDownloads(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 50}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.Manifest = testManifest(t, 60)
	cfg.BufferThresholdSec = 20
	cfg.ResumeThresholdSec = 5
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// There must exist a gap >= (20-5)-ish seconds between some
	// consecutive downloads (the drain from threshold to resume).
	var maxGap float64
	for i := 1; i < len(m.Segments); i++ {
		if gap := m.Segments[i].StartSec - m.Segments[i-1].StartSec; gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap < 10 {
		t.Errorf("max inter-download gap = %.1f s, want >= 10 (hysteresis drain)", maxGap)
	}
}
