package sim

import (
	"errors"
	"math"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// fixedLink is a constant-rate, constant-signal link.
type fixedLink struct {
	now    float64
	signal float64
	rate   float64
}

func (l *fixedLink) Now() float64            { return l.now }
func (l *fixedLink) SignalDBm() float64      { return l.signal }
func (l *fixedLink) ThroughputMBps() float64 { return l.rate }
func (l *fixedLink) Advance(dt float64) {
	if dt > 0 {
		l.now += dt
	}
}

func testManifest(t *testing.T, durationSec float64) *dash.Manifest {
	t.Helper()
	video := dash.Video{Title: "test", SpatialInfo: 45, TemporalInfo: 15, DurationSec: durationSec}
	m, err := dash.NewManifest(video, dash.TableIILadder(), dash.ManifestConfig{SegmentSec: 2, VBRJitter: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func baseConfig(t *testing.T, alg abr.Algorithm, link netsim.Link) Config {
	t.Helper()
	return Config{
		Manifest:  testManifest(t, 60),
		Link:      link,
		Algorithm: alg,
		Power:     power.EvalModel(),
		QoE:       qoe.Default(),
	}
}

func TestRunValidation(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 3}
	cfg := baseConfig(t, abr.NewYoutube(), link)

	bad := cfg
	bad.Manifest = nil
	if _, err := Run(bad); !errors.Is(err, ErrNilManifest) {
		t.Errorf("err = %v, want ErrNilManifest", err)
	}
	bad = cfg
	bad.Link = nil
	if _, err := Run(bad); !errors.Is(err, ErrNilLink) {
		t.Errorf("err = %v, want ErrNilLink", err)
	}
	bad = cfg
	bad.Algorithm = nil
	if _, err := Run(bad); !errors.Is(err, ErrNilAlgorithm) {
		t.Errorf("err = %v, want ErrNilAlgorithm", err)
	}
	bad = cfg
	bad.Power.BasePowerW = -1
	if _, err := Run(bad); err == nil {
		t.Error("invalid power model accepted")
	}
	bad = cfg
	bad.QoE.C1 = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid qoe model accepted")
	}
}

func TestRunFixedSessionAccounting(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 3}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm != "Youtube" {
		t.Errorf("Algorithm = %q", m.Algorithm)
	}
	if len(m.Segments) != 30 {
		t.Fatalf("segments = %d, want 30 (60 s / 2 s)", len(m.Segments))
	}
	// Every segment at top bitrate, no switches.
	for _, s := range m.Segments {
		if s.BitrateMbps != 5.8 {
			t.Errorf("segment %d bitrate = %v, want 5.8", s.Index, s.BitrateMbps)
		}
	}
	if m.Switches != 0 {
		t.Errorf("Switches = %d, want 0", m.Switches)
	}
	if !almostEqual(m.MeanBitrateMbps, 5.8, 1e-9) {
		t.Errorf("MeanBitrateMbps = %v, want 5.8", m.MeanBitrateMbps)
	}
	// Downloaded payload = 30 segments x 5.8/8*2 MB x complexity.
	video := cfg.Manifest.Video()
	wantMB := 5.8 / 8 * 60 * video.Complexity()
	if !almostEqual(m.DownloadedMB, wantMB, 1e-6) {
		t.Errorf("DownloadedMB = %v, want %v", m.DownloadedMB, wantMB)
	}
	// At 3 MB/s with ample headroom: no rebuffering.
	if m.RebufferSec != 0 {
		t.Errorf("RebufferSec = %v, want 0", m.RebufferSec)
	}
	// Energy components all positive and consistent.
	if m.PlaybackJ <= 0 || m.DownloadJ <= 0 {
		t.Errorf("degenerate energy: %+v", m)
	}
	if got := m.TotalJ(); !almostEqual(got, m.PlaybackJ+m.DownloadJ+m.RebufferJ+m.StartupJ, 1e-9) {
		t.Errorf("TotalJ inconsistent")
	}
	// Session must span at least the video length.
	if m.DurationSec < 59.9 {
		t.Errorf("DurationSec = %v, want >= 60", m.DurationSec)
	}
	// QoE at top bitrate, still phone: near Q0(5.8).
	wantQ := qoe.Default().OriginalQuality(5.8)
	if !almostEqual(m.MeanQoE, wantQ, 0.05) {
		t.Errorf("MeanQoE = %v, want ≈ %v", m.MeanQoE, wantQ)
	}
}

// Playback energy equals playback power x video duration when
// everything is at one bitrate.
func TestRunPlaybackEnergyMatchesAnalytic(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 5}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Power.PlaybackPowerW(5.8) * 60
	if math.Abs(m.PlaybackJ-want)/want > 0.01 {
		t.Errorf("PlaybackJ = %.1f, want ≈ %.1f", m.PlaybackJ, want)
	}
	// Download energy = payload x energy/MB at -90 dBm (rate maps are
	// irrelevant on a fixed link: radio power x time = payload x P/th).
	wantDl := m.DownloadedMB / 5 * cfg.Power.RadioPowerW(-90)
	if math.Abs(m.DownloadJ-wantDl)/wantDl > 0.01 {
		t.Errorf("DownloadJ = %.1f, want ≈ %.1f", m.DownloadJ, wantDl)
	}
}

func TestRunRebufferingOnStarvedLink(t *testing.T) {
	// 0.05 MB/s cannot sustain even the lowest manifest rung
	// (0.1 Mbps x complexity ≈ 0.0125 MB/s nominal -> fine) so use the
	// top rung: 5.8 Mbps needs 0.725 MB/s.
	link := &fixedLink{signal: -115, rate: 0.2}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.Manifest = testManifest(t, 20)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RebufferSec <= 0 {
		t.Error("expected rebuffering on a starved link")
	}
	if m.RebufferJ <= 0 {
		t.Error("rebuffer energy not accounted")
	}
	// Stalls must hurt QoE.
	still := qoe.Default().OriginalQuality(5.8)
	if m.MeanQoE >= still {
		t.Errorf("MeanQoE = %v, want < %v due to stalls", m.MeanQoE, still)
	}
	// Session takes much longer than the video.
	if m.DurationSec <= 20 {
		t.Errorf("DurationSec = %v, want > 20", m.DurationSec)
	}
}

func TestRunBufferThresholdPacesDownloads(t *testing.T) {
	// Fast link: the whole session would download instantly without
	// pacing; the threshold forces the session to take about the video
	// duration.
	link := &fixedLink{signal: -90, rate: 50}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.BufferThresholdSec = 10
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With pacing, the last segment downloads no earlier than
	// video length - threshold - slack.
	last := m.Segments[len(m.Segments)-1]
	if last.StartSec < 60-10-3 {
		t.Errorf("last segment started at %.1f s; pacing failed", last.StartSec)
	}
}

func TestRunVibrationReachesQoE(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 5}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	still, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	link2 := &fixedLink{signal: -90, rate: 5}
	cfg2 := baseConfig(t, abr.NewYoutube(), link2)
	cfg2.VibrationAt = func(float64) float64 { return 6.5 }
	shaky, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if shaky.MeanQoE >= still.MeanQoE {
		t.Errorf("vibration did not reduce QoE: %v >= %v", shaky.MeanQoE, still.MeanQoE)
	}
	for _, s := range shaky.Segments {
		if s.Vibration != 6.5 {
			t.Fatalf("segment %d vibration = %v, want 6.5", s.Index, s.Vibration)
		}
	}
}

func TestRunSwitchCounting(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 2}
	cfg := baseConfig(t, abr.NewFESTIVE(), link)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// FESTIVE starts at the bottom and climbs: at least one switch.
	if m.Switches == 0 {
		t.Error("expected bitrate switches while FESTIVE climbs")
	}
	// Count switches independently from the log.
	want := 0
	for i := 1; i < len(m.Segments); i++ {
		if m.Segments[i].Rung != m.Segments[i-1].Rung {
			want++
		}
	}
	if m.Switches != want {
		t.Errorf("Switches = %d, log says %d", m.Switches, want)
	}
}

func TestRunBadRung(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 3}
	cfg := baseConfig(t, &abr.Fixed{Rung: 2}, link)
	// Sabotage: wrap in an algorithm returning an out-of-range rung.
	cfg.Algorithm = badAlg{}
	if _, err := Run(cfg); !errors.Is(err, ErrBadRung) {
		t.Errorf("err = %v, want ErrBadRung", err)
	}
}

type badAlg struct{}

func (badAlg) Name() string                        { return "bad" }
func (badAlg) ChooseRung(abr.Context) (int, error) { return 99, nil }
func (badAlg) ObserveDownload(float64)             {}
func (badAlg) Reset()                              {}

func TestRunExtraJ(t *testing.T) {
	m := &Metrics{PlaybackJ: 100, DownloadJ: 50}
	if got := m.ExtraJ(120); got != 30 {
		t.Errorf("ExtraJ = %v, want 30", got)
	}
	if got := m.ExtraJ(200); got != 0 {
		t.Errorf("ExtraJ clamped = %v, want 0", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Metrics {
		link := &fixedLink{signal: -95, rate: 2}
		cfg := baseConfig(t, abr.NewFESTIVE(), link)
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.TotalJ() != b.TotalJ() || a.MeanQoE != b.MeanQoE || a.Switches != b.Switches {
		t.Error("identical configs produced different metrics")
	}
}
