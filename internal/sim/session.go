package sim

import (
	"errors"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/trace"
	"ecavs/internal/vibration"
)

// TraceSession configures a trace replay with the less-common knobs
// the ablation experiments need.
type TraceSession struct {
	// Trace supplies the link and accelerometer streams.
	Trace *trace.Trace
	// Compiled, when non-nil, is the trace's compiled form — the
	// shared, immutable artifact a campaign builds once per trace and
	// hands to every shard (it must satisfy Compiled.Trace() == Trace).
	// Nil falls back to Trace.Compiled(), which compiles on first use
	// and memoizes on the trace, so repeated sessions over one trace
	// still share a single compilation.
	Compiled *trace.Compiled
	// SessionParams carries the knobs shared with Config (abandonment,
	// vibration scaling, outages, metrics-only replay, decision
	// recording, the compiled QoE table); its fields read and write as
	// if declared here.
	SessionParams
	// Manifest is the video being streamed.
	Manifest *dash.Manifest
	// Algorithm selects bitrates; it is Reset before the run.
	Algorithm abr.Algorithm
	// Power and QoE are the models.
	Power power.Model
	QoE   qoe.Model
	// ThresholdSec is the buffer threshold beta (default 30 s).
	ThresholdSec float64
	// VibrationWindowSec is the online estimation window (default
	// vibration.DefaultWindowSec).
	VibrationWindowSec float64
	// ForceVibration, when non-nil, overrides the sensed vibration with
	// a constant — the context-awareness-off ablation.
	ForceVibration *float64
	// ResumeThresholdSec adds download-pacing hysteresis (see
	// Config.ResumeThresholdSec).
	ResumeThresholdSec float64
	// RRC, when non-nil, enables the LTE radio-state machine (see
	// Config.RRC).
	RRC *power.RRCConfig
}

// Run replays the session. The trace is queried through its compiled
// form (validated once at compile time and shared across sessions):
// the link replays the trace's network points without copying them,
// and the vibration signal comes from the O(1) prefix-sum query via a
// per-session cursor, which agrees with the reference two-pass
// computation within 1e-9 (DESIGN.md §10).
func (s TraceSession) Run() (*Metrics, error) {
	if s.Trace == nil {
		return nil, errors.New("sim: nil trace")
	}
	comp := s.Compiled
	if comp == nil {
		var err error
		comp, err = s.Trace.Compiled()
		if err != nil {
			return nil, err
		}
	} else if comp.Trace() != s.Trace {
		return nil, errors.New("sim: compiled form belongs to a different trace")
	}
	link := comp.Link()
	if s.Algorithm != nil {
		s.Algorithm.Reset()
	}
	window := s.VibrationWindowSec
	if window <= 0 {
		window = vibration.DefaultWindowSec
	}
	cur := comp.Cursor()
	params := s.SessionParams
	var vibAt func(float64) float64
	if s.ForceVibration != nil {
		// The forced constant replaces the sensed signal entirely, so
		// the Monte-Carlo scale must not apply on top of it.
		v := *s.ForceVibration
		vibAt = func(float64) float64 { return v }
		params.VibrationScale = 0
	} else {
		vibAt = func(t float64) float64 { return cur.VibrationAt(t, window) }
	}
	return Run(Config{
		SessionParams:      params,
		Manifest:           s.Manifest,
		Link:               link,
		VibrationAt:        vibAt,
		Algorithm:          s.Algorithm,
		Power:              s.Power,
		QoE:                s.QoE,
		BufferThresholdSec: s.ThresholdSec,
		ResumeThresholdSec: s.ResumeThresholdSec,
		RRC:                s.RRC,
	})
}

// RunOnTrace replays a recorded trace through Run: the link comes from
// the trace's network points and the vibration signal from its
// accelerometer stream, windowed the way the online estimator would
// see it (Section IV-B).
func RunOnTrace(tr *trace.Trace, m *dash.Manifest, alg abr.Algorithm, pm power.Model, qm qoe.Model, thresholdSec float64) (*Metrics, error) {
	var rt *qoe.RungTable
	if m != nil {
		rt = qm.CompileRungs(m.Ladder().Bitrates())
	}
	return TraceSession{
		Trace:         tr,
		SessionParams: SessionParams{RungQoE: rt},
		Manifest:      m,
		Algorithm:     alg,
		Power:         pm,
		QoE:           qm,
		ThresholdSec:  thresholdSec,
	}.Run()
}

// ManifestForTrace builds the manifest of the video a trace's session
// watched: duration from the trace, mid-complexity content, seeded by
// the trace ID so sessions are reproducible.
func ManifestForTrace(tr *trace.Trace, ladder dash.Ladder) (*dash.Manifest, error) {
	if tr == nil {
		return nil, errors.New("sim: nil trace")
	}
	video := dash.Video{
		Title:        tr.Name,
		Genre:        "trace session",
		SpatialInfo:  45,
		TemporalInfo: 15,
		DurationSec:  tr.LengthSec,
	}
	return dash.NewManifest(video, ladder, dash.ManifestConfig{Seed: int64(1000 + tr.ID)})
}

// BaseEnergyJ returns the Section V-B base energy of a trace session:
// the total energy when every segment is fetched at the ladder's
// lowest rung (screen + transfer + decode minimum).
func BaseEnergyJ(tr *trace.Trace, m *dash.Manifest, pm power.Model, qm qoe.Model) (float64, error) {
	lowest := &abr.Fixed{Rung: 0}
	metrics, err := RunOnTrace(tr, m, lowest, pm, qm, player.DefaultBufferThresholdSec)
	if err != nil {
		return 0, err
	}
	return metrics.TotalJ(), nil
}
