// Package sim is the trace-driven streaming simulator of Section V: it
// couples a DASH manifest, a radio link, a playback buffer, an ABR
// algorithm, and the power and QoE models into one timeline, producing
// per-segment logs and session metrics (energy breakdown, mean QoE,
// rebuffering, switches). It is the engine behind every Fig. 5-7
// experiment.
package sim

import (
	"errors"
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/dash"
	"ecavs/internal/netsim"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// SessionParams are the session knobs shared verbatim by every way of
// launching a session — the synthetic-link Config, the trace-replay
// TraceSession, and the public facade's options. They are embedded, so
// callers keep writing flat selectors (cfg.AbandonAtSec = 90) while
// the definition, documentation, and defaults live in exactly one
// place.
type SessionParams struct {
	// AbandonAtSec, when positive, ends the session once playback
	// reaches that point (the viewer quits early — the behaviour that
	// makes deep prefetching waste energy, cf. Hu & Cao, INFOCOM 2015).
	// Content downloaded but never played is reported in
	// Metrics.WastedMB.
	AbandonAtSec float64
	// VibrationScale multiplies the session's vibration signal
	// (Monte-Carlo viewer-context draws). Zero means 1 (unscaled). In a
	// TraceSession, ForceVibration takes precedence.
	VibrationScale float64
	// Outage, when non-nil, overlays a seeded up/down outage process on
	// the link (netsim.WithOutages): tunnels and dead zones on top of
	// whatever channel or trace the session replays. Outage counts and
	// down time are reported in Metrics.OutageCount / OutageSec.
	Outage *netsim.OutageConfig
	// MetricsOnly skips the per-segment SegmentLog accumulation:
	// Metrics.Segments stays nil while every scalar field is computed
	// exactly as in the full-log mode. Campaign runs simulating many
	// thousands of sessions use it to keep the per-session hot path
	// allocation-free; the default (full logs) is what cmd/experiments
	// and the figure pipelines consume.
	MetricsOnly bool
	// Recorder, when non-nil, receives one DecisionEvent per segment —
	// the sampled decision trace behind the telemetry layer's NDJSON
	// output. Nil (the default) keeps the hot path untouched: the only
	// cost is one pointer comparison per segment, preserving the
	// 18-alloc session pin and bit-identical campaign determinism.
	Recorder *DecisionRecorder
	// RungQoE, when non-nil, is a per-rung QoE table compiled from the
	// QoE model over the manifest ladder's bitrates
	// (qoe.Model.CompileRungs); the realized per-segment QoE is then
	// read from the table instead of re-evaluating the Eq. 1 curve
	// functions. The table path is bit-identical to the direct one, so
	// results do not change — only the per-segment math.Pow calls
	// disappear. Callers that replay many sessions over one ladder
	// (campaign, eval) compile once and share the table; nil keeps the
	// direct path and its allocation profile.
	RungQoE *qoe.RungTable
}

// Config describes one streaming session.
type Config struct {
	// SessionParams carries the knobs shared with TraceSession and the
	// facade; its fields read and write as if declared here.
	SessionParams

	// Manifest is the video being streamed.
	Manifest *dash.Manifest
	// Link is the radio link (synthetic channel or trace replay).
	Link netsim.Link
	// VibrationAt reports the Eq. 5 vibration level at a session time;
	// nil means a perfectly still phone.
	VibrationAt func(tSec float64) float64
	// Algorithm selects the bitrate per segment.
	Algorithm abr.Algorithm
	// Power is the energy model.
	Power power.Model
	// QoE is the quality model.
	QoE qoe.Model
	// BufferThresholdSec is the download-pacing threshold beta
	// (default player.DefaultBufferThresholdSec).
	BufferThresholdSec float64
	// ResumeThresholdSec adds hysteresis to download pacing: once the
	// buffer fills past BufferThresholdSec, downloads stay paused until
	// it drains below this level. Zero means no hysteresis (resume as
	// soon as the buffer dips under the threshold). Must not exceed
	// BufferThresholdSec.
	ResumeThresholdSec float64
	// RRC, when non-nil, enables the LTE radio-state machine: transfer
	// promotions, tail energy after each burst, and idle paging power
	// are accounted in Metrics.RadioCtlJ.
	RRC *power.RRCConfig
	// TCPRampSec, when positive, applies a slow-start-style ramp to
	// each segment download: the rate climbs linearly to the link rate
	// over this many seconds, penalising very short segments.
	TCPRampSec float64
}

// SegmentLog records one task's outcome.
type SegmentLog struct {
	// Index is the segment number.
	Index int
	// Rung and BitrateMbps identify the selected representation.
	Rung        int
	BitrateMbps float64
	// SizeMB is the downloaded payload.
	SizeMB float64
	// StartSec is the session time the download began.
	StartSec float64
	// DownloadSec is the download duration.
	DownloadSec float64
	// ThroughputMbps is the measured download rate.
	ThroughputMbps float64
	// MeanSignalDBm is the transfer-weighted signal strength.
	MeanSignalDBm float64
	// Vibration is the vibration level at decision time.
	Vibration float64
	// StallSec is the rebuffering attributed to this segment.
	StallSec float64
	// QoE is the segment's Eq. 1 quality.
	QoE float64
}

// Metrics summarises one session.
type Metrics struct {
	// Algorithm is the policy's display name.
	Algorithm string
	// Segments holds the per-task logs.
	Segments []SegmentLog
	// PlaybackJ, DownloadJ, RebufferJ, StartupJ, RadioCtlJ decompose
	// the session energy; TotalJ is their sum. RadioCtlJ covers RRC
	// promotion, tail, and idle paging energy (zero unless Config.RRC
	// is set).
	PlaybackJ, DownloadJ, RebufferJ, StartupJ, RadioCtlJ float64
	// MeanQoE is the average per-segment Eq. 1 quality.
	MeanQoE float64
	// SessionQoE is the recency- and oscillation-aware session score
	// (qoe.SessionModel with defaults).
	SessionQoE float64
	// MeanBitrateMbps is the duration-weighted mean selected bitrate.
	MeanBitrateMbps float64
	// DownloadedMB is the total payload fetched.
	DownloadedMB float64
	// WastedMB is payload downloaded but never played (early quit).
	WastedMB float64
	// Abandoned reports whether the viewer quit before the end.
	Abandoned bool
	// RebufferSec is total mid-stream stalling; StartupSec is the
	// initial join delay.
	RebufferSec, StartupSec float64
	// Switches counts bitrate changes between consecutive segments.
	Switches int
	// DurationSec is the session wall-clock length.
	DurationSec float64
	// OutageCount and OutageSec report the injected outage process
	// (zero unless Config.Outage is set).
	OutageCount int
	OutageSec   float64
}

// TotalJ returns the session's total energy.
func (m *Metrics) TotalJ() float64 {
	return m.PlaybackJ + m.DownloadJ + m.RebufferJ + m.StartupJ + m.RadioCtlJ
}

// ExtraJ returns the energy above the given base (Section V-B's
// base/extra split). Negative differences clamp to zero.
func (m *Metrics) ExtraJ(baseJ float64) float64 {
	if d := m.TotalJ() - baseJ; d > 0 {
		return d
	}
	return 0
}

// Config validation errors.
var (
	ErrNilManifest  = errors.New("sim: nil manifest")
	ErrNilLink      = errors.New("sim: nil link")
	ErrNilAlgorithm = errors.New("sim: nil algorithm")
	ErrBadRung      = errors.New("sim: algorithm selected an invalid rung")
)

// idleStepSec is the integration step while the buffer is full and the
// radio idles.
const idleStepSec = 0.1

// Run simulates one full streaming session.
func Run(cfg Config) (*Metrics, error) {
	if cfg.Manifest == nil {
		return nil, ErrNilManifest
	}
	if cfg.Link == nil {
		return nil, ErrNilLink
	}
	if cfg.Algorithm == nil {
		return nil, ErrNilAlgorithm
	}
	if err := cfg.Power.Validate(); err != nil {
		return nil, fmt.Errorf("sim: power model: %w", err)
	}
	if err := cfg.QoE.Validate(); err != nil {
		return nil, fmt.Errorf("sim: qoe model: %w", err)
	}
	threshold := cfg.BufferThresholdSec
	if threshold <= 0 {
		threshold = player.DefaultBufferThresholdSec
	}
	resume := cfg.ResumeThresholdSec
	if resume <= 0 {
		resume = threshold
	}
	if resume > threshold {
		return nil, errors.New("sim: resume threshold exceeds buffer threshold")
	}
	var rrc *power.RRCTracker
	if cfg.RRC != nil {
		var err error
		rrc, err = power.NewRRCTracker(*cfg.RRC)
		if err != nil {
			return nil, fmt.Errorf("sim: rrc: %w", err)
		}
	}
	vibAt := cfg.VibrationAt
	if vibAt == nil {
		vibAt = func(float64) float64 { return 0 }
	} else if scale := cfg.VibrationScale; scale > 0 && scale != 1 {
		base := vibAt
		vibAt = func(t float64) float64 { return scale * base(t) }
	}
	link := cfg.Link
	var outage *netsim.OutageLink
	if cfg.Outage != nil {
		var err error
		outage, err = netsim.WithOutages(link, *cfg.Outage)
		if err != nil {
			return nil, fmt.Errorf("sim: outage: %w", err)
		}
		link = outage
	}

	pl, err := player.New(threshold)
	if err != nil {
		return nil, err
	}
	ladder := cfg.Manifest.Ladder()
	if cfg.RungQoE != nil {
		if cfg.RungQoE.Model() != cfg.QoE {
			return nil, errors.New("sim: rung table compiled from a different QoE model")
		}
		if cfg.RungQoE.Len() != len(ladder) {
			return nil, fmt.Errorf("sim: rung table has %d rungs for a %d-rung ladder", cfg.RungQoE.Len(), len(ladder))
		}
		for j := range ladder {
			if cfg.RungQoE.Bitrate(j) != ladder[j].BitrateMbps {
				return nil, fmt.Errorf("sim: rung table bitrate %d mismatches the ladder", j)
			}
		}
	}
	n := cfg.Manifest.SegmentCount()
	m := &Metrics{Algorithm: cfg.Algorithm.Name()}
	if !cfg.MetricsOnly {
		m.Segments = make([]SegmentLog, 0, n)
	}
	startTime := link.Now()
	prevRung := -1

	// Per-session scratch, sized once so the per-segment loop stays
	// allocation-free: the fetched payload per segment (abandonment
	// waste attribution) and the per-segment QoE scores for the session
	// model. The rung-size vector handed to the algorithm is the
	// manifest's internal row (read-only contract), so no per-session
	// copy is needed. The scalar accumulators replace the post-loop
	// passes over Metrics.Segments; they add the same terms in the same
	// order, so the results are bit-identical to the log-driven
	// computation.
	var (
		segSizes = make([]float64, 0, n)
		scores   = make([]qoe.SegmentScore, 0, n)

		qoeSum, brWeighted, durSum float64
	)

	// drain plays dt seconds of buffered video, integrating decode and
	// stall power.
	onPlayed := func(st player.Played) {
		m.PlaybackJ += cfg.Power.PlaybackPowerW(st.BitrateMbps) * st.DurationSec
	}
	drain := func(dt float64) (stallSec float64) {
		stall := pl.DrainInto(dt, onPlayed)
		if stall > 0 {
			m.RebufferJ += cfg.Power.RebufferPowerW * stall
		}
		return stall
	}

	// onStep integrates radio power over one download step; segStall
	// accumulates the stall attributed to the in-flight segment. Both
	// live outside the loop so the closure is built once per session.
	var segStall float64
	onStep := func(step netsim.DownloadStep) {
		m.DownloadJ += cfg.Power.RadioPowerW(step.SignalDBm) * step.Dt
		segStall += drain(step.Dt)
	}

	abandoned := func() bool {
		return cfg.AbandonAtSec > 0 && pl.PlayedSec() >= cfg.AbandonAtSec
	}
	paused := false
	for i := 0; i < n && !abandoned(); i++ {
		// Pace downloads: idle (radio silent, playback continues)
		// while the buffer is above the threshold; with hysteresis,
		// stay paused until it drains to the resume level.
		for !abandoned() {
			buf := pl.BufferSec()
			if buf >= threshold {
				paused = true
			}
			if !paused || buf <= resume {
				paused = false
				break
			}
			drain(idleStepSec)
			link.Advance(idleStepSec)
			if rrc != nil {
				rrc.AdvanceIdle(idleStepSec)
			}
		}
		if abandoned() {
			break
		}

		now := link.Now()
		dur, err := cfg.Manifest.SegmentDuration(i)
		if err != nil {
			return nil, err
		}
		sizes, err := cfg.Manifest.SegmentSizes(i)
		if err != nil {
			return nil, err
		}
		vib := vibAt(now - startTime)
		ctx := abr.Context{
			SegmentIndex:       i,
			Ladder:             ladder,
			SegmentSizesMB:     sizes,
			SegmentDurationSec: dur,
			PrevRung:           prevRung,
			BufferSec:          pl.BufferSec(),
			BufferThresholdSec: threshold,
			SignalDBm:          link.SignalDBm(),
			VibrationLevel:     vib,
		}
		rung, err := cfg.Algorithm.ChooseRung(ctx)
		if err != nil {
			return nil, fmt.Errorf("sim: segment %d: %w", i, err)
		}
		if rung < 0 || rung >= len(ladder) {
			return nil, fmt.Errorf("%w: %d of %d at segment %d", ErrBadRung, rung, len(ladder), i)
		}

		segStall = 0
		if rrc != nil {
			// Promotion latency delays the transfer; playback continues.
			if latency := rrc.StartTransfer(); latency > 0 {
				segStall += drain(latency)
				link.Advance(latency)
			}
		}
		res, err := netsim.DownloadRamped(link, sizes[rung], cfg.TCPRampSec, onStep)
		if err != nil {
			return nil, fmt.Errorf("sim: segment %d download: %w", i, err)
		}
		if rrc != nil {
			rrc.EndTransfer()
		}
		pl.OnSegment(dur, ladder[rung].BitrateMbps)

		thMbps := res.MeanThroughputMBps * 8
		cfg.Algorithm.ObserveDownload(thMbps)

		var segQoE float64
		if cfg.RungQoE != nil {
			segQoE = cfg.RungQoE.SegmentQoE(rung, prevRung, vib, segStall)
		} else {
			prevBitrate := 0.0
			if prevRung >= 0 {
				prevBitrate = ladder[prevRung].BitrateMbps
			}
			segQoE = cfg.QoE.SegmentQoE(qoe.Segment{
				BitrateMbps:     ladder[rung].BitrateMbps,
				PrevBitrateMbps: prevBitrate,
				Vibration:       vib,
				RebufferSec:     segStall,
			})
		}
		if cfg.Recorder != nil {
			cfg.Recorder.Record(DecisionEvent{
				Segment:     i,
				Rung:        rung,
				BitrateMbps: ladder[rung].BitrateMbps,
				BufferSec:   ctx.BufferSec,
				SignalDBm:   ctx.SignalDBm,
				Vibration:   vib,
				PowerW:      cfg.Power.PlaybackPowerW(ladder[rung].BitrateMbps) + cfg.Power.RadioPowerW(ctx.SignalDBm),
				QoE:         segQoE,
			})
		}
		if !cfg.MetricsOnly {
			m.Segments = append(m.Segments, SegmentLog{
				Index:          i,
				Rung:           rung,
				BitrateMbps:    ladder[rung].BitrateMbps,
				SizeMB:         sizes[rung],
				StartSec:       now - startTime,
				DownloadSec:    res.DurationSec,
				ThroughputMbps: thMbps,
				MeanSignalDBm:  res.MeanSignalDBm,
				Vibration:      vib,
				StallSec:       segStall,
				QoE:            segQoE,
			})
		}
		segSizes = append(segSizes, sizes[rung])
		scores = append(scores, qoe.SegmentScore{StartSec: now - startTime, QoE: segQoE})
		qoeSum += segQoE
		brWeighted += ladder[rung].BitrateMbps * dur
		durSum += dur
		m.DownloadedMB += sizes[rung]
		if prevRung >= 0 && rung != prevRung {
			m.Switches++
		}
		prevRung = rung
	}

	if abandoned() {
		// The viewer quit: whatever sits in the buffer was downloaded
		// for nothing. Attribute the trailing bufferSec seconds of
		// downloaded content (FIFO buffer => the most recent segments)
		// as wasted payload. Segments are fetched in order, so segment
		// k's payload is segSizes[k].
		m.Abandoned = true
		remaining := pl.BufferSec()
		for i := len(segSizes) - 1; i >= 0 && remaining > 1e-9; i-- {
			dur, err := cfg.Manifest.SegmentDuration(i)
			if err != nil {
				return nil, err
			}
			if dur <= 0 {
				continue
			}
			take := dur
			if take > remaining {
				take = remaining
			}
			m.WastedMB += segSizes[i] * take / dur
			remaining -= take
		}
	} else {
		// Play out the remaining buffer.
		pl.FinishRemainingInto(func(st player.Played) {
			m.PlaybackJ += cfg.Power.PlaybackPowerW(st.BitrateMbps) * st.DurationSec
			link.Advance(st.DurationSec)
			if rrc != nil {
				rrc.AdvanceIdle(st.DurationSec)
			}
		})
	}
	if rrc != nil {
		m.RadioCtlJ = rrc.TotalJ()
	}
	if outage != nil {
		m.OutageCount, m.OutageSec = outage.Outages()
	}

	m.StartupSec = pl.StartupSec()
	m.StartupJ = cfg.Power.RebufferPowerW * m.StartupSec
	m.RebufferSec = pl.StallSec()
	m.DurationSec = link.Now() - startTime

	if len(scores) > 0 {
		m.MeanQoE = qoeSum / float64(len(scores))
		sessionQoE, err := qoe.DefaultSession().Score(scores, m.StartupSec)
		if err != nil {
			return nil, err
		}
		m.SessionQoE = sessionQoE
	}
	if durSum > 0 {
		m.MeanBitrateMbps = brWeighted / durSum
	}
	return m, nil
}
