package sim

import (
	"reflect"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// chaosAlgorithms builds a fresh instance of every ABR policy.
func chaosAlgorithms(t *testing.T) map[string]abr.Algorithm {
	t.Helper()
	bola, err := abr.NewBOLA()
	if err != nil {
		t.Fatal(err)
	}
	mpc, err := abr.NewMPC()
	if err != nil {
		t.Fatal(err)
	}
	bba, err := abr.NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]abr.Algorithm{
		"Youtube": abr.NewYoutube(),
		"FESTIVE": abr.NewFESTIVE(),
		"BBA":     bba,
		"BOLA":    bola,
		"MPC":     mpc,
		"Ours":    core.NewOnline(obj),
	}
}

// Every ABR algorithm must finish a session through repeated dead-air
// outages (zero residual rate) with bounded stalling — the buffer and
// the download pacing absorb what they can, and the rest shows up as
// rebuffering, never as an error or a hang.
func TestOutageChaosEveryAlgorithmSurvives(t *testing.T) {
	outage := &netsim.OutageConfig{
		MeanUpSec:    6,
		MeanDownSec:  4,
		DownRateFrac: 0,
		SignalDropDB: 20,
		Seed:         9,
	}
	for name, alg := range chaosAlgorithms(t) {
		link := &fixedLink{signal: -95, rate: 2}
		cfg := baseConfig(t, alg, link)
		cfg.Manifest = testManifest(t, 120)
		cfg.Outage = outage
		m, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: outage storm sank the session: %v", name, err)
			continue
		}
		if len(m.Segments) != 60 {
			t.Errorf("%s: %d segments, want 60 (session must complete)", name, len(m.Segments))
		}
		if m.OutageCount == 0 || m.OutageSec <= 0 {
			t.Errorf("%s: outage counters (%d, %.1f) empty despite the overlay", name, m.OutageCount, m.OutageSec)
		}
		if m.RebufferSec < 0 || m.RebufferSec > m.DurationSec {
			t.Errorf("%s: rebuffering %.1f s out of bounds for a %.1f s session", name, m.RebufferSec, m.DurationSec)
		}
		if m.DurationSec <= 0 {
			t.Errorf("%s: non-positive session duration", name)
		}
	}
}

// The outage overlay composes with the Gilbert–Elliott burst channel:
// outages on top of an already-bursty link still produce a completed,
// finite session.
func TestOutageChaosOnBurstChannel(t *testing.T) {
	ge, err := netsim.NewGilbertElliott(netsim.DefaultGilbertElliott(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, abr.NewFESTIVE(), ge)
	cfg.Manifest = testManifest(t, 120)
	cfg.Outage = &netsim.OutageConfig{MeanUpSec: 10, MeanDownSec: 3, DownRateFrac: 0.05, SignalDropDB: 10, Seed: 2}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 60 {
		t.Errorf("%d segments, want 60", len(m.Segments))
	}
	if m.OutageCount == 0 {
		t.Error("no outages drawn in 120 s with a 13 s cycle")
	}
}

// An outage process that never ends (a session-long dead link) must
// surface netsim.ErrStalledLink, not hang.
func TestOutagePermanentSurfacesError(t *testing.T) {
	cfg := baseConfig(t, abr.NewYoutube(), &fixedLink{signal: -95, rate: 2})
	// MeanUpSec tiny, MeanDownSec enormous: effectively down forever.
	cfg.Outage = &netsim.OutageConfig{MeanUpSec: 0.001, MeanDownSec: 1e7, DownRateFrac: 0, Seed: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("permanently dead overlay produced no error")
	}
}

// The outage schedule is a pure function of the config seed: identical
// sessions replay identically, and outage metrics match between full
// and metrics-only modes.
func TestOutageDeterministicAcrossModes(t *testing.T) {
	run := func(metricsOnly bool) *Metrics {
		cfg := baseConfig(t, abr.NewFESTIVE(), &fixedLink{signal: -95, rate: 2})
		cfg.Manifest = testManifest(t, 120)
		cfg.Outage = &netsim.OutageConfig{MeanUpSec: 8, MeanDownSec: 3, DownRateFrac: 0.1, Seed: 6}
		cfg.MetricsOnly = metricsOnly
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(false), run(false)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical outage configs produced different sessions")
	}
	c := run(true)
	if a.OutageCount != c.OutageCount || a.OutageSec != c.OutageSec ||
		a.TotalJ() != c.TotalJ() || a.RebufferSec != c.RebufferSec {
		t.Errorf("metrics-only outage session diverged: %+v vs %+v", a, c)
	}
}

func TestOutageInvalidConfigRejected(t *testing.T) {
	cfg := baseConfig(t, abr.NewYoutube(), &fixedLink{signal: -95, rate: 2})
	cfg.Outage = &netsim.OutageConfig{MeanUpSec: -1, MeanDownSec: 3}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid outage config accepted")
	}
}
