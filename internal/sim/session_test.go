package sim

import (
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/trace"
)

func TestManifestForTrace(t *testing.T) {
	pm := power.EvalModel()
	traces, err := trace.GenerateTableV(pm.NominalThroughputMBps)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ManifestForTrace(traces[0], dash.EvalLadder())
	if err != nil {
		t.Fatal(err)
	}
	if m.Video().DurationSec != traces[0].LengthSec {
		t.Errorf("manifest duration = %v, want %v", m.Video().DurationSec, traces[0].LengthSec)
	}
	if _, err := ManifestForTrace(nil, dash.EvalLadder()); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestRunOnTraceValidation(t *testing.T) {
	if _, err := RunOnTrace(nil, nil, nil, power.EvalModel(), qoe.Default(), 30); err == nil {
		t.Error("nil trace accepted")
	}
	bad := &trace.Trace{}
	if _, err := RunOnTrace(bad, nil, nil, power.EvalModel(), qoe.Default(), 30); err == nil {
		t.Error("invalid trace accepted")
	}
}

// The headline integration test: on the Table V traces, the paper's
// orderings must hold — YouTube spends the most energy and gets the
// best QoE; Ours and Optimal save drastically more energy than FESTIVE
// and BBA; Ours' energy is close to Optimal's; and on the combined
// saving/degradation ratio Ours beats both baselines.
func TestPaperOrderingsOnTableVTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-trace comparison is slow")
	}
	pm := power.EvalModel()
	qm := qoe.Default()
	ladder := dash.EvalLadder()
	traces, err := trace.GenerateTableV(pm.NominalThroughputMBps)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := core.NewObjective(core.DefaultAlpha, pm, qm)
	if err != nil {
		t.Fatal(err)
	}

	var sumSave, sumDegr [5]float64 // YT, FESTIVE, BBA, Ours, Optimal
	for _, tr := range traces {
		man, err := ManifestForTrace(tr, ladder)
		if err != nil {
			t.Fatal(err)
		}
		bba, err := abr.NewBBA()
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := core.ObserveTasks(tr, man, player.DefaultBufferThresholdSec, 6)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := core.PlanOptimal(obj, ladder, tasks)
		if err != nil {
			t.Fatal(err)
		}
		algs := []abr.Algorithm{
			abr.NewYoutube(),
			abr.NewFESTIVE(),
			bba,
			core.NewOnline(obj),
			core.NewPlannedAlgorithm("Optimal", plan),
		}
		results := make([]*Metrics, len(algs))
		for i, a := range algs {
			m, err := RunOnTrace(tr, man, a, pm, qm, player.DefaultBufferThresholdSec)
			if err != nil {
				t.Fatalf("trace %d %s: %v", tr.ID, a.Name(), err)
			}
			results[i] = m
		}
		yt := results[0]

		// YouTube downloads everything at 5.8 and spends the most.
		for i, m := range results[1:] {
			if m.TotalJ() > yt.TotalJ()*1.02 {
				t.Errorf("trace %d: %s energy %.0f J exceeds YouTube %.0f J",
					tr.ID, algs[i+1].Name(), m.TotalJ(), yt.TotalJ())
			}
			if m.MeanQoE > yt.MeanQoE*1.01 {
				t.Errorf("trace %d: %s QoE %.3f exceeds YouTube %.3f",
					tr.ID, algs[i+1].Name(), m.MeanQoE, yt.MeanQoE)
			}
		}
		// Ours and Optimal save far more than FESTIVE and BBA.
		for _, ctx := range []int{3, 4} {
			for _, base := range []int{1, 2} {
				if results[ctx].TotalJ() > results[base].TotalJ()*0.9 {
					t.Errorf("trace %d: %s (%.0f J) does not clearly beat %s (%.0f J)",
						tr.ID, algs[ctx].Name(), results[ctx].TotalJ(),
						algs[base].Name(), results[base].TotalJ())
				}
			}
		}
		// Ours tracks Optimal's energy within 20%.
		oursJ, optJ := results[3].TotalJ(), results[4].TotalJ()
		if oursJ > optJ*1.2 {
			t.Errorf("trace %d: Ours %.0f J strays from Optimal %.0f J", tr.ID, oursJ, optJ)
		}
		for i, m := range results {
			sumSave[i] += 1 - m.TotalJ()/yt.TotalJ()
			sumDegr[i] += 1 - m.MeanQoE/yt.MeanQoE
		}
	}

	// Aggregate shape (paper Figs. 5b, 6c, 7): Ours saves dramatically
	// more than the baselines while the combined ratio favours Ours.
	oursSave, festSave, bbaSave := sumSave[3]/5, sumSave[1]/5, sumSave[2]/5
	if oursSave < 0.30 {
		t.Errorf("Ours average saving = %.1f%%, want >= 30%% (paper: 33%%)", oursSave*100)
	}
	if festSave > oursSave/2 || bbaSave > oursSave/2 {
		t.Errorf("baselines save too much: FESTIVE %.1f%%, BBA %.1f%% vs Ours %.1f%%",
			festSave*100, bbaSave*100, oursSave*100)
	}
	oursRatio := oursSave / (sumDegr[3] / 5)
	festRatio := festSave / (sumDegr[1] / 5)
	bbaRatio := bbaSave / (sumDegr[2] / 5)
	if oursRatio <= festRatio || oursRatio <= bbaRatio {
		t.Errorf("saving/degradation ratio: Ours %.2f must beat FESTIVE %.2f and BBA %.2f",
			oursRatio, festRatio, bbaRatio)
	}
	// Optimal provides the upper bound on energy saving (within noise).
	if sumSave[4]/5 < oursSave-0.05 {
		t.Errorf("Optimal average saving %.1f%% below Ours %.1f%%", sumSave[4]/5*100, oursSave*100)
	}
}

func TestBaseEnergyJ(t *testing.T) {
	pm := power.EvalModel()
	qm := qoe.Default()
	traces, err := trace.GenerateTableV(pm.NominalThroughputMBps)
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	man, err := ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		t.Fatal(err)
	}
	baseJ, err := BaseEnergyJ(tr, man, pm, qm)
	if err != nil {
		t.Fatal(err)
	}
	// Base energy ≈ base power x trace length (downloads at 0.1 Mbps
	// are nearly free).
	approx := pm.BasePowerW * tr.LengthSec
	if baseJ < approx*0.95 || baseJ > approx*1.2 {
		t.Errorf("BaseEnergyJ = %.0f, want near %.0f", baseJ, approx)
	}
	// Every policy's energy is bounded below by the base energy.
	yt, err := RunOnTrace(tr, man, abr.NewYoutube(), pm, qm, 30)
	if err != nil {
		t.Fatal(err)
	}
	if yt.TotalJ() < baseJ {
		t.Errorf("YouTube %.0f J below base %.0f J", yt.TotalJ(), baseJ)
	}
}
