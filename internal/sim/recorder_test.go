package sim

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ecavs/internal/abr"
)

func TestRecorderRingAndSampling(t *testing.T) {
	r, err := NewDecisionRecorder(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(DecisionEvent{Segment: i})
	}
	if r.Seen() != 10 || r.Len() != 4 {
		t.Errorf("seen %d len %d, want 10 and 4", r.Seen(), r.Len())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := 6 + i; ev.Segment != want {
			t.Errorf("event %d is segment %d, want %d (oldest-first after wrap)", i, ev.Segment, want)
		}
	}

	sampled, err := NewDecisionRecorder(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		sampled.Record(DecisionEvent{Segment: i})
	}
	want := []int{0, 3, 6, 9}
	got := sampled.Events()
	if len(got) != len(want) {
		t.Fatalf("sampled %d events, want %d", len(got), len(want))
	}
	for i, ev := range got {
		if ev.Segment != want[i] {
			t.Errorf("sampled event %d is segment %d, want %d", i, ev.Segment, want[i])
		}
	}
}

func TestRecorderValidation(t *testing.T) {
	if _, err := NewDecisionRecorder(0, 1); err == nil {
		t.Error("capacity 0 accepted")
	}
	if r, err := NewDecisionRecorder(1, -5); err != nil || r.every != 1 {
		t.Errorf("sampleEvery below 1 not clamped: %v, %+v", err, r)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *DecisionRecorder
	r.Record(DecisionEvent{})
	if r.Seen() != 0 || r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder reported state")
	}
	if err := r.WriteNDJSON(&strings.Builder{}); err != nil {
		t.Errorf("nil recorder NDJSON: %v", err)
	}
}

// failAfterWriter accepts n writes, then fails every subsequent one —
// a full disk or closed pipe mid-export.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestNDJSONWriteFailure pins the export error contract: a failing
// writer aborts WriteNDJSON immediately with a wrapped error that
// names the package, keeps the cause inspectable with errors.Is, and
// identifies the segment whose line was lost.
func TestNDJSONWriteFailure(t *testing.T) {
	rec, err := NewDecisionRecorder(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec.Record(DecisionEvent{Segment: i})
	}

	cause := errors.New("disk full")
	for _, failAt := range []int{0, 2} {
		werr := rec.WriteNDJSON(&failAfterWriter{n: failAt, err: cause})
		if werr == nil {
			t.Fatalf("writer failing at line %d: WriteNDJSON returned nil", failAt)
		}
		if !errors.Is(werr, cause) {
			t.Errorf("cause not wrapped: %v", werr)
		}
		if !strings.Contains(werr.Error(), "sim: write decision trace") {
			t.Errorf("error lacks package context: %v", werr)
		}
		if want := fmt.Sprintf("segment %d", failAt); !strings.Contains(werr.Error(), want) {
			t.Errorf("error %v does not identify %s", werr, want)
		}
	}
}

// TestSessionDecisionTrace replays a session with the recorder
// attached and checks that the trace mirrors the segment log: one
// event per fetched segment carrying the same rung, vibration, and QoE
// the simulator recorded.
func TestSessionDecisionTrace(t *testing.T) {
	rec, err := NewDecisionRecorder(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	link := &fixedLink{signal: -95, rate: 1.5}
	cfg := baseConfig(t, abr.NewFESTIVE(), link)
	cfg.VibrationAt = func(tSec float64) float64 { return 2 + float64(int(tSec)%3) }
	cfg.Recorder = rec
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) != len(m.Segments) {
		t.Fatalf("%d trace events for %d segments", len(evs), len(m.Segments))
	}
	for i, ev := range evs {
		log := m.Segments[i]
		if ev.Segment != log.Index || ev.Rung != log.Rung ||
			ev.BitrateMbps != log.BitrateMbps || ev.Vibration != log.Vibration ||
			ev.QoE != log.QoE {
			t.Errorf("event %d diverges from segment log:\nevent = %+v\nlog   = %+v", i, ev, log)
		}
		if ev.PowerW <= 0 {
			t.Errorf("event %d has non-positive power draw %v", i, ev.PowerW)
		}
	}
}

// TestRecorderDoesNotPerturbMetrics pins the observability contract:
// attaching a recorder must leave every session metric bit-identical.
func TestRecorderDoesNotPerturbMetrics(t *testing.T) {
	run := func(rec *DecisionRecorder) *Metrics {
		link := &fixedLink{signal: -95, rate: 1.5}
		cfg := baseConfig(t, abr.NewFESTIVE(), link)
		cfg.MetricsOnly = true
		cfg.Recorder = rec
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	rec, err := NewDecisionRecorder(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, traced := run(nil), run(rec)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("recorder changed session metrics:\nplain  = %+v\ntraced = %+v", plain, traced)
	}
	if rec.Len() == 0 {
		t.Error("recorder captured nothing")
	}
}

// TestNDJSONOutput checks the offline-analysis format: one JSON object
// per line, schema fields present, order oldest-first.
func TestNDJSONOutput(t *testing.T) {
	rec, err := NewDecisionRecorder(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	link := &fixedLink{signal: -95, rate: 1.5}
	cfg := baseConfig(t, abr.NewFESTIVE(), link)
	cfg.Recorder = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := rec.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	prevSegment := -1
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines+1, err)
		}
		for _, key := range []string{"segment", "rung", "bitrate_mbps", "buffer_sec", "signal_dbm", "vibration", "power_w", "qoe"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("line %d missing %q", lines+1, key)
			}
		}
		seg := int(ev["segment"].(float64))
		if seg <= prevSegment {
			t.Errorf("line %d out of order: segment %d after %d", lines+1, seg, prevSegment)
		}
		prevSegment = seg
		lines++
	}
	if lines != rec.Len() {
		t.Errorf("NDJSON emitted %d lines for %d held events", lines, rec.Len())
	}
	if lines == 0 {
		t.Error("no trace lines emitted")
	}
}
