package sim

import (
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/netsim"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
)

// collapseLink serves fast, then collapses to a trickle at collapseAt,
// then recovers at recoverAt.
type collapseLink struct {
	now        float64
	collapseAt float64
	recoverAt  float64
	fast, slow float64
}

func (l *collapseLink) Now() float64       { return l.now }
func (l *collapseLink) SignalDBm() float64 { return -100 }
func (l *collapseLink) ThroughputMBps() float64 {
	if l.now >= l.collapseAt && l.now < l.recoverAt {
		return l.slow
	}
	return l.fast
}
func (l *collapseLink) Advance(dt float64) {
	if dt > 0 {
		l.now += dt
	}
}

// A mid-session bandwidth collapse: the fixed-top-bitrate policy must
// survive (finish the session) with bounded stalling thanks to the
// 30 s buffer, and the session must take longer than the video.
func TestBandwidthCollapseYoutubeSurvives(t *testing.T) {
	link := &collapseLink{collapseAt: 20, recoverAt: 80, fast: 10, slow: 0.05}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.Manifest = testManifest(t, 120)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 60 {
		t.Fatalf("segments = %d, want 60 (session must complete)", len(m.Segments))
	}
	if m.RebufferSec <= 0 {
		t.Error("expected stalling through a 60 s collapse at 0.05 MB/s")
	}
}

// The adaptive online algorithm rides the same collapse with far less
// stalling than the fixed policy: it steps down when the estimate
// collapses.
func TestBandwidthCollapseOnlineAdapts(t *testing.T) {
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		t.Fatal(err)
	}
	run := func(alg abr.Algorithm) *Metrics {
		link := &collapseLink{collapseAt: 20, recoverAt: 80, fast: 10, slow: 0.05}
		cfg := baseConfig(t, alg, link)
		cfg.Manifest = testManifest(t, 120)
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fixed := run(abr.NewYoutube())
	ours := run(core.NewOnline(obj))
	if ours.RebufferSec >= fixed.RebufferSec {
		t.Errorf("online stalled %.1f s, fixed %.1f s; adaptation failed",
			ours.RebufferSec, fixed.RebufferSec)
	}
	// During the collapse the online policy must have stepped down from
	// its steady choice (the paper's 20-sample harmonic mean reacts
	// deliberately slowly, so it reaches ~1.5 Mbps, not the floor).
	var steady, dropped float64 = 0, 99
	for _, s := range ours.Segments {
		if s.StartSec > 5 && s.StartSec < 20 && s.BitrateMbps > steady {
			steady = s.BitrateMbps
		}
		if s.StartSec > 40 && s.StartSec < 80 && s.BitrateMbps < dropped {
			dropped = s.BitrateMbps
		}
	}
	if dropped >= steady {
		t.Errorf("online policy never stepped down during the collapse (steady %.2f, collapse %.2f)",
			steady, dropped)
	}
}

// A permanently dead link must surface ErrStalledLink, not hang.
func TestPermanentOutageSurfacesError(t *testing.T) {
	link := &fixedLink{signal: -115, rate: 0}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	if _, err := Run(cfg); err == nil {
		t.Fatal("dead link produced no error")
	}
}

// Sensor dropout: the vibration callback returning NaN-free zeros must
// not break the session (context falls back to "still").
func TestVibrationSensorDropout(t *testing.T) {
	obj, err := core.NewObjective(core.DefaultAlpha, power.EvalModel(), qoe.Default())
	if err != nil {
		t.Fatal(err)
	}
	link := &fixedLink{signal: -100, rate: 5}
	cfg := baseConfig(t, core.NewOnline(obj), link)
	dropout := 0
	cfg.VibrationAt = func(t float64) float64 {
		dropout++
		if dropout%3 == 0 {
			return 0 // sensor gap
		}
		return 6.5
	}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 30 {
		t.Errorf("segments = %d, want 30", len(m.Segments))
	}
}

// Download over a randomly varying link conserves payload bytes.
func TestDownloadConservationOnVolatileLink(t *testing.T) {
	pm := power.EvalModel()
	ch, err := netsim.NewChannel(netsim.VehicleSignal, netsim.FadingConfig{}, pm.NominalThroughputMBps, 99)
	if err != nil {
		t.Fatal(err)
	}
	var moved float64
	res, err := netsim.Download(ch, 25, func(s netsim.DownloadStep) {
		moved += s.TransferredMB
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := moved - 25; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("moved %.6f MB, want 25", moved)
	}
	if res.DurationSec <= 0 {
		t.Error("non-positive duration")
	}
}
