package sim

import (
	"reflect"
	"testing"

	"ecavs/internal/abr"
	"ecavs/internal/power"
)

// TestMetricsOnlyIdentical proves the acceptance contract of the
// allocation-free mode: with MetricsOnly set, every scalar Metrics
// field is bit-identical to the full-log run — only the Segments slice
// is withheld. The variants cover the paths that branch on per-segment
// state: plain playback, early abandonment (waste attribution walks
// the fetched-segment sizes), RRC tail energy, and pacing hysteresis.
func TestMetricsOnlyIdentical(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(cfg *Config)
	}{
		{"plain", func(cfg *Config) {}},
		{"abandoned", func(cfg *Config) { cfg.AbandonAtSec = 30 }},
		{"rrc", func(cfg *Config) {
			rrc := power.DefaultRRC()
			cfg.RRC = &rrc
		}},
		{"hysteresis", func(cfg *Config) {
			cfg.BufferThresholdSec = 30
			cfg.ResumeThresholdSec = 10
		}},
		{"ramp", func(cfg *Config) { cfg.TCPRampSec = 1 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			run := func(metricsOnly bool) *Metrics {
				link := &fixedLink{signal: -95, rate: 1.5}
				cfg := baseConfig(t, abr.NewFESTIVE(), link)
				cfg.Manifest = testManifest(t, 120)
				cfg.VibrationAt = func(tSec float64) float64 { return 3 + 2*float64(int(tSec)%5) }
				v.mutate(&cfg)
				cfg.MetricsOnly = metricsOnly
				m, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			full, lean := run(false), run(true)

			if lean.Segments != nil {
				t.Errorf("MetricsOnly retained %d segment logs", len(lean.Segments))
			}
			if len(full.Segments) == 0 {
				t.Fatal("full run produced no segment logs")
			}
			fullScalars, leanScalars := *full, *lean
			fullScalars.Segments, leanScalars.Segments = nil, nil
			if !reflect.DeepEqual(fullScalars, leanScalars) {
				t.Errorf("metrics diverge:\nfull = %+v\nlean = %+v", fullScalars, leanScalars)
			}
		})
	}
}
