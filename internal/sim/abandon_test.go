package sim

import (
	"math"
	"testing"

	"ecavs/internal/abr"
)

func TestAbandonmentEndsSessionEarly(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.Manifest = testManifest(t, 120)
	cfg.AbandonAtSec = 30
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Abandoned {
		t.Fatal("session not marked abandoned")
	}
	// Far fewer than the 60 segments were fetched.
	if len(m.Segments) >= 60 {
		t.Errorf("fetched %d segments despite quitting at 30 s", len(m.Segments))
	}
	// The whole remaining buffer is wasted payload.
	if m.WastedMB <= 0 {
		t.Error("no wasted payload recorded")
	}
	if m.WastedMB > m.DownloadedMB {
		t.Errorf("WastedMB %v exceeds DownloadedMB %v", m.WastedMB, m.DownloadedMB)
	}
}

func TestNoAbandonmentNoWaste(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Abandoned || m.WastedMB != 0 {
		t.Errorf("unabandoned session reports Abandoned=%v WastedMB=%v", m.Abandoned, m.WastedMB)
	}
}

func TestAbandonmentAfterEndIsNoOp(t *testing.T) {
	link := &fixedLink{signal: -90, rate: 10}
	cfg := baseConfig(t, abr.NewYoutube(), link)
	cfg.AbandonAtSec = 10_000 // beyond the video
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Abandoned {
		t.Error("session marked abandoned past its end")
	}
	if len(m.Segments) != 30 {
		t.Errorf("segments = %d, want all 30", len(m.Segments))
	}
}

// Deeper prefetch buffers waste more energy under early quits: the
// trade-off that motivates user-aware prefetching (Hu & Cao 2015).
func TestDeeperBuffersWasteMoreOnAbandonment(t *testing.T) {
	run := func(threshold float64) *Metrics {
		link := &fixedLink{signal: -100, rate: 10}
		cfg := baseConfig(t, abr.NewYoutube(), link)
		cfg.Manifest = testManifest(t, 300)
		cfg.BufferThresholdSec = threshold
		cfg.AbandonAtSec = 60
		m, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	shallow := run(10)
	deep := run(60)
	if deep.WastedMB <= shallow.WastedMB {
		t.Errorf("deep buffer wasted %.2f MB, shallow %.2f MB; expected deep > shallow",
			deep.WastedMB, shallow.WastedMB)
	}
	// Wasted payload should be roughly the buffer depth's worth of
	// content (threshold seconds at 5.8 Mbps x complexity).
	video := testManifest(t, 300).Video()
	approxDeep := 5.8 / 8 * 60 * video.Complexity()
	if math.Abs(deep.WastedMB-approxDeep)/approxDeep > 0.25 {
		t.Errorf("deep WastedMB = %.2f, want ≈ %.2f", deep.WastedMB, approxDeep)
	}
}
