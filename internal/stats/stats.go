// Package stats provides the small numerical toolkit used across the
// simulator: robust means, dispersion measures, percentiles, and simple
// linear regression. All functions are pure and operate on float64
// slices without mutating their inputs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful
// result for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. The harmonic mean is
// dominated by the smallest samples, which makes it a conservative
// bandwidth estimator in the presence of throughput spikes (the reason
// FESTIVE and the paper's online algorithm use it).
//
// All samples must be strictly positive; HarmonicMean returns ErrEmpty
// for an empty slice and ErrNonPositive if any sample is <= 0.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sumInv float64
	for _, x := range xs {
		if x <= 0 {
			return 0, ErrNonPositive
		}
		sumInv += 1 / x
	}
	return float64(len(xs)) / sumInv, nil
}

// ErrNonPositive is returned by HarmonicMean when a sample is <= 0.
var ErrNonPositive = errors.New("stats: non-positive sample")

// Variance returns the population variance of xs (division by n, not
// n-1), or 0 for samples of fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// RMS returns the root mean square of xs, or 0 for an empty slice.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or ErrEmpty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs, or ErrEmpty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input is not
// modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b. xs and ys must have equal length >= 2 and xs
// must not be constant.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: need at least two points")
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: x values are constant")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
