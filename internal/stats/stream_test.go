package stats

import (
	"math"
	"sort"
	"testing"
)

// ref computes exact reference moments for comparison.
func ref(xs []float64) (mean, variance, lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		mean += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return
}

func testValues(n int) []float64 {
	// Deterministic, irregular, mixed-sign stream.
	xs := make([]float64, n)
	state := uint64(42)
	for i := range xs {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		u := float64((z^(z>>31))>>11) / (1 << 53)
		xs[i] = (u - 0.3) * 50
	}
	return xs
}

func TestAccumulatorMoments(t *testing.T) {
	xs := testValues(10_000)
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	mean, variance, lo, hi := ref(xs)
	if a.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	if math.Abs(a.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", a.Mean(), mean)
	}
	if math.Abs(a.Variance()-variance) > 1e-6 {
		t.Errorf("Variance = %v, want %v", a.Variance(), variance)
	}
	if a.Min() != lo || a.Max() != hi {
		t.Errorf("Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), lo, hi)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero-value accumulator must report all zeros")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	xs := testValues(5_000)
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	// Split into uneven shards, merge in shard order.
	cuts := []int{0, 1, 17, 1000, 1001, 4999, len(xs)}
	var merged Accumulator
	for c := 0; c+1 < len(cuts); c++ {
		var shard Accumulator
		for _, x := range xs[cuts[c]:cuts[c+1]] {
			shard.Add(x)
		}
		merged.Merge(shard)
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("Mean = %v, want %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-6 {
		t.Errorf("Variance = %v, want %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("Min/Max = %v/%v, want %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestAccumulatorMergeEmptySides(t *testing.T) {
	var a, empty Accumulator
	a.Add(3)
	a.Add(5)
	before := a
	a.Merge(empty)
	if a != before {
		t.Error("merging an empty accumulator changed state")
	}
	var b Accumulator
	b.Merge(before)
	if b != before {
		t.Error("merging into an empty accumulator must copy")
	}
}

func TestP2ShortStreamExact(t *testing.T) {
	e := NewP2(0.5)
	for _, x := range []float64{9, 1, 5} {
		e.Add(x)
	}
	if got := e.Value(); got != 5 {
		t.Errorf("median of {1,5,9} = %v, want 5", got)
	}
	if e.N() != 3 {
		t.Errorf("N = %d, want 3", e.N())
	}
}

func TestP2Converges(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95} {
		xs := testValues(50_000)
		e := NewP2(p)
		for _, x := range xs {
			e.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		exact, err := Percentile(sorted, p*100)
		if err != nil {
			t.Fatal(err)
		}
		// Tolerance relative to the data spread.
		spread := sorted[len(sorted)-1] - sorted[0]
		if diff := math.Abs(e.Value() - exact); diff > 0.01*spread {
			t.Errorf("p=%v: estimate %v vs exact %v (diff %v, spread %v)", p, e.Value(), exact, diff, spread)
		}
	}
}

func TestP2Deterministic(t *testing.T) {
	xs := testValues(1_000)
	a, b := NewP2(0.9), NewP2(0.9)
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a.Value() != b.Value() {
		t.Errorf("same stream, different estimates: %v vs %v", a.Value(), b.Value())
	}
}
