package stats

import "math"

// SlidingWindow is a fixed-capacity FIFO of float64 samples with O(1)
// append and O(n) aggregate queries. It backs the bandwidth and
// vibration estimators, which repeatedly compute statistics over the
// most recent k samples.
//
// The zero value is not usable; construct with NewSlidingWindow.
type SlidingWindow struct {
	buf   []float64
	head  int // index of the oldest sample
	count int
}

// NewSlidingWindow returns a window holding at most capacity samples.
// capacity must be >= 1; smaller values are raised to 1.
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &SlidingWindow{buf: make([]float64, capacity)}
}

// Push appends a sample, evicting the oldest one if the window is full.
func (w *SlidingWindow) Push(x float64) {
	if w.count < len(w.buf) {
		w.buf[(w.head+w.count)%len(w.buf)] = x
		w.count++
		return
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
}

// Len reports the number of samples currently held.
func (w *SlidingWindow) Len() int { return w.count }

// Cap reports the window capacity.
func (w *SlidingWindow) Cap() int { return len(w.buf) }

// Values returns the samples in insertion order (oldest first) as a
// fresh slice.
func (w *SlidingWindow) Values() []float64 {
	out := make([]float64, 0, w.count)
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[(w.head+i)%len(w.buf)])
	}
	return out
}

// Reset discards all samples.
func (w *SlidingWindow) Reset() {
	w.head = 0
	w.count = 0
}

// The aggregate queries walk the ring in insertion order directly
// instead of materialising Values(): the bandwidth estimators call
// them once per simulated segment, and the per-call copy was one of
// the session hot path's few remaining allocations.

// Mean returns the arithmetic mean of the held samples (0 if empty).
func (w *SlidingWindow) Mean() float64 {
	if w.count == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < w.count; i++ {
		sum += w.buf[(w.head+i)%len(w.buf)]
	}
	return sum / float64(w.count)
}

// HarmonicMean returns the harmonic mean of the held samples.
func (w *SlidingWindow) HarmonicMean() (float64, error) {
	if w.count == 0 {
		return 0, ErrEmpty
	}
	var sumInv float64
	for i := 0; i < w.count; i++ {
		x := w.buf[(w.head+i)%len(w.buf)]
		if x <= 0 {
			return 0, ErrNonPositive
		}
		sumInv += 1 / x
	}
	return float64(w.count) / sumInv, nil
}

// RMS returns the root mean square of the held samples.
func (w *SlidingWindow) RMS() float64 {
	if w.count == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < w.count; i++ {
		x := w.buf[(w.head+i)%len(w.buf)]
		sum += x * x
	}
	return math.Sqrt(sum / float64(w.count))
}

// EWMA is an exponentially weighted moving average with smoothing
// factor alpha in (0, 1]: larger alpha weighs recent samples more.
// The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. alpha is
// clamped to (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Push folds a new sample into the average.
func (e *EWMA) Push(x float64) {
	if !e.primed {
		e.value = x
		e.primed = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before the first sample.
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been pushed.
func (e *EWMA) Primed() bool { return e.primed }
