package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlidingWindowBasics(t *testing.T) {
	w := NewSlidingWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("fresh window cap=%d len=%d, want 3, 0", w.Cap(), w.Len())
	}
	w.Push(1)
	w.Push(2)
	if got := w.Values(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Values = %v, want [1 2]", got)
	}
	w.Push(3)
	w.Push(4) // evicts 1
	got := w.Values()
	want := []float64{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("Values len = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Values[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSlidingWindowEvictionOrder(t *testing.T) {
	w := NewSlidingWindow(2)
	for i := 1; i <= 10; i++ {
		w.Push(float64(i))
	}
	got := w.Values()
	if got[0] != 9 || got[1] != 10 {
		t.Errorf("Values = %v, want [9 10]", got)
	}
}

func TestSlidingWindowReset(t *testing.T) {
	w := NewSlidingWindow(4)
	w.Push(1)
	w.Push(2)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", w.Len())
	}
	w.Push(9)
	if got := w.Values(); len(got) != 1 || got[0] != 9 {
		t.Errorf("Values after Reset+Push = %v, want [9]", got)
	}
}

func TestSlidingWindowMinCapacity(t *testing.T) {
	w := NewSlidingWindow(0)
	if w.Cap() != 1 {
		t.Errorf("Cap = %d, want 1 (raised from 0)", w.Cap())
	}
	w.Push(1)
	w.Push(2)
	if got := w.Values(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Values = %v, want [2]", got)
	}
}

func TestSlidingWindowAggregates(t *testing.T) {
	w := NewSlidingWindow(5)
	for _, x := range []float64{1, 4, 4} {
		w.Push(x)
	}
	if got := w.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	hm, err := w.HarmonicMean()
	if err != nil {
		t.Fatal(err)
	}
	if hm != 2 {
		t.Errorf("HarmonicMean = %v, want 2", hm)
	}
	if got := w.RMS(); !almostEqual(got, RMS([]float64{1, 4, 4}), 1e-12) {
		t.Errorf("RMS mismatch: %v", got)
	}
}

// The window always holds the last min(pushes, cap) values, in order.
func TestSlidingWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(capRaw, nRaw uint8) bool {
		capacity := int(capRaw%10) + 1
		n := int(nRaw % 50)
		w := NewSlidingWindow(capacity)
		all := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := rng.Float64()
			all = append(all, x)
			w.Push(x)
		}
		want := all
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		got := w.Values()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Error("fresh EWMA should not be primed")
	}
	if e.Value() != 0 {
		t.Errorf("fresh Value = %v, want 0", e.Value())
	}
	e.Push(10)
	if !e.Primed() || e.Value() != 10 {
		t.Errorf("after first push Value = %v, want 10", e.Value())
	}
	e.Push(0)
	if e.Value() != 5 {
		t.Errorf("Value = %v, want 5", e.Value())
	}
	e.Push(5)
	if e.Value() != 5 {
		t.Errorf("Value = %v, want 5", e.Value())
	}
}

func TestEWMAAlphaClamping(t *testing.T) {
	lo := NewEWMA(-1)
	lo.Push(1)
	lo.Push(2)
	if lo.Value() <= 1 || lo.Value() >= 2 {
		t.Errorf("clamped-low EWMA Value = %v, want within (1,2)", lo.Value())
	}
	hi := NewEWMA(9)
	hi.Push(1)
	hi.Push(2)
	if hi.Value() != 2 {
		t.Errorf("alpha=1 EWMA Value = %v, want 2 (tracks last sample)", hi.Value())
	}
}

// EWMA output always lies within [min, max] of the samples seen.
func TestEWMABounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(alphaRaw uint8, nRaw uint8) bool {
		alpha := float64(alphaRaw%99+1) / 100
		n := int(nRaw%40) + 1
		e := NewEWMA(alpha)
		lo, hi := 1e18, -1e18
		for i := 0; i < n; i++ {
			x := rng.NormFloat64() * 5
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			e.Push(x)
		}
		return e.Value() >= lo-1e-9 && e.Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
