package stats

import (
	"math"
	"sort"
)

// Accumulator is a streaming moment accumulator: count, mean,
// variance (Welford's update), minimum, and maximum in O(1) memory.
// Shard-local accumulators combine exactly with Merge (Chan et al.'s
// pairwise formula), which is what lets the campaign runner aggregate
// millions of sessions without retaining per-session results.
//
// The zero value is an empty accumulator, ready for use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Merge folds another accumulator in, as if every observation it saw
// had been Added to a. Merging is exact (up to float rounding), not an
// approximation.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// N returns the observation count.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the population variance (0 when empty).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// P2 estimates a single quantile of a stream in O(1) memory using the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the two surrounding octiles, and the
// maximum, adjusted towards their desired positions with parabolic
// interpolation after every observation. The estimate converges to
// the true quantile with error that vanishes as the stream grows; the
// first five observations are exact.
//
// Construct with NewP2; the zero value is unusable.
type P2 struct {
	p     float64
	count int64
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	inc   [5]float64 // desired-position increments
}

// NewP2 returns an estimator for the p-quantile, 0 < p < 1 (values
// outside are clamped to [0.001, 0.999]).
func NewP2(p float64) *P2 {
	if p < 0.001 {
		p = 0.001
	}
	if p > 0.999 {
		p = 0.999
	}
	e := &P2{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Quantile returns the p this estimator tracks.
func (e *P2) Quantile() float64 { return e.p }

// N returns the observation count.
func (e *P2) N() int64 { return e.count }

// Add folds one observation in.
func (e *P2) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.inc[i]
			}
		}
		return
	}
	// Find the cell k with q[k] <= x < q[k+1], extending extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}
	e.count++
	// Adjust the three interior markers towards their desired
	// positions, preferring the parabolic (P²) update and falling back
	// to linear when it would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. Streams shorter than
// five observations are interpolated exactly.
func (e *P2) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		head := make([]float64, e.count)
		copy(head, e.q[:e.count])
		sort.Float64s(head)
		v, err := Percentile(head, e.p*100)
		if err != nil {
			return 0
		}
		return v
	}
	return e.q[2]
}
