package stats

// Kahan is a compensated (Kahan) float64 accumulator: it carries the
// low-order bits lost by each addition in a correction term, keeping
// long running sums accurate to within a few ulps independent of
// length. The trace compiler uses it to build prefix sums whose
// windowed differences must agree with a direct two-pass computation
// to ~1e-9 (see internal/trace.Compiled).
//
// The zero value is an empty sum, ready to use.
type Kahan struct {
	sum, comp float64
}

// Add folds x into the running sum.
func (k *Kahan) Add(x float64) {
	y := x - k.comp
	t := k.sum + y
	k.comp = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated running total.
func (k *Kahan) Sum() float64 { return k.sum }

// Reset clears the accumulator back to an empty sum.
func (k *Kahan) Reset() { k.sum, k.comp = 0, 0 }
