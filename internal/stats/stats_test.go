package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty", in: nil, want: 0},
		{name: "single", in: []float64{3}, want: 3},
		{name: "pair", in: []float64{2, 4}, want: 3},
		{name: "negatives", in: []float64{-1, 1}, want: 0},
		{name: "fractional", in: []float64{1, 2, 4}, want: 7.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestHarmonicMean(t *testing.T) {
	tests := []struct {
		name    string
		in      []float64
		want    float64
		wantErr error
	}{
		{name: "empty", in: nil, wantErr: ErrEmpty},
		{name: "zero sample", in: []float64{1, 0}, wantErr: ErrNonPositive},
		{name: "negative sample", in: []float64{1, -2}, wantErr: ErrNonPositive},
		{name: "single", in: []float64{5}, want: 5},
		{name: "classic", in: []float64{1, 4, 4}, want: 2},
		{name: "identical", in: []float64{7, 7, 7}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := HarmonicMean(tt.in)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("HarmonicMean(%v) err = %v, want %v", tt.in, err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("HarmonicMean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// Harmonic mean never exceeds the arithmetic mean (AM-HM inequality)
// and is permutation invariant.
func TestHarmonicMeanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		size := int(n%20) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		hm, err := HarmonicMean(xs)
		if err != nil {
			return false
		}
		if hm > Mean(xs)+1e-9 {
			return false
		}
		// Permutation invariance: reverse order.
		rev := make([]float64, size)
		for i := range xs {
			rev[i] = xs[size-1-i]
		}
		hm2, err := HarmonicMean(rev)
		if err != nil {
			return false
		}
		return almostEqual(hm, hm2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %v, want 0", got)
	}
}

func TestRMS(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "empty", in: nil, want: 0},
		{name: "threefour", in: []float64{3, 4}, want: math.Sqrt(12.5)},
		{name: "sign invariant", in: []float64{-3, -4}, want: math.Sqrt(12.5)},
		{name: "constant", in: []float64{2, 2, 2}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RMS(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("RMS(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

// RMS >= |mean| for any sample (Cauchy-Schwarz).
func TestRMSDominatesMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		size := int(n%30) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		return RMS(xs) >= math.Abs(Mean(xs))-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 4, 1, 5}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 5 {
		t.Errorf("Max = %v, %v; want 5, nil", mx, err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 50, want: 3},
		{p: 100, want: 5},
		{p: 25, want: 2},
		{p: 10, want: 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v) err: %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected out-of-range error for p=101")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("expected out-of-range error for p=-1")
	}
	// Single element: any percentile is that element.
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Errorf("Percentile single = %v, %v; want 42, nil", got, err)
	}
}

// Percentile must not mutate its input.
func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestLinearFit(t *testing.T) {
	// Exact line y = 2 + 3x.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 2, 1e-9) || !almostEqual(b, 3, 1e-9) {
		t.Errorf("fit = (%v, %v), want (2, 3)", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected mismatched-length error")
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("expected too-few-points error")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("expected constant-x error")
	}
}

// LinearFit recovers slope/intercept from noisy data to within the
// noise scale.
func TestLinearFitRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const wantA, wantB = -1.5, 0.75
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = wantA + wantB*xs[i] + rng.NormFloat64()*0.01
	}
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, wantA, 0.02) || !almostEqual(b, wantB, 0.01) {
		t.Errorf("fit = (%v, %v), want approx (%v, %v)", a, b, wantA, wantB)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{x: 5, lo: 0, hi: 10, want: 5},
		{x: -5, lo: 0, hi: 10, want: 0},
		{x: 15, lo: 0, hi: 10, want: 10},
		{x: 0, lo: 0, hi: 0, want: 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}
