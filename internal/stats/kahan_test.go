package stats

import (
	"math"
	"testing"
)

// A naive sum of many small terms onto a large base loses the small
// terms entirely; the compensated sum must keep them.
func TestKahanCompensates(t *testing.T) {
	var k Kahan
	k.Add(1e16)
	for i := 0; i < 1000; i++ {
		k.Add(1.0)
	}
	got := k.Sum() - 1e16
	if math.Abs(got-1000) > 1 {
		t.Fatalf("compensated sum lost small terms: 1e16+1000x1.0 - 1e16 = %v", got)
	}

	var naive float64 = 1e16
	for i := 0; i < 1000; i++ {
		naive += 1.0
	}
	if naive-1e16 >= 1000 {
		t.Skip("platform sums 1e16+1.0 exactly; compensation not observable")
	}
}

func TestKahanMatchesExactSmallSums(t *testing.T) {
	var k Kahan
	want := 0.0
	for i := 1; i <= 100; i++ {
		k.Add(float64(i))
		want += float64(i)
	}
	if k.Sum() != want {
		t.Fatalf("Sum() = %v, want %v", k.Sum(), want)
	}
}

func TestKahanReset(t *testing.T) {
	var k Kahan
	k.Add(3.5)
	k.Reset()
	if k.Sum() != 0 {
		t.Fatalf("Sum() after Reset = %v, want 0", k.Sum())
	}
	k.Add(2)
	if k.Sum() != 2 {
		t.Fatalf("Sum() after Reset+Add = %v, want 2", k.Sum())
	}
}
