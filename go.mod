module ecavs

go 1.22
