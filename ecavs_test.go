package ecavs

import (
	"testing"
)

func TestFacadeModels(t *testing.T) {
	if err := DefaultQoE().Validate(); err != nil {
		t.Errorf("DefaultQoE invalid: %v", err)
	}
	if err := DefaultPower().Validate(); err != nil {
		t.Errorf("DefaultPower invalid: %v", err)
	}
	if err := EvalPower().Validate(); err != nil {
		t.Errorf("EvalPower invalid: %v", err)
	}
	if len(EvalLadder()) != 14 || len(TableIILadder()) != 6 {
		t.Error("ladder sizes wrong")
	}
}

func TestFacadeObjectiveValidation(t *testing.T) {
	if _, err := NewObjective(2); err == nil {
		t.Error("alpha out of range accepted")
	}
	if _, err := NewOnline(-1); err == nil {
		t.Error("NewOnline accepted bad alpha")
	}
}

func TestFacadeStreamEndToEnd(t *testing.T) {
	traces, err := GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]

	ours, err := NewOnline(DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	yt := NewYoutube()

	mOurs, err := Stream(tr, ours)
	if err != nil {
		t.Fatal(err)
	}
	mYT, err := Stream(tr, yt)
	if err != nil {
		t.Fatal(err)
	}
	if mOurs.TotalJ() >= mYT.TotalJ() {
		t.Errorf("Ours %.0f J should undercut Youtube %.0f J", mOurs.TotalJ(), mYT.TotalJ())
	}

	baseJ, err := BaseEnergyJ(tr)
	if err != nil {
		t.Fatal(err)
	}
	if baseJ <= 0 || baseJ > mOurs.TotalJ() {
		t.Errorf("base energy %.0f J out of range (ours %.0f J)", baseJ, mOurs.TotalJ())
	}
}

func TestFacadeStreamOptions(t *testing.T) {
	traces, err := GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	m, err := Stream(tr, NewYoutube(),
		WithBufferThreshold(15),
		WithPacingHysteresis(5),
		WithLTETailEnergy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.RadioCtlJ <= 0 {
		t.Error("LTE tail option did not account radio-control energy")
	}
	// Invalid threshold option is ignored (keeps the default).
	if _, err := Stream(tr, NewYoutube(), WithBufferThreshold(-1)); err != nil {
		t.Errorf("negative threshold option broke Stream: %v", err)
	}
}

func TestFacadeLoadTrace(t *testing.T) {
	traces, err := GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := traces[1].Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(dir, traces[1].ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != traces[1].Name {
		t.Errorf("loaded trace name = %q, want %q", got.Name, traces[1].Name)
	}
	if _, err := LoadTrace(dir, 99); err == nil {
		t.Error("missing trace id accepted")
	}
}

func TestFacadeOptimalPlan(t *testing.T) {
	traces, err := GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	alg, plan, err := PlanOptimalForTrace(traces[0], DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rungs) == 0 {
		t.Fatal("empty plan")
	}
	m, err := Stream(traces[0], alg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm != "Optimal" {
		t.Errorf("Algorithm = %q", m.Algorithm)
	}
}

func TestFacadeNilGuards(t *testing.T) {
	if _, err := Stream(nil, NewYoutube()); err == nil {
		t.Error("nil trace accepted")
	}
	traces, err := GenerateTableVTraces()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stream(traces[0], nil); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := BaseEnergyJ(nil); err == nil {
		t.Error("nil trace accepted by BaseEnergyJ")
	}
	if _, _, err := PlanOptimalForTrace(nil, 0.5); err == nil {
		t.Error("nil trace accepted by PlanOptimalForTrace")
	}
}

func TestFacadeBaselines(t *testing.T) {
	bba, err := NewBBA()
	if err != nil {
		t.Fatal(err)
	}
	if bba.Name() != "BBA" {
		t.Errorf("BBA name = %q", bba.Name())
	}
	if NewFESTIVE().Name() != "FESTIVE" {
		t.Error("FESTIVE name wrong")
	}
	if NewYoutube().Name() != "Youtube" {
		t.Error("Youtube name wrong")
	}
	bola, err := NewBOLA()
	if err != nil || bola.Name() != "BOLA" {
		t.Errorf("BOLA = %v, %v", bola, err)
	}
	mpc, err := NewRobustMPC()
	if err != nil || mpc.Name() != "RobustMPC" {
		t.Errorf("RobustMPC = %v, %v", mpc, err)
	}
}
