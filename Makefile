# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short bench experiments examples cover

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every paper table/figure plus the ablations and extensions.
experiments:
	go run ./cmd/experiments | tee experiments_output.txt

examples:
	go run ./examples/quickstart
	go run ./examples/busride
	go run ./examples/alphasweep
	go run ./examples/modelfit
	go run ./examples/fairshare
	go run ./examples/trainagent
	go run ./examples/httpstream

cover:
	go test -cover ./...
