# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build vet test test-short race chaos obs loadtest overload tracesmoke edgesmoke vuln bench bench-diff benchsmoke experiments examples cover

all: build vet test

# check is the CI gate: build, vet, tests, the race detector, the
# observability suite, a load-generator smoke run, the overload
# shed-path smoke, the request-tracing smoke, and the edge-cache smoke.
check: build vet test race obs loadtest overload tracesmoke edgesmoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

race:
	go build ./... && go test -race ./...

# chaos drives every ABR algorithm through deterministic fault storms
# (HTTP 5xx/reset/stall/truncate via internal/faults, link outages via
# netsim.OutageLink) under the race detector. -count=1 defeats the test
# cache so the storms actually run.
chaos:
	go test -race -count=1 ./internal/faults/
	go test -race -count=1 -run 'Chaos|Outage|Truncated|Cancellation' ./internal/httpdash/ ./internal/netsim/ ./internal/sim/ ./internal/campaign/
	go test -race -count=1 -run 'Overload|Admission|Breaker|Shutdown|Panic' ./cmd/loadgen/ ./internal/httpdash/ ./internal/pool/
	go test -race -count=1 -run 'Edge|Stale|Singleflight' ./internal/edgecache/ ./internal/httpdash/

# obs exercises the telemetry layer end to end under the race detector:
# registry/exposition correctness and concurrency in internal/telemetry,
# then the wiring — per-rung server snapshots and client counters
# (httpdash), decision-trace recording (sim), live campaign metrics and
# the zero-overhead/determinism pins (campaign, root). -count=1 defeats
# the test cache so the concurrent hammers actually run.
obs:
	go test -race -count=1 ./internal/telemetry/
	go test -race -count=1 -run 'Telemetry|Snapshot|Recorder|DecisionTrace|Live|NDJSON' ./internal/httpdash/ ./internal/sim/ ./internal/campaign/
	go test -count=1 -run 'TestSessionAllocsTelemetryDisabled' .

# loadtest smokes the serving path end to end: cmd/loadgen stands up an
# in-process httpdash server, hammers it with closed-loop workers for a
# couple of seconds, and fails if the JSON report lands under 1 req/s —
# a floor so low that only a wedged serving path can miss it.
loadtest:
	go run ./cmd/loadgen -workers 4 -duration 2s -min-rps 1 -json

# overload smokes the shed path end to end: loadgen's open loop offers
# 400 req/s against an in-process server admitting 4 concurrent
# transfers (queue of 8, 50ms deadline, 4 MB/s token bucket) — far past
# capacity — and -gate-overload fails the run unless shedding actually
# happened, issued == ok + shed + errors + aborted, every 5xx carried
# Retry-After, and Shutdown left zero transfers in flight.
overload:
	go run ./cmd/loadgen -rps 400 -max-inflight 4 -max-queue 8 -queue-wait 50ms -rate 4 -rungs 0 -duration 2s -json -gate-overload

# tracesmoke smokes request tracing end to end: a 2s loadgen run with
# injected 5xx faults and retries, tracing on with keep-everything
# sampling, and -gate-trace fails the run unless the store holds at
# least one sampled cross-process trace — client attempt spans and
# server spans merged under one trace ID, proving the traceparent
# header survived the wire.
tracesmoke:
	go run ./cmd/loadgen -workers 4 -duration 2s -fault-5xx 0.25 -fault-max-per-key 1 -retries 3 -rungs 0 -trace-cap 2048 -trace-ratio 1 -trace-slowest 3 -json -gate-trace

# edgesmoke smokes the caching edge tier end to end: loadgen offers
# 300 req/s for 2s through an in-process edge proxy fronting an
# in-process origin, cycling one rung of a 10-segment presentation, so
# after the 10 cold fills everything is a cache hit. -gate-hit-ratio
# fails the run unless the hit ratio reaches 90% and every edge request
# resolved to exactly one of hit/fill/stale/error; -gate-trace (keep-
# everything sampling) additionally requires one sampled miss whose
# loadgen, edge, and server fragments merged into a single three-
# service trace — proof the traceparent header survived both hops.
edgesmoke:
	go run ./cmd/loadgen -edge -rps 300 -duration 2s -video-sec 20 -rungs 0 -gate-hit-ratio 0.9 -trace-cap 4096 -trace-ratio 1 -json -gate-trace

# vuln scans the module against the Go vulnerability database. The
# scanner is optional locally (it needs a network fetch to install);
# CI installs it explicitly, so absence here is a skip, not a failure.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# bench runs the full suite with -benchmem and records a dated JSON
# snapshot (name, ns/op, allocs/op, B/op) for regression tracking.
bench:
	go test -bench=. -benchmem ./... | tee /dev/stderr | go run ./cmd/benchdiff -parse -out BENCH_$(shell date +%Y-%m-%d).json

# bench-diff compares two snapshots and fails on >20% regressions:
#   make bench-diff OLD=BENCH_2026-08-01.json NEW=BENCH_2026-08-06.json
bench-diff:
	go run ./cmd/benchdiff -old $(OLD) -new $(NEW)

# benchsmoke runs the session and campaign benchmarks once each
# (-benchtime=1x: a compile-and-execute smoke test, not a measurement)
# and diffs the result against the newest committed snapshot.
# Single-iteration numbers are noisy — timings wildly, and allocations
# somewhat, because b.N=1 charges one-time memoization (compiled traces,
# rung tables) to the only iteration — so the diff is informational:
# the leading `-` keeps it from failing the build. The real gate is a
# full `make bench` snapshot compared with bench-diff.
# Dated snapshots sort lexicographically by date; BENCH_seed.json is
# excluded so the baseline is the most recent recording, not the seed.
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_2*.json)))
benchsmoke:
	go test -bench='Session|Campaign' -benchtime=1x -benchmem -run='^$$' . \
		| go run ./cmd/benchdiff -parse -out /tmp/benchsmoke.json
	-go run ./cmd/benchdiff -old $(BENCH_BASELINE) -new /tmp/benchsmoke.json

# Regenerate every paper table/figure plus the ablations and extensions.
experiments:
	go run ./cmd/experiments | tee experiments_output.txt

examples:
	go run ./examples/quickstart
	go run ./examples/busride
	go run ./examples/alphasweep
	go run ./examples/modelfit
	go run ./examples/fairshare
	go run ./examples/trainagent
	go run ./examples/httpstream

cover:
	go test -cover ./...
