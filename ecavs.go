// Package ecavs is the public facade of the energy-aware and
// context-aware video streaming library — a from-scratch reproduction
// of Chen, Tan and Cao, "Energy-Aware and Context-Aware Video Streaming
// on Smartphones" (IEEE ICDCS 2019).
//
// The facade wires the substrates together for the common workflows:
//
//   - build the paper's QoE and power models (DefaultQoE, DefaultPower,
//     EvalPower),
//   - generate or load the Table V evaluation traces
//     (GenerateTableVTraces),
//   - construct bitrate-adaptation policies — the paper's online
//     algorithm (NewOnline), its offline optimal planner
//     (PlanOptimalForTrace), and the baselines (NewYoutube, NewFESTIVE,
//     NewBBA) — and
//   - replay a policy over a trace (Stream) to obtain energy and QoE
//     metrics.
//
// The deeper layers live under internal/ (qoe, power, vibration,
// netsim, dash, player, sim, abr, core, eval); see DESIGN.md for the
// system inventory and the per-experiment index.
package ecavs

import (
	"errors"
	"fmt"

	"ecavs/internal/abr"
	"ecavs/internal/core"
	"ecavs/internal/dash"
	"ecavs/internal/player"
	"ecavs/internal/power"
	"ecavs/internal/qoe"
	"ecavs/internal/sim"
	"ecavs/internal/trace"
)

// Re-exported core types. These aliases are usable by code living in
// this module (examples, benchmarks, forks); a packaged release would
// promote the internal packages wholesale.
type (
	// QoEModel is the paper's context-aware QoE model (Section III-B).
	QoEModel = qoe.Model
	// PowerModel is the paper's two-mode power model (Section III-C).
	PowerModel = power.Model
	// Ladder is a DASH bitrate ladder.
	Ladder = dash.Ladder
	// Manifest is a segmented, VBR-sized video.
	Manifest = dash.Manifest
	// Trace is one recorded viewing session (network + signal + accel).
	Trace = trace.Trace
	// Metrics summarises a simulated streaming session.
	Metrics = sim.Metrics
	// Algorithm is a per-segment bitrate selection policy.
	Algorithm = abr.Algorithm
	// Objective is the Eq. 11 weighted-sum scalarisation.
	Objective = core.Objective
	// Plan is an offline-optimal bitrate schedule.
	Plan = core.Plan
	// DecisionRecorder is a sampled ring buffer of per-segment ABR
	// decision events (see WithDecisionRecorder).
	DecisionRecorder = sim.DecisionRecorder
	// DecisionEvent is one recorded ABR decision snapshot.
	DecisionEvent = sim.DecisionEvent
	// SessionParams are the session knobs shared by every way of
	// launching a session (sim.Config, sim.TraceSession, and Stream's
	// options): early abandonment, vibration scaling, outage overlays,
	// metrics-only replay, decision recording, and the compiled
	// per-rung QoE table. The simulator embeds it, so the fields read
	// and write as flat selectors on either config struct.
	SessionParams = sim.SessionParams
)

// DefaultAlpha is the paper's evaluation weighting (energy and QoE
// count equally).
const DefaultAlpha = core.DefaultAlpha

// DefaultBufferThresholdSec is the paper's 30 s player buffer
// threshold.
const DefaultBufferThresholdSec = player.DefaultBufferThresholdSec

// DefaultQoE returns the Table III QoE model.
func DefaultQoE() QoEModel { return qoe.Default() }

// DefaultPower returns the Table VI / Fig. 1a power calibration.
func DefaultPower() PowerModel { return power.Default() }

// EvalPower returns the trace-evaluation power model (Figs. 5-7).
func EvalPower() PowerModel { return power.EvalModel() }

// EvalLadder returns the fourteen-rung Section V-A bitrate ladder.
func EvalLadder() Ladder { return dash.EvalLadder() }

// TableIILadder returns the six-rung Table II ladder.
func TableIILadder() Ladder { return dash.TableIILadder() }

// GenerateTableVTraces synthesises the five Table V evaluation traces
// against the evaluation power model's link calibration.
func GenerateTableVTraces() ([]*Trace, error) {
	pm := power.EvalModel()
	return trace.GenerateTableV(pm.NominalThroughputMBps)
}

// NewObjective builds the Eq. 11 objective with the given energy
// weight alpha in [0, 1].
func NewObjective(alpha float64) (Objective, error) {
	return core.NewObjective(alpha, power.EvalModel(), qoe.Default())
}

// NewYoutube returns the fixed-1080p baseline.
func NewYoutube() Algorithm { return abr.NewYoutube() }

// NewFESTIVE returns the throughput-based FESTIVE baseline.
func NewFESTIVE() Algorithm { return abr.NewFESTIVE() }

// NewBBA returns the buffer-based BBA baseline.
func NewBBA() (Algorithm, error) { return abr.NewBBA() }

// NewBOLA returns the Lyapunov buffer-based BOLA baseline (the paper's
// reference [5]).
func NewBOLA() (Algorithm, error) { return abr.NewBOLA() }

// NewRobustMPC returns the model-predictive-control baseline (the
// paper's reference [17]).
func NewRobustMPC() (Algorithm, error) { return abr.NewMPC() }

// NewOnline returns the paper's online bitrate-selection algorithm
// (Algorithm 1) at the given energy weight.
func NewOnline(alpha float64) (Algorithm, error) {
	obj, err := NewObjective(alpha)
	if err != nil {
		return nil, err
	}
	return core.NewOnline(obj), nil
}

// PlanOptimalForTrace runs the offline shortest-path planner
// (Section IV-A) over a trace and returns an Algorithm replaying the
// optimal schedule, plus the plan itself.
func PlanOptimalForTrace(tr *Trace, alpha float64) (Algorithm, Plan, error) {
	if tr == nil {
		return nil, Plan{}, errors.New("ecavs: nil trace")
	}
	obj, err := NewObjective(alpha)
	if err != nil {
		return nil, Plan{}, err
	}
	ladder := dash.EvalLadder()
	man, err := sim.ManifestForTrace(tr, ladder)
	if err != nil {
		return nil, Plan{}, err
	}
	tasks, err := core.ObserveTasks(tr, man, player.DefaultBufferThresholdSec, 6)
	if err != nil {
		return nil, Plan{}, err
	}
	plan, err := core.PlanOptimal(obj, ladder, tasks)
	if err != nil {
		return nil, Plan{}, err
	}
	return core.NewPlannedAlgorithm("Optimal", plan), plan, nil
}

// StreamOption customises a Stream session.
type StreamOption func(*sim.TraceSession)

// WithBufferThreshold overrides the 30 s pacing threshold.
func WithBufferThreshold(sec float64) StreamOption {
	return func(s *sim.TraceSession) {
		if sec > 0 {
			s.ThresholdSec = sec
		}
	}
}

// WithPacingHysteresis pauses downloads at the buffer threshold and
// resumes only once the buffer drains to resumeSec — bursty
// prefetching that amortises the LTE tail.
func WithPacingHysteresis(resumeSec float64) StreamOption {
	return func(s *sim.TraceSession) { s.ResumeThresholdSec = resumeSec }
}

// WithLTETailEnergy enables the RRC radio-state machine so promotion,
// tail, and idle paging energy appear in Metrics.RadioCtlJ.
func WithLTETailEnergy() StreamOption {
	return func(s *sim.TraceSession) {
		rrc := power.DefaultRRC()
		s.RRC = &rrc
	}
}

// NewDecisionRecorder returns a decision-trace recorder holding the
// most recent `capacity` sampled events, keeping every sampleEvery-th
// decision (values below 1 mean every decision). Emit the trace with
// its WriteNDJSON method.
func NewDecisionRecorder(capacity, sampleEvery int) (*DecisionRecorder, error) {
	return sim.NewDecisionRecorder(capacity, sampleEvery)
}

// WithDecisionRecorder attaches a decision-trace recorder to the
// session: one sampled event per segment capturing what the algorithm
// saw (buffer, signal, vibration) and what it chose (rung, implied
// power draw, realized QoE). A nil recorder leaves the session's hot
// path untouched.
func WithDecisionRecorder(r *DecisionRecorder) StreamOption {
	return func(s *sim.TraceSession) { s.Recorder = r }
}

// Stream replays a policy over a trace with the paper's evaluation
// setup (fourteen-rung ladder, 30 s buffer threshold, evaluation power
// model) and returns the session metrics.
func Stream(tr *Trace, alg Algorithm, opts ...StreamOption) (*Metrics, error) {
	if tr == nil {
		return nil, errors.New("ecavs: nil trace")
	}
	if alg == nil {
		return nil, errors.New("ecavs: nil algorithm")
	}
	man, err := sim.ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		return nil, fmt.Errorf("ecavs: manifest: %w", err)
	}
	session := sim.TraceSession{
		Trace:        tr,
		Manifest:     man,
		Algorithm:    alg,
		Power:        power.EvalModel(),
		QoE:          qoe.Default(),
		ThresholdSec: player.DefaultBufferThresholdSec,
	}
	for _, o := range opts {
		o(&session)
	}
	// Compile the per-rung QoE table after the options ran, in case one
	// swapped the model; the table must match the session's QoE.
	if session.RungQoE == nil {
		session.RungQoE = session.QoE.CompileRungs(man.Ladder().Bitrates())
	}
	return session.Run()
}

// LoadTrace reads a trace previously written by Trace.Save (or
// cmd/tracegen) from dir.
func LoadTrace(dir string, id int) (*Trace, error) {
	return trace.Load(dir, id)
}

// BaseEnergyJ returns the Section V-B base energy for a trace: the
// session cost with every segment at the lowest bitrate.
func BaseEnergyJ(tr *Trace) (float64, error) {
	if tr == nil {
		return 0, errors.New("ecavs: nil trace")
	}
	man, err := sim.ManifestForTrace(tr, dash.EvalLadder())
	if err != nil {
		return 0, err
	}
	return sim.BaseEnergyJ(tr, man, power.EvalModel(), qoe.Default())
}
